// binning_pipeline: standalone in situ data binning on tabular data
// (paper Section 4.2) without a simulation — the pattern for coupling any
// producer of tabular data to the analysis.
//
// Builds a synthetic "disk galaxy" table (columns x, y, z, m, vr), then:
//   1. bins mass with summation on a 128x128 x-y mesh on the host;
//   2. repeats the identical binning on a device and checks the grids
//      match bin for bin;
//   3. bins radial velocity with min/max/average on an r-vr phase plane;
//   4. writes the grids as .vti files for ParaView/VisIt.
//
// Usage: ./binning_pipeline [rows]     (default 50000)

#include "senseiDataAdaptor.h"
#include "senseiDataBinning.h"
#include "sio.h"
#include "svtkAOSDataArray.h"
#include "vpPlatform.h"

#include <cmath>
#include <iostream>
#include <random>

namespace
{
svtkTable *MakeGalaxyTable(std::size_t n, unsigned seed)
{
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> uphi(0.0, 2.0 * M_PI);
  std::exponential_distribution<double> ur(4.0);
  std::normal_distribution<double> uz(0.0, 0.05);
  std::uniform_real_distribution<double> um(0.5, 1.5);
  std::normal_distribution<double> uvr(0.0, 0.2);

  std::vector<double> x(n), y(n), z(n), m(n), r(n), vr(n);
  for (std::size_t i = 0; i < n; ++i)
  {
    const double phi = uphi(gen);
    const double rad = std::min(ur(gen), 1.0);
    x[i] = rad * std::cos(phi);
    y[i] = rad * std::sin(phi);
    z[i] = uz(gen);
    m[i] = um(gen);
    r[i] = rad;
    vr[i] = uvr(gen) * (1.0 - rad); // slower dispersion further out
  }

  svtkTable *t = svtkTable::New();
  auto add = [t](const char *name, const std::vector<double> &v)
  {
    svtkAOSDoubleArray *c = svtkAOSDoubleArray::New(name, v.size(), 1);
    c->GetVector() = v;
    t->AddColumn(c);
    c->Delete();
  };
  add("x", x);
  add("y", y);
  add("z", z);
  add("m", m);
  add("r", r);
  add("vr", vr);
  return t;
}

std::vector<double> Grid(svtkImageData *img, const char *name)
{
  const svtkDataArray *a = img->GetPointData()->GetArray(name);
  std::vector<double> out(a->GetNumberOfTuples());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = a->GetVariantValue(i, 0);
  return out;
}
} // namespace

int main(int argc, char **argv)
{
  const std::size_t rows = argc > 1 ? std::stoul(argv[1]) : 50000;

  vp::PlatformConfig plat;
  plat.DevicesPerNode = 4;
  vp::Platform::Initialize(plat);

  svtkTable *table = MakeGalaxyTable(rows, 7);
  sensei::TableAdaptor *adaptor = sensei::TableAdaptor::New("galaxy");
  adaptor->SetTable(table);

  // --- 1. mass surface density on the host --------------------------------------
  sensei::DataBinning *host = sensei::DataBinning::New();
  host->SetMeshName("galaxy");
  host->SetAxes({"x", "y"});
  host->SetResolution({128});
  host->AddOperation("m", sensei::BinningOp::Sum);
  host->SetDeviceId(sensei::AnalysisAdaptor::DEVICE_HOST);
  host->Execute(adaptor);

  svtkImageData *hostGrid = host->GetLastResult();
  sio::WriteVTI("binning_mass_xy.vti", hostGrid);

  // --- 2. the identical binning on a device ---------------------------------------
  sensei::DataBinning *dev = sensei::DataBinning::New();
  dev->SetMeshName("galaxy");
  dev->SetAxes({"x", "y"});
  dev->SetResolution({128});
  dev->AddOperation("m", sensei::BinningOp::Sum);
  dev->SetDeviceId(2);
  dev->Execute(adaptor);

  svtkImageData *devGrid = dev->GetLastResult();
  const std::vector<double> a = Grid(hostGrid, "m_sum");
  const std::vector<double> b = Grid(devGrid, "m_sum");
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::abs(a[i] - b[i]) > 1e-9)
      ++mismatches;

  std::cout << rows << " rows binned onto 128x128 mesh\n"
            << "host vs device 2 grids: " << mismatches
            << " mismatching bins (expect 0)\n";

  // --- 3. phase-plane binning with several reductions -----------------------------
  sensei::DataBinning *phase = sensei::DataBinning::New();
  phase->SetMeshName("galaxy");
  phase->SetAxes({"r", "vr"});
  phase->SetResolution({64, 64});
  phase->AddOperation("m", sensei::BinningOp::Sum);
  phase->AddOperation("vr", sensei::BinningOp::Min);
  phase->AddOperation("vr", sensei::BinningOp::Max);
  phase->AddOperation("m", sensei::BinningOp::Average);
  phase->Execute(adaptor);

  svtkImageData *phaseGrid = phase->GetLastResult();
  sio::WriteVTI("binning_phase_r_vr.vti", phaseGrid);

  double totalMass = 0, totalCount = 0;
  for (double v : Grid(phaseGrid, "m_sum"))
    totalMass += v;
  for (double v : Grid(phaseGrid, "count"))
    totalCount += v;
  std::cout << "phase plane: " << totalCount << " rows, total mass "
            << totalMass << "\n"
            << "wrote binning_mass_xy.vti, binning_phase_r_vr.vti\n";

  phaseGrid->UnRegister();
  devGrid->UnRegister();
  hostGrid->UnRegister();
  phase->Delete();
  dev->Delete();
  host->Delete();
  adaptor->ReleaseData();
  adaptor->Delete();
  table->Delete();

  return mismatches == 0 ? 0 : 1;
}
