// vp_tune: offline auto-tuning of the campaign scheduling space on the
// virtual platform. Searches the <pool>/<sched>/<compress>/<exec>/<graph>
// knob space with a seeded simulated annealer (random-search and greedy
// hill-climb baselines available), scoring each candidate by running a
// down-scaled proxy campaign and combining virtual time with peak payload
// footprint as cost = t^k * p (k = 0 scores pure time). The winner is
// emitted as a loadable SENSEI XML configuration.
//
// Usage:
//   ./vp_tune [options]
//     --budget N     campaign evaluations per search      (default 24)
//     --seed N       search RNG seed (bit-reproducible)   (default 42)
//     --k X          cost exponent in t^k * p             (default 0)
//     --algo A       anneal|random|greedy|all             (default anneal)
//     --analyses N   per-analysis override knobs          (default 0)
//     --exec         include the <exec> knobs (excluded by default:
//                    virtual-time scores do not depend on the engine
//                    mode, so searching them only burns budget)
//     --nodes N      proxy campaign nodes                 (default 1)
//     --steps N      proxy campaign steps                 (default 2)
//     --bodies N     proxy bodies per node                (default 30000)
//     --systems N    proxy coordinate systems             (default 3)
//     --vars N       proxy variables per system           (default 4)
//     --full         re-score winner vs default config on the full
//                    8-case evaluation campaign
//     --out FILE     write the winning XML (default: stdout)
//     --trace        print the full search trace
//
// Reproducing configs/tuned_campaign.xml:
//   ./vp_tune --budget 48 --steps 3 --systems 9 --vars 10
//             --out configs/tuned_campaign.xml   (one command line)

#include "senseiProfiler.h"
#include "tuneOnline.h"
#include "tuneSearch.h"

#include <cstdlib>
#include <fstream>
#include <iostream>

namespace
{

void PrintSummary(const tune::SearchResult &r)
{
  std::cout << "  [" << r.Algorithm << "] evaluations " << r.Evaluations
            << ", accepted " << r.Accepted << "\n"
            << "    initial cost " << r.InitialCost << " -> best "
            << r.BestEval.Cost << "  (x"
            << (r.BestEval.Cost > 0.0 ? r.InitialCost / r.BestEval.Cost : 0.0)
            << " better)\n"
            << "    best: " << tune::Describe(r.Best) << "\n"
            << "    t = " << r.BestEval.TotalSeconds << " virtual s, p = "
            << r.BestEval.PeakBytes / (1024.0 * 1024.0) << " MiB\n";
}

void PrintTrace(const tune::SearchResult &r)
{
  for (const tune::TraceEntry &t : r.Trace)
    std::cout << "    eval " << t.Eval << "  cost " << t.Cost << "  best "
              << t.Best << (t.Accepted ? "  accepted  " : "  rejected  ")
              << t.Move << "\n";
}

} // namespace

int main(int argc, char **argv)
{
  tune::SearchConfig sc;
  sc.Budget = 24;

  tune::EvalConfig ec;
  ec.Campaign.Nodes = 1;
  ec.Campaign.Steps = 2;
  ec.Campaign.BodiesPerNode = 30000;
  ec.Campaign.CoordSystems = 3;
  ec.Campaign.VariablesPerSystem = 4;

  std::string algo = "anneal";
  std::string outFile;
  int analyses = 0;
  bool includeExec = false;
  bool full = false;
  bool trace = false;

  for (int i = 1; i < argc; ++i)
  {
    const std::string arg = argv[i];
    auto next = [&]() -> const char *
    {
      if (i + 1 >= argc)
      {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };

    if (arg == "--budget")
      sc.Budget = std::stoi(next());
    else if (arg == "--seed")
      sc.Seed = std::stoull(next());
    else if (arg == "--k")
      ec.K = std::stod(next());
    else if (arg == "--algo")
      algo = next();
    else if (arg == "--analyses")
      analyses = std::stoi(next());
    else if (arg == "--exec")
      includeExec = true;
    else if (arg == "--no-exec")
      includeExec = false;
    else if (arg == "--nodes")
      ec.Campaign.Nodes = std::stoi(next());
    else if (arg == "--steps")
      ec.Campaign.Steps = std::stol(next());
    else if (arg == "--bodies")
      ec.Campaign.BodiesPerNode = std::stoul(next());
    else if (arg == "--systems")
      ec.Campaign.CoordSystems = std::stoi(next());
    else if (arg == "--vars")
      ec.Campaign.VariablesPerSystem = std::stoi(next());
    else if (arg == "--full")
      full = true;
    else if (arg == "--out")
      outFile = next();
    else if (arg == "--trace")
      trace = true;
    else
    {
      std::cerr << "unknown option " << arg << " (see header for usage)\n";
      return 2;
    }
  }

  const tune::KnobSpace space = tune::KnobSpace::Campaign(analyses,
                                                          includeExec);
  std::cout << "vp_tune: " << space.Knobs().size() << " knobs, ~"
            << space.Size() << " configurations; budget " << sc.Budget
            << " proxy-campaign evaluations (seed " << sc.Seed
            << ", k = " << ec.K << ")\n";

  // each algorithm gets its own evaluator so "equal budget" means equal
  // campaign runs, not shared memoization
  std::vector<tune::SearchResult> results;
  if (algo == "anneal" || algo == "all")
  {
    tune::Evaluator ev(ec);
    results.push_back(tune::Anneal(ev, space, sc));
    PrintSummary(results.back());
    tune::ExportTuneStats(sensei::Profiler::Global(), ev, results.back());
  }
  if (algo == "random" || algo == "all")
  {
    tune::Evaluator ev(ec);
    results.push_back(tune::RandomSearch(ev, space, sc));
    PrintSummary(results.back());
  }
  if (algo == "greedy" || algo == "all")
  {
    tune::Evaluator ev(ec);
    results.push_back(tune::GreedyClimb(ev, space, sc));
    PrintSummary(results.back());
  }
  if (results.empty())
  {
    std::cerr << "unknown --algo " << algo
              << " (anneal|random|greedy|all)\n";
    return 2;
  }
  if (trace)
    for (const tune::SearchResult &r : results)
    {
      std::cout << "  trace [" << r.Algorithm << "]\n";
      PrintTrace(r);
    }

  const tune::SearchResult *win = &results.front();
  for (const tune::SearchResult &r : results)
    if (r.BestEval.Cost < win->BestEval.Cost)
      win = &r;

  if (full)
  {
    std::cout << "re-scoring on the full evaluation campaign...\n";
    tune::EvalConfig fullEc;
    fullEc.K = ec.K;
    tune::Evaluator fullEv(fullEc);
    const tune::EvalResult base = fullEv.Evaluate(tune::ConfigPoint());
    const tune::EvalResult best = fullEv.Evaluate(win->Best);
    std::cout << "  default config: t = " << base.TotalSeconds
              << " s, cost " << base.Cost << "\n"
              << "  tuned config:   t = " << best.TotalSeconds
              << " s, cost " << best.Cost << "  (x"
              << (best.Cost > 0.0 ? base.Cost / best.Cost : 0.0)
              << " better)\n";
  }

  const std::string xml = tune::EmitXml(win->Best);
  if (outFile.empty())
    std::cout << xml;
  else
  {
    std::ofstream out(outFile);
    if (!out)
    {
      std::cerr << "cannot write " << outFile << "\n";
      return 1;
    }
    out << xml;
    std::cout << "winning configuration written to " << outFile << "\n";
  }
  return 0;
}
