// pm_interop_tour: one array visits every supported programming model.
//
// A simulation produces data with OpenMP target offload on device 0; the
// array is then consumed — through the data model's location- and
// PM-agnostic access, with all movement automatic — by CUDA code on
// device 1, HIP code on device 2, SYCL code on device 3 (the paper's
// future-work PM), a Kokkos-style kernel, and finally plain host C++.
// Each stage transforms the data; the final values prove every stage ran
// against valid data. The platform's copy counters show each hand-off
// moved the data exactly once.
//
// Usage: ./pm_interop_tour [n]     (default 100000)

#include "svtkHAMRDataArray.h"
#include "vcuda.h"
#include "vhip.h"
#include "vkokkos.h"
#include "vomp.h"
#include "vpPlatform.h"
#include "vsycl.h"

#include <cmath>
#include <iostream>

int main(int argc, char **argv)
{
  const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 100000;

  vp::PlatformConfig cfg;
  cfg.DevicesPerNode = 4;
  vp::Platform::Initialize(cfg);

  std::cout << "touring " << n << " doubles through 5 PMs on 4 devices\n";

  // --- stage 0: OpenMP offload producer on device 0 -------------------------
  vomp::SetDefaultDevice(0);
  auto *raw = static_cast<double *>(vomp::TargetAlloc(n * sizeof(double), 0));
  std::shared_ptr<double> sp(raw, [](double *p) { vomp::TargetFree(p, 0); });
  vomp::TargetParallelFor(0, n,
                          [raw](std::size_t b, std::size_t e)
                          {
                            for (std::size_t i = b; i < e; ++i)
                              raw[i] = 1.0;
                          });

  svtkHAMRDoubleArray *data = svtkHAMRDoubleArray::New(
    "tour", sp, n, 1, svtkAllocator::openmp, svtkStream(),
    svtkStreamMode::async, 0);
  std::cout << "  [openmp ] produced on device " << data->GetOwner()
            << " (zero-copy wrap)\n";

  // --- stage 1: CUDA on device 1: +1 ------------------------------------------
  vcuda::SetDevice(1);
  svtkHAMRDoubleArray *s1 = svtkHAMRDoubleArray::New(
    "s1", n, 1, svtkAllocator::cuda_async, svtkStream(vcuda::StreamCreate()),
    svtkStreamMode::async);
  {
    auto in = data->GetCUDAAccessible();
    data->Synchronize();
    double *out = s1->GetData();
    const double *p = in.get();
    vcuda::stream_t strm = vcuda::StreamCreate();
    vcuda::LaunchN(strm, n,
                   [p, out](std::size_t b, std::size_t e)
                   {
                     for (std::size_t i = b; i < e; ++i)
                       out[i] = p[i] + 1.0;
                   });
    vcuda::StreamSynchronize(strm);
  }
  std::cout << "  [cuda   ] +1 on device " << s1->GetOwner() << "\n";

  // --- stage 2: HIP on device 2: *3 ---------------------------------------------
  vhip::SetDevice(2);
  svtkHAMRDoubleArray *s2 = svtkHAMRDoubleArray::New(
    "s2", n, 1, svtkAllocator::hip, svtkStream(), svtkStreamMode::sync);
  {
    auto in = s1->GetHIPAccessible();
    s1->Synchronize();
    double *out = s2->GetData();
    const double *p = in.get();
    vhip::stream_t strm = vhip::StreamCreate();
    vhip::LaunchN(strm, n,
                  [p, out](std::size_t b, std::size_t e)
                  {
                    for (std::size_t i = b; i < e; ++i)
                      out[i] = p[i] * 3.0;
                  });
    vhip::StreamSynchronize(strm);
  }
  std::cout << "  [hip    ] *3 on device " << s2->GetOwner() << "\n";

  // --- stage 3: SYCL on device 3: -2 ----------------------------------------------
  vsycl::queue q(3);
  vsycl::SetDefaultDevice(3);
  svtkHAMRDoubleArray *s3 = svtkHAMRDoubleArray::New(
    "s3", n, 1, svtkAllocator::sycl, svtkStream(q.native()),
    svtkStreamMode::async);
  {
    auto in = s2->GetSYCLAccessible(q);
    s2->Synchronize();
    double *out = s3->GetData();
    const double *p = in.get();
    q.parallel_for(n,
                   [p, out](std::size_t b, std::size_t e)
                   {
                     for (std::size_t i = b; i < e; ++i)
                       out[i] = p[i] - 2.0;
                   });
    q.wait();
  }
  std::cout << "  [sycl   ] -2 on device " << s3->GetOwner() << "\n";

  // --- stage 4: Kokkos-style kernel: square, back on device 0 ------------------------
  vkokkos::SetDefaultDevice(0);
  vkokkos::View<double> view("squared", n, vkokkos::Space::Device);
  {
    auto in = s3->GetDeviceAccessible(0);
    s3->Synchronize();
    const double *p = in.get();
    double *out = view.data();
    vkokkos::parallel_for(vkokkos::RangePolicy(0, n),
                          [p, out](std::size_t i) { out[i] = p[i] * p[i]; });
    vkokkos::fence();
  }
  svtkHAMRDoubleArray *s4 = svtkHAMRDoubleArray::New(
    "s4", view.pointer(), n, 1, svtkAllocator::cuda, svtkStream(),
    svtkStreamMode::sync, 0);
  std::cout << "  [kokkos ] squared on device " << s4->GetOwner()
            << " (zero-copy adoption of the view)\n";

  // --- stage 5: host C++ verifies -----------------------------------------------------
  auto final = s4->GetHostAccessible();
  s4->Synchronize();
  // ((1 + 1) * 3 - 2)^2 = 16
  bool ok = true;
  for (std::size_t i = 0; i < n; ++i)
    ok = ok && std::abs(final.get()[i] - 16.0) < 1e-12;
  std::cout << "  [host   ] verified: " << (ok ? "all 16.0 — correct" : "WRONG")
            << "\n";

  const vp::PlatformStats &stats = vp::Platform::Get().Stats();
  std::cout << "data movement: D2D="
            << stats.Copies(vp::CopyKind::DeviceToDevice)
            << " D2H=" << stats.Copies(vp::CopyKind::DeviceToHost)
            << " H2D=" << stats.Copies(vp::CopyKind::HostToDevice)
            << "  (4 inter-device hand-offs, 1 host view)\n";

  s4->Delete();
  s3->Delete();
  s2->Delete();
  s1->Delete();
  data->Delete();
  return ok ? 0 : 1;
}
