// Quickstart: the paper's Listings 1-4, end to end.
//
// A "simulation" allocates and initializes an array on device 1 with the
// OpenMP PM and zero-copy wraps it in a svtkHAMRDoubleArray (Listing 1).
// Library libA — written in the CUDA PM — adds two arrays on device 2,
// using the data model's PM- and location-agnostic access so it neither
// knows nor cares where its inputs live (Listing 3). Library libB — plain
// host C++ — writes the result to disk through the host access API
// (Listing 4). Listing 2's orchestration is the main() below.
//
// Build: part of the default build. Run: ./quickstart

#include "svtkHAMRDataArray.h"
#include "vcuda.h"
#include "vomp.h"
#include "vpPlatform.h"

#include <fstream>
#include <iostream>
#include <memory>

// --------------------------------------------------------------------------
// libA: adds two arrays using the CUDA PM on an explicitly chosen device
// (paper Listing 3).
namespace libA
{
svtkHAMRDoubleArray *Add(int dev, svtkHAMRDoubleArray *a1,
                        svtkHAMRDoubleArray *a2)
{
  // use this stream for the calculation
  vcuda::SetDevice(dev);
  vcuda::stream_t strm = vcuda::StreamCreate();

  // get a view of the incoming data on the device we will use; any
  // host-device or inter-device movement, or PM interoperability
  // transformations, are handled automatically and invisibly here
  auto spA1 = a1->GetCUDAAccessible();
  const double *pA1 = spA1.get();

  auto spA2 = a2->GetCUDAAccessible();
  const double *pA2 = spA2.get();

  // allocate space for the result
  const std::size_t nElem = a1->GetNumberOfTuples();
  svtkHAMRDoubleArray *a3 = svtkHAMRDoubleArray::New(
    "sum", nElem, 1, svtkAllocator::cuda_async, strm, svtkStreamMode::async);

  // direct access to the result since we know it is in place
  double *pA3 = a3->GetData();

  // make sure the data in flight, if it was moved, has arrived
  a1->Synchronize();
  a2->Synchronize();

  // do the calculation (replaces add<<<blocks, threads, 0, strm>>>)
  vcuda::LaunchN(strm, nElem,
                 [pA3, pA1, pA2](std::size_t b, std::size_t e)
                 {
                   for (std::size_t i = b; i < e; ++i)
                     pA3[i] = pA1[i] + pA2[i];
                 });

  return a3;
}
} // namespace libA

// --------------------------------------------------------------------------
// libB: writes an array to disk in host-only C++ (paper Listing 4).
namespace libB
{
void Write(std::ofstream &ofs, svtkHAMRDoubleArray *a)
{
  // get a view of the data on the host
  auto spA = a->GetHostAccessible();
  const double *pA = spA.get();

  // make sure the data, if moved, has arrived
  a->Synchronize();

  // send the data to the file
  const std::size_t nElem = a->GetNumberOfTuples();
  for (std::size_t i = 0; i < nElem; ++i)
    ofs << pA[i] << " ";
}
} // namespace libB

// --------------------------------------------------------------------------
int main()
{
  // a virtual node with 4 accelerators stands in for a Perlmutter node
  vp::PlatformConfig cfg;
  cfg.DevicesPerNode = 4;
  vp::Platform::Initialize(cfg);

  const std::size_t nElem = 1000;

  // --- a host-resident array (Listing 2, line 2) ---------------------------
  svtkHAMRDoubleArray *a1 = svtkHAMRDoubleArray::New(
    "a1", nElem, 1, svtkAllocator::malloc_, svtkStream(),
    svtkStreamMode::sync, 1.0);

  // --- Listing 1: package device data for zero-copy transfer ----------------
  const int devId = 1;
  vomp::SetDefaultDevice(devId);

  // allocate device memory
  auto *devPtr =
    static_cast<double *>(vomp::TargetAlloc(nElem * sizeof(double), devId));

  // wrap it in a shared pointer so it is eventually deallocated
  std::shared_ptr<double> spDev(
    devPtr, [devId](double *ptr) { vomp::TargetFree(ptr, devId); });

  // initialize the array on the device
  // (#pragma omp target teams distribute parallel for is_device_ptr)
  vomp::TargetParallelFor(devId, nElem,
                          [devPtr](std::size_t b, std::size_t e)
                          {
                            for (std::size_t i = b; i < e; ++i)
                              devPtr[i] = -3.14;
                          });

  // zero-copy construct with coordinated life cycle management
  svtkHAMRDoubleArray *simData = svtkHAMRDoubleArray::New(
    "simData", spDev, nElem, 1, svtkAllocator::openmp, svtkStream(),
    svtkStreamMode::async, devId);

  std::cout << "simData: " << nElem << " doubles on device "
            << simData->GetOwner() << ", zero-copy = "
            << (simData->GetData() == devPtr ? "yes" : "no") << "\n";

  // --- Listing 2: PM interoperability -----------------------------------------
  // host data (malloc) + OpenMP device-1 data added by CUDA code on device 2
  svtkHAMRDoubleArray *sum = libA::Add(2, a1, simData);

  // pass libA's result to libB for output to disk
  std::ofstream ofs("quickstart_sum.txt");
  libB::Write(ofs, sum);
  ofs.close();

  // check: 1.0 + (-3.14) everywhere
  auto view = sum->GetHostAccessible();
  sum->Synchronize();
  bool ok = true;
  for (std::size_t i = 0; i < nElem; ++i)
    ok = ok && std::abs(view.get()[i] - (1.0 - 3.14)) < 1e-12;

  std::cout << "sum[0..2] = " << view.get()[0] << ' ' << view.get()[1] << ' '
            << view.get()[2] << "  (" << (ok ? "correct" : "WRONG") << ")\n"
            << "result lives on device " << sum->GetOwner()
            << "; wrote quickstart_sum.txt\n";

  const vp::PlatformStats &stats = vp::Platform::Get().Stats();
  std::cout << "data movement: H2D=" << stats.Copies(vp::CopyKind::HostToDevice)
            << " D2D=" << stats.Copies(vp::CopyKind::DeviceToDevice)
            << " D2H=" << stats.Copies(vp::CopyKind::DeviceToHost)
            << " (each input moved exactly once, the result once)\n";

  // free up the containers; shared pointers release the device memory
  sum->Delete();
  simData->Delete();
  a1->Delete();

  return ok ? 0 : 1;
}
