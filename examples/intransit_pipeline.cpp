// intransit_pipeline: in transit analysis — the deployment alternative
// the paper's related work compares against (refs [4, 8, 13, 14]). The
// world's ranks split into simulation senders and analysis endpoints:
// each solver rank serializes its body table every step and ships it to
// an assigned endpoint (M-to-N redistribution); endpoints assemble their
// blocks and run the data binning analysis across the endpoint group,
// completely off the simulation's resources.
//
// Usage: ./intransit_pipeline [bodies] [steps] [senders] [endpoints]
//        defaults: 2048 8 3 1
//
// Output: intransit_mass_xy.vti (binning of the final step) and a run
// summary contrasting the sender-visible transport cost with the
// endpoint's analysis time.

#include "minimpi.h"
#include "newtonDataAdaptor.h"
#include "newtonSolver.h"
#include "senseiDataBinning.h"
#include "senseiInTransit.h"
#include "sio.h"
#include "vpClock.h"
#include "vpPlatform.h"

#include <iostream>

int main(int argc, char **argv)
{
  const std::size_t bodies = argc > 1 ? std::stoul(argv[1]) : 2048;
  const long steps = argc > 2 ? std::stol(argv[2]) : 8;
  const int senders = argc > 3 ? std::stoi(argv[3]) : 3;
  const int endpoints = argc > 4 ? std::stoi(argv[4]) : 1;

  vp::PlatformConfig plat;
  plat.DevicesPerNode = 4;
  plat.HostCoresPerNode = 64;
  vp::Platform::Initialize(plat);

  std::cout << "in transit | " << senders << " simulation ranks -> "
            << endpoints << " endpoint rank(s), " << bodies << " bodies, "
            << steps << " steps\n";

  double sendSeconds = 0.0;
  double endpointSeconds = 0.0;
  long processed = 0;

  minimpi::Run(senders + endpoints,
               [&](minimpi::Communicator &world)
               {
                 const sensei::InTransitLayout layout(world.Size(), endpoints);
                 const bool isEp = layout.IsEndpoint(world.Rank());
                 minimpi::Communicator group = world.Split(isEp ? 1 : 0);

                 if (!isEp)
                 {
                   // --- simulation side: solve, serialize, ship -------------
                   newton::Config cfg;
                   cfg.TotalBodies = bodies;
                   cfg.Ic = newton::InitialCondition::Galaxy;
                   cfg.CentralMass = 200.0;
                   cfg.Repartition = false;

                   newton::Solver solver(&group, cfg);
                   solver.Initialize();
                   newton::DataAdaptor *bridge =
                     newton::DataAdaptor::New(&solver);
                   bridge->SetCommunicator(&group);

                   sensei::InTransitSender sender(&world, layout, "bodies");
                   double visible = 0.0;
                   for (long s = 0; s < steps; ++s)
                   {
                     solver.Step();
                     bridge->Update();
                     const double t0 = vp::ThisClock().Now();
                     sender.Send(bridge);
                     bridge->ReleaseData();
                     visible += vp::ThisClock().Now() - t0;
                   }
                   sender.Close();
                   bridge->Delete();

                   if (group.Rank() == 0)
                     sendSeconds = visible / static_cast<double>(steps);
                   return;
                 }

                 // --- endpoint side: receive, assemble, analyze ----------------
                 sensei::DataBinning *binning = sensei::DataBinning::New();
                 binning->SetMeshName("bodies");
                 binning->SetAxes({"x", "y"});
                 binning->SetResolution({256});
                 binning->AddOperation("m", sensei::BinningOp::Sum);
                 binning->SetDeviceId(sensei::AnalysisAdaptor::DEVICE_HOST);

                 sensei::InTransitEndpoint endpoint(&world, &group, layout,
                                                    "bodies");
                 const double t0 = vp::ThisClock().Now();
                 const long n = endpoint.Run(binning);
                 const double dt = vp::ThisClock().Now() - t0;

                 if (group.Rank() == 0)
                 {
                   processed = n;
                   endpointSeconds = dt / static_cast<double>(n > 0 ? n : 1);
                   if (svtkImageData *img = binning->GetLastResult())
                   {
                     sio::WriteVTI("intransit_mass_xy.vti", img);
                     img->UnRegister();
                   }
                 }
                 binning->Delete();
               });

  std::cout << "endpoint processed " << processed << " steps\n"
            << "sender-visible transport cost : " << sendSeconds
            << " s/step (serialize + ship)\n"
            << "endpoint analysis cadence     : " << endpointSeconds
            << " s/step (receive + assemble + bin)\n"
            << "wrote intransit_mass_xy.vti\n";
  return processed == steps ? 0 : 1;
}
