// nbody_insitu: the paper's evaluation scenario at laptop scale — the
// Newton++ n-body simulation (OpenMP offload PM) coupled through SENSEI
// to a CUDA data binning analysis, configured at run time with SENSEI
// XML, on a multi-rank, multi-device virtual node.
//
// Usage: ./nbody_insitu [bodies] [steps] [ranks] [xml-file]
//   bodies  total body count            (default 2048)
//   steps   iterations                  (default 10)
//   ranks   MPI ranks = threads         (default 4)
//   xml     SENSEI config file          (default: built-in config)
//
// Outputs: nbody_mass_xy.vti (in situ mass binning), nbody_bodies_*.csv
// (posthoc IO of the final step), and a run summary on stdout.

#include "minimpi.h"
#include "newtonDriver.h"
#include "schedPipeline.h"
#include "senseiConfigurableAnalysis.h"
#include "senseiDataBinning.h"
#include "senseiProfiler.h"
#include "sio.h"
#include "vpChecker.h"
#include "vpFaultInjector.h"
#include "vpPlatform.h"

#include <fstream>
#include <iostream>
#include <sstream>

namespace
{
const char *DefaultXml = R"(<sensei>
  <!-- in situ mass binning in the x-y plane, on the data's device -->
  <analysis type="data_binning" mesh="bodies" axes="x,y" resolution="64,64"
            ops="sum,count" values="m," device="auto" async="1"/>
  <!-- a host-side histogram of the speed distribution -->
  <analysis type="histogram" mesh="bodies" column="speed" bins="32"
            device="host"/>
  <!-- dump the final state for post hoc visualization -->
  <analysis type="posthoc_io" mesh="bodies" dir="." prefix="nbody_bodies"
            frequency="10" format="csv"/>
</sensei>)";
} // namespace

int main(int argc, char **argv)
{
  const std::size_t bodies = argc > 1 ? std::stoul(argv[1]) : 2048;
  const long steps = argc > 2 ? std::stol(argv[2]) : 10;
  const int ranks = argc > 3 ? std::stoi(argv[3]) : 4;
  const std::string xmlFile = argc > 4 ? argv[4] : "";

  // one virtual GPU node
  vp::PlatformConfig plat;
  plat.DevicesPerNode = 4;
  plat.HostCoresPerNode = 64;
  vp::Platform::Initialize(plat);

  newton::Config sim;
  sim.TotalBodies = bodies;
  sim.Ic = newton::InitialCondition::Galaxy;
  sim.CentralMass = 200.0;
  sim.Dt = 5e-4;

  std::cout << "newton++ | " << bodies << " bodies, " << steps << " steps, "
            << ranks << " ranks on " << plat.DevicesPerNode
            << " virtual GPUs\n";

  std::vector<double> totals(static_cast<std::size_t>(ranks), 0.0);
  std::vector<double> solver(static_cast<std::size_t>(ranks), 0.0);
  std::vector<double> insitu(static_cast<std::size_t>(ranks), 0.0);

  minimpi::Run(ranks,
               [&](minimpi::Communicator &comm)
               {
                 sensei::ConfigurableAnalysis *analysis =
                   sensei::ConfigurableAnalysis::New();
                 if (xmlFile.empty())
                   analysis->InitializeString(DefaultXml);
                 else
                   analysis->InitializeFile(xmlFile);

                 newton::Driver driver(&comm, sim, analysis);
                 driver.Initialize();
                 const double total = driver.Run(steps);

                 const std::size_t r = static_cast<std::size_t>(comm.Rank());
                 totals[r] = total;
                 solver[r] = driver.MeanSolverSeconds();
                 insitu[r] = driver.MeanInSituSeconds();

                 // rank 0 exports the final binning result
                 if (comm.Rank() == 0 && xmlFile.empty())
                 {
                   if (auto *binning = dynamic_cast<sensei::DataBinning *>(
                         analysis->GetAnalysis(0)))
                   {
                     if (svtkImageData *img = binning->GetLastResult())
                     {
                       sio::WriteVTI("nbody_mass_xy.vti", img);
                       img->UnRegister();
                     }
                   }
                 }
                 analysis->Delete();
               });

  double meanSolver = 0, meanInsitu = 0, total = 0;
  for (int r = 0; r < ranks; ++r)
  {
    meanSolver += solver[static_cast<std::size_t>(r)] / ranks;
    meanInsitu += insitu[static_cast<std::size_t>(r)] / ranks;
    total = std::max(total, totals[static_cast<std::size_t>(r)]);
  }

  std::cout << "total run time (virtual)     : " << total << " s\n"
            << "avg solver time / iteration  : " << meanSolver << " s\n"
            << "avg in situ time / iteration : " << meanInsitu
            << " s (apparent; binning ran asynchronously)\n"
            << "wrote nbody_mass_xy.vti and nbody_bodies_r*_s*.csv\n";

  // every rank's analyses were drained before their Finalize (see
  // ConfigurableAnalysis::Finalize) and all ranks have joined, so the
  // scheduler counters and the profiler series are settled: export them
  // now — never while async work is still in flight
  sensei::ExportSchedStats(sensei::Profiler::Global());
  sensei::ExportCompressStats(sensei::Profiler::Global());
  sensei::ExportExecStats(sensei::Profiler::Global());
  sensei::ExportGraphStats(sensei::Profiler::Global());
  sensei::ExportLayoutStats(sensei::Profiler::Global());
  sensei::ExportServiceStats(sensei::Profiler::Global());
  sensei::ExportVizStats(sensei::Profiler::Global());
  {
    std::ofstream json("nbody_profile.json");
    json << sensei::Profiler::Global().ToJson() << '\n';
  }
  {
    const sched::PipelineStats ps = sched::AggregateStats();
    std::cout << "sched: " << ps.Submitted << " submitted, " << ps.Executed
              << " executed, " << ps.Dropped << " dropped, " << ps.Coalesced
              << " coalesced, stall " << ps.StallSeconds << " s (virtual)\n"
              << "wrote nbody_profile.json\n";
  }

  // with <check> (or VP_CHECK=1) the run doubles as a race/lifetime gate:
  // all ranks have joined, so finalize the checker once from the main
  // thread and fail the run on any violation
  if (vp::check::Enabled())
  {
    const vp::check::Report report = vp::check::Finalize();
    sensei::ExportCheckReport(sensei::Profiler::Global(), report);
    if (vp::fault::Enabled())
    {
      const vp::fault::FaultStats f = vp::fault::Stats();
      std::cout << "fault injection: " << f.AllocFailures
                << " allocation failures absorbed by the pool, "
                << f.EventsDropped << " events dropped, " << f.DelaysApplied
                << " stream delays applied\n";
    }
    if (report.Total())
    {
      std::cerr << "VP_CHECK: " << report.Total() << " violations\n"
                << report.Summary();
      return 2;
    }
    std::cout << "VP_CHECK: 0 violations\n";
  }
  return 0;
}
