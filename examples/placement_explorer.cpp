// placement_explorer: interactive view of the paper's automatic device
// selection rule (Eq. 1),
//
//     d = ((r mod n_u) * s + d_0) mod n_a
//
// Prints the rank -> device map for the placements used in the paper's
// evaluation plus any custom (n_u, s, d_0) triple given on the command
// line, so users can see where their in situ analyses will land before
// writing the XML.
//
// Usage: ./placement_explorer [ranks] [n_a] [n_u s d0]

#include "senseiAnalysisAdaptor.h"

#include <iomanip>
#include <iostream>
#include <string>

namespace
{
/// A concrete adaptor so we can use the base-class placement API.
class Probe : public sensei::AnalysisAdaptor
{
public:
  static Probe *New() { return new Probe; }
  bool Execute(sensei::DataAdaptor *) override { return true; }
};

void PrintMap(const std::string &label, int ranks, int na, int nu, int s,
              int d0)
{
  Probe *p = Probe::New();
  p->SetDevicesToUse(nu);
  p->SetDeviceStride(s);
  p->SetDeviceStart(d0);

  std::cout << std::left << std::setw(34) << label << " | ";
  for (int r = 0; r < ranks; ++r)
  {
    const int d = p->GetPlacementDevice(r, na);
    std::cout << (d == sensei::AnalysisAdaptor::DEVICE_HOST
                    ? std::string("H")
                    : std::to_string(d))
              << (r + 1 < ranks ? " " : "");
  }
  std::cout << "\n";
  p->Delete();
}
} // namespace

int main(int argc, char **argv)
{
  const int ranks = argc > 1 ? std::stoi(argv[1]) : 8;
  const int na = argc > 2 ? std::stoi(argv[2]) : 4;

  std::cout << "device assigned per MPI rank (" << ranks << " ranks, n_a="
            << na << " devices/node)\n"
            << "rule: d = ((r mod n_u) * s + d_0) mod n_a\n\n";

  PrintMap("defaults (n_u=n_a, s=1, d0=0)", ranks, na, 0, 1, 0);
  PrintMap("same-device placement", ranks, na, 0, 1, 0);
  PrintMap("1 dedicated (n_u=1, d0=3)", ranks, na, 1, 1, 3);
  PrintMap("2 dedicated (n_u=2, d0=2)", ranks, na, 2, 1, 2);
  PrintMap("strided (n_u=2, s=2)", ranks, na, 2, 2, 0);
  PrintMap("offset round robin (d0=1)", ranks, na, 0, 1, 1);

  if (argc > 5)
  {
    const int nu = std::stoi(argv[3]);
    const int s = std::stoi(argv[4]);
    const int d0 = std::stoi(argv[5]);
    std::cout << "\ncustom:\n";
    PrintMap("custom (n_u=" + std::to_string(nu) + ", s=" + std::to_string(s) +
               ", d0=" + std::to_string(d0) + ")",
             ranks, na, nu, s, d0);
  }

  // host placement for contrast
  Probe *p = Probe::New();
  p->SetDeviceId(sensei::AnalysisAdaptor::DEVICE_HOST);
  std::cout << std::left << std::setw(34) << "host placement (device=\"host\")"
            << " | ";
  for (int r = 0; r < ranks; ++r)
    std::cout << "H ";
  std::cout << "\n";
  p->Delete();

  return 0;
}
