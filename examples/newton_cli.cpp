// newton_cli: the Newton++ simulation as a standalone tool, matching the
// paper's description of the code — "an open source direct n-body
// simulation with a second order, time reversible, symplectic integration
// scheme ... parallelized with MPI and OpenMP device offload ...
// instrumented with SENSEI, and it has a VTK compatible output format for
// post processing and visualization".
//
// Usage:
//   ./newton_cli [options]
//     --bodies N        total bodies                  (default 4096)
//     --steps N         time steps                    (default 20)
//     --ranks N         MPI ranks (threads)           (default 4)
//     --dt X            time step size                (default 5e-4)
//     --ic uniform|galaxy                             (default uniform)
//     --central-mass X  massive body at the origin    (default 1000)
//     --out PREFIX      write PREFIX_rR_sS.vtk snapshots every 10 steps
//     --sensei FILE     drive a SENSEI XML analysis chain in situ
//     --energy          report energy drift (diagnostic; O(N^2) on host)

#include "minimpi.h"
#include "newtonDriver.h"
#include "senseiConfigurableAnalysis.h"
#include "senseiPosthocIO.h"
#include "vpPlatform.h"

#include <cstring>
#include <iostream>

int main(int argc, char **argv)
{
  newton::Config cfg;
  cfg.TotalBodies = 4096;
  cfg.Dt = 5e-4;
  cfg.CentralMass = 1000.0;

  long steps = 20;
  int ranks = 4;
  std::string outPrefix;
  std::string senseiXml;
  bool energyCheck = false;

  for (int i = 1; i < argc; ++i)
  {
    const std::string arg = argv[i];
    auto next = [&]() -> const char *
    {
      if (i + 1 >= argc)
      {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };

    if (arg == "--bodies")
      cfg.TotalBodies = std::stoul(next());
    else if (arg == "--steps")
      steps = std::stol(next());
    else if (arg == "--ranks")
      ranks = std::stoi(next());
    else if (arg == "--dt")
      cfg.Dt = std::stod(next());
    else if (arg == "--central-mass")
      cfg.CentralMass = std::stod(next());
    else if (arg == "--ic")
      cfg.Ic = std::strcmp(next(), "galaxy") == 0
                 ? newton::InitialCondition::Galaxy
                 : newton::InitialCondition::UniformRandom;
    else if (arg == "--out")
      outPrefix = next();
    else if (arg == "--sensei")
      senseiXml = next();
    else if (arg == "--energy")
      energyCheck = true;
    else
    {
      std::cerr << "unknown option " << arg << " (see header for usage)\n";
      return 2;
    }
  }

  vp::PlatformConfig plat;
  plat.DevicesPerNode = 4;
  plat.HostCoresPerNode = 64;
  vp::Platform::Initialize(plat);

  std::cout << "newton++ | " << cfg.TotalBodies << " bodies, " << steps
            << " steps, dt=" << cfg.Dt << ", "
            << (cfg.Ic == newton::InitialCondition::Galaxy ? "galaxy"
                                                           : "uniform")
            << " IC, " << ranks << " ranks\n";

  double e0 = 0, e1 = 0, total = 0, solverMean = 0;

  minimpi::Run(ranks,
               [&](minimpi::Communicator &comm)
               {
                 // assemble the in situ chain: user XML and/or VTK output
                 sensei::ConfigurableAnalysis *chain = nullptr;
                 if (!senseiXml.empty())
                 {
                   chain = sensei::ConfigurableAnalysis::New();
                   chain->InitializeFile(senseiXml);
                 }

                 sensei::PosthocIO *writer = nullptr;
                 if (!outPrefix.empty())
                 {
                   writer = sensei::PosthocIO::New();
                   writer->SetMeshName("bodies");
                   writer->SetOutputDir(".");
                   writer->SetPrefix(outPrefix);
                   writer->SetFrequency(10);
                   writer->SetFormat(sensei::PosthocIO::Format::VTK);
                 }

                 newton::Driver driver(&comm, cfg, chain);
                 driver.Initialize();

                 if (energyCheck)
                 {
                   const double e = driver.GetSolver().TotalEnergy();
                   if (comm.Rank() == 0)
                     e0 = e;
                 }

                 // the driver runs the chain; the writer (if any) rides
                 // along per step
                 const double t = [&]
                 {
                   if (!writer)
                     return driver.Run(steps);
                   double elapsed = 0;
                   for (long s = 0; s < steps; ++s)
                   {
                     elapsed += driver.Run(1);
                     writer->Execute(driver.GetBridge());
                   }
                   writer->Finalize();
                   return elapsed;
                 }();

                 if (energyCheck)
                 {
                   const double e = driver.GetSolver().TotalEnergy();
                   if (comm.Rank() == 0)
                     e1 = e;
                 }

                 if (comm.Rank() == 0)
                 {
                   total = t;
                   solverMean = driver.MeanSolverSeconds();
                 }

                 if (writer)
                   writer->Delete();
                 if (chain)
                   chain->Delete();
               });

  std::cout << "total run time (virtual) : " << total << " s\n"
            << "solver per step          : " << solverMean << " s\n";
  if (energyCheck)
  {
    const double drift = std::abs(e1 - e0) / std::abs(e0);
    std::cout << "energy: " << e0 << " -> " << e1 << " (relative drift "
              << drift << ")\n";
    if (drift > 0.05)
    {
      std::cerr << "energy drift too large — reduce dt\n";
      return 1;
    }
  }
  if (!outPrefix.empty())
    std::cout << "wrote " << outPrefix << "_r*_s*.vtk\n";
  return 0;
}
