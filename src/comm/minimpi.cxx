#include "minimpi.h"

#include "vpClock.h"
#include "vpPlatform.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

namespace minimpi
{

namespace
{
/// One buffered message.
struct Message
{
  std::vector<std::uint8_t> Data;
  double AvailTime = 0.0; ///< virtual time at which the payload has arrived
};

/// Process-wide single-message cap (see Communicator::SetMaxMessageBytes).
std::atomic<std::size_t> MaxMessageBytes{(std::size_t(1) << 31) - 1};

void StoreU64LE(std::uint8_t *p, std::uint64_t v)
{
  for (int i = 0; i < 8; ++i)
    p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t LoadU64LE(const std::uint8_t *p)
{
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

/// Root-rank id of the current thread in a lockstep region (-1 outside).
/// Indexed by launch rank, not per-context rank: Dup/Split children keep
/// their own numbering, but the scheduling token belongs to the thread.
thread_local int TlLockstepRank = -1;
} // namespace

/// Cooperative deterministic scheduler for LaunchOptions::Lockstep. One
/// token, one runner: a rank thread executes only while it owns the
/// token; blocking operations hand it back with a wakeup predicate, and
/// every grant re-evaluates the blocked predicates and picks the
/// lowest-numbered runnable rank. Because exactly one rank runs at a
/// time and the handoff order is a pure function of program state, the
/// order in which ranks reach shared virtual resources — and therefore
/// every virtual timestamp — is reproducible across runs.
///
/// Progress from outside the rank set (e.g. a service endpoint thread
/// delivering a message) is covered by Ping(), which re-runs the grant
/// when the token is parked. An incorrect program that deadlocks under
/// real MPI deadlocks here too (all ranks blocked, no owner) — lockstep
/// preserves hang semantics rather than masking them.
class LockstepSched
{
public:
  explicit LockstepSched(int ranks)
    : State_(static_cast<std::size_t>(ranks), Ready),
      Preds_(static_cast<std::size_t>(ranks))
  {
    std::lock_guard<std::mutex> lock(this->M_);
    this->Grant();
  }

  /// Called by rank `r`'s thread before the user function: wait for the
  /// first grant.
  void Start(int r)
  {
    std::unique_lock<std::mutex> lock(this->M_);
    this->Cv_.wait(lock, [&] { return this->Owner_ == r; });
    this->State_[static_cast<std::size_t>(r)] = Running;
  }

  /// Rank `r` finished (normally or by exception): retire it and pass
  /// the token on.
  void Finish(int r)
  {
    std::lock_guard<std::mutex> lock(this->M_);
    this->State_[static_cast<std::size_t>(r)] = Done;
    this->Owner_ = -1;
    this->Grant();
  }

  /// Block rank `r` until `pred()` holds, yielding the token while it
  /// does not. The predicate is re-evaluated under the scheduler lock by
  /// whichever thread runs the grant, so it must take any locks the
  /// state it reads needs. Re-checked after every wakeup: a concurrent
  /// consumer may have invalidated it again.
  void Wait(int r, const std::function<bool()> &pred)
  {
    std::unique_lock<std::mutex> lock(this->M_);
    while (!pred())
    {
      this->State_[static_cast<std::size_t>(r)] = Blocked;
      this->Preds_[static_cast<std::size_t>(r)] = pred;
      this->Owner_ = -1;
      this->Grant();
      this->Cv_.wait(lock, [&] { return this->Owner_ == r; });
      this->State_[static_cast<std::size_t>(r)] = Running;
    }
  }

  /// External progress (a send from a non-rank thread): re-run the grant
  /// when the token is parked with every rank blocked.
  void Ping()
  {
    std::lock_guard<std::mutex> lock(this->M_);
    if (this->Owner_ < 0)
      this->Grant();
  }

private:
  /// M_ held. Promote blocked ranks whose predicates now hold, then hand
  /// the token to the lowest-numbered runnable rank.
  void Grant()
  {
    if (this->Owner_ >= 0)
      return;
    const int n = static_cast<int>(this->State_.size());
    for (int r = 0; r < n; ++r)
    {
      auto &pred = this->Preds_[static_cast<std::size_t>(r)];
      if (this->State_[static_cast<std::size_t>(r)] == Blocked && pred &&
          pred())
      {
        this->State_[static_cast<std::size_t>(r)] = Ready;
        pred = nullptr;
      }
    }
    for (int r = 0; r < n; ++r)
      if (this->State_[static_cast<std::size_t>(r)] == Ready)
      {
        this->Owner_ = r;
        this->Cv_.notify_all();
        return;
      }
  }

  enum RankState
  {
    Ready,
    Running,
    Blocked,
    Done
  };

  std::mutex M_;
  std::condition_variable Cv_;
  int Owner_ = -1;
  std::vector<RankState> State_;
  std::vector<std::function<bool()>> Preds_;
};

/// Shared state of one rank-parallel region.
class Context
{
public:
  Context(int size, int ranksPerNode)
    : Size_(size), RanksPerNode_(ranksPerNode), InPtrs_(size),
      EntryTimes_(size)
  {
    this->Mail_.resize(static_cast<std::size_t>(size));
    for (auto &m : this->Mail_)
      m = std::make_unique<Mailbox>();
  }

  int Size() const noexcept { return this->Size_; }
  int RanksPerNode() const noexcept { return this->RanksPerNode_; }

  /// Attach the cooperative scheduler of a lockstep launch (propagated
  /// to Dup/Split children; null outside lockstep regions).
  void SetLockstep(LockstepSched *ls) { this->Ls_ = ls; }

  // --- p2p -------------------------------------------------------------------
  void Send(int src, int dest, int tag, const void *data, std::size_t bytes)
  {
    if (dest < 0 || dest >= this->Size_)
      throw std::out_of_range("minimpi::Send: invalid destination rank");

    const vp::CostModel &cost = vp::Platform::Get().Config().Cost;
    Message msg;
    msg.Data.resize(bytes);
    if (bytes)
      std::memcpy(msg.Data.data(), data, bytes);
    msg.AvailTime = vp::ThisClock().Now() + cost.MessageLatency +
                    static_cast<double>(bytes) / cost.MessageBandwidth;

    Mailbox &mb = *this->Mail_[static_cast<std::size_t>(dest)];
    {
      std::lock_guard<std::mutex> lock(mb.Mutex);
      mb.Queue.emplace(std::make_pair(src, tag), std::move(msg));
    }
    mb.Cv.notify_all();
    if (this->Ls_ && TlLockstepRank < 0)
      this->Ls_->Ping(); // a non-rank thread made progress

    // the sender pays a small injection cost
    vp::ThisClock().Advance(cost.MessageLatency);
  }

  std::vector<std::uint8_t> Recv(int self, int src, int tag)
  {
    if (src < 0 || src >= this->Size_)
      throw std::out_of_range("minimpi::Recv: invalid source rank");

    Mailbox &mb = *this->Mail_[static_cast<std::size_t>(self)];
    const auto key = std::make_pair(src, tag);
    // lower_bound, not find: multimap::find may return any message with
    // this key, but chunked transfers need oldest-first (FIFO) delivery
    // per (source, tag). Insertion order is preserved among equal keys,
    // and lower_bound always lands on the first of them.
    auto ready = [&mb, key]
    {
      auto it = mb.Queue.lower_bound(key);
      return it != mb.Queue.end() && it->first == key;
    };

    if (this->Ls_ && TlLockstepRank >= 0)
      this->Ls_->Wait(TlLockstepRank,
                      [&mb, ready]
                      {
                        std::lock_guard<std::mutex> lock(mb.Mutex);
                        return ready();
                      });

    std::unique_lock<std::mutex> lock(mb.Mutex);
    if (!(this->Ls_ && TlLockstepRank >= 0))
      mb.Cv.wait(lock, ready);

    auto it = mb.Queue.lower_bound(key);
    Message msg = std::move(it->second);
    mb.Queue.erase(it);
    lock.unlock();

    vp::ThisClock().AdvanceTo(msg.AvailTime);
    return std::move(msg.Data);
  }

  /// Timed variant: false on a real-time timeout, nothing consumed.
  bool RecvTimed(int self, int src, int tag, std::vector<std::uint8_t> &out,
                 double timeoutSeconds)
  {
    if (src < 0 || src >= this->Size_)
      throw std::out_of_range("minimpi::Recv: invalid source rank");

    Mailbox &mb = *this->Mail_[static_cast<std::size_t>(self)];
    const auto key = std::make_pair(src, tag);

    // untimed waits join the lockstep rotation; finite timeouts keep
    // real-time semantics and stay outside the token
    if (this->Ls_ && TlLockstepRank >= 0 && timeoutSeconds < 0.0)
      this->Ls_->Wait(TlLockstepRank,
                      [&mb, key]
                      {
                        std::lock_guard<std::mutex> lock(mb.Mutex);
                        auto it = mb.Queue.lower_bound(key);
                        return it != mb.Queue.end() && it->first == key;
                      });

    std::unique_lock<std::mutex> lock(mb.Mutex);
    auto ready = [&]
    {
      auto it = mb.Queue.lower_bound(key);
      return it != mb.Queue.end() && it->first == key;
    };

    if (timeoutSeconds < 0.0)
    {
      if (!(this->Ls_ && TlLockstepRank >= 0))
        mb.Cv.wait(lock, ready);
    }
    else
    {
      const auto deadline = std::chrono::nanoseconds(
        static_cast<std::int64_t>(std::max(0.0, timeoutSeconds) * 1e9));
      if (!mb.Cv.wait_for(lock, deadline, ready))
        return false;
    }

    auto it = mb.Queue.lower_bound(key);
    Message msg = std::move(it->second);
    mb.Queue.erase(it);
    lock.unlock();

    vp::ThisClock().AdvanceTo(msg.AvailTime);
    out = std::move(msg.Data);
    return true;
  }

  // --- collectives -------------------------------------------------------------

  /// Generic two-phase collective. Every rank contributes (in, bytes);
  /// the last arrival runs `combine` (with all input pointers valid) to
  /// fill Scratch_ and must return the per-rank payload size; every rank
  /// then copies `outBytes` from Scratch_ + outOffset(rank) into `out`.
  void Collective(int rank, const void *in, std::size_t bytes, void *out,
                  std::size_t outBytes,
                  const std::function<void(const std::vector<const void *> &)>
                    &combine,
                  const std::function<std::size_t(int)> &outOffset)
  {
    std::unique_lock<std::mutex> lock(this->CollMutex_);
    const std::uint64_t myGen = this->Generation_;
    this->InPtrs_[static_cast<std::size_t>(rank)] = in;
    this->EntryTimes_[static_cast<std::size_t>(rank)] = vp::ThisClock().Now();

    if (++this->Arrived_ == this->Size_)
    {
      if (combine)
        combine(this->InPtrs_);

      // collective cost: tree fan-in/out over the participants
      const vp::CostModel &cost = vp::Platform::Get().Config().Cost;
      const double entry =
        *std::max_element(this->EntryTimes_.begin(), this->EntryTimes_.end());
      const double steps =
        std::ceil(std::log2(static_cast<double>(std::max(this->Size_, 2))));
      this->ExitTime_ =
        entry + steps * (cost.MessageLatency +
                         static_cast<double>(bytes) / cost.MessageBandwidth);

      this->Arrived_ = 0;
      ++this->Generation_;
      this->CollCv_.notify_all();
    }
    else if (this->Ls_ && TlLockstepRank >= 0)
    {
      lock.unlock();
      this->Ls_->Wait(TlLockstepRank,
                      [this, myGen]
                      {
                        std::lock_guard<std::mutex> l(this->CollMutex_);
                        return this->Generation_ != myGen;
                      });
      lock.lock();
    }
    else
    {
      this->CollCv_.wait(lock, [&] { return this->Generation_ != myGen; });
    }

    if (out && outBytes)
      std::memcpy(out, this->Scratch_.data() + outOffset(rank), outBytes);
    vp::ThisClock().AdvanceTo(this->ExitTime_);
  }

  std::vector<std::uint8_t> &Scratch() { return this->Scratch_; }

  /// Lazily created duplicate context #idx (thread safe; every rank
  /// resolving the same idx gets the same child).
  Context *GetDup(int idx)
  {
    std::lock_guard<std::mutex> lock(this->DupMutex_);
    auto &slot = this->Dups_[idx];
    if (!slot)
    {
      slot = std::make_unique<Context>(this->Size_, this->RanksPerNode_);
      slot->SetLockstep(this->Ls_);
    }
    return slot.get();
  }

  /// Lazily created split child for generation `idx` and `color`, sized
  /// `members` (thread safe; every same-color rank gets the same child).
  Context *GetSplit(int idx, int color, int members)
  {
    std::lock_guard<std::mutex> lock(this->DupMutex_);
    auto &slot = this->Splits_[{idx, color}];
    if (!slot)
    {
      slot = std::make_unique<Context>(members, 0);
      slot->SetLockstep(this->Ls_);
    }
    return slot.get();
  }

private:
  struct Mailbox
  {
    std::mutex Mutex;
    std::condition_variable Cv;
    std::multimap<std::pair<int, int>, Message> Queue;
  };

  int Size_ = 1;
  int RanksPerNode_ = 0;
  LockstepSched *Ls_ = nullptr;
  std::vector<std::unique_ptr<Mailbox>> Mail_;

  std::mutex CollMutex_;
  std::condition_variable CollCv_;
  int Arrived_ = 0;
  std::uint64_t Generation_ = 0;
  std::vector<const void *> InPtrs_;
  std::vector<double> EntryTimes_;
  std::vector<std::uint8_t> Scratch_;
  double ExitTime_ = 0.0;

  std::mutex DupMutex_;
  std::map<int, std::unique_ptr<Context>> Dups_;
  std::map<std::pair<int, int>, std::unique_ptr<Context>> Splits_;
};

Communicator Communicator::Dup()
{
  Context *child = this->Ctx_->GetDup(this->DupCount_++);
  return Communicator(child, this->Rank_);
}

Communicator Communicator::Split(int color)
{
  // every rank learns every color, then maps itself into its group
  std::vector<int> colors = this->Allgather(&color, 1);

  int subRank = 0;
  int members = 0;
  for (int r = 0; r < this->Size(); ++r)
  {
    if (colors[static_cast<std::size_t>(r)] != color)
      continue;
    if (r < this->Rank_)
      ++subRank;
    ++members;
  }

  Context *child = this->Ctx_->GetSplit(this->DupCount_++, color, members);
  return Communicator(child, subRank);
}

// ---------------------------------------------------------------------------
int Communicator::Size() const noexcept
{
  return this->Ctx_->Size();
}

int Communicator::Node() const noexcept
{
  const int rpn = this->Ctx_->RanksPerNode();
  return rpn > 0 ? this->Rank_ / rpn : 0;
}

int Communicator::RanksPerNode() const noexcept
{
  const int rpn = this->Ctx_->RanksPerNode();
  return rpn > 0 ? rpn : this->Ctx_->Size();
}

void Communicator::SetMaxMessageBytes(std::size_t bytes)
{
  if (!bytes)
    throw std::invalid_argument(
      "minimpi::SetMaxMessageBytes: the limit must be positive");
  MaxMessageBytes.store(bytes, std::memory_order_relaxed);
}

std::size_t Communicator::GetMaxMessageBytes() noexcept
{
  return MaxMessageBytes.load(std::memory_order_relaxed);
}

void Communicator::Send(int dest, int tag, const void *data, std::size_t bytes)
{
  const std::size_t limit = GetMaxMessageBytes();
  if (bytes > limit)
    throw std::length_error(
      "minimpi::Send: message of " + std::to_string(bytes) +
      " bytes exceeds the " + std::to_string(limit) +
      " byte single-message limit; use SendChunked");
  this->Ctx_->Send(this->Rank_, dest, tag, data, bytes);
}

std::vector<std::uint8_t> Communicator::Recv(int src, int tag)
{
  return this->Ctx_->Recv(this->Rank_, src, tag);
}

bool Communicator::Recv(int src, int tag, std::vector<std::uint8_t> &out,
                        double timeoutSeconds)
{
  return this->Ctx_->RecvTimed(this->Rank_, src, tag, out, timeoutSeconds);
}

void Communicator::SendChunked(int dest, int tag, const void *data,
                               std::size_t bytes)
{
  const std::size_t limit = GetMaxMessageBytes();
  const std::uint64_t nChunks =
    bytes ? (static_cast<std::uint64_t>(bytes) + limit - 1) / limit : 0;

  std::uint8_t header[16];
  StoreU64LE(header, static_cast<std::uint64_t>(bytes));
  StoreU64LE(header + 8, nChunks);
  this->Send(dest, tag, header, sizeof(header));

  const std::uint8_t *p = static_cast<const std::uint8_t *>(data);
  std::size_t remaining = bytes;
  while (remaining)
  {
    const std::size_t n = std::min(remaining, limit);
    this->Send(dest, tag, p, n);
    p += n;
    remaining -= n;
  }
}

std::vector<std::uint8_t> Communicator::RecvChunked(int src, int tag)
{
  const std::vector<std::uint8_t> header = this->Recv(src, tag);
  if (header.size() != 16)
    throw std::runtime_error(
      "minimpi::RecvChunked: expected a 16 byte chunk header, got " +
      std::to_string(header.size()) + " bytes");

  const std::uint64_t total = LoadU64LE(header.data());
  const std::uint64_t nChunks = LoadU64LE(header.data() + 8);
  if ((total == 0) != (nChunks == 0))
    throw std::runtime_error("minimpi::RecvChunked: malformed chunk header");

  std::vector<std::uint8_t> out;
  out.reserve(static_cast<std::size_t>(total));
  for (std::uint64_t c = 0; c < nChunks; ++c)
  {
    std::vector<std::uint8_t> chunk = this->Recv(src, tag);
    if (chunk.empty() || chunk.size() > total - out.size())
      throw std::runtime_error(
        "minimpi::RecvChunked: chunk stream does not match its header");
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  if (out.size() != total)
    throw std::runtime_error(
      "minimpi::RecvChunked: reassembled " + std::to_string(out.size()) +
      " bytes, header promised " + std::to_string(total));
  return out;
}

bool Communicator::RecvChunked(int src, int tag,
                               std::vector<std::uint8_t> &out,
                               double timeoutSeconds)
{
  std::vector<std::uint8_t> header;
  if (!this->Recv(src, tag, header, timeoutSeconds))
    return false; // nothing consumed: the transfer can be retried

  if (header.size() != 16)
    throw std::runtime_error(
      "minimpi::RecvChunked: expected a 16 byte chunk header, got " +
      std::to_string(header.size()) + " bytes");

  const std::uint64_t total = LoadU64LE(header.data());
  const std::uint64_t nChunks = LoadU64LE(header.data() + 8);
  if ((total == 0) != (nChunks == 0))
    throw std::runtime_error("minimpi::RecvChunked: malformed chunk header");

  out.clear();
  out.reserve(static_cast<std::size_t>(total));
  for (std::uint64_t c = 0; c < nChunks; ++c)
  {
    // once the header is consumed the stream is committed: a missing
    // chunk cannot be resynchronized, so mid-stream timeout is a short
    // read, not a retryable miss
    std::vector<std::uint8_t> chunk;
    if (!this->Recv(src, tag, chunk, timeoutSeconds))
      throw std::runtime_error(
        "minimpi::RecvChunked: short read, sender delivered " +
        std::to_string(c) + " of " + std::to_string(nChunks) + " chunks");
    if (chunk.empty() || chunk.size() > total - out.size())
      throw std::runtime_error(
        "minimpi::RecvChunked: chunk stream does not match its header");
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  if (out.size() != total)
    throw std::runtime_error(
      "minimpi::RecvChunked: reassembled " + std::to_string(out.size()) +
      " bytes, header promised " + std::to_string(total));
  return true;
}

void Communicator::Barrier()
{
  this->Ctx_->Collective(this->Rank_, nullptr, 0, nullptr, 0, nullptr,
                         [](int) { return std::size_t{0}; });
}

void Communicator::BcastBytes(void *data, std::size_t bytes, int root)
{
  Context *ctx = this->Ctx_;
  ctx->Collective(
    this->Rank_, data, bytes, data, bytes,
    [ctx, bytes, root](const std::vector<const void *> &in)
    {
      ctx->Scratch().resize(bytes);
      if (bytes)
        std::memcpy(ctx->Scratch().data(), in[static_cast<std::size_t>(root)],
                    bytes);
    },
    [](int) { return std::size_t{0}; });
}

std::vector<std::uint8_t> Communicator::GatherBytes(const void *data,
                                                    std::size_t bytes, int root)
{
  std::vector<std::uint8_t> all = this->AllgatherBytes(data, bytes);
  if (this->Rank_ != root)
    return {};
  return all;
}

std::vector<std::uint8_t> Communicator::AllgatherBytes(const void *data,
                                                       std::size_t bytes)
{
  Context *ctx = this->Ctx_;
  const int size = ctx->Size();
  std::vector<std::uint8_t> out(bytes * static_cast<std::size_t>(size));
  ctx->Collective(
    this->Rank_, data, bytes, out.data(), out.size(),
    [ctx, bytes, size](const std::vector<const void *> &in)
    {
      ctx->Scratch().resize(bytes * static_cast<std::size_t>(size));
      for (int r = 0; r < size; ++r)
        if (bytes)
          std::memcpy(ctx->Scratch().data() +
                        bytes * static_cast<std::size_t>(r),
                      in[static_cast<std::size_t>(r)], bytes);
    },
    [](int) { return std::size_t{0}; });
  return out;
}

namespace
{
template <typename T>
void ReduceInto(T *acc, const T *in, std::size_t n, Op op)
{
  switch (op)
  {
    case Op::Sum:
      for (std::size_t i = 0; i < n; ++i)
        acc[i] += in[i];
      break;
    case Op::Min:
      for (std::size_t i = 0; i < n; ++i)
        acc[i] = std::min(acc[i], in[i]);
      break;
    case Op::Max:
      for (std::size_t i = 0; i < n; ++i)
        acc[i] = std::max(acc[i], in[i]);
      break;
  }
}

template <typename T>
void AllreduceImpl(Context *ctx, int rank, T *data, std::size_t n, Op op)
{
  const std::size_t bytes = n * sizeof(T);
  ctx->Collective(
    rank, data, bytes, data, bytes,
    [ctx, n, bytes, op](const std::vector<const void *> &in)
    {
      ctx->Scratch().resize(bytes);
      T *acc = reinterpret_cast<T *>(ctx->Scratch().data());
      std::memcpy(acc, in[0], bytes);
      for (std::size_t r = 1; r < in.size(); ++r)
        ReduceInto(acc, static_cast<const T *>(in[r]), n, op);
    },
    [](int) { return std::size_t{0}; });
}
} // namespace

void Communicator::AllreduceTyped(double *d, std::size_t n, Op op,
                                  TypeTag<double>)
{
  AllreduceImpl(this->Ctx_, this->Rank_, d, n, op);
}
void Communicator::AllreduceTyped(float *d, std::size_t n, Op op,
                                  TypeTag<float>)
{
  AllreduceImpl(this->Ctx_, this->Rank_, d, n, op);
}
void Communicator::AllreduceTyped(int *d, std::size_t n, Op op, TypeTag<int>)
{
  AllreduceImpl(this->Ctx_, this->Rank_, d, n, op);
}
void Communicator::AllreduceTyped(long long *d, std::size_t n, Op op,
                                  TypeTag<long long>)
{
  AllreduceImpl(this->Ctx_, this->Rank_, d, n, op);
}
void Communicator::AllreduceTyped(std::size_t *d, std::size_t n, Op op,
                                  TypeTag<std::size_t>)
{
  AllreduceImpl(this->Ctx_, this->Rank_, d, n, op);
}

// ---------------------------------------------------------------------------
double Run(const LaunchOptions &opts,
           const std::function<void(Communicator &)> &fn)
{
  if (opts.Ranks < 1)
    throw std::invalid_argument("minimpi::Run: need at least one rank");

  vp::Platform &plat = vp::Platform::Get();
  const int rpn = opts.RanksPerNode;
  if (rpn > 0)
  {
    const int nodesNeeded = (opts.Ranks + rpn - 1) / rpn;
    if (nodesNeeded > plat.NumNodes())
      throw std::invalid_argument(
        "minimpi::Run: platform has too few nodes for this rank layout");
  }

  Context ctx(opts.Ranks, rpn);
  std::unique_ptr<LockstepSched> lockstep;
  if (opts.Lockstep)
  {
    lockstep = std::make_unique<LockstepSched>(opts.Ranks);
    ctx.SetLockstep(lockstep.get());
  }
  const double start = vp::ThisClock().Now();

  std::vector<std::thread> threads;
  std::vector<double> finalTimes(static_cast<std::size_t>(opts.Ranks), 0.0);
  std::vector<std::exception_ptr> errors(
    static_cast<std::size_t>(opts.Ranks));

  threads.reserve(static_cast<std::size_t>(opts.Ranks));
  for (int r = 0; r < opts.Ranks; ++r)
  {
    threads.emplace_back(
      [&, r]()
      {
        vp::ThisClock().Set(start);
        vp::Platform::SetThisNode(rpn > 0 ? r / rpn : 0);
        Communicator comm(&ctx, r);
        if (lockstep)
        {
          TlLockstepRank = r;
          lockstep->Start(r);
        }
        try
        {
          fn(comm);
        }
        catch (...)
        {
          errors[static_cast<std::size_t>(r)] = std::current_exception();
        }
        finalTimes[static_cast<std::size_t>(r)] = vp::ThisClock().Now();
        if (lockstep)
        {
          lockstep->Finish(r);
          TlLockstepRank = -1;
        }
      });
  }
  for (auto &t : threads)
    t.join();

  for (auto &e : errors)
    if (e)
      std::rethrow_exception(e);

  const double finish =
    *std::max_element(finalTimes.begin(), finalTimes.end());
  vp::ThisClock().AdvanceTo(finish);
  return finish;
}

double Run(int ranks, const std::function<void(Communicator &)> &fn)
{
  LaunchOptions opts;
  opts.Ranks = ranks;
  return Run(opts, fn);
}

} // namespace minimpi
