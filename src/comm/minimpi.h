#ifndef minimpi_h
#define minimpi_h

/// @file minimpi.h
/// A message-passing substrate with MPI semantics where ranks are threads
/// of one process. This stands in for the MPI library used by Newton++ and
/// SENSEI on Perlmutter: buffered point-to-point sends with (source, tag)
/// matching, and the collectives the coupled codes need (barrier, bcast,
/// reduce, allreduce, gather, allgather). Message volume and collective
/// fan-in charge virtual time, and collectives align the participants'
/// virtual clocks, so rank-parallel campaigns produce meaningful virtual
/// timelines.
///
/// Ranks are placed on virtual nodes round-robin in blocks of
/// `ranksPerNode`; each rank thread is bound to its node
/// (vp::Platform::SetThisNode) before the user function runs, matching how
/// SLURM places MPI ranks on Perlmutter nodes.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace minimpi
{

/// Reduction operators.
enum class Op : int
{
  Sum = 0,
  Min,
  Max
};

class Context;

/// Per-rank handle to the communicator. Valid only inside the function
/// passed to Run. All methods are callable concurrently from their
/// respective rank threads.
class Communicator
{
public:
  /// This rank's id in [0, Size).
  int Rank() const noexcept { return this->Rank_; }

  /// Number of ranks.
  int Size() const noexcept;

  /// Virtual node this rank is bound to.
  int Node() const noexcept;

  /// Ranks per node used at launch.
  int RanksPerNode() const noexcept;

  /// Duplicate the communicator (collective: every rank must call the
  /// same number of times, in the same order). The duplicate has
  /// independent collective state and mailboxes, so e.g. an asynchronous
  /// in situ thread can run collectives without interleaving with the
  /// simulation's — the reason real SENSEI duplicates MPI_COMM_WORLD.
  Communicator Dup();

  /// Partition the communicator by color (collective, MPI_Comm_split
  /// semantics): ranks passing the same color form a new communicator,
  /// renumbered 0..k-1 in parent-rank order. Used by the in transit
  /// transport to carve simulation and endpoint groups out of the world.
  Communicator Split(int color);

  // --- point to point ------------------------------------------------------

  /// Process-wide cap on a single message. Real MPI implementations
  /// narrow byte counts through `int` and silently corrupt >2 GiB
  /// messages; here Send refuses them loudly (std::length_error) and
  /// SendChunked/RecvChunked split them. Default (1<<31)-1 bytes; tests
  /// lower it to exercise the chunked path without giant allocations.
  static void SetMaxMessageBytes(std::size_t bytes);
  static std::size_t GetMaxMessageBytes() noexcept;

  /// Buffered send: copies `bytes` of `data` into dest's mailbox and
  /// returns. Never blocks (infinite buffering, like an MPI_Bsend).
  /// Throws std::length_error when `bytes` exceeds GetMaxMessageBytes()
  /// — use SendChunked for payloads of unbounded size.
  void Send(int dest, int tag, const void *data, std::size_t bytes);

  /// Receive a message from (src, tag); blocks until one arrives.
  /// Messages from the same (source, tag) arrive in the order they were
  /// sent. Returns the payload.
  std::vector<std::uint8_t> Recv(int src, int tag);

  /// Timed receive: wait at most `timeoutSeconds` of real time for a
  /// message from (src, tag). Returns false on timeout with nothing
  /// consumed — an error return, not an abort, so a service can probe a
  /// possibly-dead peer and keep running; the same (src, tag) can be
  /// received again later. Negative timeouts mean wait forever.
  bool Recv(int src, int tag, std::vector<std::uint8_t> &out,
            double timeoutSeconds);

  /// Send a payload of any size as a 16-byte header frame (u64 total
  /// bytes, u64 chunk count, little endian) followed by chunk frames of
  /// at most GetMaxMessageBytes() each, all on `tag`. Pair with
  /// RecvChunked.
  void SendChunked(int dest, int tag, const void *data, std::size_t bytes);

  /// Receive a payload sent with SendChunked, reassembling the chunk
  /// frames. Throws std::runtime_error on a malformed chunk stream.
  std::vector<std::uint8_t> RecvChunked(int src, int tag);

  /// Timed chunked receive. Returns false when the 16-byte chunk
  /// header does not arrive within `timeoutSeconds` (nothing consumed;
  /// the transfer can still be received later). Once the header has
  /// been consumed the transfer is committed: a chunk missing its
  /// deadline mid-stream is a short read and throws std::runtime_error
  /// — the stream cannot be resynchronized. Negative timeouts wait
  /// forever.
  bool RecvChunked(int src, int tag, std::vector<std::uint8_t> &out,
                   double timeoutSeconds);

  /// Receive into a typed vector.
  template <typename T>
  std::vector<T> RecvAs(int src, int tag)
  {
    std::vector<std::uint8_t> raw = this->Recv(src, tag);
    if (raw.size() % sizeof(T))
      throw std::runtime_error("minimpi::RecvAs: size mismatch");
    std::vector<T> out(raw.size() / sizeof(T));
    std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  /// Send a typed vector.
  template <typename T>
  void SendVec(int dest, int tag, const std::vector<T> &v)
  {
    this->Send(dest, tag, v.data(), v.size() * sizeof(T));
  }

  // --- collectives -----------------------------------------------------------

  /// Block until all ranks arrive; aligns virtual clocks.
  void Barrier();

  /// Broadcast n elements from root to all ranks.
  template <typename T>
  void Bcast(T *data, std::size_t n, int root)
  {
    this->BcastBytes(data, n * sizeof(T), root);
  }

  /// All ranks end with the elementwise reduction of everyone's data.
  template <typename T>
  void Allreduce(T *data, std::size_t n, Op op)
  {
    this->AllreduceTyped(data, n, op, TypeTag<T>());
  }

  /// Rank `root` ends with the elementwise reduction; other ranks' data is
  /// unchanged.
  template <typename T>
  void Reduce(T *data, std::size_t n, Op op, int root)
  {
    this->AllreduceTyped(data, n, op, TypeTag<T>());
    // non-roots discard: with threads-as-ranks the allreduce result is
    // simply not used off-root; semantics match MPI_Reduce for the root.
    (void)root;
  }

  /// Gather n elements from every rank to root (root gets Size()*n
  /// elements in rank order; other ranks get an empty vector).
  template <typename T>
  std::vector<T> Gather(const T *data, std::size_t n, int root)
  {
    std::vector<std::uint8_t> raw =
      this->GatherBytes(data, n * sizeof(T), root);
    std::vector<T> out(raw.size() / sizeof(T));
    std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  /// Allgather: every rank gets Size()*n elements in rank order.
  template <typename T>
  std::vector<T> Allgather(const T *data, std::size_t n)
  {
    std::vector<std::uint8_t> raw = this->AllgatherBytes(data, n * sizeof(T));
    std::vector<T> out(raw.size() / sizeof(T));
    std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

private:
  friend class Context;
  friend double Run(const struct LaunchOptions &,
                    const std::function<void(Communicator &)> &);
  Communicator(Context *ctx, int rank) : Ctx_(ctx), Rank_(rank) {}

  template <typename T>
  struct TypeTag
  {
  };

  void BcastBytes(void *data, std::size_t bytes, int root);
  std::vector<std::uint8_t> GatherBytes(const void *data, std::size_t bytes,
                                        int root);
  std::vector<std::uint8_t> AllgatherBytes(const void *data,
                                           std::size_t bytes);

  void AllreduceTyped(double *data, std::size_t n, Op op, TypeTag<double>);
  void AllreduceTyped(float *data, std::size_t n, Op op, TypeTag<float>);
  void AllreduceTyped(int *data, std::size_t n, Op op, TypeTag<int>);
  void AllreduceTyped(long long *data, std::size_t n, Op op,
                      TypeTag<long long>);
  void AllreduceTyped(std::size_t *data, std::size_t n, Op op,
                      TypeTag<std::size_t>);

  Context *Ctx_ = nullptr;
  int Rank_ = 0;
  int DupCount_ = 0; ///< per-rank count of Dup calls for matching
};

/// Launch options for a rank-parallel region.
struct LaunchOptions
{
  int Ranks = 1;        ///< number of MPI ranks (threads)
  int RanksPerNode = 0; ///< 0 = all on node 0

  /// Deterministic cooperative rank scheduling: exactly one rank thread
  /// executes at a time, and whenever the running rank blocks (in a
  /// collective or an untimed Recv) the token passes to the
  /// lowest-numbered runnable rank. Virtual time on shared resources
  /// (device timelines, host cores) then no longer depends on the OS
  /// thread schedule, so two runs of the same workload produce
  /// bit-identical virtual timings — what the campaign auto-tuner needs
  /// to score candidate configurations reproducibly. Finite-timeout
  /// receives (real-time semantics) opt out of the token and keep their
  /// wall-clock behaviour.
  ///
  /// Rank functions must block only inside minimpi (collectives and
  /// untimed receives): a real join outside it — e.g. a threaded
  /// execution-engine region whose completion depends on another rank's
  /// future submissions — holds the token across the wait and deadlocks
  /// the cooperative schedule. Run with the serial execution engine.
  bool Lockstep = false;
};

/// Run `fn(comm)` on `opts.Ranks` rank threads. Each rank's virtual clock
/// starts at the caller's current virtual time; on return the caller's
/// clock has advanced to the max of the ranks' final times. Exceptions
/// thrown by rank functions are rethrown here (the first one, by rank
/// order). Returns the maximum final virtual time across ranks.
double Run(const LaunchOptions &opts,
           const std::function<void(Communicator &)> &fn);

/// Convenience overload: `ranks` ranks, all on node 0.
double Run(int ranks, const std::function<void(Communicator &)> &fn);

} // namespace minimpi

#endif
