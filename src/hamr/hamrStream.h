#ifndef hamrStream_h
#define hamrStream_h

/// @file hamrStream.h
/// hamr::stream abstracts the differences between PM streams and converts
/// implicitly to and from the native stream handles of the supported PMs
/// (here, vp::Stream serves both vcuda and vomp), so that the two can be
/// used interchangeably — the behaviour the paper describes for
/// svtkStream.

#include "vpStream.h"

namespace hamr
{

/// Value-semantic PM-agnostic stream handle.
class stream
{
public:
  /// A null stream; operations resolve to the target device's default
  /// stream at use time.
  stream() = default;

  /// Implicit conversion from the native stream type.
  stream(const vp::Stream &s) : Stream_(s) {} // NOLINT(google-explicit-constructor)

  /// Implicit conversion to the native stream type.
  operator vp::Stream() const { return this->Stream_; } // NOLINT

  /// True for a non-null stream.
  explicit operator bool() const { return static_cast<bool>(this->Stream_); }

  /// The wrapped native handle.
  const vp::Stream &native() const { return this->Stream_; }

  bool operator==(const stream &o) const { return this->Stream_ == o.Stream_; }

private:
  vp::Stream Stream_;
};

} // namespace hamr

#endif
