#include "hamrAllocator.h"

namespace hamr
{

const char *to_string(allocator a)
{
  switch (a)
  {
    case allocator::none: return "none";
    case allocator::malloc_: return "malloc";
    case allocator::cpp: return "cpp";
    case allocator::host_pinned: return "host_pinned";
    case allocator::device: return "device";
    case allocator::device_async: return "device_async";
    case allocator::managed: return "managed";
    case allocator::openmp: return "openmp";
    case allocator::hip: return "hip";
    case allocator::hip_async: return "hip_async";
    case allocator::sycl_device: return "sycl_device";
    case allocator::sycl_shared: return "sycl_shared";
    case allocator::pool_device: return "pool_device";
    case allocator::pool_host_pinned: return "pool_host_pinned";
  }
  return "unknown";
}

const char *to_string(stream_mode m)
{
  switch (m)
  {
    case stream_mode::sync: return "sync";
    case stream_mode::async: return "async";
  }
  return "unknown";
}

} // namespace hamr
