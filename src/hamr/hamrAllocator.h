#ifndef hamrAllocator_h
#define hamrAllocator_h

/// @file hamrAllocator.h
/// Allocation strategies understood by hamr::buffer. Each value selects a
/// programming model and a specific method within that model, mirroring the
/// HAMR library the paper builds on: host allocators (malloc, operator
/// new), page-locked host memory, CUDA-style synchronous / stream-ordered
/// device memory, managed (universally addressable) memory, and OpenMP
/// target memory.

#include "vpTypes.h"

namespace hamr
{

/// Which PM/method manages a buffer's storage.
enum class allocator : int
{
  none = 0,     ///< not yet initialized
  malloc_,      ///< host, C malloc semantics
  cpp,          ///< host, operator new semantics
  host_pinned,  ///< page-locked host memory (vcuda)
  device,       ///< device memory, synchronous allocation (vcuda)
  device_async, ///< device memory, stream-ordered allocation (vcuda)
  managed,      ///< universally addressable memory (vcuda)
  openmp,       ///< device memory via OpenMP target (vomp)
  hip,          ///< device memory, synchronous allocation (vhip)
  hip_async,    ///< device memory, stream-ordered allocation (vhip)
  sycl_device,  ///< USM device memory (vsycl) — the paper's future work
  sycl_shared,  ///< USM shared memory (vsycl), host + device addressable
  pool_device,  ///< device memory from the stream-ordered caching pool
                ///< (vp::MemoryPool; cudaMallocFromPoolAsync semantics)
  pool_host_pinned ///< page-locked host memory from the caching pool
};

/// True when storage from `a` can be dereferenced on the host without
/// movement.
constexpr bool host_accessible(allocator a)
{
  return a == allocator::malloc_ || a == allocator::cpp ||
         a == allocator::host_pinned || a == allocator::managed ||
         a == allocator::sycl_shared || a == allocator::pool_host_pinned;
}

/// True when storage from `a` can be dereferenced on some device without
/// movement.
constexpr bool device_accessible(allocator a)
{
  return a == allocator::device || a == allocator::device_async ||
         a == allocator::managed || a == allocator::openmp ||
         a == allocator::hip || a == allocator::hip_async ||
         a == allocator::sycl_device || a == allocator::sycl_shared ||
         a == allocator::pool_device;
}

/// True for stream-ordered allocators that require a stream at
/// construction.
constexpr bool asynchronous(allocator a)
{
  return a == allocator::device_async || a == allocator::hip_async ||
         a == allocator::pool_device || a == allocator::pool_host_pinned;
}

/// True for allocators whose storage is managed by the caching memory
/// pool (vp::MemoryPool) rather than allocated and freed per use.
constexpr bool pooled(allocator a)
{
  return a == allocator::pool_device || a == allocator::pool_host_pinned;
}

/// The PM that owns storage from `a`.
constexpr vp::PmKind pm_of(allocator a)
{
  switch (a)
  {
    case allocator::host_pinned:
    case allocator::device:
    case allocator::device_async:
    case allocator::managed:
    case allocator::pool_device:
    case allocator::pool_host_pinned:
      return vp::PmKind::Cuda;
    case allocator::openmp:
      return vp::PmKind::OpenMP;
    case allocator::hip:
    case allocator::hip_async:
      return vp::PmKind::Hip;
    case allocator::sycl_device:
    case allocator::sycl_shared:
      return vp::PmKind::Sycl;
    default:
      return vp::PmKind::None;
  }
}

/// The memory space storage from `a` lives in.
constexpr vp::MemSpace space_of(allocator a)
{
  switch (a)
  {
    case allocator::host_pinned:
    case allocator::pool_host_pinned:
      return vp::MemSpace::HostPinned;
    case allocator::device:
    case allocator::device_async:
    case allocator::openmp:
    case allocator::hip:
    case allocator::hip_async:
    case allocator::sycl_device:
    case allocator::pool_device:
      return vp::MemSpace::Device;
    case allocator::managed:
    case allocator::sycl_shared:
      return vp::MemSpace::Managed;
    default:
      return vp::MemSpace::Host;
  }
}

/// Short human readable name.
const char *to_string(allocator a);

/// How buffer operations synchronize with their stream.
enum class stream_mode : int
{
  sync = 0, ///< every operation completes before the API call returns
  async     ///< operations are stream ordered; the user synchronizes
};

/// Short human readable name.
const char *to_string(stream_mode m);

} // namespace hamr

#endif
