#ifndef hamrBuffer_h
#define hamrBuffer_h

/// @file hamrBuffer.h
/// hamr::buffer<T> — an allocator-aware, location-aware array container
/// providing programming-model interoperability and multi-device memory
/// management. This reproduces the HAMR library underpinning the paper's
/// svtkHAMRDataArray:
///
///  * construction selects a PM + allocation method (hamr::allocator), an
///    ordering stream, and a synchronization mode;
///  * externally allocated host or device memory can be adopted zero-copy,
///    with life-cycle coordinated through std::shared_ptr deleters;
///  * `get_host_accessible` / `get_device_accessible` /
///    `get_cuda_accessible` / `get_openmp_accessible` return read-only
///    views valid at the requested location: zero-copy when the data is
///    already accessible there, otherwise a temporary is allocated, the
///    data is moved on the buffer's stream, and the returned shared_ptr
///    frees the temporary when the last reference drops;
///  * in stream_mode::async the move is in flight when the call returns
///    and the caller must synchronize() before dereferencing.

#include "hamrAllocator.h"
#include "hamrStream.h"
#include "layoutView.h"
#include "vcuda.h"
#include "vhip.h"
#include "vomp.h"
#include "vpChecker.h"
#include "vpMemoryPool.h"
#include "vpPlatform.h"
#include "vsycl.h"

#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

namespace hamr
{

template <typename T>
class buffer
{
public:
  using value_type = T;

  /// An empty, default constructed buffer must be initialized with
  /// set_allocator / resize before use.
  buffer() = default;

  /// An empty buffer managed by `alloc`.
  explicit buffer(allocator alloc) : Alloc_(alloc)
  {
    this->ResolveOwner();
  }

  /// n zero-initialized elements managed by `alloc` on the currently
  /// active device of the owning PM.
  buffer(allocator alloc, std::size_t n) : buffer(alloc, stream(), stream_mode::sync, n)
  {
  }

  /// n elements initialized to `val`.
  buffer(allocator alloc, std::size_t n, const T &val)
    : buffer(alloc, stream(), stream_mode::sync, n, val)
  {
  }

  /// n zero-initialized elements with explicit stream and mode.
  buffer(allocator alloc, const stream &strm, stream_mode mode, std::size_t n)
    : Alloc_(alloc), Stream_(strm), Mode_(mode)
  {
    this->ResolveOwner();
    this->AllocateStorage(n);
    this->MaybeSynchronize();
  }

  /// n elements initialized to `val` with explicit stream and mode.
  buffer(allocator alloc, const stream &strm, stream_mode mode, std::size_t n,
         const T &val)
    : Alloc_(alloc), Stream_(strm), Mode_(mode)
  {
    this->ResolveOwner();
    this->AllocateStorage(n);
    this->fill(val);
  }

  /// Zero-copy adoption of externally managed memory. `owner` is the
  /// device id where the memory resides (HostDevice for host memory). The
  /// shared_ptr's deleter coordinates the memory's life cycle between the
  /// external code and this buffer.
  buffer(allocator alloc, const stream &strm, stream_mode mode, std::size_t n,
         int owner, const std::shared_ptr<T> &data)
    : Alloc_(alloc), Owner_(owner), Data_(data), Size_(n), Stream_(strm),
      Mode_(mode)
  {
  }

  /// Zero-copy adoption of a raw pointer. When `take` is true the buffer
  /// frees the memory when done: through the platform when the pointer is
  /// platform-tracked, with ::free otherwise. When `take` is false the
  /// caller retains ownership and must keep the memory alive.
  buffer(allocator alloc, const stream &strm, stream_mode mode, std::size_t n,
         int owner, T *ptr, bool take)
    : Alloc_(alloc), Owner_(owner), Size_(n), Stream_(strm), Mode_(mode)
  {
    if (take)
    {
      this->Data_ = std::shared_ptr<T>(ptr,
        [](T *p)
        {
          if (vp::PoolManager::Get().Owns(p))
          {
            vp::PoolManager::Get().Deallocate(p);
            return;
          }
          vp::AllocInfo info;
          if (vp::Platform::Get().Query(p, info))
            vp::Platform::Get().Free(p);
          else
            std::free(p); // NOLINT: external C allocation
        });
    }
    else
    {
      this->Data_ = std::shared_ptr<T>(ptr, [](T *) {});
    }
  }

  /// Deep copy: same allocator, owner, stream, and mode as `other`.
  buffer(const buffer &other)
    : Alloc_(other.Alloc_), Owner_(other.Owner_), Stream_(other.Stream_),
      Mode_(other.Mode_)
  {
    this->AllocateStorage(other.Size_);
    this->CopyFrom(other);
    this->MaybeSynchronize();
  }

  /// Deep copy converting to a new allocator (and hence possibly a new
  /// location). The new storage lands on the currently active device of
  /// the owning PM when `alloc` is a device allocator.
  buffer(allocator alloc, const buffer &other)
    : Alloc_(alloc), Stream_(other.Stream_), Mode_(other.Mode_)
  {
    this->ResolveOwner();
    this->AllocateStorage(other.Size_);
    this->CopyFrom(other);
    this->MaybeSynchronize();
  }

  buffer(buffer &&other) noexcept { this->Swap(other); }

  buffer &operator=(const buffer &other)
  {
    if (this != &other)
    {
      buffer tmp(other);
      this->Swap(tmp);
    }
    return *this;
  }

  buffer &operator=(buffer &&other) noexcept
  {
    if (this != &other)
    {
      buffer tmp(std::move(other));
      this->Swap(tmp);
    }
    return *this;
  }

  ~buffer() = default;

  // --- observers ----------------------------------------------------------

  std::size_t size() const noexcept { return this->Size_; }
  bool empty() const noexcept { return this->Size_ == 0; }
  allocator get_allocator() const noexcept { return this->Alloc_; }
  stream_mode mode() const noexcept { return this->Mode_; }

  /// Device id where the data resides; HostDevice for host memory.
  int owner() const noexcept { return this->Owner_; }

  /// True when the data can be dereferenced on the host without movement.
  bool host_accessible() const { return hamr::host_accessible(this->Alloc_); }

  /// True when the data can be dereferenced on `device` without movement.
  bool device_accessible(int device) const
  {
    if (space_of(this->Alloc_) == vp::MemSpace::Managed)
      return true; // universally addressable
    return hamr::device_accessible(this->Alloc_) && this->Owner_ == device;
  }

  /// Direct pointer access — only valid where the data resides. The paper
  /// uses this fast path when location and PM are known (Listing 3 line 24).
  T *data() noexcept { return this->Data_.get(); }
  const T *data() const noexcept { return this->Data_.get(); }

  /// The shared pointer managing the storage (zero-copy hand-off).
  const std::shared_ptr<T> &pointer() const noexcept { return this->Data_; }

  /// The ordering stream.
  const stream &get_stream() const noexcept { return this->Stream_; }
  void set_stream(const stream &s) { this->Stream_ = s; }
  void set_mode(stream_mode m) { this->Mode_ = m; }

  // --- location / PM agnostic access ---------------------------------------

  /// A read-only view of the data valid on the host. Zero-copy when
  /// already host accessible; otherwise the data is moved into a host
  /// temporary owned by the returned shared_ptr. In async mode call
  /// synchronize() before dereferencing the view.
  std::shared_ptr<const T> get_host_accessible() const
  {
    if (this->host_accessible() || !this->Data_)
      return std::shared_ptr<const T>(this->Data_, this->Data_.get());
    return this->MoveTo(vp::MemSpace::Host, vp::HostDevice);
  }

  /// A read-only view valid on device `device` (HostDevice selects the
  /// host path). Zero-copy when already accessible there.
  std::shared_ptr<const T> get_device_accessible(int device) const
  {
    if (device == vp::HostDevice)
      return this->get_host_accessible();
    if (this->device_accessible(device) || !this->Data_)
      return std::shared_ptr<const T>(this->Data_, this->Data_.get());
    return this->MoveTo(vp::MemSpace::Device, device);
  }

  /// A read-only view valid on the CUDA PM's current device.
  std::shared_ptr<const T> get_cuda_accessible() const
  {
    return this->get_device_accessible(vcuda::GetDevice());
  }

  /// A read-only view valid on the HIP PM's current device.
  std::shared_ptr<const T> get_hip_accessible() const
  {
    return this->get_device_accessible(vhip::GetDevice());
  }

  /// A read-only view valid on the OpenMP PM's default device.
  std::shared_ptr<const T> get_openmp_accessible() const
  {
    const int dev = vomp::GetDefaultDevice();
    if (vomp::IsInitialDevice(dev))
      return this->get_host_accessible();
    return this->get_device_accessible(dev);
  }

  /// A read-only view valid on the SYCL PM's default device.
  std::shared_ptr<const T> get_sycl_accessible() const
  {
    return this->get_device_accessible(vsycl::GetDefaultDevice());
  }

  /// A read-only view valid on the device a SYCL queue targets.
  std::shared_ptr<const T> get_sycl_accessible(const vsycl::queue &q) const
  {
    return this->get_device_accessible(q.get_device());
  }

  /// Block the calling thread until operations issued on the buffer's
  /// behalf (allocation, movement, fills) have completed — including
  /// movement the access APIs enqueued on another device's stream (e.g.
  /// a host-owned buffer viewed on a device).
  void synchronize() const
  {
    vp::Stream s = this->ResolveStream(this->Owner_);
    if (s)
      vp::Platform::Get().StreamSynchronize(s);
    if (this->LastOp_ && !(this->LastOp_ == s))
      vp::Platform::Get().StreamSynchronize(this->LastOp_);
  }

  // --- modifiers ------------------------------------------------------------

  /// Change the allocator of an empty buffer.
  void set_allocator(allocator alloc)
  {
    if (this->Size_)
      throw std::runtime_error("hamr::buffer::set_allocator: buffer not empty");
    this->Alloc_ = alloc;
    this->ResolveOwner();
  }

  /// Resize preserving min(n, size()) leading elements.
  void resize(std::size_t n)
  {
    if (n == this->Size_)
      return;
    if (this->Alloc_ == allocator::none)
      throw std::runtime_error("hamr::buffer::resize: no allocator set");

    std::shared_ptr<T> old = this->Data_;
    const std::size_t keep = n < this->Size_ ? n : this->Size_;
    this->AllocateStorage(n);
    if (keep && old)
      this->CopyBytes(this->Data_.get(), old.get(), keep * sizeof(T));
    this->MaybeSynchronize();
  }

  /// Release the storage; the buffer becomes empty.
  void free()
  {
    this->Data_.reset();
    this->Size_ = 0;
  }

  /// Set every element to `val` (runs where the data lives).
  void fill(const T &val)
  {
    if (!this->Size_)
      return;
    T *p = this->Data_.get();
    vp::Platform &plat = vp::Platform::Get();
    // disjoint per-index stores: safe to run as concurrent chunks
    vp::KernelDesc desc{this->Size_, 1.0, 0.0, "hamr_fill",
                        /*Shardable=*/true};
    const auto body = [p, val](std::size_t b, std::size_t e)
    {
      for (std::size_t i = b; i < e; ++i)
        p[i] = val;
    };
    if (this->Owner_ == vp::HostDevice)
    {
      vp::check::HostWrite(p, this->Size_ * sizeof(T), "hamr::buffer::fill");
      plat.HostParallelFor(desc, body);
    }
    else
      plat.LaunchKernel(this->ResolveStream(this->Owner_), desc, body,
                        this->Mode_ == stream_mode::sync);
  }

  /// Reorder the contents in place from layout mapping `from` to `to`
  /// (same Tuples and Comps; `from` must describe the current storage).
  /// Fresh storage of to.Slots() elements is allocated and the
  /// conversion kernel runs where the data lives, so every outstanding
  /// pointer or view into the old storage is invalidated. Values are
  /// moved, never recomputed: a round trip through any layout is
  /// bit-exact.
  void reorder(const vp::layout::Mapping &from, const vp::layout::Mapping &to)
  {
    if (from.Tuples != to.Tuples || from.Comps != to.Comps)
      throw std::invalid_argument("hamr::buffer::reorder: shape mismatch");
    if (from.Slots() > this->Size_)
      throw std::invalid_argument(
        "hamr::buffer::reorder: mapping larger than the buffer");
    if (from == to)
      return;

    std::shared_ptr<T> old = this->Data_;
    this->AllocateStorage(to.Slots());
    if (!this->Size_ || !old)
      return;

    T *dst = this->Data_.get();
    vp::Platform &plat = vp::Platform::Get();
    // disjoint per-tuple moves: safe to run as concurrent shards
    vp::KernelDesc desc{to.Tuples, static_cast<double>(to.Comps), 0.0,
                        "layout_reorder", /*Shardable=*/true};
    // the body holds the old storage alive until it has run (the
    // deferred-execution engine may run it after this call returns)
    const auto body = [old, from, dst, to](std::size_t b, std::size_t e)
    { vp::layout::ReorderRange(old.get(), from, dst, to, b, e); };
    if (this->Owner_ == vp::HostDevice)
    {
      vp::check::HostRead(old.get(), from.Slots() * sizeof(T),
                          "hamr::buffer::reorder");
      vp::check::HostWrite(dst, to.Slots() * sizeof(T),
                           "hamr::buffer::reorder");
      plat.HostParallelFor(desc, body);
    }
    else
      plat.LaunchKernel(this->ResolveStream(this->Owner_), desc, body,
                        this->Mode_ == stream_mode::sync);
    vp::layout::NoteConversion(to.Tuples * to.Comps * sizeof(T));
    this->MaybeSynchronize();
  }

  /// Copy n elements of host data into the buffer (resizing to n).
  void assign(const T *hostSrc, std::size_t n)
  {
    if (this->Alloc_ == allocator::none)
      throw std::runtime_error("hamr::buffer::assign: no allocator set");
    if (n != this->Size_)
    {
      this->Data_.reset();
      this->Size_ = 0;
      this->AllocateStorage(n);
    }
    if (n)
      this->CopyBytes(this->Data_.get(), hostSrc, n * sizeof(T));
    this->MaybeSynchronize();
  }

  /// Copy the buffer's contents into a host std::vector (synchronizes).
  std::vector<T> to_vector() const
  {
    std::vector<T> out(this->Size_);
    if (this->Size_)
    {
      auto view = this->get_host_accessible();
      this->synchronize();
      vp::check::HostRead(view.get(), this->Size_ * sizeof(T),
                          "hamr::buffer::to_vector");
      std::memcpy(out.data(), view.get(), this->Size_ * sizeof(T));
    }
    return out;
  }

  /// Read one element (host staging; synchronizes — test/diagnostic use).
  T get(std::size_t i) const
  {
    if (i >= this->Size_)
      throw std::out_of_range("hamr::buffer::get");
    if (this->host_accessible())
    {
      this->synchronize();
      vp::check::HostRead(this->Data_.get() + i, sizeof(T),
                          "hamr::buffer::get");
      return this->Data_.get()[i];
    }
    T v{};
    vp::Platform::Get().Copy(&v, this->Data_.get() + i, sizeof(T));
    return v;
  }

  /// Write one element (host staging; synchronizes — test/diagnostic use).
  void set(std::size_t i, const T &v)
  {
    if (i >= this->Size_)
      throw std::out_of_range("hamr::buffer::set");
    if (this->host_accessible())
    {
      this->synchronize();
      vp::check::HostWrite(this->Data_.get() + i, sizeof(T),
                           "hamr::buffer::set");
      this->Data_.get()[i] = v;
      return;
    }
    vp::Platform::Get().Copy(this->Data_.get() + i, &v, sizeof(T));
  }

  /// Swap contents with another buffer.
  void Swap(buffer &other) noexcept
  {
    std::swap(this->Alloc_, other.Alloc_);
    std::swap(this->Owner_, other.Owner_);
    std::swap(this->Data_, other.Data_);
    std::swap(this->Size_, other.Size_);
    std::swap(this->Stream_, other.Stream_);
    std::swap(this->Mode_, other.Mode_);
    std::swap(this->LastOp_, other.LastOp_);
  }

private:
  /// Determine the owning device from the PM's currently active device.
  void ResolveOwner()
  {
    switch (this->Alloc_)
    {
      case allocator::device:
      case allocator::device_async:
      case allocator::managed:
      case allocator::pool_device:
        this->Owner_ = vcuda::GetDevice();
        break;
      case allocator::hip:
      case allocator::hip_async:
        this->Owner_ = vhip::GetDevice();
        break;
      case allocator::sycl_device:
      case allocator::sycl_shared:
        this->Owner_ = vsycl::GetDefaultDevice();
        break;
      case allocator::openmp:
      {
        const int dev = vomp::GetDefaultDevice();
        this->Owner_ = vomp::IsInitialDevice(dev) ? vp::HostDevice : dev;
        break;
      }
      default:
        this->Owner_ = vp::HostDevice;
        break;
    }
  }

  /// The stream used for operations on this buffer. The buffer's own
  /// stream when one was given; otherwise the owning device's default
  /// stream, so that synchronize() always covers movement initiated by
  /// the access APIs; for host-owned buffers touching device `dev`, that
  /// device's default stream.
  vp::Stream ResolveStream(int dev) const
  {
    if (this->Stream_)
      return this->Stream_.native();
    if (this->Owner_ != vp::HostDevice)
      return vp::Platform::Get().DefaultStream(this->Owner_);
    if (dev != vp::HostDevice)
      return vp::Platform::Get().DefaultStream(dev);
    return vp::Stream();
  }

  void MaybeSynchronize() const
  {
    if (this->Mode_ == stream_mode::sync)
      this->synchronize();
  }

  /// Allocate Size_=n elements in the buffer's space, replacing Data_.
  void AllocateStorage(std::size_t n)
  {
    this->Size_ = n;
    if (!n)
    {
      this->Data_.reset();
      return;
    }

    vp::Platform &plat = vp::Platform::Get();
    const vp::MemSpace space = space_of(this->Alloc_);
    const vp::PmKind pm = pm_of(this->Alloc_);
    const int owner =
      space == vp::MemSpace::Device || space == vp::MemSpace::Managed
        ? this->Owner_
        : vp::HostDevice;
    // openmp allocator with host default device produces host memory
    const vp::MemSpace realSpace =
      owner == vp::HostDevice && space == vp::MemSpace::Device
        ? vp::MemSpace::Host
        : space;

    vp::Stream strm;
    if (hamr::asynchronous(this->Alloc_))
      strm = this->ResolveStream(owner);

    if (hamr::pooled(this->Alloc_))
    {
      T *p = static_cast<T *>(vp::PoolManager::Get().Allocate(
        realSpace, owner, n * sizeof(T), pm, strm));
      this->Data_ = std::shared_ptr<T>(p,
        [strm](T *q) { vp::PoolManager::Get().Deallocate(q, strm); });
      return;
    }

    T *p = static_cast<T *>(
      plat.Allocate(realSpace, owner, n * sizeof(T), pm, strm));
    this->Data_ = std::shared_ptr<T>(p, [](T *q) { vp::Platform::Get().Free(q); });
  }

  /// Copy bytes into this buffer's storage from anywhere (classified by
  /// the registry), ordered on the buffer's stream when a device is
  /// involved.
  void CopyBytes(void *dst, const void *src, std::size_t bytes)
  {
    vp::Platform &plat = vp::Platform::Get();
    if (this->Owner_ == vp::HostDevice)
    {
      vp::AllocInfo si;
      const bool srcDev =
        plat.Query(src, si) && si.Space == vp::MemSpace::Device;
      if (!srcDev)
      {
        plat.Copy(dst, src, bytes); // pure host copy
        return;
      }
      this->LastOp_ = plat.DefaultStream(si.Device);
      plat.CopyAsync(this->LastOp_, dst, src, bytes);
      if (this->Mode_ == stream_mode::sync)
        plat.StreamSynchronize(this->LastOp_);
      return;
    }
    plat.CopyAsync(this->ResolveStream(this->Owner_), dst, src, bytes);
  }

  void CopyFrom(const buffer &other)
  {
    if (!other.Size_)
      return;
    other.synchronize();
    this->CopyBytes(this->Data_.get(), other.Data_.get(),
                    other.Size_ * sizeof(T));
  }

  /// Allocate a temporary in (space, device), move the data onto it on the
  /// buffer's stream, and return a self-cleaning view.
  std::shared_ptr<const T> MoveTo(vp::MemSpace space, int device) const
  {
    vp::Platform &plat = vp::Platform::Get();
    vp::Stream strm = this->ResolveStream(
      space == vp::MemSpace::Device ? device : this->Owner_);

    // the short-lived movement temporaries produced here are the pool's
    // primary customer: per-pass views in analysis codes allocate and
    // free the same sizes every time step
    T *tmp;
    if (vp::PoolManager::Enabled() || hamr::pooled(this->Alloc_))
    {
      tmp = static_cast<T *>(vp::PoolManager::Get().Allocate(
        space, device, this->Size_ * sizeof(T), pm_of(this->Alloc_), strm));
      this->LastOp_ = strm;
      plat.CopyAsync(strm, tmp, this->Data_.get(), this->Size_ * sizeof(T));
      this->MaybeSynchronize();
      return std::shared_ptr<const T>(tmp,
                                      [strm](const T *p)
                                      {
                                        vp::PoolManager::Get().Deallocate(
                                          const_cast<T *>(p), strm);
                                      });
    }

    tmp = static_cast<T *>(plat.Allocate(space, device,
                                         this->Size_ * sizeof(T),
                                         pm_of(this->Alloc_)));
    this->LastOp_ = strm;
    plat.CopyAsync(strm, tmp, this->Data_.get(), this->Size_ * sizeof(T));
    this->MaybeSynchronize();
    return std::shared_ptr<const T>(tmp,
                                    [](const T *p)
                                    {
                                      vp::Platform::Get().Free(
                                        const_cast<T *>(p));
                                    });
  }

  allocator Alloc_ = allocator::none;
  int Owner_ = vp::HostDevice;
  std::shared_ptr<T> Data_;
  std::size_t Size_ = 0;
  stream Stream_;
  stream_mode Mode_ = stream_mode::sync;
  /// stream of the most recent access-API movement not covered by the
  /// buffer's own stream (host-owned data viewed on a device)
  mutable vp::Stream LastOp_;
};

} // namespace hamr

#endif
