#ifndef execEngine_h
#define execEngine_h

/// @file execEngine.h
/// Real parallel execution engine behind the virtual platform. The
/// platform charges every operation to the discrete-event virtual
/// timeline at submission, exactly as before; this engine decides where
/// and when the *real* kernel bodies run:
///
///  * `Mode::Serial` (the default) — bodies run eagerly on the
///    submitting thread, bit-identical to the historical behaviour.
///    Deterministic tests and the reproduction campaigns rely on this.
///  * `Mode::Threads` — every virtual device engine (one compute and
///    one copy queue per device) gets a dedicated worker thread that
///    drains a FIFO task queue, so bodies submitted to different
///    devices/queues really run concurrently. Stream order is preserved
///    with completion fences: each stream keeps a frontier of the
///    fences its queued work must honour, event record/wait edges copy
///    fences across streams, and Stream/Device synchronization becomes
///    a real join. Host parallel regions and kernels marked
///    `Shardable` are split into per-lane chunks over a per-node
///    `WorkerPool` (grain-size heuristic, sequential fallback for
///    small N).
///
/// Selection: `VP_EXEC=serial|threads` in the environment (read once),
/// the `<exec mode threads shard_grain>` SENSEI XML element, or
/// exec::Configure. Virtual timelines do not depend on the mode; only
/// wall-clock execution does. The vpChecker stays sound under Threads
/// because every task carries a happens-before fork token taken at
/// submission and publishes a join token consumed by whoever waits out
/// its fence.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace vp
{
namespace exec
{

/// A range body invoked as fn(begin, end); mirrors vp::KernelFn without
/// depending on vpPlatform.h (the platform depends on this header).
using RangeFn = std::function<void(std::size_t, std::size_t)>;

/// Where kernel bodies really execute.
enum class Mode : int
{
  Serial = 0, ///< inline on the submitting thread (bit-exact legacy path)
  Threads     ///< per-device worker queues + sharded host regions
};

/// Parse "serial" / "threads"; throws std::invalid_argument otherwise.
Mode ModeFromName(const std::string &name);

/// Stable lower-case name.
const char *ModeName(Mode m);

/// Process-wide engine configuration (the `<exec>` XML element).
struct ExecConfig
{
  Mode ExecMode = Mode::Serial;
  int Threads = 0;               ///< worker-pool lanes per node; 0 = auto
  std::size_t ShardGrain = 16384; ///< min elements per shard

  bool operator==(const ExecConfig &o) const
  {
    return ExecMode == o.ExecMode && Threads == o.Threads &&
           ShardGrain == o.ShardGrain;
  }
};

/// The configuration the environment selects: VP_EXEC picks the mode,
/// VP_EXEC_THREADS the pool width (both optional; serial otherwise).
ExecConfig DefaultConfig();

/// Replace the process-wide configuration. Quiesces in-flight work
/// first; validated (Threads >= 0, ShardGrain >= 1). A no-op when the
/// configuration is unchanged, so concurrent identical calls (e.g. the
/// same XML parsed on every rank) are cheap and safe.
void Configure(const ExecConfig &cfg);

/// The active configuration.
ExecConfig GetConfig();

/// True when the active mode is Mode::Threads.
bool ThreadsEnabled();

/// Aggregate engine counters (process-wide, reset with ResetStats).
struct EngineStats
{
  std::uint64_t TasksEnqueued = 0;   ///< bodies deferred to device queues
  std::uint64_t CopiesEnqueued = 0;  ///< memmoves deferred to copy queues
  std::uint64_t TasksInline = 0;     ///< bodies run eagerly (serial mode)
  std::uint64_t ShardedRegions = 0;  ///< regions split across the pool
  std::uint64_t ShardsExecuted = 0;  ///< individual shards run
  std::uint64_t FenceJoins = 0;      ///< synchronizations that waited a fence
};

EngineStats Stats();
void ResetStats();

/// Count one body the platform ran eagerly on the submitting thread
/// (serial mode, or a timing-only platform that skips bodies entirely).
void NoteInlineTask();

/// Shard coordinates of the calling thread, valid inside a body the
/// WorkerPool is running: lane index in [0, ShardCount()). Outside a
/// sharded region they read 0 and 1, so privatized kernels degenerate
/// to the shared path naturally.
int ShardIndex();
int ShardCount();

/// Completion state of one deferred task. Handed out by Engine::Enqueue
/// and stored in stream frontiers / events.
class Fence
{
public:
  /// Block until the task completed. The first waiter also consumes the
  /// task's checker join token, closing the happens-before edge.
  void Wait();

  /// Non-blocking completion test.
  bool Done() const;

private:
  friend class Engine;

  /// Wait without touching checker state (worker dependency edges).
  void WaitRaw();
  void MarkDone(std::uint64_t endToken);

  mutable std::mutex Mutex_;
  std::condition_variable Cv_;
  bool Done_ = false;
  std::atomic<std::uint64_t> EndToken_{0};
};

using FencePtr = std::shared_ptr<Fence>;

/// A pool of host worker threads executing sharded range bodies. One
/// instance per virtual node (lazily created); the calling thread
/// participates, so a pool of T threads yields T+1 lanes.
class WorkerPool
{
public:
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  int Threads() const noexcept { return static_cast<int>(this->Threads_.size()); }

  /// Run fn over [0, n) split into `shards` balanced contiguous chunks,
  /// dynamically claimed by the pool plus the calling thread. Blocking;
  /// concurrent callers queue for the pool one region at a time.
  void Run(std::size_t n, int shards, const RangeFn &fn);

private:
  struct Job;
  void Loop(int lane);
  static void RunShardsOf(Job &job);

  std::mutex Mutex_;
  std::condition_variable Cv_;
  std::shared_ptr<Job> Current_;
  bool Stop_ = false;
  std::vector<std::thread> Threads_;
};

/// The process-wide execution engine: per-device task queues plus
/// per-node worker pools. Thread safe.
class Engine
{
public:
  static constexpr int ComputeQueue = 0;
  static constexpr int CopyQueue = 1;

  static Engine &Get();

  /// Rebuild the queue topology for a platform of `numNodes` x
  /// `devicesPerNode`. Quiesces first. vp::Platform::Build calls this.
  void ResetTopology(int numNodes, int devicesPerNode);

  /// Defer `body` to the given device queue, ordered after `deps`.
  /// Takes the checker fork token at the call site. Returns the task's
  /// completion fence.
  FencePtr Enqueue(int node, int device, int queue,
                   std::vector<FencePtr> deps, std::function<void()> body);

  /// Number of shards the engine would split an N-element region into
  /// (1 = run sequentially). Honours the mode, the grain heuristic and,
  /// when `width` > 0, the caller's lane limit.
  int PlanShards(std::size_t n, int width) const;

  /// Execute fn over [0, n) as `shards` chunks on `node`'s pool
  /// (blocking). shards <= 1 degenerates to fn(0, n).
  void RunSharded(int node, std::size_t n, int shards, const RangeFn &fn);

  /// Lanes RunSharded can occupy on a node (pool threads + caller).
  int Lanes() const;

  /// Wait out the newest task of both queues of one device (and hence,
  /// FIFO, every earlier task). Used before freeing device memory and
  /// by DeviceSynchronize.
  void WaitDeviceTails(int node, int device);

  /// Wait out every queue of every device.
  void WaitAll();

  /// Drain all queues and join every worker thread and pool. Called on
  /// reconfiguration and platform rebuild.
  void Quiesce();

private:
  Engine() = default;
  ~Engine();

  struct Task
  {
    std::function<void()> Body;
    std::vector<FencePtr> Deps;
    FencePtr Done;
    std::uint64_t SpawnToken = 0;
  };

  struct DeviceQueue
  {
    std::mutex Mutex;
    std::condition_variable Cv;
    std::deque<Task> Queue;
    bool Stop = false;
    FencePtr Tail; ///< newest enqueued fence (guarded by Mutex)
    std::thread Worker;
  };

  DeviceQueue *Queue(int node, int device, int queue);
  void EnsureWorkerLocked(DeviceQueue &q);
  static void WorkerLoop(DeviceQueue *q);
  void QuiesceLocked();

  mutable std::mutex Mutex_;     ///< guards topology (Queues_)
  mutable std::mutex PoolMutex_; ///< guards Pools_; never held over joins
  int NumNodes_ = 0;
  int DevicesPerNode_ = 0;
  std::vector<std::unique_ptr<DeviceQueue>> Queues_;
  std::vector<std::unique_ptr<WorkerPool>> Pools_; ///< per node
};

} // namespace exec
} // namespace vp

#endif
