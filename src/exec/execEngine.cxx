#include "execEngine.h"

#include "vpChecker.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace vp
{
namespace exec
{

// --- configuration -------------------------------------------------------

Mode ModeFromName(const std::string &name)
{
  if (name == "serial")
    return Mode::Serial;
  if (name == "threads")
    return Mode::Threads;
  throw std::invalid_argument("unknown exec mode \"" + name +
                              "\" (expected serial or threads)");
}

const char *ModeName(Mode m)
{
  return m == Mode::Threads ? "threads" : "serial";
}

ExecConfig DefaultConfig()
{
  ExecConfig cfg;
  // lenient: an unrecognized VP_EXEC value falls back to the bit-exact
  // serial path rather than aborting a whole campaign
  if (const char *e = std::getenv("VP_EXEC"))
  {
    if (std::string(e) == "threads")
      cfg.ExecMode = Mode::Threads;
  }
  if (const char *t = std::getenv("VP_EXEC_THREADS"))
  {
    const int n = std::atoi(t);
    if (n > 0)
      cfg.Threads = n;
  }
  return cfg;
}

namespace
{

thread_local int tlShardIndex = 0;
thread_local int tlShardCount = 1;

std::mutex &CfgMutex()
{
  static std::mutex m;
  return m;
}

ExecConfig &Cfg()
{
  static ExecConfig c = DefaultConfig();
  return c;
}

// mode mirror readable without the config mutex; LaunchKernel checks it
// on every submission
std::atomic<int> &ModeAtomic()
{
  static std::atomic<int> m{static_cast<int>(Cfg().ExecMode)};
  return m;
}

struct AtomicStats
{
  std::atomic<std::uint64_t> TasksEnqueued{0};
  std::atomic<std::uint64_t> CopiesEnqueued{0};
  std::atomic<std::uint64_t> TasksInline{0};
  std::atomic<std::uint64_t> ShardedRegions{0};
  std::atomic<std::uint64_t> ShardsExecuted{0};
  std::atomic<std::uint64_t> FenceJoins{0};
};

AtomicStats &StatsRef()
{
  static AtomicStats s;
  return s;
}

int AutoPoolThreads()
{
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  // the submitting thread participates in every sharded region, so an
  // auto-sized pool leaves one lane for it
  return static_cast<int>(hw > 1 ? hw - 1 : 1);
}

} // namespace

void Configure(const ExecConfig &cfg)
{
  if (cfg.Threads < 0)
    throw std::invalid_argument("exec: Threads must be >= 0");
  if (cfg.ShardGrain < 1)
    throw std::invalid_argument("exec: ShardGrain must be >= 1");

  {
    std::lock_guard<std::mutex> lock(CfgMutex());
    if (Cfg() == cfg)
      return;
  }
  // drain in-flight work under the old configuration before switching;
  // done outside the config lock because quiescing joins threads
  Engine::Get().Quiesce();
  std::lock_guard<std::mutex> lock(CfgMutex());
  Cfg() = cfg;
  ModeAtomic().store(static_cast<int>(cfg.ExecMode),
                     std::memory_order_relaxed);
}

ExecConfig GetConfig()
{
  std::lock_guard<std::mutex> lock(CfgMutex());
  return Cfg();
}

bool ThreadsEnabled()
{
  return ModeAtomic().load(std::memory_order_relaxed) ==
         static_cast<int>(Mode::Threads);
}

EngineStats Stats()
{
  const AtomicStats &a = StatsRef();
  EngineStats s;
  s.TasksEnqueued = a.TasksEnqueued.load();
  s.CopiesEnqueued = a.CopiesEnqueued.load();
  s.TasksInline = a.TasksInline.load();
  s.ShardedRegions = a.ShardedRegions.load();
  s.ShardsExecuted = a.ShardsExecuted.load();
  s.FenceJoins = a.FenceJoins.load();
  return s;
}

void ResetStats()
{
  AtomicStats &a = StatsRef();
  a.TasksEnqueued = 0;
  a.CopiesEnqueued = 0;
  a.TasksInline = 0;
  a.ShardedRegions = 0;
  a.ShardsExecuted = 0;
  a.FenceJoins = 0;
}

void NoteInlineTask()
{
  StatsRef().TasksInline.fetch_add(1, std::memory_order_relaxed);
}

int ShardIndex()
{
  return tlShardIndex;
}

int ShardCount()
{
  return tlShardCount;
}

// --- Fence ---------------------------------------------------------------

void Fence::WaitRaw()
{
  std::unique_lock<std::mutex> lock(this->Mutex_);
  this->Cv_.wait(lock, [this] { return this->Done_; });
}

void Fence::Wait()
{
  this->WaitRaw();
  StatsRef().FenceJoins.fetch_add(1, std::memory_order_relaxed);
  // only the first waiter closes the happens-before edge; the checker
  // erases the token on join, so hand it out exactly once
  const std::uint64_t tok = this->EndToken_.exchange(0);
  if (tok)
    check::OnTaskJoin(tok);
}

bool Fence::Done() const
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  return this->Done_;
}

void Fence::MarkDone(std::uint64_t endToken)
{
  {
    std::lock_guard<std::mutex> lock(this->Mutex_);
    this->EndToken_.store(endToken);
    this->Done_ = true;
  }
  this->Cv_.notify_all();
}

// --- WorkerPool ----------------------------------------------------------

struct WorkerPool::Job
{
  RangeFn Fn;
  std::size_t N = 0;
  int Shards = 0;
  std::atomic<int> Next{0};      ///< next unclaimed shard
  std::atomic<int> Remaining{0}; ///< shards not yet finished
  int Active = 0;                ///< workers mid-participation (pool mutex)
  std::vector<char> Started;     ///< per worker, joined job (pool mutex)
  std::vector<std::uint64_t> SpawnTokens; ///< per worker, set by caller
  std::vector<std::uint64_t> EndTokens;   ///< per worker, set by worker
};

WorkerPool::WorkerPool(int threads)
{
  threads = std::max(1, threads);
  this->Threads_.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t)
    this->Threads_.emplace_back([this, t] { this->Loop(t); });
}

WorkerPool::~WorkerPool()
{
  {
    std::lock_guard<std::mutex> lock(this->Mutex_);
    this->Stop_ = true;
  }
  this->Cv_.notify_all();
  for (std::thread &t : this->Threads_)
    t.join();
}

void WorkerPool::RunShardsOf(Job &job)
{
  const std::size_t base = job.N / static_cast<std::size_t>(job.Shards);
  const std::size_t rem = job.N % static_cast<std::size_t>(job.Shards);
  for (;;)
  {
    const int s = job.Next.fetch_add(1, std::memory_order_relaxed);
    if (s >= job.Shards)
      break;
    const std::size_t su = static_cast<std::size_t>(s);
    const std::size_t begin =
      su * base + std::min<std::size_t>(su, rem);
    const std::size_t end = begin + base + (su < rem ? 1 : 0);
    // the shard index identifies the chunk, not the thread: privatized
    // kernels keyed on it produce slab contents that depend only on the
    // chunk boundaries, never on which lane claimed the chunk
    tlShardIndex = s;
    tlShardCount = job.Shards;
    if (end > begin)
      job.Fn(begin, end);
    tlShardIndex = 0;
    tlShardCount = 1;
    StatsRef().ShardsExecuted.fetch_add(1, std::memory_order_relaxed);
    job.Remaining.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void WorkerPool::Loop(int lane)
{
  std::unique_lock<std::mutex> lock(this->Mutex_);
  for (;;)
  {
    this->Cv_.wait(lock, [this, lane]
    {
      if (this->Stop_)
        return true;
      const Job *j = this->Current_.get();
      return j && !j->Started[static_cast<std::size_t>(lane)] &&
             j->Next.load(std::memory_order_relaxed) < j->Shards;
    });
    if (this->Stop_)
      return;
    std::shared_ptr<Job> job = this->Current_;
    job->Started[static_cast<std::size_t>(lane)] = 1;
    ++job->Active;
    lock.unlock();

    check::OnTaskStart(job->SpawnTokens[static_cast<std::size_t>(lane)]);
    RunShardsOf(*job);
    job->EndTokens[static_cast<std::size_t>(lane)] = check::OnTaskEnd();

    lock.lock();
    --job->Active;
    this->Cv_.notify_all();
  }
}

void WorkerPool::Run(std::size_t n, int shards, const RangeFn &fn)
{
  if (shards <= 1 || n == 0)
  {
    if (fn && n)
      fn(0, n);
    return;
  }

  auto job = std::make_shared<Job>();
  job->Fn = fn;
  job->N = n;
  job->Shards = shards;
  job->Remaining.store(shards, std::memory_order_relaxed);
  const std::size_t lanes = this->Threads_.size();
  job->Started.assign(lanes, 0);
  job->SpawnTokens.assign(lanes, 0);
  job->EndTokens.assign(lanes, 0);
  for (std::size_t t = 0; t < lanes; ++t)
    job->SpawnTokens[t] = check::OnTaskSpawn();

  std::unique_lock<std::mutex> lock(this->Mutex_);
  // one region at a time; concurrent submitters queue here
  this->Cv_.wait(lock, [this] { return !this->Current_; });
  this->Current_ = job;
  this->Cv_.notify_all();
  lock.unlock();

  // the caller is a lane too
  RunShardsOf(*job);

  lock.lock();
  this->Cv_.wait(lock, [&job]
  {
    return job->Remaining.load(std::memory_order_acquire) == 0 &&
           job->Active == 0;
  });
  this->Current_.reset();
  this->Cv_.notify_all();
  lock.unlock();

  // close the happens-before edges: join every participant's end token,
  // and consume the spawn tokens of workers that never woke for this job
  for (std::size_t t = 0; t < lanes; ++t)
  {
    if (job->Started[t])
      check::OnTaskJoin(job->EndTokens[t]);
    else
      check::OnTaskJoin(job->SpawnTokens[t]);
  }
}

// --- Engine --------------------------------------------------------------

Engine &Engine::Get()
{
  static Engine e;
  return e;
}

Engine::~Engine()
{
  this->Quiesce();
}

void Engine::ResetTopology(int numNodes, int devicesPerNode)
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  this->QuiesceLocked();
  this->NumNodes_ = std::max(0, numNodes);
  this->DevicesPerNode_ = std::max(0, devicesPerNode);
  const std::size_t nq = static_cast<std::size_t>(this->NumNodes_) *
                         static_cast<std::size_t>(this->DevicesPerNode_) * 2;
  this->Queues_.clear();
  this->Queues_.reserve(nq);
  for (std::size_t i = 0; i < nq; ++i)
    this->Queues_.emplace_back(new DeviceQueue);
  this->Pools_.clear();
  this->Pools_.resize(static_cast<std::size_t>(this->NumNodes_));
}

Engine::DeviceQueue *Engine::Queue(int node, int device, int queue)
{
  if (node < 0 || node >= this->NumNodes_ || device < 0 ||
      device >= this->DevicesPerNode_ || queue < 0 || queue > 1)
    return nullptr;
  const std::size_t i =
    (static_cast<std::size_t>(node) *
       static_cast<std::size_t>(this->DevicesPerNode_) +
     static_cast<std::size_t>(device)) *
      2 +
    static_cast<std::size_t>(queue);
  return this->Queues_[i].get();
}

void Engine::EnsureWorkerLocked(DeviceQueue &q)
{
  if (!q.Worker.joinable())
  {
    q.Stop = false;
    q.Worker = std::thread(&Engine::WorkerLoop, &q);
  }
}

void Engine::WorkerLoop(DeviceQueue *q)
{
  for (;;)
  {
    Task task;
    {
      std::unique_lock<std::mutex> lock(q->Mutex);
      q->Cv.wait(lock, [q] { return q->Stop || !q->Queue.empty(); });
      if (q->Queue.empty())
        return; // Stop with nothing left to drain
      task = std::move(q->Queue.front());
      q->Queue.pop_front();
    }
    // cross-queue ordering: same-queue dependencies are already done
    // (FIFO), so these waits only ever block on other queues' fences
    for (const FencePtr &dep : task.Deps)
      if (dep)
        dep->WaitRaw();
    check::OnTaskStart(task.SpawnToken);
    if (task.Body)
      task.Body();
    const std::uint64_t end = check::OnTaskEnd();
    task.Done->MarkDone(end);
  }
}

FencePtr Engine::Enqueue(int node, int device, int queue,
                         std::vector<FencePtr> deps,
                         std::function<void()> body)
{
  auto fence = std::make_shared<Fence>();
  AtomicStats &s = StatsRef();
  (queue == CopyQueue ? s.CopiesEnqueued : s.TasksEnqueued)
    .fetch_add(1, std::memory_order_relaxed);

  Task task;
  task.Body = std::move(body);
  task.Deps = std::move(deps);
  task.Done = fence;
  task.SpawnToken = check::OnTaskSpawn();

  DeviceQueue *q = nullptr;
  {
    std::lock_guard<std::mutex> lock(this->Mutex_);
    q = this->Queue(node, device, queue);
    if (q)
    {
      std::lock_guard<std::mutex> qlock(q->Mutex);
      q->Queue.push_back(std::move(task));
      q->Tail = fence;
      this->EnsureWorkerLocked(*q);
      q->Cv.notify_one();
    }
  }
  if (!q)
  {
    // no topology for this target (e.g. platform not built yet): run
    // inline so callers still get a completed fence
    for (const FencePtr &dep : task.Deps)
      if (dep)
        dep->WaitRaw();
    check::OnTaskStart(task.SpawnToken);
    if (task.Body)
      task.Body();
    fence->MarkDone(check::OnTaskEnd());
  }
  return fence;
}

int Engine::Lanes() const
{
  const ExecConfig cfg = GetConfig();
  const int threads = cfg.Threads > 0 ? cfg.Threads : AutoPoolThreads();
  return threads + 1;
}

int Engine::PlanShards(std::size_t n, int width) const
{
  if (!ThreadsEnabled() || n == 0)
    return 1;
  const ExecConfig cfg = GetConfig();
  std::size_t lanes = static_cast<std::size_t>(this->Lanes());
  if (width > 0)
    lanes = std::min<std::size_t>(lanes, static_cast<std::size_t>(width));
  const std::size_t grain = std::max<std::size_t>(1, cfg.ShardGrain);
  const std::size_t byGrain = (n + grain - 1) / grain;
  const std::size_t shards = std::min(lanes, byGrain);
  return shards < 2 ? 1 : static_cast<int>(shards);
}

void Engine::RunSharded(int node, std::size_t n, int shards,
                        const RangeFn &fn)
{
  if (shards <= 1 || n == 0)
  {
    if (fn && n)
      fn(0, n);
    return;
  }

  WorkerPool *pool = nullptr;
  {
    std::lock_guard<std::mutex> lock(this->PoolMutex_);
    if (node >= 0 && node < static_cast<int>(this->Pools_.size()))
    {
      auto &slot = this->Pools_[static_cast<std::size_t>(node)];
      if (!slot)
      {
        const ExecConfig cfg = GetConfig();
        const int threads =
          cfg.Threads > 0 ? cfg.Threads : AutoPoolThreads();
        slot.reset(new WorkerPool(threads));
      }
      pool = slot.get();
    }
  }
  if (!pool)
  {
    if (fn)
      fn(0, n);
    return;
  }
  StatsRef().ShardedRegions.fetch_add(1, std::memory_order_relaxed);
  pool->Run(n, shards, fn);
}

void Engine::WaitDeviceTails(int node, int device)
{
  FencePtr tails[2];
  {
    std::lock_guard<std::mutex> lock(this->Mutex_);
    for (int queue = 0; queue < 2; ++queue)
    {
      if (DeviceQueue *q = this->Queue(node, device, queue))
      {
        std::lock_guard<std::mutex> qlock(q->Mutex);
        tails[queue] = q->Tail;
      }
    }
  }
  for (FencePtr &f : tails)
    if (f)
      f->Wait();
}

void Engine::WaitAll()
{
  std::vector<FencePtr> tails;
  {
    std::lock_guard<std::mutex> lock(this->Mutex_);
    tails.reserve(this->Queues_.size());
    for (const auto &q : this->Queues_)
    {
      std::lock_guard<std::mutex> qlock(q->Mutex);
      if (q->Tail)
        tails.push_back(q->Tail);
    }
  }
  for (FencePtr &f : tails)
    if (f)
      f->Wait();
}

void Engine::Quiesce()
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  this->QuiesceLocked();
}

void Engine::QuiesceLocked()
{
  // stop-and-drain: workers exit only once their queue is empty, so all
  // enqueued bodies (and their checker end tokens) are published. Device
  // workers never take Engine::Mutex_, and sharded bodies go through
  // PoolMutex_, so joining under Mutex_ cannot deadlock.
  for (const auto &q : this->Queues_)
  {
    {
      std::lock_guard<std::mutex> qlock(q->Mutex);
      q->Stop = true;
    }
    q->Cv.notify_all();
  }
  for (const auto &q : this->Queues_)
  {
    if (q->Worker.joinable())
      q->Worker.join();
    std::lock_guard<std::mutex> qlock(q->Mutex);
    q->Stop = false;
    q->Tail.reset();
  }
  std::lock_guard<std::mutex> plock(this->PoolMutex_);
  for (auto &p : this->Pools_)
    p.reset(); // ~WorkerPool joins its threads
}

} // namespace exec
} // namespace vp
