#ifndef layoutMapping_h
#define layoutMapping_h

/// @file layoutMapping.h
/// vp::layout — the layout-polymorphic array engine (LLAMA-style).
///
/// A Mapping separates *what* an array stores (Tuples records of Comps
/// scalar components) from *where* each scalar lands in the flat
/// allocation, so the access code never hard-wires a memory layout:
///
///  * AoS    — records interleaved: [x0 y0 z0 | x1 y1 z1 | ...]. The
///             historical svtkHAMRDataArray layout; tuple access is one
///             cache line, component scans are strided.
///  * SoA    — component planes: [x0 x1 ... | y0 y1 ... | z0 z1 ...].
///             Component scans are fully contiguous — the vectorizable
///             layout for per-lane SIMD kernels and coalesced device
///             access.
///  * AoSoA  — blocked hybrid: blocks of B tuples, components
///             contiguous within a block: [x0..xB-1 y0..yB-1 ... |
///             xB..x2B-1 ...]. Runs of B elements keep SIMD width while
///             a whole record stays within one block (cache locality).
///
/// One-component arrays are layout-invariant: every Kind maps to the
/// identity and Slots() == Tuples, so the bulk of the repo's columns
/// (separate x/y/z/... arrays) pay nothing for the abstraction.
///
/// The process-wide LayoutConfig (VP_LAYOUT / VP_SIMD environment, the
/// <layout> SENSEI XML element, per-analysis overrides) selects the
/// default Kind for newly declared arrays and whether kernels may take
/// their vectorized (SIMD lane) variants. The scalar paths are
/// bit-exact with the seed timeline; the SIMD variants reassociate
/// floating-point accumulation and are therefore opt-in.

#include <cstddef>
#include <cstdint>
#include <string>

namespace vp
{
namespace layout
{

/// The memory layouts a Mapping can describe.
enum class Kind : int
{
  AoS = 0, ///< interleaved records (the historical layout)
  SoA,     ///< one contiguous plane per component
  AoSoA    ///< blocks of `Block` tuples, component-contiguous per block
};

/// Parse "aos" / "soa" / "aosoa" / "aosoa<B>" (e.g. "aosoa16"). When a
/// block size is embedded it is written to *block (left untouched
/// otherwise). Throws std::invalid_argument on anything else.
Kind KindFromName(const std::string &name, std::size_t *block = nullptr);

/// Stable lower-case base name ("aos", "soa", "aosoa").
const char *KindName(Kind k);

/// Display name carrying the block size for AoSoA ("aosoa32").
std::string KindName(Kind k, std::size_t block);

/// A contiguous run of one component's values in the flat allocation.
struct Run
{
  std::size_t Offset = 0; ///< first flat slot of the run
  std::size_t Count = 0;  ///< elements in the run (tuples covered)
};

/// Where each (tuple, component) scalar lives in the flat allocation.
struct Mapping
{
  Kind Layout = Kind::AoS;
  std::size_t Tuples = 0;
  std::size_t Comps = 1;
  std::size_t Block = 32; ///< tuples per AoSoA block

  static Mapping AoS(std::size_t tuples, std::size_t comps);
  static Mapping SoA(std::size_t tuples, std::size_t comps);
  static Mapping AoSoA(std::size_t tuples, std::size_t comps,
                       std::size_t block);
  static Mapping Make(Kind k, std::size_t tuples, std::size_t comps,
                      std::size_t block);

  /// Total scalar slots the flat allocation needs. AoS/SoA pack exactly
  /// Tuples*Comps; AoSoA pads the final partial block so every block's
  /// component runs stay `Block` apart (padding slots are zero filled
  /// by the allocation and never addressed by Offset).
  std::size_t Slots() const noexcept;

  /// Flat slot of (tuple, component). No bounds checking.
  std::size_t Offset(std::size_t tuple, std::size_t comp) const noexcept;

  /// The longest contiguous run of component `comp` starting at `tuple`
  /// (AoS: 1; SoA: Tuples - tuple; AoSoA: to the end of the block).
  Run RunAt(std::size_t tuple, std::size_t comp) const noexcept;

  bool operator==(const Mapping &o) const noexcept
  {
    return this->Layout == o.Layout && this->Tuples == o.Tuples &&
           this->Comps == o.Comps &&
           (this->Layout != Kind::AoSoA || this->Block == o.Block);
  }
  bool operator!=(const Mapping &o) const noexcept { return !(*this == o); }
};

// --- process-wide configuration ---------------------------------------------

/// The `<layout>` XML element / VP_LAYOUT, VP_SIMD environment.
struct LayoutConfig
{
  Kind Default = Kind::AoS; ///< layout for newly declared arrays
  std::size_t Block = 32;   ///< AoSoA block size
  bool Simd = false;        ///< allow vectorized (reassociating) kernels

  bool operator==(const LayoutConfig &o) const
  {
    return Default == o.Default && Block == o.Block && Simd == o.Simd;
  }
};

/// The configuration the environment selects: VP_LAYOUT names the
/// default Kind ("aos" | "soa" | "aosoa" | "aosoa<B>"), VP_SIMD enables
/// the vectorized kernel variants (both optional; AoS + scalar
/// otherwise).
LayoutConfig DefaultConfig();

/// Replace the process-wide configuration. Validated: Block must be in
/// [2, 65536]. Throws std::invalid_argument otherwise.
void Configure(const LayoutConfig &cfg);

/// The active configuration.
LayoutConfig GetConfig();

/// Shorthands for the hot paths.
Kind DefaultKind();
std::size_t DefaultBlock();
bool SimdEnabled();

// --- counters ----------------------------------------------------------------

/// Aggregate engine counters (process-wide, reset with ResetStats).
struct LayoutStats
{
  std::uint64_t Conversions = 0;    ///< layout-to-layout reorders
  std::uint64_t BytesReordered = 0; ///< bytes moved by those reorders
  std::uint64_t SimdKernels = 0;    ///< vectorized kernel bodies taken
  std::uint64_t ScalarKernels = 0;  ///< scalar fallback bodies taken
  std::uint64_t RunsIterated = 0;   ///< contiguous runs handed to callers
  std::uint64_t PlaneTransposes = 0; ///< blocked byte-plane transposes
  std::uint64_t PlaneBytes = 0;      ///< bytes moved by those transposes
};

LayoutStats Stats();
void ResetStats();

void NoteConversion(std::size_t bytes);
void NoteSimdKernel();
void NoteScalarKernel();
void NoteRuns(std::size_t n);
void NotePlaneTranspose(std::size_t bytes);

// --- byte-plane transpose ----------------------------------------------------

/// Gather the `esize` byte planes of `n` interleaved elements:
/// dst[b*n + i] = src[i*esize + b]. One cache-blocked pass replaces the
/// per-plane strided sweeps of the naive shuffle (the codec's measured
/// hot loop); the output bytes are identical.
void GatherPlanes(const std::uint8_t *src, std::size_t esize, std::size_t n,
                  std::uint8_t *dst);

/// Inverse of GatherPlanes: dst[i*esize + b] = src[b*n + i].
void ScatterPlanes(const std::uint8_t *src, std::size_t esize, std::size_t n,
                   std::uint8_t *dst);

} // namespace layout
} // namespace vp

#endif
