#ifndef layoutView_h
#define layoutView_h

/// @file layoutView.h
/// layout::View<T> — a zero-copy typed accessor over a flat allocation
/// interpreted through a layout::Mapping. The view owns nothing; it is
/// a (pointer, mapping) pair whose accessors translate (tuple,
/// component) coordinates into flat slots, and whose run iteration
/// hands kernels the contiguous spans the active layout provides so
/// the inner loops vectorize over `__restrict` pointers instead of
/// strided gathers.
///
/// Invalidation: a view caches the pointer and the mapping at
/// construction. Any operation that reallocates or reorders the
/// underlying storage (resize, layout conversion) invalidates every
/// outstanding view; acquire views per kernel, not per array lifetime.

#include "layoutMapping.h"

#include <cstddef>
#include <utility>

namespace vp
{
namespace layout
{

template <typename T>
class View
{
public:
  View() = default;
  View(T *data, const Mapping &map) : Data_(data), Map_(map) {}

  const Mapping &Map() const noexcept { return this->Map_; }
  T *Data() const noexcept { return this->Data_; }
  std::size_t Tuples() const noexcept { return this->Map_.Tuples; }
  std::size_t Comps() const noexcept { return this->Map_.Comps; }

  /// Element access through the mapping.
  T &operator()(std::size_t tuple, std::size_t comp) const noexcept
  {
    return this->Data_[this->Map_.Offset(tuple, comp)];
  }

  /// Pointer to the contiguous run of component `comp` starting at
  /// `tuple`; *count receives the run length.
  T *RunPtr(std::size_t tuple, std::size_t comp,
            std::size_t *count) const noexcept
  {
    const Run r = this->Map_.RunAt(tuple, comp);
    if (count)
      *count = r.Count;
    return this->Data_ + r.Offset;
  }

  /// Invoke fn(T *run, std::size_t tuple0, std::size_t count) for every
  /// contiguous run of component `comp` over tuples [begin, end). The
  /// run pointers are disjoint per call, so fn's loop bodies vectorize.
  template <typename F>
  void ForEachRun(std::size_t comp, std::size_t begin, std::size_t end,
                  F &&fn) const
  {
    std::size_t nRuns = 0;
    for (std::size_t t = begin; t < end;)
    {
      Run r = this->Map_.RunAt(t, comp);
      if (t + r.Count > end)
        r.Count = end - t;
      fn(this->Data_ + r.Offset, t, r.Count);
      t += r.Count;
      ++nRuns;
    }
    NoteRuns(nRuns);
  }

  template <typename F>
  void ForEachRun(std::size_t comp, F &&fn) const
  {
    this->ForEachRun(comp, 0, this->Map_.Tuples, std::forward<F>(fn));
  }

private:
  T *Data_ = nullptr;
  Mapping Map_;
};

/// Element-wise reorder between two mappings of the same logical shape:
/// dst[to.Offset(t, c)] = src[from.Offset(t, c)] over [tupleBegin,
/// tupleEnd). Iterates the destination's runs so writes stay
/// contiguous; identical values land in every layout, so round trips
/// are bit-exact. `src` and `dst` must not alias.
template <typename T>
void ReorderRange(const T *src, const Mapping &from, T *dst,
                  const Mapping &to, std::size_t tupleBegin,
                  std::size_t tupleEnd)
{
  const std::size_t comps = to.Comps;
  for (std::size_t c = 0; c < comps; ++c)
  {
    View<T> out(dst, to);
    out.ForEachRun(c, tupleBegin, tupleEnd,
                   [&](T *__restrict run, std::size_t t0, std::size_t count)
                   {
                     if (from.Layout == Kind::SoA || from.Comps == 1)
                     {
                       // source run is contiguous too: straight copy
                       const T *__restrict s = src + from.Offset(t0, c);
                       for (std::size_t i = 0; i < count; ++i)
                         run[i] = s[i];
                       return;
                     }
                     for (std::size_t i = 0; i < count; ++i)
                       run[i] = src[from.Offset(t0 + i, c)];
                   });
  }
}

/// Whole-array reorder; counts the conversion in layout::Stats().
template <typename T>
void Reorder(const T *src, const Mapping &from, T *dst, const Mapping &to)
{
  ReorderRange(src, from, dst, to, 0, to.Tuples);
  NoteConversion(to.Tuples * to.Comps * sizeof(T));
}

} // namespace layout
} // namespace vp

#endif
