#include "layoutMapping.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

namespace vp
{
namespace layout
{

// --- names -------------------------------------------------------------------

Kind KindFromName(const std::string &name, std::size_t *block)
{
  if (name == "aos" || name == "interleaved")
    return Kind::AoS;
  if (name == "soa" || name == "planar")
    return Kind::SoA;
  if (name.rfind("aosoa", 0) == 0)
  {
    const std::string tail = name.substr(5);
    if (tail.empty())
      return Kind::AoSoA;
    for (char c : tail)
      if (!std::isdigit(static_cast<unsigned char>(c)))
        throw std::invalid_argument("vp::layout: bad layout name '" + name +
                                    "'");
    const unsigned long b = std::strtoul(tail.c_str(), nullptr, 10);
    if (b < 2 || b > 65536)
      throw std::invalid_argument("vp::layout: aosoa block size must be in "
                                  "[2, 65536], got '" + name + "'");
    if (block)
      *block = static_cast<std::size_t>(b);
    return Kind::AoSoA;
  }
  throw std::invalid_argument("vp::layout: unknown layout '" + name +
                              "' (want aos | soa | aosoa | aosoa<B>)");
}

const char *KindName(Kind k)
{
  switch (k)
  {
    case Kind::AoS:
      return "aos";
    case Kind::SoA:
      return "soa";
    case Kind::AoSoA:
      return "aosoa";
  }
  return "unknown";
}

std::string KindName(Kind k, std::size_t block)
{
  if (k == Kind::AoSoA)
    return "aosoa" + std::to_string(block);
  return KindName(k);
}

// --- mapping -----------------------------------------------------------------

Mapping Mapping::AoS(std::size_t tuples, std::size_t comps)
{
  return Make(Kind::AoS, tuples, comps, 0);
}

Mapping Mapping::SoA(std::size_t tuples, std::size_t comps)
{
  return Make(Kind::SoA, tuples, comps, 0);
}

Mapping Mapping::AoSoA(std::size_t tuples, std::size_t comps,
                       std::size_t block)
{
  return Make(Kind::AoSoA, tuples, comps, block);
}

Mapping Mapping::Make(Kind k, std::size_t tuples, std::size_t comps,
                      std::size_t block)
{
  Mapping m;
  m.Layout = k;
  m.Tuples = tuples;
  m.Comps = comps ? comps : 1;
  m.Block = block ? block : GetConfig().Block;
  if (k == Kind::AoSoA && m.Block < 2)
    throw std::invalid_argument("vp::layout: AoSoA block size must be >= 2");
  return m;
}

std::size_t Mapping::Slots() const noexcept
{
  if (this->Comps == 1 || this->Layout != Kind::AoSoA)
    return this->Tuples * this->Comps;
  const std::size_t blocks = (this->Tuples + this->Block - 1) / this->Block;
  return blocks * this->Block * this->Comps;
}

std::size_t Mapping::Offset(std::size_t tuple, std::size_t comp) const noexcept
{
  if (this->Comps == 1)
    return tuple;
  switch (this->Layout)
  {
    case Kind::AoS:
      return tuple * this->Comps + comp;
    case Kind::SoA:
      return comp * this->Tuples + tuple;
    case Kind::AoSoA:
    {
      const std::size_t b = tuple / this->Block;
      const std::size_t r = tuple % this->Block;
      return b * this->Block * this->Comps + comp * this->Block + r;
    }
  }
  return tuple * this->Comps + comp;
}

Run Mapping::RunAt(std::size_t tuple, std::size_t comp) const noexcept
{
  Run run;
  run.Offset = this->Offset(tuple, comp);
  if (this->Comps == 1)
  {
    run.Count = this->Tuples - tuple;
    return run;
  }
  switch (this->Layout)
  {
    case Kind::AoS:
      run.Count = 1;
      break;
    case Kind::SoA:
      run.Count = this->Tuples - tuple;
      break;
    case Kind::AoSoA:
    {
      const std::size_t inBlock = this->Block - tuple % this->Block;
      const std::size_t left = this->Tuples - tuple;
      run.Count = inBlock < left ? inBlock : left;
      break;
    }
  }
  return run;
}

// --- configuration -----------------------------------------------------------

namespace
{

std::mutex &StateMutex()
{
  static std::mutex m;
  return m;
}

LayoutConfig &GlobalConfig()
{
  static LayoutConfig cfg = DefaultConfig();
  return cfg;
}

void Validate(const LayoutConfig &cfg)
{
  if (cfg.Block < 2 || cfg.Block > 65536)
    throw std::invalid_argument(
      "vp::layout::Configure: block must be in [2, 65536]");
}

struct AtomicStats
{
  std::atomic<std::uint64_t> Conversions{0};
  std::atomic<std::uint64_t> BytesReordered{0};
  std::atomic<std::uint64_t> SimdKernels{0};
  std::atomic<std::uint64_t> ScalarKernels{0};
  std::atomic<std::uint64_t> RunsIterated{0};
  std::atomic<std::uint64_t> PlaneTransposes{0};
  std::atomic<std::uint64_t> PlaneBytes{0};
};

AtomicStats &GlobalStats()
{
  static AtomicStats s;
  return s;
}

} // namespace

LayoutConfig DefaultConfig()
{
  LayoutConfig cfg;
  if (const char *env = std::getenv("VP_LAYOUT"))
  {
    std::size_t block = cfg.Block;
    cfg.Default = KindFromName(env, &block);
    cfg.Block = block;
  }
  if (const char *env = std::getenv("VP_SIMD"))
    cfg.Simd = env[0] && env[0] != '0';
  return cfg;
}

void Configure(const LayoutConfig &cfg)
{
  Validate(cfg);
  std::lock_guard<std::mutex> lock(StateMutex());
  GlobalConfig() = cfg;
}

LayoutConfig GetConfig()
{
  std::lock_guard<std::mutex> lock(StateMutex());
  return GlobalConfig();
}

Kind DefaultKind()
{
  return GetConfig().Default;
}

std::size_t DefaultBlock()
{
  return GetConfig().Block;
}

bool SimdEnabled()
{
  return GetConfig().Simd;
}

// --- counters ----------------------------------------------------------------

LayoutStats Stats()
{
  const AtomicStats &a = GlobalStats();
  LayoutStats s;
  s.Conversions = a.Conversions.load(std::memory_order_relaxed);
  s.BytesReordered = a.BytesReordered.load(std::memory_order_relaxed);
  s.SimdKernels = a.SimdKernels.load(std::memory_order_relaxed);
  s.ScalarKernels = a.ScalarKernels.load(std::memory_order_relaxed);
  s.RunsIterated = a.RunsIterated.load(std::memory_order_relaxed);
  s.PlaneTransposes = a.PlaneTransposes.load(std::memory_order_relaxed);
  s.PlaneBytes = a.PlaneBytes.load(std::memory_order_relaxed);
  return s;
}

void ResetStats()
{
  AtomicStats &a = GlobalStats();
  a.Conversions.store(0, std::memory_order_relaxed);
  a.BytesReordered.store(0, std::memory_order_relaxed);
  a.SimdKernels.store(0, std::memory_order_relaxed);
  a.ScalarKernels.store(0, std::memory_order_relaxed);
  a.RunsIterated.store(0, std::memory_order_relaxed);
  a.PlaneTransposes.store(0, std::memory_order_relaxed);
  a.PlaneBytes.store(0, std::memory_order_relaxed);
}

void NoteConversion(std::size_t bytes)
{
  AtomicStats &a = GlobalStats();
  a.Conversions.fetch_add(1, std::memory_order_relaxed);
  a.BytesReordered.fetch_add(bytes, std::memory_order_relaxed);
}

void NoteSimdKernel()
{
  GlobalStats().SimdKernels.fetch_add(1, std::memory_order_relaxed);
}

void NoteScalarKernel()
{
  GlobalStats().ScalarKernels.fetch_add(1, std::memory_order_relaxed);
}

void NoteRuns(std::size_t n)
{
  GlobalStats().RunsIterated.fetch_add(n, std::memory_order_relaxed);
}

void NotePlaneTranspose(std::size_t bytes)
{
  AtomicStats &a = GlobalStats();
  a.PlaneTransposes.fetch_add(1, std::memory_order_relaxed);
  a.PlaneBytes.fetch_add(bytes, std::memory_order_relaxed);
}

// --- byte-plane transpose ----------------------------------------------------

namespace
{
/// Elements per transpose tile: 256 elements x 8 byte planes = one 2 KiB
/// working set, well inside L1, so every source cache line is consumed
/// completely while it is resident.
constexpr std::size_t TransposeTile = 256;
} // namespace

void GatherPlanes(const std::uint8_t *src, std::size_t esize, std::size_t n,
                  std::uint8_t *dst)
{
  if (!n || !esize)
    return;
  for (std::size_t t = 0; t < n; t += TransposeTile)
  {
    const std::size_t m = n - t < TransposeTile ? n - t : TransposeTile;
    const std::uint8_t *__restrict s = src + t * esize;
    for (std::size_t b = 0; b < esize; ++b)
    {
      std::uint8_t *__restrict d = dst + b * n + t;
      for (std::size_t i = 0; i < m; ++i)
        d[i] = s[i * esize + b];
    }
  }
  NotePlaneTranspose(n * esize);
}

void ScatterPlanes(const std::uint8_t *src, std::size_t esize, std::size_t n,
                   std::uint8_t *dst)
{
  if (!n || !esize)
    return;
  for (std::size_t t = 0; t < n; t += TransposeTile)
  {
    const std::size_t m = n - t < TransposeTile ? n - t : TransposeTile;
    std::uint8_t *__restrict d = dst + t * esize;
    for (std::size_t b = 0; b < esize; ++b)
    {
      const std::uint8_t *__restrict s = src + b * n + t;
      for (std::size_t i = 0; i < m; ++i)
        d[i * esize + b] = s[i];
    }
  }
  NotePlaneTranspose(n * esize);
}

} // namespace layout
} // namespace vp
