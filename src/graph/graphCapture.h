#ifndef graphCapture_h
#define graphCapture_h

/// @file graphCapture.h
/// Captured step-graph execution for the virtual platform — the CUDA-graph
/// analogue for in situ analysis steps. A vp::graph::Session observes one
/// step's stream-ordered work (kernel launches, async copies, event
/// record/wait edges) through the vp::CaptureSink hooks while the step
/// still executes eagerly, so the src/check vector-clock checker validates
/// the DAG once. From the next step on the session *replays* the captured
/// graph: each submission is matched positionally against the recorded
/// node (rebinding pointers and kernel bodies to this step's buffers) at
/// near-zero cost, and the accumulated virtual-time charges are applied in
/// one amortized flush per synchronization point instead of per call. An
/// optional fusion pass merges runs of compatible launches that share a
/// FuseKey into one multi-output launch, collapsing per-launch latency and
/// task-dispatch overhead. Any structural divergence (different op, N,
/// stream shape, or event wiring) flushes the matched prefix, falls back
/// to eager execution for the rest of the step, and recaptures on the
/// next step — results are bit-exact with eager execution in all cases.

#include "vpCaptureSink.h"
#include "vpPlatform.h"
#include "vpStream.h"
#include "vpTypes.h"

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace vp
{
namespace graph
{

/// Runtime configuration, env-overridable (VP_GRAPH, VP_GRAPH_FUSION).
struct GraphConfig
{
  bool Enabled = false;   ///< capture/replay on (VP_GRAPH=1)
  bool Fusion = true;     ///< merge FuseKey-compatible launches
  std::size_t MaxNodes = 4096; ///< capture aborts beyond this many nodes
  /// Backlog gap (virtual seconds) between the pinned replay device and
  /// the best adaptive candidate beyond which the placement is considered
  /// diverged and the armed graph is dropped for re-capture.
  double RepinThreshold = 2.0e-3;
};

/// Configuration seeded from the environment: VP_GRAPH (1/on/true enables,
/// 0/off/false disables), VP_GRAPH_FUSION likewise, VP_GRAPH_MAX_NODES.
GraphConfig DefaultConfig();

/// Install a configuration (tests, ConfigurableAnalysis <graph> element).
void Configure(const GraphConfig &cfg);

/// The active configuration.
GraphConfig GetConfig();

/// True when capture/replay is globally enabled.
bool Enabled();

/// Aggregate counters across all sessions since ResetStats().
struct GraphStats
{
  std::uint64_t Captures = 0;      ///< graphs captured (armed)
  std::uint64_t CaptureAborts = 0; ///< captures abandoned (overflow, foreign event)
  std::uint64_t Replays = 0;       ///< full-step replays completed
  std::uint64_t Invalidations = 0; ///< armed graphs dropped (divergence, repin)
  std::uint64_t NodesCaptured = 0; ///< DAG nodes across all captures
  std::uint64_t LaunchesFused = 0; ///< launches absorbed into a fused head
  std::uint64_t Flushes = 0;       ///< amortized replay flushes
  std::uint64_t OpsAbsorbed = 0;   ///< submissions matched during replay
};

/// Snapshot of the aggregate counters.
GraphStats Stats();

/// Zero the aggregate counters.
void ResetStats();

/// One recorded operation of the step DAG.
enum class NodeKind : std::uint8_t
{
  Kernel = 0,
  Copy,
  EventRecord,
  EventWait
};

/// A node of the captured DAG. Kernel nodes keep the work cost *excluding*
/// launch latency so fusion can sum member work under a single latency;
/// copy nodes keep the classified cost; event nodes carry the per-step
/// event index wired by record/wait pairs.
struct GraphNode
{
  NodeKind Kind = NodeKind::Kernel;
  int StreamIx = 0;     ///< index into the session's stream slots

  // --- Kernel ---
  KernelDesc Desc;      ///< captured launch description (N, ops, name, key)
  KernelFn Fn;          ///< body, rebound every replay step
  bool Synchronous = false;
  double WorkSeconds = 0.0; ///< KernelSeconds minus launch latency
  /// Fusion grouping: >=1 on a group head (member count, 1 = unfused),
  /// 0 on a member absorbed by the preceding head.
  int GroupSize = 1;

  // --- Copy ---
  void *Dst = nullptr;
  const void *Src = nullptr;
  std::size_t Bytes = 0;
  double CopySeconds = 0.0; ///< classified transfer cost, rebound on match
  int CopyKindIx = 0;       ///< CopyKind index for platform stats

  // --- EventRecord / EventWait ---
  int EventIx = -1;     ///< per-step event slot
};

/// One stream role of the captured DAG. Streams are matched by first
/// appearance order; each replay step rebinds the role to the step's
/// concrete stream, which must live on the recorded node/device.
struct StreamSlot
{
  int Node = 0;
  DeviceId Device = 0;
  Stream Bound; ///< this step's binding (cleared at step begin)
};

/// A capture/replay session for one recurring step pattern (typically one
/// analysis adaptor). Drive it with StepScope; between steps the session
/// is inert. A session whose pattern proves uncapturable (overflow,
/// cross-step events, empty step) goes permanently eager.
class Session : public CaptureSink
{
public:
  Session() = default;
  ~Session() override = default;
  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;

  /// True when a captured graph is armed for replay — placement decisions
  /// feeding the captured kernels should stay pinned while this holds.
  bool Armed() const;

  /// Drop an armed graph (e.g. the scheduler wants to move the work to a
  /// different device): counts an invalidation and recaptures next step.
  void Drop();

  /// True when the session can never capture again.
  bool Dead() const;

  // --- CaptureSink ---------------------------------------------------------
  bool OnKernel(const Stream &stream, const KernelDesc &desc,
                const KernelFn &fn, bool synchronous) override;
  bool OnCopy(const Stream &stream, void *dst, const void *src,
              std::size_t bytes) override;
  bool OnEventRecord(const Stream &stream, std::uint64_t captureId) override;
  bool OnStreamWaitEvent(const Stream &stream,
                         std::uint64_t captureId) override;
  void BeforeStreamSync(const Stream &stream) override;
  void BeforeDeviceSync(int node, DeviceId device) override;
  void BeforeEventSync(std::uint64_t captureId) override;

private:
  friend class StepScope;

  enum class State : std::uint8_t
  {
    Idle = 0,   ///< no graph; next step captures
    Capturing,  ///< recording this step (ops also run eagerly)
    Armed,      ///< captured graph ready; next step replays
    Replaying,  ///< matching this step against the graph
    Bypass      ///< this step runs eagerly (mismatch or abort)
  };

  void BeginStep();
  void EndStep();

  /// Abandon the current capture permanently.
  void AbortCapture();

  /// Record a stream's slot index, creating the slot on first sight
  /// (capture) — returns -1 for a stream that cannot be captured.
  int CaptureStreamIx(const Stream &stream);

  /// Resolve / bind a stream to its recorded slot during replay; returns
  /// false on a binding mismatch.
  bool BindStreamIx(const Stream &stream, int wantIx);

  /// Apply the matched-prefix charges: one amortized latency, engine
  /// claims per node group, inline bodies, then per-stream summary edges.
  void Flush();

  /// Structural mismatch mid-replay: flush the prefix and go eager.
  void Invalidate();

  /// Merge FuseKey-compatible consecutive launches (EndStep, post-capture).
  void FusePass();

  mutable std::mutex Mutex_; ///< held across a step by StepScope
  State State_ = State::Idle;
  bool Dead_ = false;

  std::vector<GraphNode> Nodes_;
  std::vector<StreamSlot> Streams_;
  /// Capture-time identity map: concrete stream -> slot index.
  std::unordered_map<const StreamState *, int> StreamIxOf_;

  std::size_t Cursor_ = 0;       ///< next node to match (replay)
  std::size_t PendingBegin_ = 0; ///< first node not yet flushed (replay)
  /// Per-step map: vcuda capture id -> event slot index.
  std::unordered_map<std::uint64_t, int> EventIx_;
  int NextEventIx_ = 0;   ///< event slots assigned during capture
  int NumEvents_ = 0;     ///< event slots in the armed graph
  /// Per-replay-step virtual completion time of each event slot.
  std::vector<double> EventTime_;
  std::vector<char> EventSet_; ///< EventTime_ validity per slot
  /// Node counts at which a synchronization happened during capture;
  /// fusion never groups across these boundaries so a replay flush can
  /// never split a fused group.
  std::vector<std::size_t> SyncMarks_;
};

/// RAII step driver: installs the session as the calling thread's capture
/// sink for the duration of one step and advances the session state
/// machine (capture -> arm -> replay / invalidate). Inactive (a no-op)
/// when the subsystem is disabled or the session is dead.
class StepScope
{
public:
  explicit StepScope(Session &session);
  ~StepScope();
  StepScope(const StepScope &) = delete;
  StepScope &operator=(const StepScope &) = delete;

  /// True when the scope installed the sink (capture or replay underway).
  bool Active() const noexcept { return this->Active_; }

private:
  Session *Session_ = nullptr;
  CaptureSink *Prev_ = nullptr;
  bool Active_ = false;
};

} // namespace graph
} // namespace vp

#endif
