#include "graphCapture.h"

#include "execEngine.h"
#include "vpChecker.h"
#include "vpMemory.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace vp
{
namespace graph
{

// ---------------------------------------------------------------------------
// configuration and stats
// ---------------------------------------------------------------------------
namespace
{

std::mutex &ConfigMutex()
{
  static std::mutex m;
  return m;
}

GraphConfig &ConfigStorage()
{
  static GraphConfig cfg;
  return cfg;
}

bool &ConfigInitialized()
{
  static bool init = false;
  return init;
}

/// Environment flag: unset -> dflt; "0"/"off"/"false"/"no" -> false;
/// anything else -> true.
bool EnvFlag(const char *name, bool dflt)
{
  const char *v = std::getenv(name);
  if (!v || !*v)
    return dflt;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
           std::strcmp(v, "OFF") == 0 || std::strcmp(v, "false") == 0 ||
           std::strcmp(v, "FALSE") == 0 || std::strcmp(v, "no") == 0);
}

struct AtomicStats
{
  std::atomic<std::uint64_t> Captures{0};
  std::atomic<std::uint64_t> CaptureAborts{0};
  std::atomic<std::uint64_t> Replays{0};
  std::atomic<std::uint64_t> Invalidations{0};
  std::atomic<std::uint64_t> NodesCaptured{0};
  std::atomic<std::uint64_t> LaunchesFused{0};
  std::atomic<std::uint64_t> Flushes{0};
  std::atomic<std::uint64_t> OpsAbsorbed{0};
};

AtomicStats &TheStats()
{
  static AtomicStats s;
  return s;
}

/// Mirror of the platform's (private) copy bandwidth selection so captured
/// copies carry the same classified cost the eager path would charge.
double ReplayCopyBandwidth(const CostModel &cost, CopyKind kind,
                           const AllocInfo &dst, const AllocInfo &src)
{
  double bw = cost.H2HBandwidth;
  switch (kind)
  {
    case CopyKind::HostToDevice: bw = cost.H2DBandwidth; break;
    case CopyKind::DeviceToHost: bw = cost.D2HBandwidth; break;
    case CopyKind::DeviceToDevice: bw = cost.D2DBandwidth; break;
    case CopyKind::OnDevice: bw = cost.D2DBandwidth; break;
    case CopyKind::HostToHost: bw = cost.H2HBandwidth; break;
  }
  const bool pinned = dst.Space == MemSpace::HostPinned ||
                      src.Space == MemSpace::HostPinned;
  if (pinned &&
      (kind == CopyKind::HostToDevice || kind == CopyKind::DeviceToHost))
    bw *= cost.PinnedBandwidthScale;
  return bw;
}

} // namespace

GraphConfig DefaultConfig()
{
  GraphConfig cfg;
  cfg.Enabled = EnvFlag("VP_GRAPH", cfg.Enabled);
  cfg.Fusion = EnvFlag("VP_GRAPH_FUSION", cfg.Fusion);
  if (const char *v = std::getenv("VP_GRAPH_MAX_NODES"))
  {
    const long n = std::atol(v);
    if (n > 0)
      cfg.MaxNodes = static_cast<std::size_t>(n);
  }
  return cfg;
}

void Configure(const GraphConfig &cfg)
{
  std::lock_guard<std::mutex> lock(ConfigMutex());
  ConfigStorage() = cfg;
  ConfigInitialized() = true;
}

GraphConfig GetConfig()
{
  std::lock_guard<std::mutex> lock(ConfigMutex());
  if (!ConfigInitialized())
  {
    ConfigStorage() = DefaultConfig();
    ConfigInitialized() = true;
  }
  return ConfigStorage();
}

bool Enabled()
{
  return GetConfig().Enabled;
}

GraphStats Stats()
{
  const AtomicStats &a = TheStats();
  GraphStats s;
  s.Captures = a.Captures.load();
  s.CaptureAborts = a.CaptureAborts.load();
  s.Replays = a.Replays.load();
  s.Invalidations = a.Invalidations.load();
  s.NodesCaptured = a.NodesCaptured.load();
  s.LaunchesFused = a.LaunchesFused.load();
  s.Flushes = a.Flushes.load();
  s.OpsAbsorbed = a.OpsAbsorbed.load();
  return s;
}

void ResetStats()
{
  AtomicStats &a = TheStats();
  a.Captures = 0;
  a.CaptureAborts = 0;
  a.Replays = 0;
  a.Invalidations = 0;
  a.NodesCaptured = 0;
  a.LaunchesFused = 0;
  a.Flushes = 0;
  a.OpsAbsorbed = 0;
}

// ---------------------------------------------------------------------------
// Session — state machine
// ---------------------------------------------------------------------------

bool Session::Armed() const
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  return this->State_ == State::Armed;
}

void Session::Drop()
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  if (this->State_ != State::Armed)
    return;
  this->State_ = State::Idle;
  this->Nodes_.clear();
  this->Streams_.clear();
  this->StreamIxOf_.clear();
  this->SyncMarks_.clear();
  TheStats().Invalidations++;
}

bool Session::Dead() const
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  return this->Dead_;
}

void Session::BeginStep()
{
  this->Cursor_ = 0;
  this->PendingBegin_ = 0;
  this->EventIx_.clear();
  switch (this->State_)
  {
    case State::Idle:
      this->Nodes_.clear();
      this->Streams_.clear();
      this->StreamIxOf_.clear();
      this->SyncMarks_.clear();
      this->NextEventIx_ = 0;
      this->State_ = State::Capturing;
      break;
    case State::Armed:
      for (StreamSlot &slot : this->Streams_)
        slot.Bound = Stream();
      this->EventTime_.assign(this->NumEvents_, 0.0);
      this->EventSet_.assign(this->NumEvents_, 0);
      this->State_ = State::Replaying;
      break;
    default:
      // Capturing/Replaying/Bypass at step begin means the previous scope
      // was abandoned — drop everything and recapture cleanly.
      this->Nodes_.clear();
      this->Streams_.clear();
      this->StreamIxOf_.clear();
      this->SyncMarks_.clear();
      this->NextEventIx_ = 0;
      this->State_ = State::Capturing;
      break;
  }
}

void Session::EndStep()
{
  switch (this->State_)
  {
    case State::Capturing:
      if (this->Nodes_.empty())
      {
        // a step with no device work has nothing to replay — and a
        // pattern that produced none once will likely produce none again
        this->Dead_ = true;
        this->State_ = State::Idle;
        break;
      }
      if (GetConfig().Fusion)
        this->FusePass();
      this->NumEvents_ = this->NextEventIx_;
      this->StreamIxOf_.clear();
      for (StreamSlot &slot : this->Streams_)
        slot.Bound = Stream(); // release the step's stream handles
      this->State_ = State::Armed;
      TheStats().Captures++;
      TheStats().NodesCaptured += this->Nodes_.size();
      break;

    case State::Replaying:
      this->Flush();
      if (this->Cursor_ != this->Nodes_.size())
      {
        // the step ended with recorded work unmatched: the DAG shrank
        this->State_ = State::Idle;
        this->Nodes_.clear();
        this->Streams_.clear();
        this->SyncMarks_.clear();
        TheStats().Invalidations++;
      }
      else
      {
        for (StreamSlot &slot : this->Streams_)
          slot.Bound = Stream();
        this->State_ = State::Armed;
        TheStats().Replays++;
      }
      break;

    case State::Bypass:
      // mismatch (recapture next step) or a dead session
      this->State_ = State::Idle;
      this->Nodes_.clear();
      this->Streams_.clear();
      this->StreamIxOf_.clear();
      this->SyncMarks_.clear();
      break;

    default:
      this->State_ = State::Idle;
      break;
  }
}

void Session::AbortCapture()
{
  this->Dead_ = true;
  this->State_ = State::Bypass;
  this->Nodes_.clear();
  this->Streams_.clear();
  this->StreamIxOf_.clear();
  this->SyncMarks_.clear();
  TheStats().CaptureAborts++;
}

int Session::CaptureStreamIx(const Stream &stream)
{
  const StreamState *s = stream.Get();
  auto it = this->StreamIxOf_.find(s);
  if (it != this->StreamIxOf_.end())
    return it->second;
  StreamSlot slot;
  slot.Node = s->Node;
  slot.Device = s->Device;
  slot.Bound = stream;
  const int ix = static_cast<int>(this->Streams_.size());
  this->Streams_.push_back(slot);
  this->StreamIxOf_.emplace(s, ix);
  return ix;
}

bool Session::BindStreamIx(const Stream &stream, int wantIx)
{
  StreamSlot &slot = this->Streams_[wantIx];
  if (slot.Bound)
    return slot.Bound == stream;
  const StreamState *s = stream.Get();
  if (s->Node != slot.Node || s->Device != slot.Device)
    return false;
  // one concrete stream must not stand in for two recorded roles — the
  // recorded inter-stream concurrency would be lost
  for (const StreamSlot &other : this->Streams_)
    if (other.Bound == stream)
      return false;
  slot.Bound = stream;
  return true;
}

// ---------------------------------------------------------------------------
// Session — capture/replay handlers (called with the step lock held, on
// the step's thread, via the thread-local CaptureSink)
// ---------------------------------------------------------------------------

bool Session::OnKernel(const Stream &stream, const KernelDesc &desc,
                       const KernelFn &fn, bool synchronous)
{
  switch (this->State_)
  {
    case State::Capturing:
    {
      // zero-N launches never reach the device engine on the eager path
      // either; they stay uncaptured in both phases
      if (!desc.N)
        return false;
      if (this->Nodes_.size() >= GetConfig().MaxNodes)
      {
        this->AbortCapture();
        return false;
      }
      const CostModel &cost = Platform::Get().Config().Cost;
      GraphNode n;
      n.Kind = NodeKind::Kernel;
      n.StreamIx = this->CaptureStreamIx(stream);
      n.Desc = desc;
      n.Fn = fn;
      n.Synchronous = synchronous;
      n.WorkSeconds = cost.KernelSeconds(desc.N, desc.OpsPerElement,
                                         /*onDevice=*/true,
                                         desc.AtomicFraction) -
                      cost.KernelLaunchLatency;
      this->Nodes_.push_back(std::move(n));
      return false; // run eagerly too: the checker validates this step
    }

    case State::Replaying:
    {
      if (!desc.N)
        return false;
      if (this->Cursor_ >= this->Nodes_.size())
      {
        this->Invalidate();
        return false;
      }
      GraphNode &n = this->Nodes_[this->Cursor_];
      const char *a = n.Desc.Name ? n.Desc.Name : "";
      const char *b = desc.Name ? desc.Name : "";
      if (n.Kind != NodeKind::Kernel ||
          n.Desc.OpsPerElement != desc.OpsPerElement ||
          n.Desc.AtomicFraction != desc.AtomicFraction ||
          n.Desc.Shardable != desc.Shardable ||
          n.Synchronous != synchronous || std::strcmp(a, b) != 0 ||
          !this->BindStreamIx(stream, n.StreamIx))
      {
        this->Invalidate();
        return false;
      }
      n.Fn = fn; // rebind the body to this step's buffers
      if (n.Desc.N != desc.N)
      {
        // same DAG, different element count (bodies migrated between
        // ranks, a filter passed fewer rows): the launch dims rebind like
        // cudaGraphExecKernelNodeSetParams and the cost is repriced
        const CostModel &cost = Platform::Get().Config().Cost;
        n.Desc.N = desc.N;
        n.WorkSeconds = cost.KernelSeconds(desc.N, desc.OpsPerElement,
                                           /*onDevice=*/true,
                                           desc.AtomicFraction) -
                        cost.KernelLaunchLatency;
      }
      this->Cursor_++;
      TheStats().OpsAbsorbed++;
      if (n.Synchronous)
      {
        // eager semantics: the calling thread waits the kernel out
        this->Flush();
        ThisClock().AdvanceTo(
          this->Streams_[n.StreamIx].Bound.Get()->Completion());
      }
      return true;
    }

    default:
      return false; // Idle/Armed/Bypass: eager
  }
}

bool Session::OnCopy(const Stream &stream, void *dst, const void *src,
                     std::size_t bytes)
{
  Platform &plat = Platform::Get();
  const CostModel &cost = plat.Config().Cost;

  auto classify = [&](GraphNode &n)
  {
    AllocInfo di, si;
    if (!plat.Query(n.Dst, di))
      di = AllocInfo{};
    if (!plat.Query(n.Src, si))
      si = AllocInfo{};
    const CopyKind kind = ClassifyCopy(di, si);
    n.CopyKindIx = static_cast<int>(kind);
    n.CopySeconds =
      cost.CopySeconds(n.Bytes, ReplayCopyBandwidth(cost, kind, di, si));
  };

  switch (this->State_)
  {
    case State::Capturing:
    {
      if (this->Nodes_.size() >= GetConfig().MaxNodes)
      {
        this->AbortCapture();
        return false;
      }
      GraphNode n;
      n.Kind = NodeKind::Copy;
      n.StreamIx = this->CaptureStreamIx(stream);
      n.Dst = dst;
      n.Src = src;
      n.Bytes = bytes;
      classify(n);
      this->Nodes_.push_back(std::move(n));
      return false;
    }

    case State::Replaying:
    {
      if (this->Cursor_ >= this->Nodes_.size())
      {
        this->Invalidate();
        return false;
      }
      GraphNode &n = this->Nodes_[this->Cursor_];
      if (n.Kind != NodeKind::Copy ||
          !this->BindStreamIx(stream, n.StreamIx))
      {
        this->Invalidate();
        return false;
      }
      n.Dst = dst;
      n.Src = src;
      n.Bytes = bytes; // payload size may track the element count
      classify(n);     // fresh buffers may change pinnedness / kind
      this->Cursor_++;
      TheStats().OpsAbsorbed++;
      return true;
    }

    default:
      return false;
  }
}

bool Session::OnEventRecord(const Stream &stream, std::uint64_t captureId)
{
  switch (this->State_)
  {
    case State::Capturing:
    {
      if (this->Nodes_.size() >= GetConfig().MaxNodes)
      {
        this->AbortCapture();
        return false;
      }
      GraphNode n;
      n.Kind = NodeKind::EventRecord;
      n.StreamIx = this->CaptureStreamIx(stream);
      n.EventIx = this->NextEventIx_++;
      this->EventIx_.emplace(captureId, n.EventIx);
      this->Nodes_.push_back(std::move(n));
      return false; // the eager record also runs: checker sees the edge
    }

    case State::Replaying:
    {
      if (this->Cursor_ >= this->Nodes_.size())
      {
        this->Invalidate();
        return false;
      }
      GraphNode &n = this->Nodes_[this->Cursor_];
      if (n.Kind != NodeKind::EventRecord ||
          !this->BindStreamIx(stream, n.StreamIx))
      {
        this->Invalidate();
        return false;
      }
      this->EventIx_.emplace(captureId, n.EventIx);
      this->Cursor_++;
      TheStats().OpsAbsorbed++;
      return true;
    }

    default:
      return false;
  }
}

bool Session::OnStreamWaitEvent(const Stream &stream, std::uint64_t captureId)
{
  auto it = this->EventIx_.find(captureId);
  switch (this->State_)
  {
    case State::Capturing:
    {
      if (it == this->EventIx_.end())
      {
        // the event was recorded outside this step (a cross-step edge):
        // the pattern is not a self-contained step graph
        this->AbortCapture();
        return false;
      }
      if (this->Nodes_.size() >= GetConfig().MaxNodes)
      {
        this->AbortCapture();
        return false;
      }
      GraphNode n;
      n.Kind = NodeKind::EventWait;
      n.StreamIx = this->CaptureStreamIx(stream);
      n.EventIx = it->second;
      this->Nodes_.push_back(std::move(n));
      return false;
    }

    case State::Replaying:
    {
      if (it == this->EventIx_.end() || this->Cursor_ >= this->Nodes_.size())
      {
        this->Invalidate();
        return false;
      }
      GraphNode &n = this->Nodes_[this->Cursor_];
      if (n.Kind != NodeKind::EventWait || n.EventIx != it->second ||
          !this->BindStreamIx(stream, n.StreamIx))
      {
        this->Invalidate();
        return false;
      }
      this->Cursor_++;
      TheStats().OpsAbsorbed++;
      return true;
    }

    case State::Bypass:
    {
      // an event absorbed before a mid-step invalidation has no eager
      // time/fence state — realize its ordering edge from the replayed
      // timeline (the prefix flush settled it)
      if (it == this->EventIx_.end())
        return false;
      const int ix = it->second;
      if (ix < 0 || ix >= static_cast<int>(this->EventSet_.size()) ||
          !this->EventSet_[ix])
        return false;
      StreamState *s = stream.Get();
      {
        std::lock_guard<std::mutex> lock(s->Mutex);
        s->Last = std::max(s->Last, this->EventTime_[ix]);
      }
      return true;
    }

    default:
      return false;
  }
}

void Session::BeforeStreamSync(const Stream &)
{
  if (this->State_ == State::Capturing)
  {
    this->SyncMarks_.push_back(this->Nodes_.size());
    return;
  }
  if (this->State_ == State::Replaying)
    this->Flush();
}

void Session::BeforeDeviceSync(int, DeviceId)
{
  if (this->State_ == State::Capturing)
  {
    this->SyncMarks_.push_back(this->Nodes_.size());
    return;
  }
  if (this->State_ == State::Replaying)
    this->Flush();
}

void Session::BeforeEventSync(std::uint64_t captureId)
{
  if (this->State_ == State::Capturing)
  {
    this->SyncMarks_.push_back(this->Nodes_.size());
    return;
  }
  if (this->State_ != State::Replaying && this->State_ != State::Bypass)
    return;
  auto it = this->EventIx_.find(captureId);
  if (it == this->EventIx_.end())
    return;
  if (this->State_ == State::Replaying)
    this->Flush();
  const int ix = it->second;
  if (ix >= 0 && ix < static_cast<int>(this->EventSet_.size()) &&
      this->EventSet_[ix])
    ThisClock().AdvanceTo(this->EventTime_[ix]);
}

// ---------------------------------------------------------------------------
// Session — replay flush and invalidation
// ---------------------------------------------------------------------------

void Session::Flush()
{
  if (this->PendingBegin_ >= this->Cursor_)
    return;

  Platform &plat = Platform::Get();
  const CostModel &cost = plat.Config().Cost;
  const bool execute = plat.Config().ExecuteKernels;

  // the whole pending prefix submits under one amortized charge — this is
  // the cudaGraphLaunch analogue replacing per-call submit overhead
  ThisClock().Advance(cost.GraphReplayLatency);
  TheStats().Flushes++;
  const double now = ThisClock().Now();

  const std::size_t nStreams = this->Streams_.size();
  std::vector<char> touched(nStreams, 0);
  std::vector<double> sLast(nStreams, 0.0);

  // first touch per stream: a submit edge for the checker, then settle
  // any real-execution frontier so inline bodies below see final data,
  // then pick up the stream's current virtual completion
  auto touch = [&](int ix) -> StreamState *
  {
    StreamState *s = this->Streams_[ix].Bound.Get();
    if (!touched[ix])
    {
      touched[ix] = 1;
      check::OnSubmit(s);
      std::vector<std::shared_ptr<exec::Fence>> fences;
      {
        std::lock_guard<std::mutex> lock(s->Mutex);
        fences = s->RealFrontier;
      }
      for (const auto &f : fences)
        if (f)
          f->Wait();
      sLast[ix] = s->Completion();
    }
    return s;
  };

  std::size_t i = this->PendingBegin_;
  while (i < this->Cursor_)
  {
    GraphNode &n = this->Nodes_[i];
    switch (n.Kind)
    {
      case NodeKind::Kernel:
      {
        StreamState *s = touch(n.StreamIx);
        Device &dev = plat.GetDevice(s->Node, s->Device);
        // a fused group charges one launch latency over the summed work
        // and runs its members' bodies back to back; a group split by an
        // invalidation degrades to the matched prefix
        const std::size_t g = n.GroupSize >= 1 ? n.GroupSize : 1;
        const std::size_t gEnd = std::min(i + g, this->Cursor_);
        double work = 0.0;
        for (std::size_t j = i; j < gEnd; ++j)
          work += this->Nodes_[j].WorkSeconds;
        const double dur = cost.KernelLaunchLatency + work;
        const double complete =
          dev.Engine.Claim(std::max(now, sLast[n.StreamIx]), dur);
        sLast[n.StreamIx] = complete;
        plat.Stats().KernelsLaunched++;
        if (execute)
        {
          exec::NoteInlineTask();
          for (std::size_t j = i; j < gEnd; ++j)
          {
            const GraphNode &m = this->Nodes_[j];
            if (m.Fn && m.Desc.N)
              m.Fn(0, m.Desc.N);
          }
        }
        i = gEnd;
        continue;
      }

      case NodeKind::Copy:
      {
        StreamState *s = touch(n.StreamIx);
        Device &dev = plat.GetDevice(s->Node, s->Device);
        const double complete = dev.CopyEngine.Claim(
          std::max(now, sLast[n.StreamIx]), n.CopySeconds);
        sLast[n.StreamIx] = complete;
        plat.Stats().CopyCount[n.CopyKindIx]++;
        plat.Stats().CopyBytes[n.CopyKindIx] += n.Bytes;
        if (execute)
          std::memmove(n.Dst, n.Src, n.Bytes);
        break;
      }

      case NodeKind::EventRecord:
        touch(n.StreamIx);
        this->EventTime_[n.EventIx] = sLast[n.StreamIx];
        this->EventSet_[n.EventIx] = 1;
        break;

      case NodeKind::EventWait:
        touch(n.StreamIx);
        if (this->EventSet_[n.EventIx])
          sLast[n.StreamIx] =
            std::max(sLast[n.StreamIx], this->EventTime_[n.EventIx]);
        break;
    }
    ++i;
  }

  // publish the new stream completions and give the checker one summary
  // happens-before edge per participating stream (the validate-once
  // contract: per-op hooks were paid during the capture step)
  for (std::size_t ix = 0; ix < nStreams; ++ix)
    if (touched[ix])
    {
      StreamState *s = this->Streams_[ix].Bound.Get();
      s->Extend(sLast[ix]);
      check::OnStreamSync(s);
    }

  this->PendingBegin_ = this->Cursor_;
}

void Session::Invalidate()
{
  if (std::getenv("VP_GRAPH_DEBUG"))
  {
    const GraphNode *n = this->Cursor_ < this->Nodes_.size()
                           ? &this->Nodes_[this->Cursor_] : nullptr;
    std::fprintf(stderr,
                 "graph invalidate: cursor=%zu/%zu expected kind=%d name=%s "
                 "N=%zu bytes=%zu\n",
                 this->Cursor_, this->Nodes_.size(),
                 n ? static_cast<int>(n->Kind) : -1,
                 n && n->Desc.Name ? n->Desc.Name : "",
                 n ? n->Desc.N : 0, n ? n->Bytes : 0);
  }
  this->Flush();
  this->State_ = State::Bypass;
  TheStats().Invalidations++;
}

// ---------------------------------------------------------------------------
// Session — fusion
// ---------------------------------------------------------------------------

void Session::FusePass()
{
  const std::size_t n = this->Nodes_.size();
  std::size_t i = 0;
  while (i < n)
  {
    GraphNode &head = this->Nodes_[i];
    if (head.Kind != NodeKind::Kernel || !head.Desc.FuseKey ||
        head.Synchronous)
    {
      ++i;
      continue;
    }
    // extend the run over compatible launches: same stream, same non-null
    // key (the caller's disjoint-outputs assertion), same N and sharding,
    // asynchronous, and no synchronization point recorded between them
    std::size_t j = i + 1;
    while (j < n)
    {
      const GraphNode &m = this->Nodes_[j];
      if (m.Kind != NodeKind::Kernel || m.StreamIx != head.StreamIx ||
          m.Desc.FuseKey != head.Desc.FuseKey || m.Desc.N != head.Desc.N ||
          m.Desc.Shardable != head.Desc.Shardable || m.Synchronous)
        break;
      const bool crossesSync =
        std::upper_bound(this->SyncMarks_.begin(), this->SyncMarks_.end(),
                         i) !=
        std::upper_bound(this->SyncMarks_.begin(), this->SyncMarks_.end(),
                         j);
      if (crossesSync)
        break;
      ++j;
    }
    head.GroupSize = static_cast<int>(j - i);
    for (std::size_t k = i + 1; k < j; ++k)
      this->Nodes_[k].GroupSize = 0;
    if (j - i > 1)
      TheStats().LaunchesFused += (j - i) - 1;
    i = j;
  }
}

// ---------------------------------------------------------------------------
// StepScope
// ---------------------------------------------------------------------------

StepScope::StepScope(Session &session)
{
  if (!Enabled())
    return;
  session.Mutex_.lock();
  if (session.Dead_)
  {
    session.Mutex_.unlock();
    return;
  }
  this->Session_ = &session;
  this->Active_ = true;
  session.BeginStep();
  this->Prev_ = SetCaptureSink(&session);
}

StepScope::~StepScope()
{
  if (!this->Active_)
    return;
  SetCaptureSink(this->Prev_);
  this->Session_->EndStep();
  this->Session_->Mutex_.unlock();
}

} // namespace graph
} // namespace vp
