#ifndef campaign_h
#define campaign_h

/// @file campaign.h
/// The paper's evaluation campaign (Section 4.3): Newton++ coupled through
/// SENSEI to the data binning analysis, run over the eight cases of
/// Table 1 — four in situ placements ({all on host, on the same device,
/// one dedicated device, two dedicated devices}) crossed with two
/// execution methods ({lockstep, asynchronous}).
///
/// Per the paper: one simulation rank per simulation GPU; the host and
/// same-device placements use 4 ranks/node, the one-dedicated placement 3
/// ranks/node (GPU 3 reserved for in situ), the two-dedicated placement 2
/// ranks/node (GPUs 2,3 reserved, paired per rank); in situ runs at every
/// iteration; the data binning operator is applied to 10 variables over 9
/// coordinate systems (90 binning operations), each coordinate system in
/// its own operator instance orchestrated through SENSEI's XML
/// configuration; I/O and repartitioning are disabled.
///
/// The paper ran 128 Perlmutter nodes / 512 GPUs with 24M bodies. The
/// default here simulates fewer virtual nodes with a reduced body count so
/// kernels really execute; paper-scale runs (full per-rank body counts,
/// timing-only kernels) are available through CampaignConfig.

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace sxml
{
class Element;
}

namespace campaign
{

/// The four in situ placements of Table 1.
enum class Placement : int
{
  Host = 0,     ///< in situ on the host CPU
  SameDevice,   ///< in situ on the device where the data is generated
  OneDedicated, ///< one GPU per node reserved for in situ
  TwoDedicated  ///< per rank: one sim GPU + one paired in situ GPU
};

/// Human readable placement name (matches the paper's terminology).
const char *PlacementName(Placement p);

/// Ranks per node for a placement (4, 4, 3, 2 — Table 1).
int RanksPerNode(Placement p);

/// Devices the simulation may use for a placement (4, 4, 3, 2).
int SimDevices(Placement p);

/// Campaign-wide knobs. As in the paper, the *global* problem size is
/// fixed across placements (the body count scales with nodes, not ranks):
/// dedicated-device placements run fewer, larger ranks.
struct CampaignConfig
{
  int Nodes = 2;                  ///< virtual nodes (paper: 128)
  std::size_t BodiesPerNode = 30000; ///< paper: 24M/128 = 187500
  long Steps = 5;                 ///< in situ at every step
  long Resolution = 128;          ///< bins per axis (paper: 256)
  int CoordSystems = 9;           ///< binning operator instances
  int VariablesPerSystem = 10;    ///< reductions per instance
  bool TimingOnly = true;         ///< skip kernel bodies (timing campaign)
  unsigned Seed = 42;

  /// Run ranks under minimpi's deterministic cooperative scheduler so
  /// virtual timings are bit-reproducible (see minimpi::LaunchOptions).
  /// The auto-tuner forces this on for candidate evaluations; benches
  /// keep the default free-running threads.
  bool Lockstep = false;

  // adaptive scheduler controls, emitted as a <sched> element when any is
  // set: placement policy ("static", "least-loaded", "cost-model"; empty
  // keeps the built-in static default), bounded-pipeline depth (-1 keeps
  // the default of 1; 0 = unbounded), and full-queue backpressure
  // ("block", "drop-oldest", "coalesce"; empty keeps "block")
  std::string SchedPolicy;
  long QueueDepth = -1;
  std::string Backpressure;

  // execution-engine controls, emitted as an <exec> element when ExecMode
  // is set: "serial" (bit-exact inline bodies) or "threads" (per-device
  // workers + sharded host regions). Empty keeps whatever is active —
  // the VP_EXEC environment default — so deterministic campaigns stay
  // serial. ExecThreads 0 = auto pool width; ExecShardGrain 0 keeps the
  // engine default.
  std::string ExecMode;
  int ExecThreads = 0;
  std::size_t ExecShardGrain = 0;

  // per-case configuration injection: when set, the built <sensei>
  // document is passed through this mutator before it is serialized and
  // handed to ConfigurableAnalysis. The campaign auto-tuner (src/tune)
  // uses it to overlay candidate <pool>/<sched>/<compress>/<exec>/<graph>
  // elements and per-analysis override attributes onto every case of a
  // run without the campaign knowing about the tuner's knob space.
  std::function<void(sxml::Element &)> ConfigMutator;
};

/// A paper-shape configuration: per-node body count and grid resolution at
/// the paper's values (187500 bodies/node, 256^2 grids, 90 binning
/// operations per step), timing-only kernels, fewer virtual nodes (node
/// count beyond a few only deepens collectives).
CampaignConfig PaperScaleConfig();

/// A small real-execution configuration (kernels actually run): used to
/// validate that the campaign pipeline computes real results.
CampaignConfig RealExecutionConfig();

/// One case of Table 1.
struct CaseConfig
{
  Placement Place = Placement::SameDevice;
  bool Asynchronous = false;
};

/// The measurements Figures 2 and 3 plot.
struct CaseResult
{
  Placement Place = Placement::SameDevice;
  bool Asynchronous = false;
  int Ranks = 0;
  int RanksPerNode = 0;
  double TotalSeconds = 0.0;      ///< Figure 2: total run time
  double MeanSolverSeconds = 0.0; ///< Figure 3: avg solver time / iter
  double MeanInSituSeconds = 0.0; ///< Figure 3: avg (apparent) in situ / iter
};

/// The SENSEI configuration for a case as a document tree: CoordSystems
/// data_binning operator instances, each reducing VariablesPerSystem
/// variables, with the placement and execution-method attributes set per
/// the case. `g.ConfigMutator`, when set, has already been applied.
std::unique_ptr<sxml::Element> BuildDoc(const CaseConfig &c,
                                        const CampaignConfig &g);

/// BuildDoc serialized to XML text (what RunCase feeds the analysis).
std::string BuildXml(const CaseConfig &c, const CampaignConfig &g);

/// Run one case: configures the platform (Nodes x 4 GPUs), launches the
/// rank-parallel coupled run, and returns the virtual-time measurements.
CaseResult RunCase(const CaseConfig &c, const CampaignConfig &g);

/// All eight cases of Table 1 in the paper's order (placements grouped,
/// lockstep before asynchronous).
std::vector<CaseConfig> AllCases();

} // namespace campaign

#endif
