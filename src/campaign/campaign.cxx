#include "campaign.h"

#include "execEngine.h"
#include "graphCapture.h"
#include "minimpi.h"
#include "newtonDriver.h"
#include "schedPipeline.h"
#include "senseiConfigurableAnalysis.h"
#include "sxml.h"
#include "vpPlatform.h"

#include <algorithm>
#include <array>
#include <sstream>
#include <stdexcept>

namespace campaign
{

const char *PlacementName(Placement p)
{
  switch (p)
  {
    case Placement::Host: return "all on host";
    case Placement::SameDevice: return "on same device";
    case Placement::OneDedicated: return "1 dedicated device";
    case Placement::TwoDedicated: return "2 dedicated devices";
  }
  return "unknown";
}

int RanksPerNode(Placement p)
{
  switch (p)
  {
    case Placement::Host:
    case Placement::SameDevice:
      return 4;
    case Placement::OneDedicated:
      return 3;
    case Placement::TwoDedicated:
      return 2;
  }
  return 4;
}

int SimDevices(Placement p)
{
  switch (p)
  {
    case Placement::Host:
    case Placement::SameDevice:
      return 4;
    case Placement::OneDedicated:
      return 3;
    case Placement::TwoDedicated:
      return 2;
  }
  return 4;
}

CampaignConfig PaperScaleConfig()
{
  CampaignConfig g;
  g.Nodes = 4;
  g.BodiesPerNode = 187500; // 24M / 128
  g.Steps = 10;
  g.Resolution = 256;
  g.TimingOnly = true;
  g.ExecMode = "threads"; // virtual timings are mode independent
  return g;
}

CampaignConfig RealExecutionConfig()
{
  CampaignConfig g;
  g.Nodes = 1;
  g.BodiesPerNode = 512;
  g.Steps = 3;
  g.Resolution = 32;
  g.CoordSystems = 2;
  g.VariablesPerSystem = 3;
  g.TimingOnly = false;
  g.ExecMode = "threads"; // kernels really run: exercise the engine
  return g;
}

std::vector<CaseConfig> AllCases()
{
  std::vector<CaseConfig> cases;
  for (Placement p : {Placement::Host, Placement::SameDevice,
                      Placement::OneDedicated, Placement::TwoDedicated})
    for (bool async : {false, true})
      cases.push_back(CaseConfig{p, async});
  // the paper groups by execution method first (Table 1): reorder so all
  // lockstep rows precede asynchronous rows
  std::stable_sort(cases.begin(), cases.end(),
                   [](const CaseConfig &a, const CaseConfig &b)
                   { return a.Asynchronous < b.Asynchronous; });
  return cases;
}

std::unique_ptr<sxml::Element> BuildDoc(const CaseConfig &c,
                                        const CampaignConfig &g)
{
  // the nine coordinate systems of the evaluation: spatial planes,
  // velocity planes, and position-velocity phase planes
  static const std::array<std::array<const char *, 2>, 9> systems = {{
    {"x", "y"},
    {"x", "z"},
    {"y", "z"},
    {"vx", "vy"},
    {"vx", "vz"},
    {"vy", "vz"},
    {"x", "vx"},
    {"y", "vy"},
    {"z", "vz"},
  }};

  // the ten variables binned in every coordinate system
  static const std::array<const char *, 10> variables = {
    "x", "y", "z", "vx", "vy", "vz", "m", "speed", "ke", "r"};

  std::string device = "auto";
  int devicesToUse = 0;
  int deviceStart = 0;
  switch (c.Place)
  {
    case Placement::Host:
      device = "host";
      break;
    case Placement::SameDevice:
      device = "auto"; // Eq. 1 defaults: d = r mod n_a = the sim device
      break;
    case Placement::OneDedicated:
      devicesToUse = 1;
      deviceStart = 3;
      break;
    case Placement::TwoDedicated:
      devicesToUse = 2;
      deviceStart = 2;
      break;
  }

  const int nsys =
    std::min<int>(g.CoordSystems, static_cast<int>(systems.size()));
  const int nvar =
    std::min<int>(g.VariablesPerSystem, static_cast<int>(variables.size()));

  auto root = std::make_unique<sxml::Element>();
  root->SetName("sensei");

  if (!g.SchedPolicy.empty() || g.QueueDepth >= 0 || !g.Backpressure.empty())
  {
    sxml::Element *se = root->AddChild("sched");
    if (!g.SchedPolicy.empty())
      se->SetAttribute("policy", g.SchedPolicy);
    if (g.QueueDepth >= 0)
      se->SetAttributeInt("queue_depth", g.QueueDepth);
    if (!g.Backpressure.empty())
      se->SetAttribute("backpressure", g.Backpressure);
  }
  if (!g.ExecMode.empty() || g.ExecThreads > 0 || g.ExecShardGrain > 0)
  {
    sxml::Element *xe = root->AddChild("exec");
    if (!g.ExecMode.empty())
      xe->SetAttribute("mode", g.ExecMode);
    if (g.ExecThreads > 0)
      xe->SetAttributeInt("threads", g.ExecThreads);
    if (g.ExecShardGrain > 0)
      xe->SetAttributeInt("shard_grain",
                          static_cast<long long>(g.ExecShardGrain));
  }

  for (int s = 0; s < nsys; ++s)
  {
    sxml::Element *el = root->AddChild("analysis");
    el->SetAttribute("type", "data_binning");
    el->SetAttribute("mesh", "bodies");
    el->SetAttribute("axes",
                     std::string(systems[static_cast<std::size_t>(s)][0]) +
                       ',' + systems[static_cast<std::size_t>(s)][1]);
    el->SetAttributeInt("resolution", g.Resolution);
    std::string ops;
    std::string values;
    for (int v = 0; v < nvar; ++v)
    {
      ops += v ? ",sum" : "sum";
      values += (v ? "," : "") + std::string(
        variables[static_cast<std::size_t>(v)]);
    }
    el->SetAttribute("ops", ops);
    el->SetAttribute("values", values);
    el->SetAttribute("device", device);
    if (devicesToUse > 0)
    {
      el->SetAttributeInt("devices_to_use", devicesToUse);
      el->SetAttributeInt("device_start", deviceStart);
    }
    el->SetAttributeBool("async", c.Asynchronous);
  }

  if (g.ConfigMutator)
    g.ConfigMutator(*root);
  return root;
}

std::string BuildXml(const CaseConfig &c, const CampaignConfig &g)
{
  return sxml::Serialize(*BuildDoc(c, g));
}

CaseResult RunCase(const CaseConfig &c, const CampaignConfig &g)
{
  const int rpn = RanksPerNode(c.Place);
  const int ranks = rpn * g.Nodes;

  vp::PlatformConfig plat;
  plat.NumNodes = g.Nodes;
  plat.DevicesPerNode = 4;   // a Perlmutter GPU node
  plat.HostCoresPerNode = 64;
  plat.ExecuteKernels = !g.TimingOnly;
  vp::Platform::Initialize(plat);

  // scheduler configuration is process-wide and sticky; start every case
  // from the defaults so a <sched> element (or a prior caller's
  // sched::Configure) cannot leak into the next case, and zero the
  // pipeline counters so per-case exports are self-contained
  sched::Configure(sched::SchedConfig());
  sched::ResetAggregateStats();

  // likewise the execution engine: start from the environment's default
  // (serial unless VP_EXEC says otherwise) so an <exec> element from a
  // prior case cannot leak into this one, and zero its counters
  vp::exec::Configure(vp::exec::DefaultConfig());
  vp::exec::ResetStats();

  // and captured step-graph execution: re-read the environment (VP_GRAPH)
  // so a <graph> element or a prior Configure cannot leak across cases
  vp::graph::Configure(vp::graph::DefaultConfig());
  vp::graph::ResetStats();

  newton::Config sim;
  sim.TotalBodies = g.BodiesPerNode * static_cast<std::size_t>(g.Nodes);
  sim.Seed = g.Seed;
  sim.CentralMass = 100.0;
  sim.Repartition = false; // disabled during the runs, as in the paper
  sim.SimDevices = SimDevices(c.Place);

  const std::string xml = BuildXml(c, g);
  const long steps = g.Steps;

  std::vector<double> totals(static_cast<std::size_t>(ranks), 0.0);
  std::vector<double> solver(static_cast<std::size_t>(ranks), 0.0);
  std::vector<double> insitu(static_cast<std::size_t>(ranks), 0.0);

  minimpi::LaunchOptions opts;
  opts.Ranks = ranks;
  opts.RanksPerNode = rpn;
  opts.Lockstep = g.Lockstep;

  minimpi::Run(opts,
               [&](minimpi::Communicator &comm)
               {
                 sensei::ConfigurableAnalysis *analysis =
                   sensei::ConfigurableAnalysis::New();
                 analysis->InitializeString(xml);

                 newton::Driver driver(&comm, sim, analysis);
                 analysis->UnRegister();

                 driver.Initialize();
                 const double total = driver.Run(steps);

                 const std::size_t r = static_cast<std::size_t>(comm.Rank());
                 totals[r] = total;
                 solver[r] = driver.MeanSolverSeconds();
                 insitu[r] = driver.MeanInSituSeconds();
               });

  CaseResult out;
  out.Place = c.Place;
  out.Asynchronous = c.Asynchronous;
  out.Ranks = ranks;
  out.RanksPerNode = rpn;
  out.TotalSeconds = *std::max_element(totals.begin(), totals.end());
  for (int r = 0; r < ranks; ++r)
  {
    out.MeanSolverSeconds += solver[static_cast<std::size_t>(r)];
    out.MeanInSituSeconds += insitu[static_cast<std::size_t>(r)];
  }
  out.MeanSolverSeconds /= ranks;
  out.MeanInSituSeconds /= ranks;
  return out;
}

} // namespace campaign
