#include "cmpCodec.h"

#include "layoutMapping.h"
#include "vpChecker.h"
#include "vpMemoryPool.h"
#include "vpPlatform.h"
#include "vpTypes.h"

#include <cmath>
#include <cstring>
#include <mutex>
#include <stdexcept>

namespace cmp
{

// --- names and sizes --------------------------------------------------------

std::size_t DTypeSize(DType t)
{
  switch (t)
  {
    case DType::U8:
      return 1;
    case DType::I32:
      return 4;
    case DType::I64:
      return 8;
    case DType::F32:
      return 4;
    case DType::F64:
      return 8;
  }
  throw std::invalid_argument("cmp::DTypeSize: unknown dtype");
}

const char *CodecName(CodecId id)
{
  switch (id)
  {
    case CodecId::None:
      return "none";
    case CodecId::ShuffleRLE:
      return "shuffle-rle";
    case CodecId::DeltaVarint:
      return "delta-varint";
    case CodecId::Quantize:
      return "quantize";
  }
  return "unknown";
}

CodecId CodecIdFromName(const std::string &name)
{
  if (name == "none" || name == "off" || name == "raw")
    return CodecId::None;
  if (name == "shuffle-rle" || name == "shuffle_rle" || name == "shuffle" ||
      name == "rle")
    return CodecId::ShuffleRLE;
  if (name == "delta-varint" || name == "delta_varint" || name == "delta")
    return CodecId::DeltaVarint;
  if (name == "quantize" || name == "quantizer")
    return CodecId::Quantize;
  throw std::invalid_argument("cmp: unknown codec '" + name + "'");
}

// --- process-wide configuration and stats -----------------------------------

namespace
{
std::mutex &StateMutex()
{
  static std::mutex m;
  return m;
}

Config &GlobalConfig()
{
  static Config cfg;
  return cfg;
}

CodecStats &GlobalStats()
{
  static CodecStats s;
  return s;
}

/// Relative host cost of one codec in units of a plain memcpy pass.
double CodecCostFactor(CodecId id)
{
  switch (id)
  {
    case CodecId::None:
      return 1.0;
    case CodecId::ShuffleRLE:
      return 2.0;
    case CodecId::DeltaVarint:
      return 1.5;
    case CodecId::Quantize:
      return 2.5;
  }
  return 1.0;
}
} // namespace

void Configure(const Config &cfg)
{
  if (cfg.Default.Codec == CodecId::Quantize && !(cfg.Default.ErrorBound > 0.0))
    throw std::invalid_argument(
      "cmp::Configure: a quantize default requires error_bound > 0");
  std::lock_guard<std::mutex> lock(StateMutex());
  GlobalConfig() = cfg;
}

Config GetConfig()
{
  std::lock_guard<std::mutex> lock(StateMutex());
  return GlobalConfig();
}

CodecStats &CodecStats::operator+=(const CodecStats &o)
{
  this->EncodedChunks += o.EncodedChunks;
  this->DecodedChunks += o.DecodedChunks;
  this->Fallbacks += o.Fallbacks;
  this->BytesRaw += o.BytesRaw;
  this->BytesEncoded += o.BytesEncoded;
  this->DecodedRawBytes += o.DecodedRawBytes;
  this->EncodeSeconds += o.EncodeSeconds;
  this->DecodeSeconds += o.DecodeSeconds;
  return *this;
}

CodecStats Stats()
{
  std::lock_guard<std::mutex> lock(StateMutex());
  return GlobalStats();
}

void ResetStats()
{
  std::lock_guard<std::mutex> lock(StateMutex());
  GlobalStats() = CodecStats();
}

std::uint64_t Fnv1a(const void *data, std::size_t bytes) noexcept
{
  const auto *p = static_cast<const std::uint8_t *>(data);
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < bytes; ++i)
  {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// --- negotiation -------------------------------------------------------------

Params Negotiate(const Params &requested, DType t)
{
  Params p = requested;
  if (p.Codec == CodecId::None)
    return p;
  switch (t)
  {
    case DType::I32:
    case DType::I64:
      if (p.Codec == CodecId::Quantize)
        p.Codec = CodecId::DeltaVarint;
      break;
    case DType::F32:
    case DType::F64:
      if (p.Codec == CodecId::DeltaVarint ||
          (p.Codec == CodecId::Quantize && !(p.ErrorBound > 0.0)))
        p.Codec = CodecId::ShuffleRLE;
      break;
    case DType::U8:
      p.Codec = CodecId::ShuffleRLE;
      break;
  }
  return p;
}

// --- pool-backed scratch -----------------------------------------------------

Scratch::Scratch(vp::Stream stream) : Stream_(std::move(stream))
{
}

Scratch::~Scratch()
{
  if (!this->Data_)
    return;
  try
  {
    vp::PoolManager::Get().Deallocate(this->Data_, this->Stream_);
  }
  catch (...)
  {
    // scratch release must not throw out of a destructor
  }
}

void Scratch::Reserve(std::size_t n)
{
  if (n <= this->Cap_)
    return;
  std::size_t cap = this->Cap_ ? this->Cap_ : 256;
  while (cap < n)
    cap *= 2;

  vp::PoolManager &pm = vp::PoolManager::Get();
  auto *grown = static_cast<std::uint8_t *>(pm.Allocate(
    vp::MemSpace::Host, vp::HostDevice, cap, vp::PmKind::None, this->Stream_));
  if (this->Size_)
    std::memcpy(grown, this->Data_, this->Size_);
  if (this->Data_)
    pm.Deallocate(this->Data_, this->Stream_);
  this->Data_ = grown;
  this->Cap_ = cap;
}

void Scratch::Resize(std::size_t n)
{
  this->Reserve(n);
  this->Size_ = n;
}

void Scratch::Append(const void *p, std::size_t n)
{
  if (!n)
    return;
  this->Reserve(this->Size_ + n);
  std::memcpy(this->Data_ + this->Size_, p, n);
  this->Size_ += n;
}

// --- shared coding primitives ------------------------------------------------

namespace
{
inline std::uint64_t ZigZagEncode(std::uint64_t u) noexcept
{
  return (u << 1) ^ static_cast<std::uint64_t>(static_cast<std::int64_t>(u) >>
                                               63);
}

inline std::uint64_t ZigZagDecode(std::uint64_t z) noexcept
{
  return (z >> 1) ^ (0u - (z & 1u));
}

void PutVarint(Scratch &dst, std::uint64_t v)
{
  while (v >= 0x80)
  {
    dst.PushByte(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  dst.PushByte(static_cast<std::uint8_t>(v));
}

std::uint64_t GetVarint(const std::uint8_t *p, std::size_t size,
                        std::size_t &pos)
{
  std::uint64_t v = 0;
  int shift = 0;
  for (;;)
  {
    if (pos >= size)
      throw std::runtime_error("cmp: truncated varint stream");
    const std::uint8_t b = p[pos++];
    if (shift == 63 && (b & 0xFEu))
      throw std::runtime_error("cmp: varint overflows 64 bits");
    v |= std::uint64_t(b & 0x7Fu) << shift;
    if (!(b & 0x80u))
      return v;
    shift += 7;
  }
}

/// PackBits-style RLE: control c in [0,127] = c+1 literal bytes follow;
/// c in [128,255] = the next byte repeated (c-128)+3 times.
void RleEncode(const std::uint8_t *src, std::size_t n, Scratch &dst)
{
  std::size_t i = 0;
  while (i < n)
  {
    std::size_t run = 1;
    while (i + run < n && run < 130 && src[i + run] == src[i])
      ++run;
    if (run >= 3)
    {
      dst.PushByte(static_cast<std::uint8_t>(0x80u | (run - 3)));
      dst.PushByte(src[i]);
      i += run;
      continue;
    }
    std::size_t j = i;
    while (j < n && j - i < 128)
    {
      if (j + 2 < n && src[j] == src[j + 1] && src[j] == src[j + 2])
        break;
      ++j;
    }
    dst.PushByte(static_cast<std::uint8_t>(j - i - 1));
    dst.Append(src + i, j - i);
    i = j;
  }
}

/// Decode exactly `outBytes` bytes of one RLE segment, advancing `pos`.
void RleDecodeSegment(const std::uint8_t *p, std::size_t size,
                      std::size_t &pos, std::uint8_t *out,
                      std::size_t outBytes)
{
  std::size_t o = 0;
  while (o < outBytes)
  {
    if (pos >= size)
      throw std::runtime_error("cmp: truncated RLE stream");
    const std::uint8_t c = p[pos++];
    if (c & 0x80u)
    {
      const std::size_t run = std::size_t(c & 0x7Fu) + 3;
      if (pos >= size || o + run > outBytes)
        throw std::runtime_error("cmp: corrupt RLE stream");
      std::memset(out + o, p[pos++], run);
      o += run;
    }
    else
    {
      const std::size_t lit = std::size_t(c) + 1;
      if (lit > size - pos || o + lit > outBytes)
        throw std::runtime_error("cmp: corrupt RLE stream");
      std::memcpy(out + o, p + pos, lit);
      pos += lit;
      o += lit;
    }
  }
}

template <typename T>
void DeltaVarintEncodeT(const T *v, std::uint64_t count, Scratch &dst)
{
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < count; ++i)
  {
    const std::uint64_t x =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(v[i]));
    PutVarint(dst, ZigZagEncode(x - prev));
    prev = x;
  }
}

template <typename T>
void DeltaVarintDecodeT(const std::uint8_t *p, std::size_t size,
                        std::uint64_t count, T *out)
{
  std::size_t pos = 0;
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < count; ++i)
  {
    prev += ZigZagDecode(GetVarint(p, size, pos));
    out[i] = static_cast<T>(static_cast<std::int64_t>(prev));
  }
  if (pos != size)
    throw std::runtime_error("cmp: trailing bytes in varint stream");
}

// --- the codecs --------------------------------------------------------------

class NoneCodec : public Codec
{
public:
  CodecId Id() const override { return CodecId::None; }

  bool Encode(const void *src, DType t, std::uint64_t count, const Params &,
              Scratch &dst, std::uint8_t &flags) const override
  {
    flags = 0;
    dst.Clear();
    dst.Append(src, static_cast<std::size_t>(count) * DTypeSize(t));
    return true;
  }

  void Decode(const std::uint8_t *payload, const ChunkInfo &info,
              void *dst) const override
  {
    if (info.EncodedBytes != info.RawBytes)
      throw std::runtime_error("cmp: raw chunk size mismatch");
    if (info.RawBytes)
      std::memcpy(dst, payload, static_cast<std::size_t>(info.RawBytes));
  }
};

class ShuffleRleCodec : public Codec
{
public:
  CodecId Id() const override { return CodecId::ShuffleRLE; }

  bool Encode(const void *src, DType t, std::uint64_t count, const Params &p,
              Scratch &dst, std::uint8_t &flags) const override
  {
    const std::size_t esize = DTypeSize(t);
    const std::size_t n = static_cast<std::size_t>(count);
    const auto *bytes = static_cast<const std::uint8_t *>(src);
    dst.Clear();

    const bool shuffle = p.Level > 0 && esize > 1 && n > 1;
    flags = shuffle ? 1 : 0;
    if (!shuffle)
    {
      RleEncode(bytes, n * esize, dst);
      return true;
    }

    // one pooled temporary holding all esize byte planes, gathered in a
    // single cache-blocked transpose; the bitstream is unchanged
    Scratch planes;
    planes.Resize(esize * n);
    vp::layout::GatherPlanes(bytes, esize, n, planes.Data());
    for (std::size_t b = 0; b < esize; ++b)
      RleEncode(planes.Data() + b * n, n, dst);
    return true;
  }

  void Decode(const std::uint8_t *payload, const ChunkInfo &info,
              void *dstv) const override
  {
    auto *dst = static_cast<std::uint8_t *>(dstv);
    const std::size_t esize = DTypeSize(info.Type);
    const std::size_t n = static_cast<std::size_t>(info.Count);
    const std::size_t size = static_cast<std::size_t>(info.EncodedBytes);
    std::size_t pos = 0;

    if (!(info.Flags & 1u))
    {
      RleDecodeSegment(payload, size, pos, dst,
                       static_cast<std::size_t>(info.RawBytes));
    }
    else
    {
      Scratch planes;
      planes.Resize(esize * n);
      for (std::size_t b = 0; b < esize; ++b)
        RleDecodeSegment(payload, size, pos, planes.Data() + b * n, n);
      vp::layout::ScatterPlanes(planes.Data(), esize, n, dst);
    }
    if (pos != size)
      throw std::runtime_error("cmp: trailing bytes in RLE stream");
  }
};

class DeltaVarintCodec : public Codec
{
public:
  CodecId Id() const override { return CodecId::DeltaVarint; }

  bool Encode(const void *src, DType t, std::uint64_t count, const Params &,
              Scratch &dst, std::uint8_t &flags) const override
  {
    flags = 0;
    if (t != DType::I32 && t != DType::I64)
      return false;
    dst.Clear();
    if (t == DType::I32)
      DeltaVarintEncodeT(static_cast<const std::int32_t *>(src), count, dst);
    else
      DeltaVarintEncodeT(static_cast<const std::int64_t *>(src), count, dst);
    return true;
  }

  void Decode(const std::uint8_t *payload, const ChunkInfo &info,
              void *dst) const override
  {
    const std::size_t size = static_cast<std::size_t>(info.EncodedBytes);
    if (info.Type == DType::I32)
      DeltaVarintDecodeT(payload, size, info.Count,
                         static_cast<std::int32_t *>(dst));
    else if (info.Type == DType::I64)
      DeltaVarintDecodeT(payload, size, info.Count,
                         static_cast<std::int64_t *>(dst));
    else
      throw std::runtime_error("cmp: delta-varint chunk with non-integer dtype");
  }
};

class QuantizeCodec : public Codec
{
public:
  CodecId Id() const override { return CodecId::Quantize; }

  bool Encode(const void *src, DType t, std::uint64_t count, const Params &p,
              Scratch &dst, std::uint8_t &flags) const override
  {
    flags = 0;
    if (!(p.ErrorBound > 0.0))
      return false;
    if (t == DType::F32)
      return EncodeT(static_cast<const float *>(src), count, p.ErrorBound,
                     dst);
    if (t == DType::F64)
      return EncodeT(static_cast<const double *>(src), count, p.ErrorBound,
                     dst);
    return false;
  }

  void Decode(const std::uint8_t *payload, const ChunkInfo &info,
              void *dst) const override
  {
    const double step = 2.0 * info.ErrorBound;
    if (!(step > 0.0) || !std::isfinite(step))
      throw std::runtime_error("cmp: quantize chunk without an error bound");
    if (info.Type == DType::F32)
      DecodeT(payload, info, static_cast<float *>(dst), step);
    else if (info.Type == DType::F64)
      DecodeT(payload, info, static_cast<double *>(dst), step);
    else
      throw std::runtime_error("cmp: quantize chunk with non-float dtype");
  }

private:
  template <typename T>
  static bool EncodeT(const T *v, std::uint64_t count, double eb, Scratch &dst)
  {
    dst.Clear();
    const double step = 2.0 * eb;
    std::uint64_t prev = 0;
    for (std::uint64_t i = 0; i < count; ++i)
    {
      const double x = static_cast<double>(v[i]);
      if (!std::isfinite(x))
        return false;
      const double scaled = x / step;
      if (!(std::fabs(scaled) < 4.0e18)) // llround domain guard
        return false;
      const std::int64_t q = std::llround(scaled);
      // verify the bound exactly as the decoder reconstructs, including
      // the cast back to the array's element type
      const double recon = static_cast<double>(
        static_cast<T>(static_cast<double>(q) * step));
      if (!(std::fabs(recon - x) <= eb))
        return false;
      const std::uint64_t u = static_cast<std::uint64_t>(q);
      PutVarint(dst, ZigZagEncode(u - prev));
      prev = u;
    }
    return true;
  }

  template <typename T>
  static void DecodeT(const std::uint8_t *p, const ChunkInfo &info, T *out,
                      double step)
  {
    const std::size_t size = static_cast<std::size_t>(info.EncodedBytes);
    std::size_t pos = 0;
    std::uint64_t prev = 0;
    for (std::uint64_t i = 0; i < info.Count; ++i)
    {
      prev += ZigZagDecode(GetVarint(p, size, pos));
      out[i] = static_cast<T>(
        static_cast<double>(static_cast<std::int64_t>(prev)) * step);
    }
    if (pos != size)
      throw std::runtime_error("cmp: trailing bytes in quantize stream");
  }
};
} // namespace

const Codec &FindCodec(CodecId id)
{
  static const NoneCodec none;
  static const ShuffleRleCodec shuffleRle;
  static const DeltaVarintCodec deltaVarint;
  static const QuantizeCodec quantize;
  switch (id)
  {
    case CodecId::None:
      return none;
    case CodecId::ShuffleRLE:
      return shuffleRle;
    case CodecId::DeltaVarint:
      return deltaVarint;
    case CodecId::Quantize:
      return quantize;
  }
  throw std::invalid_argument("cmp::FindCodec: unknown codec id");
}

// --- chunk encode / decode ---------------------------------------------------

ChunkInfo EncodeChunk(const void *data, DType t, std::uint64_t count,
                      const Params &p, std::vector<std::uint8_t> &out)
{
  const std::size_t esize = DTypeSize(t);
  const std::uint64_t rawBytes = count * esize;
  if (count && !data)
    throw std::invalid_argument("cmp::EncodeChunk: null data");
  if (count)
    vp::check::HostRead(data, static_cast<std::size_t>(rawBytes),
                        "cmp encode source");

  const Params negotiated = Negotiate(p, t);
  Scratch scratch;
  std::uint8_t flags = 0;
  CodecId used = negotiated.Codec;

  bool ok = used != CodecId::None &&
            FindCodec(used).Encode(data, t, count, negotiated, scratch, flags);
  if (ok && rawBytes && scratch.Size() >= rawBytes)
    ok = false; // the codec applied but did not shrink the data
  if (!ok && used != CodecId::None && used != CodecId::ShuffleRLE)
  {
    used = CodecId::ShuffleRLE;
    ok = FindCodec(used).Encode(data, t, count, negotiated, scratch, flags);
    if (ok && rawBytes && scratch.Size() >= rawBytes)
      ok = false;
  }
  if (!ok)
  {
    used = CodecId::None;
    flags = 0;
    FindCodec(used).Encode(data, t, count, negotiated, scratch, flags);
  }

  ChunkInfo info;
  info.Codec = used;
  info.Type = t;
  info.Flags = flags;
  info.Count = count;
  info.RawBytes = rawBytes;
  info.EncodedBytes = scratch.Size();
  info.Checksum = Fnv1a(scratch.Data(), scratch.Size());
  info.ErrorBound =
    used == CodecId::Quantize ? negotiated.ErrorBound : 0.0;

  const std::size_t at = out.size();
  out.resize(at + kChunkHeaderBytes + scratch.Size());
  std::uint8_t *h = out.data() + at;
  h[0] = 'S';
  h[1] = 'C';
  h[2] = 'M';
  h[3] = 'P';
  h[4] = 1;
  h[5] = static_cast<std::uint8_t>(used);
  h[6] = static_cast<std::uint8_t>(t);
  h[7] = info.Flags;
  StoreLE64(h + 8, info.Count);
  StoreLE64(h + 16, info.RawBytes);
  StoreLE64(h + 24, info.EncodedBytes);
  StoreLE64(h + 32, info.Checksum);
  std::uint64_t ebBits = 0;
  std::memcpy(&ebBits, &info.ErrorBound, sizeof(ebBits));
  StoreLE64(h + 40, ebBits);
  if (scratch.Size())
    std::memcpy(h + kChunkHeaderBytes, scratch.Data(), scratch.Size());

  vp::Platform &plat = vp::Platform::Get();
  const double seconds =
    static_cast<double>(rawBytes + info.EncodedBytes) /
    plat.Config().Cost.H2HBandwidth * CodecCostFactor(used);
  plat.HostCompute(seconds);

  {
    std::lock_guard<std::mutex> lock(StateMutex());
    CodecStats &s = GlobalStats();
    s.EncodedChunks += 1;
    if (used != p.Codec)
      s.Fallbacks += 1;
    s.BytesRaw += rawBytes;
    s.BytesEncoded += info.EncodedBytes;
    s.EncodeSeconds += seconds;
  }
  return info;
}

ChunkInfo PeekHeader(const std::uint8_t *bytes, std::size_t size)
{
  if (!bytes || size < kChunkHeaderBytes)
    throw std::runtime_error("cmp: truncated chunk header");
  if (bytes[0] != 'S' || bytes[1] != 'C' || bytes[2] != 'M' ||
      bytes[3] != 'P')
    throw std::runtime_error("cmp: bad chunk magic");
  if (bytes[4] != 1)
    throw std::runtime_error("cmp: unsupported chunk version");
  if (bytes[5] > static_cast<std::uint8_t>(CodecId::Quantize))
    throw std::runtime_error("cmp: unknown codec id");
  if (bytes[6] > static_cast<std::uint8_t>(DType::F64))
    throw std::runtime_error("cmp: unknown dtype");

  ChunkInfo info;
  info.Codec = static_cast<CodecId>(bytes[5]);
  info.Type = static_cast<DType>(bytes[6]);
  info.Flags = bytes[7];
  info.Count = LoadLE64(bytes + 8);
  info.RawBytes = LoadLE64(bytes + 16);
  info.EncodedBytes = LoadLE64(bytes + 24);
  info.Checksum = LoadLE64(bytes + 32);
  const std::uint64_t ebBits = LoadLE64(bytes + 40);
  std::memcpy(&info.ErrorBound, &ebBits, sizeof(info.ErrorBound));

  if (info.Count > (std::uint64_t(1) << 56))
    throw std::runtime_error("cmp: implausible chunk element count");
  if (info.RawBytes != info.Count * DTypeSize(info.Type))
    throw std::runtime_error("cmp: chunk raw size does not match its count");
  if (info.EncodedBytes > size - kChunkHeaderBytes)
    throw std::runtime_error("cmp: chunk payload extends past the buffer");
  return info;
}

std::size_t DecodeChunk(const std::uint8_t *bytes, std::size_t size,
                        void *dst, std::size_t dstBytes, ChunkInfo *infoOut)
{
  const ChunkInfo info = PeekHeader(bytes, size);
  if (dstBytes != info.RawBytes)
    throw std::invalid_argument(
      "cmp::DecodeChunk: destination size does not match the chunk");
  if (info.RawBytes && !dst)
    throw std::invalid_argument("cmp::DecodeChunk: null destination");

  const std::uint8_t *payload = bytes + kChunkHeaderBytes;
  if (Fnv1a(payload, static_cast<std::size_t>(info.EncodedBytes)) !=
      info.Checksum)
    throw std::runtime_error("cmp: chunk checksum mismatch");

  FindCodec(info.Codec).Decode(payload, info, dst);
  if (info.RawBytes)
    vp::check::HostWrite(dst, static_cast<std::size_t>(info.RawBytes),
                         "cmp decode destination");

  vp::Platform &plat = vp::Platform::Get();
  const double seconds =
    static_cast<double>(info.RawBytes + info.EncodedBytes) /
    plat.Config().Cost.H2HBandwidth * CodecCostFactor(info.Codec);
  plat.HostCompute(seconds);

  {
    std::lock_guard<std::mutex> lock(StateMutex());
    CodecStats &s = GlobalStats();
    s.DecodedChunks += 1;
    s.DecodedRawBytes += info.RawBytes;
    s.DecodeSeconds += seconds;
  }

  if (infoOut)
    *infoOut = info;
  return kChunkHeaderBytes + static_cast<std::size_t>(info.EncodedBytes);
}

} // namespace cmp
