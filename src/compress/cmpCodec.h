#ifndef cmpCodec_h
#define cmpCodec_h

/// @file cmpCodec.h
/// Stream-ordered array compression for the in situ data paths. At 24M
/// bodies x 90 binnings per step, bytes moved — off node (in transit),
/// across threads (asynchronous deep copies), and to disk (PosthocIO) —
/// is the dominant cost the scheduler can only route around, not shrink.
/// This subsystem shrinks it: a pluggable cmp::Codec interface encoding
/// typed arrays into pool-backed, stream-ordered scratch buffers, three
/// codecs chosen per array dtype, and a self-describing chunk format so
/// any consumer (wire, file, queue) can decode a chunk in isolation.
///
/// Codecs:
///  * `shuffle-rle`   — byte-plane shuffle + PackBits-style RLE. Lossless,
///                      applicable to every dtype; the general fallback.
///  * `delta-varint`  — per-element delta, zigzag, LEB128 varint. Lossless,
///                      integer arrays only (index/coordinate columns).
///  * `quantize`      — error-bounded uniform scalar quantizer for floats:
///                      q = round(v / (2*eb)), reconstruct v' = q * 2*eb,
///                      so |v - v'| <= eb. The quantized integers are
///                      delta+zigzag+varint coded. Safe for binning when
///                      eb is below half the bin width. The encoder
///                      verifies the bound on every value (including the
///                      float32 cast on the decode side) and falls back
///                      to a lossless codec when it cannot hold (NaN/Inf,
///                      overflow, pathological rounding).
///  * `none`          — raw bytes behind the chunk header (the identity
///                      codec every fallback chain terminates in).
///
/// Chunk format (all fields little endian, independent of host width):
///
///   off  0  u8[4]  magic "SCMP"
///   off  4  u8     version (1)
///   off  5  u8     codec id actually used (CodecId)
///   off  6  u8     dtype (DType)
///   off  7  u8     flags (bit 0: byte-shuffle applied)
///   off  8  u64    element count
///   off 16  u64    raw bytes (count * element size)
///   off 24  u64    encoded payload bytes that follow the header
///   off 32  u64    FNV-1a 64 checksum of the encoded payload
///   off 40  f64    error bound (0 for lossless codecs)
///
/// EncodeChunk negotiates: the requested codec is tried first; if it is
/// inapplicable to the dtype, cannot hold its bound, or does not shrink
/// the data, it falls back shuffle-rle -> none and the header records
/// what was actually used, so DecodeChunk never needs the request.
/// Encode/decode charge virtual host-compute time and register their
/// buffer touches with the race/lifetime checker (VP_CHECK=1).

#include "vpStream.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cmp
{

/// Codec identifiers as stored in the chunk header.
enum class CodecId : std::uint8_t
{
  None = 0,       ///< raw bytes behind the header
  ShuffleRLE = 1, ///< byte-plane shuffle + run-length encoding
  DeltaVarint = 2, ///< delta + zigzag + LEB128 varint (integers)
  Quantize = 3    ///< error-bounded uniform quantizer (floats)
};

/// Element types as stored in the chunk header.
enum class DType : std::uint8_t
{
  U8 = 0,
  I32 = 1,
  I64 = 2,
  F32 = 3,
  F64 = 4
};

/// Size in bytes of one element of `t`.
std::size_t DTypeSize(DType t);

/// Stable lower-case codec name ("none", "shuffle-rle", ...).
const char *CodecName(CodecId id);

/// Parse a codec name ("none"/"off", "shuffle-rle"/"shuffle_rle"/"rle",
/// "delta-varint"/"delta_varint", "quantize"). Throws
/// std::invalid_argument on unknown names.
CodecId CodecIdFromName(const std::string &name);

/// Per-chunk encoding request.
struct Params
{
  CodecId Codec = CodecId::ShuffleRLE;
  int Level = 1;           ///< shuffle-rle: 0 = RLE only, >=1 = shuffle first
  double ErrorBound = 0.0; ///< quantize: max absolute reconstruction error
};

/// Process-wide compression configuration (the `<compress>` XML element).
struct Config
{
  bool Enabled = false; ///< compress the integrated data paths by default
  Params Default;       ///< codec the integrated paths request when enabled
};

/// Replace the process-wide configuration (validated: a `quantize`
/// default requires ErrorBound > 0).
void Configure(const Config &cfg);

/// The active configuration.
Config GetConfig();

/// Pick the codec actually attempted for an array of dtype `t`: the
/// request when applicable, otherwise the nearest applicable codec
/// (quantize on integers -> delta-varint; delta-varint or an unbounded
/// quantize on floats -> shuffle-rle; anything but none on u8 ->
/// shuffle-rle). `none` is always honoured.
Params Negotiate(const Params &requested, DType t);

/// Decoded view of one chunk header.
struct ChunkInfo
{
  CodecId Codec = CodecId::None;
  DType Type = DType::U8;
  std::uint8_t Flags = 0;
  std::uint64_t Count = 0;
  std::uint64_t RawBytes = 0;
  std::uint64_t EncodedBytes = 0;
  std::uint64_t Checksum = 0;
  double ErrorBound = 0.0;
};

/// Fixed size of the self-describing chunk header.
constexpr std::size_t kChunkHeaderBytes = 48;

/// Growable byte buffer backed by the stream-ordered memory pool: codec
/// working storage lives in pooled host blocks (recycled across chunks,
/// visible to the race/lifetime checker) rather than transient heap
/// allocations. Not thread safe; one Scratch per encoding thread.
class Scratch
{
public:
  explicit Scratch(vp::Stream stream = vp::Stream());
  ~Scratch();

  Scratch(const Scratch &) = delete;
  Scratch &operator=(const Scratch &) = delete;

  std::uint8_t *Data() noexcept { return this->Data_; }
  const std::uint8_t *Data() const noexcept { return this->Data_; }
  std::size_t Size() const noexcept { return this->Size_; }
  std::size_t Capacity() const noexcept { return this->Cap_; }

  /// Forget the contents, keep the capacity.
  void Clear() noexcept { this->Size_ = 0; }

  /// Grow/shrink the in-use size; growth beyond capacity reallocates
  /// (doubling) and preserves the prefix.
  void Resize(std::size_t n);

  /// Ensure capacity without changing the size.
  void Reserve(std::size_t n);

  void PushByte(std::uint8_t b)
  {
    if (this->Size_ == this->Cap_)
      this->Reserve(this->Size_ + 1);
    this->Data_[this->Size_++] = b;
  }

  void Append(const void *p, std::size_t n);

private:
  vp::Stream Stream_;
  std::uint8_t *Data_ = nullptr;
  std::size_t Size_ = 0;
  std::size_t Cap_ = 0;
};

/// One compression algorithm. Implementations are stateless singletons;
/// obtain them through FindCodec.
class Codec
{
public:
  virtual ~Codec() = default;

  virtual CodecId Id() const = 0;

  /// Encode `count` elements of dtype `t` from `src` into `dst`
  /// (replacing its contents). Returns false when the codec is
  /// inapplicable to this data (wrong dtype, unsatisfiable error bound);
  /// the caller then falls back. `flags` receives the header flag bits.
  virtual bool Encode(const void *src, DType t, std::uint64_t count,
                      const Params &p, Scratch &dst,
                      std::uint8_t &flags) const = 0;

  /// Decode `info.EncodedBytes` payload bytes at `payload` into `dst`
  /// (exactly info.RawBytes bytes). Throws std::runtime_error on corrupt
  /// streams.
  virtual void Decode(const std::uint8_t *payload, const ChunkInfo &info,
                      void *dst) const = 0;
};

/// The codec registered under `id`. Throws std::invalid_argument for ids
/// not in CodecId.
const Codec &FindCodec(CodecId id);

/// Encode one array as a self-describing chunk appended to `out`,
/// negotiating codec fallbacks (see file comment). Returns the header of
/// the chunk as written. Charges virtual host-compute time and updates
/// the global CodecStats.
ChunkInfo EncodeChunk(const void *data, DType t, std::uint64_t count,
                      const Params &p, std::vector<std::uint8_t> &out);

/// Validate and read a chunk header at `bytes` without decoding. Throws
/// std::runtime_error on truncated or malformed headers (bad magic,
/// unknown codec/dtype, size mismatches, payload past `size`).
ChunkInfo PeekHeader(const std::uint8_t *bytes, std::size_t size);

/// Decode the chunk at `bytes` into `dst` (which must hold exactly the
/// chunk's RawBytes — pass `dstBytes` for validation). Verifies the
/// checksum. Returns the total bytes consumed (header + payload); the
/// header is also returned through `info` when non-null. Throws
/// std::runtime_error on any corruption.
std::size_t DecodeChunk(const std::uint8_t *bytes, std::size_t size,
                        void *dst, std::size_t dstBytes,
                        ChunkInfo *info = nullptr);

/// Process-wide codec counters (thread safe).
struct CodecStats
{
  std::uint64_t EncodedChunks = 0; ///< chunks produced by EncodeChunk
  std::uint64_t DecodedChunks = 0; ///< chunks consumed by DecodeChunk
  std::uint64_t Fallbacks = 0; ///< encodes that fell back from the request
  std::uint64_t BytesRaw = 0;      ///< raw bytes in to the encoder
  std::uint64_t BytesEncoded = 0;  ///< encoded payload bytes out (no headers)
  std::uint64_t DecodedRawBytes = 0; ///< raw bytes produced by the decoder
  double EncodeSeconds = 0.0; ///< virtual host seconds spent encoding
  double DecodeSeconds = 0.0; ///< virtual host seconds spent decoding

  /// Raw / encoded (0 when nothing was encoded).
  double Ratio() const
  {
    return this->BytesEncoded ? static_cast<double>(this->BytesRaw) /
                                  static_cast<double>(this->BytesEncoded)
                              : 0.0;
  }

  CodecStats &operator+=(const CodecStats &o);
};

/// Snapshot of the process-wide counters.
CodecStats Stats();

/// Zero the process-wide counters.
void ResetStats();

/// FNV-1a 64-bit hash of `bytes` — the chunk and file checksum.
std::uint64_t Fnv1a(const void *data, std::size_t bytes) noexcept;

// --- little-endian field helpers -------------------------------------------
// Exported for the consumers of the chunk format (wire serialization,
// file containers) so every on-the-wire integer is explicit-width and
// explicit-endian regardless of the host.

inline void StoreLE16(std::uint8_t *p, std::uint16_t v) noexcept
{
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

inline void StoreLE32(std::uint8_t *p, std::uint32_t v) noexcept
{
  for (int i = 0; i < 4; ++i)
    p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

inline void StoreLE64(std::uint8_t *p, std::uint64_t v) noexcept
{
  for (int i = 0; i < 8; ++i)
    p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

inline std::uint16_t LoadLE16(const std::uint8_t *p) noexcept
{
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t(p[1]) << 8));
}

inline std::uint32_t LoadLE32(const std::uint8_t *p) noexcept
{
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= std::uint32_t(p[i]) << (8 * i);
  return v;
}

inline std::uint64_t LoadLE64(const std::uint8_t *p) noexcept
{
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= std::uint64_t(p[i]) << (8 * i);
  return v;
}

inline void PutLE64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
  const std::size_t at = out.size();
  out.resize(at + 8);
  StoreLE64(out.data() + at, v);
}

} // namespace cmp

#endif
