#ifndef schedPolicy_h
#define schedPolicy_h

/// @file schedPolicy.h
/// Pluggable in situ placement policies. The paper's placement control is
/// the static rule
///
///     d = ((r mod n_u) * s + d_0) mod n_a                     (Eq. 1)
///
/// which is oblivious to what the devices are actually doing. The policy
/// interface keeps Eq. 1 as the default (`static`, bit-for-bit identical
/// to the original rule) and adds two adaptive policies that consult the
/// virtual platform's load state per decision:
///
///  * `least-loaded` — among the devices Eq. 1 may use (the candidate
///    set spanned by n_u / s / d_0), pick the one with the smallest
///    outstanding-work backlog (engine availability plus promised work
///    from vp::DeviceLoadTracker). Candidates are scanned starting at
///    the Eq. 1 choice, so with uniform load the policy degenerates to
///    Eq. 1 exactly and ranks stay spread.
///  * `cost-model` — pick the candidate with the earliest predicted
///    completion: backlog plus a vpCostModel estimate of the analysis
///    kernel (from the WorkHint) plus the host-to-device movement cost
///    of the payload.
///
/// All policies are stateless singletons; shared mutable state lives in
/// vp::DeviceLoadTracker, which every decision updates so that
/// concurrent ranks see each other's assignments within a step.

#include <cstddef>
#include <string>
#include <vector>

namespace sched
{

/// Which placement rule an analysis uses when its device is "auto".
enum class PolicyKind : int
{
  Static = 0,  ///< Eq. 1, the paper's rule
  LeastLoaded, ///< smallest backlog among the Eq. 1 candidate set
  CostModel    ///< earliest predicted completion via vpCostModel
};

/// Parse a policy name ("static", "least-loaded"/"least_loaded",
/// "cost-model"/"cost_model"). Throws std::invalid_argument on unknown
/// names.
PolicyKind PolicyKindFromName(const std::string &name);

/// Stable lower-case name ("static", "least-loaded", "cost-model").
const char *PolicyKindName(PolicyKind k);

/// Scheduling class of the work being placed. Interactive requests (a
/// steerable viz render, a viewer-facing frame) win their device on
/// backlog alone and mark it the node's interactive device; subsequent
/// throughput requests pay a small score bias to land there, so close
/// calls move bulk work off the interactive path while a hugely loaded
/// alternative still loses. The `static` policy ignores the class —
/// Eq. 1 is oblivious by design.
enum class LatencyClass : int
{
  Throughput = 0, ///< bulk analysis: minimize completion time
  Interactive     ///< viewer-facing: minimize queueing delay
};

/// Optional per-step description of the work being placed, used by the
/// cost-model policy. A default-constructed hint (no elements) makes
/// cost-model fall back to backlog comparison (= least-loaded).
struct WorkHint
{
  std::size_t Elements = 0;    ///< elements the analysis kernel touches
  double OpsPerElement = 1.0;  ///< elementary operations per element
  double AtomicFraction = 0.0; ///< fraction of atomic-bound work
  std::size_t MoveBytes = 0;   ///< payload bytes that must reach the device
  LatencyClass Latency = LatencyClass::Throughput;
};

/// Score penalty (virtual seconds) a throughput placement pays for the
/// node's interactive device: large enough to break exact ties and
/// near-ties away from it, small enough that real load imbalance
/// dominates.
constexpr double kInteractiveBias = 1.0e-4;

/// Everything a policy needs for one decision.
struct PlacementRequest
{
  int Rank = 0;           ///< r in Eq. 1
  int DevicesPerNode = 0; ///< n_a (a system query)
  int DevicesToUse = 0;   ///< n_u; 0 = all n_a devices
  int DeviceStart = 0;    ///< d_0
  int DeviceStride = 1;   ///< s
  int Node = 0;           ///< the deciding thread's node
  WorkHint Hint;          ///< cost-model inputs (may be empty)
};

/// A placement rule. Implementations record their decision (placement
/// count and, for adaptive policies, the estimated device seconds) in
/// vp::DeviceLoadTracker.
class PlacementPolicy
{
public:
  virtual ~PlacementPolicy() = default;

  /// The policy's stable name.
  virtual const char *Name() const = 0;

  /// Resolve the device for one analysis execution: an id in
  /// [0, DevicesPerNode) or -1 for the host (no usable devices).
  virtual int SelectDevice(const PlacementRequest &req) = 0;
};

/// The shared instance for a kind (stateless; safe from any thread).
PlacementPolicy &GetPolicy(PolicyKind k);

/// Eq. 1 evaluated with the original quirks preserved (n_u <= 0 means
/// n_a, stride 0 means 1, negative results wrapped). Returns -1 with a
/// one-time process warning when no device is usable (n_a <= 0, or a
/// negative n_u was configured).
int Eq1Device(const PlacementRequest &req);

/// The device set Eq. 1 can reach under the request's controls:
/// { ((k * s + d_0) mod n_a : k in [0, n_u) }, deduplicated, ordered
/// starting at the request's own Eq. 1 choice (k0 = r mod n_u) so that
/// tie-breaking preserves the static spread. Empty when no device is
/// usable.
std::vector<int> CandidateDevices(const PlacementRequest &req);

/// Number of times a placement fell back to the host because no device
/// was usable (the "one-time warning" counter; the warning itself prints
/// on the first fallback only).
std::size_t HostFallbackCount();

/// Would the policy rather not keep running on `device`? Used by captured
/// step-graph replay (src/graph), which pins the placement decided at
/// capture: Static diverges when Eq. 1 names a different device; the
/// adaptive policies diverge when the pinned device left the candidate
/// set or its backlog exceeds the best candidate's by more than
/// `threshold` virtual seconds at time `now`. A diverged pin is the cue
/// to drop the armed graph and re-decide placement.
bool PlacementDiverged(PolicyKind k, const PlacementRequest &req, int device,
                       double threshold, double now);

} // namespace sched

#endif
