#include "schedPipeline.h"

#include "execEngine.h"
#include "vcuda.h"
#include "vomp.h"
#include "vpChecker.h"
#include "vpClock.h"
#include "vpPlatform.h"

#include <algorithm>
#include <condition_variable>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace sched
{

// --- configuration ----------------------------------------------------------

namespace
{

std::mutex &ConfigMutex()
{
  static std::mutex m;
  return m;
}

SchedConfig &ConfigStorage()
{
  static SchedConfig cfg;
  return cfg;
}

} // namespace

void Configure(const SchedConfig &cfg)
{
  if (cfg.QueueDepth < 0)
    throw std::invalid_argument("sched: queue_depth must be >= 0 (0 means "
                                "unbounded)");
  std::lock_guard<std::mutex> lock(ConfigMutex());
  ConfigStorage() = cfg;
}

SchedConfig GetConfig()
{
  std::lock_guard<std::mutex> lock(ConfigMutex());
  return ConfigStorage();
}

Backpressure BackpressureFromName(const std::string &name)
{
  if (name == "block" || name.empty())
    return Backpressure::Block;
  if (name == "drop-oldest" || name == "drop_oldest")
    return Backpressure::DropOldest;
  if (name == "coalesce")
    return Backpressure::Coalesce;
  throw std::invalid_argument("unknown backpressure policy '" + name + "'");
}

const char *BackpressureName(Backpressure b)
{
  switch (b)
  {
    case Backpressure::Block: return "block";
    case Backpressure::DropOldest: return "drop-oldest";
    case Backpressure::Coalesce: return "coalesce";
  }
  return "unknown";
}

// --- stats ------------------------------------------------------------------

PipelineStats &PipelineStats::operator+=(const PipelineStats &o)
{
  this->Submitted += o.Submitted;
  this->Executed += o.Executed;
  this->Dropped += o.Dropped;
  this->Coalesced += o.Coalesced;
  this->QueueDepthHighWater =
    std::max(this->QueueDepthHighWater, o.QueueDepthHighWater);
  this->QueuedBytes += o.QueuedBytes;
  this->PeakQueuedBytes = std::max(this->PeakQueuedBytes, o.PeakQueuedBytes);
  this->StallSeconds += o.StallSeconds;
  this->PayloadRawBytes += o.PayloadRawBytes;
  this->PayloadEncodedBytes += o.PayloadEncodedBytes;
  return *this;
}

// --- aggregate registry -----------------------------------------------------

namespace
{

struct Registry
{
  std::mutex Mutex;
  std::set<BoundedPipeline *> Live;
  PipelineStats Retired; ///< folded in by ~BoundedPipeline
};

Registry &TheRegistry()
{
  static Registry r;
  return r;
}

void RegisterPipeline(BoundedPipeline *p)
{
  Registry &r = TheRegistry();
  std::lock_guard<std::mutex> lock(r.Mutex);
  r.Live.insert(p);
}

void UnregisterPipeline(BoundedPipeline *p, const PipelineStats &final)
{
  Registry &r = TheRegistry();
  std::lock_guard<std::mutex> lock(r.Mutex);
  r.Live.erase(p);
  r.Retired += final;
}

} // namespace

PipelineStats AggregateStats()
{
  Registry &r = TheRegistry();
  std::vector<BoundedPipeline *> live;
  PipelineStats agg;
  {
    std::lock_guard<std::mutex> lock(r.Mutex);
    agg = r.Retired;
    live.assign(r.Live.begin(), r.Live.end());
  }
  for (BoundedPipeline *p : live)
    agg += p->Stats();
  return agg;
}

// --- real-thread consumer ---------------------------------------------------

/// Persistent consumer thread state. All fields are guarded by M; the
/// pipeline's own Mutex_ is never held while M is (the real-thread path
/// keeps its counters here to rule out lock-order inversions between the
/// submitters and the worker).
struct BoundedPipeline::RealWorker
{
  struct RTask
  {
    std::function<void()> Fn;
    double SubmitTime = 0.0;
    std::size_t Bytes = 0;
    int Node = 0;
    std::uint64_t SpawnToken = 0; ///< checker fork edge from the submitter
  };

  std::mutex M;
  std::condition_variable CvWork;  ///< worker waits for tasks
  std::condition_variable CvSpace; ///< blocked submitters wait for a slot
  std::condition_variable CvIdle;  ///< drainers wait for empty + idle
  std::deque<RTask> Pending;
  bool InFlight = false;
  std::size_t InFlightBytes = 0;
  bool Stop = false;
  double RetiredFinish = 0.0; ///< max virtual finish of completed tasks
  std::vector<std::uint64_t> EndTokens; ///< finished, not yet joined
  PipelineStats Stats;
  std::thread Thread;

  ~RealWorker()
  {
    {
      std::lock_guard<std::mutex> lock(this->M);
      this->Stop = true;
    }
    this->CvWork.notify_all();
    if (this->Thread.joinable())
      this->Thread.join();
  }

  std::size_t OccupancyLocked() const
  {
    return this->Pending.size() + (this->InFlight ? 1u : 0u);
  }

  void NoteOccupancyLocked()
  {
    this->Stats.QueueDepthHighWater =
      std::max(this->Stats.QueueDepthHighWater,
               static_cast<long>(this->OccupancyLocked()));
    this->Stats.PeakQueuedBytes =
      std::max(this->Stats.PeakQueuedBytes, this->Stats.QueuedBytes);
  }

  void Run()
  {
    // each task must see a fresh thread's PM device bindings, like the
    // thread-per-task runner it replaces
    const int cudaDev0 = vcuda::GetDevice();
    const int ompDev0 = vomp::GetDefaultDevice();

    std::unique_lock<std::mutex> lock(this->M);
    for (;;)
    {
      this->CvWork.wait(lock,
                        [this] { return this->Stop || !this->Pending.empty(); });
      if (this->Pending.empty())
        return; // Stop with nothing queued (Drain ran first)

      RTask t = std::move(this->Pending.front());
      this->Pending.pop_front();
      this->InFlight = true;
      this->InFlightBytes = t.Bytes;
      lock.unlock();

      vcuda::SetDevice(cudaDev0);
      vomp::SetDefaultDevice(ompDev0);
      vp::Platform::SetThisNode(t.Node);
      vp::check::OnThreadStart(t.SpawnToken);
      // single consumer: this task starts when both it was submitted and
      // the previous task is done (the worker's own clock carries that)
      vp::ThisClock().AdvanceTo(t.SubmitTime);
      t.Fn();
      t.Fn = nullptr; // release the payload before taking the lock
      const double finish = vp::ThisClock().Now();
      const std::uint64_t endToken = vp::check::OnThreadEnd();

      lock.lock();
      this->InFlight = false;
      this->InFlightBytes = 0;
      this->RetiredFinish = std::max(this->RetiredFinish, finish);
      this->EndTokens.push_back(endToken);
      this->Stats.Executed++;
      this->Stats.QueuedBytes -= std::min(this->Stats.QueuedBytes, t.Bytes);
      this->CvSpace.notify_all();
      if (this->Pending.empty())
        this->CvIdle.notify_all();
    }
  }
};

// --- BoundedPipeline --------------------------------------------------------

BoundedPipeline::BoundedPipeline()
{
  RegisterPipeline(this);
}

BoundedPipeline::~BoundedPipeline()
{
  this->Drain();
  PipelineStats final = this->Stats();
  this->Worker_.reset(); // stops the consumer thread
  UnregisterPipeline(this, final);
}

void BoundedPipeline::SetUseRealThreads(bool on)
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  this->RealThreads_ = on;
}

bool BoundedPipeline::GetUseRealThreads() const
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  return this->RealThreads_;
}

void BoundedPipeline::SetDepth(long depth)
{
  if (depth < 0)
    throw std::invalid_argument("sched: queue depth must be >= 0");
  std::lock_guard<std::mutex> lock(this->Mutex_);
  this->DepthOverride_ = depth;
}

void BoundedPipeline::SetBackpressure(Backpressure b)
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  this->PressureOverride_ = static_cast<int>(b);
}

long BoundedPipeline::EffectiveDepth() const
{
  return this->DepthOverride_ >= 0 ? this->DepthOverride_
                                   : GetConfig().QueueDepth;
}

Backpressure BoundedPipeline::EffectivePressure() const
{
  return this->PressureOverride_ >= 0
           ? static_cast<Backpressure>(this->PressureOverride_)
           : GetConfig().Pressure;
}

void BoundedPipeline::NoteOccupancyLocked(std::size_t bytesDelta)
{
  this->Stats_.QueuedBytes += bytesDelta;
  this->Stats_.QueueDepthHighWater =
    std::max(this->Stats_.QueueDepthHighWater,
             static_cast<long>(this->Queue_.size()));
  this->Stats_.PeakQueuedBytes =
    std::max(this->Stats_.PeakQueuedBytes, this->Stats_.QueuedBytes);
}

void BoundedPipeline::ExecuteDetachedLocked(Task &t)
{
  // the consumer reaches this task once it is both submitted and the
  // previous task is done
  const double start = std::max(t.SubmitTime, this->WorkerAvail_);

  // run inline under a detached clock; the task must not disturb the
  // submitting thread's PM device bindings
  const int cudaDev = vcuda::GetDevice();
  const int ompDev = vomp::GetDefaultDevice();
  {
    vp::ClockScope scope(start);
    t.Fn();
    t.Finish = scope.Now();
  }
  vcuda::SetDevice(cudaDev);
  vomp::SetDefaultDevice(ompDev);

  t.Fn = nullptr; // the payload's real memory is released at start time
  t.Executed = true;
  this->WorkerAvail_ = t.Finish;
  this->Stats_.Executed++;
}

void BoundedPipeline::AdvanceConsumerLocked(double now)
{
  // the queue is an executed prefix followed by an unexecuted suffix
  // (drop-oldest removes the first unexecuted, coalesce the last, so the
  // invariant survives); run every deferred task the consumer would have
  // started by `now`
  for (Task &t : this->Queue_)
  {
    if (t.Executed)
      continue;
    if (std::max(t.SubmitTime, this->WorkerAvail_) > now)
      break;
    this->ExecuteDetachedLocked(t);
  }
}

void BoundedPipeline::RetireLocked(double now)
{
  while (!this->Queue_.empty() && this->Queue_.front().Executed &&
         this->Queue_.front().Finish <= now)
  {
    this->Stats_.QueuedBytes -=
      std::min(this->Stats_.QueuedBytes, this->Queue_.front().Bytes);
    this->Queue_.pop_front();
  }
}

void BoundedPipeline::Submit(std::function<void()> fn, std::size_t payloadBytes,
                             std::size_t rawBytes)
{
  const double spawnCost = vp::Platform::Get().Config().Cost.ThreadSpawnCost;

  long depth = 0;
  Backpressure pressure = Backpressure::Block;
  bool realThreads = false;
  {
    std::lock_guard<std::mutex> lock(this->Mutex_);
    depth = this->EffectiveDepth();
    pressure = this->EffectivePressure();
    // real consumer threads: per-pipeline opt-in, the process-wide sched
    // config, or the exec engine's threads mode (the bounded pipeline
    // rides the same wall-clock concurrency the engine provides)
    realThreads = this->RealThreads_ || GetConfig().RealThreads ||
                  vp::exec::ThreadsEnabled();
    if (realThreads && !this->Worker_)
    {
      this->Worker_ = std::make_unique<RealWorker>();
      RealWorker *w = this->Worker_.get();
      w->Thread = std::thread([w]() { w->Run(); });
    }
  }

  if (realThreads)
  {
    RealWorker *w = this->Worker_.get();
    std::unique_lock<std::mutex> lock(w->M);

    if (depth > 0 && w->OccupancyLocked() >= static_cast<std::size_t>(depth))
    {
      switch (pressure)
      {
        case Backpressure::DropOldest:
          if (!w->Pending.empty())
          {
            w->Stats.QueuedBytes -=
              std::min(w->Stats.QueuedBytes, w->Pending.front().Bytes);
            w->Pending.pop_front();
            w->Stats.Dropped++;
            break;
          }
          goto block_real; // only the in-flight task remains: wait
        case Backpressure::Coalesce:
          if (!w->Pending.empty())
          {
            w->Stats.QueuedBytes -=
              std::min(w->Stats.QueuedBytes, w->Pending.back().Bytes);
            w->Pending.pop_back();
            w->Stats.Coalesced++;
            break;
          }
          goto block_real;
        case Backpressure::Block:
        block_real:
        {
          const double before = vp::ThisClock().Now();
          w->CvSpace.wait(lock,
                          [&]
                          {
                            return w->OccupancyLocked() <
                                   static_cast<std::size_t>(depth);
                          });
          // the slot was freed by completed work: absorb its virtual
          // finish as the stall
          vp::ThisClock().AdvanceTo(w->RetiredFinish);
          w->Stats.StallSeconds +=
            std::max(0.0, vp::ThisClock().Now() - before);
          break;
        }
      }
    }

    // harvest checker edges of work that already finished (the real wait
    // above, or plain temporal luck, ordered us after it)
    std::vector<std::uint64_t> done;
    done.swap(w->EndTokens);

    vp::ThisClock().Advance(spawnCost);
    RealWorker::RTask t;
    t.SubmitTime = vp::ThisClock().Now();
    t.Bytes = payloadBytes;
    t.Node = vp::Platform::GetThisNode();
    t.SpawnToken = vp::check::OnThreadSpawn();
    t.Fn = std::move(fn);
    w->Pending.push_back(std::move(t));
    w->Stats.Submitted++;
    w->Stats.QueuedBytes += payloadBytes;
    w->Stats.PayloadEncodedBytes += payloadBytes;
    w->Stats.PayloadRawBytes += rawBytes ? rawBytes : payloadBytes;
    w->NoteOccupancyLocked();
    lock.unlock();
    w->CvWork.notify_one();

    for (std::uint64_t tok : done)
      vp::check::OnThreadJoin(tok);
    return;
  }

  // deterministic mode: inline accounting under the pipeline lock
  std::lock_guard<std::mutex> lock(this->Mutex_);
  double now = vp::ThisClock().Now();
  this->AdvanceConsumerLocked(now);
  this->RetireLocked(now);

  if (depth > 0 && this->Queue_.size() >= static_cast<std::size_t>(depth))
  {
    switch (pressure)
    {
      case Backpressure::DropOldest:
      {
        // drop the oldest task the consumer has not started
        auto it = std::find_if(this->Queue_.begin(), this->Queue_.end(),
                               [](const Task &t) { return !t.Executed; });
        if (it != this->Queue_.end())
        {
          this->Stats_.QueuedBytes -=
            std::min(this->Stats_.QueuedBytes, it->Bytes);
          this->Queue_.erase(it);
          this->Stats_.Dropped++;
          break;
        }
        goto block_det; // everything queued is in flight: wait
      }
      case Backpressure::Coalesce:
      {
        // replace the newest not-yet-started task with the incoming one
        if (!this->Queue_.empty() && !this->Queue_.back().Executed)
        {
          this->Stats_.QueuedBytes -=
            std::min(this->Stats_.QueuedBytes, this->Queue_.back().Bytes);
          this->Queue_.pop_back();
          this->Stats_.Coalesced++;
          break;
        }
        goto block_det;
      }
      case Backpressure::Block:
      block_det:
        while (this->Queue_.size() >= static_cast<std::size_t>(depth))
        {
          Task &front = this->Queue_.front();
          if (!front.Executed)
            this->ExecuteDetachedLocked(front);
          this->Stats_.StallSeconds +=
            std::max(0.0, front.Finish - vp::ThisClock().Now());
          vp::ThisClock().AdvanceTo(front.Finish);
          this->RetireLocked(vp::ThisClock().Now());
        }
        break;
    }
  }

  vp::ThisClock().Advance(spawnCost);
  Task t;
  t.SubmitTime = vp::ThisClock().Now();
  t.Bytes = payloadBytes;
  t.Fn = std::move(fn);
  this->Queue_.push_back(std::move(t));
  this->Stats_.Submitted++;
  this->Stats_.PayloadEncodedBytes += payloadBytes;
  this->Stats_.PayloadRawBytes += rawBytes ? rawBytes : payloadBytes;
  this->NoteOccupancyLocked(payloadBytes);

  // block / unbounded run eagerly (deferring would reorder resource
  // claims against the solver and change the timeline); the dropping
  // modes defer so a queued task can still be discarded or replaced
  if (pressure == Backpressure::Block || depth == 0)
    this->ExecuteDetachedLocked(this->Queue_.back());
}

void BoundedPipeline::Drain()
{
  RealWorker *w = nullptr;
  {
    std::lock_guard<std::mutex> lock(this->Mutex_);
    w = this->Worker_.get();
  }

  if (w)
  {
    std::vector<std::uint64_t> done;
    {
      std::unique_lock<std::mutex> lock(w->M);
      w->CvIdle.wait(lock,
                     [&] { return w->Pending.empty() && !w->InFlight; });
      vp::ThisClock().AdvanceTo(w->RetiredFinish);
      done.swap(w->EndTokens);
    }
    for (std::uint64_t tok : done)
      vp::check::OnThreadJoin(tok);
    // fall through: the deterministic queue is drained too (a pipeline
    // switched between modes owes both)
  }

  std::lock_guard<std::mutex> lock(this->Mutex_);
  if (this->Queue_.empty())
    return;
  for (Task &t : this->Queue_)
    if (!t.Executed)
      this->ExecuteDetachedLocked(t);
  vp::ThisClock().AdvanceTo(this->Queue_.back().Finish);
  this->Stats_.QueuedBytes = 0;
  this->Queue_.clear();
}

bool BoundedPipeline::Busy() const
{
  RealWorker *w = nullptr;
  {
    std::lock_guard<std::mutex> lock(this->Mutex_);
    if (!this->Queue_.empty())
      return true;
    w = this->Worker_.get();
  }
  if (w)
  {
    std::lock_guard<std::mutex> lock(w->M);
    if (!w->Pending.empty() || w->InFlight)
      return true;
  }
  return false;
}

PipelineStats BoundedPipeline::Stats() const
{
  PipelineStats s;
  RealWorker *w = nullptr;
  {
    std::lock_guard<std::mutex> lock(this->Mutex_);
    s = this->Stats_;
    w = this->Worker_.get();
  }
  if (w)
  {
    std::lock_guard<std::mutex> lock(w->M);
    s += w->Stats;
  }
  return s;
}

void ResetAggregateStats()
{
  Registry &r = TheRegistry();
  std::vector<BoundedPipeline *> live;
  {
    std::lock_guard<std::mutex> lock(r.Mutex);
    r.Retired = PipelineStats();
    live.assign(r.Live.begin(), r.Live.end());
  }
  // live pipelines keep only their current occupancy so later retirement
  // cannot underflow the byte accounting
  for (BoundedPipeline *p : live)
  {
    std::lock_guard<std::mutex> lock(p->Mutex_);
    std::size_t bytes = 0;
    for (const BoundedPipeline::Task &t : p->Queue_)
      bytes += t.Bytes;
    p->Stats_ = PipelineStats();
    p->Stats_.QueuedBytes = bytes;
    p->Stats_.PeakQueuedBytes = bytes;
    p->Stats_.QueueDepthHighWater = static_cast<long>(p->Queue_.size());
    if (BoundedPipeline::RealWorker *w = p->Worker_.get())
    {
      std::lock_guard<std::mutex> wl(w->M);
      const std::size_t wb = w->Stats.QueuedBytes;
      w->Stats = PipelineStats();
      w->Stats.QueuedBytes = wb;
      w->Stats.PeakQueuedBytes = wb;
      w->Stats.QueueDepthHighWater =
        static_cast<long>(w->OccupancyLocked());
    }
  }
}

} // namespace sched
