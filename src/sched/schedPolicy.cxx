#include "schedPolicy.h"

#include "vpClock.h"
#include "vpLoadTracker.h"
#include "vpPlatform.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace sched
{

namespace
{

std::atomic<std::size_t> HostFallbacks{0};

/// Count a no-usable-device fallback; print the diagnostic only once per
/// process (the condition is configuration-wide, repeating it every step
/// would drown the log).
int HostFallback(const PlacementRequest &req)
{
  if (HostFallbacks.fetch_add(1) == 0)
    std::fprintf(stderr,
                 "sched: no usable accelerator for automatic placement "
                 "(n_a = %d, n_u = %d); running on the host. This warning "
                 "prints once.\n",
                 req.DevicesPerNode, req.DevicesToUse);
  return -1;
}

/// Eq. 1 core, valid only when na > 0 and nu > 0.
int Eq1Raw(int rank, int nu, int s, int d0, int na)
{
  const int r = rank >= 0 ? rank : 0;
  int d = ((r % nu) * s + d0) % na;
  if (d < 0)
    d += na;
  return d;
}

/// Resolve the effective (n_u, s) pair; returns false when no device is
/// usable (n_a <= 0 or an explicitly negative n_u).
bool EffectiveControls(const PlacementRequest &req, int &nu, int &s)
{
  if (req.DevicesPerNode < 1 || req.DevicesToUse < 0)
    return false;
  nu = req.DevicesToUse > 0 ? req.DevicesToUse : req.DevicesPerNode;
  s = req.DeviceStride != 0 ? req.DeviceStride : 1;
  return true;
}

class StaticPolicy : public PlacementPolicy
{
public:
  const char *Name() const override { return "static"; }

  int SelectDevice(const PlacementRequest &req) override
  {
    const int d = Eq1Device(req);
    vp::DeviceLoadTracker::Get().RecordPlacement(req.Node, d);
    return d;
  }
};

/// Shared scan for the adaptive policies: walk the candidate set in the
/// Eq. 1-rotated order and keep the device minimizing `score`.
template <typename ScoreFn>
int PickByScore(const PlacementRequest &req, ScoreFn score)
{
  const std::vector<int> candidates = CandidateDevices(req);
  if (candidates.empty())
  {
    const int d = HostFallback(req);
    vp::DeviceLoadTracker::Get().RecordPlacement(req.Node, d);
    return d;
  }

  int best = candidates.front();
  double bestScore = std::numeric_limits<double>::infinity();
  for (int d : candidates)
  {
    const double s = score(d);
    if (s < bestScore)
    {
      bestScore = s;
      best = d;
    }
  }
  return best;
}

class LeastLoadedPolicy : public PlacementPolicy
{
public:
  const char *Name() const override { return "least-loaded"; }

  int SelectDevice(const PlacementRequest &req) override
  {
    vp::DeviceLoadTracker &tracker = vp::DeviceLoadTracker::Get();
    const double now = vp::ThisClock().Now();
    const bool interactive = req.Hint.Latency == LatencyClass::Interactive;
    const int avoid =
      interactive ? -1 : tracker.InteractiveDevice(req.Node);
    const int d = PickByScore(req,
                              [&](int dev)
                              {
                                return tracker.Backlog(req.Node, dev, now) +
                                       (dev == avoid ? kInteractiveBias : 0.0);
                              });
    if (d >= 0)
    {
      tracker.RecordPlacement(req.Node, d);
      tracker.RecordAssignment(req.Node, d, EstimateSeconds(req.Hint), now);
      if (interactive)
        tracker.NoteInteractive(req.Node, d);
    }
    return d;
  }

private:
  /// Kernel-only estimate so peers making decisions in the same step see
  /// this assignment as backlog.
  static double EstimateSeconds(const WorkHint &h)
  {
    if (!h.Elements)
      return 0.0;
    return vp::Platform::Get().Config().Cost.KernelSeconds(
      h.Elements, h.OpsPerElement, /*onDevice=*/true, h.AtomicFraction);
  }
};

class CostModelPolicy : public PlacementPolicy
{
public:
  const char *Name() const override { return "cost-model"; }

  int SelectDevice(const PlacementRequest &req) override
  {
    vp::DeviceLoadTracker &tracker = vp::DeviceLoadTracker::Get();
    const vp::CostModel &cost = vp::Platform::Get().Config().Cost;
    const double now = vp::ThisClock().Now();

    double kernelSeconds = 0.0;
    double moveSeconds = 0.0;
    if (req.Hint.Elements)
      kernelSeconds = cost.KernelSeconds(req.Hint.Elements,
                                         req.Hint.OpsPerElement,
                                         /*onDevice=*/true,
                                         req.Hint.AtomicFraction);
    if (req.Hint.MoveBytes)
      moveSeconds = cost.CopySeconds(req.Hint.MoveBytes, cost.H2DBandwidth);

    // predicted completion: wait out the backlog, move the payload, run.
    // backlog differs per device; kernel and movement do not, but keeping
    // them in the score documents what is being predicted.
    const bool interactive = req.Hint.Latency == LatencyClass::Interactive;
    const int avoid =
      interactive ? -1 : tracker.InteractiveDevice(req.Node);
    const int d = PickByScore(req,
                              [&](int dev)
                              {
                                return tracker.Backlog(req.Node, dev, now) +
                                       moveSeconds + kernelSeconds +
                                       (dev == avoid ? kInteractiveBias : 0.0);
                              });
    if (d >= 0)
    {
      tracker.RecordPlacement(req.Node, d);
      tracker.RecordAssignment(req.Node, d, kernelSeconds + moveSeconds, now);
      if (interactive)
        tracker.NoteInteractive(req.Node, d);
    }
    return d;
  }
};

} // namespace

PolicyKind PolicyKindFromName(const std::string &name)
{
  if (name == "static" || name.empty())
    return PolicyKind::Static;
  if (name == "least-loaded" || name == "least_loaded")
    return PolicyKind::LeastLoaded;
  if (name == "cost-model" || name == "cost_model")
    return PolicyKind::CostModel;
  throw std::invalid_argument("unknown placement policy '" + name + "'");
}

const char *PolicyKindName(PolicyKind k)
{
  switch (k)
  {
    case PolicyKind::Static: return "static";
    case PolicyKind::LeastLoaded: return "least-loaded";
    case PolicyKind::CostModel: return "cost-model";
  }
  return "unknown";
}

PlacementPolicy &GetPolicy(PolicyKind k)
{
  static StaticPolicy staticPolicy;
  static LeastLoadedPolicy leastLoaded;
  static CostModelPolicy costModel;
  switch (k)
  {
    case PolicyKind::LeastLoaded: return leastLoaded;
    case PolicyKind::CostModel: return costModel;
    case PolicyKind::Static: break;
  }
  return staticPolicy;
}

int Eq1Device(const PlacementRequest &req)
{
  int nu = 0, s = 1;
  if (!EffectiveControls(req, nu, s))
    return HostFallback(req);
  return Eq1Raw(req.Rank, nu, s, req.DeviceStart, req.DevicesPerNode);
}

std::vector<int> CandidateDevices(const PlacementRequest &req)
{
  int nu = 0, s = 1;
  if (!EffectiveControls(req, nu, s))
    return {};

  const int na = req.DevicesPerNode;
  const int r = req.Rank >= 0 ? req.Rank : 0;
  const int k0 = r % nu;

  std::vector<int> out;
  std::vector<bool> seen(static_cast<std::size_t>(na), false);
  for (int i = 0; i < nu; ++i)
  {
    const int k = (k0 + i) % nu;
    const int d = Eq1Raw(k, nu, s, req.DeviceStart, na);
    if (!seen[static_cast<std::size_t>(d)])
    {
      seen[static_cast<std::size_t>(d)] = true;
      out.push_back(d);
    }
  }
  return out;
}

std::size_t HostFallbackCount()
{
  return HostFallbacks.load();
}

bool PlacementDiverged(PolicyKind k, const PlacementRequest &req, int device,
                       double threshold, double now)
{
  if (device < 0)
    return true; // a host pin never holds a device graph

  if (k == PolicyKind::Static)
    return Eq1Device(req) != device;

  const std::vector<int> candidates = CandidateDevices(req);
  bool member = false;
  for (int d : candidates)
    member = member || d == device;
  if (!member)
    return true;

  vp::DeviceLoadTracker &tracker = vp::DeviceLoadTracker::Get();
  double best = std::numeric_limits<double>::infinity();
  for (int d : candidates)
    best = std::min(best, tracker.Backlog(req.Node, d, now));
  const double pinned = tracker.Backlog(req.Node, device, now);
  return pinned - best > threshold;
}

} // namespace sched
