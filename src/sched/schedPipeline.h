#ifndef schedPipeline_h
#define schedPipeline_h

/// @file schedPipeline.h
/// Bounded asynchronous in situ pipeline with backpressure. The paper's
/// asynchronous execution method deep-copies what the analysis needs and
/// runs it in a thread; unbounded, that pattern lets queued deep copies
/// grow without limit whenever the analysis falls behind the solver —
/// the classic in situ OOM. sched::BoundedPipeline is a bounded MPSC
/// work queue replacing the fire-and-forget sensei::AsyncRunner thread:
/// one consumer drains submitted analysis tasks in FIFO order, at most
/// `queue_depth` task payloads are alive at once, and when the queue is
/// full one of three backpressure policies applies:
///
///  * `block`        — the submitter (the solver) waits for a slot; no
///                     step is lost (total accuracy, bounded memory,
///                     solver stalls). Depth 1 reproduces the original
///                     AsyncRunner timeline bit for bit.
///  * `drop-oldest`  — the oldest not-yet-started step is discarded; the
///                     solver never stalls and memory stays bounded, at
///                     the cost of temporal gaps in the analysis.
///  * `coalesce`     — the newest queued step is replaced by the
///                     incoming one, collapsing consecutive steps: the
///                     analysis always sees the freshest data, skipping
///                     intermediates under pressure.
///
/// A depth of 0 means unbounded (the degenerate baseline the benchmarks
/// compare against). Two execution modes mirror sensei::AsyncRunner:
/// deterministic (default; tasks run inline under detached virtual
/// clocks, bit-reproducible timelines) and real-thread (one persistent
/// consumer std::thread with checker-visible fork/join edges per task).
///
/// Dropped or coalesced tasks are destroyed without running; their deep
/// copies (pool-backed when the memory pool is enabled) are released at
/// that moment, which is what bounds memory. PipelineStats counts
/// submissions, executions, drops, coalesces, stall time, and queue
/// depth / payload-byte high-water marks; sched::AggregateStats() sums
/// them across all pipelines (live and destroyed) and
/// sensei::ExportSchedStats publishes them through the profiler.

#include "schedPolicy.h"

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

namespace sched
{

/// What happens to a submission when the queue is full.
enum class Backpressure : int
{
  Block = 0,  ///< the submitter waits for a slot
  DropOldest, ///< the oldest queued (not yet started) task is discarded
  Coalesce    ///< the newest queued task is replaced by the incoming one
};

/// Parse a backpressure name ("block", "drop-oldest"/"drop_oldest",
/// "coalesce"). Throws std::invalid_argument on unknown names.
Backpressure BackpressureFromName(const std::string &name);

/// Stable lower-case name.
const char *BackpressureName(Backpressure b);

/// Process-wide scheduler configuration (the `<sched>` XML element).
struct SchedConfig
{
  PolicyKind Policy = PolicyKind::Static; ///< default placement policy
  long QueueDepth = 1;                    ///< payloads in flight; 0 = unbounded
  Backpressure Pressure = Backpressure::Block;
  bool RealThreads = false; ///< run consumers on real std::threads
};

/// Replace the process-wide configuration (validated: QueueDepth >= 0).
void Configure(const SchedConfig &cfg);

/// The active configuration.
SchedConfig GetConfig();

/// Counter block for one pipeline (or an aggregate over pipelines).
struct PipelineStats
{
  std::uint64_t Submitted = 0; ///< tasks handed to Submit
  std::uint64_t Executed = 0;  ///< tasks that actually ran
  std::uint64_t Dropped = 0;   ///< tasks discarded by drop-oldest
  std::uint64_t Coalesced = 0; ///< tasks replaced by coalesce
  long QueueDepthHighWater = 0;     ///< most payloads alive at once
  std::size_t QueuedBytes = 0;      ///< payload bytes currently alive
  std::size_t PeakQueuedBytes = 0;  ///< high-water mark of QueuedBytes
  double StallSeconds = 0.0; ///< virtual seconds submitters spent blocked

  /// Payload volume accounting for compressed submissions: RawBytes is
  /// the pre-compression size of every submitted payload, EncodedBytes
  /// the size actually queued (they are equal when a submission carries
  /// no raw size, i.e. is uncompressed).
  std::uint64_t PayloadRawBytes = 0;
  std::uint64_t PayloadEncodedBytes = 0;

  PipelineStats &operator+=(const PipelineStats &o);
};

/// One bounded in situ work queue (typically one per analysis adaptor).
/// Thread safe.
class BoundedPipeline
{
public:
  BoundedPipeline();
  ~BoundedPipeline(); ///< drains, then folds stats into the aggregate

  BoundedPipeline(const BoundedPipeline &) = delete;
  BoundedPipeline &operator=(const BoundedPipeline &) = delete;

  /// Run the consumer on a real std::thread instead of the deterministic
  /// inline accounting. Must be chosen before the first Submit.
  void SetUseRealThreads(bool on);
  bool GetUseRealThreads() const;

  /// Override the process-wide queue depth / backpressure for this
  /// pipeline (by default both follow sched::GetConfig() per submission).
  void SetDepth(long depth);
  void SetBackpressure(Backpressure b);

  /// Submit a task. `payloadBytes` is the size of the deep-copied data
  /// the closure owns; it is what the queue-depth bound meters — for a
  /// compressed payload that is the encoded size, so compression widens
  /// the effective queue. `rawBytes`, when nonzero, records the payload's
  /// pre-compression size in the stats (PayloadRawBytes). Applies the
  /// configured backpressure when the queue is full; charges the
  /// submitting thread the thread-spawn cost.
  void Submit(std::function<void()> fn, std::size_t payloadBytes = 0,
              std::size_t rawBytes = 0);

  /// Run/await every queued task and advance the calling thread's clock
  /// to the completion of the last one.
  void Drain();

  /// True when any task is queued or in flight.
  bool Busy() const;

  /// Snapshot of this pipeline's counters.
  PipelineStats Stats() const;

private:
  struct Task
  {
    std::function<void()> Fn;
    double SubmitTime = 0.0;
    std::size_t Bytes = 0;
    bool Executed = false;
    double Finish = 0.0;
  };
  struct RealWorker;

  /// Effective depth/pressure for this submission.
  long EffectiveDepth() const;
  Backpressure EffectivePressure() const;

  // deterministic mode (requires Mutex_ held)
  void ExecuteDetachedLocked(Task &t);
  void AdvanceConsumerLocked(double now);
  void RetireLocked(double now);

  void NoteOccupancyLocked(std::size_t bytesDelta);

  mutable std::mutex Mutex_;
  std::deque<Task> Queue_;
  double WorkerAvail_ = 0.0; ///< deterministic consumer availability
  bool RealThreads_ = false;
  std::unique_ptr<RealWorker> Worker_;

  long DepthOverride_ = -1; ///< -1 = follow GetConfig()
  int PressureOverride_ = -1;
  PipelineStats Stats_;

  friend void ResetAggregateStats();
};

/// Counters summed over every pipeline, live and already destroyed.
PipelineStats AggregateStats();

/// Zero the aggregate (and every live pipeline's counters).
void ResetAggregateStats();

} // namespace sched

#endif
