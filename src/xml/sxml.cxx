#include "sxml.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace sxml
{

// --- Element ----------------------------------------------------------------

std::string Element::Attribute(const std::string &key,
                               const std::string &fallback) const
{
  auto it = this->Attrs_.find(key);
  return it == this->Attrs_.end() ? fallback : it->second;
}

long long Element::AttributeInt(const std::string &key, long long fallback) const
{
  auto it = this->Attrs_.find(key);
  if (it == this->Attrs_.end())
    return fallback;
  char *end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  return end && *end == '\0' && !it->second.empty() ? v : fallback;
}

double Element::AttributeDouble(const std::string &key, double fallback) const
{
  auto it = this->Attrs_.find(key);
  if (it == this->Attrs_.end())
    return fallback;
  char *end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return end && *end == '\0' && !it->second.empty() ? v : fallback;
}

bool Element::AttributeBool(const std::string &key, bool fallback) const
{
  auto it = this->Attrs_.find(key);
  if (it == this->Attrs_.end())
    return fallback;
  const std::string &v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on")
    return true;
  if (v == "0" || v == "false" || v == "no" || v == "off")
    return false;
  return fallback;
}

const Element *Element::FirstChild(const std::string &name) const
{
  for (const auto &c : this->Children_)
    if (c->Name() == name)
      return c.get();
  return nullptr;
}

Element *Element::FirstChild(const std::string &name)
{
  for (const auto &c : this->Children_)
    if (c->Name() == name)
      return c.get();
  return nullptr;
}

void Element::SetAttributeInt(const std::string &k, long long v)
{
  this->Attrs_[k] = std::to_string(v);
}

void Element::SetAttributeDouble(const std::string &k, double v)
{
  // the fewest significant digits that parse back to the identical value
  char buf[40];
  for (int prec = 1; prec <= 17; ++prec)
  {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v)
      break;
  }
  this->Attrs_[k] = buf;
}

void Element::SetAttributeBool(const std::string &k, bool v)
{
  this->Attrs_[k] = v ? "1" : "0";
}

std::vector<const Element *> Element::ChildrenNamed(const std::string &name) const
{
  std::vector<const Element *> out;
  for (const auto &c : this->Children_)
    if (c->Name() == name)
      out.push_back(c.get());
  return out;
}

Element *Element::AddChild(const std::string &name)
{
  this->Children_.emplace_back(std::make_unique<Element>());
  this->Children_.back()->SetName(name);
  return this->Children_.back().get();
}

Element *Element::FindOrAddChild(const std::string &name)
{
  if (Element *c = this->FirstChild(name))
    return c;
  return this->AddChild(name);
}

// --- parser -------------------------------------------------------------------

namespace
{

class Parser
{
public:
  explicit Parser(const std::string &text) : Text_(text) {}

  std::unique_ptr<Element> Run()
  {
    this->SkipProlog();
    auto root = std::make_unique<Element>();
    this->ParseElement(*root);
    this->SkipMisc();
    if (this->Pos_ < this->Text_.size())
      this->Fail("content after document element");
    return root;
  }

private:
  [[noreturn]] void Fail(const std::string &what) const
  {
    throw ParseError(what, this->Line_);
  }

  bool Eof() const { return this->Pos_ >= this->Text_.size(); }

  char Peek() const { return this->Eof() ? '\0' : this->Text_[this->Pos_]; }

  char Next()
  {
    if (this->Eof())
      this->Fail("unexpected end of input");
    const char c = this->Text_[this->Pos_++];
    if (c == '\n')
      ++this->Line_;
    return c;
  }

  void Expect(char c)
  {
    const char got = this->Next();
    if (got != c)
      this->Fail(std::string("expected '") + c + "', got '" + got + "'");
  }

  bool Consume(const std::string &s)
  {
    if (this->Text_.compare(this->Pos_, s.size(), s) != 0)
      return false;
    for (std::size_t i = 0; i < s.size(); ++i)
      this->Next();
    return true;
  }

  void SkipWhitespace()
  {
    while (!this->Eof() && std::isspace(static_cast<unsigned char>(this->Peek())))
      this->Next();
  }

  void SkipComment()
  {
    // the <!-- is already consumed
    while (!this->Consume("-->"))
      this->Next();
  }

  void SkipProlog()
  {
    this->SkipMisc();
    if (this->Consume("<?xml"))
    {
      while (!this->Consume("?>"))
        this->Next();
      this->SkipMisc();
    }
  }

  void SkipMisc()
  {
    for (;;)
    {
      this->SkipWhitespace();
      if (this->Consume("<!--"))
      {
        this->SkipComment();
        continue;
      }
      return;
    }
  }

  static bool NameChar(char c)
  {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  std::string ParseName()
  {
    std::string name;
    if (!NameChar(this->Peek()))
      this->Fail("expected a name");
    while (NameChar(this->Peek()))
      name.push_back(this->Next());
    return name;
  }

  std::string DecodeEntities(const std::string &raw)
  {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i)
    {
      if (raw[i] != '&')
      {
        out.push_back(raw[i]);
        continue;
      }
      const std::size_t semi = raw.find(';', i);
      if (semi == std::string::npos)
        this->Fail("unterminated entity");
      const std::string ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "lt") out.push_back('<');
      else if (ent == "gt") out.push_back('>');
      else if (ent == "amp") out.push_back('&');
      else if (ent == "quot") out.push_back('"');
      else if (ent == "apos") out.push_back('\'');
      else this->Fail("unknown entity '&" + ent + ";'");
      i = semi;
    }
    return out;
  }

  void ParseAttributes(Element &el)
  {
    for (;;)
    {
      this->SkipWhitespace();
      const char c = this->Peek();
      if (c == '>' || c == '/' || c == '?')
        return;
      const std::string key = this->ParseName();
      this->SkipWhitespace();
      this->Expect('=');
      this->SkipWhitespace();
      const char quote = this->Next();
      if (quote != '"' && quote != '\'')
        this->Fail("attribute value must be quoted");
      std::string value;
      while (this->Peek() != quote)
        value.push_back(this->Next());
      this->Expect(quote);
      el.SetAttribute(key, this->DecodeEntities(value));
    }
  }

  static std::string Trim(const std::string &s)
  {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
      ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
      --e;
    return s.substr(b, e - b);
  }

  void ParseElement(Element &el)
  {
    this->SkipMisc();
    this->Expect('<');
    el.SetName(this->ParseName());
    this->ParseAttributes(el);

    if (this->Consume("/>"))
      return;
    this->Expect('>');

    std::string text;
    for (;;)
    {
      if (this->Consume("<!--"))
      {
        this->SkipComment();
        continue;
      }
      if (this->Text_.compare(this->Pos_, 2, "</") == 0)
      {
        this->Consume("</");
        const std::string close = this->ParseName();
        if (close != el.Name())
          this->Fail("mismatched close tag '</" + close + ">' for <" +
                     el.Name() + ">");
        this->SkipWhitespace();
        this->Expect('>');
        el.SetText(this->DecodeEntities(Trim(text)));
        return;
      }
      if (this->Peek() == '<')
      {
        auto *child = el.AddChild(std::string());
        this->ParseElement(*child);
        continue;
      }
      text.push_back(this->Next());
    }
  }

  const std::string &Text_;
  std::size_t Pos_ = 0;
  int Line_ = 1;
};

void SerializeImpl(const Element &el, std::ostringstream &oss, int depth,
                   int indent)
{
  const std::string pad(static_cast<std::size_t>(depth * indent), ' ');
  oss << pad << '<' << el.Name();
  for (const auto &kv : el.Attributes())
    oss << ' ' << kv.first << "=\"" << kv.second << '"';

  if (el.Children().empty() && el.Text().empty())
  {
    oss << "/>\n";
    return;
  }

  oss << '>';
  if (!el.Text().empty())
    oss << el.Text();
  if (!el.Children().empty())
  {
    oss << '\n';
    for (const auto &c : el.Children())
      SerializeImpl(*c, oss, depth + 1, indent);
    oss << pad;
  }
  oss << "</" << el.Name() << ">\n";
}

} // namespace

std::unique_ptr<Element> Parse(const std::string &text)
{
  Parser p(text);
  return p.Run();
}

std::unique_ptr<Element> ParseFile(const std::string &path)
{
  std::ifstream f(path);
  if (!f)
    throw std::runtime_error("sxml::ParseFile: cannot open '" + path + "'");
  std::ostringstream oss;
  oss << f.rdbuf();
  return Parse(oss.str());
}

std::string Serialize(const Element &root, int indent)
{
  std::ostringstream oss;
  SerializeImpl(root, oss, 0, indent > 0 ? indent : 2);
  return oss.str();
}

} // namespace sxml
