#ifndef sxml_h
#define sxml_h

/// @file sxml.h
/// A small well-formed-XML DOM parser sufficient for SENSEI's run-time
/// configuration files: elements, attributes, nested children, text
/// content, comments, XML declarations, and the five predefined entities.
/// Parse errors throw sxml::ParseError with a line number.

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace sxml
{

/// Error thrown on malformed input.
class ParseError : public std::runtime_error
{
public:
  ParseError(const std::string &what, int line)
    : std::runtime_error("XML parse error at line " + std::to_string(line) +
                         ": " + what),
      Line_(line)
  {
  }

  int Line() const noexcept { return this->Line_; }

private:
  int Line_ = 0;
};

/// One element in the document tree.
class Element
{
public:
  /// Tag name.
  const std::string &Name() const noexcept { return this->Name_; }

  /// Concatenated character data directly inside this element (trimmed).
  const std::string &Text() const noexcept { return this->Text_; }

  /// All attributes, keyed by name (lexicographic iteration order; the
  /// serializer emits them in this order, so output is deterministic).
  const std::map<std::string, std::string> &Attributes() const noexcept
  {
    return this->Attrs_;
  }

  /// True when the attribute is present.
  bool HasAttribute(const std::string &key) const
  {
    return this->Attrs_.count(key) > 0;
  }

  /// Attribute value, or `fallback` when absent.
  std::string Attribute(const std::string &key,
                        const std::string &fallback = std::string()) const;

  /// Attribute parsed as integer; `fallback` when absent or malformed.
  long long AttributeInt(const std::string &key, long long fallback = 0) const;

  /// Attribute parsed as double; `fallback` when absent or malformed.
  double AttributeDouble(const std::string &key, double fallback = 0.0) const;

  /// Attribute parsed as boolean (1/0, true/false, yes/no, on/off).
  bool AttributeBool(const std::string &key, bool fallback = false) const;

  /// Child elements in document order.
  const std::vector<std::unique_ptr<Element>> &Children() const noexcept
  {
    return this->Children_;
  }

  /// First child with the given tag name, or nullptr.
  const Element *FirstChild(const std::string &name) const;

  /// Mutable first child with the given tag name, or nullptr.
  Element *FirstChild(const std::string &name);

  /// All children with the given tag name.
  std::vector<const Element *> ChildrenNamed(const std::string &name) const;

  // mutation (used by the parser, the config emitters, and tests)
  void SetName(const std::string &n) { this->Name_ = n; }
  void SetText(const std::string &t) { this->Text_ = t; }
  void SetAttribute(const std::string &k, const std::string &v)
  {
    this->Attrs_[k] = v;
  }

  /// Typed attribute setters, symmetric with AttributeInt /
  /// AttributeDouble / AttributeBool (named methods rather than
  /// SetAttribute overloads: a string literal would otherwise prefer the
  /// pointer-to-bool conversion). Doubles are formatted with the fewest
  /// digits that parse back to the identical value, so emitted configs
  /// round-trip exactly and stay human readable.
  void SetAttributeInt(const std::string &k, long long v);
  void SetAttributeDouble(const std::string &k, double v);
  void SetAttributeBool(const std::string &k, bool v);

  /// Drop every attribute (an emitter taking full ownership of an
  /// element it may have inherited from a hand-written document).
  void ClearAttributes() { this->Attrs_.clear(); }

  Element *AddChild(const std::string &name);

  /// First child with the given tag name, appended if absent.
  Element *FindOrAddChild(const std::string &name);

private:
  std::string Name_;
  std::string Text_;
  std::map<std::string, std::string> Attrs_;
  std::vector<std::unique_ptr<Element>> Children_;
};

/// Parse a document from a string; returns the root element.
std::unique_ptr<Element> Parse(const std::string &text);

/// Parse a document from a file; throws std::runtime_error when the file
/// cannot be read, ParseError on malformed content.
std::unique_ptr<Element> ParseFile(const std::string &path);

/// Serialize an element tree (round-trip/diagnostics).
std::string Serialize(const Element &root, int indent = 0);

} // namespace sxml

#endif
