#ifndef sxml_h
#define sxml_h

/// @file sxml.h
/// A small well-formed-XML DOM parser sufficient for SENSEI's run-time
/// configuration files: elements, attributes, nested children, text
/// content, comments, XML declarations, and the five predefined entities.
/// Parse errors throw sxml::ParseError with a line number.

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace sxml
{

/// Error thrown on malformed input.
class ParseError : public std::runtime_error
{
public:
  ParseError(const std::string &what, int line)
    : std::runtime_error("XML parse error at line " + std::to_string(line) +
                         ": " + what),
      Line_(line)
  {
  }

  int Line() const noexcept { return this->Line_; }

private:
  int Line_ = 0;
};

/// One element in the document tree.
class Element
{
public:
  /// Tag name.
  const std::string &Name() const noexcept { return this->Name_; }

  /// Concatenated character data directly inside this element (trimmed).
  const std::string &Text() const noexcept { return this->Text_; }

  /// All attributes in document order of first appearance.
  const std::map<std::string, std::string> &Attributes() const noexcept
  {
    return this->Attrs_;
  }

  /// True when the attribute is present.
  bool HasAttribute(const std::string &key) const
  {
    return this->Attrs_.count(key) > 0;
  }

  /// Attribute value, or `fallback` when absent.
  std::string Attribute(const std::string &key,
                        const std::string &fallback = std::string()) const;

  /// Attribute parsed as integer; `fallback` when absent or malformed.
  long long AttributeInt(const std::string &key, long long fallback = 0) const;

  /// Attribute parsed as double; `fallback` when absent or malformed.
  double AttributeDouble(const std::string &key, double fallback = 0.0) const;

  /// Attribute parsed as boolean (1/0, true/false, yes/no, on/off).
  bool AttributeBool(const std::string &key, bool fallback = false) const;

  /// Child elements in document order.
  const std::vector<std::unique_ptr<Element>> &Children() const noexcept
  {
    return this->Children_;
  }

  /// First child with the given tag name, or nullptr.
  const Element *FirstChild(const std::string &name) const;

  /// All children with the given tag name.
  std::vector<const Element *> ChildrenNamed(const std::string &name) const;

  // mutation (used by the parser and by tests building documents)
  void SetName(const std::string &n) { this->Name_ = n; }
  void SetText(const std::string &t) { this->Text_ = t; }
  void SetAttribute(const std::string &k, const std::string &v)
  {
    this->Attrs_[k] = v;
  }
  Element *AddChild(const std::string &name);

private:
  std::string Name_;
  std::string Text_;
  std::map<std::string, std::string> Attrs_;
  std::vector<std::unique_ptr<Element>> Children_;
};

/// Parse a document from a string; returns the root element.
std::unique_ptr<Element> Parse(const std::string &text);

/// Parse a document from a file; throws std::runtime_error when the file
/// cannot be read, ParseError on malformed content.
std::unique_ptr<Element> ParseFile(const std::string &path);

/// Serialize an element tree (round-trip/diagnostics).
std::string Serialize(const Element &root, int indent = 0);

} // namespace sxml

#endif
