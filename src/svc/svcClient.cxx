#include "svcClient.h"

#include "svcSession.h"
#include "vpChecker.h"
#include "vpClock.h"
#include "vpFaultInjector.h"

#include <algorithm>
#include <chrono>

namespace svc
{

namespace
{
double RealNow()
{
  return std::chrono::duration<double>(
           std::chrono::steady_clock::now().time_since_epoch())
    .count();
}
} // namespace

Client::Client(std::shared_ptr<Port> port, std::string meshName)
  : Port_(std::move(port)), MeshName_(std::move(meshName))
{
  if (!this->Port_)
    throw std::invalid_argument("svc::Client: null port");
}

Client::~Client()
{
  this->StopBeats();
  if (this->Connected_.load() && !this->Down_.load())
    this->Close();
}

bool Client::Connect(const cmp::Params &want, bool wantCompression,
                     double timeoutSeconds)
{
  HelloInfo hello;
  hello.Codec = want;
  hello.WantCompression = wantCompression;
  hello.MeshName = this->MeshName_;
  const std::vector<std::uint8_t> body = EncodeHello(hello);

  FrameHeader h;
  h.Kind = FrameKind::Hello;
  h.SendTime = RealNow();
  const std::vector<std::uint8_t> img =
    EncodeFrame(h, body.data(), body.size());

  const std::size_t chunk = GetConfig().MaxChunkBytes;
  {
    std::lock_guard<std::mutex> lock(this->SendMutex_);
    if (this->Port_->SendChunked(img.data(), img.size(), chunk,
                                 timeoutSeconds) != IoStatus::Ok)
      return false;
  }

  // wait for the Welcome (or a Reject) with a real-time deadline
  const double deadline = RealNow() + timeoutSeconds;
  FrameAssembler assembler;
  while (true)
  {
    const double left = deadline - RealNow();
    if (left <= 0.0)
      return false;
    std::vector<std::uint8_t> msg;
    const IoStatus st = this->Port_->Recv(msg, left);
    if (st != IoStatus::Ok)
      return false;
    std::vector<std::uint8_t> wire;
    if (!assembler.Feed(std::move(msg), wire))
      continue;

    Frame f = DecodeFrame(std::move(wire));
    if (f.Header.Kind == FrameKind::Welcome)
    {
      this->Welcome_ = DecodeWelcome(f.Payload.data(), f.Payload.size());
      this->RejectReason_.clear();
      this->Connected_.store(true);
      return true;
    }
    if (f.Header.Kind == FrameKind::Reject)
    {
      this->RejectReason_.assign(f.Payload.begin(), f.Payload.end());
      return false;
    }
    // anything else on a half-open connection is a protocol error
    return false;
  }
}

bool Client::SendFrame(std::uint64_t step, const void *payload,
                       std::size_t bytes, std::size_t rawBytes,
                       bool compressed)
{
  if (!this->Connected_.load() || this->Down_.load())
    return false;
  this->SendSeq_.fetch_add(1);

  if (vp::fault::ShouldDropFrame())
    return false; // lost in transit: the ring never sees it

  const double delay = vp::fault::FrameDelay();
  if (delay > 0.0)
  {
    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    vp::ThisClock().Advance(delay);
  }

  FrameHeader h;
  h.Kind = FrameKind::Data;
  h.Session = this->Welcome_.Session;
  h.Flags = compressed ? kFrameFlagCompressed : 0;
  h.Step = step;
  h.SendTime = RealNow();
  h.RawBytes = rawBytes;
  const std::vector<std::uint8_t> img = EncodeFrame(h, payload, bytes);
  const std::size_t chunk = GetConfig().MaxChunkBytes;

  std::lock_guard<std::mutex> lock(this->SendMutex_);

  if (vp::fault::ShouldCrashSend())
  {
    // die mid-frame: announce the full chunk stream, deliver at most
    // one chunk, then the connection drops — the server's assembler is
    // left mid-message (a short read)
    const std::size_t limit = std::max<std::size_t>(1, chunk);
    const std::uint64_t nChunks =
      (static_cast<std::uint64_t>(img.size()) + limit - 1) / limit;
    std::vector<std::uint8_t> header(16);
    for (int i = 0; i < 8; ++i)
    {
      header[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(
        static_cast<std::uint64_t>(img.size()) >> (8 * i));
      header[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>(nChunks >> (8 * i));
    }
    this->Port_->Send(std::move(header), /*timeout=*/1.0);
    if (nChunks > 1)
    {
      std::vector<std::uint8_t> first(img.begin(),
                                      img.begin() +
                                        static_cast<std::ptrdiff_t>(limit));
      this->Port_->Send(std::move(first), /*timeout=*/1.0);
    }
    this->Crash();
    return false;
  }

  if (this->Port_->SendChunked(img.data(), img.size(), chunk) != IoStatus::Ok)
  {
    this->Down_.store(true);
    return false;
  }
  this->Delivered_.fetch_add(1);
  UpdateStats([](ServiceStats &st) { ++st.FramesSent; });
  return true;
}

void Client::Heartbeat()
{
  if (!this->Connected_.load() || this->Down_.load())
    return;
  // a send already in flight on another thread proves liveness by
  // itself, and two concurrent chunk streams would interleave on the
  // ring — skip the beat rather than wait behind a (possibly blocked)
  // data frame
  std::unique_lock<std::mutex> lock(this->SendMutex_, std::try_to_lock);
  if (!lock.owns_lock())
    return;
  FrameHeader h;
  h.Kind = FrameKind::Heartbeat;
  h.Session = this->Welcome_.Session;
  h.SendTime = RealNow();
  // piggyback the last measured RTT (u64 LE microseconds; 0 = none yet)
  // so the server's per-session latency signal stays live without a
  // dedicated report frame
  std::uint8_t rtt[8];
  const std::uint64_t us = this->LastRttUs_.load();
  for (int i = 0; i < 8; ++i)
    rtt[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(us >> (8 * i));
  const std::vector<std::uint8_t> img = EncodeFrame(h, rtt, sizeof(rtt));
  // a full ring means the session has buffered traffic, which already
  // proves liveness — dropping the beat is fine (timeout 0). The send
  // is all-or-nothing: a beat that fits only partially would leave a
  // dangling announced transfer and corrupt the stream.
  this->Port_->SendChunkedAtomic(img.data(), img.size(),
                                 GetConfig().MaxChunkBytes, /*timeout=*/0.0);
}

bool Client::SendSteer(const void *payload, std::size_t bytes,
                       std::uint64_t version)
{
  if (!this->Connected_.load() || this->Down_.load())
    return false;
  FrameHeader h;
  h.Kind = FrameKind::Steer;
  h.Session = this->Welcome_.Session;
  h.Step = version;
  h.SendTime = RealNow();
  h.RawBytes = bytes;
  const std::vector<std::uint8_t> img = EncodeFrame(h, payload, bytes);
  std::lock_guard<std::mutex> lock(this->SendMutex_);
  // atomic so a steer can never interleave with a concurrent data frame
  // or heartbeat on the ring
  return this->Port_->SendChunkedAtomic(img.data(), img.size(),
                                        GetConfig().MaxChunkBytes,
                                        /*timeout=*/1.0) == IoStatus::Ok;
}

bool Client::Poll(Frame &out, double timeoutSeconds)
{
  if (this->Down_.load())
    return false;
  const double deadline = RealNow() + timeoutSeconds;
  std::lock_guard<std::mutex> lock(this->RecvMutex_);
  while (true)
  {
    std::vector<std::uint8_t> msg;
    IoStatus st;
    if (timeoutSeconds <= 0.0)
    {
      st = this->Port_->TryRecv(msg);
    }
    else
    {
      const double left = deadline - RealNow();
      st = left > 0.0 ? this->Port_->Recv(msg, left) : IoStatus::Timeout;
    }
    if (st != IoStatus::Ok)
      return false;

    try
    {
      std::vector<std::uint8_t> wire;
      if (!this->Rx_.Feed(std::move(msg), wire))
        continue;
      Frame f = DecodeFrame(std::move(wire));
      if (f.Header.Kind == FrameKind::HeartbeatAck)
      {
        // the ack echoes our beat's send stamp: now - stamp is the RTT
        const double rtt = RealNow() - f.Header.SendTime;
        this->LastRttUs_.store(static_cast<std::uint64_t>(
          std::max(1.0, rtt * 1e6)));
        continue;
      }
      if (f.Header.Kind == FrameKind::Push)
      {
        out = std::move(f);
        return true;
      }
      continue; // anything else on this direction is not ours to act on
    }
    catch (const std::exception &)
    {
      this->Rx_.Reset(); // a malformed stream: drop the partial state
      return false;
    }
  }
}

void Client::StartHeartbeats()
{
  if (this->Beats_.joinable() || !this->Connected_.load())
    return;
  this->BeatsStop_.store(false);
  const int intervalMs = std::max(1, this->Welcome_.HeartbeatMs);
  const std::uint64_t token = vp::check::OnThreadSpawn();
  this->Beats_ = std::thread(
    [this, intervalMs, token]
    {
      vp::check::OnThreadStart(token);
      while (!this->BeatsStop_.load())
      {
        std::this_thread::sleep_for(
          std::chrono::milliseconds(std::max(1, intervalMs / 2)));
        if (this->BeatsStop_.load())
          break;
        this->Heartbeat();
      }
      this->BeatsEndToken_.store(vp::check::OnThreadEnd());
    });
}

void Client::StopBeats()
{
  if (!this->Beats_.joinable())
    return;
  this->BeatsStop_.store(true);
  this->Beats_.join();
  vp::check::OnThreadJoin(this->BeatsEndToken_.load());
}

void Client::Close()
{
  this->StopBeats();
  if (this->Connected_.load() && !this->Down_.load())
  {
    FrameHeader h;
    h.Kind = FrameKind::Goodbye;
    h.Session = this->Welcome_.Session;
    h.SendTime = RealNow();
    const std::vector<std::uint8_t> img = EncodeFrame(h, nullptr, 0);
    std::lock_guard<std::mutex> lock(this->SendMutex_);
    this->Port_->SendChunkedAtomic(img.data(), img.size(),
                                   GetConfig().MaxChunkBytes, /*timeout=*/1.0);
    this->Port_->CloseTx();
  }
  this->Connected_.store(false);
  this->Down_.store(true);
}

void Client::Crash()
{
  // never joins its own heartbeat thread from that thread; Crash is
  // called from the simulation thread in every harness
  this->StopBeats();
  this->Port_->Kill();
  this->Connected_.store(false);
  this->Down_.store(true);
}

} // namespace svc
