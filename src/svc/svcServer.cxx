#include "svcServer.h"

#include "vpChecker.h"
#include "vpLoadTracker.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace svc
{

namespace
{
double RealNow()
{
  return std::chrono::duration<double>(
           std::chrono::steady_clock::now().time_since_epoch())
    .count();
}

/// Interactive viewer sessions announce themselves with a "viz:" mesh
/// prefix in their Hello; the dispatcher serves them first each round
/// and places their frames with the Interactive latency class.
bool IsVizMesh(const std::string &mesh)
{
  return mesh.rfind("viz:", 0) == 0;
}
} // namespace

const char *SessionEndName(SessionEnd e)
{
  switch (e)
  {
    case SessionEnd::Closed: return "closed";
    case SessionEnd::Reaped: return "reaped";
    case SessionEnd::ShortRead: return "short-read";
    case SessionEnd::Error: return "error";
  }
  return "unknown";
}

Server::Server(FrameHandler handler, ServiceConfig cfg)
  : Config_(cfg), Handler_(std::move(handler))
{
  if (!this->Handler_)
    throw std::invalid_argument("svc::Server: null frame handler");
}

Server::~Server()
{
  this->Stop();
}

void Server::SetSessionCallbacks(OpenHandler onOpen, CloseHandler onClose)
{
  this->OnOpen_ = std::move(onOpen);
  this->OnClose_ = std::move(onClose);
}

void Server::SetSteerHandler(SteerHandler onSteer)
{
  this->OnSteer_ = std::move(onSteer);
}

bool Server::Publish(std::uint32_t session, std::uint64_t step,
                     const void *payload, std::size_t bytes,
                     std::size_t rawBytes, bool compressed)
{
  std::shared_ptr<Remote> r;
  {
    std::lock_guard<std::mutex> lock(this->RemoteMutex_);
    auto it = this->Remotes_.find(session);
    if (it == this->Remotes_.end())
      return false;
    r = it->second;
  }

  FrameHeader h;
  h.Kind = FrameKind::Push;
  h.Session = session;
  h.Flags = compressed ? kFrameFlagCompressed : 0;
  h.Step = step;
  h.SendTime = RealNow();
  h.RawBytes = rawBytes;
  std::vector<std::uint8_t> img = EncodeFrame(h, payload, bytes);

  std::uint64_t drops = 0;
  {
    std::lock_guard<std::mutex> lock(r->Mutex);
    r->Out.emplace_back(std::move(img));
    const auto depth =
      static_cast<std::size_t>(std::max<long>(1, this->Config_.PushDepth));
    while (r->Out.size() > depth)
    {
      r->Out.pop_front(); // a slow viewer loses old frames, never stalls us
      ++drops;
    }
  }
  UpdateStats(
    [&](ServiceStats &st)
    {
      ++st.FramesPushed;
      st.PushDrops += drops;
    });
  return true;
}

std::uint64_t Server::SessionRttUs(std::uint32_t session) const
{
  std::lock_guard<std::mutex> lock(this->RemoteMutex_);
  auto it = this->Remotes_.find(session);
  return it == this->Remotes_.end() ? 0 : it->second->RttUs.load();
}

void Server::Start()
{
  if (this->Running_.exchange(true))
    return;
  this->StopRequested_.store(false);
  this->WorkersStop_.store(false);

  // populate the pool fully before spawning any thread: WorkerLoop
  // indexes Workers_, which must not reallocate under a running worker
  for (int w = 0; w < this->Config_.Workers; ++w)
  {
    auto worker = std::make_unique<Worker>();
    worker->SpawnToken = vp::check::OnThreadSpawn();
    this->Workers_.emplace_back(std::move(worker));
  }
  for (int w = 0; w < this->Config_.Workers; ++w)
    this->Workers_[static_cast<std::size_t>(w)]->Thread =
      std::thread([this, w] { this->WorkerLoop(w); });

  this->DispatcherSpawnToken_ = vp::check::OnThreadSpawn();
  this->Dispatcher_ = std::thread([this] { this->DispatchLoop(); });
}

void Server::Stop()
{
  if (!this->Running_.load())
    return;
  this->StopRequested_.store(true);

  if (this->Dispatcher_.joinable())
  {
    this->Dispatcher_.join();
    vp::check::OnThreadJoin(this->DispatcherEndToken_);
  }

  this->WorkersStop_.store(true);
  for (auto &w : this->Workers_)
    w->Cv.notify_all();
  for (auto &w : this->Workers_)
  {
    if (w->Thread.joinable())
    {
      w->Thread.join();
      vp::check::OnThreadJoin(w->EndToken);
    }
  }
  this->Workers_.clear();
  this->Running_.store(false);
}

std::shared_ptr<Port> Server::Connect()
{
  auto link = std::make_shared<Channel>(this->Config_.RingBytes,
                                        this->Config_.RingMessages);
  {
    std::lock_guard<std::mutex> lock(this->PendingMutex_);
    this->Pending_.push_back(link);
  }
  return std::make_shared<Port>(link, /*clientSide=*/true);
}

int Server::ActiveSessions() const
{
  return this->Active_.load();
}

std::uint64_t Server::Ended(SessionEnd why) const
{
  return this->EndCounts_[static_cast<int>(why)].load();
}

std::vector<double> Server::Latencies() const
{
  std::lock_guard<std::mutex> lock(this->LatencyMutex_);
  return this->Latencies_;
}

bool Server::AdmitPending()
{
  std::vector<std::shared_ptr<Channel>> fresh;
  {
    std::lock_guard<std::mutex> lock(this->PendingMutex_);
    fresh.swap(this->Pending_);
  }
  for (auto &link : fresh)
  {
    auto s = std::make_unique<Session>();
    s->Link = link;
    s->Io = std::make_unique<Port>(link, /*clientSide=*/false);
    s->LastHeard = RealNow();
    this->Sessions_.emplace_back(std::move(s));
  }
  return !fresh.empty();
}

int Server::PlaceFrame(const Session &s, const Frame &f)
{
  sched::PlacementRequest req;
  req.Rank = static_cast<int>(s.Id);
  req.DevicesPerNode = this->Config_.Workers;
  req.Node = kServicePlaneNode;
  // size the hint from the frame so cost-model placement has something
  // real to predict with: raw elements moved and touched once
  req.Hint.Elements = static_cast<std::size_t>(f.Header.RawBytes / 8);
  req.Hint.MoveBytes = static_cast<std::size_t>(f.Header.PayloadBytes);
  req.Hint.Latency = IsVizMesh(s.Hello.MeshName)
                       ? sched::LatencyClass::Interactive
                       : sched::LatencyClass::Throughput;
  const int d = sched::GetPolicy(this->Config_.Policy).SelectDevice(req);
  if (d < 0 || d >= this->Config_.Workers)
    return static_cast<int>(s.Id) % this->Config_.Workers;
  return d;
}

void Server::HandleWire(Session &s, std::vector<std::uint8_t> &&wire)
{
  Frame f = DecodeFrame(std::move(wire));

  switch (f.Header.Kind)
  {
    case FrameKind::Hello:
    {
      if (s.Welcomed)
        throw std::runtime_error("svc: duplicate hello on session " +
                                 std::to_string(s.Id));
      const HelloInfo hello = DecodeHello(f.Payload.data(), f.Payload.size());
      const bool slotFree = this->Active_.load() < this->Config_.MaxSessions;
      if (hello.Protocol != kProtocolVersion || !slotFree)
      {
        const std::string why = !slotFree ? "session pool full"
                                          : "unsupported protocol";
        FrameHeader rh;
        rh.Kind = FrameKind::Reject;
        const std::vector<std::uint8_t> img =
          EncodeFrame(rh, why.data(), why.size());
        // count before the send: the client treats the Reject frame as
        // the synchronization point and may read Stats() immediately
        UpdateStats([](ServiceStats &st) { ++st.SessionsRejected; });
        s.Io->SendChunked(img.data(), img.size(),
                          this->Config_.MaxChunkBytes, /*timeout=*/1.0);
        s.Draining = true;
        s.Why = SessionEnd::Closed;
        return;
      }

      s.Hello = hello;
      s.Id = this->NextSession_++;
      s.Welcomed = true;
      this->Active_.fetch_add(1);

      WelcomeInfo w;
      w.Session = s.Id;
      if (this->Config_.HaveCodecOverride)
      {
        w.Codec = this->Config_.CodecOverride;
        w.UseCompression = w.Codec.Codec != cmp::CodecId::None;
      }
      else
      {
        w.Codec = hello.Codec;
        w.UseCompression = hello.WantCompression;
      }
      w.QueueDepth = this->Config_.QueueDepth;
      w.Pressure = this->Config_.Pressure;
      w.HeartbeatMs = this->Config_.HeartbeatMs;

      s.Out = std::make_shared<Remote>();
      {
        std::lock_guard<std::mutex> lock(this->RemoteMutex_);
        this->Remotes_[s.Id] = s.Out;
      }

      FrameHeader wh;
      wh.Kind = FrameKind::Welcome;
      wh.Session = s.Id;
      const std::vector<std::uint8_t> body = EncodeWelcome(w);
      const std::vector<std::uint8_t> img =
        EncodeFrame(wh, body.data(), body.size());
      UpdateStats([](ServiceStats &st) { ++st.SessionsOpened; });
      s.Io->SendChunked(img.data(), img.size(), this->Config_.MaxChunkBytes,
                        /*timeout=*/1.0);
      if (this->OnOpen_)
        this->OnOpen_(s.Id, s.Hello);
      return;
    }

    case FrameKind::Heartbeat:
    {
      // the beat optionally carries the client's last measured RTT as a
      // u64 LE microsecond count (old zero-payload beats stay valid)
      std::uint64_t rtt = 0;
      if (f.Payload.size() >= 8)
        rtt = cmp::LoadLE64(f.Payload.data());
      UpdateStats(
        [&](ServiceStats &st)
        {
          ++st.Heartbeats;
          if (rtt)
          {
            ++st.RttCount;
            st.RttSumUs += rtt;
            st.RttMaxUs = std::max(st.RttMaxUs, rtt);
          }
        });
      if (s.Out && rtt)
        s.Out->RttUs.store(rtt);
      if (s.Welcomed)
      {
        // echo the beat's send stamp so the client can measure RTT;
        // best effort — a full return ring just skips this ack
        FrameHeader ah;
        ah.Kind = FrameKind::HeartbeatAck;
        ah.Session = s.Id;
        ah.SendTime = f.Header.SendTime;
        const std::vector<std::uint8_t> img = EncodeFrame(ah, nullptr, 0);
        if (s.Io->SendChunkedAtomic(img.data(), img.size(),
                                    this->Config_.MaxChunkBytes,
                                    /*timeout=*/0.0) == IoStatus::Ok)
          UpdateStats([](ServiceStats &st) { ++st.HeartbeatAcks; });
      }
      return;
    }

    case FrameKind::Goodbye:
      s.Draining = true;
      s.Why = SessionEnd::Closed;
      return;

    case FrameKind::Data:
    {
      if (!s.Welcomed || f.Header.Session != s.Id)
      {
        UpdateStats([](ServiceStats &st) { ++st.FramesRejected; });
        return;
      }
      // resolve the mesh name now: by the time a worker executes this
      // frame the session may already be closed and reclaimed
      f.Header.Mesh = s.Hello.MeshName;
      const std::uint64_t raw = f.Header.RawBytes;
      const std::uint64_t wireBytes = kFrameHeaderBytes + f.Header.PayloadBytes;
      const Admit a = s.Queue.Push(std::move(f), this->Config_.QueueDepth,
                                   this->Config_.Pressure);
      const std::uint64_t hw = s.Queue.HighWater();
      UpdateStats(
        [&](ServiceStats &st)
        {
          st.BytesRaw += raw;
          st.BytesWire += wireBytes;
          st.QueueHighWater = std::max<std::uint64_t>(st.QueueHighWater, hw);
          switch (a)
          {
            case Admit::Queued: ++st.FramesAccepted; break;
            case Admit::DroppedOldest:
              ++st.FramesAccepted;
              ++st.FramesDropped;
              break;
            case Admit::Coalesced:
              ++st.FramesAccepted;
              ++st.FramesCoalesced;
              break;
            case Admit::WouldBlock: ++st.FramesRejected; break;
          }
        });
      return;
    }

    case FrameKind::Steer:
    {
      if (!s.Welcomed || f.Header.Session != s.Id)
      {
        UpdateStats([](ServiceStats &st) { ++st.FramesRejected; });
        return;
      }
      // steering is control plane: dispatched here, ahead of every
      // queued data frame, so a command is never stuck behind bulk work
      UpdateStats([](ServiceStats &st) { ++st.Steers; });
      if (this->OnSteer_)
        this->OnSteer_(s.Id, f.Header, std::move(f.Payload));
      return;
    }

    case FrameKind::Welcome:
    case FrameKind::Reject:
    case FrameKind::Push:
    case FrameKind::HeartbeatAck:
      // server-bound streams must not carry server-to-client kinds
      throw std::runtime_error("svc: unexpected frame kind on session " +
                               std::to_string(s.Id));
  }
}

bool Server::PollSession(Session &s)
{
  bool moved = false;
  // bound the per-session work per round so one chatty tenant cannot
  // starve the others
  for (int i = 0; i < 8; ++i)
  {
    if (s.Draining ||
        s.Queue.Full(this->Config_.QueueDepth, this->Config_.Pressure))
      break; // `block`: leave traffic in the ring, the client stalls

    std::vector<std::uint8_t> msg;
    const IoStatus st = s.Io->TryRecv(msg);
    if (st == IoStatus::Timeout)
      break; // nothing buffered
    if (st == IoStatus::Closed || st == IoStatus::Dead)
    {
      if (s.Assembler.MidMessage())
      {
        s.Why = SessionEnd::ShortRead;
        UpdateStats([](ServiceStats &stt) { ++stt.ShortReads; });
      }
      else
      {
        s.Why = st == IoStatus::Closed ? SessionEnd::Closed
                                       : SessionEnd::Reaped;
      }
      s.Draining = true;
      moved = true;
      break;
    }

    s.LastHeard = RealNow();
    moved = true;
    try
    {
      std::vector<std::uint8_t> wire;
      if (s.Assembler.Feed(std::move(msg), wire))
        this->HandleWire(s, std::move(wire));
    }
    catch (const std::exception &)
    {
      UpdateStats([](ServiceStats &stt) { ++stt.FramesRejected; });
      s.Why = SessionEnd::Error;
      s.Draining = true;
      break;
    }
  }

  // liveness: a silent, empty connection past its heartbeat budget is a
  // dead client; one with buffered traffic or a blocked queue is not
  if (!s.Draining)
  {
    const double budget = 1e-3 * this->Config_.HeartbeatMs *
                          this->Config_.MissedHeartbeats;
    if (s.Io->RxPending() == 0 && RealNow() - s.LastHeard > budget &&
        !s.Queue.Full(this->Config_.QueueDepth, this->Config_.Pressure))
    {
      s.Why = s.Assembler.MidMessage() ? SessionEnd::ShortRead
                                       : SessionEnd::Reaped;
      if (s.Assembler.MidMessage())
        UpdateStats([](ServiceStats &stt) { ++stt.ShortReads; });
      s.Draining = true;
      moved = true;
    }
  }
  return moved;
}

bool Server::PushSession(Session &s)
{
  if (!s.Out || s.Draining)
    return false;
  bool moved = false;
  while (true)
  {
    std::vector<std::uint8_t> img;
    {
      std::lock_guard<std::mutex> lock(s.Out->Mutex);
      if (s.Out->Out.empty())
        break;
      img = std::move(s.Out->Out.front());
      s.Out->Out.pop_front();
    }
    // all-or-nothing with no wait: a full return ring keeps the frame
    // for the next round instead of blocking the dispatcher
    const IoStatus st = s.Io->SendChunkedAtomic(
      img.data(), img.size(), this->Config_.MaxChunkBytes, /*timeout=*/0.0);
    if (st == IoStatus::Ok)
    {
      moved = true;
      continue;
    }
    if (st == IoStatus::Closed || st == IoStatus::Dead)
    {
      s.Draining = true; // the viewer is gone
      return true;
    }
    std::lock_guard<std::mutex> lock(s.Out->Mutex);
    s.Out->Out.emplace_front(std::move(img));
    break;
  }
  return moved;
}

bool Server::DrainSession(Session &s)
{
  bool moved = false;
  Frame f;
  while (s.Queue.Pop(f))
  {
    const int w = this->PlaceFrame(s, f);
    Worker &wk = *this->Workers_[static_cast<std::size_t>(w)];
    if (wk.InboxSize.load() >= 2)
    {
      // the pool is saturated here: keep the frame at the head and let
      // the next round retry (the retry re-consults the policy, whose
      // recorded backlog now steers it elsewhere)
      s.Queue.Requeue(std::move(f));
      break;
    }
    {
      std::lock_guard<std::mutex> lock(wk.Mutex);
      wk.Inbox.emplace_back(std::move(f));
    }
    wk.InboxSize.fetch_add(1);
    wk.Cv.notify_one();
    moved = true;
  }
  return moved;
}

void Server::DispatchLoop()
{
  vp::check::OnThreadStart(this->DispatcherSpawnToken_);

  while (true)
  {
    const bool stopping = this->StopRequested_.load();
    bool progress = this->AdmitPending();

    // viz-aware dispatch priority: interactive viewer sessions are
    // polled (steers dispatch inside the poll), pushed, and drained
    // before the throughput tenants each round
    for (int pass = 0; pass < 2; ++pass)
      for (auto &sp : this->Sessions_)
      {
        Session &s = *sp;
        if ((pass == 0) != IsVizMesh(s.Hello.MeshName))
          continue;
        progress |= this->PollSession(s);
        progress |= this->PushSession(s);
        progress |= this->DrainSession(s);
      }

    // finalize drained sessions
    for (std::size_t i = 0; i < this->Sessions_.size();)
    {
      Session &s = *this->Sessions_[i];
      if (s.Draining && s.Queue.Empty())
      {
        this->EndSession(s, s.Why);
        this->Sessions_.erase(this->Sessions_.begin() +
                              static_cast<std::ptrdiff_t>(i));
        progress = true;
      }
      else
      {
        ++i;
      }
    }

    if (stopping)
    {
      // final pass: push everything still queued to the workers
      // (ignoring the inbox bound), then leave
      for (auto &sp : this->Sessions_)
      {
        Session &s = *sp;
        Frame f;
        while (s.Queue.Pop(f))
        {
          const int w = this->PlaceFrame(s, f);
          Worker &wk = *this->Workers_[static_cast<std::size_t>(w)];
          {
            std::lock_guard<std::mutex> lock(wk.Mutex);
            wk.Inbox.emplace_back(std::move(f));
          }
          wk.InboxSize.fetch_add(1);
          wk.Cv.notify_one();
        }
        // a session caught mid-drain keeps its already-determined cause
        this->EndSession(s, s.Draining ? s.Why : SessionEnd::Closed);
      }
      this->Sessions_.clear();
      break;
    }

    if (!progress)
      std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  this->DispatcherEndToken_ = vp::check::OnThreadEnd();
}

void Server::EndSession(Session &s, SessionEnd why)
{
  if (s.Welcomed)
    this->Active_.fetch_sub(1);
  this->EndCounts_[static_cast<int>(why)].fetch_add(1);
  UpdateStats(
    [&](ServiceStats &st)
    {
      switch (why)
      {
        case SessionEnd::Closed: ++st.SessionsClosed; break;
        case SessionEnd::Reaped:
        case SessionEnd::ShortRead:
        case SessionEnd::Error: ++st.SessionsReaped; break;
      }
    });
  s.Assembler.Reset();
  {
    std::lock_guard<std::mutex> lock(this->RemoteMutex_);
    this->Remotes_.erase(s.Id);
  }
  // wake a client blocked in Send (its ring will not drain again) and
  // tell one blocked in Recv that the server is done with it
  s.Link->ToServer.Close();
  s.Link->ToClient.Close();
  if (this->OnClose_ && s.Welcomed)
    this->OnClose_(s.Id, why);
}

void Server::WorkerLoop(int index)
{
  Worker &me = *this->Workers_[static_cast<std::size_t>(index)];
  vp::check::OnThreadStart(me.SpawnToken);

  while (true)
  {
    Frame f;
    {
      std::unique_lock<std::mutex> lock(me.Mutex);
      me.Cv.wait(lock,
                 [&]
                 { return !me.Inbox.empty() || this->WorkersStop_.load(); });
      if (me.Inbox.empty())
        break; // stop requested and fully drained
      f = std::move(me.Inbox.front());
      me.Inbox.pop_front();
    }
    me.InboxSize.fetch_sub(1);

    try
    {
      this->Handler_(index, f.Header, std::move(f.Payload));
    }
    catch (...)
    {
      // framing validates header/length consistency, not payload
      // content; a garbled payload (the handler throwing) must cost
      // only this frame, not the whole multi-tenant process
      UpdateStats([](ServiceStats &st) { ++st.FramesRejected; });
      continue;
    }

    const double latency = RealNow() - f.Header.SendTime;
    {
      std::lock_guard<std::mutex> lock(this->LatencyMutex_);
      this->Latencies_.push_back(latency);
    }
    UpdateStats([](ServiceStats &st) { ++st.FramesExecuted; });
  }

  me.EndToken = vp::check::OnThreadEnd();
}

} // namespace svc
