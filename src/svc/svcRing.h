#ifndef svcRing_h
#define svcRing_h

/// @file svcRing.h
/// The service transport boundary: bounded shared-memory rings. A ring
/// models one direction of a client<->server connection as a bounded
/// descriptor queue with a byte budget — the moral equivalent of the
/// shared-memory segment an on-node in-transit transport (ADIOS SST's
/// shm data plane, libIS) places between a simulation and an analysis
/// daemon. Only bytes cross the boundary: the two sides share no
/// pointers, no locks beyond the ring's own, and no virtual-clock state.
///
/// Capacity is the flow-control primitive. A producer pushing into a
/// full ring blocks (bounded real time, optional timeout); a consumer
/// that stops draining therefore exerts end-to-end backpressure all the
/// way into the client's Send call, which is exactly how the service
/// implements the `block` per-session policy without any extra
/// machinery.
///
/// Lifecycle mirrors a socket: Close() is a graceful shutdown (readers
/// drain buffered messages, then see Closed), MarkDead() is an abrupt
/// peer death (readers drain what already made it into the ring, then
/// see Dead — buffered bytes of a half-written frame are how the server
/// observes a short read).

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

namespace svc
{

/// Result of a ring/port transfer.
enum class IoStatus : int
{
  Ok = 0,  ///< a message moved
  Timeout, ///< nothing moved within the deadline
  Closed,  ///< peer closed gracefully and the ring is drained
  Dead     ///< peer died abruptly and the ring is drained
};

/// Stable lower-case name for an IoStatus (diagnostics).
const char *IoStatusName(IoStatus s);

/// One direction of a connection: a bounded byte-budgeted message queue.
class ShmRing
{
public:
  /// `capacityBytes` bounds the payload bytes buffered in the ring;
  /// `maxMessages` bounds the descriptor count. A single message larger
  /// than the byte budget is still accepted (alone) so oversized chunks
  /// degrade to lock-step transfer instead of deadlocking.
  ShmRing(std::size_t capacityBytes, std::size_t maxMessages);

  /// Move `msg` into the ring. Blocks while full. `timeoutSeconds < 0`
  /// means wait forever. Returns Ok, Timeout (msg untouched), or
  /// Closed/Dead when the ring was shut down.
  IoStatus Push(std::vector<std::uint8_t> &&msg, double timeoutSeconds = -1.0);

  /// Move every message in `msgs` into the ring as one atomic admission:
  /// either all of them are enqueued (contiguously, no interleaving with
  /// concurrent pushers) or none are (Timeout/Closed/Dead, msgs
  /// untouched). Headroom for the whole batch — descriptor count and
  /// byte budget — is checked under one lock, so a partially admitted
  /// batch is impossible. Intended for small control transfers; an
  /// oversized batch is admitted alone into an empty ring, like Push.
  IoStatus PushAll(std::vector<std::vector<std::uint8_t>> &&msgs,
                   double timeoutSeconds = -1.0);

  /// Move the oldest message out. Blocks up to `timeoutSeconds` for one
  /// to arrive (0 = poll, < 0 = wait forever). Buffered messages are
  /// delivered even after Close/MarkDead; the terminal status is only
  /// reported once the ring is drained.
  IoStatus Pop(std::vector<std::uint8_t> &out, double timeoutSeconds);

  /// Graceful shutdown: no further pushes; pops drain then see Closed.
  void Close();

  /// Abrupt shutdown: no further pushes; pops drain then see Dead.
  void MarkDead();

  /// Messages currently buffered (racy snapshot; used for liveness: a
  /// peer with buffered traffic is not a dead peer).
  std::size_t Pending() const;

  /// Payload bytes currently buffered (racy snapshot).
  std::size_t PendingBytes() const;

  /// Total payload bytes ever pushed (the wire-byte counter).
  std::uint64_t BytesPushed() const;

private:
  mutable std::mutex Mutex_;
  std::condition_variable CanPush_;
  std::condition_variable CanPop_;
  std::deque<std::vector<std::uint8_t>> Queue_;
  std::size_t CapacityBytes_;
  std::size_t MaxMessages_;
  std::size_t UsedBytes_ = 0;
  std::uint64_t PushedBytes_ = 0;
  bool Closed_ = false;
  bool Dead_ = false;
};

/// A full-duplex connection: one ring per direction.
struct Channel
{
  Channel(std::size_t ringBytes, std::size_t maxMessages)
    : ToServer(ringBytes, maxMessages), ToClient(ringBytes, maxMessages)
  {
  }

  ShmRing ToServer;
  ShmRing ToClient;
};

/// One endpoint's view of a Channel: Send writes the outgoing ring,
/// Recv reads the incoming one. The client holds the client-side port,
/// the server dispatcher the server-side port; both share the Channel
/// by shared_ptr but touch only ring bytes.
class Port
{
public:
  Port(std::shared_ptr<Channel> ch, bool clientSide)
    : Channel_(std::move(ch)), ClientSide_(clientSide)
  {
  }

  /// Send one message (blocking while the peer's ring is full; charges
  /// the sender's virtual clock with the platform message cost).
  IoStatus Send(std::vector<std::uint8_t> &&msg, double timeoutSeconds = -1.0);

  /// Receive one message; 0 = poll, < 0 = wait forever.
  IoStatus Recv(std::vector<std::uint8_t> &out, double timeoutSeconds);

  /// Non-blocking receive.
  IoStatus TryRecv(std::vector<std::uint8_t> &out) { return this->Recv(out, 0.0); }

  /// Send a payload of any size as minimpi's chunked wire format: a
  /// 16-byte header message (u64 total bytes, u64 chunk count, LE)
  /// followed by chunk messages of at most `maxChunkBytes`. Returns the
  /// first non-Ok status (a partially sent stream is exactly the short
  /// read the assembler must survive).
  IoStatus SendChunked(const void *data, std::size_t bytes,
                       std::size_t maxChunkBytes,
                       double timeoutSeconds = -1.0);

  /// SendChunked, but all-or-nothing: the chunk header and every chunk
  /// are admitted to the ring atomically (one ring lock), so neither a
  /// partial stream (dangling announced transfer) nor interleaving with
  /// a concurrent sender on the same port is possible. The whole
  /// payload must fit in the ring at once — use it for small control
  /// frames (Heartbeat, Goodbye), not bulk data.
  IoStatus SendChunkedAtomic(const void *data, std::size_t bytes,
                             std::size_t maxChunkBytes,
                             double timeoutSeconds = -1.0);

  /// Incoming messages waiting (liveness probe).
  std::size_t RxPending() const;

  /// Graceful close of this endpoint's outgoing direction.
  void CloseTx();

  /// Abrupt death of this endpoint: both directions die (a crashed
  /// process neither sends nor drains).
  void Kill();

private:
  ShmRing &Tx() { return this->ClientSide_ ? this->Channel_->ToServer : this->Channel_->ToClient; }
  ShmRing &Rx() { return this->ClientSide_ ? this->Channel_->ToClient : this->Channel_->ToServer; }
  const ShmRing &RxC() const { return this->ClientSide_ ? this->Channel_->ToClient : this->Channel_->ToServer; }

  std::shared_ptr<Channel> Channel_;
  bool ClientSide_;
};

} // namespace svc

#endif
