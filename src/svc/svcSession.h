#ifndef svcSession_h
#define svcSession_h

/// @file svcSession.h
/// Process-wide service configuration (the `<service>` XML element),
/// the svc::* counters exported through the profiler, and the
/// per-session bounded frame queue that applies the
/// sched::Backpressure semantics per tenant:
///
///  * `block`       — the dispatcher stops draining the session's ring
///                    while its queue is full; the ring fills and the
///                    client's Send blocks (end-to-end backpressure).
///  * `drop-oldest` — the oldest queued frame is discarded to admit the
///                    new one; the client never stalls.
///  * `coalesce`    — the newest queued frame is replaced, so the queue
///                    holds the freshest `depth` frames.

#include "cmpCodec.h"
#include "schedPipeline.h"
#include "schedPolicy.h"
#include "svcWire.h"

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>

namespace svc
{

/// Process-wide service plan (defaults match a small on-node pool).
struct ServiceConfig
{
  int MaxSessions = 8;    ///< concurrent tenants the server admits
  int Workers = 2;        ///< analysis worker threads in the pool
  long QueueDepth = 4;    ///< frames buffered per session (0 = unbounded)
  sched::Backpressure Pressure = sched::Backpressure::Block;
  sched::PolicyKind Policy = sched::PolicyKind::LeastLoaded;
  int HeartbeatMs = 50;        ///< advertised client heartbeat interval
  int MissedHeartbeats = 5;    ///< silent intervals before a reap
  std::size_t RingBytes = 1u << 20;  ///< per-direction ring byte budget
  std::size_t RingMessages = 64;     ///< per-direction descriptor budget
  std::size_t MaxChunkBytes = 64u * 1024; ///< chunk size on the rings
  long PushDepth = 2; ///< server->client frames buffered per session
  bool HaveCodecOverride = false; ///< server forces the frame codec
  cmp::Params CodecOverride;      ///< the forced codec when overridden
};

/// Replace the process-wide configuration (validated; throws
/// std::invalid_argument on nonsense).
void Configure(const ServiceConfig &cfg);

/// The active configuration.
ServiceConfig GetConfig();

/// Counters of everything the service plane did (process-wide, summed
/// over servers and clients; exported as profiler events).
struct ServiceStats
{
  std::uint64_t SessionsOpened = 0;  ///< Welcomes sent
  std::uint64_t SessionsRejected = 0;///< Hellos refused (pool full, bad proto)
  std::uint64_t SessionsClosed = 0;  ///< graceful Goodbyes completed
  std::uint64_t SessionsReaped = 0;  ///< dead tenants reclaimed
  std::uint64_t FramesSent = 0;      ///< client-side data frames shipped
  std::uint64_t FramesAccepted = 0;  ///< data frames queued for analysis
  std::uint64_t FramesDropped = 0;   ///< discarded by drop-oldest
  std::uint64_t FramesCoalesced = 0; ///< replaced by coalesce
  std::uint64_t FramesRejected = 0;  ///< malformed / wrong-session frames
  std::uint64_t FramesExecuted = 0;  ///< frames a worker finished
  std::uint64_t Heartbeats = 0;      ///< heartbeat frames seen
  std::uint64_t BytesRaw = 0;        ///< pre-compression payload bytes
  std::uint64_t BytesWire = 0;       ///< frame bytes as shipped
  std::uint64_t QueueHighWater = 0;  ///< max per-session queue depth seen
  std::uint64_t ShortReads = 0;      ///< sessions killed mid-frame
  std::uint64_t FramesPushed = 0;    ///< server->client frames published
  std::uint64_t PushDrops = 0;       ///< pushed frames discarded (drop-oldest)
  std::uint64_t Steers = 0;          ///< steer control frames dispatched
  std::uint64_t HeartbeatAcks = 0;   ///< heartbeat echoes the server returned
  std::uint64_t RttCount = 0;        ///< heartbeat RTT samples reported
  std::uint64_t RttSumUs = 0;        ///< sum of reported RTTs, microseconds
  std::uint64_t RttMaxUs = 0;        ///< max reported RTT, microseconds
};

/// Counters since the last ResetStats().
ServiceStats Stats();

/// Zero the counters (configuration is untouched).
void ResetStats();

/// Internal: mutate the counter block under its lock (one counter path
/// shared by the server, the client, and the tests).
void UpdateStats(const std::function<void(ServiceStats &)> &fn);

/// How a frame was admitted to (or refused by) a session queue.
enum class Admit : int
{
  Queued = 0,   ///< appended
  DroppedOldest,///< appended after discarding the oldest
  Coalesced,    ///< replaced the newest
  WouldBlock    ///< full under `block` — caller must not consume input
};

/// Bounded per-session frame queue (dispatcher-thread only; no locking).
class FrameQueue
{
public:
  /// Admit under the session's policy. `depth` <= 0 means unbounded.
  Admit Push(Frame &&f, long depth, sched::Backpressure pressure);

  /// True when Push would return WouldBlock.
  bool Full(long depth, sched::Backpressure pressure) const;

  bool Empty() const { return this->Q_.empty(); }
  std::size_t Size() const { return this->Q_.size(); }
  std::size_t HighWater() const { return this->HighWater_; }

  /// Oldest frame out; false when empty.
  bool Pop(Frame &out);

  /// Put a popped frame back at the head (dispatch retreated because
  /// the chosen worker's inbox was full).
  void Requeue(Frame &&f) { this->Q_.emplace_front(std::move(f)); }

  void Clear() { this->Q_.clear(); }

private:
  std::deque<Frame> Q_;
  std::size_t HighWater_ = 0;
};

} // namespace svc

#endif
