#ifndef svcWire_h
#define svcWire_h

/// @file svcWire.h
/// The service wire protocol. Every logical message on a service
/// connection is a *frame* — a fixed 48-byte header followed by a
/// payload — shipped across the ring boundary in minimpi's chunked
/// format (16-byte chunk header + chunks), so the same reassembly rules
/// and the same failure modes (short read = missing chunks) apply on
/// both transports.
///
/// Frame header, little endian:
///
///     off  0  u8[4]  magic "SVCF"
///     off  4  u8     protocol version (1)
///     off  5  u8     frame kind (FrameKind)
///     off  6  u16    reserved (0)
///     off  8  u32    session id (0 until a Welcome assigns one)
///     off 12  u32    flags (bit 0: payload is cmp-compressed)
///     off 16  u64    simulation step
///     off 24  f64    sender's real-time send stamp (seconds)
///     off 32  u64    payload bytes
///     off 40  u64    raw (pre-compression) payload bytes
///
/// Control payloads (Hello/Welcome) are themselves little-endian
/// structs defined here; Data payloads are opaque to the service (the
/// sensei glue puts serialized tables in them).

#include "cmpCodec.h"
#include "schedPipeline.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace svc
{

constexpr std::uint8_t kProtocolVersion = 1;
constexpr std::size_t kFrameHeaderBytes = 48;
constexpr std::uint32_t kFrameFlagCompressed = 1u << 0;

/// What a frame means.
enum class FrameKind : std::uint8_t
{
  Hello = 0,     ///< client -> server: open a session (HelloInfo payload)
  Welcome = 1,   ///< server -> client: session granted (WelcomeInfo payload)
  Reject = 2,    ///< server -> client: session refused (reason string)
  Data = 3,      ///< client -> server: one analysis frame
  Heartbeat = 4, ///< client -> server: liveness while idle
  Goodbye = 5,   ///< client -> server: graceful leave
  Steer = 6,     ///< client -> server: steering command (control plane)
  Push = 7,      ///< server -> client: pushed data (e.g. a rendered frame)
  HeartbeatAck = 8 ///< server -> client: heartbeat echo (RTT measurement)
};

/// Stable name for a frame kind (diagnostics).
const char *FrameKindName(FrameKind k);

/// Decoded frame header.
struct FrameHeader
{
  FrameKind Kind = FrameKind::Data;
  std::uint32_t Session = 0;
  std::uint32_t Flags = 0;
  std::uint64_t Step = 0;
  double SendTime = 0.0; ///< real-clock seconds at the sender
  std::uint64_t PayloadBytes = 0;
  std::uint64_t RawBytes = 0; ///< pre-compression size of the payload

  /// Server-side annotation, never on the wire: the mesh name the
  /// session negotiated in its Hello, attached by the dispatcher when
  /// the frame is queued. Frames of a session that has since closed
  /// still carry the right name when a worker finally executes them.
  std::string Mesh;
};

/// Append the 48-byte encoding of `h` to `out`.
void EncodeFrameHeader(const FrameHeader &h, std::vector<std::uint8_t> &out);

/// Decode a header from `bytes` (throws std::runtime_error on bad
/// magic/version/size).
FrameHeader DecodeFrameHeader(const std::uint8_t *bytes, std::size_t size);

/// Hello payload: what the client wants.
struct HelloInfo
{
  std::uint8_t Protocol = kProtocolVersion;
  cmp::Params Codec;    ///< requested frame codec
  bool WantCompression = false;
  std::string MeshName; ///< mesh the frames carry
};

/// Welcome payload: what the server granted.
struct WelcomeInfo
{
  std::uint32_t Session = 0;
  cmp::Params Codec; ///< codec the session must use
  bool UseCompression = false;
  long QueueDepth = 0;
  sched::Backpressure Pressure = sched::Backpressure::Block;
  int HeartbeatMs = 0; ///< interval the client should beat at
};

std::vector<std::uint8_t> EncodeHello(const HelloInfo &h);
HelloInfo DecodeHello(const std::uint8_t *bytes, std::size_t size);

std::vector<std::uint8_t> EncodeWelcome(const WelcomeInfo &w);
WelcomeInfo DecodeWelcome(const std::uint8_t *bytes, std::size_t size);

/// One complete frame off the wire.
struct Frame
{
  FrameHeader Header;
  std::vector<std::uint8_t> Payload;
};

/// Build the full wire image of a frame (header + payload) ready for
/// Port::SendChunked.
std::vector<std::uint8_t> EncodeFrame(const FrameHeader &h,
                                      const void *payload,
                                      std::size_t payloadBytes);

/// Parse a reassembled wire image back into a Frame (throws
/// std::runtime_error when the header and body disagree).
Frame DecodeFrame(std::vector<std::uint8_t> &&wire);

/// Incremental reassembly of the chunked stream: the dispatcher feeds
/// ring messages one at a time and gets complete frame images out, so a
/// slow client mid-frame never blocks the poll loop. A stream that ends
/// (ring dead) while MidMessage() is true is a short read.
class FrameAssembler
{
public:
  /// Feed one ring message. Returns true when `out` now holds a
  /// complete frame image. Throws std::runtime_error on a malformed
  /// stream (bad chunk header, chunk overrun).
  bool Feed(std::vector<std::uint8_t> &&msg, std::vector<std::uint8_t> &out);

  /// True while chunks of an announced transfer are still outstanding.
  bool MidMessage() const { return this->ChunksLeft_ != 0; }

  /// Drop any partial state (used when a session is reclaimed).
  void Reset();

private:
  std::vector<std::uint8_t> Buffer_;
  std::uint64_t TotalBytes_ = 0;
  std::uint64_t ChunksLeft_ = 0;
};

} // namespace svc

#endif
