#include "svcSession.h"

#include <algorithm>
#include <mutex>
#include <stdexcept>

namespace svc
{

namespace
{
struct Global
{
  std::mutex Mutex;
  ServiceConfig Config;
  ServiceStats Counts;
};

Global &Self()
{
  static Global g;
  return g;
}
} // namespace

void Configure(const ServiceConfig &cfg)
{
  if (cfg.MaxSessions < 1)
    throw std::invalid_argument("svc: max_sessions must be >= 1");
  if (cfg.Workers < 1)
    throw std::invalid_argument("svc: workers must be >= 1");
  if (cfg.QueueDepth < 0)
    throw std::invalid_argument("svc: queue_depth must be >= 0");
  if (cfg.HeartbeatMs < 1)
    throw std::invalid_argument("svc: heartbeat_ms must be >= 1");
  if (cfg.MissedHeartbeats < 1)
    throw std::invalid_argument("svc: missed_heartbeats must be >= 1");
  if (cfg.PushDepth < 1)
    throw std::invalid_argument("svc: push_depth must be >= 1");
  if (cfg.HaveCodecOverride &&
      cfg.CodecOverride.Codec == cmp::CodecId::Quantize &&
      cfg.CodecOverride.ErrorBound <= 0.0)
    throw std::invalid_argument(
      "svc: a quantize codec override requires error_bound > 0");

  Global &g = Self();
  std::lock_guard<std::mutex> lock(g.Mutex);
  g.Config = cfg;
}

ServiceConfig GetConfig()
{
  Global &g = Self();
  std::lock_guard<std::mutex> lock(g.Mutex);
  return g.Config;
}

ServiceStats Stats()
{
  Global &g = Self();
  std::lock_guard<std::mutex> lock(g.Mutex);
  return g.Counts;
}

void ResetStats()
{
  Global &g = Self();
  std::lock_guard<std::mutex> lock(g.Mutex);
  g.Counts = ServiceStats{};
}

void UpdateStats(const std::function<void(ServiceStats &)> &fn)
{
  Global &g = Self();
  std::lock_guard<std::mutex> lock(g.Mutex);
  fn(g.Counts);
}

Admit FrameQueue::Push(Frame &&f, long depth, sched::Backpressure pressure)
{
  const bool bounded = depth > 0;
  if (!bounded || this->Q_.size() < static_cast<std::size_t>(depth))
  {
    this->Q_.emplace_back(std::move(f));
    this->HighWater_ = std::max(this->HighWater_, this->Q_.size());
    return Admit::Queued;
  }

  switch (pressure)
  {
    case sched::Backpressure::Block:
      return Admit::WouldBlock;
    case sched::Backpressure::DropOldest:
      this->Q_.pop_front();
      this->Q_.emplace_back(std::move(f));
      return Admit::DroppedOldest;
    case sched::Backpressure::Coalesce:
      this->Q_.back() = std::move(f);
      return Admit::Coalesced;
  }
  return Admit::WouldBlock;
}

bool FrameQueue::Full(long depth, sched::Backpressure pressure) const
{
  return pressure == sched::Backpressure::Block && depth > 0 &&
         this->Q_.size() >= static_cast<std::size_t>(depth);
}

bool FrameQueue::Pop(Frame &out)
{
  if (this->Q_.empty())
    return false;
  out = std::move(this->Q_.front());
  this->Q_.pop_front();
  return true;
}

} // namespace svc
