#include "svcWire.h"

#include <cstring>
#include <stdexcept>

namespace svc
{

namespace
{
constexpr std::uint8_t kMagic[4] = {'S', 'V', 'C', 'F'};

void PutU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t GetU32(const std::uint8_t *p)
{
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

void PutF64(std::vector<std::uint8_t> &out, double v)
{
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  cmp::PutLE64(out, bits);
}

double GetF64(const std::uint8_t *p)
{
  const std::uint64_t bits = cmp::LoadLE64(p);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void PutString(std::vector<std::uint8_t> &out, const std::string &s)
{
  PutU32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

std::string GetString(const std::uint8_t *&p, const std::uint8_t *end)
{
  if (end - p < 4)
    throw std::runtime_error("svc: truncated string field");
  const std::uint32_t n = GetU32(p);
  p += 4;
  if (static_cast<std::size_t>(end - p) < n)
    throw std::runtime_error("svc: truncated string field");
  std::string s(reinterpret_cast<const char *>(p), n);
  p += n;
  return s;
}
} // namespace

const char *FrameKindName(FrameKind k)
{
  switch (k)
  {
    case FrameKind::Hello: return "hello";
    case FrameKind::Welcome: return "welcome";
    case FrameKind::Reject: return "reject";
    case FrameKind::Data: return "data";
    case FrameKind::Heartbeat: return "heartbeat";
    case FrameKind::Goodbye: return "goodbye";
    case FrameKind::Steer: return "steer";
    case FrameKind::Push: return "push";
    case FrameKind::HeartbeatAck: return "heartbeat-ack";
  }
  return "unknown";
}

void EncodeFrameHeader(const FrameHeader &h, std::vector<std::uint8_t> &out)
{
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(kProtocolVersion);
  out.push_back(static_cast<std::uint8_t>(h.Kind));
  out.push_back(0);
  out.push_back(0);
  PutU32(out, h.Session);
  PutU32(out, h.Flags);
  cmp::PutLE64(out, h.Step);
  PutF64(out, h.SendTime);
  cmp::PutLE64(out, h.PayloadBytes);
  cmp::PutLE64(out, h.RawBytes);
}

FrameHeader DecodeFrameHeader(const std::uint8_t *bytes, std::size_t size)
{
  if (size < kFrameHeaderBytes)
    throw std::runtime_error("svc: frame shorter than its header");
  if (std::memcmp(bytes, kMagic, 4) != 0)
    throw std::runtime_error("svc: bad frame magic");
  if (bytes[4] != kProtocolVersion)
    throw std::runtime_error("svc: unsupported protocol version " +
                             std::to_string(bytes[4]));
  if (bytes[5] > static_cast<std::uint8_t>(FrameKind::HeartbeatAck))
    throw std::runtime_error("svc: unknown frame kind " +
                             std::to_string(bytes[5]));

  FrameHeader h;
  h.Kind = static_cast<FrameKind>(bytes[5]);
  h.Session = GetU32(bytes + 8);
  h.Flags = GetU32(bytes + 12);
  h.Step = cmp::LoadLE64(bytes + 16);
  h.SendTime = GetF64(bytes + 24);
  h.PayloadBytes = cmp::LoadLE64(bytes + 32);
  h.RawBytes = cmp::LoadLE64(bytes + 40);
  return h;
}

std::vector<std::uint8_t> EncodeHello(const HelloInfo &h)
{
  std::vector<std::uint8_t> out;
  out.push_back(h.Protocol);
  out.push_back(static_cast<std::uint8_t>(h.Codec.Codec));
  out.push_back(h.WantCompression ? 1 : 0);
  out.push_back(0);
  PutU32(out, static_cast<std::uint32_t>(h.Codec.Level));
  PutF64(out, h.Codec.ErrorBound);
  PutString(out, h.MeshName);
  return out;
}

HelloInfo DecodeHello(const std::uint8_t *bytes, std::size_t size)
{
  if (size < 16)
    throw std::runtime_error("svc: truncated hello payload");
  HelloInfo h;
  h.Protocol = bytes[0];
  h.Codec.Codec = static_cast<cmp::CodecId>(bytes[1]);
  h.WantCompression = bytes[2] != 0;
  h.Codec.Level = static_cast<int>(GetU32(bytes + 4));
  h.Codec.ErrorBound = GetF64(bytes + 8);
  const std::uint8_t *p = bytes + 16;
  h.MeshName = GetString(p, bytes + size);
  return h;
}

std::vector<std::uint8_t> EncodeWelcome(const WelcomeInfo &w)
{
  std::vector<std::uint8_t> out;
  PutU32(out, w.Session);
  out.push_back(static_cast<std::uint8_t>(w.Codec.Codec));
  out.push_back(w.UseCompression ? 1 : 0);
  out.push_back(static_cast<std::uint8_t>(w.Pressure));
  out.push_back(0);
  PutU32(out, static_cast<std::uint32_t>(w.Codec.Level));
  PutF64(out, w.Codec.ErrorBound);
  cmp::PutLE64(out, static_cast<std::uint64_t>(w.QueueDepth));
  PutU32(out, static_cast<std::uint32_t>(w.HeartbeatMs));
  return out;
}

WelcomeInfo DecodeWelcome(const std::uint8_t *bytes, std::size_t size)
{
  if (size < 32)
    throw std::runtime_error("svc: truncated welcome payload");
  WelcomeInfo w;
  w.Session = GetU32(bytes);
  w.Codec.Codec = static_cast<cmp::CodecId>(bytes[4]);
  w.UseCompression = bytes[5] != 0;
  w.Pressure = static_cast<sched::Backpressure>(bytes[6]);
  w.Codec.Level = static_cast<int>(GetU32(bytes + 8));
  w.Codec.ErrorBound = GetF64(bytes + 12);
  w.QueueDepth = static_cast<long>(cmp::LoadLE64(bytes + 20));
  w.HeartbeatMs = static_cast<int>(GetU32(bytes + 28));
  return w;
}

std::vector<std::uint8_t> EncodeFrame(const FrameHeader &h,
                                      const void *payload,
                                      std::size_t payloadBytes)
{
  FrameHeader hh = h;
  hh.PayloadBytes = payloadBytes;
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + payloadBytes);
  EncodeFrameHeader(hh, out);
  if (payloadBytes)
    out.insert(out.end(), static_cast<const std::uint8_t *>(payload),
               static_cast<const std::uint8_t *>(payload) + payloadBytes);
  return out;
}

Frame DecodeFrame(std::vector<std::uint8_t> &&wire)
{
  Frame f;
  f.Header = DecodeFrameHeader(wire.data(), wire.size());
  if (wire.size() - kFrameHeaderBytes != f.Header.PayloadBytes)
    throw std::runtime_error(
      "svc: frame body of " +
      std::to_string(wire.size() - kFrameHeaderBytes) +
      " bytes, header promised " + std::to_string(f.Header.PayloadBytes));
  f.Payload.assign(wire.begin() +
                     static_cast<std::ptrdiff_t>(kFrameHeaderBytes),
                   wire.end());
  return f;
}

bool FrameAssembler::Feed(std::vector<std::uint8_t> &&msg,
                          std::vector<std::uint8_t> &out)
{
  if (this->ChunksLeft_ == 0)
  {
    // expecting a 16-byte chunk header (u64 total, u64 chunk count)
    if (msg.size() != 16)
      throw std::runtime_error(
        "svc: expected a 16 byte chunk header, got " +
        std::to_string(msg.size()) + " bytes");
    this->TotalBytes_ = cmp::LoadLE64(msg.data());
    this->ChunksLeft_ = cmp::LoadLE64(msg.data() + 8);
    if ((this->TotalBytes_ == 0) != (this->ChunksLeft_ == 0))
      throw std::runtime_error("svc: malformed chunk header");
    this->Buffer_.clear();
    this->Buffer_.reserve(static_cast<std::size_t>(this->TotalBytes_));
    if (this->ChunksLeft_ == 0)
    {
      out.clear(); // zero-byte transfer completes immediately
      return true;
    }
    return false;
  }

  if (msg.empty() || msg.size() > this->TotalBytes_ - this->Buffer_.size())
    throw std::runtime_error("svc: chunk stream does not match its header");
  this->Buffer_.insert(this->Buffer_.end(), msg.begin(), msg.end());
  if (--this->ChunksLeft_ == 0)
  {
    if (this->Buffer_.size() != this->TotalBytes_)
      throw std::runtime_error(
        "svc: reassembled " + std::to_string(this->Buffer_.size()) +
        " bytes, chunk header promised " + std::to_string(this->TotalBytes_));
    out = std::move(this->Buffer_);
    this->Buffer_.clear();
    return true;
  }
  return false;
}

void FrameAssembler::Reset()
{
  this->Buffer_.clear();
  this->TotalBytes_ = 0;
  this->ChunksLeft_ = 0;
}

} // namespace svc
