#ifndef svcServer_h
#define svcServer_h

/// @file svcServer.h
/// The multi-tenant analysis server. One dispatcher thread owns every
/// session: it admits connections (Hello -> Welcome/Reject under the
/// MaxSessions cap), polls each tenant's ring through a per-session
/// FrameAssembler (so a slow sender mid-frame never blocks the loop),
/// applies the session's backpressure policy at its bounded frame
/// queue, and hands complete frames to a pool of worker threads. The
/// worker for each frame is chosen by the configured sched placement
/// policy — workers are presented to the policy as the devices of a
/// dedicated "service plane" node, and each dispatch records its load
/// into vp::DeviceLoadTracker so least-loaded/cost-model decisions see
/// the pool's real backlog.
///
/// Liveness: a session with no traffic (no frames, no heartbeats,
/// nothing buffered in its ring) for MissedHeartbeats advertised
/// intervals is declared dead; its queued frames are still drained to
/// the workers, its half-assembled frame (if any) is discarded as a
/// short read, and its slot is reclaimed — other tenants never stall.

#include "svcRing.h"
#include "svcSession.h"
#include "svcWire.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace svc
{

/// The DeviceLoadTracker node id the worker pool reports under. Real
/// nodes are >= 0; the service plane uses a negative id so pool load
/// never aliases a simulated accelerator's.
constexpr int kServicePlaneNode = -2;

/// Why a session ended.
enum class SessionEnd : int
{
  Closed = 0, ///< graceful Goodbye
  Reaped,     ///< heartbeat timeout
  ShortRead,  ///< connection died mid-frame
  Error       ///< malformed traffic
};

const char *SessionEndName(SessionEnd e);

/// A multi-tenant frame server over ring transports.
class Server
{
public:
  /// Called on a worker thread for every executed frame. `worker` is
  /// the worker index in [0, Workers); the payload is the frame body
  /// (already reassembled, still in the session's negotiated wire
  /// encoding).
  using FrameHandler = std::function<void(
    int worker, const FrameHeader &header, std::vector<std::uint8_t> &&payload)>;

  /// Called on the dispatcher thread when a session opens (after the
  /// Welcome) or ends. Optional.
  using OpenHandler = std::function<void(std::uint32_t session,
                                         const HelloInfo &hello)>;
  using CloseHandler = std::function<void(std::uint32_t session,
                                          SessionEnd why)>;

  /// Called on the dispatcher thread the moment a Steer control frame
  /// arrives — steering bypasses the data queue entirely (that is the
  /// viz dispatch priority), so the handler must be cheap and must not
  /// block (typically: stash the command under a mutex for the next
  /// step boundary).
  using SteerHandler = std::function<void(
    std::uint32_t session, const FrameHeader &header,
    std::vector<std::uint8_t> &&payload)>;

  explicit Server(FrameHandler handler, ServiceConfig cfg = GetConfig());
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Install session lifecycle callbacks (before Start).
  void SetSessionCallbacks(OpenHandler onOpen, CloseHandler onClose);

  /// Install the steering callback (before Start).
  void SetSteerHandler(SteerHandler onSteer);

  /// Queue one server->client Push frame for `session`. Thread-safe and
  /// never blocking: the frame lands in the session's bounded outbox
  /// (ServiceConfig::PushDepth) under drop-oldest, and the dispatcher
  /// ships it when the return ring has room — a slow viewer loses old
  /// frames instead of stalling the publisher. Returns false when the
  /// session is unknown (already ended).
  bool Publish(std::uint32_t session, std::uint64_t step,
               const void *payload, std::size_t bytes, std::size_t rawBytes,
               bool compressed);

  /// Last heartbeat round-trip time the session reported, microseconds
  /// (0 until the client's second beat carries a measurement).
  std::uint64_t SessionRttUs(std::uint32_t session) const;

  /// Spin up the dispatcher and the worker pool.
  void Start();

  /// Drain queued frames, stop every thread, finalize. Idempotent.
  void Stop();

  /// A new connection's client-side port. Thread-safe; callable before
  /// or after Start (the dispatcher admits pending connections as
  /// session slots allow).
  std::shared_ptr<Port> Connect();

  /// Sessions currently open.
  int ActiveSessions() const;

  /// Sessions ended so far, by cause.
  std::uint64_t Ended(SessionEnd why) const;

  /// Per-frame real-time latencies (send stamp -> handler completion)
  /// recorded by the workers, in seconds. Snapshot.
  std::vector<double> Latencies() const;

  /// The configuration this server runs under.
  const ServiceConfig &Config() const { return this->Config_; }

private:
  /// The shared server->client side of a session: the bounded push
  /// outbox (filled by Publish from any thread, drained by the
  /// dispatcher) and the last heartbeat RTT the client reported.
  struct Remote
  {
    std::mutex Mutex;
    std::deque<std::vector<std::uint8_t>> Out; ///< encoded wire images
    std::atomic<std::uint64_t> RttUs{0};
  };

  struct Session
  {
    std::uint32_t Id = 0;
    std::shared_ptr<Channel> Link;
    std::unique_ptr<Port> Io; ///< server-side port
    FrameAssembler Assembler;
    FrameQueue Queue;
    HelloInfo Hello;
    std::shared_ptr<Remote> Out; ///< set once Welcomed
    bool Welcomed = false;
    bool Draining = false; ///< Goodbye seen: drain the queue, then close
    double LastHeard = 0.0; ///< real-clock seconds of last traffic
    SessionEnd Why = SessionEnd::Closed;
  };

  struct Worker
  {
    std::thread Thread;
    std::uint64_t SpawnToken = 0;
    std::uint64_t EndToken = 0;
    std::mutex Mutex;
    std::condition_variable Cv;
    std::deque<Frame> Inbox;
    std::atomic<std::size_t> InboxSize{0};
  };

  void DispatchLoop();
  void WorkerLoop(int index);

  /// Poll one session's ring; returns true when anything moved.
  bool PollSession(Session &s);

  /// Route queued frames to workers; returns true when anything moved.
  bool DrainSession(Session &s);

  /// Ship queued push frames into the session's return ring; returns
  /// true when anything moved.
  bool PushSession(Session &s);

  /// Handle one complete frame image from a session's assembler.
  void HandleWire(Session &s, std::vector<std::uint8_t> &&wire);

  /// Admit pending connections while slots remain.
  bool AdmitPending();

  /// End a session (dispatcher thread only).
  void EndSession(Session &s, SessionEnd why);

  int PlaceFrame(const Session &s, const Frame &f);

  ServiceConfig Config_;
  FrameHandler Handler_;
  OpenHandler OnOpen_;
  CloseHandler OnClose_;
  SteerHandler OnSteer_;

  mutable std::mutex RemoteMutex_;
  std::map<std::uint32_t, std::shared_ptr<Remote>> Remotes_;

  mutable std::mutex PendingMutex_;
  std::vector<std::shared_ptr<Channel>> Pending_; ///< unadmitted connects

  std::vector<std::unique_ptr<Session>> Sessions_; ///< dispatcher-owned
  std::uint32_t NextSession_ = 1;

  std::vector<std::unique_ptr<Worker>> Workers_;
  std::thread Dispatcher_;
  std::uint64_t DispatcherSpawnToken_ = 0;
  std::uint64_t DispatcherEndToken_ = 0;
  std::atomic<bool> Running_{false};
  std::atomic<bool> StopRequested_{false};
  std::atomic<bool> WorkersStop_{false};

  std::atomic<int> Active_{0};
  std::atomic<std::uint64_t> EndCounts_[4] = {};

  mutable std::mutex LatencyMutex_;
  std::vector<double> Latencies_;
};

} // namespace svc

#endif
