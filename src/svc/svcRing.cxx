#include "svcRing.h"

#include "vpClock.h"
#include "vpPlatform.h"

#include <algorithm>
#include <chrono>
#include <cstring>

namespace svc
{

namespace
{
std::chrono::nanoseconds ToNs(double seconds)
{
  return std::chrono::nanoseconds(
    static_cast<std::int64_t>(std::max(0.0, seconds) * 1e9));
}
} // namespace

const char *IoStatusName(IoStatus s)
{
  switch (s)
  {
    case IoStatus::Ok: return "ok";
    case IoStatus::Timeout: return "timeout";
    case IoStatus::Closed: return "closed";
    case IoStatus::Dead: return "dead";
  }
  return "unknown";
}

ShmRing::ShmRing(std::size_t capacityBytes, std::size_t maxMessages)
  : CapacityBytes_(std::max<std::size_t>(1, capacityBytes)),
    MaxMessages_(std::max<std::size_t>(1, maxMessages))
{
}

IoStatus ShmRing::Push(std::vector<std::uint8_t> &&msg, double timeoutSeconds)
{
  std::unique_lock<std::mutex> lock(this->Mutex_);
  auto room = [&]
  {
    // an oversized message is admitted into an empty ring so transfers
    // larger than the budget degrade to lock-step instead of deadlock
    return this->Queue_.size() < this->MaxMessages_ &&
           (this->UsedBytes_ + msg.size() <= this->CapacityBytes_ ||
            this->Queue_.empty());
  };
  auto stopped = [&] { return this->Closed_ || this->Dead_; };

  if (timeoutSeconds < 0.0)
  {
    this->CanPush_.wait(lock, [&] { return room() || stopped(); });
  }
  else if (!this->CanPush_.wait_for(lock, ToNs(timeoutSeconds),
                                    [&] { return room() || stopped(); }))
  {
    return IoStatus::Timeout;
  }

  if (stopped())
    return this->Dead_ ? IoStatus::Dead : IoStatus::Closed;

  this->UsedBytes_ += msg.size();
  this->PushedBytes_ += msg.size();
  this->Queue_.emplace_back(std::move(msg));
  lock.unlock();
  this->CanPop_.notify_one();
  return IoStatus::Ok;
}

IoStatus ShmRing::PushAll(std::vector<std::vector<std::uint8_t>> &&msgs,
                          double timeoutSeconds)
{
  if (msgs.empty())
    return IoStatus::Ok;

  std::size_t totalBytes = 0;
  for (const auto &m : msgs)
    totalBytes += m.size();

  std::unique_lock<std::mutex> lock(this->Mutex_);
  auto room = [&]
  {
    // like Push, an oversized batch is admitted alone into an empty
    // ring so a batch larger than either budget cannot deadlock
    return (this->Queue_.size() + msgs.size() <= this->MaxMessages_ &&
            this->UsedBytes_ + totalBytes <= this->CapacityBytes_) ||
           this->Queue_.empty();
  };
  auto stopped = [&] { return this->Closed_ || this->Dead_; };

  if (timeoutSeconds < 0.0)
  {
    this->CanPush_.wait(lock, [&] { return room() || stopped(); });
  }
  else if (!this->CanPush_.wait_for(lock, ToNs(timeoutSeconds),
                                    [&] { return room() || stopped(); }))
  {
    return IoStatus::Timeout;
  }

  if (stopped())
    return this->Dead_ ? IoStatus::Dead : IoStatus::Closed;

  for (auto &m : msgs)
  {
    this->UsedBytes_ += m.size();
    this->PushedBytes_ += m.size();
    this->Queue_.emplace_back(std::move(m));
  }
  lock.unlock();
  this->CanPop_.notify_all();
  return IoStatus::Ok;
}

IoStatus ShmRing::Pop(std::vector<std::uint8_t> &out, double timeoutSeconds)
{
  std::unique_lock<std::mutex> lock(this->Mutex_);
  auto ready = [&]
  { return !this->Queue_.empty() || this->Closed_ || this->Dead_; };

  if (timeoutSeconds < 0.0)
  {
    this->CanPop_.wait(lock, ready);
  }
  else if (timeoutSeconds == 0.0)
  {
    if (!ready())
      return IoStatus::Timeout;
  }
  else if (!this->CanPop_.wait_for(lock, ToNs(timeoutSeconds), ready))
  {
    return IoStatus::Timeout;
  }

  if (this->Queue_.empty())
    return this->Dead_ ? IoStatus::Dead : IoStatus::Closed;

  out = std::move(this->Queue_.front());
  this->Queue_.pop_front();
  this->UsedBytes_ -= out.size();
  lock.unlock();
  this->CanPush_.notify_one();
  return IoStatus::Ok;
}

void ShmRing::Close()
{
  {
    std::lock_guard<std::mutex> lock(this->Mutex_);
    this->Closed_ = true;
  }
  this->CanPush_.notify_all();
  this->CanPop_.notify_all();
}

void ShmRing::MarkDead()
{
  {
    std::lock_guard<std::mutex> lock(this->Mutex_);
    this->Dead_ = true;
  }
  this->CanPush_.notify_all();
  this->CanPop_.notify_all();
}

std::size_t ShmRing::Pending() const
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  return this->Queue_.size();
}

std::size_t ShmRing::PendingBytes() const
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  return this->UsedBytes_;
}

std::uint64_t ShmRing::BytesPushed() const
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  return this->PushedBytes_;
}

IoStatus Port::Send(std::vector<std::uint8_t> &&msg, double timeoutSeconds)
{
  const std::size_t bytes = msg.size();
  const IoStatus s = this->Tx().Push(std::move(msg), timeoutSeconds);
  if (s == IoStatus::Ok)
  {
    // the sender pays the injection cost in virtual time, mirroring
    // minimpi::Send: latency plus volume over the message bandwidth
    const vp::CostModel &cost = vp::Platform::Get().Config().Cost;
    vp::ThisClock().Advance(cost.MessageLatency +
                            static_cast<double>(bytes) /
                              cost.MessageBandwidth);
  }
  return s;
}

IoStatus Port::Recv(std::vector<std::uint8_t> &out, double timeoutSeconds)
{
  return this->Rx().Pop(out, timeoutSeconds);
}

IoStatus Port::SendChunked(const void *data, std::size_t bytes,
                           std::size_t maxChunkBytes, double timeoutSeconds)
{
  const std::size_t limit = std::max<std::size_t>(1, maxChunkBytes);
  const std::uint64_t nChunks =
    bytes ? (static_cast<std::uint64_t>(bytes) + limit - 1) / limit : 0;

  std::vector<std::uint8_t> header(16);
  for (int i = 0; i < 8; ++i)
  {
    header[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(static_cast<std::uint64_t>(bytes) >> (8 * i));
    header[static_cast<std::size_t>(8 + i)] =
      static_cast<std::uint8_t>(nChunks >> (8 * i));
  }
  IoStatus s = this->Send(std::move(header), timeoutSeconds);
  if (s != IoStatus::Ok)
    return s;

  const std::uint8_t *p = static_cast<const std::uint8_t *>(data);
  std::size_t remaining = bytes;
  while (remaining)
  {
    const std::size_t n = std::min(remaining, limit);
    std::vector<std::uint8_t> chunk(p, p + n);
    s = this->Send(std::move(chunk), timeoutSeconds);
    if (s != IoStatus::Ok)
      return s;
    p += n;
    remaining -= n;
  }
  return IoStatus::Ok;
}

IoStatus Port::SendChunkedAtomic(const void *data, std::size_t bytes,
                                 std::size_t maxChunkBytes,
                                 double timeoutSeconds)
{
  const std::size_t limit = std::max<std::size_t>(1, maxChunkBytes);
  const std::uint64_t nChunks =
    bytes ? (static_cast<std::uint64_t>(bytes) + limit - 1) / limit : 0;

  std::vector<std::vector<std::uint8_t>> msgs;
  msgs.reserve(1 + static_cast<std::size_t>(nChunks));

  std::vector<std::uint8_t> header(16);
  for (int i = 0; i < 8; ++i)
  {
    header[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(static_cast<std::uint64_t>(bytes) >> (8 * i));
    header[static_cast<std::size_t>(8 + i)] =
      static_cast<std::uint8_t>(nChunks >> (8 * i));
  }
  msgs.emplace_back(std::move(header));

  const std::uint8_t *p = static_cast<const std::uint8_t *>(data);
  std::size_t remaining = bytes;
  while (remaining)
  {
    const std::size_t n = std::min(remaining, limit);
    msgs.emplace_back(p, p + n);
    p += n;
    remaining -= n;
  }

  const std::size_t nMsgs = msgs.size();
  const IoStatus s = this->Tx().PushAll(std::move(msgs), timeoutSeconds);
  if (s == IoStatus::Ok)
  {
    const vp::CostModel &cost = vp::Platform::Get().Config().Cost;
    vp::ThisClock().Advance(static_cast<double>(nMsgs) * cost.MessageLatency +
                            static_cast<double>(16 + bytes) /
                              cost.MessageBandwidth);
  }
  return s;
}

std::size_t Port::RxPending() const
{
  return this->RxC().Pending();
}

void Port::CloseTx()
{
  this->Tx().Close();
}

void Port::Kill()
{
  this->Tx().MarkDead();
  this->Rx().MarkDead();
}

} // namespace svc
