#ifndef svcClient_h
#define svcClient_h

/// @file svcClient.h
/// The simulation-side endpoint of a service connection. A Client
/// performs the Hello/Welcome negotiation, stamps every data frame
/// with its session id and real-time send stamp, heartbeats while
/// idle, and leaves either gracefully (Close -> Goodbye) or abruptly
/// (Crash -> the rings die, as if the process was killed). The
/// deterministic fault injector can also drop the Nth frame in
/// transit, delay frames, or turn the Nth send into a mid-frame crash
/// (a partial chunk stream followed by ring death) — the short-read
/// case the server must survive.

#include "svcRing.h"
#include "svcWire.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace svc
{

class Client
{
public:
  /// `port` is the client-side port from Server::Connect().
  explicit Client(std::shared_ptr<Port> port, std::string meshName = "table");
  ~Client();

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Negotiate a session: send Hello, wait for the Welcome. `want` is
  /// the requested frame codec (ignored by a server with a codec
  /// override); `wantCompression` false requests raw frames. Returns
  /// false on timeout or Reject.
  bool Connect(const cmp::Params &want, bool wantCompression,
               double timeoutSeconds = 5.0);

  /// The server's grant (valid after a successful Connect).
  const WelcomeInfo &Negotiated() const { return this->Welcome_; }
  std::uint32_t SessionId() const { return this->Welcome_.Session; }

  /// Why the last Connect failed ("" when it succeeded).
  const std::string &RejectReason() const { return this->RejectReason_; }

  /// Ship one data frame. `rawBytes` is the pre-compression payload
  /// size (= `bytes` for uncompressed frames). Returns false when the
  /// frame was not delivered (connection down, injected drop or crash).
  bool SendFrame(std::uint64_t step, const void *payload, std::size_t bytes,
                 std::size_t rawBytes, bool compressed);

  /// Send one heartbeat (cheap; lets an idle client stay admitted).
  /// Carries the last measured round-trip time so the server can track
  /// per-session latency; the server echoes a HeartbeatAck that Poll
  /// absorbs to produce the next measurement.
  void Heartbeat();

  /// Send one steering command (control plane; dispatched by the server
  /// ahead of all queued data). `version` is the command's monotonic
  /// version — the consumer discards stale commands. Returns false when
  /// the frame was not delivered.
  bool SendSteer(const void *payload, std::size_t bytes,
                 std::uint64_t version);

  /// Drain the server->client direction: absorbs HeartbeatAck frames
  /// (updating LastRttUs) and returns the next Push frame, if any,
  /// within `timeoutSeconds` (<= 0 polls without waiting). Returns
  /// false on timeout or a dead connection.
  bool Poll(Frame &out, double timeoutSeconds);

  /// Last measured heartbeat round-trip time, microseconds (0 until an
  /// ack came back through Poll).
  std::uint64_t LastRttUs() const { return this->LastRttUs_.load(); }

  /// Beat automatically from a background thread at the negotiated
  /// interval until Close/Crash.
  void StartHeartbeats();

  /// Graceful leave: Goodbye, then close the outgoing ring.
  void Close();

  /// Abrupt death: both rings die, nothing is announced. The server
  /// finds out via its heartbeat budget (or a short read when a frame
  /// was in flight).
  void Crash();

  bool Connected() const { return this->Connected_.load(); }

  /// Data frames this client delivered into the ring.
  std::uint64_t FramesDelivered() const { return this->Delivered_.load(); }

private:
  void StopBeats();

  std::shared_ptr<Port> Port_;
  /// Serializes every outgoing chunk stream: SendChunked emits multiple
  /// ring messages, so the heartbeat thread and the application thread
  /// must never send concurrently or the streams interleave and the
  /// server's assembler kills the session.
  std::mutex SendMutex_;
  /// Serializes the receive path (Poll) and its reassembly state.
  std::mutex RecvMutex_;
  FrameAssembler Rx_;
  std::atomic<std::uint64_t> LastRttUs_{0};
  std::string MeshName_;
  WelcomeInfo Welcome_;
  std::string RejectReason_;
  std::atomic<bool> Connected_{false};
  std::atomic<bool> Down_{false};
  std::atomic<std::uint64_t> Delivered_{0};
  std::atomic<std::uint64_t> SendSeq_{0};

  std::thread Beats_;
  std::atomic<bool> BeatsStop_{false};
  std::atomic<std::uint64_t> BeatsEndToken_{0};
};

} // namespace svc

#endif
