#ifndef vpFaultInjector_h
#define vpFaultInjector_h

/// @file vpFaultInjector.h
/// Seeded, deterministic fault injection for the virtual platform. The
/// graceful-degradation paths of the memory pool, the asynchronous
/// execution method, and the data binning pipeline are unreachable under
/// a healthy run; the injector makes them testable by failing the Nth
/// allocation, probabilistically failing allocations from a seeded PRNG,
/// dropping the Nth recorded event signal, delaying the streams of a
/// chosen device, or handing pooled blocks out before their recorded free
/// point (so the checker itself is validated against a real bug).
///
/// Determinism: every decision derives from the configured seed and
/// monotonic per-site counters — two runs with the same configuration and
/// workload take identical fault decisions at identical points.
///
/// Enabling: the `<fault>` element of a SENSEI XML configuration or
/// Configure(). All queries are cheap no-ops while disabled.

#include "vpTypes.h"

#include <cstddef>
#include <cstdint>

namespace vp
{
namespace fault
{

/// Fault plan. Zero-valued knobs are inert.
struct FaultConfig
{
  bool Enabled = false;          ///< master switch
  std::uint64_t Seed = 1;        ///< PRNG seed for probabilistic faults
  std::uint64_t FailAllocNth = 0;   ///< fail the Nth pool-routed allocation
  double FailAllocProb = 0.0;       ///< iid pool allocation failure prob.
  std::uint64_t DropEventNth = 0;   ///< drop the Nth recorded event (1-based)
  double StreamDelaySeconds = 0.0;  ///< extra virtual latency per submission
  int DelayNode = -1;               ///< node filter for the delay (-1 = all)
  DeviceId DelayDevice = -1;        ///< device filter (-1 = all devices)
  bool PrematureReuse = false;      ///< pool skips its stream-ready check
  std::uint64_t DropFrameNth = 0;   ///< Nth service data frame lost in transit
  std::uint64_t CrashSendNth = 0;   ///< Nth frame send dies mid-frame
  double FrameDelaySeconds = 0.0;   ///< extra real+virtual delay per frame
};

/// Counters of the faults actually fired.
struct FaultStats
{
  std::uint64_t AllocFailures = 0;
  std::uint64_t EventsDropped = 0;
  std::uint64_t DelaysApplied = 0;
  std::uint64_t FramesDropped = 0; ///< service frames lost in transit
  std::uint64_t SendCrashes = 0;   ///< mid-frame client deaths fired
};

/// Install a fault plan and re-arm all counters.
void Configure(const FaultConfig &cfg);

/// The active plan.
FaultConfig GetConfig();

/// True when injection is on.
bool Enabled();

/// Disarm and clear: equivalent to Configure({}).
void Reset();

/// Counters of faults fired since the last Configure/Reset.
FaultStats Stats();

// --- decision points (queried by the instrumented subsystems) ---------------

/// Should the current pool-routed allocation fail? Advances the allocation
/// counter and the PRNG; records the failure when it fires. Queried only by
/// the memory pool's miss path — the one allocation site with a
/// graceful-degradation contract (release the cache, retry) — so an
/// injected failure degrades the run instead of unwinding a rank thread.
bool ShouldFailAllocation();

/// Should the current event record be dropped (no signal delivered)?
bool ShouldDropEvent();

/// Extra virtual seconds to charge to a submission on (node, device);
/// 0 when the site is not selected by the plan.
double StreamDelay(int node, DeviceId device);

/// True when the pool must skip its stream-ordered ready check and hand
/// cached blocks out immediately (a deliberately injected lifetime bug).
bool PrematureReuseEnabled();

/// Should the current service data frame be silently lost in transit?
/// Advances the frame counter; queried by svc::Client before each send.
bool ShouldDropFrame();

/// Should the current service frame send turn into a mid-frame client
/// death (partial chunk stream, then the connection drops)? Keeps its
/// own monotonic counter, advanced once per frame that reaches the
/// wire.
bool ShouldCrashSend();

/// Extra seconds to stall the current frame send (0 when unconfigured).
double FrameDelay();

} // namespace fault
} // namespace vp

#endif
