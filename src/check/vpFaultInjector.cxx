#include "vpFaultInjector.h"

#include <mutex>
#include <random>

namespace vp
{
namespace fault
{

namespace
{

struct Injector
{
  std::mutex Mutex;
  FaultConfig Config;
  FaultStats Counts;
  std::mt19937_64 Rng{1};
  std::uint64_t AllocN = 0;
  std::uint64_t EventN = 0;
  std::uint64_t FrameN = 0;
  std::uint64_t CrashN = 0;
};

Injector &Self()
{
  static Injector inj;
  return inj;
}

} // namespace

void Configure(const FaultConfig &cfg)
{
  Injector &inj = Self();
  std::lock_guard<std::mutex> lock(inj.Mutex);
  inj.Config = cfg;
  inj.Counts = FaultStats{};
  inj.Rng.seed(cfg.Seed);
  inj.AllocN = 0;
  inj.EventN = 0;
  inj.FrameN = 0;
  inj.CrashN = 0;
}

FaultConfig GetConfig()
{
  Injector &inj = Self();
  std::lock_guard<std::mutex> lock(inj.Mutex);
  return inj.Config;
}

bool Enabled()
{
  Injector &inj = Self();
  std::lock_guard<std::mutex> lock(inj.Mutex);
  return inj.Config.Enabled;
}

void Reset()
{
  Configure(FaultConfig{});
}

FaultStats Stats()
{
  Injector &inj = Self();
  std::lock_guard<std::mutex> lock(inj.Mutex);
  return inj.Counts;
}

bool ShouldFailAllocation()
{
  Injector &inj = Self();
  std::lock_guard<std::mutex> lock(inj.Mutex);
  if (!inj.Config.Enabled)
    return false;
  const std::uint64_t n = ++inj.AllocN;
  bool fail = inj.Config.FailAllocNth && n == inj.Config.FailAllocNth;
  if (!fail && inj.Config.FailAllocProb > 0.0)
  {
    // always draw so the decision stream is a pure function of the seed
    // and the allocation index, independent of which knobs are set
    std::uniform_real_distribution<double> u(0.0, 1.0);
    fail = u(inj.Rng) < inj.Config.FailAllocProb;
  }
  if (fail)
    inj.Counts.AllocFailures++;
  return fail;
}

bool ShouldDropEvent()
{
  Injector &inj = Self();
  std::lock_guard<std::mutex> lock(inj.Mutex);
  if (!inj.Config.Enabled || !inj.Config.DropEventNth)
    return false;
  const bool drop = ++inj.EventN == inj.Config.DropEventNth;
  if (drop)
    inj.Counts.EventsDropped++;
  return drop;
}

double StreamDelay(int node, DeviceId device)
{
  Injector &inj = Self();
  std::lock_guard<std::mutex> lock(inj.Mutex);
  if (!inj.Config.Enabled || inj.Config.StreamDelaySeconds <= 0.0)
    return 0.0;
  if (inj.Config.DelayNode >= 0 && inj.Config.DelayNode != node)
    return 0.0;
  if (inj.Config.DelayDevice >= 0 && inj.Config.DelayDevice != device)
    return 0.0;
  inj.Counts.DelaysApplied++;
  return inj.Config.StreamDelaySeconds;
}

bool PrematureReuseEnabled()
{
  Injector &inj = Self();
  std::lock_guard<std::mutex> lock(inj.Mutex);
  return inj.Config.Enabled && inj.Config.PrematureReuse;
}

bool ShouldDropFrame()
{
  Injector &inj = Self();
  std::lock_guard<std::mutex> lock(inj.Mutex);
  if (!inj.Config.Enabled || !inj.Config.DropFrameNth)
    return false;
  const bool drop = ++inj.FrameN == inj.Config.DropFrameNth;
  if (drop)
    inj.Counts.FramesDropped++;
  return drop;
}

bool ShouldCrashSend()
{
  Injector &inj = Self();
  std::lock_guard<std::mutex> lock(inj.Mutex);
  if (!inj.Config.Enabled || !inj.Config.CrashSendNth)
    return false;
  const bool crash = ++inj.CrashN == inj.Config.CrashSendNth;
  if (crash)
    inj.Counts.SendCrashes++;
  return crash;
}

double FrameDelay()
{
  Injector &inj = Self();
  std::lock_guard<std::mutex> lock(inj.Mutex);
  if (!inj.Config.Enabled || inj.Config.FrameDelaySeconds <= 0.0)
    return 0.0;
  inj.Counts.DelaysApplied++;
  return inj.Config.FrameDelaySeconds;
}

} // namespace fault
} // namespace vp
