#ifndef vpChecker_h
#define vpChecker_h

/// @file vpChecker.h
/// Runtime race / lifetime checker for the virtual platform. The paper's
/// core claims — zero-copy adoption with coordinated life-cycle
/// management, accessor methods that insert synchronization only when
/// needed, and stream-ordered asynchronous execution — are exactly the
/// behaviors that fail silently when they are wrong. This checker makes
/// them machine checkable: lightweight hooks (compiled in always, cheap
/// no-ops until enabled) instrument the platform front ends, the memory
/// pool, the PM back ends, and the HAMR access paths, and maintain
///
///  * a vector clock per *timeline* (each executing thread and each
///    stream), advanced on submission, joined on synchronization
///    (StreamSynchronize / DeviceSynchronize / events / thread join), so
///    "happened before" is a real partial order — not the scalar virtual
///    time, under which two unsynchronized streams can appear ordered;
///  * a per-allocation state machine (live → pool-cached → freed) with
///    the last write epoch and the reads since it.
///
/// Detected violation classes:
///  1. use-after-free, and premature reuse of pooled blocks handed out
///     before the requester passes the recorded stream-ordered free point;
///  2. host access to device memory, and host reads of data whose last
///     write is an un-synchronized stream operation;
///  3. cross-stream writes to the same allocation with no event edge
///     between the streams;
///  4. double frees (reported and swallowed so the run can continue), and
///     leaks reported at Finalize.
///
/// Enabling: the `VP_CHECK` environment variable (any value but "0"), the
/// `<check>` element of a SENSEI XML configuration, or Enable(true).
/// Reports are exported through the profiler (sensei::ExportCheckReport)
/// so campaigns can assert "0 violations" as a first-class metric.

#include "vpMemory.h"
#include "vpTypes.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vp
{

struct StreamState;

namespace check
{

/// The violation classes the checker distinguishes.
enum class ViolationKind : int
{
  UseAfterFree = 0,   ///< access to freed memory / premature pooled reuse
  UnsyncedHostAccess, ///< host touch of device memory or of un-synced data
  CrossStreamRace,    ///< unordered same-allocation writes on two streams
  DoubleFree,         ///< pointer freed twice
  Leak                ///< allocation still live at Finalize
};

/// Stable lower-case identifier ("use_after_free", ...), used for
/// profiler event names and JSON keys.
const char *ToString(ViolationKind k);

/// One recorded diagnostic. The message names the offending allocation
/// (space, size, address) and every timeline involved ("stream#2(node0
/// dev1)", "thread#0").
struct Violation
{
  ViolationKind Kind = ViolationKind::UseAfterFree;
  std::string Message;
  const void *Ptr = nullptr; ///< base pointer of the allocation involved
};

/// Snapshot of everything recorded since the last Reset.
struct Report
{
  std::vector<Violation> Violations; ///< capped at CheckConfig::MaxReports
  std::uint64_t Counts[5] = {};      ///< per ViolationKind, never capped

  std::uint64_t Count(ViolationKind k) const
  {
    return this->Counts[static_cast<int>(k)];
  }

  std::uint64_t Total() const
  {
    std::uint64_t n = 0;
    for (std::uint64_t c : this->Counts)
      n += c;
    return n;
  }

  /// Human readable multi-line summary (one line per violation).
  std::string Summary() const;
};

/// Behaviour knobs (see also the `<check>` XML element).
struct CheckConfig
{
  bool Enabled = false;         ///< master switch
  std::size_t MaxReports = 256; ///< cap on retained Violation records
  bool FailFast = false;        ///< throw vp::Error at the first violation
};

// --- control ----------------------------------------------------------------

/// Replace the configuration (implies Enable(cfg.Enabled)).
void Configure(const CheckConfig &cfg);

/// The active configuration.
CheckConfig GetConfig();

/// Turn checking on or off, overriding the VP_CHECK environment variable.
void Enable(bool on);

/// True when checking is on. The first call consults VP_CHECK unless
/// Configure/Enable ran earlier.
bool Enabled();

/// Drop all per-allocation state, timelines, and recorded violations.
void Reset();

/// Copy of the current report.
Report Snapshot();

/// Scan for leaks (allocations still live, pool-cached blocks excluded),
/// record them, and return the final report.
Report Finalize();

// --- hooks (no-ops while disabled) ------------------------------------------

/// A platform allocation completed; `s` is the ordering stream (null for
/// synchronous allocations).
void OnAlloc(void *p, const AllocInfo &info, const StreamState *s);

/// A platform free of a live allocation is about to happen.
void OnFree(void *p);

/// Offer the freed block's backing storage to the checker's quarantine
/// (called by Platform::Free after OnFree, instead of releasing the
/// memory). Returns true when the checker took ownership — it std::frees
/// the storage when the tombstone is evicted, so the allocator cannot
/// recycle a tombstoned range into an untracked allocation (which would
/// turn stale tombstones into false use-after-free reports). Returns
/// false (caller frees) when disabled or the pointer is untracked.
bool QuarantineFree(void *p);

/// Called by Platform::Free before any other work: returns true when the
/// free is erroneous (double free of an already-freed pointer or of a
/// pool-cached block); the violation is recorded and the caller must
/// swallow the free so the run can continue.
bool InterceptFree(void *p);

/// A pooled block was returned to the free lists, reusable (elsewhere) at
/// scalar virtual time `readyAt`, freed on `s` (may be null).
void OnPoolFree(void *p, const StreamState *s, double readyAt);

/// A cached block is being handed out again. `requesterNow` is the
/// requester's scalar position (max of its clock and the stream's
/// completion) — the checker independently re-validates the pool's
/// stream-ordered reuse rule against the recorded free point.
void OnPoolReuse(void *p, const StreamState *s, double requesterNow);

/// The pool is legitimately releasing a cached block back to the platform
/// (trimming); the following Platform::Free must not be flagged.
void OnPoolRelease(void *p);

/// A stream-ordered copy: read of `src`, write of `dst`, on `s`.
void OnCopy(const StreamState *s, void *dst, const void *src,
            std::size_t bytes);

/// A synchronous host-to-host copy on the calling thread.
void OnHostCopy(void *dst, const void *src, std::size_t bytes);

/// Work was submitted to `s` by the calling thread (kernel launch):
/// creates the thread-to-stream ordering edge.
void OnSubmit(const StreamState *s);

/// The calling thread synchronized with `s` (acquires its clock).
void OnStreamSync(const StreamState *s);

/// The calling thread synchronized with every stream of (node, device).
void OnDeviceSync(int node, DeviceId device);

/// An event was recorded on `s`; returns an opaque token capturing the
/// stream's clock (0 while disabled).
std::uint64_t OnEventRecord(const StreamState *s);

/// Future work on `s` waits for the event behind `token`.
void OnStreamWaitEvent(const StreamState *s, std::uint64_t token);

/// The calling thread waited for the event behind `token`.
void OnEventSync(std::uint64_t token);

/// Thread fork/join edges (vp::ScopedThread).
std::uint64_t OnThreadSpawn();           ///< parent, before the thread starts
void OnThreadStart(std::uint64_t token); ///< child, first thing it does
std::uint64_t OnThreadEnd();             ///< child, last thing it does
void OnThreadJoin(std::uint64_t token);  ///< parent, after join

/// Per-task clock forks for the exec engine (vp::exec). Each deferred
/// kernel body or pool shard forks the submitter's vector clock at
/// submission (OnTaskSpawn, on the submitting thread), joins it into the
/// worker that runs the body (OnTaskStart), snapshots the worker's clock
/// when the body finishes (OnTaskEnd), and joins that snapshot into
/// whichever thread waits out the task's fence (OnTaskJoin). The tokens
/// are single use: the checker erases them on Start/Join, so a fence
/// hands its end token to exactly one waiter. All four are no-ops while
/// the checker is disabled (token 0).
std::uint64_t OnTaskSpawn();           ///< submitter, at enqueue
void OnTaskStart(std::uint64_t token); ///< worker, before the body
std::uint64_t OnTaskEnd();             ///< worker, after the body
void OnTaskJoin(std::uint64_t token);  ///< waiter, after the fence

/// Instrumented host access: flags device memory touched from the host
/// and host reads of data with an un-synchronized stream write. Called by
/// the HAMR host fast paths; also a public assertion point for
/// application code.
void HostRead(const void *p, std::size_t bytes,
              const char *what = "host read");
void HostWrite(void *p, std::size_t bytes, const char *what = "host write");

} // namespace check
} // namespace vp

#endif
