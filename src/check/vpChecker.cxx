#include "vpChecker.h"

#include "vpPlatform.h" // vp::Error (header-only); StreamState via vpStream.h

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>
#include <unordered_map>

namespace vp
{
namespace check
{

const char *ToString(ViolationKind k)
{
  switch (k)
  {
    case ViolationKind::UseAfterFree: return "use_after_free";
    case ViolationKind::UnsyncedHostAccess: return "unsynced_host_access";
    case ViolationKind::CrossStreamRace: return "cross_stream_race";
    case ViolationKind::DoubleFree: return "double_free";
    case ViolationKind::Leak: return "leak";
  }
  return "unknown";
}

std::string Report::Summary() const
{
  std::ostringstream os;
  os << "check: " << this->Total() << " violation(s)";
  for (int k = 0; k < 5; ++k)
    if (this->Counts[k])
      os << ' ' << ToString(static_cast<ViolationKind>(k)) << '='
         << this->Counts[k];
  os << '\n';
  for (const Violation &v : this->Violations)
    os << "  [" << ToString(v.Kind) << "] " << v.Message << '\n';
  return os.str();
}

namespace
{

/// -1 = unset (consult VP_CHECK on first query), else 0/1.
std::atomic<int> EnabledState{-1};

/// Grow-on-demand vector clock indexed by timeline id.
struct VectorClock
{
  std::vector<std::uint64_t> C;

  std::uint64_t Get(int i) const
  {
    return i >= 0 && static_cast<std::size_t>(i) < this->C.size()
             ? this->C[static_cast<std::size_t>(i)]
             : 0;
  }

  void Set(int i, std::uint64_t v)
  {
    if (static_cast<std::size_t>(i) >= this->C.size())
      this->C.resize(static_cast<std::size_t>(i) + 1, 0);
    this->C[static_cast<std::size_t>(i)] = v;
  }

  void Join(const VectorClock &o)
  {
    if (o.C.size() > this->C.size())
      this->C.resize(o.C.size(), 0);
    for (std::size_t i = 0; i < o.C.size(); ++i)
      this->C[i] = std::max(this->C[i], o.C[i]);
  }
};

/// One timeline: an executing thread or an in-order stream.
struct Timeline
{
  VectorClock VC;
  std::string Name;
  bool IsStream = false;
  int Node = 0;
  DeviceId Device = HostDevice;
};

/// A point event: timeline `Tl` at its local tick `Tick`.
struct Access
{
  int Tl = -1;
  std::uint64_t Tick = 0;
};

/// Life-cycle + access history of one tracked allocation.
struct AllocState
{
  AllocInfo Info;
  enum class St { Live, PoolCached } State = St::Live;
  Access LastWrite;
  std::vector<Access> Reads;       ///< since the last write (bounded)
  double PoolReadyAt = 0.0;        ///< stream-ordered free point
  const StreamState *PoolFreedOn = nullptr; ///< identity only, never deref'd
};

/// A recently freed range, kept so late accesses / double frees can be
/// attributed (bounded FIFO).
struct FreedRange
{
  std::size_t Bytes = 0;
  std::string Label;
  void *Owned = nullptr; ///< quarantined storage, std::freed on eviction
};

struct Checker
{
  std::mutex Mutex;
  CheckConfig Config;
  std::uint64_t Gen = 1; ///< bumped on Reset to invalidate cached thread ids
  std::vector<Timeline> Timelines;
  std::map<const void *, AllocState> Live;      ///< base ptr -> state
  std::map<const void *, FreedRange> Freed;     ///< tombstones
  std::deque<const void *> FreedOrder;          ///< eviction order
  std::size_t QuarantineBytes = 0;              ///< sum of Owned tombstones
  std::unordered_map<const StreamState *, int> StreamTl;
  std::unordered_map<std::uint64_t, VectorClock> Tokens; ///< events, forks
  std::uint64_t NextToken = 1;
  int NextThread = 0;
  std::vector<Violation> Violations;
  std::uint64_t Counts[5] = {};

  // release whatever is still quarantined behind the tombstones; without
  // this the storage survives the singleton and shows up as a leak under
  // LeakSanitizer in any process that exits with a warm quarantine
  ~Checker()
  {
    for (auto &kv : Freed)
      if (kv.second.Owned)
        std::free(kv.second.Owned);
  }
};

Checker &Self()
{
  static Checker c;
  return c;
}

constexpr std::size_t MaxTombstones = 4096;
constexpr std::size_t MaxReadsPerAlloc = 16;
constexpr std::size_t MaxQuarantineBytes = std::size_t(64) << 20;

/// Requires Self().Mutex held.
int ThreadTlLocked(Checker &c)
{
  thread_local std::uint64_t gen = 0;
  thread_local int id = -1;
  if (gen != c.Gen || id < 0)
  {
    gen = c.Gen;
    id = static_cast<int>(c.Timelines.size());
    Timeline t;
    t.Name = "thread#" + std::to_string(c.NextThread++);
    t.VC.Set(id, 1);
    c.Timelines.push_back(std::move(t));
  }
  return id;
}

/// Requires Self().Mutex held.
int StreamTlLocked(Checker &c, const StreamState *s)
{
  auto it = c.StreamTl.find(s);
  if (it != c.StreamTl.end())
    return it->second;
  const int id = static_cast<int>(c.Timelines.size());
  Timeline t;
  t.IsStream = true;
  t.Node = s->Node;
  t.Device = s->Device;
  t.Name = "stream#" + std::to_string(c.StreamTl.size()) + "(node" +
           std::to_string(s->Node) + " dev" + std::to_string(s->Device) + ")";
  t.VC.Set(id, 1);
  c.Timelines.push_back(std::move(t));
  c.StreamTl.emplace(s, id);
  return id;
}

/// True when point event `a` happened before the state of the timeline
/// whose clock is `vc`.
bool Ordered(const Access &a, const VectorClock &vc)
{
  return a.Tl < 0 || vc.Get(a.Tl) >= a.Tick;
}

// local naming helpers: the canonical vp::ToString overloads live in the
// platform library, which links *this* library — do not depend back on it
const char *SpaceName(MemSpace s)
{
  switch (s)
  {
    case MemSpace::Host: return "host";
    case MemSpace::HostPinned: return "host_pinned";
    case MemSpace::Device: return "device";
    case MemSpace::Managed: return "managed";
  }
  return "unknown";
}

const char *PmName(PmKind p)
{
  switch (p)
  {
    case PmKind::None: return "none";
    case PmKind::Cuda: return "cuda";
    case PmKind::OpenMP: return "openmp";
    case PmKind::Hip: return "hip";
    case PmKind::Sycl: return "sycl";
  }
  return "unknown";
}

std::string LabelOf(const AllocInfo &info, const void *p)
{
  std::ostringstream os;
  os << SpaceName(info.Space) << '[' << info.Bytes << "B]@" << p;
  if (info.Pm != PmKind::None)
    os << " pm=" << PmName(info.Pm);
  return os.str();
}

/// Record a violation (requires lock held). Throws when FailFast is set.
void RecordLocked(Checker &c, ViolationKind kind, const void *p,
                  const std::string &msg)
{
  c.Counts[static_cast<int>(kind)]++;
  if (c.Violations.size() < c.Config.MaxReports)
    c.Violations.push_back(Violation{kind, msg, p});
  if (c.Config.FailFast)
    throw Error("vp::check [" + std::string(ToString(kind)) + "] " + msg);
}

/// Containing-allocation lookup (requires lock held).
std::pair<const void *, AllocState *> FindLocked(Checker &c, const void *p)
{
  auto it = c.Live.upper_bound(p);
  if (it == c.Live.begin())
    return {nullptr, nullptr};
  --it;
  const char *base = static_cast<const char *>(it->first);
  const char *q = static_cast<const char *>(p);
  if (q < base + (it->second.Info.Bytes ? it->second.Info.Bytes : 1))
    return {it->first, &it->second};
  return {nullptr, nullptr};
}

/// Tombstone lookup (requires lock held).
const std::string *FindFreedLocked(Checker &c, const void *p)
{
  auto it = c.Freed.upper_bound(p);
  if (it == c.Freed.begin())
    return nullptr;
  --it;
  const char *base = static_cast<const char *>(it->first);
  const char *q = static_cast<const char *>(p);
  if (q < base + (it->second.Bytes ? it->second.Bytes : 1))
    return &it->second.Label;
  return nullptr;
}

/// Drop one tombstone, releasing quarantined storage (requires lock held).
void EraseTombstoneLocked(Checker &c,
                          std::map<const void *, FreedRange>::iterator it)
{
  if (it->second.Owned)
  {
    c.QuarantineBytes -= std::min(c.QuarantineBytes, it->second.Bytes);
    std::free(it->second.Owned);
  }
  c.Freed.erase(it);
}

/// Evict oldest tombstones past the count/byte caps (requires lock held).
void EvictTombstonesLocked(Checker &c)
{
  while (!c.FreedOrder.empty() && (c.FreedOrder.size() > MaxTombstones ||
                                   c.QuarantineBytes > MaxQuarantineBytes))
  {
    auto it = c.Freed.find(c.FreedOrder.front());
    if (it != c.Freed.end())
      EraseTombstoneLocked(c, it);
    c.FreedOrder.pop_front();
  }
}

void TombstoneLocked(Checker &c, const void *p, std::size_t bytes,
                     std::string label)
{
  c.Freed[p] = FreedRange{bytes, std::move(label), nullptr};
  c.FreedOrder.push_back(p);
  EvictTombstonesLocked(c);
}

/// Shared body of all read hooks (requires lock held). `tl` is the
/// accessing timeline at its current clock.
void ReadLocked(Checker &c, int tl, const void *p, const char *what)
{
  auto [base, st] = FindLocked(c, p);
  if (!st)
  {
    if (const std::string *label = FindFreedLocked(c, p))
      RecordLocked(c, ViolationKind::UseAfterFree, p,
                   std::string(what) + " of freed memory (" + *label +
                     ") by " + c.Timelines[static_cast<std::size_t>(tl)].Name);
    return;
  }
  Timeline &T = c.Timelines[static_cast<std::size_t>(tl)];
  if (st->State == AllocState::St::PoolCached)
  {
    RecordLocked(c, ViolationKind::UseAfterFree, base,
                 std::string(what) + " of pool-cached block " +
                   LabelOf(st->Info, base) + " by " + T.Name);
    return;
  }
  const Access &w = st->LastWrite;
  if (w.Tl >= 0 && w.Tl != tl && !Ordered(w, T.VC))
  {
    const Timeline &W = c.Timelines[static_cast<std::size_t>(w.Tl)];
    if (W.IsStream || T.IsStream)
    {
      const ViolationKind kind = T.IsStream
                                   ? ViolationKind::CrossStreamRace
                                   : ViolationKind::UnsyncedHostAccess;
      RecordLocked(c, kind, base,
                   std::string(what) + " of " + LabelOf(st->Info, base) +
                     " by " + T.Name + " while the last write by " + W.Name +
                     " is not synchronized");
    }
  }
  T.VC.Set(tl, T.VC.Get(tl) + 1);
  if (st->Reads.size() >= MaxReadsPerAlloc)
    st->Reads.erase(st->Reads.begin());
  st->Reads.push_back(Access{tl, T.VC.Get(tl)});
}

/// Shared body of all write hooks (requires lock held).
void WriteLocked(Checker &c, int tl, const void *p, const char *what)
{
  auto [base, st] = FindLocked(c, p);
  if (!st)
  {
    if (const std::string *label = FindFreedLocked(c, p))
      RecordLocked(c, ViolationKind::UseAfterFree, p,
                   std::string(what) + " to freed memory (" + *label +
                     ") by " + c.Timelines[static_cast<std::size_t>(tl)].Name);
    return;
  }
  Timeline &T = c.Timelines[static_cast<std::size_t>(tl)];
  if (st->State == AllocState::St::PoolCached)
  {
    RecordLocked(c, ViolationKind::UseAfterFree, base,
                 std::string(what) + " to pool-cached block " +
                   LabelOf(st->Info, base) + " by " + T.Name);
    return;
  }
  const Access &w = st->LastWrite;
  if (w.Tl >= 0 && w.Tl != tl && !Ordered(w, T.VC))
  {
    const Timeline &W = c.Timelines[static_cast<std::size_t>(w.Tl)];
    if (W.IsStream || T.IsStream)
      RecordLocked(c, ViolationKind::CrossStreamRace, base,
                   std::string(what) + " to " + LabelOf(st->Info, base) +
                     " by " + T.Name + " races with the write by " + W.Name +
                     " (no event edge between the streams)");
  }
  else
  {
    for (const Access &r : st->Reads)
    {
      if (r.Tl == tl || Ordered(r, T.VC))
        continue;
      const Timeline &R = c.Timelines[static_cast<std::size_t>(r.Tl)];
      if (!R.IsStream && !T.IsStream)
        continue;
      RecordLocked(c, ViolationKind::CrossStreamRace, base,
                   std::string(what) + " to " + LabelOf(st->Info, base) +
                     " by " + T.Name + " races with an unsynchronized read by " +
                     R.Name);
      break;
    }
  }
  T.VC.Set(tl, T.VC.Get(tl) + 1);
  st->LastWrite = Access{tl, T.VC.Get(tl)};
  st->Reads.clear();
}

} // namespace

// ---------------------------------------------------------------------------
void Configure(const CheckConfig &cfg)
{
  Checker &c = Self();
  std::lock_guard<std::mutex> lock(c.Mutex);
  c.Config = cfg;
  EnabledState.store(cfg.Enabled ? 1 : 0, std::memory_order_relaxed);
}

CheckConfig GetConfig()
{
  Checker &c = Self();
  std::lock_guard<std::mutex> lock(c.Mutex);
  CheckConfig cfg = c.Config;
  cfg.Enabled = Enabled();
  return cfg;
}

void Enable(bool on)
{
  EnabledState.store(on ? 1 : 0, std::memory_order_relaxed);
}

bool Enabled()
{
  int s = EnabledState.load(std::memory_order_relaxed);
  if (s < 0)
  {
    const char *e = std::getenv("VP_CHECK");
    s = (e && *e && !(e[0] == '0' && e[1] == '\0')) ? 1 : 0;
    EnabledState.store(s, std::memory_order_relaxed);
  }
  return s == 1;
}

void Reset()
{
  Checker &c = Self();
  std::lock_guard<std::mutex> lock(c.Mutex);
  c.Gen++;
  c.Timelines.clear();
  c.Live.clear();
  for (auto &kv : c.Freed)
    if (kv.second.Owned)
      std::free(kv.second.Owned);
  c.Freed.clear();
  c.FreedOrder.clear();
  c.QuarantineBytes = 0;
  c.StreamTl.clear();
  c.Tokens.clear();
  c.NextToken = 1;
  c.NextThread = 0;
  c.Violations.clear();
  for (auto &n : c.Counts)
    n = 0;
}

Report Snapshot()
{
  Checker &c = Self();
  std::lock_guard<std::mutex> lock(c.Mutex);
  Report r;
  r.Violations = c.Violations;
  for (int k = 0; k < 5; ++k)
    r.Counts[k] = c.Counts[k];
  return r;
}

Report Finalize()
{
  Checker &c = Self();
  std::lock_guard<std::mutex> lock(c.Mutex);
  if (Enabled())
  {
    for (const auto &kv : c.Live)
      if (kv.second.State == AllocState::St::Live)
        RecordLocked(c, ViolationKind::Leak, kv.first,
                     "allocation " + LabelOf(kv.second.Info, kv.first) +
                       " still live at Finalize");
  }
  Report r;
  r.Violations = c.Violations;
  for (int k = 0; k < 5; ++k)
    r.Counts[k] = c.Counts[k];
  return r;
}

// ---------------------------------------------------------------------------
void OnAlloc(void *p, const AllocInfo &info, const StreamState *s)
{
  if (!Enabled())
    return;
  Checker &c = Self();
  std::lock_guard<std::mutex> lock(c.Mutex);
  // the address range is live again: drop every overlapping tombstone
  // (allocators recycle ranges at different bases). Stale FreedOrder
  // entries are tolerated — eviction is best effort anyway.
  {
    const char *b = static_cast<const char *>(p);
    const char *e = b + (info.Bytes ? info.Bytes : 1);
    auto it = c.Freed.upper_bound(p);
    if (it != c.Freed.begin())
    {
      auto prev = std::prev(it);
      const char *pb = static_cast<const char *>(prev->first);
      if (pb + (prev->second.Bytes ? prev->second.Bytes : 1) > b)
      {
        it = std::next(prev);
        EraseTombstoneLocked(c, prev);
      }
    }
    while (it != c.Freed.end() && static_cast<const char *>(it->first) < e)
    {
      auto cur = it++;
      EraseTombstoneLocked(c, cur);
    }
  }
  const int tl = s ? StreamTlLocked(c, s) : ThreadTlLocked(c);
  if (s) // a stream-ordered allocation is a submission by this thread
  {
    const int tt = ThreadTlLocked(c);
    c.Timelines[static_cast<std::size_t>(tl)].VC.Join(
      c.Timelines[static_cast<std::size_t>(tt)].VC);
  }
  Timeline &T = c.Timelines[static_cast<std::size_t>(tl)];
  T.VC.Set(tl, T.VC.Get(tl) + 1);
  AllocState st;
  st.Info = info;
  st.LastWrite = Access{tl, T.VC.Get(tl)}; // zero-initialization
  c.Live[p] = std::move(st);
}

void OnFree(void *p)
{
  if (!Enabled())
    return;
  Checker &c = Self();
  std::lock_guard<std::mutex> lock(c.Mutex);
  auto it = c.Live.find(p);
  if (it == c.Live.end())
    return;
  TombstoneLocked(c, p, it->second.Info.Bytes,
                  LabelOf(it->second.Info, p));
  c.Live.erase(it);
}

bool QuarantineFree(void *p)
{
  if (!Enabled())
    return false;
  Checker &c = Self();
  std::lock_guard<std::mutex> lock(c.Mutex);
  auto it = c.Freed.find(p);
  if (it == c.Freed.end() || it->second.Owned)
    return false;
  it->second.Owned = p;
  c.QuarantineBytes += it->second.Bytes;
  EvictTombstonesLocked(c);
  return true;
}

bool InterceptFree(void *p)
{
  if (!Enabled())
    return false;
  Checker &c = Self();
  std::lock_guard<std::mutex> lock(c.Mutex);
  auto it = c.Live.find(p);
  if (it != c.Live.end() && it->second.State == AllocState::St::PoolCached)
  {
    RecordLocked(c, ViolationKind::DoubleFree, p,
                 "double free of " + LabelOf(it->second.Info, p) +
                   " (already returned to the memory pool)");
    return true; // swallow: the pool still owns the block
  }
  if (it == c.Live.end())
  {
    if (const std::string *label = FindFreedLocked(c, p))
    {
      RecordLocked(c, ViolationKind::DoubleFree, p,
                   "double free of already-freed " + *label);
      return true;
    }
  }
  return false;
}

void OnPoolFree(void *p, const StreamState *s, double readyAt)
{
  if (!Enabled())
    return;
  Checker &c = Self();
  std::lock_guard<std::mutex> lock(c.Mutex);
  auto it = c.Live.find(p);
  if (it == c.Live.end())
    return;
  AllocState &st = it->second;
  st.State = AllocState::St::PoolCached;
  st.PoolReadyAt = readyAt;
  st.PoolFreedOn = s;
  st.Reads.clear();
}

void OnPoolReuse(void *p, const StreamState *s, double requesterNow)
{
  if (!Enabled())
    return;
  Checker &c = Self();
  std::lock_guard<std::mutex> lock(c.Mutex);
  auto it = c.Live.find(p);
  if (it != c.Live.end() && it->second.State == AllocState::St::PoolCached)
  {
    AllocState &st = it->second;
    const bool sameStream = s && s == st.PoolFreedOn;
    if (!sameStream && requesterNow + 1e-12 < st.PoolReadyAt)
    {
      std::ostringstream os;
      os << "premature reuse of pooled block " << LabelOf(st.Info, p)
         << ": requester at t=" << requesterNow
         << " has not passed the recorded free point t=" << st.PoolReadyAt;
      if (st.PoolFreedOn)
      {
        auto fit = c.StreamTl.find(st.PoolFreedOn);
        if (fit != c.StreamTl.end())
          os << " of "
             << c.Timelines[static_cast<std::size_t>(fit->second)].Name;
      }
      RecordLocked(c, ViolationKind::UseAfterFree, p, os.str());
    }
    st.State = AllocState::St::Live;
    st.PoolFreedOn = nullptr;
  }
  // the reused block is zero-filled by the requester's timeline
  const int tl = s ? StreamTlLocked(c, s) : ThreadTlLocked(c);
  if (s)
  {
    const int tt = ThreadTlLocked(c);
    c.Timelines[static_cast<std::size_t>(tl)].VC.Join(
      c.Timelines[static_cast<std::size_t>(tt)].VC);
  }
  Timeline &T = c.Timelines[static_cast<std::size_t>(tl)];
  T.VC.Set(tl, T.VC.Get(tl) + 1);
  if (it != c.Live.end())
  {
    it->second.LastWrite = Access{tl, T.VC.Get(tl)};
    it->second.Reads.clear();
  }
}

void OnPoolRelease(void *p)
{
  if (!Enabled())
    return;
  Checker &c = Self();
  std::lock_guard<std::mutex> lock(c.Mutex);
  auto it = c.Live.find(p);
  if (it != c.Live.end())
    it->second.State = AllocState::St::Live;
}

void OnCopy(const StreamState *s, void *dst, const void *src,
            std::size_t bytes)
{
  (void)bytes;
  if (!Enabled())
    return;
  Checker &c = Self();
  std::lock_guard<std::mutex> lock(c.Mutex);
  const int tl = StreamTlLocked(c, s);
  const int tt = ThreadTlLocked(c);
  // submission edge: the stream inherits everything the thread knows
  c.Timelines[static_cast<std::size_t>(tl)].VC.Join(
    c.Timelines[static_cast<std::size_t>(tt)].VC);
  ReadLocked(c, tl, src, "stream read");
  WriteLocked(c, tl, dst, "stream write");
}

void OnHostCopy(void *dst, const void *src, std::size_t bytes)
{
  (void)bytes;
  if (!Enabled())
    return;
  Checker &c = Self();
  std::lock_guard<std::mutex> lock(c.Mutex);
  const int tt = ThreadTlLocked(c);
  ReadLocked(c, tt, src, "host read");
  WriteLocked(c, tt, dst, "host write");
}

void OnSubmit(const StreamState *s)
{
  if (!Enabled())
    return;
  Checker &c = Self();
  std::lock_guard<std::mutex> lock(c.Mutex);
  const int tl = StreamTlLocked(c, s);
  const int tt = ThreadTlLocked(c);
  Timeline &T = c.Timelines[static_cast<std::size_t>(tl)];
  T.VC.Join(c.Timelines[static_cast<std::size_t>(tt)].VC);
  T.VC.Set(tl, T.VC.Get(tl) + 1);
}

void OnStreamSync(const StreamState *s)
{
  if (!Enabled())
    return;
  Checker &c = Self();
  std::lock_guard<std::mutex> lock(c.Mutex);
  const int tl = StreamTlLocked(c, s);
  const int tt = ThreadTlLocked(c);
  c.Timelines[static_cast<std::size_t>(tt)].VC.Join(
    c.Timelines[static_cast<std::size_t>(tl)].VC);
}

void OnDeviceSync(int node, DeviceId device)
{
  if (!Enabled())
    return;
  Checker &c = Self();
  std::lock_guard<std::mutex> lock(c.Mutex);
  const int tt = ThreadTlLocked(c);
  VectorClock &tvc = c.Timelines[static_cast<std::size_t>(tt)].VC;
  for (std::size_t i = 0; i < c.Timelines.size(); ++i)
  {
    const Timeline &t = c.Timelines[i];
    if (t.IsStream && t.Node == node && t.Device == device)
      tvc.Join(t.VC);
  }
}

std::uint64_t OnEventRecord(const StreamState *s)
{
  if (!Enabled())
    return 0;
  Checker &c = Self();
  std::lock_guard<std::mutex> lock(c.Mutex);
  const int tl = StreamTlLocked(c, s);
  const int tt = ThreadTlLocked(c);
  Timeline &T = c.Timelines[static_cast<std::size_t>(tl)];
  T.VC.Join(c.Timelines[static_cast<std::size_t>(tt)].VC);
  T.VC.Set(tl, T.VC.Get(tl) + 1);
  const std::uint64_t tok = c.NextToken++;
  c.Tokens[tok] = T.VC;
  return tok;
}

void OnStreamWaitEvent(const StreamState *s, std::uint64_t token)
{
  if (!Enabled() || !token)
    return;
  Checker &c = Self();
  std::lock_guard<std::mutex> lock(c.Mutex);
  auto it = c.Tokens.find(token);
  if (it == c.Tokens.end())
    return;
  const int tl = StreamTlLocked(c, s);
  const int tt = ThreadTlLocked(c);
  Timeline &T = c.Timelines[static_cast<std::size_t>(tl)];
  T.VC.Join(it->second);
  T.VC.Join(c.Timelines[static_cast<std::size_t>(tt)].VC);
}

void OnEventSync(std::uint64_t token)
{
  if (!Enabled() || !token)
    return;
  Checker &c = Self();
  std::lock_guard<std::mutex> lock(c.Mutex);
  auto it = c.Tokens.find(token);
  if (it == c.Tokens.end())
    return;
  const int tt = ThreadTlLocked(c);
  c.Timelines[static_cast<std::size_t>(tt)].VC.Join(it->second);
}

std::uint64_t OnThreadSpawn()
{
  if (!Enabled())
    return 0;
  Checker &c = Self();
  std::lock_guard<std::mutex> lock(c.Mutex);
  const int tt = ThreadTlLocked(c);
  const std::uint64_t tok = c.NextToken++;
  c.Tokens[tok] = c.Timelines[static_cast<std::size_t>(tt)].VC;
  return tok;
}

void OnThreadStart(std::uint64_t token)
{
  if (!Enabled() || !token)
    return;
  Checker &c = Self();
  std::lock_guard<std::mutex> lock(c.Mutex);
  auto it = c.Tokens.find(token);
  if (it == c.Tokens.end())
    return;
  const int tt = ThreadTlLocked(c);
  c.Timelines[static_cast<std::size_t>(tt)].VC.Join(it->second);
  c.Tokens.erase(it);
}

std::uint64_t OnThreadEnd()
{
  if (!Enabled())
    return 0;
  Checker &c = Self();
  std::lock_guard<std::mutex> lock(c.Mutex);
  const int tt = ThreadTlLocked(c);
  const std::uint64_t tok = c.NextToken++;
  c.Tokens[tok] = c.Timelines[static_cast<std::size_t>(tt)].VC;
  return tok;
}

void OnThreadJoin(std::uint64_t token)
{
  if (!Enabled() || !token)
    return;
  Checker &c = Self();
  std::lock_guard<std::mutex> lock(c.Mutex);
  auto it = c.Tokens.find(token);
  if (it == c.Tokens.end())
    return;
  const int tt = ThreadTlLocked(c);
  c.Timelines[static_cast<std::size_t>(tt)].VC.Join(it->second);
  c.Tokens.erase(it);
}

// The exec engine's deferred tasks and pool shards use the same
// fork/join vector-clock protocol as ScopedThread: a task is a
// short-lived logical thread whose lifetime is bracketed by an enqueue
// on the submitter and a fence wait on the joiner. Distinct entry
// points keep call sites self-documenting and give the engine a stable
// seam even if task edges later grow task-specific state.

std::uint64_t OnTaskSpawn()
{
  return OnThreadSpawn();
}

void OnTaskStart(std::uint64_t token)
{
  OnThreadStart(token);
}

std::uint64_t OnTaskEnd()
{
  return OnThreadEnd();
}

void OnTaskJoin(std::uint64_t token)
{
  OnThreadJoin(token);
}

void HostRead(const void *p, std::size_t bytes, const char *what)
{
  (void)bytes;
  if (!Enabled())
    return;
  Checker &c = Self();
  std::lock_guard<std::mutex> lock(c.Mutex);
  auto [base, st] = FindLocked(c, p);
  if (st && st->Info.Space == MemSpace::Device)
  {
    const int tt = ThreadTlLocked(c);
    RecordLocked(c, ViolationKind::UnsyncedHostAccess, base,
                 std::string(what) + " of device memory " +
                   LabelOf(st->Info, base) + " by " +
                   c.Timelines[static_cast<std::size_t>(tt)].Name +
                   " (device memory is not host addressable)");
    return;
  }
  ReadLocked(c, ThreadTlLocked(c), p, what);
}

void HostWrite(void *p, std::size_t bytes, const char *what)
{
  (void)bytes;
  if (!Enabled())
    return;
  Checker &c = Self();
  std::lock_guard<std::mutex> lock(c.Mutex);
  auto [base, st] = FindLocked(c, p);
  if (st && st->Info.Space == MemSpace::Device)
  {
    const int tt = ThreadTlLocked(c);
    RecordLocked(c, ViolationKind::UnsyncedHostAccess, base,
                 std::string(what) + " to device memory " +
                   LabelOf(st->Info, base) + " by " +
                   c.Timelines[static_cast<std::size_t>(tt)].Name +
                   " (device memory is not host addressable)");
    return;
  }
  WriteLocked(c, ThreadTlLocked(c), p, what);
}

} // namespace check
} // namespace vp
