#ifndef senseiAutocorrelation_h
#define senseiAutocorrelation_h

/// @file senseiAutocorrelation.h
/// Time autocorrelation analysis back end (SENSEI proper ships one; it is
/// a classic in situ reduction because it needs state the simulation has
/// already overwritten). Keeps a sliding window of the last K snapshots
/// of one column and, each step, computes the lag correlation
///
///     ACF(tau) = (1/N) sum_i v_i(T) * v_i(T - tau),  tau = 0..K-1
///
/// across all ranks. Snapshots are deep copies by necessity — by the
/// next step the simulation has overwritten its buffers — making this
/// back end a natural stress test of the data model's deep-copy path,
/// and, like every back end, it inherits the placement and execution
/// method extensions from the AnalysisAdaptor base class (the lag dot
/// products run on the assigned device or the host).

#include "senseiAnalysisAdaptor.h"
#include "senseiAsyncRunner.h"
#include "svtkHAMRDataArray.h"

#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace sensei
{

class Autocorrelation : public AnalysisAdaptor
{
public:
  static Autocorrelation *New() { return new Autocorrelation; }

  const char *GetClassName() const override
  {
    return "sensei::Autocorrelation";
  }

  void SetMeshName(const std::string &m) { this->MeshName_ = m; }
  void SetColumn(const std::string &c) { this->Column_ = c; }

  /// Window length K: lags 0..K-1 are reported (default 8).
  void SetWindow(long k) { this->Window_ = k > 0 ? k : 8; }
  long GetWindow() const { return this->Window_; }

  bool Execute(DataAdaptor *data) override;
  void DrainAsync() override { this->Runner_.Drain(); }
  int Finalize() override;

  /// The most recent ACF: element tau is the lag-tau correlation; fewer
  /// than K entries until the window fills. Empty before the first
  /// completed execution.
  std::vector<double> GetLastResult() const;

protected:
  Autocorrelation() = default;
  ~Autocorrelation() override { this->Runner_.Drain(); }

private:
  void Run(std::vector<svtkSmartPtr<svtkHAMRDoubleArray>> window,
           minimpi::Communicator *comm, int device);

  std::string MeshName_ = "table";
  std::string Column_;
  long Window_ = 8;

  /// newest snapshot last
  std::deque<svtkSmartPtr<svtkHAMRDoubleArray>> History_;

  AsyncRunner Runner_;
  std::optional<minimpi::Communicator> AsyncComm_;

  mutable std::mutex ResultMutex_;
  std::vector<double> Last_;
};

} // namespace sensei

#endif
