#ifndef senseiSerialization_h
#define senseiSerialization_h

/// @file senseiSerialization.h
/// Byte-level serialization of data-model objects for the in transit
/// transport and the binary file writers. Two wire formats exist, both
/// with fixed-width little-endian integer fields (the stream is decodable
/// regardless of either end's size_t width or byte order):
///
/// Legacy (uncompressed, values widened to f64):
///
///   u64 columnCount
///   per column: u64 nameLength, name bytes,
///               u64 tupleCount, u64 componentCount,
///               f64 values [tupleCount * componentCount] (LE bit patterns)
///
/// Compressed ("STBC"): columns keep their native scalar type and each
/// column's values travel as one self-describing cmp chunk (codec id,
/// dtype, counts, checksum in the chunk header — see cmpCodec.h):
///
///   u8[4] magic "STBC", u8 version (1), u8 flags, u16 reserved
///   u64 columnCount
///   per column: u64 nameLength, name bytes,
///               u64 tupleCount, u64 componentCount,
///               cmp chunk (48-byte header + encoded payload)
///
/// The codec is negotiated per array from the requested parameters and
/// the column dtype (integers -> delta-varint, floats -> quantize or
/// shuffle-rle, see cmp::Negotiate); the chunk header records what was
/// actually used, so decoding needs no out-of-band information.

#include "cmpCodec.h"
#include "svtkDataObject.h"

#include <cstdint>
#include <vector>

namespace sensei
{

/// Serialize a table to bytes (legacy format). Device-resident columns
/// are pulled through the data model's host access path (one D2H move
/// per column).
std::vector<std::uint8_t> SerializeTable(const svtkTable *table);

/// Rebuild a table from SerializeTable bytes; columns come back as
/// host-resident double arrays. The caller owns the returned reference.
/// Throws std::runtime_error on malformed input.
svtkTable *DeserializeTable(const std::uint8_t *bytes, std::size_t size);

/// Convenience overload.
inline svtkTable *DeserializeTable(const std::vector<std::uint8_t> &bytes)
{
  return DeserializeTable(bytes.data(), bytes.size());
}

/// Serialize a table in the compressed format, requesting `params` for
/// every column (negotiated per column dtype; lossy codecs never apply
/// to integer columns). Columns keep their native scalar type.
std::vector<std::uint8_t> SerializeTableCompressed(const svtkTable *table,
                                                   const cmp::Params &params);

/// Rebuild a table from SerializeTableCompressed bytes; columns come back
/// as host-resident AOS arrays of their native scalar type. The caller
/// owns the returned reference. Throws std::runtime_error on malformed or
/// corrupt input (including chunk checksum mismatches).
svtkTable *DeserializeTableCompressed(const std::uint8_t *bytes,
                                     std::size_t size);

/// Convenience overload.
inline svtkTable *
DeserializeTableCompressed(const std::vector<std::uint8_t> &bytes)
{
  return DeserializeTableCompressed(bytes.data(), bytes.size());
}

/// Detect the format by magic and dispatch to the matching deserializer.
svtkTable *DeserializeTableAuto(const std::uint8_t *bytes, std::size_t size);

/// Convenience overload.
inline svtkTable *DeserializeTableAuto(const std::vector<std::uint8_t> &bytes)
{
  return DeserializeTableAuto(bytes.data(), bytes.size());
}

/// Merge rows of several tables with identical schemas (same column
/// names, components, order) into one host-resident table. Used by the
/// in transit endpoint to assemble the blocks it receives. The caller
/// owns the returned reference. Throws std::runtime_error on schema
/// mismatch; an empty input list yields an empty table.
svtkTable *ConcatenateTables(const std::vector<svtkTable *> &parts);

} // namespace sensei

#endif
