#ifndef senseiSerialization_h
#define senseiSerialization_h

/// @file senseiSerialization.h
/// Byte-level serialization of data-model objects for the in transit
/// transport: a svtkTable (any column flavour — heterogeneous columns are
/// staged through the host access path) round trips to a contiguous
/// buffer. Format (little endian, as the host lays it out):
///
///   u64 columnCount
///   per column: u64 nameLength, name bytes,
///               u64 tupleCount, u64 componentCount,
///               f64 values [tupleCount * componentCount]
///
/// Values travel as f64 regardless of the source scalar type, matching
/// the analysis back ends which consume doubles.

#include "svtkDataObject.h"

#include <cstdint>
#include <vector>

namespace sensei
{

/// Serialize a table to bytes. Device-resident columns are pulled through
/// the data model's host access path (one D2H move per column).
std::vector<std::uint8_t> SerializeTable(const svtkTable *table);

/// Rebuild a table from SerializeTable bytes; columns come back as
/// host-resident double arrays. The caller owns the returned reference.
/// Throws std::runtime_error on malformed input.
svtkTable *DeserializeTable(const std::uint8_t *bytes, std::size_t size);

/// Convenience overload.
inline svtkTable *DeserializeTable(const std::vector<std::uint8_t> &bytes)
{
  return DeserializeTable(bytes.data(), bytes.size());
}

/// Merge rows of several tables with identical schemas (same column
/// names, components, order) into one host-resident table. Used by the
/// in transit endpoint to assemble the blocks it receives. The caller
/// owns the returned reference. Throws std::runtime_error on schema
/// mismatch; an empty input list yields an empty table.
svtkTable *ConcatenateTables(const std::vector<svtkTable *> &parts);

} // namespace sensei

#endif
