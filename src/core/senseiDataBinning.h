#ifndef senseiDataBinning_h
#define senseiDataBinning_h

/// @file senseiDataBinning.h
/// The data binning analysis back end (paper Section 4.2). Given tabular
/// data where columns are variables and rows are co-occurring realizations,
/// binning uses a chosen subset of the variables as the coordinate axes of
/// a uniform Cartesian mesh: each realization's coordinate values locate
/// the mesh cell (bin) it belongs to. Incrementing a per-cell counter
/// yields a histogram; additional reductions (sum, min, max, average)
/// incorporate non-coordinate variables into the result. Axis bounds may
/// be fixed or computed on the fly from the data (with an MPI allreduce
/// across ranks).
///
/// The implementation follows the paper: a CPU path that runs on the host
/// and a CUDA path that runs on an assigned device (using the data model's
/// PM-agnostic access so the simulation's PM never matters), both runnable
/// asynchronously in a C++ thread, with placement and execution method
/// controlled through the AnalysisAdaptor base extensions. The GPU path
/// uses atomic memory updates to handle races between threads hitting the
/// same bin — which is why, as the paper observes, binning is not an ideal
/// GPU algorithm.

#include "senseiAnalysisAdaptor.h"
#include "senseiAsyncRunner.h"
#include "svtkDataObject.h"
#include "svtkHAMRDataArray.h"

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace vp
{
namespace graph
{
class Session;
}
}

namespace sensei
{

/// Reduction used to incorporate a variable into the binning result.
enum class BinningOp : int
{
  Count = 0, ///< per-bin realization count (histogram)
  Sum,
  Min,
  Max,
  Average
};

/// Parse an operation name ("count", "sum", "min", "max", "average"/"avg").
/// Throws std::invalid_argument on unknown names.
BinningOp BinningOpFromName(const std::string &name);

/// Short human readable name.
const char *BinningOpName(BinningOp op);

/// How the device path accumulates into shared bins. The paper observes
/// that "data binning is not an ideal algorithm for GPUs since it
/// requires the use of atomic memory updates", and lists optimizing the
/// GPU implementation as future work; the privatized strategy is that
/// optimization: each thread block accumulates into a private (shared
/// memory) copy of the histogram, paying only block-local atomics, and a
/// final merge kernel reduces the private copies — trading an extra
/// O(bins x copies) merge for near-streaming accumulation throughput.
enum class GpuBinningStrategy : int
{
  GlobalAtomics = 0, ///< naive: every update is a global atomic
  Privatized         ///< per-block private histograms + merge kernel
};

/// Parse a strategy name ("global_atomics", "privatized").
GpuBinningStrategy GpuBinningStrategyFromName(const std::string &name);

/// One coordinate-system data binning operator instance.
class DataBinning : public AnalysisAdaptor
{
public:
  static DataBinning *New() { return new DataBinning; }

  const char *GetClassName() const override { return "sensei::DataBinning"; }

  // --- configuration ----------------------------------------------------------

  /// Mesh (table) to pull from the data adaptor.
  void SetMeshName(const std::string &name) { this->MeshName_ = name; }
  const std::string &GetMeshName() const { return this->MeshName_; }

  /// Coordinate axes: 1 to 3 column names.
  void SetAxes(const std::vector<std::string> &axes);
  const std::vector<std::string> &GetAxes() const { return this->Axes_; }

  /// Bins along each axis (same length as the axes list; a single value
  /// is broadcast to all axes).
  void SetResolution(const std::vector<long> &res);

  /// Fix axis `i`'s bounds instead of computing them from the data.
  void SetRange(int axis, double lo, double hi);

  /// Recompute bounds from the data every step (the default).
  void SetAutoRange(bool on) { this->AutoRange_ = on; }

  /// Add a reduction of `column` (ignored/empty for Count).
  void AddOperation(const std::string &column, BinningOp op);

  /// Drop every configured reduction (the implicit count remains). Used
  /// by steering to swap the rendered variable mid-run.
  void ClearOperations() { this->Ops_.clear(); }

  /// Write the result grid as <dir>/<prefix>_<step>.vti on rank 0 every
  /// `frequency` steps (0 disables writing, the default).
  void SetOutput(const std::string &dir, const std::string &prefix,
                 long frequency);

  /// Select the device accumulation strategy (default GlobalAtomics, the
  /// implementation the paper evaluated; Privatized is the optimization
  /// its future work calls for).
  void SetGpuStrategy(GpuBinningStrategy s) { this->GpuStrategy_ = s; }
  GpuBinningStrategy GetGpuStrategy() const { return this->GpuStrategy_; }

  /// Run asynchronous executions on real std::threads instead of the
  /// default deterministic virtual-time accounting (see
  /// senseiAsyncRunner.h for the trade-off).
  void SetUseRealThreads(bool on) { this->Runner_.SetUseRealThreads(on); }

  // --- framework interface -----------------------------------------------------

  bool Execute(DataAdaptor *data) override;
  void DrainAsync() override { this->Runner_.Drain(); }
  int Finalize() override;

  /// The most recent result: a uniform mesh whose point data holds one
  /// array per configured operation (named "<column>_<op>", plus
  /// "count"). Returns a new reference, or nullptr before the first
  /// completed Execute. For asynchronous execution the result trails the
  /// simulation by up to one in-flight step.
  svtkImageData *GetLastResult() const;

  /// Number of completed binning executions.
  long GetExecuteCount() const;

protected:
  DataBinning(); // out of line: GraphSession_ needs the complete type
  ~DataBinning() override;

private:
  struct Operation
  {
    std::string Column;
    BinningOp Kind = BinningOp::Count;
  };

  /// One block's typed columns, shared or deep-copied. A svtkTable mesh
  /// yields one block; a svtkMultiBlockDataSet yields one per non-null
  /// table block.
  struct BlockInput
  {
    std::vector<svtkSmartPtr<svtkHAMRDoubleArray>> AxisCols;
    std::vector<svtkSmartPtr<svtkHAMRDoubleArray>> ValueCols;
  };

  /// A step's worth of inputs.
  struct Snapshot
  {
    std::vector<BlockInput> Blocks;
    minimpi::Communicator *Comm = nullptr;
    long Step = 0;
    double Time = 0.0;
    int Device = DEVICE_HOST;
    std::size_t Rows = 0;  ///< total rows over the blocks
    std::size_t Bytes = 0; ///< payload held by the deep copy
  };

  bool GatherInputs(DataAdaptor *data, bool deepCopy, Snapshot &snap);
  void RunBinning(const Snapshot &snap);

  /// Placement with the captured-graph pin: while GraphSession_ holds an
  /// armed graph the capture-time device is kept (replay requires it),
  /// unless the policy has genuinely diverged from the pin — then the
  /// graph is dropped and placement re-decided.
  int PlaceForGraph(DataAdaptor *data, const sched::WorkHint &hint);

  void StoreResult(svtkImageData *image);

  std::string MeshName_ = "table";
  std::vector<std::string> Axes_;
  std::vector<long> Resolution_;
  std::vector<double> FixedLo_, FixedHi_;
  std::vector<bool> HasFixedRange_;
  bool AutoRange_ = true;
  std::vector<Operation> Ops_;

  std::string OutputDir_;
  std::string OutputPrefix_ = "binning";
  long OutputFrequency_ = 0;
  GpuBinningStrategy GpuStrategy_ = GpuBinningStrategy::GlobalAtomics;

  AsyncRunner Runner_;
  /// communicator duplicated for the in situ thread, so its collectives
  /// never interleave with the simulation's
  std::optional<minimpi::Communicator> AsyncComm_;

  /// Captured step-graph session for the device path (src/graph),
  /// created on the first device execution when vp::graph is enabled.
  std::unique_ptr<vp::graph::Session> GraphSession_;
  int GraphDevice_ = DEVICE_AUTO; ///< device pinned at capture

  mutable std::mutex ResultMutex_;
  svtkImageData *LastResult_ = nullptr;
  long ExecuteCount_ = 0;
};

} // namespace sensei

#endif
