#include "senseiProfiler.h"

namespace sensei
{

Profiler &Profiler::Global()
{
  static Profiler instance;
  return instance;
}

} // namespace sensei
