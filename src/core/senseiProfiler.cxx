#include "senseiProfiler.h"

#include "cmpCodec.h"
#include "execEngine.h"
#include "graphCapture.h"
#include "layoutMapping.h"
#include "schedPipeline.h"
#include "svcSession.h"
#include "vizConfig.h"
#include "vpChecker.h"
#include "vpFaultInjector.h"
#include "vpLoadTracker.h"
#include "vpMemoryPool.h"

#include <cstdio>
#include <sstream>

namespace sensei
{

Profiler &Profiler::Global()
{
  static Profiler instance;
  return instance;
}

Profiler::CounterSnapshot Profiler::Snapshot() const
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  CounterSnapshot out;
  for (const auto &kv : this->Series_)
    out[kv.first] = Counter{kv.second.Total, kv.second.Count, kv.second.Max};
  return out;
}

Profiler::CounterSnapshot Profiler::Delta(const CounterSnapshot &newer,
                                          const CounterSnapshot &older)
{
  CounterSnapshot out;
  for (const auto &kv : newer)
  {
    Counter d = kv.second;
    auto it = older.find(kv.first);
    if (it != older.end())
    {
      d.Total -= it->second.Total;
      d.Count -= it->second.Count;
    }
    out[kv.first] = d; // Max stays newer's cumulative max
  }
  return out;
}

std::string Profiler::ToJson() const
{
  std::lock_guard<std::mutex> lock(this->Mutex_);

  // escape per RFC 8259: quote, backslash, the common control shorthands,
  // and \u00XX for the remaining control bytes, so hostile event names
  // (embedded newlines, tabs, NULs) still produce parseable, diffable
  // output. key order is the map's lexicographic order, so two runs that
  // record the same events serialize byte identically.
  auto quote = [](const std::string &s)
  {
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (char c : s)
    {
      switch (c)
      {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20)
          {
            char u[8];
            std::snprintf(u, sizeof(u), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out += u;
          }
          else
            out += c;
      }
    }
    out += '"';
    return out;
  };

  std::ostringstream os;
  os.precision(12);
  os << "{\"schema\":\"" << SchemaVersion << "\",\"events\":{";
  bool first = true;
  for (const auto &kv : this->Series_)
  {
    if (!first)
      os << ',';
    first = false;
    const Stats &s = kv.second;
    const double mean =
      s.Count ? s.Total / static_cast<double>(s.Count) : 0.0;
    os << quote(kv.first) << ":{\"count\":" << s.Count
       << ",\"total\":" << s.Total << ",\"mean\":" << mean
       << ",\"max\":" << s.Max << '}';
  }
  os << "}}";
  return os.str();
}

void ExportPoolStats(Profiler &prof)
{
  const vp::PoolStats s = vp::PoolManager::Get().AggregateStats();
  prof.Event("pool::hits", static_cast<double>(s.Hits));
  prof.Event("pool::misses", static_cast<double>(s.Misses));
  prof.Event("pool::frees", static_cast<double>(s.Frees));
  prof.Event("pool::trims", static_cast<double>(s.Trims));
  prof.Event("pool::hit_rate", s.HitRate());
  prof.Event("pool::bytes_cached", static_cast<double>(s.BytesCached));
  prof.Event("pool::peak_bytes_cached",
             static_cast<double>(s.PeakBytesCached));
  prof.Event("pool::fragmentation", s.Fragmentation());
  prof.Event("pool::alloc_retries", static_cast<double>(s.AllocRetries));
}

void ExportCheckReport(Profiler &prof, const vp::check::Report &report)
{
  prof.Event("check::violations", static_cast<double>(report.Total()));
  for (int k = 0; k < 5; ++k)
    prof.Event(std::string("check::") +
                 vp::check::ToString(static_cast<vp::check::ViolationKind>(k)),
               static_cast<double>(report.Counts[k]));
  const vp::fault::FaultStats f = vp::fault::Stats();
  prof.Event("fault::alloc_failures", static_cast<double>(f.AllocFailures));
  prof.Event("fault::events_dropped", static_cast<double>(f.EventsDropped));
  prof.Event("fault::delays_applied", static_cast<double>(f.DelaysApplied));
}

void ExportSchedStats(Profiler &prof)
{
  const sched::PipelineStats s = sched::AggregateStats();
  prof.Event("sched::submitted", static_cast<double>(s.Submitted));
  prof.Event("sched::executed", static_cast<double>(s.Executed));
  prof.Event("sched::dropped", static_cast<double>(s.Dropped));
  prof.Event("sched::coalesced", static_cast<double>(s.Coalesced));
  prof.Event("sched::queue_depth_high_water",
             static_cast<double>(s.QueueDepthHighWater));
  prof.Event("sched::peak_queued_bytes",
             static_cast<double>(s.PeakQueuedBytes));
  prof.Event("sched::stall_seconds", s.StallSeconds);
  prof.Event("sched::host_fallbacks",
             static_cast<double>(sched::HostFallbackCount()));

  const std::vector<std::uint64_t> placements =
    vp::DeviceLoadTracker::Get().PlacementTotals();
  if (!placements.empty())
    prof.Event("sched::placements_host",
               static_cast<double>(placements[0]));
  for (std::size_t d = 1; d < placements.size(); ++d)
    prof.Event("sched::placements_dev" + std::to_string(d - 1),
               static_cast<double>(placements[d]));
}

void ExportCompressStats(Profiler &prof)
{
  const cmp::CodecStats s = cmp::Stats();
  prof.Event("cmp::encoded_chunks", static_cast<double>(s.EncodedChunks));
  prof.Event("cmp::decoded_chunks", static_cast<double>(s.DecodedChunks));
  prof.Event("cmp::fallbacks", static_cast<double>(s.Fallbacks));
  prof.Event("cmp::bytes_raw", static_cast<double>(s.BytesRaw));
  prof.Event("cmp::bytes_encoded", static_cast<double>(s.BytesEncoded));
  prof.Event("cmp::ratio", s.Ratio());
  prof.Event("cmp::encode_seconds", s.EncodeSeconds);
  prof.Event("cmp::decode_seconds", s.DecodeSeconds);

  const sched::PipelineStats p = sched::AggregateStats();
  prof.Event("cmp::payload_raw_bytes",
             static_cast<double>(p.PayloadRawBytes));
  prof.Event("cmp::payload_encoded_bytes",
             static_cast<double>(p.PayloadEncodedBytes));
}

void ExportExecStats(Profiler &prof)
{
  const vp::exec::EngineStats s = vp::exec::Stats();
  prof.Event("exec::mode_threads", vp::exec::ThreadsEnabled() ? 1.0 : 0.0);
  prof.Event("exec::lanes",
             static_cast<double>(vp::exec::Engine::Get().Lanes()));
  prof.Event("exec::tasks_enqueued", static_cast<double>(s.TasksEnqueued));
  prof.Event("exec::copies_enqueued", static_cast<double>(s.CopiesEnqueued));
  prof.Event("exec::tasks_inline", static_cast<double>(s.TasksInline));
  prof.Event("exec::sharded_regions", static_cast<double>(s.ShardedRegions));
  prof.Event("exec::shards_executed", static_cast<double>(s.ShardsExecuted));
  prof.Event("exec::fence_joins", static_cast<double>(s.FenceJoins));
}

void ExportGraphStats(Profiler &prof)
{
  const vp::graph::GraphStats s = vp::graph::Stats();
  prof.Event("graph::captures", static_cast<double>(s.Captures));
  prof.Event("graph::capture_aborts", static_cast<double>(s.CaptureAborts));
  prof.Event("graph::replays", static_cast<double>(s.Replays));
  prof.Event("graph::invalidations", static_cast<double>(s.Invalidations));
  prof.Event("graph::nodes_captured", static_cast<double>(s.NodesCaptured));
  prof.Event("graph::launches_fused", static_cast<double>(s.LaunchesFused));
  prof.Event("graph::flushes", static_cast<double>(s.Flushes));
  prof.Event("graph::ops_absorbed", static_cast<double>(s.OpsAbsorbed));
}

void ExportLayoutStats(Profiler &prof)
{
  const vp::layout::LayoutStats s = vp::layout::Stats();
  prof.Event("layout::conversions", static_cast<double>(s.Conversions));
  prof.Event("layout::bytes_reordered",
             static_cast<double>(s.BytesReordered));
  prof.Event("layout::simd_kernels", static_cast<double>(s.SimdKernels));
  prof.Event("layout::scalar_kernels", static_cast<double>(s.ScalarKernels));
  prof.Event("layout::runs_iterated", static_cast<double>(s.RunsIterated));
  prof.Event("layout::plane_transposes",
             static_cast<double>(s.PlaneTransposes));
  prof.Event("layout::plane_bytes", static_cast<double>(s.PlaneBytes));
}

void ExportServiceStats(Profiler &prof)
{
  const svc::ServiceStats s = svc::Stats();
  prof.Event("svc::sessions_opened", static_cast<double>(s.SessionsOpened));
  prof.Event("svc::sessions_rejected",
             static_cast<double>(s.SessionsRejected));
  prof.Event("svc::sessions_closed", static_cast<double>(s.SessionsClosed));
  prof.Event("svc::sessions_reaped", static_cast<double>(s.SessionsReaped));
  prof.Event("svc::frames_sent", static_cast<double>(s.FramesSent));
  prof.Event("svc::frames_accepted", static_cast<double>(s.FramesAccepted));
  prof.Event("svc::frames_dropped", static_cast<double>(s.FramesDropped));
  prof.Event("svc::frames_coalesced",
             static_cast<double>(s.FramesCoalesced));
  prof.Event("svc::frames_rejected", static_cast<double>(s.FramesRejected));
  prof.Event("svc::frames_executed", static_cast<double>(s.FramesExecuted));
  prof.Event("svc::heartbeats", static_cast<double>(s.Heartbeats));
  prof.Event("svc::bytes_raw", static_cast<double>(s.BytesRaw));
  prof.Event("svc::bytes_wire", static_cast<double>(s.BytesWire));
  prof.Event("svc::queue_depth_high_water",
             static_cast<double>(s.QueueHighWater));
  prof.Event("svc::short_reads", static_cast<double>(s.ShortReads));
  prof.Event("svc::frames_pushed", static_cast<double>(s.FramesPushed));
  prof.Event("svc::push_drops", static_cast<double>(s.PushDrops));
  prof.Event("svc::steers", static_cast<double>(s.Steers));
  prof.Event("svc::heartbeat_acks", static_cast<double>(s.HeartbeatAcks));
  // mean of the per-beat client-measured round trips; 0 until a client
  // reported one
  prof.Event("svc::heartbeat_rtt_us",
             s.RttCount ? static_cast<double>(s.RttSumUs) /
                            static_cast<double>(s.RttCount)
                        : 0.0);
  prof.Event("svc::heartbeat_rtt_max_us", static_cast<double>(s.RttMaxUs));
}

void ExportVizStats(Profiler &prof)
{
  const viz::VizStats s = viz::Stats();
  prof.Event("viz::frames_rendered", static_cast<double>(s.FramesRendered));
  prof.Event("viz::frames_published",
             static_cast<double>(s.FramesPublished));
  prof.Event("viz::steers_applied", static_cast<double>(s.SteersApplied));
  prof.Event("viz::steers_stale", static_cast<double>(s.SteersStale));
  prof.Event("viz::recaptures", static_cast<double>(s.Recaptures));
  prof.Event("viz::frame_age_count", static_cast<double>(s.FrameAgeCount));
  prof.Event("viz::frame_age_p99_us", static_cast<double>(s.FrameAgeP99Us));
  prof.Event("viz::frame_age_max_us", static_cast<double>(s.FrameAgeMaxUs));
}

} // namespace sensei
