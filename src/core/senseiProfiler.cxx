#include "senseiProfiler.h"

#include "vpMemoryPool.h"

#include <sstream>

namespace sensei
{

Profiler &Profiler::Global()
{
  static Profiler instance;
  return instance;
}

std::string Profiler::ToJson() const
{
  std::lock_guard<std::mutex> lock(this->Mutex_);

  auto quote = [](const std::string &s)
  {
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (char c : s)
    {
      if (c == '"' || c == '\\')
        out += '\\';
      out += c;
    }
    out += '"';
    return out;
  };

  std::ostringstream os;
  os.precision(12);
  os << "{\"events\":{";
  bool first = true;
  for (const auto &kv : this->Series_)
  {
    if (!first)
      os << ',';
    first = false;
    const Stats &s = kv.second;
    const double mean =
      s.Count ? s.Total / static_cast<double>(s.Count) : 0.0;
    os << quote(kv.first) << ":{\"count\":" << s.Count
       << ",\"total\":" << s.Total << ",\"mean\":" << mean
       << ",\"max\":" << s.Max << '}';
  }
  os << "}}";
  return os.str();
}

void ExportPoolStats(Profiler &prof)
{
  const vp::PoolStats s = vp::PoolManager::Get().AggregateStats();
  prof.Event("pool::hits", static_cast<double>(s.Hits));
  prof.Event("pool::misses", static_cast<double>(s.Misses));
  prof.Event("pool::frees", static_cast<double>(s.Frees));
  prof.Event("pool::trims", static_cast<double>(s.Trims));
  prof.Event("pool::hit_rate", s.HitRate());
  prof.Event("pool::bytes_cached", static_cast<double>(s.BytesCached));
  prof.Event("pool::peak_bytes_cached",
             static_cast<double>(s.PeakBytesCached));
  prof.Event("pool::fragmentation", s.Fragmentation());
}

} // namespace sensei
