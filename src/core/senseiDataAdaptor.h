#ifndef senseiDataAdaptor_h
#define senseiDataAdaptor_h

/// @file senseiDataAdaptor.h
/// The simulation-facing side of the SENSEI in situ interface. A
/// simulation implements a DataAdaptor that presents its state through the
/// SENSEI data model (svtkDataObject and friends); analysis back ends pull
/// what they need through it. The simulation should always prefer
/// zero-copy transfer: it shares pointers (via svtkHAMRDataArray) that
/// give the in situ code direct access to the data, and the back end
/// decides whether a deep copy is needed.

#include "minimpi.h"
#include "svtkDataObject.h"
#include "svtkObjectBase.h"

#include <string>
#include <vector>

namespace sensei
{

/// Abstract interface between a simulation and SENSEI analyses.
class DataAdaptor : public svtkObjectBase
{
public:
  const char *GetClassName() const override { return "sensei::DataAdaptor"; }

  /// Names of the meshes the simulation can provide.
  virtual std::vector<std::string> GetMeshNames() = 0;

  /// The named mesh. Returns a new reference the caller must release, or
  /// nullptr when the mesh is unknown. Array data inside the returned
  /// object is shared zero-copy whenever the simulation allows it.
  virtual svtkDataObject *GetMesh(const std::string &meshName) = 0;

  /// Invoked by the framework when analyses are done with the current
  /// step's data; the simulation may reclaim buffers it shared.
  virtual void ReleaseData() {}

  /// Simulated time of the current step.
  double GetDataTime() const { return this->Time_; }
  void SetDataTime(double t) { this->Time_ = t; }

  /// Index of the current step.
  long GetDataTimeStep() const { return this->TimeStep_; }
  void SetDataTimeStep(long s) { this->TimeStep_ = s; }

  /// The communicator analyses should use for collective operations. May
  /// be null in serial use.
  minimpi::Communicator *GetCommunicator() const { return this->Comm_; }
  void SetCommunicator(minimpi::Communicator *comm) { this->Comm_ = comm; }

protected:
  DataAdaptor() = default;
  ~DataAdaptor() override = default;

private:
  double Time_ = 0.0;
  long TimeStep_ = 0;
  minimpi::Communicator *Comm_ = nullptr;
};

/// A concrete DataAdaptor presenting a single svtkTable, used by
/// simulations whose state is tabular (one row per particle/sample) and by
/// tests. The table is shared zero-copy.
class TableAdaptor : public DataAdaptor
{
public:
  static TableAdaptor *New(const std::string &meshName = "table")
  {
    auto *a = new TableAdaptor;
    a->MeshName_ = meshName;
    return a;
  }

  const char *GetClassName() const override { return "sensei::TableAdaptor"; }

  std::vector<std::string> GetMeshNames() override { return {this->MeshName_}; }

  svtkDataObject *GetMesh(const std::string &meshName) override
  {
    if (meshName != this->MeshName_ || !this->Table_)
      return nullptr;
    this->Table_->Register();
    return this->Table_;
  }

  void ReleaseData() override
  {
    if (this->Table_)
    {
      this->Table_->UnRegister();
      this->Table_ = nullptr;
    }
  }

  /// Share `table` as this step's data (takes a reference).
  void SetTable(svtkTable *table)
  {
    if (table)
      table->Register();
    if (this->Table_)
      this->Table_->UnRegister();
    this->Table_ = table;
  }

  svtkTable *GetTable() const { return this->Table_; }

protected:
  TableAdaptor() = default;
  ~TableAdaptor() override
  {
    if (this->Table_)
      this->Table_->UnRegister();
  }

private:
  std::string MeshName_;
  svtkTable *Table_ = nullptr;
};

} // namespace sensei

#endif
