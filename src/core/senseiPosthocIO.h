#ifndef senseiPosthocIO_h
#define senseiPosthocIO_h

/// @file senseiPosthocIO.h
/// I/O analysis back end: writes the simulation's table mesh to disk for
/// post hoc visualization, in CSV or legacy-VTK particle format, every k
/// steps. Stands in for Newton++'s "VTK compatible output format for post
/// processing and visualization". Supports asynchronous execution (deep
/// copies to host, writes in a thread).

#include "senseiAnalysisAdaptor.h"
#include "senseiAsyncRunner.h"

#include <string>

namespace sensei
{

class PosthocIO : public AnalysisAdaptor
{
public:
  static PosthocIO *New() { return new PosthocIO; }

  const char *GetClassName() const override { return "sensei::PosthocIO"; }

  /// File format to write. SBIN is a self-describing compressed binary
  /// snapshot: a sio blob (length + checksum validated header) holding a
  /// compressed table stream; the codec follows the analysis's effective
  /// compression (SetCompression / the global <compress> default). Read
  /// it back with sio::ReadBlob + sensei::DeserializeTableAuto.
  enum class Format
  {
    CSV,
    VTK,
    SBIN
  };

  void SetMeshName(const std::string &m) { this->MeshName_ = m; }
  void SetOutputDir(const std::string &d) { this->Dir_ = d; }
  void SetPrefix(const std::string &p) { this->Prefix_ = p; }
  void SetFormat(Format f) { this->Format_ = f; }

  /// Write every k-th step (default every step).
  void SetFrequency(long k) { this->Frequency_ = k > 0 ? k : 1; }

  bool Execute(DataAdaptor *data) override;
  void DrainAsync() override { this->Runner_.Drain(); }
  int Finalize() override;

  /// Number of files written so far.
  long GetWriteCount() const { return this->WriteCount_; }

protected:
  PosthocIO() = default;
  ~PosthocIO() override { this->Runner_.Drain(); }

private:
  std::string MeshName_ = "table";
  std::string Dir_ = ".";
  std::string Prefix_ = "posthoc";
  Format Format_ = Format::CSV;
  long Frequency_ = 1;
  long WriteCount_ = 0;

  AsyncRunner Runner_;
};

} // namespace sensei

#endif
