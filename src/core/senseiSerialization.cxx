#include "senseiSerialization.h"

#include "svtkAOSDataArray.h"
#include "svtkArrayUtils.h"

#include <cstring>
#include <stdexcept>

namespace sensei
{

namespace
{
void PutU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
  const std::size_t at = out.size();
  out.resize(at + sizeof(v));
  std::memcpy(out.data() + at, &v, sizeof(v));
}

std::uint64_t GetU64(const std::uint8_t *bytes, std::size_t size,
                     std::size_t &pos)
{
  if (pos + sizeof(std::uint64_t) > size)
    throw std::runtime_error("DeserializeTable: truncated input");
  std::uint64_t v = 0;
  std::memcpy(&v, bytes + pos, sizeof(v));
  pos += sizeof(v);
  return v;
}
} // namespace

std::vector<std::uint8_t> SerializeTable(const svtkTable *table)
{
  if (!table)
    throw std::invalid_argument("SerializeTable: null table");

  std::vector<std::uint8_t> out;
  const int nCols = table->GetNumberOfColumns();
  PutU64(out, static_cast<std::uint64_t>(nCols));

  for (int c = 0; c < nCols; ++c)
  {
    const svtkDataArray *col = table->GetColumn(c);
    const std::string &name = col->GetName();

    PutU64(out, name.size());
    out.insert(out.end(), name.begin(), name.end());

    PutU64(out, col->GetNumberOfTuples());
    PutU64(out, static_cast<std::uint64_t>(col->GetNumberOfComponents()));

    const std::vector<double> values = svtkToDoubleVector(col);
    const std::size_t at = out.size();
    out.resize(at + values.size() * sizeof(double));
    if (!values.empty())
      std::memcpy(out.data() + at, values.data(),
                  values.size() * sizeof(double));
  }
  return out;
}

svtkTable *DeserializeTable(const std::uint8_t *bytes, std::size_t size)
{
  std::size_t pos = 0;
  const std::uint64_t nCols = GetU64(bytes, size, pos);

  svtkTable *table = svtkTable::New();
  try
  {
    for (std::uint64_t c = 0; c < nCols; ++c)
    {
      const std::uint64_t nameLen = GetU64(bytes, size, pos);
      if (pos + nameLen > size)
        throw std::runtime_error("DeserializeTable: truncated name");
      std::string name(reinterpret_cast<const char *>(bytes + pos),
                       static_cast<std::size_t>(nameLen));
      pos += nameLen;

      const std::uint64_t tuples = GetU64(bytes, size, pos);
      const std::uint64_t comps = GetU64(bytes, size, pos);
      const std::uint64_t count = tuples * comps;
      if (pos + count * sizeof(double) > size)
        throw std::runtime_error("DeserializeTable: truncated values");

      svtkAOSDoubleArray *col = svtkAOSDoubleArray::New(name);
      col->SetNumberOfComponents(static_cast<int>(comps));
      col->GetVector().resize(static_cast<std::size_t>(count));
      if (count)
        std::memcpy(col->GetVector().data(), bytes + pos,
                    static_cast<std::size_t>(count) * sizeof(double));
      pos += static_cast<std::size_t>(count) * sizeof(double);

      table->AddColumn(col);
      col->Delete();
    }
  }
  catch (...)
  {
    table->UnRegister();
    throw;
  }
  return table;
}

svtkTable *ConcatenateTables(const std::vector<svtkTable *> &parts)
{
  svtkTable *out = svtkTable::New();
  if (parts.empty())
    return out;

  const svtkTable *first = parts.front();
  const int nCols = first->GetNumberOfColumns();

  for (int c = 0; c < nCols; ++c)
  {
    const svtkDataArray *proto = first->GetColumn(c);
    svtkAOSDoubleArray *merged = svtkAOSDoubleArray::New(proto->GetName());
    merged->SetNumberOfComponents(proto->GetNumberOfComponents());

    for (svtkTable *part : parts)
    {
      const svtkDataArray *col =
        part ? part->GetColumnByName(proto->GetName()) : nullptr;
      if (!col || col->GetNumberOfComponents() != proto->GetNumberOfComponents())
      {
        merged->Delete();
        out->UnRegister();
        throw std::runtime_error(
          "ConcatenateTables: schema mismatch for column '" +
          proto->GetName() + "'");
      }
      const std::vector<double> values = svtkToDoubleVector(col);
      merged->GetVector().insert(merged->GetVector().end(), values.begin(),
                                 values.end());
    }
    out->AddColumn(merged);
    merged->Delete();
  }
  return out;
}

} // namespace sensei
