#include "senseiSerialization.h"

#include "svtkAOSDataArray.h"
#include "svtkArrayUtils.h"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace sensei
{

namespace
{
void PutU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
  cmp::PutLE64(out, v);
}

std::uint64_t GetU64(const std::uint8_t *bytes, std::size_t size,
                     std::size_t &pos)
{
  if (size - pos < sizeof(std::uint64_t) || pos > size)
    throw std::runtime_error("DeserializeTable: truncated input");
  const std::uint64_t v = cmp::LoadLE64(bytes + pos);
  pos += sizeof(std::uint64_t);
  return v;
}

/// Append `n` doubles as little-endian f64 bit patterns.
void PutF64Array(std::vector<std::uint8_t> &out, const double *v,
                 std::size_t n)
{
  const std::size_t at = out.size();
  out.resize(at + n * sizeof(double));
  if (!n)
    return;
  if constexpr (std::endian::native == std::endian::little)
  {
    std::memcpy(out.data() + at, v, n * sizeof(double));
  }
  else
  {
    for (std::size_t i = 0; i < n; ++i)
    {
      std::uint64_t bits = 0;
      std::memcpy(&bits, v + i, sizeof(bits));
      cmp::StoreLE64(out.data() + at + i * sizeof(double), bits);
    }
  }
}

/// Read `n` little-endian f64 bit patterns.
void GetF64Array(const std::uint8_t *bytes, double *v, std::size_t n)
{
  if (!n)
    return;
  if constexpr (std::endian::native == std::endian::little)
  {
    std::memcpy(v, bytes, n * sizeof(double));
  }
  else
  {
    for (std::size_t i = 0; i < n; ++i)
    {
      const std::uint64_t bits = cmp::LoadLE64(bytes + i * sizeof(double));
      std::memcpy(v + i, &bits, sizeof(bits));
    }
  }
}

cmp::DType DTypeOf(svtkScalarType t)
{
  switch (t)
  {
    case svtkScalarType::Float32:
      return cmp::DType::F32;
    case svtkScalarType::Float64:
      return cmp::DType::F64;
    case svtkScalarType::Int32:
      return cmp::DType::I32;
    case svtkScalarType::Int64:
      return cmp::DType::I64;
    case svtkScalarType::UInt8:
      return cmp::DType::U8;
  }
  throw std::invalid_argument("SerializeTableCompressed: unknown scalar type");
}

/// Build one typed column and decode the chunk at `bytes` into it.
template <typename T>
svtkDataArray *DecodeColumn(const std::string &name, std::uint64_t count,
                           int comps, const std::uint8_t *bytes,
                           std::size_t avail, std::size_t &consumed)
{
  auto *a = svtkAOSDataArray<T>::New(name);
  try
  {
    a->SetNumberOfComponents(comps);
    a->GetVector().resize(static_cast<std::size_t>(count));
    consumed = cmp::DecodeChunk(bytes, avail, a->GetVector().data(),
                                static_cast<std::size_t>(count) * sizeof(T));
  }
  catch (...)
  {
    a->Delete();
    throw;
  }
  return a;
}

constexpr std::uint8_t kTableMagic[4] = {'S', 'T', 'B', 'C'};
constexpr std::uint8_t kTableVersion = 1;
} // namespace

std::vector<std::uint8_t> SerializeTable(const svtkTable *table)
{
  if (!table)
    throw std::invalid_argument("SerializeTable: null table");

  std::vector<std::uint8_t> out;
  const int nCols = table->GetNumberOfColumns();
  PutU64(out, static_cast<std::uint64_t>(nCols));

  for (int c = 0; c < nCols; ++c)
  {
    const svtkDataArray *col = table->GetColumn(c);
    const std::string &name = col->GetName();

    PutU64(out, name.size());
    out.insert(out.end(), name.begin(), name.end());

    PutU64(out, col->GetNumberOfTuples());
    PutU64(out, static_cast<std::uint64_t>(col->GetNumberOfComponents()));

    const std::vector<double> values = svtkToDoubleVector(col);
    PutF64Array(out, values.data(), values.size());
  }
  return out;
}

svtkTable *DeserializeTable(const std::uint8_t *bytes, std::size_t size)
{
  std::size_t pos = 0;
  const std::uint64_t nCols = GetU64(bytes, size, pos);

  svtkTable *table = svtkTable::New();
  try
  {
    for (std::uint64_t c = 0; c < nCols; ++c)
    {
      const std::uint64_t nameLen = GetU64(bytes, size, pos);
      if (nameLen > size - pos)
        throw std::runtime_error("DeserializeTable: truncated name");
      std::string name(reinterpret_cast<const char *>(bytes + pos),
                       static_cast<std::size_t>(nameLen));
      pos += nameLen;

      const std::uint64_t tuples = GetU64(bytes, size, pos);
      const std::uint64_t comps = GetU64(bytes, size, pos);
      if (comps && tuples > UINT64_MAX / comps)
        throw std::runtime_error("DeserializeTable: implausible column size");
      const std::uint64_t count = tuples * comps;
      if (count > (size - pos) / sizeof(double))
        throw std::runtime_error("DeserializeTable: truncated values");

      svtkAOSDoubleArray *col = svtkAOSDoubleArray::New(name);
      col->SetNumberOfComponents(static_cast<int>(comps));
      col->GetVector().resize(static_cast<std::size_t>(count));
      GetF64Array(bytes + pos, col->GetVector().data(),
                  static_cast<std::size_t>(count));
      pos += static_cast<std::size_t>(count) * sizeof(double);

      table->AddColumn(col);
      col->Delete();
    }
  }
  catch (...)
  {
    table->UnRegister();
    throw;
  }
  return table;
}

std::vector<std::uint8_t> SerializeTableCompressed(const svtkTable *table,
                                                   const cmp::Params &params)
{
  if (!table)
    throw std::invalid_argument("SerializeTableCompressed: null table");

  std::vector<std::uint8_t> out;
  out.insert(out.end(), kTableMagic, kTableMagic + 4);
  out.push_back(kTableVersion);
  out.push_back(0); // flags
  out.push_back(0); // reserved (u16 LE)
  out.push_back(0);

  const int nCols = table->GetNumberOfColumns();
  PutU64(out, static_cast<std::uint64_t>(nCols));

  for (int c = 0; c < nCols; ++c)
  {
    const svtkDataArray *col = table->GetColumn(c);
    const std::string &name = col->GetName();

    PutU64(out, name.size());
    out.insert(out.end(), name.begin(), name.end());

    PutU64(out, col->GetNumberOfTuples());
    PutU64(out, static_cast<std::uint64_t>(col->GetNumberOfComponents()));

    svtkWithHostValues(
      col, [&](const void *data, svtkScalarType st, std::size_t count)
      { cmp::EncodeChunk(data, DTypeOf(st), count, params, out); });
  }
  return out;
}

svtkTable *DeserializeTableCompressed(const std::uint8_t *bytes,
                                     std::size_t size)
{
  if (!bytes || size < 8 || std::memcmp(bytes, kTableMagic, 4) != 0)
    throw std::runtime_error(
      "DeserializeTableCompressed: not a compressed table stream");
  if (bytes[4] != kTableVersion)
    throw std::runtime_error(
      "DeserializeTableCompressed: unsupported stream version");

  std::size_t pos = 8;
  const std::uint64_t nCols = GetU64(bytes, size, pos);

  svtkTable *table = svtkTable::New();
  try
  {
    for (std::uint64_t c = 0; c < nCols; ++c)
    {
      const std::uint64_t nameLen = GetU64(bytes, size, pos);
      if (nameLen > size - pos)
        throw std::runtime_error(
          "DeserializeTableCompressed: truncated name");
      std::string name(reinterpret_cast<const char *>(bytes + pos),
                       static_cast<std::size_t>(nameLen));
      pos += nameLen;

      const std::uint64_t tuples = GetU64(bytes, size, pos);
      const std::uint64_t comps = GetU64(bytes, size, pos);
      if (!comps || comps > INT32_MAX || tuples > UINT64_MAX / comps)
        throw std::runtime_error(
          "DeserializeTableCompressed: implausible column shape");

      const cmp::ChunkInfo info = cmp::PeekHeader(bytes + pos, size - pos);
      if (info.Count != tuples * comps)
        throw std::runtime_error(
          "DeserializeTableCompressed: chunk count does not match the "
          "column shape");

      std::size_t consumed = 0;
      svtkDataArray *col = nullptr;
      switch (info.Type)
      {
        case cmp::DType::U8:
          col = DecodeColumn<unsigned char>(name, info.Count,
                                            static_cast<int>(comps),
                                            bytes + pos, size - pos, consumed);
          break;
        case cmp::DType::I32:
          col = DecodeColumn<int>(name, info.Count, static_cast<int>(comps),
                                  bytes + pos, size - pos, consumed);
          break;
        case cmp::DType::I64:
          col = DecodeColumn<long long>(name, info.Count,
                                        static_cast<int>(comps), bytes + pos,
                                        size - pos, consumed);
          break;
        case cmp::DType::F32:
          col = DecodeColumn<float>(name, info.Count, static_cast<int>(comps),
                                    bytes + pos, size - pos, consumed);
          break;
        case cmp::DType::F64:
          col = DecodeColumn<double>(name, info.Count,
                                     static_cast<int>(comps), bytes + pos,
                                     size - pos, consumed);
          break;
      }
      pos += consumed;

      table->AddColumn(col);
      col->Delete();
    }
  }
  catch (...)
  {
    table->UnRegister();
    throw;
  }
  return table;
}

svtkTable *DeserializeTableAuto(const std::uint8_t *bytes, std::size_t size)
{
  if (bytes && size >= 4 && std::memcmp(bytes, kTableMagic, 4) == 0)
    return DeserializeTableCompressed(bytes, size);
  return DeserializeTable(bytes, size);
}

svtkTable *ConcatenateTables(const std::vector<svtkTable *> &parts)
{
  svtkTable *out = svtkTable::New();
  if (parts.empty())
    return out;

  const svtkTable *first = parts.front();
  const int nCols = first->GetNumberOfColumns();

  for (int c = 0; c < nCols; ++c)
  {
    const svtkDataArray *proto = first->GetColumn(c);
    svtkAOSDoubleArray *merged = svtkAOSDoubleArray::New(proto->GetName());
    merged->SetNumberOfComponents(proto->GetNumberOfComponents());

    for (svtkTable *part : parts)
    {
      const svtkDataArray *col =
        part ? part->GetColumnByName(proto->GetName()) : nullptr;
      if (!col || col->GetNumberOfComponents() != proto->GetNumberOfComponents())
      {
        merged->Delete();
        out->UnRegister();
        throw std::runtime_error(
          "ConcatenateTables: schema mismatch for column '" +
          proto->GetName() + "'");
      }
      const std::vector<double> values = svtkToDoubleVector(col);
      merged->GetVector().insert(merged->GetVector().end(), values.begin(),
                                 values.end());
    }
    out->AddColumn(merged);
    merged->Delete();
  }
  return out;
}

} // namespace sensei
