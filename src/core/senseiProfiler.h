#ifndef senseiProfiler_h
#define senseiProfiler_h

/// @file senseiProfiler.h
/// Virtual-time profiler used by the evaluation harness: records named
/// spans of virtual seconds per rank and reports totals and per-event
/// means. This is how the benchmark reproduces Figure 3's "average time
/// per iteration of the solver and in situ processing".

#include "vpChecker.h"
#include "vpClock.h"

#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace sensei
{

/// Thread-safe collection of named timing events (virtual seconds).
///
/// Counter-key naming contract (consumed by src/tune and any external
/// parser of ToJson output): every exported counter is named
/// `<subsystem>::<counter>` in lower_snake_case (`sched::stall_seconds`,
/// `pool::hit_rate`, `exec::tasks_enqueued`, ...); per-device counters
/// append the device index (`sched::placements_dev0`). Names are stable:
/// new counters may appear in any release, but renaming or removing one
/// bumps the schema version below.
class Profiler
{
public:
  /// Version tag written by ToJson as the top-level "schema" member, so
  /// consumers can detect incompatible exports. Bumped only when an
  /// existing key is renamed/removed or the JSON shape changes; counter
  /// additions do not bump it.
  static constexpr const char *SchemaVersion = "sensei-profiler/1";

  /// One counter's accumulated state, as captured by Snapshot().
  struct Counter
  {
    double Total = 0.0;
    long Count = 0;
    double Max = 0.0;
  };

  /// A point-in-time copy of every counter, for rate computation.
  using CounterSnapshot = std::map<std::string, Counter>;

  /// Record a completed span.
  void Event(const std::string &name, double seconds)
  {
    std::lock_guard<std::mutex> lock(this->Mutex_);
    auto &s = this->Series_[name];
    s.Total += seconds;
    s.Count += 1;
    s.Max = seconds > s.Max ? seconds : s.Max;
  }

  /// Sum of all spans with this name.
  double Total(const std::string &name) const
  {
    std::lock_guard<std::mutex> lock(this->Mutex_);
    auto it = this->Series_.find(name);
    return it == this->Series_.end() ? 0.0 : it->second.Total;
  }

  /// Number of spans recorded under this name.
  long Count(const std::string &name) const
  {
    std::lock_guard<std::mutex> lock(this->Mutex_);
    auto it = this->Series_.find(name);
    return it == this->Series_.end() ? 0 : it->second.Count;
  }

  /// Mean span length, 0 when none recorded.
  double Mean(const std::string &name) const
  {
    std::lock_guard<std::mutex> lock(this->Mutex_);
    auto it = this->Series_.find(name);
    return it == this->Series_.end() || !it->second.Count
             ? 0.0
             : it->second.Total / static_cast<double>(it->second.Count);
  }

  /// Longest single span.
  double Max(const std::string &name) const
  {
    std::lock_guard<std::mutex> lock(this->Mutex_);
    auto it = this->Series_.find(name);
    return it == this->Series_.end() ? 0.0 : it->second.Max;
  }

  /// All event names seen.
  std::vector<std::string> Names() const
  {
    std::lock_guard<std::mutex> lock(this->Mutex_);
    std::vector<std::string> out;
    out.reserve(this->Series_.size());
    for (const auto &kv : this->Series_)
      out.push_back(kv.first);
    return out;
  }

  /// Forget everything.
  void Clear()
  {
    std::lock_guard<std::mutex> lock(this->Mutex_);
    this->Series_.clear();
  }

  /// Copy every counter's current state. Together with Delta this is how
  /// per-step consumers (the online tuner, dashboards) read rates instead
  /// of run-cumulative totals.
  CounterSnapshot Snapshot() const;

  /// Per-interval rates: `newer - older`, member-wise over Total and
  /// Count (a counter absent from `older` is treated as zero). Max is not
  /// differentiable, so the delta carries `newer`'s cumulative Max.
  /// Deltas compose: Delta(s0,s1) + Delta(s1,s2) sums to Delta(s0,s2)
  /// in Total and Count.
  static CounterSnapshot Delta(const CounterSnapshot &newer,
                               const CounterSnapshot &older);

  /// Serialize every event as JSON:
  /// {"schema":"sensei-profiler/1",
  ///  "events":{"name":{"count":N,"total":T,"mean":M,"max":X},...}}
  std::string ToJson() const;

  /// The process-wide profiler instance.
  static Profiler &Global();

private:
  struct Stats
  {
    double Total = 0.0;
    long Count = 0;
    double Max = 0.0;
  };

  mutable std::mutex Mutex_;
  std::map<std::string, Stats> Series_;
};

/// RAII span: measures virtual time between construction and destruction
/// and records it in a profiler.
class ScopedEvent
{
public:
  ScopedEvent(Profiler &prof, std::string name)
    : Prof_(prof), Name_(std::move(name)), Begin_(vp::ThisClock().Now())
  {
  }

  /// Record into Profiler::Global().
  explicit ScopedEvent(std::string name)
    : ScopedEvent(Profiler::Global(), std::move(name))
  {
  }

  ~ScopedEvent()
  {
    this->Prof_.Event(this->Name_, vp::ThisClock().Now() - this->Begin_);
  }

  ScopedEvent(const ScopedEvent &) = delete;
  ScopedEvent &operator=(const ScopedEvent &) = delete;

private:
  Profiler &Prof_;
  std::string Name_;
  double Begin_;
};

/// Record the memory-pool counters (vp::PoolManager::AggregateStats) as
/// profiler events: pool::hits, pool::misses, pool::frees, pool::trims,
/// pool::hit_rate, pool::bytes_cached, pool::peak_bytes_cached,
/// pool::fragmentation. Counts are recorded as event totals so they ride
/// along in ToJson() next to the timing data.
void ExportPoolStats(Profiler &prof);

/// Record a checker report and the fault-injection counters as profiler
/// events: check::violations plus one check::<kind> event per violation
/// class, and fault::alloc_failures / fault::events_dropped /
/// fault::delays_applied — so campaigns can assert "0 violations" out of
/// the same JSON as the timing data.
void ExportCheckReport(Profiler &prof, const vp::check::Report &report);

/// Record the scheduler counters as profiler events: the bounded
/// pipeline's aggregate (sched::submitted, sched::executed,
/// sched::dropped, sched::coalesced, sched::queue_depth_high_water,
/// sched::peak_queued_bytes, sched::stall_seconds, sched::host_fallbacks)
/// and the per-device placement counts from vp::DeviceLoadTracker
/// (sched::placements_host, sched::placements_dev<N>). Call after
/// draining so in-flight work is settled.
void ExportSchedStats(Profiler &prof);

/// Record the compression counters (cmp::Stats) as profiler events:
/// cmp::encoded_chunks, cmp::decoded_chunks, cmp::fallbacks,
/// cmp::bytes_raw, cmp::bytes_encoded, cmp::ratio, cmp::encode_seconds,
/// cmp::decode_seconds — plus the pipelines' payload volume accounting
/// (cmp::payload_raw_bytes, cmp::payload_encoded_bytes) so compressed
/// async queues can be audited from the same JSON.
void ExportCompressStats(Profiler &prof);

/// Record the execution-engine counters (vp::exec::Stats) as profiler
/// events: exec::mode_threads (1 when VP_EXEC=threads), exec::lanes,
/// exec::tasks_enqueued, exec::copies_enqueued, exec::tasks_inline,
/// exec::sharded_regions, exec::shards_executed, exec::fence_joins — so
/// campaigns can audit how much real concurrency the run actually had.
void ExportExecStats(Profiler &prof);

/// Record the captured step-graph counters (vp::graph::Stats) as
/// profiler events: graph::captures, graph::capture_aborts,
/// graph::replays, graph::invalidations, graph::nodes_captured,
/// graph::launches_fused, graph::flushes, graph::ops_absorbed — how much
/// of the campaign's submission work the replay path absorbed.
void ExportGraphStats(Profiler &prof);

/// Record the layout-engine counters (vp::layout::Stats) as profiler
/// events: layout::conversions, layout::bytes_reordered,
/// layout::simd_kernels, layout::scalar_kernels, layout::runs_iterated,
/// layout::plane_transposes, layout::plane_bytes — how often arrays were
/// re-laid-out and which kernel variants (vectorized vs scalar) ran.
void ExportLayoutStats(Profiler &prof);

/// Record the in-transit service counters (svc::Stats) as profiler
/// events: svc::sessions_opened / _rejected / _closed / _reaped,
/// svc::frames_sent / _accepted / _dropped / _coalesced / _rejected /
/// _executed, svc::heartbeats, svc::bytes_raw, svc::bytes_wire,
/// svc::queue_depth_high_water, svc::short_reads — the multi-tenant
/// service's health in the same JSON as the timing data — plus the
/// server->client push path (svc::frames_pushed, svc::push_drops), the
/// steering control plane (svc::steers, svc::heartbeat_acks), and the
/// per-session heartbeat round trip (svc::heartbeat_rtt_us mean,
/// svc::heartbeat_rtt_max_us).
void ExportServiceStats(Profiler &prof);

/// Record the visualization endpoint counters (viz::Stats) as profiler
/// events: viz::frames_rendered / _published, viz::steers_applied /
/// _stale, viz::recaptures, and the frame-age distribution
/// (viz::frame_age_count / _p99_us / _max_us) — how fresh the frames
/// the viewers saw actually were.
void ExportVizStats(Profiler &prof);

} // namespace sensei

#endif
