#include "senseiColumnStatistics.h"

#include "svtkArrayUtils.h"
#include "vcuda.h"

#include <cmath>
#include <fstream>
#include <limits>

namespace sensei
{

double ColumnMoments::StdDev() const
{
  return std::sqrt(this->Variance());
}

void ColumnMoments::Merge(const ColumnMoments &other)
{
  if (other.Count == 0.0)
    return;
  if (this->Count == 0.0)
  {
    *this = other;
    return;
  }

  const double na = this->Count;
  const double nb = other.Count;
  const double delta = other.Mean - this->Mean;
  const double n = na + nb;

  this->Min = std::min(this->Min, other.Min);
  this->Max = std::max(this->Max, other.Max);
  this->Mean += delta * nb / n;
  this->M2 += other.M2 + delta * delta * na * nb / n;
  this->Count = n;
}

// ---------------------------------------------------------------------------
bool ColumnStatistics::Execute(DataAdaptor *data)
{
  if (!data)
    return false;

  svtkDataObject *obj = data->GetMesh(this->MeshName_);
  auto *table = dynamic_cast<svtkTable *>(obj);
  if (!table)
  {
    if (obj)
      obj->UnRegister();
    return false;
  }

  // resolve the column list
  std::vector<std::string> names = this->Columns_;
  if (names.empty())
    for (int c = 0; c < table->GetNumberOfColumns(); ++c)
      names.push_back(table->GetColumn(c)->GetName());

  const bool deepCopy = this->GetAsynchronous();
  std::vector<svtkSmartPtr<svtkHAMRDoubleArray>> cols;
  cols.reserve(names.size());
  for (const std::string &name : names)
  {
    svtkDataArray *col = table->GetColumnByName(name);
    if (!col)
    {
      table->UnRegister();
      return false;
    }
    svtkHAMRDoubleArray *h = svtkAsHAMRDouble(col);
    if (deepCopy)
    {
      cols.push_back(svtkSmartPtr<svtkHAMRDoubleArray>::Take(h->NewDeepCopy()));
      h->UnRegister();
    }
    else
    {
      cols.push_back(svtkSmartPtr<svtkHAMRDoubleArray>::Take(h));
    }
  }
  table->UnRegister();

  const long step = data->GetDataTimeStep();

  // one Welford pass per column
  std::size_t elements = 0;
  for (const auto &c : cols)
    elements += static_cast<std::size_t>(c->GetNumberOfTuples());
  sched::WorkHint hint;
  hint.Elements = elements;
  hint.OpsPerElement = 8.0;
  hint.MoveBytes = elements * sizeof(double);
  const int device = this->GetPlacementDevice(data, hint);

  if (this->GetAsynchronous())
  {
    if (!this->AsyncComm_ && data->GetCommunicator())
      this->AsyncComm_.emplace(data->GetCommunicator()->Dup());
    minimpi::Communicator *comm =
      this->AsyncComm_ ? &*this->AsyncComm_ : nullptr;
    this->Runner_.Submit(
      [this, names, cols, comm, step, device]()
      { this->Run(names, cols, comm, step, device); },
      hint.MoveBytes);
    return true;
  }

  this->Run(names, cols, data->GetCommunicator(), step, device);
  return true;
}

int ColumnStatistics::Finalize()
{
  this->Runner_.Drain();
  return 0;
}

void ColumnStatistics::Run(
  const std::vector<std::string> &names,
  const std::vector<svtkSmartPtr<svtkHAMRDoubleArray>> &cols,
  minimpi::Communicator *comm, long step, int device)
{
  std::map<std::string, ColumnMoments> result;

  for (std::size_t c = 0; c < cols.size(); ++c)
  {
    const std::size_t n = cols[c]->GetNumberOfTuples();

    auto view = device >= 0 ? cols[c]->GetDeviceAccessible(device)
                            : cols[c]->GetHostAccessible();
    const double *p = view.get();
    cols[c]->Synchronize();

    // single pass: count, min, max, mean, M2 (Welford)
    ColumnMoments m;
    m.Min = std::numeric_limits<double>::infinity();
    m.Max = -m.Min;
    const auto body = [p, &m](std::size_t b, std::size_t e)
    {
      for (std::size_t i = b; i < e; ++i)
      {
        const double v = p[i];
        m.Count += 1.0;
        m.Min = std::min(m.Min, v);
        m.Max = std::max(m.Max, v);
        const double d = v - m.Mean;
        m.Mean += d / m.Count;
        m.M2 += d * (v - m.Mean);
      }
    };

    if (device >= 0)
    {
      vcuda::SetDevice(device);
      vcuda::stream_t strm = vcuda::StreamCreate();
      vcuda::LaunchN(strm, n, body,
                     vcuda::LaunchBounds{8.0, 0.0, "column_stats"});
      vcuda::StreamSynchronize(strm);
    }
    else
    {
      vp::Platform::Get().HostParallelFor(
        vp::KernelDesc{n, 8.0, 0.0, "column_stats_host"}, body);
    }

    // combine across ranks: gather the 5 moments and merge in rank order
    if (comm)
    {
      const double mine[5] = {m.Count, m.Min, m.Max, m.Mean, m.M2};
      const std::vector<double> all = comm->Allgather(mine, 5);
      ColumnMoments merged;
      for (std::size_t r = 0; r * 5 < all.size(); ++r)
      {
        ColumnMoments part;
        part.Count = all[r * 5 + 0];
        part.Min = all[r * 5 + 1];
        part.Max = all[r * 5 + 2];
        part.Mean = all[r * 5 + 3];
        part.M2 = all[r * 5 + 4];
        merged.Merge(part);
      }
      m = merged;
    }

    if (m.Count == 0.0)
    {
      m.Min = 0.0;
      m.Max = 0.0;
    }
    result[names[c]] = m;
  }

  const bool isRoot = !comm || comm->Rank() == 0;
  if (isRoot && !this->OutputFile_.empty())
  {
    std::ofstream f(this->OutputFile_, std::ios::app);
    for (const auto &kv : result)
      f << step << ',' << kv.first << ',' << kv.second.Count << ','
        << kv.second.Min << ',' << kv.second.Max << ',' << kv.second.Mean
        << ',' << kv.second.StdDev() << '\n';
  }

  std::lock_guard<std::mutex> lock(this->ResultMutex_);
  this->Last_ = std::move(result);
}

std::map<std::string, ColumnMoments> ColumnStatistics::GetLastResult() const
{
  std::lock_guard<std::mutex> lock(this->ResultMutex_);
  return this->Last_;
}

} // namespace sensei
