#include "senseiPosthocIO.h"

#include "senseiSerialization.h"
#include "sio.h"
#include "svtkAOSDataArray.h"
#include "svtkArrayUtils.h"

#include <memory>
#include <sstream>

namespace sensei
{

bool PosthocIO::Execute(DataAdaptor *data)
{
  if (!data)
    return false;

  if (data->GetDataTimeStep() % this->Frequency_ != 0)
    return true;

  svtkDataObject *obj = data->GetMesh(this->MeshName_);
  auto *table = dynamic_cast<svtkTable *>(obj);
  if (!table)
  {
    if (obj)
      obj->UnRegister();
    return false;
  }

  const int rank =
    data->GetCommunicator() ? data->GetCommunicator()->Rank() : 0;

  const char *ext = this->Format_ == Format::CSV   ? ".csv"
                    : this->Format_ == Format::VTK ? ".vtk"
                                                   : ".sbin";
  std::ostringstream path;
  path << this->Dir_ << '/' << this->Prefix_ << "_r" << rank << "_s"
       << data->GetDataTimeStep() << ext;
  const std::string file = path.str();
  const Format fmt = this->Format_;

  if (fmt == Format::SBIN)
  {
    // serialize + compress now (the encoder charges the caller's clock,
    // like the in transit sender); the closure owns only the encoded
    // bytes, so the async queue meters the compressed size
    std::size_t raw = 0;
    for (int c = 0; c < table->GetNumberOfColumns(); ++c)
    {
      const svtkDataArray *col = table->GetColumn(c);
      raw += static_cast<std::size_t>(col->GetNumberOfTuples()) *
             static_cast<std::size_t>(col->GetNumberOfComponents()) *
             svtkScalarSize(col->GetScalarType());
    }
    auto blob = std::make_shared<std::vector<std::uint8_t>>(
      SerializeTableCompressed(table, this->GetEffectiveCompression()));
    table->UnRegister();

    auto write = [blob, file]() { sio::WriteBlob(file, *blob); };
    if (this->GetAsynchronous())
      this->Runner_.Submit(write, blob->size(), raw);
    else
      write();

    ++this->WriteCount_;
    return true;
  }

  // deep copy to host-resident AOS arrays (file IO is a host activity and
  // the copy decouples the write from the simulation's buffers)
  svtkTable *host = svtkTable::New();
  std::size_t bytes = 0;
  for (int c = 0; c < table->GetNumberOfColumns(); ++c)
  {
    svtkDataArray *col = table->GetColumn(c);
    svtkAOSDoubleArray *a = svtkAOSDoubleArray::New(col->GetName());
    a->SetNumberOfComponents(col->GetNumberOfComponents());
    a->GetVector() = svtkToDoubleVector(col);
    bytes += a->GetVector().size() * sizeof(double);
    host->AddColumn(a);
    a->Delete();
  }
  table->UnRegister();

  // the closure owns the host copy (the scheduler may discard it without
  // running under a dropping backpressure policy)
  auto held = svtkSmartPtr<svtkTable>::Take(host);
  auto write = [held, file, fmt]()
  {
    if (fmt == Format::CSV)
      sio::WriteCSV(file, held.Get());
    else
      sio::WriteParticlesVTK(file, held.Get());
  };

  if (this->GetAsynchronous())
    this->Runner_.Submit(write, bytes);
  else
    write();

  ++this->WriteCount_;
  return true;
}

int PosthocIO::Finalize()
{
  this->Runner_.Drain();
  return 0;
}

} // namespace sensei
