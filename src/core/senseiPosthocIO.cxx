#include "senseiPosthocIO.h"

#include "sio.h"
#include "svtkAOSDataArray.h"
#include "svtkArrayUtils.h"

#include <sstream>

namespace sensei
{

bool PosthocIO::Execute(DataAdaptor *data)
{
  if (!data)
    return false;

  if (data->GetDataTimeStep() % this->Frequency_ != 0)
    return true;

  svtkDataObject *obj = data->GetMesh(this->MeshName_);
  auto *table = dynamic_cast<svtkTable *>(obj);
  if (!table)
  {
    if (obj)
      obj->UnRegister();
    return false;
  }

  // deep copy to host-resident AOS arrays (file IO is a host activity and
  // the copy decouples the write from the simulation's buffers)
  svtkTable *host = svtkTable::New();
  std::size_t bytes = 0;
  for (int c = 0; c < table->GetNumberOfColumns(); ++c)
  {
    svtkDataArray *col = table->GetColumn(c);
    svtkAOSDoubleArray *a = svtkAOSDoubleArray::New(col->GetName());
    a->SetNumberOfComponents(col->GetNumberOfComponents());
    a->GetVector() = svtkToDoubleVector(col);
    bytes += a->GetVector().size() * sizeof(double);
    host->AddColumn(a);
    a->Delete();
  }
  table->UnRegister();

  const int rank =
    data->GetCommunicator() ? data->GetCommunicator()->Rank() : 0;

  std::ostringstream path;
  path << this->Dir_ << '/' << this->Prefix_ << "_r" << rank << "_s"
       << data->GetDataTimeStep()
       << (this->Format_ == Format::CSV ? ".csv" : ".vtk");
  const std::string file = path.str();
  const Format fmt = this->Format_;

  // the closure owns the host copy (the scheduler may discard it without
  // running under a dropping backpressure policy)
  auto held = svtkSmartPtr<svtkTable>::Take(host);
  auto write = [held, file, fmt]()
  {
    if (fmt == Format::CSV)
      sio::WriteCSV(file, held.Get());
    else
      sio::WriteParticlesVTK(file, held.Get());
  };

  if (this->GetAsynchronous())
    this->Runner_.Submit(write, bytes);
  else
    write();

  ++this->WriteCount_;
  return true;
}

int PosthocIO::Finalize()
{
  this->Runner_.Drain();
  return 0;
}

} // namespace sensei
