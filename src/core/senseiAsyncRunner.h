#ifndef senseiAsyncRunner_h
#define senseiAsyncRunner_h

/// @file senseiAsyncRunner.h
/// Helper implementing the paper's asynchronous execution method, now a
/// thin façade over sched::BoundedPipeline. With the default scheduler
/// configuration (queue_depth 1, backpressure "block") the behavior is
/// the original one — one analysis task in flight at a time, a new
/// submission first waits out the previous one, and the deterministic
/// mode gives bit-identical virtual timelines run to run. The `<sched>`
/// XML element (or sched::Configure) changes the queue depth and the
/// full-queue policy (block / drop-oldest / coalesce) for every runner
/// in the process; see schedPipeline.h for the semantics.
///
/// Two accounting modes are provided:
///
///  * **deterministic** (the default) — the task body runs inline under a
///    detached virtual clock seeded at the consumer's start time. Its
///    resource claims (device engines, host pool, collectives) land
///    exactly as a perfectly-fair concurrent thread's would, and the
///    submitter's clock advances only by the thread-spawn cost;
///  * **real-thread** — tasks run on a persistent consumer std::thread
///    with checker-visible fork/join edges per task. The virtual
///    semantics are the same, but claim interleaving follows the host OS
///    scheduler, so timelines vary run to run. Useful to demonstrate
///    that the code is genuinely thread safe (the unit tests exercise
///    both modes).

#include "schedPipeline.h"

#include <cstddef>
#include <functional>

namespace sensei
{

/// Bounded asynchronous task runner (see sched::BoundedPipeline).
class AsyncRunner
{
public:
  AsyncRunner() = default;
  AsyncRunner(const AsyncRunner &) = delete;
  AsyncRunner &operator=(const AsyncRunner &) = delete;

  /// Use real std::threads instead of deterministic inline accounting.
  void SetUseRealThreads(bool on) { this->Pipeline_.SetUseRealThreads(on); }
  bool GetUseRealThreads() const { return this->Pipeline_.GetUseRealThreads(); }

  /// Launch `fn`, returning after only the spawn cost on the submitting
  /// thread's clock (plus any stall the backpressure policy imposes).
  /// `payloadBytes` sizes the deep copy the closure owns, so the queue
  /// bound can meter async memory; for compressed payloads pass the
  /// encoded size here and the pre-compression size as `rawBytes` so the
  /// pipeline stats record the volume saved.
  void Submit(std::function<void()> fn, std::size_t payloadBytes = 0,
              std::size_t rawBytes = 0)
  {
    this->Pipeline_.Submit(std::move(fn), payloadBytes, rawBytes);
  }

  /// Wait for all in-flight tasks to complete (merging virtual clocks).
  void Drain() { this->Pipeline_.Drain(); }

  /// True when a task is in flight.
  bool Busy() const { return this->Pipeline_.Busy(); }

  /// The underlying pipeline (stats, per-runner overrides).
  sched::BoundedPipeline &Pipeline() { return this->Pipeline_; }

private:
  sched::BoundedPipeline Pipeline_;
};

} // namespace sensei

#endif
