#ifndef senseiAsyncRunner_h
#define senseiAsyncRunner_h

/// @file senseiAsyncRunner.h
/// Helper implementing the paper's asynchronous execution method: one
/// analysis task in flight at a time, concurrent with the simulation in
/// *virtual* time. A new submission first drains the previous one (back
/// pressure: if the analysis is slower than the solver, the solver waits,
/// exactly as on real hardware where the in situ thread still holds the
/// data).
///
/// Two accounting modes are provided:
///
///  * **deterministic** (the default) — the task body runs inline under a
///    detached virtual clock seeded at the submission time. Its resource
///    claims (device engines, host pool, collectives) land exactly as a
///    perfectly-fair concurrent thread's would, the submitter's clock
///    advances only by the thread-spawn cost, and repeated runs give
///    bit-identical virtual timelines;
///  * **real-thread** — the task runs on an actual vp::ScopedThread. The
///    virtual semantics are the same, but claim interleaving follows the
///    host OS scheduler, so timelines vary run to run. Useful to
///    demonstrate that the code is genuinely thread safe (the unit tests
///    exercise both modes).

#include "vcuda.h"
#include "vomp.h"
#include "vpClock.h"
#include "vpPlatform.h"

#include <functional>
#include <optional>

namespace sensei
{

/// Runs at most one background task at a time.
class AsyncRunner
{
public:
  AsyncRunner() = default;
  AsyncRunner(const AsyncRunner &) = delete;
  AsyncRunner &operator=(const AsyncRunner &) = delete;

  /// Drains outstanding work.
  ~AsyncRunner() { this->Drain(); }

  /// Use real std::threads instead of deterministic inline accounting.
  void SetUseRealThreads(bool on) { this->RealThreads_ = on; }
  bool GetUseRealThreads() const { return this->RealThreads_; }

  /// Wait for the previous task (if any), then launch `fn`, returning
  /// after only the spawn cost on the submitting thread's clock.
  void Submit(std::function<void()> fn)
  {
    this->Drain();

    if (this->RealThreads_)
    {
      this->Pending_.emplace(std::move(fn));
      return;
    }

    vp::Platform &plat = vp::Platform::Get();
    vp::ThisClock().Advance(plat.Config().Cost.ThreadSpawnCost);

    // run inline under a detached clock; the task must not disturb the
    // submitting thread's PM device bindings
    const int cudaDev = vcuda::GetDevice();
    const int ompDev = vomp::GetDefaultDevice();
    {
      vp::ClockScope scope(vp::ThisClock().Now());
      fn();
      this->PendingFinal_ = scope.Now();
    }
    vcuda::SetDevice(cudaDev);
    vomp::SetDefaultDevice(ompDev);
    this->HaveDeterministic_ = true;
  }

  /// Wait for the in-flight task to complete (merging virtual clocks).
  void Drain()
  {
    if (this->HaveDeterministic_)
    {
      vp::ThisClock().AdvanceTo(this->PendingFinal_);
      this->HaveDeterministic_ = false;
    }
    if (this->Pending_)
    {
      this->Pending_->Join();
      this->Pending_.reset();
    }
  }

  /// True when a task is in flight.
  bool Busy() const
  {
    return this->HaveDeterministic_ ||
           (this->Pending_ && this->Pending_->Joinable());
  }

private:
  bool RealThreads_ = false;
  std::optional<vp::ScopedThread> Pending_;
  bool HaveDeterministic_ = false;
  double PendingFinal_ = 0.0;
};

} // namespace sensei

#endif
