#include "senseiConfigurableAnalysis.h"

#include "senseiAutocorrelation.h"
#include "senseiColumnStatistics.h"
#include "senseiDataBinning.h"
#include "senseiHistogram.h"
#include "senseiPosthocIO.h"
#include "execEngine.h"
#include "graphCapture.h"
#include "schedPipeline.h"
#include "svcSession.h"
#include "sxml.h"
#include "vizConfig.h"
#include "vizRender.h"
#include "vpChecker.h"
#include "vpFaultInjector.h"
#include "vpMemoryPool.h"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace sensei
{

namespace
{
/// Split a comma separated attribute list, trimming whitespace.
std::vector<std::string> SplitList(const std::string &s)
{
  std::vector<std::string> out;
  std::istringstream iss(s);
  std::string tok;
  while (std::getline(iss, tok, ','))
  {
    std::size_t b = tok.find_first_not_of(" \t");
    std::size_t e = tok.find_last_not_of(" \t");
    out.push_back(b == std::string::npos ? std::string()
                                         : tok.substr(b, e - b + 1));
  }
  return out;
}
} // namespace

ConfigurableAnalysis::~ConfigurableAnalysis()
{
  for (AnalysisAdaptor *a : this->Analyses_)
    a->UnRegister();
}

void ConfigurableAnalysis::InitializeFile(const std::string &path)
{
  auto root = sxml::ParseFile(path);
  this->Initialize(*root);
}

void ConfigurableAnalysis::InitializeString(const std::string &xml)
{
  auto root = sxml::Parse(xml);
  this->Initialize(*root);
}

void ConfigurableAnalysis::Initialize(const sxml::Element &root)
{
  if (root.Name() != "sensei")
    throw std::runtime_error(
      "ConfigurableAnalysis: document element must be <sensei>");

  // optional <pool> element configures the stream-ordered caching
  // allocator shared by all analyses in this run
  if (const sxml::Element *pe = root.FirstChild("pool"))
  {
    vp::PoolConfig cfg = vp::PoolManager::Get().Config();
    cfg.Enabled = pe->AttributeBool("enabled", cfg.Enabled);
    cfg.MaxCachedBytes = static_cast<std::size_t>(pe->AttributeInt(
      "max_cached_bytes", static_cast<long long>(cfg.MaxCachedBytes)));
    cfg.TrimThreshold = pe->AttributeDouble("trim_threshold",
                                            cfg.TrimThreshold);
    cfg.MinBlockBytes = static_cast<std::size_t>(pe->AttributeInt(
      "min_block_bytes", static_cast<long long>(cfg.MinBlockBytes)));
    if (cfg.TrimThreshold < 0.0 || cfg.TrimThreshold > 1.0)
      throw std::runtime_error(
        "ConfigurableAnalysis: <pool> trim_threshold must be in [0,1]");
    vp::PoolManager::Get().Configure(cfg);
  }

  // optional <check> element turns the race/lifetime checker on (same
  // switch as the VP_CHECK environment variable)
  if (const sxml::Element *ce = root.FirstChild("check"))
  {
    vp::check::CheckConfig cfg = vp::check::GetConfig();
    cfg.Enabled = ce->AttributeBool("enabled", true);
    cfg.MaxReports = static_cast<std::size_t>(ce->AttributeInt(
      "max_reports", static_cast<long long>(cfg.MaxReports)));
    cfg.FailFast = ce->AttributeBool("fail_fast", cfg.FailFast);
    vp::check::Configure(cfg);
  }

  // optional <sched> element configures the adaptive scheduler: the
  // default placement policy for every analysis and the bounded async
  // pipeline (queue depth + backpressure) shared by all async runners
  if (const sxml::Element *se = root.FirstChild("sched"))
  {
    sched::SchedConfig cfg = sched::GetConfig();
    try
    {
      cfg.Policy = sched::PolicyKindFromName(
        se->Attribute("policy", sched::PolicyKindName(cfg.Policy)));
      cfg.Pressure = sched::BackpressureFromName(se->Attribute(
        "backpressure", sched::BackpressureName(cfg.Pressure)));
    }
    catch (const std::invalid_argument &e)
    {
      throw std::runtime_error(std::string("ConfigurableAnalysis: <sched> ") +
                               e.what());
    }
    const long long depth = se->AttributeInt(
      "queue_depth", static_cast<long long>(cfg.QueueDepth));
    if (depth < 0)
      throw std::runtime_error(
        "ConfigurableAnalysis: <sched> queue_depth must be >= 0 "
        "(0 means unbounded)");
    cfg.QueueDepth = static_cast<long>(depth);
    cfg.RealThreads = se->AttributeBool("real_threads", cfg.RealThreads);
    sched::Configure(cfg);
    this->SchedPolicy_ = cfg.Policy;
    this->HaveSchedPolicy_ = true;
  }

  // optional <exec> element selects where kernel bodies really run: the
  // bit-exact serial path or per-device worker threads with sharded
  // host regions. VP_EXEC in the environment wins over the XML mode so
  // a command line can force the deterministic serial path on a config
  // written for threaded runs.
  if (const sxml::Element *xe = root.FirstChild("exec"))
  {
    vp::exec::ExecConfig cfg = vp::exec::GetConfig();
    if (!std::getenv("VP_EXEC"))
    {
      try
      {
        cfg.ExecMode = vp::exec::ModeFromName(
          xe->Attribute("mode", vp::exec::ModeName(cfg.ExecMode)));
      }
      catch (const std::invalid_argument &e)
      {
        throw std::runtime_error(std::string("ConfigurableAnalysis: <exec> ") +
                                 e.what());
      }
    }
    const long long threads =
      xe->AttributeInt("threads", static_cast<long long>(cfg.Threads));
    if (threads < 0)
      throw std::runtime_error(
        "ConfigurableAnalysis: <exec> threads must be >= 0 (0 means auto)");
    cfg.Threads = static_cast<int>(threads);
    const long long grain = xe->AttributeInt(
      "shard_grain", static_cast<long long>(cfg.ShardGrain));
    if (grain < 1)
      throw std::runtime_error(
        "ConfigurableAnalysis: <exec> shard_grain must be >= 1");
    cfg.ShardGrain = static_cast<std::size_t>(grain);
    vp::exec::Configure(cfg);
  }

  // optional <graph> element turns on captured step-graph execution
  // (capture a step's device DAG once, replay it with pointer rebinding
  // and kernel fusion on later steps). VP_GRAPH / VP_GRAPH_FUSION in the
  // environment win over the XML so command lines can force either mode.
  if (const sxml::Element *ge = root.FirstChild("graph"))
  {
    vp::graph::GraphConfig cfg = vp::graph::GetConfig();
    const vp::graph::GraphConfig env = vp::graph::DefaultConfig();
    cfg.Enabled = std::getenv("VP_GRAPH") ? env.Enabled
                                          : ge->AttributeBool("enabled", true);
    cfg.Fusion = std::getenv("VP_GRAPH_FUSION")
                   ? env.Fusion
                   : ge->AttributeBool("fusion", cfg.Fusion);
    const long long maxNodes = ge->AttributeInt(
      "max_nodes", static_cast<long long>(cfg.MaxNodes));
    if (maxNodes < 1)
      throw std::runtime_error(
        "ConfigurableAnalysis: <graph> max_nodes must be >= 1");
    cfg.MaxNodes = static_cast<std::size_t>(maxNodes);
    cfg.RepinThreshold =
      ge->AttributeDouble("repin_threshold", cfg.RepinThreshold);
    if (cfg.RepinThreshold < 0.0)
      throw std::runtime_error(
        "ConfigurableAnalysis: <graph> repin_threshold must be >= 0");
    vp::graph::Configure(cfg);
  }

  // optional <layout> element selects the process-wide default array
  // storage layout (aos | soa | aosoa, plus the AoSoA block size) and
  // whether kernels may take their vectorized (floating-point
  // reassociating) variants. VP_LAYOUT / VP_SIMD in the environment win
  // over the XML, mirroring the VP_EXEC convention; per-analysis
  // layout= attributes override the default per back end.
  if (const sxml::Element *le = root.FirstChild("layout"))
  {
    vp::layout::LayoutConfig cfg = vp::layout::GetConfig();
    try
    {
      if (!std::getenv("VP_LAYOUT"))
      {
        std::size_t block = cfg.Block;
        cfg.Default = vp::layout::KindFromName(
          le->Attribute("default",
                        vp::layout::KindName(cfg.Default)), &block);
        cfg.Block = block;
        const long long blk = le->AttributeInt(
          "block", static_cast<long long>(cfg.Block));
        if (blk < 2 || blk > 65536)
          throw std::invalid_argument("block must be in [2, 65536]");
        cfg.Block = static_cast<std::size_t>(blk);
      }
      if (!std::getenv("VP_SIMD"))
        cfg.Simd = le->AttributeBool("simd", cfg.Simd);
      vp::layout::Configure(cfg);
    }
    catch (const std::invalid_argument &e)
    {
      throw std::runtime_error(std::string("ConfigurableAnalysis: <layout> ") +
                               e.what());
    }
  }

  // optional <compress> element configures the process-wide default
  // codec for bulk payloads (in transit frames, binary snapshots);
  // per-analysis compress= attributes override it
  if (const sxml::Element *ke = root.FirstChild("compress"))
  {
    cmp::Config cfg = cmp::GetConfig();
    cfg.Enabled = ke->AttributeBool("enabled", true);
    try
    {
      cfg.Default.Codec = cmp::CodecIdFromName(
        ke->Attribute("codec", cmp::CodecName(cfg.Default.Codec)));
      cfg.Default.Level =
        static_cast<int>(ke->AttributeInt("level", cfg.Default.Level));
      cfg.Default.ErrorBound =
        ke->AttributeDouble("error_bound", cfg.Default.ErrorBound);
      cmp::Configure(cfg);
    }
    catch (const std::invalid_argument &e)
    {
      throw std::runtime_error(
        std::string("ConfigurableAnalysis: <compress> ") + e.what());
    }
  }

  // optional <service> element configures the multi-tenant in-transit
  // service (pool size, per-session flow control, heartbeat budget,
  // optional server-side codec override). VP_SVC_* environment
  // variables win over the XML, mirroring the VP_EXEC convention.
  if (const sxml::Element *ve = root.FirstChild("service"))
  {
    svc::ServiceConfig cfg = svc::GetConfig();
    try
    {
      if (!std::getenv("VP_SVC_MAX_SESSIONS"))
        cfg.MaxSessions = static_cast<int>(
          ve->AttributeInt("max_sessions", cfg.MaxSessions));
      if (!std::getenv("VP_SVC_WORKERS"))
        cfg.Workers =
          static_cast<int>(ve->AttributeInt("workers", cfg.Workers));
      if (!std::getenv("VP_SVC_QUEUE_DEPTH"))
        cfg.QueueDepth = static_cast<long>(
          ve->AttributeInt("queue_depth", cfg.QueueDepth));
      if (!std::getenv("VP_SVC_BACKPRESSURE"))
        cfg.Pressure = sched::BackpressureFromName(ve->Attribute(
          "backpressure", sched::BackpressureName(cfg.Pressure)));
      if (!std::getenv("VP_SVC_POLICY"))
        cfg.Policy = sched::PolicyKindFromName(
          ve->Attribute("policy", sched::PolicyKindName(cfg.Policy)));
      if (!std::getenv("VP_SVC_HEARTBEAT_MS"))
        cfg.HeartbeatMs = static_cast<int>(
          ve->AttributeInt("heartbeat_ms", cfg.HeartbeatMs));
      cfg.MissedHeartbeats = static_cast<int>(
        ve->AttributeInt("missed_heartbeats", cfg.MissedHeartbeats));
      cfg.RingBytes = static_cast<std::size_t>(ve->AttributeInt(
        "ring_bytes", static_cast<long long>(cfg.RingBytes)));
      cfg.MaxChunkBytes = static_cast<std::size_t>(ve->AttributeInt(
        "max_chunk_bytes", static_cast<long long>(cfg.MaxChunkBytes)));
      if (const char *env = std::getenv("VP_SVC_CODEC"))
      {
        cfg.HaveCodecOverride = true;
        cfg.CodecOverride.Codec = cmp::CodecIdFromName(env);
      }
      else if (ve->HasAttribute("codec"))
      {
        cfg.HaveCodecOverride = true;
        cfg.CodecOverride.Codec =
          cmp::CodecIdFromName(ve->Attribute("codec"));
      }
      if (cfg.HaveCodecOverride)
      {
        cfg.CodecOverride.Level = static_cast<int>(
          ve->AttributeInt("codec_level", cfg.CodecOverride.Level));
        cfg.CodecOverride.ErrorBound = ve->AttributeDouble(
          "codec_error_bound", cfg.CodecOverride.ErrorBound);
      }

      // the env overrides proper
      if (const char *env = std::getenv("VP_SVC_MAX_SESSIONS"))
        cfg.MaxSessions = std::atoi(env);
      if (const char *env = std::getenv("VP_SVC_WORKERS"))
        cfg.Workers = std::atoi(env);
      if (const char *env = std::getenv("VP_SVC_QUEUE_DEPTH"))
        cfg.QueueDepth = std::atol(env);
      if (const char *env = std::getenv("VP_SVC_BACKPRESSURE"))
        cfg.Pressure = sched::BackpressureFromName(env);
      if (const char *env = std::getenv("VP_SVC_POLICY"))
        cfg.Policy = sched::PolicyKindFromName(env);
      if (const char *env = std::getenv("VP_SVC_HEARTBEAT_MS"))
        cfg.HeartbeatMs = std::atoi(env);

      svc::Configure(cfg);
    }
    catch (const std::invalid_argument &e)
    {
      throw std::runtime_error(
        std::string("ConfigurableAnalysis: <service> ") + e.what());
    }
  }

  // optional <viz> element configures the steerable visualization
  // endpoint: framebuffer resolution, transfer function defaults, the
  // image-frame codec, the per-viewer push depth (a <service> knob the
  // viz endpoint rides on), and per-viewer fidelity overrides as
  // <viewer> children matched by admission order. VP_VIZ_* environment
  // variables win over the XML, mirroring the VP_SVC_* convention.
  if (const sxml::Element *ze = root.FirstChild("viz"))
  {
    viz::VizConfig cfg = viz::GetConfig();
    try
    {
      if (!std::getenv("VP_VIZ_WIDTH"))
        cfg.Width = static_cast<std::uint32_t>(
          ze->AttributeInt("width", cfg.Width));
      if (!std::getenv("VP_VIZ_HEIGHT"))
        cfg.Height = static_cast<std::uint32_t>(
          ze->AttributeInt("height", cfg.Height));
      if (!std::getenv("VP_VIZ_COLORMAP"))
        cfg.Map = viz::ColormapFromName(
          ze->Attribute("colormap", viz::ColormapName(cfg.Map)));
      if (!std::getenv("VP_VIZ_LOG"))
        cfg.Log = ze->AttributeBool("log", cfg.Log);
      if (ze->HasAttribute("range"))
      {
        std::vector<std::string> r = SplitList(ze->Attribute("range"));
        if (r.size() != 2)
          throw std::runtime_error("<viz> range must be 'lo,hi'");
        cfg.Lo = std::stod(r[0]);
        cfg.Hi = std::stod(r[1]);
        cfg.AutoRange = false;
      }
      if (const char *env = std::getenv("VP_VIZ_CODEC"))
        cfg.Codec.Codec = cmp::CodecIdFromName(env);
      else if (ze->HasAttribute("codec"))
        cfg.Codec.Codec = cmp::CodecIdFromName(ze->Attribute("codec"));
      cfg.Codec.Level = static_cast<int>(
        ze->AttributeInt("codec_level", cfg.Codec.Level));

      cfg.Viewers.clear();
      for (const sxml::Element *we : ze->ChildrenNamed("viewer"))
      {
        viz::ViewerOverride ov;
        ov.Width = static_cast<std::uint32_t>(we->AttributeInt("width", 0));
        ov.Height = static_cast<std::uint32_t>(we->AttributeInt("height", 0));
        if (we->HasAttribute("codec"))
        {
          ov.HaveCodec = true;
          ov.Codec.Codec = cmp::CodecIdFromName(we->Attribute("codec"));
        }
        cfg.Viewers.push_back(ov);
      }

      // the env overrides proper
      if (const char *env = std::getenv("VP_VIZ_WIDTH"))
        cfg.Width = static_cast<std::uint32_t>(std::atoi(env));
      if (const char *env = std::getenv("VP_VIZ_HEIGHT"))
        cfg.Height = static_cast<std::uint32_t>(std::atoi(env));
      if (const char *env = std::getenv("VP_VIZ_COLORMAP"))
        cfg.Map = viz::ColormapFromName(env);
      if (const char *env = std::getenv("VP_VIZ_LOG"))
        cfg.Log = std::atoi(env) != 0;

      viz::Configure(cfg);

      // the frame outbox rides the service layer
      if (ze->HasAttribute("push_depth"))
      {
        svc::ServiceConfig scfg = svc::GetConfig();
        scfg.PushDepth = static_cast<long>(ze->AttributeInt("push_depth",
                                                            scfg.PushDepth));
        svc::Configure(scfg);
      }
    }
    catch (const std::invalid_argument &e)
    {
      throw std::runtime_error(std::string("ConfigurableAnalysis: <viz> ") +
                               e.what());
    }
  }

  // optional <fault> element arms the deterministic fault injector
  if (const sxml::Element *fe = root.FirstChild("fault"))
  {
    vp::fault::FaultConfig cfg;
    cfg.Enabled = fe->AttributeBool("enabled", true);
    cfg.Seed = static_cast<std::uint64_t>(fe->AttributeInt("seed", 1));
    cfg.FailAllocNth =
      static_cast<std::uint64_t>(fe->AttributeInt("fail_alloc_nth", 0));
    cfg.FailAllocProb = fe->AttributeDouble("fail_alloc_prob", 0.0);
    cfg.DropEventNth =
      static_cast<std::uint64_t>(fe->AttributeInt("drop_event_nth", 0));
    cfg.StreamDelaySeconds = fe->AttributeDouble("stream_delay", 0.0);
    cfg.DelayNode = static_cast<int>(fe->AttributeInt("delay_node", -1));
    cfg.DelayDevice = static_cast<int>(fe->AttributeInt("delay_device", -1));
    cfg.PrematureReuse = fe->AttributeBool("premature_reuse", false);
    cfg.DropFrameNth =
      static_cast<std::uint64_t>(fe->AttributeInt("drop_frame_nth", 0));
    cfg.CrashSendNth =
      static_cast<std::uint64_t>(fe->AttributeInt("crash_send_nth", 0));
    cfg.FrameDelaySeconds = fe->AttributeDouble("frame_delay", 0.0);
    vp::fault::Configure(cfg);
  }

  for (const sxml::Element *el : root.ChildrenNamed("analysis"))
  {
    if (!el->AttributeBool("enabled", true))
      continue;
    AnalysisAdaptor *a = this->BuildAnalysis(*el);
    try
    {
      ApplyCommon(*el, a);
      this->Analyses_.push_back(a);
    }
    catch (...)
    {
      a->UnRegister();
      throw;
    }
  }
}

void ConfigurableAnalysis::ApplyCommon(const sxml::Element &el,
                                       AnalysisAdaptor *a)
{
  // execution method
  a->SetAsynchronous(el.AttributeBool("async", false));

  // placement: explicit device id, "host", or "auto" + Eq. 1 controls
  const std::string device = el.Attribute("device", "auto");
  if (device == "host")
    a->SetDeviceId(AnalysisAdaptor::DEVICE_HOST);
  else if (device == "auto")
    a->SetDeviceId(AnalysisAdaptor::DEVICE_AUTO);
  else
    a->SetDeviceId(static_cast<int>(el.AttributeInt("device", 0)));

  a->SetDevicesToUse(static_cast<int>(el.AttributeInt("devices_to_use", 0)));
  a->SetDeviceStart(static_cast<int>(el.AttributeInt("device_start", 0)));
  a->SetDeviceStride(static_cast<int>(el.AttributeInt("device_stride", 1)));
  a->SetVerbose(static_cast<int>(el.AttributeInt("verbose", 0)));

  // placement policy: the <sched> element's default, overridable per
  // analysis with policy="static|least-loaded|cost-model"
  if (this->HaveSchedPolicy_)
    a->SetPlacementPolicy(this->SchedPolicy_);
  if (el.HasAttribute("policy"))
  {
    try
    {
      a->SetPlacementPolicy(sched::PolicyKindFromName(el.Attribute("policy")));
    }
    catch (const std::invalid_argument &e)
    {
      throw std::runtime_error(std::string("ConfigurableAnalysis: ") +
                               e.what());
    }
  }

  // per-analysis codec override: compress="none|shuffle-rle|delta-varint|
  // quantize" [+ compress_level, compress_error_bound]. Without the
  // attribute the back end follows the <compress> element's default.
  if (el.HasAttribute("compress"))
  {
    cmp::Params p = cmp::GetConfig().Default;
    try
    {
      p.Codec = cmp::CodecIdFromName(el.Attribute("compress"));
    }
    catch (const std::invalid_argument &e)
    {
      throw std::runtime_error(std::string("ConfigurableAnalysis: ") +
                               e.what());
    }
    p.Level = static_cast<int>(el.AttributeInt("compress_level", p.Level));
    p.ErrorBound = el.AttributeDouble("compress_error_bound", p.ErrorBound);
    if (p.Codec == cmp::CodecId::Quantize && !(p.ErrorBound > 0.0))
      throw std::runtime_error(
        "ConfigurableAnalysis: compress=\"quantize\" needs a positive "
        "compress_error_bound");
    a->SetCompression(p);
  }

  // per-analysis array layout override: layout="aos|soa|aosoa|aosoa<B>"
  // [+ layout_block]. Without the attribute the back end follows the
  // <layout> element's process-wide default.
  if (el.HasAttribute("layout"))
  {
    try
    {
      std::size_t block = 0;
      const vp::layout::Kind k =
        vp::layout::KindFromName(el.Attribute("layout"), &block);
      const long long blk = el.AttributeInt(
        "layout_block", static_cast<long long>(block));
      if (blk < 0 || blk == 1 || blk > 65536)
        throw std::invalid_argument(
          "layout_block must be in [2, 65536] (or 0 for the default)");
      a->SetArrayLayout(k, static_cast<std::size_t>(blk));
    }
    catch (const std::invalid_argument &e)
    {
      throw std::runtime_error(std::string("ConfigurableAnalysis: ") +
                               e.what());
    }
  }
}

AnalysisAdaptor *ConfigurableAnalysis::BuildAnalysis(const sxml::Element &el)
{
  const std::string type = el.Attribute("type");

  if (type == "data_binning")
  {
    DataBinning *b = DataBinning::New();
    try
    {
      b->SetMeshName(el.Attribute("mesh", "table"));

      const std::vector<std::string> axes =
        SplitList(el.Attribute("axes", "x,y"));
      b->SetAxes(axes);

      if (el.HasAttribute("resolution"))
      {
        std::vector<long> res;
        for (const std::string &r : SplitList(el.Attribute("resolution")))
          res.push_back(std::stol(r));
        b->SetResolution(res);
      }

      // optional fixed ranges: range_0="lo,hi" per axis
      for (std::size_t a = 0; a < axes.size(); ++a)
      {
        const std::string key = "range_" + std::to_string(a);
        if (el.HasAttribute(key))
        {
          std::vector<std::string> r = SplitList(el.Attribute(key));
          if (r.size() != 2)
            throw std::runtime_error("data_binning: " + key +
                                     " must be 'lo,hi'");
          b->SetRange(static_cast<int>(a), std::stod(r[0]), std::stod(r[1]));
        }
      }

      const std::vector<std::string> ops =
        SplitList(el.Attribute("ops", "count"));
      const std::vector<std::string> values =
        SplitList(el.Attribute("values", ""));
      for (std::size_t i = 0; i < ops.size(); ++i)
      {
        const BinningOp op = BinningOpFromName(ops[i]);
        const std::string col = i < values.size() ? values[i] : std::string();
        if (op != BinningOp::Count)
          b->AddOperation(col, op);
      }

      if (el.HasAttribute("out_dir"))
        b->SetOutput(el.Attribute("out_dir"),
                     el.Attribute("out_prefix", "binning"),
                     el.AttributeInt("out_freq", 1));

      b->SetGpuStrategy(
        GpuBinningStrategyFromName(el.Attribute("gpu_strategy", "")));
    }
    catch (...)
    {
      b->UnRegister();
      throw;
    }
    return b;
  }

  if (type == "render")
  {
    // the steerable rendering endpoint: a data binning driven through a
    // transfer function; defaults come from the <viz> element
    const viz::VizConfig vcfg = viz::GetConfig();
    viz::RenderAnalysis *r = viz::RenderAnalysis::New();
    try
    {
      r->SetMeshName(el.Attribute("mesh", "table"));
      r->SetAxes(SplitList(el.Attribute("axes", "x,y")));
      if (el.HasAttribute("resolution"))
        r->SetBinResolution(el.AttributeInt("resolution", 256));

      const std::vector<std::string> axes = SplitList(el.Attribute(
        "axes", "x,y"));
      for (std::size_t a = 0; a < axes.size(); ++a)
      {
        const std::string key = "range_" + std::to_string(a);
        if (el.HasAttribute(key))
        {
          std::vector<std::string> rg = SplitList(el.Attribute(key));
          if (rg.size() != 2)
            throw std::runtime_error("render: " + key + " must be 'lo,hi'");
          r->SetBinRange(static_cast<int>(a), std::stod(rg[0]),
                         std::stod(rg[1]));
        }
      }

      if (el.HasAttribute("variable"))
        r->SetVariable(el.Attribute("variable"), el.Attribute("op", "sum"));

      r->SetImageSize(
        static_cast<std::uint32_t>(el.AttributeInt("width", vcfg.Width)),
        static_cast<std::uint32_t>(el.AttributeInt("height", vcfg.Height)));

      viz::TransferFunction tf;
      tf.Map = viz::ColormapFromName(
        el.Attribute("colormap", viz::ColormapName(vcfg.Map)));
      tf.Log = el.AttributeBool("log", vcfg.Log);
      tf.AutoRange = vcfg.AutoRange;
      tf.Lo = vcfg.Lo;
      tf.Hi = vcfg.Hi;
      if (el.HasAttribute("range"))
      {
        std::vector<std::string> rg = SplitList(el.Attribute("range"));
        if (rg.size() != 2)
          throw std::runtime_error("render: range must be 'lo,hi'");
        tf.Lo = std::stod(rg[0]);
        tf.Hi = std::stod(rg[1]);
        tf.AutoRange = false;
      }
      r->SetTransfer(tf);
    }
    catch (const std::invalid_argument &e)
    {
      r->UnRegister();
      throw std::runtime_error(std::string("ConfigurableAnalysis: render: ") +
                               e.what());
    }
    catch (...)
    {
      r->UnRegister();
      throw;
    }
    return r;
  }

  if (type == "histogram")
  {
    Histogram *h = Histogram::New();
    try
    {
      h->SetMeshName(el.Attribute("mesh", "table"));
      h->SetColumn(el.Attribute("column"));
      h->SetBins(el.AttributeInt("bins", 64));
      if (el.HasAttribute("range"))
      {
        std::vector<std::string> r = SplitList(el.Attribute("range"));
        if (r.size() != 2)
          throw std::runtime_error("histogram: range must be 'lo,hi'");
        h->SetRange(std::stod(r[0]), std::stod(r[1]));
      }
    }
    catch (...)
    {
      h->UnRegister();
      throw;
    }
    return h;
  }

  if (type == "autocorrelation")
  {
    Autocorrelation *a = Autocorrelation::New();
    a->SetMeshName(el.Attribute("mesh", "table"));
    a->SetColumn(el.Attribute("column"));
    a->SetWindow(el.AttributeInt("window", 8));
    return a;
  }

  if (type == "column_statistics")
  {
    ColumnStatistics *s = ColumnStatistics::New();
    s->SetMeshName(el.Attribute("mesh", "table"));
    if (el.HasAttribute("columns"))
      s->SetColumns(SplitList(el.Attribute("columns")));
    if (el.HasAttribute("file"))
      s->SetOutputFile(el.Attribute("file"));
    return s;
  }

  if (type == "posthoc_io")
  {
    PosthocIO *io = PosthocIO::New();
    io->SetMeshName(el.Attribute("mesh", "table"));
    io->SetOutputDir(el.Attribute("dir", "."));
    io->SetPrefix(el.Attribute("prefix", "posthoc"));
    io->SetFrequency(el.AttributeInt("frequency", 1));
    const std::string fmt = el.Attribute("format", "csv");
    io->SetFormat(fmt == "vtk"    ? PosthocIO::Format::VTK
                  : fmt == "sbin" ? PosthocIO::Format::SBIN
                                  : PosthocIO::Format::CSV);
    return io;
  }

  throw std::runtime_error("ConfigurableAnalysis: unknown analysis type '" +
                           type + "'");
}

bool ConfigurableAnalysis::Execute(DataAdaptor *data)
{
  bool ok = true;
  for (AnalysisAdaptor *a : this->Analyses_)
    ok = a->Execute(data) && ok;
  return ok;
}

void ConfigurableAnalysis::DrainAsync()
{
  for (AnalysisAdaptor *a : this->Analyses_)
    a->DrainAsync();
}

int ConfigurableAnalysis::Finalize()
{
  // drain every analysis before finalizing any: a back end's Finalize
  // (or the profiler shutdown that follows) must not run while a sibling
  // still has an asynchronous task in flight
  this->DrainAsync();

  int status = 0;
  for (AnalysisAdaptor *a : this->Analyses_)
  {
    const int s = a->Finalize();
    if (s && !status)
      status = s;
  }
  return status;
}

AnalysisAdaptor *ConfigurableAnalysis::GetAnalysis(int i) const
{
  if (i < 0 || i >= static_cast<int>(this->Analyses_.size()))
    return nullptr;
  return this->Analyses_[static_cast<std::size_t>(i)];
}

} // namespace sensei
