#ifndef senseiService_h
#define senseiService_h

/// @file senseiService.h
/// SENSEI glue for the multi-tenant in-transit service (src/svc): the
/// simulation side serializes its mesh with the session's negotiated
/// codec and streams frames through a svc::Client; the analysis side
/// hosts a svc::Server whose worker pool drives one ConfigurableAnalysis
/// chain per worker, so N independent simulations share one analysis
/// deployment. The service layer itself never sees sensei types — only
/// serialized frame payloads cross the transport boundary.

#include "senseiConfigurableAnalysis.h"
#include "senseiDataAdaptor.h"
#include "svcClient.h"
#include "svcServer.h"

#include <atomic>
#include <memory>
#include <string>

namespace sxml
{
class Element;
}

namespace sensei
{

/// Simulation-side endpoint: one per tenant.
class ServiceClient
{
public:
  /// `port` comes from the host's Connect(); `meshName` is the mesh
  /// each step ships.
  explicit ServiceClient(std::shared_ptr<svc::Port> port,
                         std::string meshName = "table");

  /// Negotiate a session. The requested codec follows the process-wide
  /// cmp::GetConfig() (the `<compress>` element); the server may
  /// override it. Returns false on timeout or rejection.
  bool Connect(double timeoutSeconds = 5.0);

  /// Serialize the named mesh from `data` with the negotiated codec and
  /// ship it as one frame. Returns false when the mesh is unavailable
  /// or the session is down.
  bool Send(DataAdaptor *data);

  /// Graceful leave.
  void Close();

  /// Abrupt death (testing: the tenant vanishes mid-run).
  void Crash();

  /// The underlying service client (session id, negotiated grant).
  svc::Client &Raw() { return this->Client_; }

private:
  svc::Client Client_;
  std::string MeshName_;
};

/// Analysis-side deployment: a server whose workers each drive a
/// ConfigurableAnalysis chain built from the same XML document.
class ServiceHost
{
public:
  /// Build from a parsed <sensei> document: the optional <service>
  /// element sizes the pool (via svc::Configure), the <analysis>
  /// elements define the chain each worker runs.
  explicit ServiceHost(const sxml::Element &root);

  /// Convenience: parse `xml` (a document string) first.
  static std::unique_ptr<ServiceHost> FromString(const std::string &xml);

  /// Convenience: parse the file at `path` first.
  static std::unique_ptr<ServiceHost> FromFile(const std::string &path);

  ~ServiceHost();

  ServiceHost(const ServiceHost &) = delete;
  ServiceHost &operator=(const ServiceHost &) = delete;

  /// A new tenant's port (hand it to a ServiceClient).
  std::shared_ptr<svc::Port> Connect() { return this->Server_->Connect(); }

  void Start() { this->Server_->Start(); }

  /// Stop the server and finalize every worker's analysis chain.
  void Stop();

  /// Frames executed across the pool.
  long FramesExecuted() const { return this->Frames_.load(); }

  svc::Server &GetServer() { return *this->Server_; }

private:
  void HandleFrame(int worker, const svc::FrameHeader &h,
                   std::vector<std::uint8_t> &&payload);

  std::vector<ConfigurableAnalysis *> Analyses_; ///< one chain per worker
  std::unique_ptr<svc::Server> Server_;
  std::atomic<long> Frames_{0};
  bool Stopped_ = false;
};

} // namespace sensei

#endif
