#ifndef senseiColumnStatistics_h
#define senseiColumnStatistics_h

/// @file senseiColumnStatistics.h
/// Descriptive-statistics analysis back end: per-column count, min, max,
/// mean, and standard deviation of a table mesh, combined across MPI
/// ranks with numerically stable moment merging (Chan et al.). A third
/// analysis alongside DataBinning and Histogram demonstrating that the
/// paper's placement and execution-method extensions, being defined in
/// the AnalysisAdaptor base class, apply to every back end unchanged.

#include "senseiAnalysisAdaptor.h"
#include "senseiAsyncRunner.h"
#include "svtkHAMRDataArray.h"

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace sensei
{

/// Streaming moments of one column.
struct ColumnMoments
{
  double Count = 0.0;
  double Min = 0.0;
  double Max = 0.0;
  double Mean = 0.0;
  double M2 = 0.0; ///< sum of squared deviations from the mean

  double Variance() const { return this->Count > 1 ? this->M2 / this->Count : 0.0; }
  double StdDev() const;

  /// Merge another partition's moments into this one (parallel/stable).
  void Merge(const ColumnMoments &other);
};

class ColumnStatistics : public AnalysisAdaptor
{
public:
  static ColumnStatistics *New() { return new ColumnStatistics; }

  const char *GetClassName() const override
  {
    return "sensei::ColumnStatistics";
  }

  void SetMeshName(const std::string &m) { this->MeshName_ = m; }

  /// Columns to summarize; empty (the default) means every column.
  void SetColumns(const std::vector<std::string> &cols) { this->Columns_ = cols; }

  /// Append one step's summary lines to this CSV file on rank 0
  /// (step,column,count,min,max,mean,stddev). Empty disables writing.
  void SetOutputFile(const std::string &path) { this->OutputFile_ = path; }

  bool Execute(DataAdaptor *data) override;
  void DrainAsync() override { this->Runner_.Drain(); }
  int Finalize() override;

  /// The most recent per-column statistics (empty before the first
  /// completed execution).
  std::map<std::string, ColumnMoments> GetLastResult() const;

protected:
  ColumnStatistics() = default;
  ~ColumnStatistics() override { this->Runner_.Drain(); }

private:
  void Run(const std::vector<std::string> &names,
           const std::vector<svtkSmartPtr<svtkHAMRDoubleArray>> &cols,
           minimpi::Communicator *comm, long step, int device);

  std::string MeshName_ = "table";
  std::vector<std::string> Columns_;
  std::string OutputFile_;

  AsyncRunner Runner_;
  std::optional<minimpi::Communicator> AsyncComm_;

  mutable std::mutex ResultMutex_;
  std::map<std::string, ColumnMoments> Last_;
};

} // namespace sensei

#endif
