#include "senseiDataBinning.h"

#include "execEngine.h"
#include "layoutMapping.h"
#include "graphCapture.h"
#include "senseiProfiler.h"
#include "sio.h"
#include "svtkAOSDataArray.h"
#include "svtkArrayUtils.h"
#include "vcuda.h"
#include "vpClock.h"
#include "vpLoadTracker.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>

namespace sensei
{

BinningOp BinningOpFromName(const std::string &name)
{
  if (name == "count")
    return BinningOp::Count;
  if (name == "sum")
    return BinningOp::Sum;
  if (name == "min")
    return BinningOp::Min;
  if (name == "max")
    return BinningOp::Max;
  if (name == "average" || name == "avg")
    return BinningOp::Average;
  throw std::invalid_argument("unknown binning operation '" + name + "'");
}

GpuBinningStrategy GpuBinningStrategyFromName(const std::string &name)
{
  if (name == "global_atomics" || name == "atomics" || name.empty())
    return GpuBinningStrategy::GlobalAtomics;
  if (name == "privatized")
    return GpuBinningStrategy::Privatized;
  throw std::invalid_argument("unknown GPU binning strategy '" + name + "'");
}

const char *BinningOpName(BinningOp op)
{
  switch (op)
  {
    case BinningOp::Count: return "count";
    case BinningOp::Sum: return "sum";
    case BinningOp::Min: return "min";
    case BinningOp::Max: return "max";
    case BinningOp::Average: return "avg";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
DataBinning::DataBinning() = default;

DataBinning::~DataBinning()
{
  this->Runner_.Drain();
  if (this->LastResult_)
    this->LastResult_->UnRegister();
}

void DataBinning::SetAxes(const std::vector<std::string> &axes)
{
  if (axes.empty() || axes.size() > 3)
    throw std::invalid_argument("DataBinning::SetAxes: 1 to 3 axes required");
  this->Axes_ = axes;
  this->FixedLo_.assign(axes.size(), 0.0);
  this->FixedHi_.assign(axes.size(), 0.0);
  this->HasFixedRange_.assign(axes.size(), false);
  if (this->Resolution_.size() != axes.size())
    this->Resolution_.assign(axes.size(), 256);
}

void DataBinning::SetResolution(const std::vector<long> &res)
{
  if (this->Axes_.empty())
    throw std::logic_error("DataBinning::SetResolution: set axes first");
  if (res.size() == 1)
  {
    this->Resolution_.assign(this->Axes_.size(), res[0]);
  }
  else if (res.size() == this->Axes_.size())
  {
    this->Resolution_ = res;
  }
  else
  {
    throw std::invalid_argument(
      "DataBinning::SetResolution: need one value or one per axis");
  }
  for (long r : this->Resolution_)
    if (r < 1)
      throw std::invalid_argument(
        "DataBinning::SetResolution: resolution must be positive");
}

void DataBinning::SetRange(int axis, double lo, double hi)
{
  if (axis < 0 || axis >= static_cast<int>(this->Axes_.size()))
    throw std::out_of_range("DataBinning::SetRange: bad axis");
  if (!(lo < hi))
    throw std::invalid_argument("DataBinning::SetRange: need lo < hi");
  this->FixedLo_[static_cast<std::size_t>(axis)] = lo;
  this->FixedHi_[static_cast<std::size_t>(axis)] = hi;
  this->HasFixedRange_[static_cast<std::size_t>(axis)] = true;
}

void DataBinning::AddOperation(const std::string &column, BinningOp op)
{
  if (op != BinningOp::Count && column.empty())
    throw std::invalid_argument(
      "DataBinning::AddOperation: reduction needs a column");
  this->Ops_.push_back(Operation{column, op});
}

void DataBinning::SetOutput(const std::string &dir, const std::string &prefix,
                            long frequency)
{
  this->OutputDir_ = dir;
  this->OutputPrefix_ = prefix;
  this->OutputFrequency_ = frequency;
}

// ---------------------------------------------------------------------------
bool DataBinning::GatherInputs(DataAdaptor *data, bool deepCopy, Snapshot &snap)
{
  svtkDataObject *obj = data->GetMesh(this->MeshName_);
  if (!obj)
    return false;

  // resolve to a list of tables: a table mesh is one block; a multi-block
  // mesh contributes every non-null block (all of which must be tables)
  std::vector<svtkTable *> tables;
  if (auto *table = dynamic_cast<svtkTable *>(obj))
  {
    tables.push_back(table);
  }
  else if (auto *mb = dynamic_cast<svtkMultiBlockDataSet *>(obj))
  {
    for (int i = 0; i < mb->GetNumberOfBlocks(); ++i)
    {
      svtkDataObject *block = mb->GetBlock(i);
      if (!block)
        continue;
      auto *t = dynamic_cast<svtkTable *>(block);
      if (!t)
      {
        obj->UnRegister();
        return false;
      }
      tables.push_back(t);
    }
  }
  else
  {
    obj->UnRegister();
    return false;
  }

  bool ok = true;
  for (svtkTable *table : tables)
  {
    // a reduction list often names the same column several times (e.g.
    // min/max/avg of one variable); fetch, convert, and (for async) deep
    // copy each distinct column exactly once so it also moves at most once
    std::map<std::string, svtkSmartPtr<svtkHAMRDoubleArray>> cache;

    auto grab = [&](const std::string &name,
                    std::vector<svtkSmartPtr<svtkHAMRDoubleArray>> &out) -> bool
    {
      auto it = cache.find(name);
      if (it != cache.end())
      {
        out.push_back(it->second);
        return true;
      }

      svtkDataArray *col = table->GetColumnByName(name);
      if (!col)
        return false;
      svtkHAMRDoubleArray *h = svtkAsHAMRDouble(col); // +1 ref
      svtkSmartPtr<svtkHAMRDoubleArray> held;
      if (deepCopy)
      {
        held = svtkSmartPtr<svtkHAMRDoubleArray>::Take(h->NewDeepCopy());
        h->UnRegister();
      }
      else
      {
        held = svtkSmartPtr<svtkHAMRDoubleArray>::Take(h);
      }
      cache.emplace(name, held);
      out.push_back(held);
      return true;
    };

    BlockInput block;
    for (const std::string &axis : this->Axes_)
      ok = ok && grab(axis, block.AxisCols);
    for (const Operation &op : this->Ops_)
      if (op.Kind != BinningOp::Count)
        ok = ok && grab(op.Column, block.ValueCols);

    if (!block.AxisCols.empty())
      snap.Rows += static_cast<std::size_t>(
        block.AxisCols[0]->GetNumberOfTuples());
    for (const auto &kv : cache)
      snap.Bytes += static_cast<std::size_t>(kv.second->GetNumberOfTuples()) *
                    sizeof(double);

    snap.Blocks.push_back(std::move(block));
  }

  snap.Step = data->GetDataTimeStep();
  snap.Time = data->GetDataTime();

  // describe the accumulation so the cost-model policy can price it: the
  // per-row cost and atomic fraction mirror the kernel launched below
  std::size_t nRed = 0;
  for (const Operation &op : this->Ops_)
    if (op.Kind != BinningOp::Count)
      ++nRed;
  sched::WorkHint hint;
  hint.Elements = snap.Rows;
  hint.OpsPerElement = 4.0 * static_cast<double>(this->Axes_.size()) +
                       3.0 * static_cast<double>(nRed + 1);
  hint.AtomicFraction =
    this->GpuStrategy_ == GpuBinningStrategy::GlobalAtomics ? 0.6 : 0.05;
  hint.MoveBytes = snap.Bytes;
  snap.Device = this->PlaceForGraph(data, hint);

  obj->UnRegister();
  return ok;
}

int DataBinning::PlaceForGraph(DataAdaptor *data, const sched::WorkHint &hint)
{
  const bool armed = this->GraphSession_ && this->GraphSession_->Armed();
  if (!armed || this->GraphDevice_ < 0 || this->GetDeviceId() != DEVICE_AUTO)
    return this->GraphDevice_ = this->GetPlacementDevice(data, hint);

  // an armed graph pins the capture-time device — moving the work would
  // invalidate the graph anyway — unless the policy has diverged from
  // the pin (Eq. 1 names another device, or the pinned device's backlog
  // fell behind the candidates by more than the repin threshold); then
  // drop the graph and decide afresh
  sched::PlacementRequest req;
  req.Rank =
    data && data->GetCommunicator() ? data->GetCommunicator()->Rank() : 0;
  req.DevicesPerNode = vp::Platform::Get().NumDevices();
  req.DevicesToUse = this->GetDevicesToUse();
  req.DeviceStart = this->GetDeviceStart();
  req.DeviceStride = this->GetDeviceStride();
  req.Node = vp::Platform::GetThisNode();
  req.Hint = hint;
  if (sched::PlacementDiverged(this->GetPlacementPolicy(), req,
                               this->GraphDevice_,
                               vp::graph::GetConfig().RepinThreshold,
                               vp::ThisClock().Now()))
  {
    this->GraphSession_->Drop();
    return this->GraphDevice_ = this->GetPlacementDevice(data, hint);
  }
  vp::DeviceLoadTracker::Get().RecordPlacement(req.Node, this->GraphDevice_);
  return this->GraphDevice_;
}

bool DataBinning::Execute(DataAdaptor *data)
{
  if (!data || this->Axes_.empty())
    return false;

  if (this->GetAsynchronous())
  {
    ScopedEvent ev("binning::execute_async_visible");

    if (!this->AsyncComm_ && data->GetCommunicator())
      this->AsyncComm_.emplace(data->GetCommunicator()->Dup());

    auto snap = std::make_shared<Snapshot>();
    if (!this->GatherInputs(data, /*deepCopy=*/true, *snap))
      return false;
    snap->Comm = this->AsyncComm_ ? &*this->AsyncComm_ : nullptr;

    this->Runner_.Submit([this, snap]() { this->RunBinning(*snap); },
                         snap->Bytes);
    return true;
  }

  ScopedEvent ev("binning::execute_lockstep");
  Snapshot snap;
  if (!this->GatherInputs(data, /*deepCopy=*/false, snap))
    return false;
  snap.Comm = data->GetCommunicator();
  this->RunBinning(snap);
  return true;
}

int DataBinning::Finalize()
{
  this->Runner_.Drain();
  return 0;
}

// ---------------------------------------------------------------------------
namespace
{
/// Compute the min/max of host-resident data (p is a view the caller
/// acquired and synchronized; views are acquired once per execute so no
/// column moves twice). The device path scans every (axis, block) pair in
/// one multi-output kernel inside RunBinning instead.
void PointerRangeHost(const double *p, std::size_t n, double &lo, double &hi)
{
  lo = std::numeric_limits<double>::infinity();
  hi = -std::numeric_limits<double>::infinity();
  if (!n)
    return;

  double mn = std::numeric_limits<double>::infinity();
  double mx = -mn;
  vp::Platform::Get().HostParallelFor(
    vp::KernelDesc{n, 2.0, 0.0, "binning_range_host"},
    [p, &mn, &mx](std::size_t b, std::size_t e)
    {
      for (std::size_t i = b; i < e; ++i)
      {
        mn = std::min(mn, p[i]);
        mx = std::max(mx, p[i]);
      }
    });
  lo = mn;
  hi = mx;
}
} // namespace

void DataBinning::RunBinning(const Snapshot &snap)
{
  ScopedEvent ev("binning::run");

  const std::size_t nAxes = this->Axes_.size();
  const std::size_t nBlocks = snap.Blocks.size();

  const bool onDevice = snap.Device >= 0;
  if (onDevice)
    vcuda::SetDevice(snap.Device);

  // reductions to perform (count is implicit)
  std::vector<Operation> redOps;
  for (const Operation &op : this->Ops_)
    if (op.Kind != BinningOp::Count)
      redOps.push_back(op);
  const std::size_t nRed = redOps.size();

  // --- inputs at the target location, acquired exactly once per column
  // (the access API moves a column at most once per execute; both the
  // range scan and the accumulation use the same view)
  std::map<const svtkHAMRDoubleArray *, std::shared_ptr<const double>> views;
  auto acquire =
    [&](const svtkHAMRDoubleArray *col) -> const double *
  {
    auto it = views.find(col);
    if (it == views.end())
      it = views
             .emplace(col, onDevice
                             ? col->GetDeviceAccessible(snap.Device)
                             : col->GetHostAccessible())
             .first;
    return it->second.get();
  };

  std::vector<std::size_t> rows(nBlocks, 0);
  std::vector<std::vector<const double *>> ax(nBlocks);
  std::vector<std::vector<const double *>> vals(nBlocks);
  for (std::size_t b = 0; b < nBlocks; ++b)
  {
    const BlockInput &blk = snap.Blocks[b];
    rows[b] = blk.AxisCols.empty() ? 0 : blk.AxisCols[0]->GetNumberOfTuples();
    ax[b].resize(nAxes);
    vals[b].resize(nRed);
    for (std::size_t a = 0; a < nAxes; ++a)
      ax[b][a] = acquire(blk.AxisCols[a].Get());
    for (std::size_t k = 0; k < nRed; ++k)
      vals[b][k] = acquire(blk.ValueCols[k].Get());
    // make sure data in flight, if it was moved, has arrived
    for (const auto &c : blk.AxisCols)
      c->Synchronize();
    for (const auto &c : blk.ValueCols)
      c->Synchronize();
  }

  // --- captured step-graph session: the whole device DAG below runs on
  // one private stream; capture it once, then replay it with pointer
  // rebinding on later steps (see src/graph). The scope opens after the
  // input views settle (their movement is data-dependent, not part of
  // the recurring step shape) and closes when this function returns.
  vcuda::stream_t strm;
  std::optional<vp::graph::StepScope> graphScope;
  if (onDevice)
  {
    strm = vcuda::StreamCreate();
    if (vp::graph::Enabled())
    {
      if (!this->GraphSession_)
        this->GraphSession_ = std::make_unique<vp::graph::Session>();
      graphScope.emplace(*this->GraphSession_);
    }
  }

  // --- axis bounds: fixed, or computed on the fly (over every block) and
  // reduced across ranks ---
  std::vector<double> lo(nAxes), hi(nAxes);
  std::vector<std::size_t> autoAxes;
  for (std::size_t a = 0; a < nAxes; ++a)
  {
    if (this->HasFixedRange_[a] || !this->AutoRange_)
    {
      lo[a] = this->FixedLo_[a];
      hi[a] = this->HasFixedRange_[a] ? this->FixedHi_[a] : this->FixedLo_[a];
      if (!this->HasFixedRange_[a])
      {
        lo[a] = 0.0;
        hi[a] = 1.0;
      }
      continue;
    }
    lo[a] = std::numeric_limits<double>::infinity();
    hi[a] = -lo[a];
    autoAxes.push_back(a);
  }

  if (!autoAxes.empty() && onDevice)
  {
    // one multi-output kernel scans every (axis, block) pair: a single
    // launch and a single stream-ordered readback replace the former
    // per-pair round trips, and give the step graph a fixed shape
    struct Unit
    {
      const double *P;
      std::size_t N;
      std::size_t Axis;
    };
    auto units = std::make_shared<std::vector<Unit>>();
    std::size_t totalRows = 0;
    for (std::size_t a : autoAxes)
      for (std::size_t b = 0; b < nBlocks; ++b)
        if (rows[b])
        {
          units->push_back(Unit{ax[b][a], rows[b], a});
          totalRows += rows[b];
        }
    if (!units->empty())
    {
      const std::size_t nUnits = units->size();
      auto *scratch = static_cast<double *>(
        vcuda::MallocAsync(2 * nUnits * sizeof(double), strm));
      std::vector<double> out(2 * nUnits, 0.0);
      const double opsPerUnit =
        2.0 * static_cast<double>(totalRows) / static_cast<double>(nUnits);
      vcuda::LaunchN(
        strm, nUnits,
        [units, scratch](std::size_t ub, std::size_t ue)
        {
          for (std::size_t u = ub; u < ue; ++u)
          {
            const Unit &unit = (*units)[u];
            double mn = std::numeric_limits<double>::infinity();
            double mx = -mn;
            for (std::size_t i = 0; i < unit.N; ++i)
            {
              mn = std::min(mn, unit.P[i]);
              mx = std::max(mx, unit.P[i]);
            }
            scratch[2 * u] = mn;
            scratch[2 * u + 1] = mx;
          }
        },
        vcuda::LaunchBounds{opsPerUnit, 0.05, "binning_range_multi"});
      vcuda::MemcpyAsync(out.data(), scratch, 2 * nUnits * sizeof(double),
                         strm);
      vcuda::StreamSynchronize(strm);
      vcuda::FreeAsync(scratch, strm);
      for (std::size_t u = 0; u < nUnits; ++u)
      {
        const std::size_t a = (*units)[u].Axis;
        lo[a] = std::min(lo[a], out[2 * u]);
        hi[a] = std::max(hi[a], out[2 * u + 1]);
      }
    }
  }
  else
  {
    for (std::size_t a : autoAxes)
      for (std::size_t b = 0; b < nBlocks; ++b)
      {
        double blo = 0, bhi = 0;
        PointerRangeHost(ax[b][a], rows[b], blo, bhi);
        lo[a] = std::min(lo[a], blo);
        hi[a] = std::max(hi[a], bhi);
      }
  }

  if (snap.Comm && this->AutoRange_)
  {
    snap.Comm->Allreduce(lo.data(), nAxes, minimpi::Op::Min);
    snap.Comm->Allreduce(hi.data(), nAxes, minimpi::Op::Max);
  }

  for (std::size_t a = 0; a < nAxes; ++a)
  {
    if (!std::isfinite(lo[a]) || !std::isfinite(hi[a]))
    {
      lo[a] = 0.0;
      hi[a] = 1.0;
    }
    if (!(hi[a] > lo[a]))
      hi[a] = lo[a] + 1.0;
  }

  // --- bin geometry ----------------------------------------------------------
  std::size_t nBins = 1;
  for (std::size_t a = 0; a < nAxes; ++a)
    nBins *= static_cast<std::size_t>(this->Resolution_[a]);

  std::vector<double> scale(nAxes), shift(nAxes);
  for (std::size_t a = 0; a < nAxes; ++a)
  {
    scale[a] = static_cast<double>(this->Resolution_[a]) / (hi[a] - lo[a]);
    shift[a] = lo[a];
  }

  // host-side result grids: counts first, then one per non-count op
  std::vector<double> counts(nBins, 0.0);
  std::vector<std::vector<double>> grids(nRed);

  // init values per reduction kind
  auto initValue = [](BinningOp op) -> double
  {
    switch (op)
    {
      case BinningOp::Min: return std::numeric_limits<double>::infinity();
      case BinningOp::Max: return -std::numeric_limits<double>::infinity();
      default: return 0.0;
    }
  };

  const std::size_t nAxesC = nAxes;
  const std::size_t nRedC = nRed;
  const long *resPtr = this->Resolution_.data();
  const double *scalePtr = scale.data();
  const double *shiftPtr = shift.data();

  // When this analysis is layout hinted (SoA / AoSoA, per analysis or
  // via the process <layout> default) the accumulate bodies take the
  // tiled variant: the per-row bin indices are precomputed a column
  // (axis) at a time over small tiles — contiguous, branch-light loops
  // the compiler vectorizes — and the grid scatter then replays in the
  // identical row order with the identical index math, so the results
  // are bit-exact with the interleaved path.
  const bool tiled = this->GetEffectiveLayout() != vp::layout::Kind::AoS;
  if (tiled)
    vp::layout::NoteSimdKernel();
  else
    vp::layout::NoteScalarKernel();

  // the shared accumulation body: bin index from the coordinate columns,
  // then a counter increment plus each reduction — the updates that need
  // atomics on a real GPU. With slabStride > 0 the body is privatized:
  // each exec shard accumulates into its own copy of the grids
  // (cnt + slab*slabStride, grid[k] + slab*slabStride), removing the
  // shared-atomic contention so the sharded kernel scales; a tree merge
  // folds the copies afterwards. slabStride == 0 is the shared path,
  // bit-exact with the pre-engine implementation.
  auto makeBody = [&](double *cnt, double *const *grid,
                      const BinningOp *kinds, const double *const *axp,
                      const double *const *valp, std::size_t slabStride = 0,
                      std::size_t maxSlab = 0)
  {
    return [=](std::size_t b, std::size_t e)
    {
      const std::size_t off =
        slabStride
          ? std::min<std::size_t>(
              static_cast<std::size_t>(vp::exec::ShardIndex()), maxSlab) *
              slabStride
          : 0;
      if (tiled)
      {
        constexpr std::size_t Tile = 256; // rows per index-precompute tile
        std::size_t idxBuf[Tile];
        for (std::size_t t0 = b; t0 < e; t0 += Tile)
        {
          const std::size_t m = std::min<std::size_t>(Tile, e - t0);
          for (std::size_t i = 0; i < m; ++i)
            idxBuf[i] = 0;
          std::size_t strideAcc = 1;
          for (std::size_t a = 0; a < nAxesC; ++a)
          {
            const double sh = shiftPtr[a];
            const double sc = scalePtr[a];
            const long rmax = resPtr[a] - 1;
            const double *__restrict col = axp[a] + t0;
            std::size_t *__restrict ib = idxBuf;
            for (std::size_t i = 0; i < m; ++i)
            {
              long bi = static_cast<long>((col[i] - sh) * sc);
              bi = std::clamp(bi, 0L, rmax);
              ib[i] += static_cast<std::size_t>(bi) * strideAcc;
            }
            strideAcc *= static_cast<std::size_t>(resPtr[a]);
          }
          for (std::size_t i = 0; i < m; ++i)
          {
            const std::size_t idx = idxBuf[i];
            cnt[off + idx] += 1.0;
            for (std::size_t k = 0; k < nRedC; ++k)
            {
              const double v = valp[k][t0 + i];
              switch (kinds[k])
              {
                case BinningOp::Sum:
                case BinningOp::Average:
                  grid[k][off + idx] += v;
                  break;
                case BinningOp::Min:
                  grid[k][off + idx] = std::min(grid[k][off + idx], v);
                  break;
                case BinningOp::Max:
                  grid[k][off + idx] = std::max(grid[k][off + idx], v);
                  break;
                default:
                  break;
              }
            }
          }
        }
        return;
      }
      for (std::size_t i = b; i < e; ++i)
      {
        std::size_t idx = 0;
        std::size_t strideAcc = 1;
        for (std::size_t a = 0; a < nAxesC; ++a)
        {
          long bi =
            static_cast<long>((axp[a][i] - shiftPtr[a]) * scalePtr[a]);
          bi = std::clamp(bi, 0L, resPtr[a] - 1);
          idx += static_cast<std::size_t>(bi) * strideAcc;
          strideAcc *= static_cast<std::size_t>(resPtr[a]);
        }
        cnt[off + idx] += 1.0;
        for (std::size_t k = 0; k < nRedC; ++k)
        {
          const double v = valp[k][i];
          switch (kinds[k])
          {
            case BinningOp::Sum:
            case BinningOp::Average:
              grid[k][off + idx] += v;
              break;
            case BinningOp::Min:
              grid[k][off + idx] = std::min(grid[k][off + idx], v);
              break;
            case BinningOp::Max:
              grid[k][off + idx] = std::max(grid[k][off + idx], v);
              break;
            default:
              break;
          }
        }
      }
    };
  };

  // per-bin pairwise tree over `np` slab copies, then a fold of slab 0
  // into the final grid. The combine order depends only on the slab
  // indices, so the merged result is deterministic for a given shard
  // plan; min/max and counts are exact, sums can differ from the serial
  // order by rounding only.
  auto treeMerge = [](double *slabs, double *final, std::size_t np,
                      std::size_t stride, std::size_t i, BinningOp kind)
  {
    for (std::size_t step = 1; step < np; step *= 2)
      for (std::size_t s = 0; s + step < np; s += 2 * step)
      {
        double &dst = slabs[s * stride + i];
        const double v = slabs[(s + step) * stride + i];
        if (kind == BinningOp::Min)
          dst = std::min(dst, v);
        else if (kind == BinningOp::Max)
          dst = std::max(dst, v);
        else
          dst += v;
      }
    if (kind == BinningOp::Min)
      final[i] = std::min(final[i], slabs[i]);
    else if (kind == BinningOp::Max)
      final[i] = std::max(final[i], slabs[i]);
    else
      final[i] += slabs[i];
  };

  std::vector<BinningOp> kinds(nRed);
  for (std::size_t k = 0; k < nRed; ++k)
    kinds[k] = redOps[k].Kind;

  // cost of one row: index math per axis plus one atomic-ish update per grid
  const double opsPerRow = 4.0 * static_cast<double>(nAxes) +
                           3.0 * static_cast<double>(nRed + 1);

  if (onDevice)
  {
    // device grids, accumulated with atomics (AtomicFraction models the
    // contention the paper identifies as binning's GPU weakness)
    auto *dCnt =
      static_cast<double *>(vcuda::MallocAsync(nBins * sizeof(double), strm));
    std::vector<double *> dGrids(nRed);
    for (std::size_t k = 0; k < nRed; ++k)
      dGrids[k] = static_cast<double *>(
        vcuda::MallocAsync(nBins * sizeof(double), strm));

    // initialize grids. The inits write disjoint arrays of equal length —
    // the FuseKey lets captured-graph replay merge them into one
    // multi-output launch.
    vcuda::LaunchBounds initLb{1.0, 0.0, "binning_init"};
    initLb.FuseKey = dCnt;
    vcuda::LaunchN(
      strm, nBins,
      [dCnt](std::size_t b, std::size_t e)
      {
        for (std::size_t i = b; i < e; ++i)
          dCnt[i] = 0.0;
      },
      initLb);
    for (std::size_t k = 0; k < nRed; ++k)
    {
      double *g = dGrids[k];
      const double iv = initValue(kinds[k]);
      vcuda::LaunchN(
        strm, nBins,
        [g, iv](std::size_t b, std::size_t e)
        {
          for (std::size_t i = b; i < e; ++i)
            g[i] = iv;
        },
        initLb);
    }

    // privatized strategy under VP_EXEC=threads: real per-shard slab
    // copies on the device so the deferred, sharded accumulation kernels
    // scale instead of contending on one grid. Serial mode keeps the
    // pre-engine behaviour exactly (no slabs, body-less merge kernel).
    vp::exec::Engine &eng = vp::exec::Engine::Get();
    const bool privStrategy =
      this->GpuStrategy_ == GpuBinningStrategy::Privatized;
    int privMax = 1;
    if (privStrategy)
      for (std::size_t b = 0; b < nBlocks; ++b)
        privMax = std::max(privMax, eng.PlanShards(rows[b], 0));
    const std::size_t np = static_cast<std::size_t>(privMax);

    double *dPrivCnt = nullptr;
    std::vector<double *> dPrivGrids(nRed, nullptr);
    if (privMax > 1)
    {
      dPrivCnt = static_cast<double *>(
        vcuda::MallocAsync(np * nBins * sizeof(double), strm));
      for (std::size_t k = 0; k < nRed; ++k)
        dPrivGrids[k] = static_cast<double *>(
          vcuda::MallocAsync(np * nBins * sizeof(double), strm));

      vcuda::LaunchBounds privLb{1.0, 0.0, "binning_init",
                                 /*Shardable=*/true};
      privLb.FuseKey = dPrivCnt;
      double *pc = dPrivCnt;
      vcuda::LaunchN(
        strm, np * nBins,
        [pc](std::size_t b, std::size_t e)
        {
          for (std::size_t i = b; i < e; ++i)
            pc[i] = 0.0;
        },
        privLb);
      for (std::size_t k = 0; k < nRed; ++k)
      {
        double *g = dPrivGrids[k];
        const double iv = initValue(kinds[k]);
        vcuda::LaunchN(
          strm, np * nBins,
          [g, iv](std::size_t b, std::size_t e)
          {
            for (std::size_t i = b; i < e; ++i)
              g[i] = iv;
          },
          privLb);
      }
    }

    bool accumulated = false;
    for (std::size_t b = 0; b < nBlocks; ++b)
    {
      if (!rows[b])
        continue;
      accumulated = true;
      if (this->GpuStrategy_ == GpuBinningStrategy::GlobalAtomics)
      {
        // the implementation the paper evaluated: every bin update is a
        // global atomic, so contention throttles the device — never
        // sharded, that contention is the point
        vcuda::LaunchN(strm, rows[b],
                       makeBody(dCnt, dGrids.data(), kinds.data(),
                                ax[b].data(), vals[b].data()),
                       vcuda::LaunchBounds{opsPerRow, 0.6, "binning_accum"});
      }
      else if (privMax > 1)
      {
        // privatized with real slabs: each shard accumulates into its
        // own copy; the tree merge below folds them into the final grids
        vcuda::LaunchN(
          strm, rows[b],
          makeBody(dPrivCnt, dPrivGrids.data(), kinds.data(), ax[b].data(),
                   vals[b].data(), /*slabStride=*/nBins,
                   /*maxSlab=*/np - 1),
          vcuda::LaunchBounds{opsPerRow, 0.05, "binning_accum_privatized",
                              /*Shardable=*/true});
      }
      else
      {
        // privatized: per-thread-block shared-memory histograms make the
        // accumulation nearly streaming (the real result is identical —
        // on physical hardware the privatization changes scheduling, not
        // arithmetic); the merge of private copies follows below
        vcuda::LaunchN(
          strm, rows[b],
          makeBody(dCnt, dGrids.data(), kinds.data(), ax[b].data(),
                   vals[b].data()),
          vcuda::LaunchBounds{opsPerRow, 0.05, "binning_accum_privatized"});
      }
    }
    if (accumulated &&
        this->GpuStrategy_ == GpuBinningStrategy::Privatized)
    {
      // merge kernel: each bin gathers its privatized copies. With real
      // slabs the body does the per-bin tree reduction; in serial mode
      // the accumulation already wrote the final grids and the kernel
      // only charges the virtual merge cost, as before.
      constexpr double PrivateCopies = 64.0;
      vp::KernelFn mergeFn;
      if (privMax > 1)
      {
        double *pc = dPrivCnt;
        double *cf = dCnt;
        double *const *pg = dPrivGrids.data();
        double *const *gf = dGrids.data();
        const BinningOp *kn = kinds.data();
        const std::size_t bins = nBins;
        mergeFn = [=](std::size_t jb, std::size_t je)
        {
          for (std::size_t j = jb; j < je; ++j)
          {
            const std::size_t g = j / bins;
            const std::size_t i = j % bins;
            if (g == 0)
              treeMerge(pc, cf, np, bins, i, BinningOp::Sum);
            else
              treeMerge(pg[g - 1], gf[g - 1], np, bins, i, kn[g - 1]);
          }
        };
      }
      vcuda::LaunchN(strm, nBins * (1 + nRed), mergeFn,
                     vcuda::LaunchBounds{PrivateCopies, 0.0,
                                         "binning_merge_privatized",
                                         /*Shardable=*/privMax > 1});
    }
    // stream-ordered readbacks on the private stream (the default stream
    // is shared with the simulation and would splice foreign work into
    // the captured graph), settled by one synchronize
    vcuda::MemcpyAsync(counts.data(), dCnt, nBins * sizeof(double), strm);
    for (std::size_t k = 0; k < nRed; ++k)
    {
      grids[k].resize(nBins);
      vcuda::MemcpyAsync(grids[k].data(), dGrids[k], nBins * sizeof(double),
                         strm);
    }
    vcuda::StreamSynchronize(strm);

    for (std::size_t k = 0; k < nRed; ++k)
    {
      vcuda::Free(dGrids[k]);
      if (dPrivGrids[k])
        vcuda::Free(dPrivGrids[k]);
    }
    if (dPrivCnt)
      vcuda::Free(dPrivCnt);
    vcuda::Free(dCnt);
  }
  else
  {
    for (std::size_t k = 0; k < nRed; ++k)
      grids[k].assign(nBins, initValue(kinds[k]));

    std::vector<double *> gPtrs(nRed);
    for (std::size_t k = 0; k < nRed; ++k)
      gPtrs[k] = grids[k].data();

    vp::exec::Engine &eng = vp::exec::Engine::Get();
    for (std::size_t b = 0; b < nBlocks; ++b)
    {
      if (!rows[b])
        continue;

      const int priv = eng.PlanShards(rows[b], 0);
      if (priv <= 1)
      {
        // VP_EXEC=serial (and blocks below the shard grain): the shared
        // grid path, bit-exact with the pre-engine implementation
        vp::Platform::Get().HostParallelFor(
          vp::KernelDesc{rows[b], opsPerRow, 0.15, "binning_accum_host"},
          makeBody(counts.data(), gPtrs.data(), kinds.data(), ax[b].data(),
                   vals[b].data()));
        continue;
      }

      // threads mode: privatize per-shard histogram copies so the
      // sharded accumulation scales, then tree-reduce them into the
      // final grids
      const std::size_t np = static_cast<std::size_t>(priv);
      std::vector<double> pCnt(np * nBins, 0.0);
      std::vector<std::vector<double>> pGrids(nRed);
      std::vector<double *> pgPtrs(nRed);
      for (std::size_t k = 0; k < nRed; ++k)
      {
        pGrids[k].assign(np * nBins, initValue(kinds[k]));
        pgPtrs[k] = pGrids[k].data();
      }

      vp::Platform::Get().HostParallelFor(
        vp::KernelDesc{rows[b], opsPerRow, 0.15,
                       "binning_accum_host_privatized", /*Shardable=*/true},
        makeBody(pCnt.data(), pgPtrs.data(), kinds.data(), ax[b].data(),
                 vals[b].data(), /*slabStride=*/nBins,
                 /*maxSlab=*/np - 1));

      double *pc = pCnt.data();
      double *const *pg = pgPtrs.data();
      double *cf = counts.data();
      double *const *gf = gPtrs.data();
      const BinningOp *kn = kinds.data();
      const std::size_t bins = nBins;
      const double mergeOps =
        static_cast<double>(np) * static_cast<double>(1 + nRed);
      vp::Platform::Get().HostParallelFor(
        vp::KernelDesc{nBins, mergeOps, 0.0, "binning_merge_host",
                       /*Shardable=*/true},
        [=](std::size_t mb, std::size_t me)
        {
          for (std::size_t i = mb; i < me; ++i)
          {
            treeMerge(pc, cf, np, bins, i, BinningOp::Sum);
            for (std::size_t k = 0; k < nRedC; ++k)
              treeMerge(pg[k], gf[k], np, bins, i, kn[k]);
          }
        });
    }
  }

  // --- cross-rank reduction -----------------------------------------------------
  if (snap.Comm)
  {
    snap.Comm->Allreduce(counts.data(), nBins, minimpi::Op::Sum);
    for (std::size_t k = 0; k < nRed; ++k)
    {
      minimpi::Op mop = minimpi::Op::Sum;
      if (kinds[k] == BinningOp::Min)
        mop = minimpi::Op::Min;
      else if (kinds[k] == BinningOp::Max)
        mop = minimpi::Op::Max;
      snap.Comm->Allreduce(grids[k].data(), nBins, mop);
    }
  }

  // finalize averages, clean empty bins of min/max
  for (std::size_t k = 0; k < nRed; ++k)
  {
    if (kinds[k] == BinningOp::Average)
    {
      for (std::size_t i = 0; i < nBins; ++i)
        grids[k][i] = counts[i] > 0.0 ? grids[k][i] / counts[i] : 0.0;
    }
    else if (kinds[k] == BinningOp::Min || kinds[k] == BinningOp::Max)
    {
      for (std::size_t i = 0; i < nBins; ++i)
        if (counts[i] == 0.0)
          grids[k][i] = 0.0;
    }
  }

  // --- package the result -----------------------------------------------------
  svtkImageData *image = svtkImageData::New();
  image->SetDimensions(static_cast<int>(this->Resolution_[0]),
                       nAxes > 1 ? static_cast<int>(this->Resolution_[1]) : 1,
                       nAxes > 2 ? static_cast<int>(this->Resolution_[2]) : 1);
  image->SetOrigin(lo[0], nAxes > 1 ? lo[1] : 0.0, nAxes > 2 ? lo[2] : 0.0);
  image->SetSpacing(
    (hi[0] - lo[0]) / static_cast<double>(this->Resolution_[0]),
    nAxes > 1 ? (hi[1] - lo[1]) / static_cast<double>(this->Resolution_[1])
              : 1.0,
    nAxes > 2 ? (hi[2] - lo[2]) / static_cast<double>(this->Resolution_[2])
              : 1.0);

  {
    svtkAOSDoubleArray *c = svtkAOSDoubleArray::New("count");
    c->GetVector() = counts;
    image->GetPointData()->AddArray(c);
    c->Delete();
  }
  for (std::size_t k = 0; k < nRed; ++k)
  {
    svtkAOSDoubleArray *g = svtkAOSDoubleArray::New(
      redOps[k].Column + "_" + BinningOpName(kinds[k]));
    g->GetVector() = grids[k];
    image->GetPointData()->AddArray(g);
    g->Delete();
  }

  const bool isRoot = !snap.Comm || snap.Comm->Rank() == 0;
  if (isRoot && this->OutputFrequency_ > 0 &&
      snap.Step % this->OutputFrequency_ == 0 && !this->OutputDir_.empty())
  {
    std::ostringstream path;
    path << this->OutputDir_ << '/' << this->OutputPrefix_ << '_'
         << snap.Step << ".vti";
    sio::WriteVTI(path.str(), image);
  }

  this->StoreResult(image); // takes the reference
}

void DataBinning::StoreResult(svtkImageData *image)
{
  std::lock_guard<std::mutex> lock(this->ResultMutex_);
  if (this->LastResult_)
    this->LastResult_->UnRegister();
  this->LastResult_ = image;
  ++this->ExecuteCount_;
}

svtkImageData *DataBinning::GetLastResult() const
{
  std::lock_guard<std::mutex> lock(this->ResultMutex_);
  if (this->LastResult_)
    this->LastResult_->Register();
  return this->LastResult_;
}

long DataBinning::GetExecuteCount() const
{
  std::lock_guard<std::mutex> lock(this->ResultMutex_);
  return this->ExecuteCount_;
}

} // namespace sensei
