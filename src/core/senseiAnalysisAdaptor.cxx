#include "senseiAnalysisAdaptor.h"

#include "vpLoadTracker.h"
#include "vpPlatform.h"

namespace sensei
{

int AnalysisAdaptor::GetPlacementDevice(int rank, int devicesPerNode,
                                        const sched::WorkHint &hint) const
{
  const int node = vp::Platform::GetThisNode();

  if (this->DeviceId_ == DEVICE_HOST)
  {
    vp::DeviceLoadTracker::Get().RecordPlacement(node, DEVICE_HOST);
    return DEVICE_HOST;
  }

  if (this->DeviceId_ >= 0 && devicesPerNode >= 1)
  {
    const int d = this->DeviceId_ % devicesPerNode;
    vp::DeviceLoadTracker::Get().RecordPlacement(node, d);
    return d;
  }

  // automatic selection by the placement policy (Eq. 1 under `static`).
  // With no usable device (n_a <= 0, or a negative n_u configured) every
  // policy returns DEVICE_HOST and warns once per process — Eq. 1 would
  // divide by zero.
  sched::PlacementRequest req;
  req.Rank = rank;
  req.DevicesPerNode = devicesPerNode;
  req.DevicesToUse = this->DevicesToUse_;
  req.DeviceStart = this->DeviceStart_;
  req.DeviceStride = this->DeviceStride_;
  req.Node = node;
  req.Hint = hint;
  return sched::GetPolicy(this->Policy_).SelectDevice(req);
}

int AnalysisAdaptor::GetPlacementDevice(DataAdaptor *data,
                                        const sched::WorkHint &hint) const
{
  const int rank =
    data && data->GetCommunicator() ? data->GetCommunicator()->Rank() : 0;
  return this->GetPlacementDevice(rank, vp::Platform::Get().NumDevices(),
                                  hint);
}

} // namespace sensei
