#include "senseiAnalysisAdaptor.h"

#include "vpPlatform.h"

namespace sensei
{

int AnalysisAdaptor::GetPlacementDevice(int rank, int devicesPerNode) const
{
  if (this->DeviceId_ == DEVICE_HOST)
    return DEVICE_HOST;

  const int na = devicesPerNode;
  if (na < 1)
    return DEVICE_HOST; // no accelerators: everything runs on the host

  if (this->DeviceId_ >= 0)
    return this->DeviceId_ % na;

  // automatic selection, Eq. 1: d = ((r mod n_u) * s + d_0) mod n_a
  const int nu = this->DevicesToUse_ > 0 ? this->DevicesToUse_ : na;
  const int s = this->DeviceStride_ != 0 ? this->DeviceStride_ : 1;
  const int d0 = this->DeviceStart_;
  const int r = rank >= 0 ? rank : 0;

  int d = ((r % nu) * s + d0) % na;
  if (d < 0)
    d += na;
  return d;
}

int AnalysisAdaptor::GetPlacementDevice(DataAdaptor *data) const
{
  const int rank =
    data && data->GetCommunicator() ? data->GetCommunicator()->Rank() : 0;
  return this->GetPlacementDevice(rank, vp::Platform::Get().NumDevices());
}

} // namespace sensei
