#ifndef senseiHistogram_h
#define senseiHistogram_h

/// @file senseiHistogram.h
/// A 1-D histogram analysis back end. Functionally a special case of data
/// binning (one coordinate axis, count reduction) but implemented
/// separately, as in SENSEI proper, and used in tests to verify that the
/// placement and execution-method extensions defined in the
/// AnalysisAdaptor base class are available to every back end.

#include "senseiAnalysisAdaptor.h"
#include "senseiAsyncRunner.h"
#include "svtkHAMRDataArray.h"

#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace sensei
{

class Histogram : public AnalysisAdaptor
{
public:
  static Histogram *New() { return new Histogram; }

  const char *GetClassName() const override { return "sensei::Histogram"; }

  /// Mesh (table) and column to histogram.
  void SetMeshName(const std::string &m) { this->MeshName_ = m; }
  void SetColumn(const std::string &c) { this->Column_ = c; }

  /// Number of bins (default 64).
  void SetBins(long n) { this->Bins_ = n > 0 ? n : 64; }
  long GetBins() const { return this->Bins_; }

  /// Fix the range instead of computing it from the data.
  void SetRange(double lo, double hi)
  {
    this->Lo_ = lo;
    this->Hi_ = hi;
    this->AutoRange_ = false;
  }

  /// Run asynchronous executions on real std::threads instead of the
  /// default deterministic virtual-time accounting.
  void SetUseRealThreads(bool on) { this->Runner_.SetUseRealThreads(on); }

  bool Execute(DataAdaptor *data) override;
  void DrainAsync() override { this->Runner_.Drain(); }
  int Finalize() override;

  /// The most recent histogram: bin counts plus the range used. Returns
  /// false before the first completed execution.
  bool GetLastResult(std::vector<double> &counts, double &lo,
                     double &hi) const;

protected:
  Histogram() = default;
  ~Histogram() override { this->Runner_.Drain(); }

private:
  void Run(const svtkSmartPtr<svtkHAMRDoubleArray> &col,
           minimpi::Communicator *comm, int device);

  std::string MeshName_ = "table";
  std::string Column_;
  long Bins_ = 64;
  bool AutoRange_ = true;
  double Lo_ = 0.0, Hi_ = 1.0;

  AsyncRunner Runner_;
  std::optional<minimpi::Communicator> AsyncComm_;

  mutable std::mutex ResultMutex_;
  std::vector<double> LastCounts_;
  double LastLo_ = 0.0, LastHi_ = 0.0;
  bool HaveResult_ = false;
};

} // namespace sensei

#endif
