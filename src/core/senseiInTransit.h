#ifndef senseiInTransit_h
#define senseiInTransit_h

/// @file senseiInTransit.h
/// In transit data movement: M-to-N redistribution of simulation data to
/// a dedicated group of endpoint ranks that run the analyses. SENSEI's
/// in transit mode (the paper cites its HDF5 transport [5] and the
/// M-to-N redistribution work [13]) trades on-node interference for
/// off-node data movement: the simulation serializes its mesh, ships it
/// to an assigned endpoint, and continues; endpoints assemble the blocks
/// they receive and drive an AnalysisAdaptor chain against the union,
/// reducing across the endpoint group only.
///
/// Usage: split the world into N senders and M endpoints (world rank >=
/// N is an endpoint by convention of InTransitLayout), then on sender
/// ranks drive InTransitSender per step and Close() at the end; on
/// endpoint ranks call InTransitEndpoint::Run once — it loops until all
/// of its senders close.

#include "cmpCodec.h"
#include "minimpi.h"
#include "senseiAnalysisAdaptor.h"
#include "senseiDataAdaptor.h"

#include <string>
#include <vector>

namespace sensei
{

/// How world ranks divide into senders (simulation) and endpoints.
struct InTransitLayout
{
  int WorldSize = 0;
  int Endpoints = 0;

  InTransitLayout(int worldSize, int endpoints)
    : WorldSize(worldSize), Endpoints(endpoints)
  {
    if (endpoints < 1 || endpoints >= worldSize)
      throw std::invalid_argument(
        "InTransitLayout: need 1 <= endpoints < worldSize");
  }

  int Senders() const { return this->WorldSize - this->Endpoints; }

  /// True when `worldRank` is an endpoint (the last `Endpoints` ranks).
  bool IsEndpoint(int worldRank) const
  {
    return worldRank >= this->Senders();
  }

  /// The endpoint (world rank) a sender ships to: round robin over the
  /// endpoint group — the M-to-N map.
  int EndpointOf(int senderWorldRank) const
  {
    return this->Senders() + senderWorldRank % this->Endpoints;
  }

  /// The sender world ranks assigned to an endpoint.
  std::vector<int> SendersOf(int endpointWorldRank) const
  {
    std::vector<int> out;
    const int e = endpointWorldRank - this->Senders();
    for (int s = 0; s < this->Senders(); ++s)
      if (s % this->Endpoints == e)
        out.push_back(s);
    return out;
  }
};

/// Simulation-side transport: serialize and ship the mesh each step.
class InTransitSender
{
public:
  /// `world` must outlive the sender; the calling rank must be a sender.
  /// Compression defaults from the process-wide cmp::GetConfig(): when
  /// enabled there, shipped tables travel in the compressed wire format.
  InTransitSender(minimpi::Communicator *world, const InTransitLayout &layout,
                  std::string meshName = "table");

  /// Request a specific codec for shipped tables (negotiated per column
  /// dtype). Passing CodecId::None disables compression. Overrides the
  /// process-wide default for this sender.
  void SetCompression(const cmp::Params &params);

  /// Serialize the named mesh from `data` and ship it to the assigned
  /// endpoint, tagged with the adaptor's time step. Returns false when
  /// the mesh is unavailable.
  bool Send(DataAdaptor *data);

  /// Tell the endpoint this sender is done (collective over nothing —
  /// call once per sender).
  void Close();

private:
  minimpi::Communicator *World_;
  InTransitLayout Layout_;
  std::string MeshName_;
  cmp::Params Compress_;
  bool UseCompression_ = false;
  bool Closed_ = false;
};

/// Endpoint-side transport: receive, assemble, analyze.
class InTransitEndpoint
{
public:
  /// `world` and `endpointComm` (the Split of the endpoint group) must
  /// outlive the endpoint; the calling rank must be an endpoint.
  InTransitEndpoint(minimpi::Communicator *world,
                    minimpi::Communicator *endpointComm,
                    const InTransitLayout &layout,
                    std::string meshName = "table");

  /// Receive step after step until every assigned sender closes, driving
  /// `analysis` once per assembled step with a TableAdaptor whose
  /// communicator is the endpoint group. Returns the number of steps
  /// processed. A reference is taken on the analysis for the call.
  ///
  /// A partial frame (short read), a corrupt frame, or a frame missing
  /// the receive deadline is a clean per-frame failure: the frame is
  /// skipped, the session keeps running, and the failure is counted in
  /// FrameErrors(). A sender failing MaxFrameErrors consecutive frames
  /// is declared dead and removed from the round (DeadSenders()) so the
  /// remaining senders keep flowing.
  long Run(AnalysisAdaptor *analysis);

  /// Bound the real time Run waits for any one frame. Negative (the
  /// default) blocks forever — the original, bit-exact behavior.
  void SetRecvTimeout(double seconds) { this->RecvTimeout_ = seconds; }

  /// Consecutive per-frame failures before a sender is declared dead
  /// (default 3; minimum 1).
  void SetMaxFrameErrors(long strikes);

  /// Per-frame failures survived across Run calls.
  long FrameErrors() const { return this->FrameErrors_; }

  /// Senders dropped after striking out.
  long DeadSenders() const { return this->DeadSenders_; }

private:
  minimpi::Communicator *World_;
  minimpi::Communicator *EndpointComm_;
  InTransitLayout Layout_;
  std::string MeshName_;
  double RecvTimeout_ = -1.0;
  long MaxFrameErrors_ = 3;
  long FrameErrors_ = 0;
  long DeadSenders_ = 0;
};

} // namespace sensei

#endif
