#include "senseiInTransit.h"

#include "senseiSerialization.h"
#include "vpPlatform.h"

#include <cstring>
#include <stdexcept>

namespace sensei
{

namespace
{
constexpr int TagTransport = 7000;
constexpr std::uint8_t FrameData = 0;
constexpr std::uint8_t FrameClose = 1;
} // namespace

// ---------------------------------------------------------------------------
InTransitSender::InTransitSender(minimpi::Communicator *world,
                                 const InTransitLayout &layout,
                                 std::string meshName)
  : World_(world), Layout_(layout), MeshName_(std::move(meshName))
{
  if (!world)
    throw std::invalid_argument("InTransitSender: null communicator");
  if (this->Layout_.IsEndpoint(world->Rank()))
    throw std::logic_error("InTransitSender: this rank is an endpoint");
}

bool InTransitSender::Send(DataAdaptor *data)
{
  if (this->Closed_)
    throw std::logic_error("InTransitSender::Send after Close");

  svtkDataObject *obj = data->GetMesh(this->MeshName_);
  auto *table = dynamic_cast<svtkTable *>(obj);
  if (!table)
  {
    if (obj)
      obj->UnRegister();
    return false;
  }

  // frame: kind byte, step, serialized table
  std::vector<std::uint8_t> frame;
  frame.push_back(FrameData);
  const std::uint64_t step = static_cast<std::uint64_t>(data->GetDataTimeStep());
  const std::size_t at = frame.size();
  frame.resize(at + sizeof(step));
  std::memcpy(frame.data() + at, &step, sizeof(step));

  const std::vector<std::uint8_t> payload = SerializeTable(table);
  frame.insert(frame.end(), payload.begin(), payload.end());
  table->UnRegister();

  // serialization is host memory-bandwidth work the sender pays for
  vp::Platform &plat = vp::Platform::Get();
  plat.HostCompute(static_cast<double>(frame.size()) /
                   plat.Config().Cost.H2HBandwidth);

  this->World_->Send(this->Layout_.EndpointOf(this->World_->Rank()),
                     TagTransport, frame.data(), frame.size());
  return true;
}

void InTransitSender::Close()
{
  if (this->Closed_)
    return;
  const std::uint8_t frame[1] = {FrameClose};
  this->World_->Send(this->Layout_.EndpointOf(this->World_->Rank()),
                     TagTransport, frame, sizeof(frame));
  this->Closed_ = true;
}

// ---------------------------------------------------------------------------
InTransitEndpoint::InTransitEndpoint(minimpi::Communicator *world,
                                     minimpi::Communicator *endpointComm,
                                     const InTransitLayout &layout,
                                     std::string meshName)
  : World_(world), EndpointComm_(endpointComm), Layout_(layout),
    MeshName_(std::move(meshName))
{
  if (!world || !endpointComm)
    throw std::invalid_argument("InTransitEndpoint: null communicator");
  if (!this->Layout_.IsEndpoint(world->Rank()))
    throw std::logic_error("InTransitEndpoint: this rank is a sender");
}

long InTransitEndpoint::Run(AnalysisAdaptor *analysis)
{
  if (!analysis)
    throw std::invalid_argument("InTransitEndpoint::Run: null analysis");
  analysis->Register();

  std::vector<int> open = this->Layout_.SendersOf(this->World_->Rank());
  long steps = 0;

  while (!open.empty())
  {
    // one round: a frame from every still-open sender
    std::vector<svtkTable *> blocks;
    std::uint64_t step = 0;
    std::vector<int> stillOpen;

    for (int sender : open)
    {
      const std::vector<std::uint8_t> frame =
        this->World_->Recv(sender, TagTransport);
      if (frame.empty() || frame[0] == FrameClose)
        continue; // sender is done

      if (frame.size() < 1 + sizeof(std::uint64_t))
        throw std::runtime_error("InTransitEndpoint: malformed frame");
      std::memcpy(&step, frame.data() + 1, sizeof(step));
      blocks.push_back(
        DeserializeTable(frame.data() + 1 + sizeof(std::uint64_t),
                         frame.size() - 1 - sizeof(std::uint64_t)));
      stillOpen.push_back(sender);
    }
    open.swap(stillOpen);

    if (blocks.empty())
      break; // everything closed in this round

    svtkTable *assembled = ConcatenateTables(blocks);
    for (svtkTable *b : blocks)
      b->UnRegister();

    TableAdaptor *adaptor = TableAdaptor::New(this->MeshName_);
    adaptor->SetTable(assembled);
    assembled->UnRegister();
    adaptor->SetCommunicator(this->EndpointComm_);
    adaptor->SetDataTimeStep(static_cast<long>(step));

    analysis->Execute(adaptor);
    adaptor->ReleaseData();
    adaptor->Delete();
    ++steps;
  }

  analysis->Finalize();
  analysis->UnRegister();
  return steps;
}

} // namespace sensei
