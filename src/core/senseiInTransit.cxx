#include "senseiInTransit.h"

#include "senseiSerialization.h"
#include "vpPlatform.h"

#include <cstring>
#include <map>
#include <stdexcept>

namespace sensei
{

namespace
{
constexpr int TagTransport = 7000;
constexpr std::uint8_t FrameData = 0;
constexpr std::uint8_t FrameClose = 1;
constexpr std::uint8_t FrameDataCompressed = 2;
} // namespace

// ---------------------------------------------------------------------------
InTransitSender::InTransitSender(minimpi::Communicator *world,
                                 const InTransitLayout &layout,
                                 std::string meshName)
  : World_(world), Layout_(layout), MeshName_(std::move(meshName))
{
  if (!world)
    throw std::invalid_argument("InTransitSender: null communicator");
  if (this->Layout_.IsEndpoint(world->Rank()))
    throw std::logic_error("InTransitSender: this rank is an endpoint");

  const cmp::Config &cfg = cmp::GetConfig();
  this->UseCompression_ = cfg.Enabled;
  this->Compress_ = cfg.Default;
}

void InTransitSender::SetCompression(const cmp::Params &params)
{
  this->Compress_ = params;
  this->UseCompression_ = params.Codec != cmp::CodecId::None;
}

bool InTransitSender::Send(DataAdaptor *data)
{
  if (this->Closed_)
    throw std::logic_error("InTransitSender::Send after Close");

  svtkDataObject *obj = data->GetMesh(this->MeshName_);
  auto *table = dynamic_cast<svtkTable *>(obj);
  if (!table)
  {
    if (obj)
      obj->UnRegister();
    return false;
  }

  // frame: kind byte, step (u64 LE), serialized table
  std::vector<std::uint8_t> frame;
  frame.push_back(this->UseCompression_ ? FrameDataCompressed : FrameData);
  cmp::PutLE64(frame, static_cast<std::uint64_t>(data->GetDataTimeStep()));

  const std::vector<std::uint8_t> payload =
    this->UseCompression_ ? SerializeTableCompressed(table, this->Compress_)
                          : SerializeTable(table);
  frame.insert(frame.end(), payload.begin(), payload.end());
  table->UnRegister();

  // serialization is host memory-bandwidth work the sender pays for
  vp::Platform &plat = vp::Platform::Get();
  plat.HostCompute(static_cast<double>(frame.size()) /
                   plat.Config().Cost.H2HBandwidth);

  this->World_->SendChunked(this->Layout_.EndpointOf(this->World_->Rank()),
                            TagTransport, frame.data(), frame.size());
  return true;
}

void InTransitSender::Close()
{
  if (this->Closed_)
    return;
  const std::uint8_t frame[1] = {FrameClose};
  this->World_->SendChunked(this->Layout_.EndpointOf(this->World_->Rank()),
                            TagTransport, frame, sizeof(frame));
  this->Closed_ = true;
}

// ---------------------------------------------------------------------------
InTransitEndpoint::InTransitEndpoint(minimpi::Communicator *world,
                                     minimpi::Communicator *endpointComm,
                                     const InTransitLayout &layout,
                                     std::string meshName)
  : World_(world), EndpointComm_(endpointComm), Layout_(layout),
    MeshName_(std::move(meshName))
{
  if (!world || !endpointComm)
    throw std::invalid_argument("InTransitEndpoint: null communicator");
  if (!this->Layout_.IsEndpoint(world->Rank()))
    throw std::logic_error("InTransitEndpoint: this rank is a sender");
}

void InTransitEndpoint::SetMaxFrameErrors(long strikes)
{
  if (strikes < 1)
    throw std::invalid_argument(
      "InTransitEndpoint::SetMaxFrameErrors: strikes must be >= 1");
  this->MaxFrameErrors_ = strikes;
}

long InTransitEndpoint::Run(AnalysisAdaptor *analysis)
{
  if (!analysis)
    throw std::invalid_argument("InTransitEndpoint::Run: null analysis");
  analysis->Register();

  std::vector<int> open = this->Layout_.SendersOf(this->World_->Rank());
  std::map<int, long> strikes; // consecutive per-sender frame failures
  long steps = 0;

  while (!open.empty())
  {
    // one round: a frame from every still-open sender
    std::vector<svtkTable *> blocks;
    std::uint64_t step = 0;
    std::vector<int> stillOpen;

    for (int sender : open)
    {
      // receive and decode under a per-frame failure contract: a short
      // read, a corrupt frame, or a missed deadline skips this frame
      // and strikes the sender; the session keeps running
      std::vector<std::uint8_t> frame;
      bool good = true;
      try
      {
        if (this->RecvTimeout_ < 0.0)
          frame = this->World_->RecvChunked(sender, TagTransport);
        else
          good = this->World_->RecvChunked(sender, TagTransport, frame,
                                           this->RecvTimeout_);
      }
      catch (const std::runtime_error &)
      {
        good = false; // short read / malformed chunk stream
      }

      if (good && (frame.empty() || frame[0] == FrameClose))
        continue; // sender is done

      if (good)
      {
        try
        {
          if (frame.size() < 1 + sizeof(std::uint64_t) ||
              (frame[0] != FrameData && frame[0] != FrameDataCompressed))
            throw std::runtime_error("InTransitEndpoint: malformed frame");
          step = cmp::LoadLE64(frame.data() + 1);
          // dispatch on the payload's own magic: compressed senders and
          // legacy senders can share an endpoint
          blocks.push_back(
            DeserializeTableAuto(frame.data() + 1 + sizeof(std::uint64_t),
                                 frame.size() - 1 - sizeof(std::uint64_t)));
        }
        catch (const std::runtime_error &)
        {
          good = false; // corrupt frame or payload
        }
      }

      if (!good)
      {
        ++this->FrameErrors_;
        if (++strikes[sender] >= this->MaxFrameErrors_)
        {
          ++this->DeadSenders_; // struck out: stop waiting on this sender
          continue;
        }
        stillOpen.push_back(sender);
        continue;
      }

      strikes[sender] = 0;
      stillOpen.push_back(sender);
    }
    open.swap(stillOpen);

    if (blocks.empty())
    {
      if (open.empty())
        break; // everything closed (or struck out) in this round
      continue; // a round of failures with live senders: keep receiving
    }

    svtkTable *assembled = ConcatenateTables(blocks);
    for (svtkTable *b : blocks)
      b->UnRegister();

    TableAdaptor *adaptor = TableAdaptor::New(this->MeshName_);
    adaptor->SetTable(assembled);
    assembled->UnRegister();
    adaptor->SetCommunicator(this->EndpointComm_);
    adaptor->SetDataTimeStep(static_cast<long>(step));

    analysis->Execute(adaptor);
    adaptor->ReleaseData();
    adaptor->Delete();
    ++steps;
  }

  analysis->Finalize();
  analysis->UnRegister();
  return steps;
}

} // namespace sensei
