#include "senseiAutocorrelation.h"

#include "svtkArrayUtils.h"
#include "vcuda.h"

#include <cmath>

namespace sensei
{

bool Autocorrelation::Execute(DataAdaptor *data)
{
  if (!data || this->Column_.empty())
    return false;

  svtkDataObject *obj = data->GetMesh(this->MeshName_);
  auto *table = dynamic_cast<svtkTable *>(obj);
  if (!table)
  {
    if (obj)
      obj->UnRegister();
    return false;
  }

  svtkDataArray *raw = table->GetColumnByName(this->Column_);
  if (!raw)
  {
    table->UnRegister();
    return false;
  }

  // snapshot the column: always a deep copy — the window must outlive the
  // simulation's buffers
  svtkHAMRDoubleArray *h = svtkAsHAMRDouble(raw);
  this->History_.push_back(
    svtkSmartPtr<svtkHAMRDoubleArray>::Take(h->NewDeepCopy()));
  h->UnRegister();
  table->UnRegister();

  while (static_cast<long>(this->History_.size()) > this->Window_)
    this->History_.pop_front();

  std::vector<svtkSmartPtr<svtkHAMRDoubleArray>> window(
    this->History_.begin(), this->History_.end());

  // one dot product per lag over the newest column
  const std::size_t n = static_cast<std::size_t>(
    window.back()->GetNumberOfTuples());
  sched::WorkHint hint;
  hint.Elements = n;
  hint.OpsPerElement = 2.0 * static_cast<double>(window.size());
  hint.MoveBytes = window.size() * n * sizeof(double);
  const int device = this->GetPlacementDevice(data, hint);

  if (this->GetAsynchronous())
  {
    if (!this->AsyncComm_ && data->GetCommunicator())
      this->AsyncComm_.emplace(data->GetCommunicator()->Dup());
    minimpi::Communicator *comm =
      this->AsyncComm_ ? &*this->AsyncComm_ : nullptr;
    // the closure holds the whole window of deep copies alive
    const std::size_t bytes = hint.MoveBytes;
    this->Runner_.Submit([this, window = std::move(window), comm, device]()
                         { this->Run(window, comm, device); },
                         bytes);
    return true;
  }

  this->Run(window, data->GetCommunicator(), device);
  return true;
}

int Autocorrelation::Finalize()
{
  this->Runner_.Drain();
  return 0;
}

void Autocorrelation::Run(
  std::vector<svtkSmartPtr<svtkHAMRDoubleArray>> window,
  minimpi::Communicator *comm, int device)
{
  const std::size_t lags = window.size();
  std::vector<double> sums(lags, 0.0);

  const svtkHAMRDoubleArray *newest = window.back().Get();
  const std::size_t n = newest->GetNumberOfTuples();

  auto newestView = device >= 0 ? newest->GetDeviceAccessible(device)
                                : newest->GetHostAccessible();
  newest->Synchronize();
  const double *vT = newestView.get();

  for (std::size_t tau = 0; tau < lags; ++tau)
  {
    const svtkHAMRDoubleArray *past = window[lags - 1 - tau].Get();
    auto pastView = device >= 0 ? past->GetDeviceAccessible(device)
                                : past->GetHostAccessible();
    past->Synchronize();
    const double *vP = pastView.get();

    double acc = 0.0;
    const auto body = [vT, vP, &acc](std::size_t b, std::size_t e)
    {
      for (std::size_t i = b; i < e; ++i)
        acc += vT[i] * vP[i];
    };

    if (device >= 0)
    {
      vcuda::SetDevice(device);
      vcuda::stream_t strm = vcuda::StreamCreate();
      vcuda::LaunchN(strm, n, body,
                     vcuda::LaunchBounds{2.0, 0.0, "autocorr_dot"});
      vcuda::StreamSynchronize(strm);
    }
    else
    {
      vp::Platform::Get().HostParallelFor(
        vp::KernelDesc{n, 2.0, 0.0, "autocorr_dot_host"}, body);
    }
    sums[tau] = acc;
  }

  // combine across ranks: global sum of dot products and element count
  double count = static_cast<double>(n);
  if (comm)
  {
    comm->Allreduce(sums.data(), sums.size(), minimpi::Op::Sum);
    comm->Allreduce(&count, 1, minimpi::Op::Sum);
  }

  for (double &s : sums)
    s = count > 0 ? s / count : 0.0;

  std::lock_guard<std::mutex> lock(this->ResultMutex_);
  this->Last_ = std::move(sums);
}

std::vector<double> Autocorrelation::GetLastResult() const
{
  std::lock_guard<std::mutex> lock(this->ResultMutex_);
  return this->Last_;
}

} // namespace sensei
