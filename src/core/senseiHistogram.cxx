#include "senseiHistogram.h"

#include "svtkArrayUtils.h"
#include "vcuda.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sensei
{

bool Histogram::Execute(DataAdaptor *data)
{
  if (!data || this->Column_.empty())
    return false;

  svtkDataObject *obj = data->GetMesh(this->MeshName_);
  auto *table = dynamic_cast<svtkTable *>(obj);
  if (!table)
  {
    if (obj)
      obj->UnRegister();
    return false;
  }

  svtkDataArray *raw = table->GetColumnByName(this->Column_);
  if (!raw)
  {
    table->UnRegister();
    return false;
  }

  svtkHAMRDoubleArray *col = svtkAsHAMRDouble(raw); // +1 ref

  // describe the two passes (range scan + accumulation) for the
  // cost-model placement policy
  const std::size_t n = static_cast<std::size_t>(col->GetNumberOfTuples());
  const std::size_t bytes = n * sizeof(double);
  sched::WorkHint hint;
  hint.Elements = n;
  hint.OpsPerElement = 7.0; // 2 (range) + 5 (accumulate), as launched below
  hint.AtomicFraction = 0.6;
  hint.MoveBytes = bytes;
  const int device = this->GetPlacementDevice(data, hint);

  if (this->GetAsynchronous())
  {
    if (!this->AsyncComm_ && data->GetCommunicator())
      this->AsyncComm_.emplace(data->GetCommunicator()->Dup());

    // deep copy the relevant data, then run concurrently
    auto snap =
      svtkSmartPtr<svtkHAMRDoubleArray>::Take(col->NewDeepCopy());
    col->UnRegister();
    table->UnRegister();

    minimpi::Communicator *comm =
      this->AsyncComm_ ? &*this->AsyncComm_ : nullptr;
    this->Runner_.Submit([this, snap, comm, device]()
                         { this->Run(snap, comm, device); },
                         bytes);
    return true;
  }

  auto holder = svtkSmartPtr<svtkHAMRDoubleArray>::Take(col);
  this->Run(holder, data->GetCommunicator(), device);
  table->UnRegister();
  return true;
}

int Histogram::Finalize()
{
  this->Runner_.Drain();
  return 0;
}

void Histogram::Run(const svtkSmartPtr<svtkHAMRDoubleArray> &col,
                    minimpi::Communicator *comm, int device)
{
  const std::size_t n = col->GetNumberOfTuples();
  const std::size_t bins = static_cast<std::size_t>(this->Bins_);

  double lo = this->Lo_;
  double hi = this->Hi_;
  if (this->AutoRange_)
  {
    lo = std::numeric_limits<double>::infinity();
    hi = -lo;
    // range scan at the placement target via the agnostic access API
    auto view = device >= 0 ? col->GetDeviceAccessible(device)
                            : col->GetHostAccessible();
    const double *p = view.get();
    col->Synchronize();
    const vp::KernelDesc desc{n, 2.0, 0.0, "histogram_range"};
    const auto body = [p, &lo, &hi](std::size_t b, std::size_t e)
    {
      for (std::size_t i = b; i < e; ++i)
      {
        lo = std::min(lo, p[i]);
        hi = std::max(hi, p[i]);
      }
    };
    if (device >= 0)
    {
      vcuda::SetDevice(device);
      vcuda::stream_t strm = vcuda::StreamCreate();
      vcuda::LaunchN(strm, n, body, vcuda::LaunchBounds{2.0, 0.0, desc.Name});
      vcuda::StreamSynchronize(strm);
    }
    else
    {
      vp::Platform::Get().HostParallelFor(desc, body);
    }

    if (comm)
    {
      comm->Allreduce(&lo, 1, minimpi::Op::Min);
      comm->Allreduce(&hi, 1, minimpi::Op::Max);
    }
    if (!std::isfinite(lo) || !std::isfinite(hi))
    {
      lo = 0.0;
      hi = 1.0;
    }
    if (!(hi > lo))
      hi = lo + 1.0;
  }

  std::vector<double> counts(bins, 0.0);
  {
    auto view = device >= 0 ? col->GetDeviceAccessible(device)
                            : col->GetHostAccessible();
    const double *p = view.get();
    col->Synchronize();

    const double scale = static_cast<double>(bins) / (hi - lo);
    double *c = counts.data();
    const auto body = [p, c, lo, scale, bins](std::size_t b, std::size_t e)
    {
      for (std::size_t i = b; i < e; ++i)
      {
        long bi = static_cast<long>((p[i] - lo) * scale);
        bi = std::clamp(bi, 0L, static_cast<long>(bins) - 1);
        c[static_cast<std::size_t>(bi)] += 1.0;
      }
    };

    if (device >= 0)
    {
      // accumulate into a device grid with atomics, then copy back
      vcuda::SetDevice(device);
      vcuda::stream_t strm = vcuda::StreamCreate();
      auto *dc =
        static_cast<double *>(vcuda::MallocAsync(bins * sizeof(double), strm));
      vcuda::LaunchN(
        strm, bins,
        [dc](std::size_t b, std::size_t e)
        {
          for (std::size_t i = b; i < e; ++i)
            dc[i] = 0.0;
        },
        vcuda::LaunchBounds{1.0, 0.0, "histogram_init"});
      const double scaleD = scale;
      vcuda::LaunchN(
        strm, n,
        [p, dc, lo, scaleD, bins](std::size_t b, std::size_t e)
        {
          for (std::size_t i = b; i < e; ++i)
          {
            long bi = static_cast<long>((p[i] - lo) * scaleD);
            bi = std::clamp(bi, 0L, static_cast<long>(bins) - 1);
            dc[static_cast<std::size_t>(bi)] += 1.0;
          }
        },
        vcuda::LaunchBounds{5.0, 0.6, "histogram_accum"});
      vcuda::StreamSynchronize(strm);
      vcuda::Memcpy(counts.data(), dc, bins * sizeof(double));
      vcuda::Free(dc);
    }
    else
    {
      vp::Platform::Get().HostParallelFor(
        vp::KernelDesc{n, 5.0, 0.15, "histogram_accum_host"}, body);
    }
  }

  if (comm)
    comm->Allreduce(counts.data(), bins, minimpi::Op::Sum);

  std::lock_guard<std::mutex> lock(this->ResultMutex_);
  this->LastCounts_ = std::move(counts);
  this->LastLo_ = lo;
  this->LastHi_ = hi;
  this->HaveResult_ = true;
}

bool Histogram::GetLastResult(std::vector<double> &counts, double &lo,
                              double &hi) const
{
  std::lock_guard<std::mutex> lock(this->ResultMutex_);
  if (!this->HaveResult_)
    return false;
  counts = this->LastCounts_;
  lo = this->LastLo_;
  hi = this->LastHi_;
  return true;
}

} // namespace sensei
