#ifndef senseiAnalysisAdaptor_h
#define senseiAnalysisAdaptor_h

/// @file senseiAnalysisAdaptor.h
/// Base class for SENSEI analysis back ends, carrying the execution-model
/// extensions the paper adds for heterogeneous architectures (Section 3):
///
///  * an execution method — `lockstep`, where simulation and analysis take
///    turns, or `asynchronous`, where the analysis deep-copies the data it
///    needs and runs in a C++ thread concurrently with the simulation;
///  * placement control over which accelerator (or the host) the analysis
///    runs on — manual explicit device selection or automatic selection by
///
///        d = ((r mod n_u) * s + d_0) mod n_a            (Eq. 1)
///
///    where r is the process's MPI rank, n_u the number of devices to use
///    per node, s the stride, d_0 the offset, and n_a the number of
///    devices on the node. r and n_a come from system queries; n_u, s,
///    d_0 are user controls defaulting to n_u = n_a, s = 1, d_0 = 0.
///
/// These controls are defined here, in the base class, and are therefore
/// available to all back ends; ConfigurableAnalysis exposes them in the
/// run time XML configuration.
///
/// Automatic placement is delegated to a pluggable sched::PlacementPolicy:
/// `static` is Eq. 1 verbatim (the default — bit-for-bit the original
/// rule), `least-loaded` and `cost-model` consult the virtual platform's
/// per-device load before deciding (see schedPolicy.h). Back ends may
/// describe the work being placed with a sched::WorkHint so the
/// cost-model policy can price it.

#include "cmpCodec.h"
#include "layoutMapping.h"
#include "schedPolicy.h"
#include "senseiDataAdaptor.h"
#include "svtkObjectBase.h"

namespace sensei
{

/// How an analysis runs relative to the simulation.
enum class ExecutionMethod : int
{
  Lockstep = 0, ///< simulation waits for the analysis each step
  Asynchronous  ///< analysis runs in a thread, concurrently
};

/// Base class for analysis back ends.
class AnalysisAdaptor : public svtkObjectBase
{
public:
  const char *GetClassName() const override
  {
    return "sensei::AnalysisAdaptor";
  }

  /// Sentinels accepted by SetDeviceId.
  static constexpr int DEVICE_AUTO = -2; ///< select by Eq. 1
  static constexpr int DEVICE_HOST = -1; ///< run on the host CPU

  /// Process the current simulation state. Returns false on failure.
  /// In asynchronous mode implementations deep copy what they need,
  /// launch their thread, and return immediately.
  virtual bool Execute(DataAdaptor *data) = 0;

  /// Complete outstanding asynchronous work and release resources.
  /// Returns zero on success.
  virtual int Finalize() { return 0; }

  /// Wait for in-flight asynchronous work without releasing anything.
  /// ConfigurableAnalysis calls this on every analysis before finalizing
  /// any of them, so no back end's Finalize (or the profiler shutdown
  /// that follows) can run while a sibling still has a task in flight.
  virtual void DrainAsync() {}

  // --- execution method ------------------------------------------------------

  void SetExecutionMethod(ExecutionMethod m) { this->Method_ = m; }
  ExecutionMethod GetExecutionMethod() const { return this->Method_; }

  /// Convenience: toggle asynchronous execution.
  void SetAsynchronous(bool on)
  {
    this->Method_ = on ? ExecutionMethod::Asynchronous
                       : ExecutionMethod::Lockstep;
  }
  bool GetAsynchronous() const
  {
    return this->Method_ == ExecutionMethod::Asynchronous;
  }

  // --- placement ----------------------------------------------------------------

  /// Explicit device id, DEVICE_HOST, or DEVICE_AUTO (the default).
  void SetDeviceId(int id) { this->DeviceId_ = id; }
  int GetDeviceId() const { return this->DeviceId_; }

  /// n_u in Eq. 1: devices to use per node (0 = all available).
  void SetDevicesToUse(int n) { this->DevicesToUse_ = n; }
  int GetDevicesToUse() const { return this->DevicesToUse_; }

  /// d_0 in Eq. 1: first device to use.
  void SetDeviceStart(int d0) { this->DeviceStart_ = d0; }
  int GetDeviceStart() const { return this->DeviceStart_; }

  /// s in Eq. 1: stride between devices.
  void SetDeviceStride(int s) { this->DeviceStride_ = s; }
  int GetDeviceStride() const { return this->DeviceStride_; }

  /// The policy used for automatic placement (DEVICE_AUTO): `static`
  /// (Eq. 1, the default), `least-loaded`, or `cost-model`.
  void SetPlacementPolicy(sched::PolicyKind k) { this->Policy_ = k; }
  sched::PolicyKind GetPlacementPolicy() const { return this->Policy_; }

  /// Resolve the device this analysis runs on for MPI rank `rank`, given
  /// `devicesPerNode` (n_a) devices on the node: the explicit device when
  /// one was set, DEVICE_HOST for host placement, otherwise the placement
  /// policy (Eq. 1 under `static`). When no device is usable (n_a <= 0,
  /// or a negative devices_to_use was configured) returns DEVICE_HOST and
  /// warns once per process instead of dividing by zero in Eq. 1. The
  /// optional `hint` describes the work so the cost-model policy can
  /// price it. Returns a device id in [0, n_a) or DEVICE_HOST.
  int GetPlacementDevice(int rank, int devicesPerNode,
                         const sched::WorkHint &hint = {}) const;

  /// Resolve against the live platform (n_a from a system query) using the
  /// data adaptor's communicator for the rank (rank 0 in serial use).
  int GetPlacementDevice(DataAdaptor *data,
                         const sched::WorkHint &hint = {}) const;

  // --- compression ------------------------------------------------------------

  /// Request a codec for this back end's bulk payloads (in transit
  /// frames, binary snapshots, async write buffers). Overrides the
  /// process-wide cmp::Configure default; CodecId::None forces
  /// uncompressed payloads even when the global default is on.
  void SetCompression(const cmp::Params &p)
  {
    this->Compress_ = p;
    this->HaveCompress_ = true;
  }
  bool GetCompressionSet() const { return this->HaveCompress_; }

  /// The codec this back end should use: the per-analysis override when
  /// one was set, else the process-wide default when compression is
  /// enabled globally, else CodecId::None.
  cmp::Params GetEffectiveCompression() const
  {
    if (this->HaveCompress_)
      return this->Compress_;
    const cmp::Config &cfg = cmp::GetConfig();
    if (cfg.Enabled)
      return cfg.Default;
    cmp::Params off;
    off.Codec = cmp::CodecId::None;
    return off;
  }

  // --- array layout -----------------------------------------------------------

  /// Request a storage layout for the arrays this back end touches
  /// (vp::layout). Overrides the process-wide default (<layout> XML /
  /// VP_LAYOUT); `block` is the AoSoA block size (0 = configured
  /// default). Results are layout independent — the hint selects the
  /// memory-access strategy (contiguous-run kernels), not the math.
  void SetArrayLayout(vp::layout::Kind k, std::size_t block = 0)
  {
    this->Layout_ = k;
    this->LayoutBlock_ = block;
    this->HaveLayout_ = true;
  }
  bool GetArrayLayoutSet() const { return this->HaveLayout_; }
  vp::layout::Kind GetArrayLayout() const { return this->Layout_; }
  std::size_t GetArrayLayoutBlock() const { return this->LayoutBlock_; }

  /// The layout this back end should use: the per-analysis override when
  /// one was set, else the process-wide default.
  vp::layout::Kind GetEffectiveLayout() const
  {
    return this->HaveLayout_ ? this->Layout_ : vp::layout::DefaultKind();
  }

  /// The AoSoA block size to pair with GetEffectiveLayout().
  std::size_t GetEffectiveLayoutBlock() const
  {
    if (this->HaveLayout_ && this->LayoutBlock_)
      return this->LayoutBlock_;
    return vp::layout::DefaultBlock();
  }

  // --- diagnostics ------------------------------------------------------------

  void SetVerbose(int v) { this->Verbose_ = v; }
  int GetVerbose() const { return this->Verbose_; }

protected:
  AnalysisAdaptor() = default;
  ~AnalysisAdaptor() override = default;

private:
  ExecutionMethod Method_ = ExecutionMethod::Lockstep;
  sched::PolicyKind Policy_ = sched::PolicyKind::Static;
  cmp::Params Compress_;
  bool HaveCompress_ = false;
  vp::layout::Kind Layout_ = vp::layout::Kind::AoS;
  std::size_t LayoutBlock_ = 0;
  bool HaveLayout_ = false;
  int DeviceId_ = DEVICE_AUTO;
  int DevicesToUse_ = 0; ///< 0 = n_a
  int DeviceStart_ = 0;
  int DeviceStride_ = 1;
  int Verbose_ = 0;
};

} // namespace sensei

#endif
