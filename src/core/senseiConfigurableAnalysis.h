#ifndef senseiConfigurableAnalysis_h
#define senseiConfigurableAnalysis_h

/// @file senseiConfigurableAnalysis.h
/// SENSEI's run-time configuration feature: an analysis adaptor that
/// builds and drives a chain of back ends from an XML document, enabling
/// run time switching between back ends through a single simulation
/// instrumentation. The paper's new execution-method and placement
/// controls are exposed here as XML attributes common to every
/// <analysis> element:
///
///   <sensei>
///     <pool enabled="1" max_cached_bytes="268435456"
///           trim_threshold="0.5"/>
///     <sched policy="cost-model" queue_depth="4"
///            backpressure="drop-oldest"/>
///     <analysis type="data_binning" mesh="bodies"
///               axes="x,y" resolution="256,256"
///               ops="sum" values="m"
///               device="auto" devices_to_use="1" device_start="3"
///               device_stride="1" async="1" enabled="1"/>
///     <analysis type="histogram"  mesh="bodies" column="m" bins="64"
///               device="host"/>
///     <analysis type="posthoc_io" mesh="bodies" dir="." prefix="p"
///               frequency="5" format="csv"/>
///   </sensei>
///
/// `device` accepts an explicit id, "host", or "auto" (Eq. 1 placement
/// with the optional devices_to_use / device_start / device_stride
/// controls).
///
/// The optional <sched> element configures the adaptive scheduler: the
/// automatic-placement policy ("static" = Eq. 1, "least-loaded",
/// "cost-model"; overridable per analysis with a policy attribute) and
/// the bounded asynchronous pipeline (queue_depth, 0 = unbounded;
/// backpressure = "block" | "drop-oldest" | "coalesce"; real_threads).

#include "senseiAnalysisAdaptor.h"

#include <string>
#include <vector>

namespace sxml
{
class Element;
}

namespace sensei
{

class ConfigurableAnalysis : public AnalysisAdaptor
{
public:
  static ConfigurableAnalysis *New() { return new ConfigurableAnalysis; }

  const char *GetClassName() const override
  {
    return "sensei::ConfigurableAnalysis";
  }

  /// Build the analysis chain from an XML file. Throws on parse or
  /// configuration errors.
  void InitializeFile(const std::string &path);

  /// Build the analysis chain from an XML string.
  void InitializeString(const std::string &xml);

  /// Build the analysis chain from a parsed document.
  void Initialize(const sxml::Element &root);

  /// Forward the step to every enabled back end (in document order).
  /// Returns false when any back end fails.
  bool Execute(DataAdaptor *data) override;

  /// Wait for every back end's in-flight asynchronous work.
  void DrainAsync() override;

  /// Drain every back end, then finalize each; returns the first
  /// nonzero status.
  int Finalize() override;

  /// Number of configured back ends.
  int GetNumberOfAnalyses() const
  {
    return static_cast<int>(this->Analyses_.size());
  }

  /// Back end by index (borrowed reference; nullptr when out of range).
  AnalysisAdaptor *GetAnalysis(int i) const;

protected:
  ConfigurableAnalysis() = default;
  ~ConfigurableAnalysis() override;

private:
  AnalysisAdaptor *BuildAnalysis(const sxml::Element &el);
  void ApplyCommon(const sxml::Element &el, AnalysisAdaptor *a);

  std::vector<AnalysisAdaptor *> Analyses_;
  sched::PolicyKind SchedPolicy_ = sched::PolicyKind::Static;
  bool HaveSchedPolicy_ = false; ///< a <sched> element set the default
};

} // namespace sensei

#endif
