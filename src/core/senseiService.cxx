#include "senseiService.h"

#include "senseiSerialization.h"
#include "sxml.h"
#include "vpPlatform.h"

#include <stdexcept>

namespace sensei
{

// ---------------------------------------------------------------------------
ServiceClient::ServiceClient(std::shared_ptr<svc::Port> port,
                             std::string meshName)
  : Client_(std::move(port), meshName), MeshName_(std::move(meshName))
{
}

bool ServiceClient::Connect(double timeoutSeconds)
{
  const cmp::Config &cfg = cmp::GetConfig();
  return this->Client_.Connect(cfg.Default, cfg.Enabled, timeoutSeconds);
}

bool ServiceClient::Send(DataAdaptor *data)
{
  if (!data)
    throw std::invalid_argument("ServiceClient::Send: null adaptor");

  svtkDataObject *obj = data->GetMesh(this->MeshName_);
  auto *table = dynamic_cast<svtkTable *>(obj);
  if (!table)
  {
    if (obj)
      obj->UnRegister();
    return false;
  }

  const svc::WelcomeInfo &grant = this->Client_.Negotiated();
  const std::vector<std::uint8_t> payload =
    grant.UseCompression ? SerializeTableCompressed(table, grant.Codec)
                         : SerializeTable(table);

  // the raw volume the frame stands for; compressed columns serialize
  // the same logical data, so size it from the table itself
  const std::size_t rawBytes =
    grant.UseCompression
      ? static_cast<std::size_t>(table->GetNumberOfRows()) *
          static_cast<std::size_t>(table->GetNumberOfColumns()) *
          sizeof(double)
      : payload.size();
  table->UnRegister();

  // serialization is host memory-bandwidth work the tenant pays for
  vp::Platform &plat = vp::Platform::Get();
  plat.HostCompute(static_cast<double>(payload.size()) /
                   plat.Config().Cost.H2HBandwidth);

  return this->Client_.SendFrame(
    static_cast<std::uint64_t>(data->GetDataTimeStep()), payload.data(),
    payload.size(), rawBytes, grant.UseCompression);
}

void ServiceClient::Close()
{
  this->Client_.Close();
}

void ServiceClient::Crash()
{
  this->Client_.Crash();
}

// ---------------------------------------------------------------------------
ServiceHost::ServiceHost(const sxml::Element &root)
{
  // the first chain parses the whole document, which also applies the
  // <service> element to svc::Configure; the pool is sized from the
  // resulting configuration
  auto *first = ConfigurableAnalysis::New();
  try
  {
    first->Initialize(root);
  }
  catch (...)
  {
    first->UnRegister();
    throw;
  }
  this->Analyses_.push_back(first);

  const svc::ServiceConfig cfg = svc::GetConfig();
  for (int w = 1; w < cfg.Workers; ++w)
  {
    auto *a = ConfigurableAnalysis::New();
    a->Initialize(root);
    this->Analyses_.push_back(a);
  }

  this->Server_ = std::make_unique<svc::Server>(
    [this](int worker, const svc::FrameHeader &h,
           std::vector<std::uint8_t> &&payload)
    { this->HandleFrame(worker, h, std::move(payload)); },
    cfg);
}

std::unique_ptr<ServiceHost> ServiceHost::FromString(const std::string &xml)
{
  const std::unique_ptr<sxml::Element> root = sxml::Parse(xml);
  return std::make_unique<ServiceHost>(*root);
}

std::unique_ptr<ServiceHost> ServiceHost::FromFile(const std::string &path)
{
  const std::unique_ptr<sxml::Element> root = sxml::ParseFile(path);
  return std::make_unique<ServiceHost>(*root);
}

ServiceHost::~ServiceHost()
{
  this->Stop();
  for (ConfigurableAnalysis *a : this->Analyses_)
    a->UnRegister();
  this->Analyses_.clear();
}

void ServiceHost::Stop()
{
  if (this->Stopped_)
    return;
  this->Server_->Stop();
  for (ConfigurableAnalysis *a : this->Analyses_)
    a->Finalize();
  this->Stopped_ = true;
}

void ServiceHost::HandleFrame(int worker, const svc::FrameHeader &h,
                              std::vector<std::uint8_t> &&payload)
{
  // the dispatcher resolved the session's mesh name when it queued the
  // frame, so a tenant that has since closed still lands on its own mesh
  const std::string mesh = h.Mesh.empty() ? "table" : h.Mesh;

  // compressed and raw payloads share the self-describing table formats
  svtkTable *table = DeserializeTableAuto(payload.data(), payload.size());
  payload.clear();

  TableAdaptor *adaptor = TableAdaptor::New(mesh);
  adaptor->SetTable(table);
  table->UnRegister();
  adaptor->SetDataTimeStep(static_cast<long>(h.Step));

  this->Analyses_[static_cast<std::size_t>(worker)]->Execute(adaptor);
  adaptor->ReleaseData();
  adaptor->Delete();
  this->Frames_.fetch_add(1);
}

} // namespace sensei
