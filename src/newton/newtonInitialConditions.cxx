#include "newtonInitialConditions.h"

#include <algorithm>
#include <cmath>
#include <random>

namespace newton
{

void SlabBounds(double boxSize, int rank, int size, double &lo, double &hi)
{
  const double width = 2.0 * boxSize / static_cast<double>(size);
  lo = -boxSize + width * static_cast<double>(rank);
  hi = lo + width;
}

int SlabOwner(double boxSize, int size, double x)
{
  const double width = 2.0 * boxSize / static_cast<double>(size);
  int r = static_cast<int>(std::floor((x + boxSize) / width));
  return std::clamp(r, 0, size - 1);
}

namespace
{

BodySet UniformIC(const Config &config, int rank, int size)
{
  // split the body count evenly, remainder to the low ranks
  const std::size_t base = config.TotalBodies / static_cast<std::size_t>(size);
  const std::size_t extra = config.TotalBodies % static_cast<std::size_t>(size);
  const std::size_t mine =
    base + (static_cast<std::size_t>(rank) < extra ? 1 : 0);

  double lo = 0, hi = 0;
  SlabBounds(config.BoxSize, rank, size, lo, hi);

  std::mt19937_64 gen(config.Seed + 0x9e3779b9ULL * static_cast<unsigned>(rank));
  std::uniform_real_distribution<double> ux(lo, hi);
  std::uniform_real_distribution<double> uyz(-config.BoxSize, config.BoxSize);
  std::uniform_real_distribution<double> uv(-config.VelocityScale,
                                            config.VelocityScale);
  std::uniform_real_distribution<double> um(config.BodyMassMin,
                                            config.BodyMassMax);

  // global ids: offset of this rank's block
  double id0 = 0;
  for (int r = 0; r < rank; ++r)
    id0 += static_cast<double>(
      base + (static_cast<std::size_t>(r) < extra ? 1 : 0));

  BodySet bodies;
  bodies.Reserve(mine + 1);
  for (std::size_t i = 0; i < mine; ++i)
    bodies.Append(ux(gen), uyz(gen), uyz(gen), uv(gen), uv(gen), uv(gen),
                  um(gen), id0 + static_cast<double>(i));

  // the massive body at the origin belongs to whichever slab contains x=0
  if (config.CentralMass > 0.0 &&
      SlabOwner(config.BoxSize, size, 0.0) == rank)
    bodies.Append(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, config.CentralMass,
                  static_cast<double>(config.TotalBodies));

  return bodies;
}

BodySet GalaxyIC(const Config &config, int rank, int size)
{
  // a single-component exponential disk around a central bulge: the MAGI
  // substitute. bodies on near-circular orbits in the x-y plane with a
  // small vertical extent and velocity dispersion.
  const std::size_t base = config.TotalBodies / static_cast<std::size_t>(size);
  const std::size_t extra = config.TotalBodies % static_cast<std::size_t>(size);

  double lo = 0, hi = 0;
  SlabBounds(config.BoxSize, rank, size, lo, hi);

  const double Rd = 0.25 * config.BoxSize; // disk scale length
  const double z0 = 0.05 * config.BoxSize; // vertical scale
  const double Mc =
    config.CentralMass > 0.0 ? config.CentralMass : 100.0; // bulge mass

  // sample globally with one deterministic stream and keep the bodies in
  // this rank's slab; every rank draws the identical sequence so the union
  // over ranks is exactly the global sample, already partitioned.
  std::mt19937_64 gen(config.Seed);
  std::uniform_real_distribution<double> uphi(0.0, 2.0 * M_PI);
  std::exponential_distribution<double> ur(1.0 / Rd);
  std::normal_distribution<double> uz(0.0, z0);
  std::normal_distribution<double> udisp(0.0, 0.05);
  std::uniform_real_distribution<double> um(config.BodyMassMin,
                                            config.BodyMassMax);

  const std::size_t total = base * static_cast<std::size_t>(size) + extra;
  BodySet bodies;
  bodies.Reserve(total / static_cast<std::size_t>(size) + 8);

  for (std::size_t i = 0; i < total; ++i)
  {
    const double phi = uphi(gen);
    const double r = std::min(ur(gen), 0.95 * config.BoxSize);
    const double x = r * std::cos(phi);
    const double y = r * std::sin(phi);
    const double z = std::clamp(uz(gen), -0.9 * config.BoxSize,
                                0.9 * config.BoxSize);
    const double m = um(gen);

    // circular speed about the enclosed mass (dominated by the bulge)
    const double vc =
      std::sqrt(config.G * Mc / std::max(r, 0.05 * config.BoxSize));
    const double vx = -vc * std::sin(phi) + udisp(gen);
    const double vy = vc * std::cos(phi) + udisp(gen);
    const double vz = udisp(gen);

    if (x >= lo && x < hi)
      bodies.Append(x, y, z, vx, vy, vz, m, static_cast<double>(i));
  }

  if (SlabOwner(config.BoxSize, size, 0.0) == rank)
    bodies.Append(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, Mc,
                  static_cast<double>(config.TotalBodies));

  return bodies;
}

} // namespace

BodySet GenerateInitialCondition(const Config &config, int rank, int size)
{
  switch (config.Ic)
  {
    case InitialCondition::Galaxy:
      return GalaxyIC(config, rank, size);
    case InitialCondition::UniformRandom:
    default:
      return UniformIC(config, rank, size);
  }
}

} // namespace newton
