#ifndef newtonInitialConditions_h
#define newtonInitialConditions_h

/// @file newtonInitialConditions.h
/// Initial condition generators. UniformRandom reproduces the paper's
/// evaluation setup ("uniform random distributions in position, mass, and
/// velocity with a massive body at the origin"); Galaxy is the stand-in
/// for MAGI, the Many-component Galaxy Initializer, sampling an
/// exponential disk around a central bulge with near-circular orbits.

#include "newtonConfig.h"

#include <cstddef>
#include <vector>

namespace newton
{

/// Host-side body state produced by an initializer for one rank.
struct BodySet
{
  std::vector<double> X, Y, Z;
  std::vector<double> VX, VY, VZ;
  std::vector<double> M;
  std::vector<double> Id;

  std::size_t Size() const { return this->X.size(); }

  void Append(double x, double y, double z, double vx, double vy, double vz,
              double m, double id)
  {
    this->X.push_back(x);
    this->Y.push_back(y);
    this->Z.push_back(z);
    this->VX.push_back(vx);
    this->VY.push_back(vy);
    this->VZ.push_back(vz);
    this->M.push_back(m);
    this->Id.push_back(id);
  }

  void Reserve(std::size_t n)
  {
    this->X.reserve(n);
    this->Y.reserve(n);
    this->Z.reserve(n);
    this->VX.reserve(n);
    this->VY.reserve(n);
    this->VZ.reserve(n);
    this->M.reserve(n);
    this->Id.reserve(n);
  }
};

/// Generate rank `rank` of `size`'s share of the initial bodies. The
/// returned bodies all lie inside the rank's x-slab
/// [-L + rank*(2L/size), -L + (rank+1)*(2L/size)), so the initial state
/// is already partitioned. Deterministic for a given (config, rank, size).
BodySet GenerateInitialCondition(const Config &config, int rank, int size);

/// The x-slab bounds owned by `rank` of `size` for box half-width L.
void SlabBounds(double boxSize, int rank, int size, double &lo, double &hi);

/// The rank whose slab contains coordinate x (clamped to valid ranks).
int SlabOwner(double boxSize, int size, double x);

} // namespace newton

#endif
