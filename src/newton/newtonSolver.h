#ifndef newtonSolver_h
#define newtonSolver_h

/// @file newtonSolver.h
/// The Newton++ solver: a direct (all pairs) n-body integrator using a
/// second order, time reversible, symplectic scheme (velocity-Verlet in
/// kick-drift-kick form) with Plummer softening. Parallelized with
/// (mini)MPI across spatial subdomains — a slab decomposition in x with a
/// ring pass circulating remote bodies for the force sum — and with
/// OpenMP device offload (the vomp PM) within a rank. Body state lives in
/// svtkHAMRDataArray columns in OpenMP target memory, so SENSEI analyses
/// receive it zero-copy through the data model.

#include "minimpi.h"
#include "newtonConfig.h"
#include "newtonInitialConditions.h"
#include "svtkHAMRDataArray.h"

#include <array>
#include <string>
#include <vector>

namespace newton
{

class Solver
{
public:
  /// `comm` may be null for serial runs; it must outlive the solver.
  Solver(minimpi::Communicator *comm, const Config &config);
  ~Solver() = default;

  Solver(const Solver &) = delete;
  Solver &operator=(const Solver &) = delete;

  /// Generate the initial condition, place the body arrays on this rank's
  /// device, and evaluate the initial accelerations.
  void Initialize();

  /// Advance one time step (kick-drift-kick). Runs the repartitioning
  /// phase when configured.
  void Step();

  /// Migrate bodies that left this rank's slab to their owning rank.
  void Repartition();

  // --- state access -----------------------------------------------------------

  std::size_t LocalBodies() const;

  /// Total bodies across ranks (collective when a communicator is set).
  std::size_t GlobalBodies() const;

  long GetStepIndex() const noexcept { return this->Step_; }
  double GetTime() const noexcept { return this->Time_; }

  /// Device the solver offloads to (vp::HostDevice when on the host).
  int GetDevice() const noexcept { return this->Device_; }

  /// Column names exposed to SENSEI: x y z vx vy vz m id.
  static std::vector<std::string> ColumnNames();

  /// Zero-copy access to a state column (borrowed reference; nullptr for
  /// unknown names).
  svtkHAMRDoubleArray *GetColumn(const std::string &name) const;

  // --- diagnostics (collective when a communicator is set) --------------------

  /// Total kinetic energy.
  double KineticEnergy() const;

  /// Total (softened) potential energy.
  double PotentialEnergy() const;

  double TotalEnergy() const
  {
    return this->KineticEnergy() + this->PotentialEnergy();
  }

  /// Total momentum.
  std::array<double, 3> Momentum() const;

  /// Host copy of the full local body state (tests, repartitioning).
  BodySet DownloadBodies() const;

private:
  void UploadBodies(const BodySet &bodies);
  void ComputeAccelerations();
  void Kick(double dt);
  void Drift(double dt);

  /// Accumulate accelerations on the local bodies from nSrc source bodies
  /// whose coordinate/mass arrays are dereferenceable on the solver's
  /// device. `self` skips the i==j self interaction.
  void PairwiseAccumulate(const double *sx, const double *sy,
                          const double *sz, const double *sm,
                          std::size_t nSrc, bool self);

  minimpi::Communicator *Comm_ = nullptr;
  Config Config_;

  int Device_ = -1; ///< vomp device (vp::HostDevice = host)
  int OmpDevice_ = 0; ///< vomp device id (initial device when on host)
  long Step_ = 0;
  double Time_ = 0.0;

  svtkSmartPtr<svtkHAMRDoubleArray> X_, Y_, Z_, VX_, VY_, VZ_, M_, Id_;
  svtkSmartPtr<svtkHAMRDoubleArray> AX_, AY_, AZ_;
};

} // namespace newton

#endif
