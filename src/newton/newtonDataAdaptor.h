#ifndef newtonDataAdaptor_h
#define newtonDataAdaptor_h

/// @file newtonDataAdaptor.h
/// Newton++'s SENSEI instrumentation: a DataAdaptor exposing the body
/// state as a svtkTable mesh named "bodies". The eight solver columns
/// (x y z vx vy vz m id) are shared zero-copy — the analyses receive the
/// very device pointers the solver integrates — and three derived
/// variables (speed, ke, r) are computed on the solver's device each step,
/// giving the ten variables the paper bins over nine coordinate systems.

#include "newtonSolver.h"
#include "senseiDataAdaptor.h"

namespace newton
{

class DataAdaptor : public sensei::DataAdaptor
{
public:
  static DataAdaptor *New(Solver *solver)
  {
    auto *a = new DataAdaptor;
    a->Solver_ = solver;
    return a;
  }

  const char *GetClassName() const override { return "newton::DataAdaptor"; }

  std::vector<std::string> GetMeshNames() override { return {"bodies"}; }

  /// The ten binnable variables: the solver's eight columns plus derived
  /// speed (|v|), ke (kinetic energy), and r (radius).
  static std::vector<std::string> VariableNames();

  svtkDataObject *GetMesh(const std::string &meshName) override;

  void ReleaseData() override;

  /// Refresh the adaptor after a solver step (sets time and step index,
  /// invalidates cached derived arrays).
  void Update();

protected:
  DataAdaptor() = default;
  ~DataAdaptor() override { this->ReleaseData(); }

private:
  Solver *Solver_ = nullptr;
  svtkTable *Cached_ = nullptr;
};

} // namespace newton

#endif
