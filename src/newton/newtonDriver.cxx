#include "newtonDriver.h"

#include "vpClock.h"

namespace newton
{

Driver::Driver(minimpi::Communicator *comm, const Config &config,
               sensei::AnalysisAdaptor *analysis)
  : Comm_(comm), Config_(config), Analysis_(analysis)
{
  if (this->Analysis_)
    this->Analysis_->Register();
}

Driver::~Driver()
{
  if (this->Bridge_)
    this->Bridge_->UnRegister();
  if (this->Analysis_)
    this->Analysis_->UnRegister();
}

void Driver::Initialize()
{
  this->Solver_ = std::make_unique<Solver>(this->Comm_, this->Config_);
  this->Solver_->Initialize();
  this->Bridge_ = DataAdaptor::New(this->Solver_.get());
  this->Bridge_->SetCommunicator(this->Comm_);
  this->Bridge_->Update();
}

double Driver::Run(long nSteps)
{
  if (!this->Solver_)
    this->Initialize();

  const double begin = vp::ThisClock().Now();
  this->SolverSeconds_ = 0.0;
  this->InSituSeconds_ = 0.0;
  this->StepsRun_ = nSteps;

  for (long s = 0; s < nSteps; ++s)
  {
    {
      const double t0 = vp::ThisClock().Now();
      sensei::ScopedEvent ev("driver::solver");
      this->Solver_->Step();
      this->SolverSeconds_ += vp::ThisClock().Now() - t0;
    }

    if (this->Analysis_)
    {
      const double t0 = vp::ThisClock().Now();
      sensei::ScopedEvent ev("driver::insitu");
      this->Bridge_->Update();
      this->Analysis_->Execute(this->Bridge_);
      this->Bridge_->ReleaseData();
      this->InSituSeconds_ += vp::ThisClock().Now() - t0;
    }

    if (this->StepHook_)
      this->StepHook_(s);
  }

  if (this->Analysis_)
    this->Analysis_->Finalize(); // drains asynchronous in situ work

  if (this->Comm_)
    this->Comm_->Barrier();

  return vp::ThisClock().Now() - begin;
}

double Driver::MeanSolverSeconds() const
{
  return this->StepsRun_ ? this->SolverSeconds_ /
                             static_cast<double>(this->StepsRun_)
                         : 0.0;
}

double Driver::MeanInSituSeconds() const
{
  return this->StepsRun_ ? this->InSituSeconds_ /
                             static_cast<double>(this->StepsRun_)
                         : 0.0;
}

} // namespace newton
