#include "newtonSolver.h"

#include "layoutMapping.h"
#include "vomp.h"
#include "vpPlatform.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace newton
{

namespace
{
constexpr int TagRing = 100;
constexpr int TagRepart = 200;

/// ~flops per body-body interaction in the force kernel.
constexpr double OpsPerInteraction = 20.0;
} // namespace

Solver::Solver(minimpi::Communicator *comm, const Config &config)
  : Comm_(comm), Config_(config)
{
}

std::vector<std::string> Solver::ColumnNames()
{
  return {"x", "y", "z", "vx", "vy", "vz", "m", "id"};
}

void Solver::Initialize()
{
  // --- device selection: one solver rank per device, local-rank round robin
  const int nd = vomp::GetNumDevices();
  const int localRank =
    this->Comm_ ? this->Comm_->Rank() % this->Comm_->RanksPerNode() : 0;

  if (this->Config_.SimDevices < 0 || nd == 0)
  {
    this->OmpDevice_ = vomp::GetInitialDevice();
    this->Device_ = vp::HostDevice;
  }
  else
  {
    const int useDevices = this->Config_.SimDevices == 0
                             ? nd
                             : std::min(this->Config_.SimDevices, nd);
    this->OmpDevice_ = localRank % useDevices;
    this->Device_ = this->OmpDevice_;
  }
  vomp::SetDefaultDevice(this->OmpDevice_);

  // --- initial condition, already partitioned into this rank's slab
  const int size = this->Comm_ ? this->Comm_->Size() : 1;
  const int rank = this->Comm_ ? this->Comm_->Rank() : 0;
  BodySet bodies = GenerateInitialCondition(this->Config_, rank, size);
  this->UploadBodies(bodies);

  this->Step_ = 0;
  this->Time_ = 0.0;
  this->ComputeAccelerations();
}

void Solver::UploadBodies(const BodySet &bodies)
{
  vomp::SetDefaultDevice(this->OmpDevice_);
  const std::size_t n = bodies.Size();

  auto make = [&](const char *name,
                  const std::vector<double> &host) -> svtkSmartPtr<svtkHAMRDoubleArray>
  {
    svtkHAMRDoubleArray *a =
      svtkHAMRDoubleArray::New(name, n, 1, svtkAllocator::openmp);
    if (n)
      a->GetBuffer().assign(host.data(), n);
    return svtkSmartPtr<svtkHAMRDoubleArray>::Take(a);
  };

  this->X_ = make("x", bodies.X);
  this->Y_ = make("y", bodies.Y);
  this->Z_ = make("z", bodies.Z);
  this->VX_ = make("vx", bodies.VX);
  this->VY_ = make("vy", bodies.VY);
  this->VZ_ = make("vz", bodies.VZ);
  this->M_ = make("m", bodies.M);
  this->Id_ = make("id", bodies.Id);

  const std::vector<double> zeros(n, 0.0);
  this->AX_ = make("ax", zeros);
  this->AY_ = make("ay", zeros);
  this->AZ_ = make("az", zeros);
}

BodySet Solver::DownloadBodies() const
{
  BodySet out;
  out.X = this->X_->ToVector();
  out.Y = this->Y_->ToVector();
  out.Z = this->Z_->ToVector();
  out.VX = this->VX_->ToVector();
  out.VY = this->VY_->ToVector();
  out.VZ = this->VZ_->ToVector();
  out.M = this->M_->ToVector();
  out.Id = this->Id_->ToVector();
  return out;
}

std::size_t Solver::LocalBodies() const
{
  return this->X_ ? this->X_->GetNumberOfTuples() : 0;
}

std::size_t Solver::GlobalBodies() const
{
  std::size_t n = this->LocalBodies();
  if (this->Comm_)
    this->Comm_->Allreduce(&n, 1, minimpi::Op::Sum);
  return n;
}

svtkHAMRDoubleArray *Solver::GetColumn(const std::string &name) const
{
  if (name == "x") return this->X_.Get();
  if (name == "y") return this->Y_.Get();
  if (name == "z") return this->Z_.Get();
  if (name == "vx") return this->VX_.Get();
  if (name == "vy") return this->VY_.Get();
  if (name == "vz") return this->VZ_.Get();
  if (name == "m") return this->M_.Get();
  if (name == "id") return this->Id_.Get();
  return nullptr;
}

// ---------------------------------------------------------------------------
void Solver::PairwiseAccumulate(const double *sx, const double *sy,
                                const double *sz, const double *sm,
                                std::size_t nSrc, bool self)
{
  const std::size_t n = this->LocalBodies();
  if (!n || !nSrc)
    return;

  const double *x = this->X_->GetData();
  const double *y = this->Y_->GetData();
  const double *z = this->Z_->GetData();
  double *ax = this->AX_->GetData();
  double *ay = this->AY_->GetData();
  double *az = this->AZ_->GetData();

  const double g = this->Config_.G;
  const double eps2 = this->Config_.Softening * this->Config_.Softening;

  // The vectorized variant keeps per-lane force accumulators so the
  // compiler can pack the inner loop and overlap the div/sqrt chains.
  // Lane accumulation reassociates the floating-point sum, so it is
  // opt-in (VP_SIMD / <layout simd="1">). It also relies on eps2 > 0 to
  // absorb the self interaction branchlessly (dx = 0 makes the term
  // contribute exactly zero); with zero softening the scalar path runs.
  const bool simd = vp::layout::SimdEnabled() && (!self || eps2 > 0.0);
  if (simd)
    vp::layout::NoteSimdKernel();
  else
    vp::layout::NoteScalarKernel();

  vomp::TargetParallelFor(
    this->OmpDevice_, n,
    [=](std::size_t b, std::size_t e)
    {
      if (simd)
      {
        constexpr std::size_t W = 4; // accumulator lanes
        const std::size_t nv = nSrc - nSrc % W;
        for (std::size_t i = b; i < e; ++i)
        {
          double fx[W] = {0.0}, fy[W] = {0.0}, fz[W] = {0.0};
          const double xi = x[i], yi = y[i], zi = z[i];
          for (std::size_t j = 0; j < nv; j += W)
          {
            for (std::size_t l = 0; l < W; ++l)
            {
              const double dx = sx[j + l] - xi;
              const double dy = sy[j + l] - yi;
              const double dz = sz[j + l] - zi;
              const double r2 = dx * dx + dy * dy + dz * dz + eps2;
              const double inv = 1.0 / (r2 * std::sqrt(r2));
              const double s = g * sm[j + l] * inv;
              fx[l] += s * dx;
              fy[l] += s * dy;
              fz[l] += s * dz;
            }
          }
          double tfx = (fx[0] + fx[1]) + (fx[2] + fx[3]);
          double tfy = (fy[0] + fy[1]) + (fy[2] + fy[3]);
          double tfz = (fz[0] + fz[1]) + (fz[2] + fz[3]);
          for (std::size_t j = nv; j < nSrc; ++j)
          {
            const double dx = sx[j] - xi;
            const double dy = sy[j] - yi;
            const double dz = sz[j] - zi;
            const double r2 = dx * dx + dy * dy + dz * dz + eps2;
            const double inv = 1.0 / (r2 * std::sqrt(r2));
            const double s = g * sm[j] * inv;
            tfx += s * dx;
            tfy += s * dy;
            tfz += s * dz;
          }
          ax[i] += tfx;
          ay[i] += tfy;
          az[i] += tfz;
        }
        return;
      }
      for (std::size_t i = b; i < e; ++i)
      {
        double fx = 0.0, fy = 0.0, fz = 0.0;
        const double xi = x[i], yi = y[i], zi = z[i];
        for (std::size_t j = 0; j < nSrc; ++j)
        {
          if (self && j == i)
            continue;
          const double dx = sx[j] - xi;
          const double dy = sy[j] - yi;
          const double dz = sz[j] - zi;
          const double r2 = dx * dx + dy * dy + dz * dz + eps2;
          const double inv = 1.0 / (r2 * std::sqrt(r2));
          const double s = g * sm[j] * inv;
          fx += s * dx;
          fy += s * dy;
          fz += s * dz;
        }
        ax[i] += fx;
        ay[i] += fy;
        az[i] += fz;
      }
    },
    vomp::TargetBounds{OpsPerInteraction * static_cast<double>(nSrc), 0.0,
                       "newton_force", /*Shardable=*/true});
}

void Solver::ComputeAccelerations()
{
  const std::size_t n = this->LocalBodies();
  vomp::SetDefaultDevice(this->OmpDevice_);

  // zero the accumulators
  if (n)
  {
    double *ax = this->AX_->GetData();
    double *ay = this->AY_->GetData();
    double *az = this->AZ_->GetData();
    vomp::TargetParallelFor(
      this->OmpDevice_, n,
      [=](std::size_t b, std::size_t e)
      {
        for (std::size_t i = b; i < e; ++i)
        {
          ax[i] = 0.0;
          ay[i] = 0.0;
          az[i] = 0.0;
        }
      },
      vomp::TargetBounds{3.0, 0.0, "newton_zero", /*Shardable=*/true});
  }

  // local-local interactions
  if (n)
    this->PairwiseAccumulate(this->X_->GetData(), this->Y_->GetData(),
                             this->Z_->GetData(), this->M_->GetData(), n,
                             /*self=*/true);

  // ring pass: circulate every other rank's bodies through this one
  const int size = this->Comm_ ? this->Comm_->Size() : 1;
  if (size > 1)
  {
    const int rank = this->Comm_->Rank();
    const int right = (rank + 1) % size;
    const int left = (rank - 1 + size) % size;

    // the circulating block starts as a host copy of the local bodies
    std::vector<double> cx = this->X_->ToVector();
    std::vector<double> cy = this->Y_->ToVector();
    std::vector<double> cz = this->Z_->ToVector();
    std::vector<double> cm = this->M_->ToVector();

    for (int s = 1; s < size; ++s)
    {
      const int tag = TagRing + 4 * s;
      this->Comm_->SendVec(right, tag + 0, cx);
      this->Comm_->SendVec(right, tag + 1, cy);
      this->Comm_->SendVec(right, tag + 2, cz);
      this->Comm_->SendVec(right, tag + 3, cm);
      cx = this->Comm_->RecvAs<double>(left, tag + 0);
      cy = this->Comm_->RecvAs<double>(left, tag + 1);
      cz = this->Comm_->RecvAs<double>(left, tag + 2);
      cm = this->Comm_->RecvAs<double>(left, tag + 3);

      const std::size_t nr = cx.size();
      if (!nr || !n)
        continue;

      // stage the remote block on the solver's device
      hamr::buffer<double> rx(hamr::allocator::openmp);
      hamr::buffer<double> ry(hamr::allocator::openmp);
      hamr::buffer<double> rz(hamr::allocator::openmp);
      hamr::buffer<double> rm(hamr::allocator::openmp);
      rx.assign(cx.data(), nr);
      ry.assign(cy.data(), nr);
      rz.assign(cz.data(), nr);
      rm.assign(cm.data(), nr);

      this->PairwiseAccumulate(rx.data(), ry.data(), rz.data(), rm.data(), nr,
                               /*self=*/false);
    }
  }
}

void Solver::Kick(double dt)
{
  const std::size_t n = this->LocalBodies();
  if (!n)
    return;

  double *vx = this->VX_->GetData();
  double *vy = this->VY_->GetData();
  double *vz = this->VZ_->GetData();
  const double *ax = this->AX_->GetData();
  const double *ay = this->AY_->GetData();
  const double *az = this->AZ_->GetData();

  vomp::TargetParallelFor(
    this->OmpDevice_, n,
    [=](std::size_t b, std::size_t e)
    {
      for (std::size_t i = b; i < e; ++i)
      {
        vx[i] += dt * ax[i];
        vy[i] += dt * ay[i];
        vz[i] += dt * az[i];
      }
    },
    vomp::TargetBounds{6.0, 0.0, "newton_kick", /*Shardable=*/true});
}

void Solver::Drift(double dt)
{
  const std::size_t n = this->LocalBodies();
  if (!n)
    return;

  double *x = this->X_->GetData();
  double *y = this->Y_->GetData();
  double *z = this->Z_->GetData();
  const double *vx = this->VX_->GetData();
  const double *vy = this->VY_->GetData();
  const double *vz = this->VZ_->GetData();

  vomp::TargetParallelFor(
    this->OmpDevice_, n,
    [=](std::size_t b, std::size_t e)
    {
      for (std::size_t i = b; i < e; ++i)
      {
        x[i] += dt * vx[i];
        y[i] += dt * vy[i];
        z[i] += dt * vz[i];
      }
    },
    vomp::TargetBounds{6.0, 0.0, "newton_drift", /*Shardable=*/true});
}

void Solver::Step()
{
  vomp::SetDefaultDevice(this->OmpDevice_);
  const double dt = this->Config_.Dt;

  // KDK: half kick with the cached accelerations, drift, recompute, half kick
  this->Kick(0.5 * dt);
  this->Drift(dt);

  if (this->Config_.Repartition && this->Comm_ && this->Comm_->Size() > 1 &&
      (this->Step_ + 1) % this->Config_.RepartitionInterval == 0)
    this->Repartition();

  this->ComputeAccelerations();
  this->Kick(0.5 * dt);

  ++this->Step_;
  this->Time_ += dt;
}

// ---------------------------------------------------------------------------
void Solver::Repartition()
{
  const int size = this->Comm_->Size();
  const int rank = this->Comm_->Rank();

  BodySet all = this->DownloadBodies();
  const std::size_t n = all.Size();

  // bucket bodies by owning slab; bodies are packed 8 doubles each
  std::vector<std::vector<double>> outbound(static_cast<std::size_t>(size));
  BodySet keep;
  keep.Reserve(n);

  for (std::size_t i = 0; i < n; ++i)
  {
    const int owner = SlabOwner(this->Config_.BoxSize, size, all.X[i]);
    if (owner == rank)
    {
      keep.Append(all.X[i], all.Y[i], all.Z[i], all.VX[i], all.VY[i],
                  all.VZ[i], all.M[i], all.Id[i]);
    }
    else
    {
      auto &buf = outbound[static_cast<std::size_t>(owner)];
      buf.insert(buf.end(), {all.X[i], all.Y[i], all.Z[i], all.VX[i],
                             all.VY[i], all.VZ[i], all.M[i], all.Id[i]});
    }
  }

  // exchange with every other rank (send even when empty so receives match)
  for (int r = 0; r < size; ++r)
    if (r != rank)
      this->Comm_->SendVec(r, TagRepart, outbound[static_cast<std::size_t>(r)]);

  for (int r = 0; r < size; ++r)
  {
    if (r == rank)
      continue;
    const std::vector<double> in = this->Comm_->RecvAs<double>(r, TagRepart);
    for (std::size_t i = 0; i + 7 < in.size(); i += 8)
      keep.Append(in[i], in[i + 1], in[i + 2], in[i + 3], in[i + 4],
                  in[i + 5], in[i + 6], in[i + 7]);
  }

  this->UploadBodies(keep);
}

// ---------------------------------------------------------------------------
double Solver::KineticEnergy() const
{
  const BodySet b = this->DownloadBodies();
  double ke = 0.0;
  for (std::size_t i = 0; i < b.Size(); ++i)
    ke += 0.5 * b.M[i] *
          (b.VX[i] * b.VX[i] + b.VY[i] * b.VY[i] + b.VZ[i] * b.VZ[i]);
  if (this->Comm_)
    this->Comm_->Allreduce(&ke, 1, minimpi::Op::Sum);
  return ke;
}

double Solver::PotentialEnergy() const
{
  // gather the global body set; each rank evaluates its own rows
  std::vector<double> x = this->X_->ToVector();
  std::vector<double> y = this->Y_->ToVector();
  std::vector<double> z = this->Z_->ToVector();
  std::vector<double> m = this->M_->ToVector();

  std::vector<double> gx = x, gy = y, gz = z, gm = m;
  if (this->Comm_ && this->Comm_->Size() > 1)
  {
    // ranks may own different counts; exchange through per-rank gathers
    gx.clear();
    gy.clear();
    gz.clear();
    gm.clear();
    const int size = this->Comm_->Size();
    for (int r = 0; r < size; ++r)
    {
      std::size_t nr = x.size();
      this->Comm_->Bcast(&nr, 1, r);
      std::vector<double> bx = x, by = y, bz = z, bm = m;
      bx.resize(nr);
      by.resize(nr);
      bz.resize(nr);
      bm.resize(nr);
      this->Comm_->Bcast(bx.data(), nr, r);
      this->Comm_->Bcast(by.data(), nr, r);
      this->Comm_->Bcast(bz.data(), nr, r);
      this->Comm_->Bcast(bm.data(), nr, r);
      gx.insert(gx.end(), bx.begin(), bx.end());
      gy.insert(gy.end(), by.begin(), by.end());
      gz.insert(gz.end(), bz.begin(), bz.end());
      gm.insert(gm.end(), bm.begin(), bm.end());
    }
  }

  const double eps2 = this->Config_.Softening * this->Config_.Softening;
  const std::size_t ng = gx.size();
  double pe = 0.0;
  for (std::size_t i = 0; i < ng; ++i)
    for (std::size_t j = i + 1; j < ng; ++j)
    {
      const double dx = gx[j] - gx[i];
      const double dy = gy[j] - gy[i];
      const double dz = gz[j] - gz[i];
      pe -= this->Config_.G * gm[i] * gm[j] /
            std::sqrt(dx * dx + dy * dy + dz * dz + eps2);
    }
  return pe;
}

std::array<double, 3> Solver::Momentum() const
{
  const BodySet b = this->DownloadBodies();
  std::array<double, 3> p = {0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < b.Size(); ++i)
  {
    p[0] += b.M[i] * b.VX[i];
    p[1] += b.M[i] * b.VY[i];
    p[2] += b.M[i] * b.VZ[i];
  }
  if (this->Comm_)
    this->Comm_->Allreduce(p.data(), 3, minimpi::Op::Sum);
  return p;
}

} // namespace newton
