#include "newtonDataAdaptor.h"

#include "vomp.h"

#include <cmath>

namespace newton
{

std::vector<std::string> DataAdaptor::VariableNames()
{
  return {"x", "y", "z", "vx", "vy", "vz", "m", "id", "speed", "ke", "r"};
}

svtkDataObject *DataAdaptor::GetMesh(const std::string &meshName)
{
  if (meshName != "bodies" || !this->Solver_)
    return nullptr;

  if (this->Cached_)
  {
    this->Cached_->Register();
    return this->Cached_;
  }

  svtkTable *table = svtkTable::New();

  // zero-copy share of the solver's device-resident state
  for (const std::string &name : Solver::ColumnNames())
    table->AddColumn(this->Solver_->GetColumn(name));

  // derived variables, computed on the solver's device
  const std::size_t n = this->Solver_->LocalBodies();
  const int dev = this->Solver_->GetDevice();
  const int ompDev = dev < 0 ? vomp::GetInitialDevice() : dev;

  vomp::SetDefaultDevice(ompDev);
  const svtkAllocator alloc = svtkAllocator::openmp;

  svtkHAMRDoubleArray *speed = svtkHAMRDoubleArray::New("speed", n, 1, alloc);
  svtkHAMRDoubleArray *ke = svtkHAMRDoubleArray::New("ke", n, 1, alloc);
  svtkHAMRDoubleArray *rad = svtkHAMRDoubleArray::New("r", n, 1, alloc);

  if (n)
  {
    const double *x = this->Solver_->GetColumn("x")->GetData();
    const double *y = this->Solver_->GetColumn("y")->GetData();
    const double *z = this->Solver_->GetColumn("z")->GetData();
    const double *vx = this->Solver_->GetColumn("vx")->GetData();
    const double *vy = this->Solver_->GetColumn("vy")->GetData();
    const double *vz = this->Solver_->GetColumn("vz")->GetData();
    const double *m = this->Solver_->GetColumn("m")->GetData();
    double *ps = speed->GetData();
    double *pk = ke->GetData();
    double *pr = rad->GetData();

    vomp::TargetParallelFor(
      ompDev, n,
      [=](std::size_t b, std::size_t e)
      {
        for (std::size_t i = b; i < e; ++i)
        {
          const double v2 =
            vx[i] * vx[i] + vy[i] * vy[i] + vz[i] * vz[i];
          ps[i] = std::sqrt(v2);
          pk[i] = 0.5 * m[i] * v2;
          pr[i] = std::sqrt(x[i] * x[i] + y[i] * y[i] + z[i] * z[i]);
        }
      },
      vomp::TargetBounds{12.0, 0.0, "newton_derived", /*Shardable=*/true});
  }

  table->AddColumn(speed);
  table->AddColumn(ke);
  table->AddColumn(rad);
  speed->Delete();
  ke->Delete();
  rad->Delete();

  this->Cached_ = table;
  this->Cached_->Register();
  return table;
}

void DataAdaptor::ReleaseData()
{
  if (this->Cached_)
  {
    this->Cached_->UnRegister();
    this->Cached_ = nullptr;
  }
}

void DataAdaptor::Update()
{
  this->ReleaseData();
  if (this->Solver_)
  {
    this->SetDataTime(this->Solver_->GetTime());
    this->SetDataTimeStep(this->Solver_->GetStepIndex());
  }
}

} // namespace newton
