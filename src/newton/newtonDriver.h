#ifndef newtonDriver_h
#define newtonDriver_h

/// @file newtonDriver.h
/// Couples the Newton++ solver to a SENSEI analysis: step the solver,
/// update the bridge, invoke the analysis (in situ at every iteration, as
/// in the paper's runs), and record per-phase virtual-time profiles. This
/// is the per-rank main loop used by the examples and the evaluation
/// campaign.

#include "newtonDataAdaptor.h"
#include "newtonSolver.h"
#include "senseiAnalysisAdaptor.h"
#include "senseiProfiler.h"

#include <functional>
#include <memory>
#include <string>

namespace newton
{

/// Per-rank run loop with phase timing.
class Driver
{
public:
  /// `comm` may be null (serial); `analysis` may be null (no in situ).
  /// A reference is taken on the analysis.
  Driver(minimpi::Communicator *comm, const Config &config,
         sensei::AnalysisAdaptor *analysis);

  ~Driver();

  Driver(const Driver &) = delete;
  Driver &operator=(const Driver &) = delete;

  /// Initialize the solver and the bridge.
  void Initialize();

  /// Run `nSteps` iterations: solver step + in situ processing each step.
  /// Returns the total virtual seconds elapsed in the loop (including a
  /// final drain of asynchronous in situ work and analysis Finalize).
  double Run(long nSteps);

  /// Average virtual seconds per iteration spent in the solver.
  double MeanSolverSeconds() const;

  /// Average virtual seconds per iteration the simulation observed being
  /// spent in in situ processing (for asynchronous execution this is just
  /// the deep copy + launch, which is why async in situ "looks free").
  double MeanInSituSeconds() const;

  /// Install a callback invoked after every completed iteration (solver
  /// step + in situ submission), with the 0-based step index. This is the
  /// hook the online auto-tuner (tune::OnlineTuner) uses to read per-step
  /// profiler deltas and adapt scheduler knobs between steps. Pass an
  /// empty function to remove it.
  void SetStepHook(std::function<void(long)> hook)
  {
    this->StepHook_ = std::move(hook);
  }

  Solver &GetSolver() { return *this->Solver_; }
  DataAdaptor *GetBridge() { return this->Bridge_; }

private:
  minimpi::Communicator *Comm_ = nullptr;
  Config Config_;
  sensei::AnalysisAdaptor *Analysis_ = nullptr;
  std::unique_ptr<Solver> Solver_;
  DataAdaptor *Bridge_ = nullptr;

  double SolverSeconds_ = 0.0;
  double InSituSeconds_ = 0.0;
  long StepsRun_ = 0;
  std::function<void(long)> StepHook_;
};

} // namespace newton

#endif
