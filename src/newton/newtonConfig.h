#ifndef newtonConfig_h
#define newtonConfig_h

/// @file newtonConfig.h
/// Run configuration for the Newton++ reproduction: a direct n-body
/// simulation with a second order, time reversible, symplectic integration
/// scheme, parallelized with (mini)MPI and OpenMP device offload. Each MPI
/// rank owns a unique spatial subdomain (a slab in x) and integrates the
/// bodies within it; a repartitioning phase migrates bodies that left
/// their subdomain to the correct rank.

#include <cstddef>

namespace newton
{

/// How bodies are initialized.
enum class InitialCondition : int
{
  UniformRandom = 0, ///< uniform in position, mass, velocity, with an
                     ///< optional massive body at the origin (Figure 1)
  Galaxy             ///< disk + bulge sampler standing in for MAGI
};

/// All knobs of a run.
struct Config
{
  std::size_t TotalBodies = 4096; ///< across all ranks
  double G = 1.0;                 ///< gravitational constant
  double Softening = 0.025;      ///< Plummer softening length
  double Dt = 1.0e-3;             ///< time step
  InitialCondition Ic = InitialCondition::UniformRandom;
  unsigned Seed = 42;             ///< RNG seed (per-rank streams derive)
  double BoxSize = 1.0;           ///< domain is [-BoxSize, BoxSize]^3
  double CentralMass = 0.0;       ///< mass of a body pinned at the origin
  double BodyMassMin = 0.5;       ///< uniform IC mass range
  double BodyMassMax = 1.5;
  double VelocityScale = 0.1;     ///< uniform IC velocity range +-scale

  bool Repartition = true;        ///< migrate strays each step
  long RepartitionInterval = 1;

  /// Device placement of the solver: bodies live in OpenMP target memory
  /// on device (localRank % SimDevices); SimDevices = 0 means all devices
  /// on the node; -1 runs the solver on the host.
  int SimDevices = 0;
};

} // namespace newton

#endif
