#include "vomp.h"

#include <cstring>

namespace vomp
{

namespace
{
int &DefaultDevice()
{
  thread_local int device = 0;
  return device;
}
} // namespace

int GetNumDevices()
{
  return vp::Platform::Get().NumDevices();
}

int GetInitialDevice()
{
  return GetNumDevices();
}

void SetDefaultDevice(int device)
{
  if (!IsInitialDevice(device))
    vp::Platform::Get().CheckDevice(device);
  DefaultDevice() = device;
}

int GetDefaultDevice()
{
  return DefaultDevice();
}

bool IsInitialDevice(int device)
{
  return device >= GetNumDevices() || device < 0;
}

void *TargetAlloc(std::size_t bytes, int device)
{
  vp::Platform &plat = vp::Platform::Get();
  if (IsInitialDevice(device))
    return plat.Allocate(vp::MemSpace::Host, vp::HostDevice, bytes,
                         vp::PmKind::OpenMP);
  return plat.Allocate(vp::MemSpace::Device, device, bytes,
                       vp::PmKind::OpenMP);
}

void TargetFree(void *p, int /*device*/)
{
  vp::Platform::Get().Free(p);
}

int TargetMemcpy(void *dst, const void *src, std::size_t bytes,
                 std::size_t dstOffset, std::size_t srcOffset, int /*dstDevice*/,
                 int /*srcDevice*/)
{
  // device ids are implied by the pointers themselves in the simulation;
  // the registry classifies the transfer.
  char *d = static_cast<char *>(dst) + dstOffset;
  const char *s = static_cast<const char *>(src) + srcOffset;
  vp::Platform::Get().Copy(d, s, bytes);
  return 0;
}

void TargetParallelFor(int device, std::size_t n, const vp::KernelFn &fn,
                       const TargetBounds &bounds)
{
  vp::Platform &plat = vp::Platform::Get();

  vp::KernelDesc desc;
  desc.N = n;
  desc.OpsPerElement = bounds.OpsPerElement;
  desc.AtomicFraction = bounds.AtomicFraction;
  desc.Name = bounds.Name;
  desc.Shardable = bounds.Shardable;

  if (IsInitialDevice(device))
  {
    plat.HostParallelFor(desc, fn, bounds.Width);
    return;
  }
  plat.LaunchKernel(plat.DefaultStream(device), desc, fn,
                    /*synchronous=*/true);
}

void TargetParallelForNowait(int device, std::size_t n, const vp::KernelFn &fn,
                             const TargetBounds &bounds)
{
  vp::Platform &plat = vp::Platform::Get();

  vp::KernelDesc desc;
  desc.N = n;
  desc.OpsPerElement = bounds.OpsPerElement;
  desc.AtomicFraction = bounds.AtomicFraction;
  desc.Name = bounds.Name;
  desc.Shardable = bounds.Shardable;

  if (IsInitialDevice(device))
  {
    plat.HostParallelFor(desc, fn, bounds.Width);
    return;
  }
  plat.LaunchKernel(plat.DefaultStream(device), desc, fn,
                    /*synchronous=*/false);
}

void TargetTaskwait(int device)
{
  vp::Platform &plat = vp::Platform::Get();
  if (IsInitialDevice(device))
    return;
  plat.StreamSynchronize(plat.DefaultStream(device));
}

void ParallelFor(std::size_t n, const vp::KernelFn &fn,
                 const TargetBounds &bounds)
{
  vp::KernelDesc desc;
  desc.N = n;
  desc.OpsPerElement = bounds.OpsPerElement;
  desc.AtomicFraction = bounds.AtomicFraction;
  desc.Name = bounds.Name;
  desc.Shardable = bounds.Shardable;
  vp::Platform::Get().HostParallelFor(desc, fn, bounds.Width);
}

} // namespace vomp
