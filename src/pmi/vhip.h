#ifndef vhip_h
#define vhip_h

/// @file vhip.h
/// HIP-style programming-model front end. SENSEI supports "OpenMP
/// offload, CUDA, and HIP allocators" (paper Section 2); on AMD hardware
/// the HIP runtime is API-compatible with the CUDA runtime, and this
/// front end mirrors that relationship: the same operations as vcuda over
/// the same virtual platform, with a distinct per-thread current device
/// and allocations tagged PmKind::Hip so the data model can tell which PM
/// owns a block.

#include "vpPlatform.h"
#include "vpStream.h"
#include "vpTypes.h"

#include <cstddef>
#include <functional>

namespace vhip
{

/// Stream handle (aliases vp::Stream, like hipStream_t).
using stream_t = vp::Stream;

/// Number of devices on the calling thread's node.
int GetDeviceCount();

/// Set / get the calling thread's current HIP device.
void SetDevice(int device);
int GetDevice();

/// Device memory on the current device (hipMalloc).
void *Malloc(std::size_t bytes);

/// Stream-ordered allocation (hipMallocAsync).
void *MallocAsync(std::size_t bytes, const stream_t &stream);

/// Page-locked host memory (hipHostMalloc).
void *MallocHost(std::size_t bytes);

/// Managed memory (hipMallocManaged).
void *MallocManaged(std::size_t bytes);

/// Free any of the above; nullptr is a no-op.
void Free(void *p);

/// Create / synchronize streams on the current device.
stream_t StreamCreate();
void StreamSynchronize(const stream_t &stream);
void DeviceSynchronize();

/// Memory copies, direction inferred (hipMemcpyDefault semantics).
void MemcpyAsync(void *dst, const void *src, std::size_t bytes,
                 const stream_t &stream);
void Memcpy(void *dst, const void *src, std::size_t bytes);

/// Execution-cost hints for a launch.
struct LaunchBounds
{
  double OpsPerElement = 1.0;
  double AtomicFraction = 0.0;
  const char *Name = "vhip_kernel";
};

/// Launch an n-index kernel on the current device (replaces
/// hipLaunchKernelGGL).
void LaunchN(const stream_t &stream, std::size_t n, const vp::KernelFn &fn,
             const LaunchBounds &bounds = LaunchBounds());

} // namespace vhip

#endif
