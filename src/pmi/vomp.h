#ifndef vomp_h
#define vomp_h

/// @file vomp.h
/// OpenMP-target-offload style programming-model front end over the virtual
/// platform. Mirrors the OpenMP 5.x device API: omp_get_num_devices,
/// omp_set_default_device, omp_target_alloc/free/memcpy plus a
/// `TargetParallelFor` that stands in for
/// `#pragma omp target teams distribute parallel for`. The paper's
/// Listing 1 maps line for line onto this interface. Host execution is
/// addressed by the initial-device id (== GetNumDevices()), matching the
/// OpenMP convention.

#include "vpPlatform.h"
#include "vpTypes.h"

#include <cstddef>

namespace vomp
{

/// Number of target devices on the calling thread's node.
int GetNumDevices();

/// The id OpenMP assigns to the host ("initial device").
int GetInitialDevice();

/// Set the calling thread's default device.
void SetDefaultDevice(int device);

/// The calling thread's default device.
int GetDefaultDevice();

/// True when `device` addresses the host.
bool IsInitialDevice(int device);

/// Allocate on `device` (omp_target_alloc). Passing the initial-device id
/// yields pageable host memory, as OpenMP specifies.
void *TargetAlloc(std::size_t bytes, int device);

/// Free memory from TargetAlloc (omp_target_free).
void TargetFree(void *p, int device);

/// omp_target_memcpy: copy `bytes` from src+srcOffset on srcDevice to
/// dst+dstOffset on dstDevice. Synchronous. Returns 0 on success.
int TargetMemcpy(void *dst, const void *src, std::size_t bytes,
                 std::size_t dstOffset, std::size_t srcOffset, int dstDevice,
                 int srcDevice);

/// Execution-cost hints for a target region.
struct TargetBounds
{
  double OpsPerElement = 1.0;
  double AtomicFraction = 0.0;
  const char *Name = "vomp_target";
  bool Shardable = false; ///< body may run as concurrent [b,e) chunks
  int Width = 0;          ///< host lanes to occupy (num_threads); 0 = all
};

/// `#pragma omp target teams distribute parallel for device(device)`.
/// Synchronous (like an OpenMP target region without nowait): the calling
/// thread's virtual clock advances to kernel completion. When `device` is
/// the initial device the region runs on the host core pool instead.
void TargetParallelFor(int device, std::size_t n, const vp::KernelFn &fn,
                       const TargetBounds &bounds = TargetBounds());

/// Target region with `nowait` semantics, ordered by the device default
/// stream; pair with TargetTaskwait.
void TargetParallelForNowait(int device, std::size_t n, const vp::KernelFn &fn,
                             const TargetBounds &bounds = TargetBounds());

/// `#pragma omp taskwait` for nowait target regions issued to `device`.
void TargetTaskwait(int device);

/// Host `#pragma omp parallel for` over the node core pool (synchronous).
void ParallelFor(std::size_t n, const vp::KernelFn &fn,
                 const TargetBounds &bounds = TargetBounds());

} // namespace vomp

#endif
