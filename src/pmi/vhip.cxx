#include "vhip.h"

#include "vpMemoryPool.h"

namespace vhip
{

namespace
{
int &CurrentDevice()
{
  thread_local int device = 0;
  return device;
}
} // namespace

int GetDeviceCount()
{
  return vp::Platform::Get().NumDevices();
}

void SetDevice(int device)
{
  vp::Platform::Get().CheckDevice(device);
  CurrentDevice() = device;
}

int GetDevice()
{
  return CurrentDevice();
}

void *Malloc(std::size_t bytes)
{
  return vp::Platform::Get().Allocate(vp::MemSpace::Device, CurrentDevice(),
                                      bytes, vp::PmKind::Hip);
}

void *MallocAsync(std::size_t bytes, const stream_t &stream)
{
  vp::Platform &plat = vp::Platform::Get();
  const int dev = stream ? stream.Get()->Device : CurrentDevice();
  const stream_t &s = stream ? stream : plat.DefaultStream(dev);
  // stream-ordered allocations draw from the device's memory pool when
  // pooling is on (hipMallocAsync semantics)
  if (vp::PoolManager::Enabled())
    return vp::PoolManager::Get().Allocate(vp::MemSpace::Device, dev, bytes,
                                           vp::PmKind::Hip, s);
  return plat.Allocate(vp::MemSpace::Device, dev, bytes, vp::PmKind::Hip, s);
}

void *MallocHost(std::size_t bytes)
{
  return vp::Platform::Get().Allocate(vp::MemSpace::HostPinned,
                                      vp::HostDevice, bytes, vp::PmKind::Hip);
}

void *MallocManaged(std::size_t bytes)
{
  return vp::Platform::Get().Allocate(vp::MemSpace::Managed, CurrentDevice(),
                                      bytes, vp::PmKind::Hip);
}

void Free(void *p)
{
  if (p && vp::PoolManager::Get().Owns(p))
  {
    vp::PoolManager::Get().Deallocate(p);
    return;
  }
  vp::Platform::Get().Free(p);
}

stream_t StreamCreate()
{
  return vp::Stream::New(vp::Platform::GetThisNode(), CurrentDevice());
}

void StreamSynchronize(const stream_t &stream)
{
  vp::Platform::Get().StreamSynchronize(stream);
}

void DeviceSynchronize()
{
  vp::Platform::Get().DeviceSynchronize(CurrentDevice());
}

void MemcpyAsync(void *dst, const void *src, std::size_t bytes,
                 const stream_t &stream)
{
  vp::Platform &plat = vp::Platform::Get();
  plat.CopyAsync(stream ? stream : plat.DefaultStream(CurrentDevice()), dst,
                 src, bytes);
}

void Memcpy(void *dst, const void *src, std::size_t bytes)
{
  vp::Platform::Get().Copy(dst, src, bytes);
}

void LaunchN(const stream_t &stream, std::size_t n, const vp::KernelFn &fn,
             const LaunchBounds &bounds)
{
  vp::Platform &plat = vp::Platform::Get();

  vp::KernelDesc desc;
  desc.N = n;
  desc.OpsPerElement = bounds.OpsPerElement;
  desc.AtomicFraction = bounds.AtomicFraction;
  desc.Name = bounds.Name;

  plat.LaunchKernel(stream ? stream : plat.DefaultStream(CurrentDevice()),
                    desc, fn, /*synchronous=*/false);
}

} // namespace vhip
