#include "vcuda.h"

#include "execEngine.h"
#include "vpCaptureSink.h"
#include "vpChecker.h"
#include "vpFaultInjector.h"
#include "vpMemoryPool.h"

namespace vcuda
{

namespace
{
int &CurrentDevice()
{
  thread_local int device = 0;
  return device;
}
} // namespace

int GetDeviceCount()
{
  return vp::Platform::Get().NumDevices();
}

void SetDevice(int device)
{
  vp::Platform::Get().CheckDevice(device);
  CurrentDevice() = device;
}

int GetDevice()
{
  return CurrentDevice();
}

void *Malloc(std::size_t bytes)
{
  return vp::Platform::Get().Allocate(vp::MemSpace::Device, CurrentDevice(),
                                      bytes, vp::PmKind::Cuda);
}

void *MallocAsync(std::size_t bytes, const stream_t &stream)
{
  vp::Platform &plat = vp::Platform::Get();
  const int dev = stream ? stream.Get()->Device : CurrentDevice();
  const stream_t &s = stream ? stream : plat.DefaultStream(dev);
  // stream-ordered allocations draw from the device's memory pool when
  // pooling is on (cudaMallocAsync semantics)
  if (vp::PoolManager::Enabled())
    return vp::PoolManager::Get().Allocate(vp::MemSpace::Device, dev, bytes,
                                           vp::PmKind::Cuda, s);
  return plat.Allocate(vp::MemSpace::Device, dev, bytes, vp::PmKind::Cuda, s);
}

void *MallocHost(std::size_t bytes)
{
  return vp::Platform::Get().Allocate(vp::MemSpace::HostPinned,
                                      vp::HostDevice, bytes, vp::PmKind::Cuda);
}

void *MallocManaged(std::size_t bytes)
{
  return vp::Platform::Get().Allocate(vp::MemSpace::Managed, CurrentDevice(),
                                      bytes, vp::PmKind::Cuda);
}

void Free(void *p)
{
  // pool-managed blocks go back to their pool (reusable at the calling
  // thread's current virtual time); everything else frees directly
  if (p && vp::PoolManager::Get().Owns(p))
  {
    vp::PoolManager::Get().Deallocate(p);
    return;
  }
  vp::Platform::Get().Free(p);
}

void FreeAsync(void *p, const stream_t &stream)
{
  if (p && vp::PoolManager::Get().Owns(p))
  {
    vp::PoolManager::Get().Deallocate(p, stream);
    return;
  }
  vp::Platform &plat = vp::Platform::Get();
  if (stream)
    stream.Get()->Extend(vp::ThisClock().Now() +
                         plat.Config().Cost.AsyncAllocLatency);
  plat.Free(p);
}

stream_t StreamCreate()
{
  return vp::Stream::New(vp::Platform::GetThisNode(), CurrentDevice());
}

void StreamDestroy(stream_t &stream)
{
  stream = stream_t();
}

void StreamSynchronize(const stream_t &stream)
{
  vp::Platform::Get().StreamSynchronize(stream);
}

void DeviceSynchronize()
{
  vp::Platform::Get().DeviceSynchronize(CurrentDevice());
}

void MemcpyAsync(void *dst, const void *src, std::size_t bytes,
                 const stream_t &stream)
{
  vp::Platform &plat = vp::Platform::Get();
  plat.CopyAsync(stream ? stream : plat.DefaultStream(CurrentDevice()), dst,
                 src, bytes);
}

void Memcpy(void *dst, const void *src, std::size_t bytes)
{
  vp::Platform::Get().Copy(dst, src, bytes);
}

void LaunchN(const stream_t &stream, std::size_t n, const vp::KernelFn &fn,
             const LaunchBounds &bounds)
{
  vp::Platform &plat = vp::Platform::Get();

  vp::KernelDesc desc;
  desc.N = n;
  desc.OpsPerElement = bounds.OpsPerElement;
  desc.AtomicFraction = bounds.AtomicFraction;
  desc.Name = bounds.Name;
  desc.Shardable = bounds.Shardable;
  desc.FuseKey = bounds.FuseKey;

  plat.LaunchKernel(stream ? stream : plat.DefaultStream(CurrentDevice()),
                    desc, fn, /*synchronous=*/false);
}

void LaunchGrid(const stream_t &stream, std::size_t blocks,
                std::size_t threadsPerBlock, std::size_t n,
                const std::function<void(std::size_t)> &fn,
                const LaunchBounds &bounds)
{
  const std::size_t total = blocks * threadsPerBlock;
  const std::size_t limit = total < n ? total : n;
  // capture by value: under VP_EXEC=threads the body may outlive this
  // call frame (it runs on a device worker queue)
  LaunchN(
    stream, limit,
    [fn](std::size_t begin, std::size_t end)
    {
      for (std::size_t i = begin; i < end; ++i)
        fn(i);
    },
    bounds);
}

event_t EventRecord(const stream_t &stream)
{
  event_t ev;
  if (stream)
  {
    // an injected dropped signal: the event reads "already complete" and
    // carries no ordering edge — waiters proceed without synchronizing
    if (vp::fault::ShouldDropEvent())
      return ev;
    // under step-graph capture/replay the event is identified by a
    // capture id; an absorbed record carries only the id (ordering is
    // realized when the sink flushes)
    if (vp::CaptureSink *sink = vp::GetCaptureSink())
    {
      ev.CaptureId_ = vp::NextCaptureEventId();
      if (sink->OnEventRecord(stream, ev.CaptureId_))
        return ev;
    }
    vp::StreamState *s = stream.Get();
    {
      std::lock_guard<std::mutex> lock(s->Mutex);
      ev.Time_ = s->Last;
      // capture the real frontier too so cross-stream waiters order
      // their deferred bodies after the recorded work (threads mode)
      ev.Fences_ = s->RealFrontier;
    }
    ev.Token_ = vp::check::OnEventRecord(s);
  }
  return ev;
}

void StreamWaitEvent(const stream_t &stream, const event_t &event)
{
  if (stream)
  {
    if (event.CaptureId_)
      if (vp::CaptureSink *sink = vp::GetCaptureSink())
        if (sink->OnStreamWaitEvent(stream, event.CaptureId_))
          return;
    vp::StreamState *s = stream.Get();
    {
      std::lock_guard<std::mutex> lock(s->Mutex);
      s->Last = std::max(s->Last, event.Time_);
      for (const auto &f : event.Fences_)
        s->RealFrontier.push_back(f);
    }
    vp::check::OnStreamWaitEvent(s, event.Token_);
  }
}

void EventSynchronize(const event_t &event)
{
  // an absorbed event's completion time only exists inside the sink's
  // replayed timeline — flush pending work and advance the thread clock
  // there; the eager fallthrough below is then a no-op (Time_ == 0)
  if (event.CaptureId_)
    if (vp::CaptureSink *sink = vp::GetCaptureSink())
      sink->BeforeEventSync(event.CaptureId_);
  for (const auto &f : event.Fences_)
    if (f)
      f->Wait();
  vp::ThisClock().AdvanceTo(event.Time_);
  vp::check::OnEventSync(event.Token_);
}

} // namespace vcuda
