#include "vkokkos.h"

namespace vkokkos
{

namespace
{
int &DefaultDevice()
{
  thread_local int device = 0;
  return device;
}
} // namespace

void SetDefaultDevice(int device)
{
  vp::Platform::Get().CheckDevice(device);
  DefaultDevice() = device;
}

int GetDefaultDevice()
{
  return DefaultDevice();
}

void parallel_for(const RangePolicy &policy,
                  const std::function<void(std::size_t)> &fn,
                  const KernelBounds &bounds)
{
  if (policy.End <= policy.Begin)
    return;
  const std::size_t n = policy.End - policy.Begin;
  const std::size_t begin = policy.Begin;

  vp::KernelDesc desc;
  desc.N = n;
  desc.OpsPerElement = bounds.OpsPerElement;
  desc.AtomicFraction = bounds.AtomicFraction;
  desc.Name = bounds.Name;

  // capture the functor by value: the asynchronous device launch below
  // may defer the body past this frame under VP_EXEC=threads
  const auto body = [begin, fn](std::size_t b, std::size_t e)
  {
    for (std::size_t i = b; i < e; ++i)
      fn(begin + i);
  };

  vp::Platform &plat = vp::Platform::Get();
  if (policy.ExecSpace == Space::Host)
  {
    plat.HostParallelFor(desc, body);
    return;
  }
  plat.LaunchKernel(plat.DefaultStream(DefaultDevice()), desc, body,
                    /*synchronous=*/false);
}

void parallel_reduce(const RangePolicy &policy,
                     const std::function<void(std::size_t, double &)> &fn,
                     double &result,
                     const KernelBounds &bounds)
{
  result = 0.0;
  if (policy.End <= policy.Begin)
    return;
  const std::size_t n = policy.End - policy.Begin;
  const std::size_t begin = policy.Begin;

  vp::KernelDesc desc;
  desc.N = n;
  desc.OpsPerElement = bounds.OpsPerElement + 1.0; // the reduction op
  desc.AtomicFraction = bounds.AtomicFraction;
  desc.Name = bounds.Name;

  double acc = 0.0;
  const auto body = [begin, &fn, &acc](std::size_t b, std::size_t e)
  {
    for (std::size_t i = b; i < e; ++i)
      fn(begin + i, acc);
  };

  vp::Platform &plat = vp::Platform::Get();
  if (policy.ExecSpace == Space::Host)
  {
    plat.HostParallelFor(desc, body);
  }
  else
  {
    // a scalar-result reduce is synchronous in Kokkos too
    plat.LaunchKernel(plat.DefaultStream(DefaultDevice()), desc, body,
                      /*synchronous=*/true);
  }
  result = acc;
}

void fence()
{
  vp::Platform::Get().DeviceSynchronize(DefaultDevice());
}

} // namespace vkokkos
