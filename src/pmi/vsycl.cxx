#include "vsycl.h"

namespace vsycl
{

namespace
{
int &DefaultDevice()
{
  thread_local int device = 0;
  return device;
}
} // namespace

int NumDevices()
{
  return vp::Platform::Get().NumDevices();
}

void SetDefaultDevice(int device)
{
  vp::Platform::Get().CheckDevice(device);
  DefaultDevice() = device;
}

int GetDefaultDevice()
{
  return DefaultDevice();
}

queue::queue() : queue(DefaultDevice())
{
}

queue::queue(int device) : Device_(device)
{
  vp::Platform::Get().CheckDevice(device);
  this->Stream_ = vp::Stream::New(vp::Platform::GetThisNode(), device);
}

void *queue::malloc_device(std::size_t bytes) const
{
  return vp::Platform::Get().Allocate(vp::MemSpace::Device, this->Device_,
                                      bytes, vp::PmKind::Sycl, this->Stream_);
}

void *queue::malloc_shared(std::size_t bytes) const
{
  return vp::Platform::Get().Allocate(vp::MemSpace::Managed, this->Device_,
                                      bytes, vp::PmKind::Sycl);
}

void *queue::malloc_host(std::size_t bytes) const
{
  return vp::Platform::Get().Allocate(vp::MemSpace::HostPinned,
                                      vp::HostDevice, bytes,
                                      vp::PmKind::Sycl);
}

void queue::free(void *p) const
{
  vp::Platform::Get().Free(p);
}

void queue::memcpy(void *dst, const void *src, std::size_t bytes) const
{
  vp::Platform::Get().CopyAsync(this->Stream_, dst, src, bytes);
}

void queue::parallel_for(std::size_t n, const vp::KernelFn &fn,
                         const KernelBounds &bounds) const
{
  vp::KernelDesc desc;
  desc.N = n;
  desc.OpsPerElement = bounds.OpsPerElement;
  desc.AtomicFraction = bounds.AtomicFraction;
  desc.Name = bounds.Name;
  vp::Platform::Get().LaunchKernel(this->Stream_, desc, fn,
                                   /*synchronous=*/false);
}

void queue::wait() const
{
  vp::Platform::Get().StreamSynchronize(this->Stream_);
}

} // namespace vsycl
