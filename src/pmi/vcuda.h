#ifndef vcuda_h
#define vcuda_h

/// @file vcuda.h
/// CUDA-style programming-model front end over the virtual platform. The
/// API mirrors the CUDA runtime closely enough that the paper's Listing 3
/// maps line for line: per-thread current device, streams, synchronous and
/// stream-ordered allocation, pinned and managed host memory, async
/// copies, and grid/block kernel launches. Errors surface as vp::Error.

#include "vpPlatform.h"
#include "vpStream.h"
#include "vpTypes.h"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace vcuda
{

/// Stream handle (value semantics, aliases vp::Stream).
using stream_t = vp::Stream;

/// Number of devices on the calling thread's node.
int GetDeviceCount();

/// Set the calling thread's current device.
void SetDevice(int device);

/// The calling thread's current device (default 0).
int GetDevice();

/// Allocate device memory on the current device (synchronous).
void *Malloc(std::size_t bytes);

/// Stream-ordered allocation on the stream's device.
void *MallocAsync(std::size_t bytes, const stream_t &stream);

/// Allocate page-locked host memory.
void *MallocHost(std::size_t bytes);

/// Allocate managed (unified) memory addressable everywhere, homed on the
/// current device.
void *MallocManaged(std::size_t bytes);

/// Free memory from any of the Malloc variants. nullptr is a no-op.
void Free(void *p);

/// Stream-ordered free (the simulation frees immediately but charges the
/// stream-ordered cost).
void FreeAsync(void *p, const stream_t &stream);

/// Create a stream on the current device.
stream_t StreamCreate();

/// Destroy a stream (drops this handle; outstanding handles stay valid).
void StreamDestroy(stream_t &stream);

/// Block the calling thread until all work in the stream completes.
void StreamSynchronize(const stream_t &stream);

/// Block until all work on the current device completes.
void DeviceSynchronize();

/// Asynchronous memory copy ordered by `stream`. Direction is inferred
/// (cudaMemcpyDefault semantics).
void MemcpyAsync(void *dst, const void *src, std::size_t bytes,
                 const stream_t &stream);

/// Synchronous memory copy, direction inferred.
void Memcpy(void *dst, const void *src, std::size_t bytes);

/// Describes the execution cost of a launch for the virtual clock.
struct LaunchBounds
{
  double OpsPerElement = 1.0;  ///< elementary ops per index
  double AtomicFraction = 0.0; ///< fraction of atomic-bound work
  const char *Name = "vcuda_kernel";
  bool Shardable = false;      ///< body may run as concurrent [b,e) chunks

  /// Fusion opt-in for captured step-graph replay; see
  /// vp::KernelDesc::FuseKey. Null (the default) never fuses.
  const void *FuseKey = nullptr;
};

/// Launch an n-index kernel on the current device in `stream`. The body is
/// invoked eagerly as fn(begin, end) over [0, n). This replaces CUDA's
/// <<<blocks, threads, 0, stream>>> syntax.
void LaunchN(const stream_t &stream, std::size_t n, const vp::KernelFn &fn,
             const LaunchBounds &bounds = LaunchBounds());

/// Grid/block flavoured launch: fn(i) is invoked for every global thread
/// index i in [0, blocks*threadsPerBlock) that is < n. Provided so ported
/// CUDA kernels keep their launch arithmetic.
void LaunchGrid(const stream_t &stream, std::size_t blocks,
                std::size_t threadsPerBlock, std::size_t n,
                const std::function<void(std::size_t)> &fn,
                const LaunchBounds &bounds = LaunchBounds());

/// An event marks a point in a stream's work (cudaEvent_t). Value
/// semantics; a default-constructed event is "already complete".
class event_t
{
public:
  /// Virtual time at which the recorded work completes (0 = complete).
  double Completion() const noexcept { return this->Time_; }

private:
  friend event_t EventRecord(const stream_t &);
  friend void StreamWaitEvent(const stream_t &, const event_t &);
  friend void EventSynchronize(const event_t &);
  double Time_ = 0.0;
  std::uint64_t Token_ = 0; ///< checker happens-before token (0 = none)
  /// Capture identity while a vp::CaptureSink is installed (0 = none):
  /// lets step-graph capture/replay recognize this event at
  /// StreamWaitEvent/EventSynchronize. An absorbed (replayed) record
  /// carries only this id; Time_/Fences_ stay empty and ordering is
  /// realized when the sink flushes.
  std::uint64_t CaptureId_ = 0;
  /// Real-execution edge (VP_EXEC=threads): the recorded stream's
  /// frontier fences at record time; empty in serial mode.
  std::vector<std::shared_ptr<vp::exec::Fence>> Fences_;
};

/// Record an event capturing all work submitted to `stream` so far
/// (cudaEventRecord).
event_t EventRecord(const stream_t &stream);

/// Make future work on `stream` wait until the event's recorded work has
/// completed (cudaStreamWaitEvent) — the cross-stream, cross-device
/// ordering primitive.
void StreamWaitEvent(const stream_t &stream, const event_t &event);

/// Block the calling thread until the event's work completes
/// (cudaEventSynchronize).
void EventSynchronize(const event_t &event);

} // namespace vcuda

#endif
