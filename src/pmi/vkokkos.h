#ifndef vkokkos_h
#define vkokkos_h

/// @file vkokkos.h
/// Kokkos-style programming-model front end — the paper's future work
/// names "third party PMs such as Kokkos" alongside SYCL; this implements
/// the Kokkos idioms the data model must interoperate with: execution /
/// memory spaces, `View<T*>` (a typed, labeled, space-tagged allocation),
/// `parallel_for` / `parallel_reduce` over a range policy, `deep_copy`
/// between views, and `fence`. Device views are backed by platform
/// allocations tagged with the owning device, so svtkHAMRDataArray
/// zero-copy adopts them and serves them to any other PM.

#include "vpPlatform.h"
#include "vpStream.h"
#include "vpTypes.h"

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

namespace vkokkos
{

/// Where a view's data lives / where a policy executes.
enum class Space : int
{
  Host = 0, ///< Kokkos::HostSpace / Kokkos::Serial+Threads
  Device    ///< Kokkos::CudaSpace-like, on the thread's default device
};

/// Set / get the device that Space::Device maps to on this thread
/// (Kokkos::initialize device selection).
void SetDefaultDevice(int device);
int GetDefaultDevice();

/// Execution-cost hints for parallel dispatch.
struct KernelBounds
{
  double OpsPerElement = 1.0;
  double AtomicFraction = 0.0;
  const char *Name = "vkokkos_kernel";
};

/// A one-dimensional typed view: shared ownership of a labeled, space
/// tagged allocation (Kokkos::View<T*, MemorySpace>).
template <typename T>
class View
{
public:
  View() = default;

  /// Allocate `n` zero-initialized elements in `space`.
  View(std::string label, std::size_t n, Space space = Space::Device)
    : Label_(std::move(label)), Size_(n), Space_(space)
  {
    vp::Platform &plat = vp::Platform::Get();
    const int dev = space == Space::Device ? GetDefaultDevice() : vp::HostDevice;
    this->Device_ = dev;
    T *p = static_cast<T *>(plat.Allocate(
      space == Space::Device ? vp::MemSpace::Device : vp::MemSpace::Host,
      dev, n * sizeof(T), vp::PmKind::None));
    this->Data_ = std::shared_ptr<T>(p, [](T *q) { vp::Platform::Get().Free(q); });
  }

  const std::string &label() const noexcept { return this->Label_; }
  std::size_t size() const noexcept { return this->Size_; }
  Space space() const noexcept { return this->Space_; }

  /// Device id the data lives on (vp::HostDevice for host views).
  int device() const noexcept { return this->Device_; }

  /// Raw data (valid in the view's space).
  T *data() const noexcept { return this->Data_.get(); }

  /// Element access — host views only (mirrors Kokkos' host access rules
  /// in the sense that device data should be reached through kernels).
  T &operator()(std::size_t i) const { return this->Data_.get()[i]; }

  /// The shared ownership handle (zero-copy hand-off to the data model).
  const std::shared_ptr<T> &pointer() const noexcept { return this->Data_; }

  explicit operator bool() const noexcept { return static_cast<bool>(this->Data_); }

private:
  std::string Label_;
  std::shared_ptr<T> Data_;
  std::size_t Size_ = 0;
  Space Space_ = Space::Device;
  int Device_ = vp::HostDevice;
};

/// Kokkos::RangePolicy over [begin, end) in a space.
struct RangePolicy
{
  std::size_t Begin = 0;
  std::size_t End = 0;
  Space ExecSpace = Space::Device;

  RangePolicy(std::size_t b, std::size_t e, Space s = Space::Device)
    : Begin(b), End(e), ExecSpace(s)
  {
  }
};

/// parallel_for: fn(i) for i in the policy's range, asynchronously on the
/// device (fence() to wait) or synchronously on the host pool.
void parallel_for(const RangePolicy &policy,
                  const std::function<void(std::size_t)> &fn,
                  const KernelBounds &bounds = KernelBounds());

/// parallel_reduce with a sum reduction: fn(i, acc). Synchronous (the
/// reduction result is needed by the caller), like Kokkos with a scalar
/// result argument.
void parallel_reduce(const RangePolicy &policy,
                     const std::function<void(std::size_t, double &)> &fn,
                     double &result,
                     const KernelBounds &bounds = KernelBounds());

/// Block the calling thread until all device work completes
/// (Kokkos::fence).
void fence();

/// deep_copy between views of any spaces (sizes must match).
template <typename T>
void deep_copy(const View<T> &dst, const View<T> &src)
{
  if (dst.size() != src.size())
    throw vp::Error("vkokkos::deep_copy: size mismatch");
  if (!dst.size())
    return;
  vp::Platform::Get().Copy(dst.data(), src.data(), dst.size() * sizeof(T));
}

/// deep_copy from a scalar: fill (Kokkos::deep_copy(view, value)).
template <typename T>
void deep_copy(const View<T> &dst, const T &value)
{
  T *p = dst.data();
  const std::size_t n = dst.size();
  parallel_for(RangePolicy(0, n,
                           dst.device() == vp::HostDevice ? Space::Host
                                                          : Space::Device),
               [p, value](std::size_t i) { p[i] = value; },
               KernelBounds{1.0, 0.0, "vkokkos_fill"});
  fence();
}

} // namespace vkokkos

#endif
