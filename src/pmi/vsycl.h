#ifndef vsycl_h
#define vsycl_h

/// @file vsycl.h
/// SYCL-style programming-model front end over the virtual platform —
/// the paper's stated future work ("We will also add support for SYCL"),
/// implemented here. Mirrors the SYCL 2020 USM interface: in-order
/// queues bound to a device, malloc_device / malloc_shared / malloc_host,
/// queue-ordered memcpy and parallel_for, and queue::wait(). Allocations
/// are tagged PmKind::Sycl, so the data model recognizes cross-PM access
/// and serves it zero-copy on the owning device.

#include "vpPlatform.h"
#include "vpStream.h"
#include "vpTypes.h"

#include <cstddef>
#include <functional>

namespace vsycl
{

/// Number of (non-host) devices visible to SYCL on this node.
int NumDevices();

/// Set / get the device a default-constructed queue binds to (the
/// "default selector" of this thread).
void SetDefaultDevice(int device);
int GetDefaultDevice();

/// Execution-cost hints for a parallel_for.
struct KernelBounds
{
  double OpsPerElement = 1.0;
  double AtomicFraction = 0.0;
  const char *Name = "vsycl_kernel";
};

/// An in-order SYCL queue bound to one device. Value semantics: copies
/// alias the same underlying stream, like sycl::queue.
class queue
{
public:
  /// Bind to the thread's default device.
  queue();

  /// Bind to an explicit device (gpu_selector with an index).
  explicit queue(int device);

  /// The device this queue targets.
  int get_device() const { return this->Device_; }

  /// USM device allocation, homed on this queue's device.
  void *malloc_device(std::size_t bytes) const;

  /// USM shared (managed) allocation, addressable everywhere.
  void *malloc_shared(std::size_t bytes) const;

  /// USM host (page-locked) allocation.
  void *malloc_host(std::size_t bytes) const;

  /// Free any USM allocation (sycl::free(ptr, q)).
  void free(void *p) const;

  /// Queue-ordered copy, direction inferred from the pointers.
  void memcpy(void *dst, const void *src, std::size_t bytes) const;

  /// Queue-ordered kernel over [0, n); body invoked as fn(begin, end).
  void parallel_for(std::size_t n, const vp::KernelFn &fn,
                    const KernelBounds &bounds = KernelBounds()) const;

  /// Block until all work submitted to this queue has completed.
  void wait() const;

  /// The native stream (interoperability with svtkStream).
  vp::Stream native() const { return this->Stream_; }

private:
  int Device_ = 0;
  vp::Stream Stream_;
};

} // namespace vsycl

#endif
