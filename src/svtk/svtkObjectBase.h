#ifndef svtkObjectBase_h
#define svtkObjectBase_h

/// @file svtkObjectBase.h
/// Root of the SENSEI data-model class hierarchy: intrusive reference
/// counting with the VTK New/Delete/Register/UnRegister protocol. Objects
/// are created with a refcount of 1 by their static New() and destroyed
/// when the count drops to zero.

#include <atomic>
#include <string>

/// Base class providing intrusive reference counting.
class svtkObjectBase
{
public:
  svtkObjectBase(const svtkObjectBase &) = delete;
  svtkObjectBase &operator=(const svtkObjectBase &) = delete;

  /// Increase the reference count (take a shared hold on the object).
  void Register() const { ++this->ReferenceCount_; }

  /// Decrease the reference count; deletes the object at zero.
  void UnRegister() const
  {
    if (--this->ReferenceCount_ == 0)
      delete this;
  }

  /// Alias of UnRegister, matching VTK user-facing convention.
  void Delete() const { this->UnRegister(); }

  /// Current reference count (diagnostics and tests).
  int GetReferenceCount() const { return this->ReferenceCount_.load(); }

  /// The concrete class name (diagnostics).
  virtual const char *GetClassName() const { return "svtkObjectBase"; }

protected:
  svtkObjectBase() = default;
  virtual ~svtkObjectBase() = default;

private:
  mutable std::atomic<int> ReferenceCount_{1};
};

/// RAII holder for svtk objects: takes one reference on acquisition and
/// releases it on destruction. Use to write leak-free code against the
/// New/Delete API without manual UnRegister calls.
template <typename T>
class svtkSmartPtr
{
public:
  svtkSmartPtr() = default;

  /// Adopt a New()-returned pointer (takes over its initial reference).
  static svtkSmartPtr Take(T *p)
  {
    svtkSmartPtr s;
    s.Ptr_ = p;
    return s;
  }

  /// Share an existing pointer (increments the reference count).
  explicit svtkSmartPtr(T *p) : Ptr_(p)
  {
    if (this->Ptr_)
      this->Ptr_->Register();
  }

  svtkSmartPtr(const svtkSmartPtr &o) : Ptr_(o.Ptr_)
  {
    if (this->Ptr_)
      this->Ptr_->Register();
  }

  svtkSmartPtr(svtkSmartPtr &&o) noexcept : Ptr_(o.Ptr_) { o.Ptr_ = nullptr; }

  svtkSmartPtr &operator=(const svtkSmartPtr &o)
  {
    if (this != &o)
    {
      svtkSmartPtr tmp(o);
      std::swap(this->Ptr_, tmp.Ptr_);
    }
    return *this;
  }

  svtkSmartPtr &operator=(svtkSmartPtr &&o) noexcept
  {
    std::swap(this->Ptr_, o.Ptr_);
    return *this;
  }

  ~svtkSmartPtr()
  {
    if (this->Ptr_)
      this->Ptr_->UnRegister();
  }

  T *Get() const noexcept { return this->Ptr_; }
  T *operator->() const noexcept { return this->Ptr_; }
  T &operator*() const noexcept { return *this->Ptr_; }
  explicit operator bool() const noexcept { return this->Ptr_ != nullptr; }

private:
  T *Ptr_ = nullptr;
};

#endif
