#include "svtkDataObject.h"

#include <algorithm>

// ---------------------------------------------------------------------------
svtkFieldData::~svtkFieldData()
{
  this->Clear();
}

void svtkFieldData::AddArray(svtkDataArray *array)
{
  if (!array)
    return;

  array->Register();
  this->RemoveArray(array->GetName());
  this->Arrays_.push_back(array);
}

svtkDataArray *svtkFieldData::GetArray(int index) const
{
  if (index < 0 || index >= static_cast<int>(this->Arrays_.size()))
    return nullptr;
  return this->Arrays_[static_cast<std::size_t>(index)];
}

svtkDataArray *svtkFieldData::GetArray(const std::string &name) const
{
  for (svtkDataArray *a : this->Arrays_)
    if (a->GetName() == name)
      return a;
  return nullptr;
}

void svtkFieldData::RemoveArray(const std::string &name)
{
  auto it = std::find_if(this->Arrays_.begin(), this->Arrays_.end(),
                         [&name](svtkDataArray *a)
                         { return a->GetName() == name; });
  if (it != this->Arrays_.end())
  {
    (*it)->UnRegister();
    this->Arrays_.erase(it);
  }
}

void svtkFieldData::Clear()
{
  for (svtkDataArray *a : this->Arrays_)
    a->UnRegister();
  this->Arrays_.clear();
}

// ---------------------------------------------------------------------------
svtkMultiBlockDataSet::~svtkMultiBlockDataSet()
{
  for (svtkDataObject *b : this->Blocks_)
    if (b)
      b->UnRegister();
}

void svtkMultiBlockDataSet::SetNumberOfBlocks(int n)
{
  const int old = this->GetNumberOfBlocks();
  for (int i = n; i < old; ++i)
    if (this->Blocks_[static_cast<std::size_t>(i)])
      this->Blocks_[static_cast<std::size_t>(i)]->UnRegister();
  this->Blocks_.resize(static_cast<std::size_t>(n > 0 ? n : 0), nullptr);
}

void svtkMultiBlockDataSet::SetBlock(int index, svtkDataObject *block)
{
  if (index < 0)
    return;
  if (index >= this->GetNumberOfBlocks())
    this->Blocks_.resize(static_cast<std::size_t>(index) + 1, nullptr);

  if (block)
    block->Register();
  if (this->Blocks_[static_cast<std::size_t>(index)])
    this->Blocks_[static_cast<std::size_t>(index)]->UnRegister();
  this->Blocks_[static_cast<std::size_t>(index)] = block;
}

svtkDataObject *svtkMultiBlockDataSet::GetBlock(int index) const
{
  if (index < 0 || index >= this->GetNumberOfBlocks())
    return nullptr;
  return this->Blocks_[static_cast<std::size_t>(index)];
}

// ---------------------------------------------------------------------------
void svtkImageData::SetDimensions(int nx, int ny, int nz)
{
  this->Dims_[0] = nx > 0 ? nx : 1;
  this->Dims_[1] = ny > 0 ? ny : 1;
  this->Dims_[2] = nz > 0 ? nz : 1;
}

void svtkImageData::GetDimensions(int dims[3]) const
{
  dims[0] = this->Dims_[0];
  dims[1] = this->Dims_[1];
  dims[2] = this->Dims_[2];
}

void svtkImageData::SetOrigin(double x, double y, double z)
{
  this->Origin_[0] = x;
  this->Origin_[1] = y;
  this->Origin_[2] = z;
}

void svtkImageData::GetOrigin(double origin[3]) const
{
  origin[0] = this->Origin_[0];
  origin[1] = this->Origin_[1];
  origin[2] = this->Origin_[2];
}

void svtkImageData::SetSpacing(double dx, double dy, double dz)
{
  this->Spacing_[0] = dx;
  this->Spacing_[1] = dy;
  this->Spacing_[2] = dz;
}

void svtkImageData::GetSpacing(double spacing[3]) const
{
  spacing[0] = this->Spacing_[0];
  spacing[1] = this->Spacing_[1];
  spacing[2] = this->Spacing_[2];
}

std::size_t svtkImageData::GetNumberOfPoints() const
{
  return static_cast<std::size_t>(this->Dims_[0]) *
         static_cast<std::size_t>(this->Dims_[1]) *
         static_cast<std::size_t>(this->Dims_[2]);
}

std::size_t svtkImageData::GetNumberOfCells() const
{
  const auto cells = [](int n) -> std::size_t
  { return n > 1 ? static_cast<std::size_t>(n - 1) : 1; };
  return cells(this->Dims_[0]) * cells(this->Dims_[1]) * cells(this->Dims_[2]);
}
