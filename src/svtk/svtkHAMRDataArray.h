#ifndef svtkHAMRDataArray_h
#define svtkHAMRDataArray_h

/// @file svtkHAMRDataArray.h
/// svtkHAMRDataArray (HDA) — the svtkDataArray subclass the paper adds to
/// the SENSEI data model for heterogeneous architectures. The HDA provides
/// host and device memory management as well as PM interoperability by
/// delegating storage to hamr::buffer:
///
///  * initialization specifies a svtkAllocator (the PM + allocation method),
///    a svtkStream for ordering, and a svtkStreamMode (sync/async);
///  * zero-copy APIs adopt externally allocated host or device memory and
///    capture the additional information heterogeneous systems need: the
///    allocator/PM, the device the memory resides on, and the stream and
///    mode for ordering and synchronization (paper Listing 1);
///  * GetHostAccessible / GetCUDAAccessible / GetOpenMPAccessible /
///    GetHIPAccessible grant location- and PM-agnostic read access: direct
///    when possible, via an automatically cleaned up temporary otherwise
///    (paper Listings 2-4);
///  * GetData gives direct pointer access when location and PM are known;
///  * the storage is layout polymorphic (vp::layout): an array can be
///    declared AoS / SoA / AoSoA or converted between layouts at any
///    time without touching consumer code — element accessors map
///    (tuple, component) through the active layout::Mapping, and
///    GetView() hands kernels contiguous runs for vectorization.
///    Conversions move bits, never recompute values, so results are
///    layout independent. One-component arrays are layout invariant.

#include "hamrBuffer.h"
#include "svtkDataArray.h"
#include "svtkEnums.h"

#include <memory>

template <typename T>
class svtkHAMRDataArray : public svtkDataArray
{
public:
  // --- construction ---------------------------------------------------------

  /// An empty array; call SetAllocator / SetNumberOfTuples before use.
  static svtkHAMRDataArray *New(const std::string &name = std::string())
  {
    auto *a = new svtkHAMRDataArray;
    a->SetName(name);
    return a;
  }

  /// nElem tuples of nComp components managed by `alloc` on the owning
  /// PM's currently active device, ordered by `strm` with `mode`
  /// synchronization. Memory is zero initialized.
  static svtkHAMRDataArray *New(const std::string &name, std::size_t nElem,
                               int nComp, svtkAllocator alloc,
                               const svtkStream &strm = svtkStream(),
                               svtkStreamMode mode = svtkStreamMode::sync)
  {
    auto *a = New(name);
    a->NumComps_ = nComp > 0 ? nComp : 1;
    a->Buffer_ = hamr::buffer<T>(svtkToHamr(alloc), strm, svtkToHamr(mode),
                                 nElem * static_cast<std::size_t>(a->NumComps_));
    return a;
  }

  /// As above with an explicit storage layout (instead of the process
  /// default). `block` selects the AoSoA block size (0 = configured
  /// default). AoSoA padding slots are zero initialized.
  static svtkHAMRDataArray *New(const std::string &name, std::size_t nElem,
                               int nComp, svtkAllocator alloc,
                               vp::layout::Kind layout, std::size_t block = 0,
                               const svtkStream &strm = svtkStream(),
                               svtkStreamMode mode = svtkStreamMode::sync)
  {
    auto *a = New(name);
    a->NumComps_ = nComp > 0 ? nComp : 1;
    a->Map_ = vp::layout::Mapping::Make(
      layout, nElem, static_cast<std::size_t>(a->NumComps_), block);
    a->Buffer_ = hamr::buffer<T>(svtkToHamr(alloc), strm, svtkToHamr(mode),
                                 a->Map_.Slots());
    return a;
  }

  /// As above with every element initialized to `initVal`.
  static svtkHAMRDataArray *New(const std::string &name, std::size_t nElem,
                               int nComp, svtkAllocator alloc,
                               const svtkStream &strm, svtkStreamMode mode,
                               const T &initVal)
  {
    auto *a = New(name);
    a->NumComps_ = nComp > 0 ? nComp : 1;
    a->Buffer_ =
      hamr::buffer<T>(svtkToHamr(alloc), strm, svtkToHamr(mode),
                      nElem * static_cast<std::size_t>(a->NumComps_), initVal);
    return a;
  }

  /// Zero-copy construction with coordinated life-cycle management: adopt
  /// externally allocated memory held by `data`. `owner` identifies the
  /// device on which the memory currently resides (vp::HostDevice / -1 for
  /// host memory). This is the API the paper's Listing 1 demonstrates.
  static svtkHAMRDataArray *New(const std::string &name,
                               const std::shared_ptr<T> &data,
                               std::size_t nElem, int nComp,
                               svtkAllocator alloc, const svtkStream &strm,
                               svtkStreamMode mode, int owner)
  {
    auto *a = New(name);
    a->NumComps_ = nComp > 0 ? nComp : 1;
    a->Buffer_ = hamr::buffer<T>(svtkToHamr(alloc), strm, svtkToHamr(mode),
                                 nElem * static_cast<std::size_t>(a->NumComps_),
                                 owner, data);
    return a;
  }

  /// Zero-copy construction from a raw pointer. When `take` is non-zero
  /// the array assumes ownership and frees the memory when done; otherwise
  /// the caller must keep it alive for the array's lifetime.
  static svtkHAMRDataArray *New(const std::string &name, T *data,
                               std::size_t nElem, int nComp,
                               svtkAllocator alloc, const svtkStream &strm,
                               svtkStreamMode mode, int owner, int take)
  {
    auto *a = New(name);
    a->NumComps_ = nComp > 0 ? nComp : 1;
    a->Buffer_ = hamr::buffer<T>(svtkToHamr(alloc), strm, svtkToHamr(mode),
                                 nElem * static_cast<std::size_t>(a->NumComps_),
                                 owner, data, take != 0);
    return a;
  }

  const char *GetClassName() const override { return "svtkHAMRDataArray"; }

  // --- svtkDataArray interface ----------------------------------------------

  std::size_t GetNumberOfTuples() const override
  {
    // non-AoS multi-component storage may carry AoSoA padding, so the
    // mapping is authoritative there; otherwise derive from the buffer
    // so direct GetBuffer() resizes (the zero-copy idiom) stay visible
    if (this->NumComps_ > 1 && this->Map_.Layout != vp::layout::Kind::AoS)
      return this->Map_.Tuples;
    return this->Buffer_.size() / static_cast<std::size_t>(this->NumComps_);
  }

  int GetNumberOfComponents() const override { return this->NumComps_; }

  svtkScalarType GetScalarType() const override
  {
    return svtkScalarTypeTraits<T>::value;
  }

  double GetVariantValue(std::size_t tuple, int component) const override
  {
    return static_cast<double>(this->Buffer_.get(
      this->GetMapping().Offset(tuple, static_cast<std::size_t>(component))));
  }

  void SetVariantValue(std::size_t tuple, int component, double v) override
  {
    this->Buffer_.set(
      this->GetMapping().Offset(tuple, static_cast<std::size_t>(component)),
      static_cast<T>(v));
  }

  void SetNumberOfTuples(std::size_t n) override
  {
    if (this->Buffer_.get_allocator() == hamr::allocator::none)
      this->Buffer_.set_allocator(hamr::allocator::malloc_);
    // resize is defined on packed interleaved storage; round-trip
    // through AoS so a non-AoS array keeps its declared layout
    const vp::layout::Kind declared = this->Map_.Layout;
    const std::size_t block = this->Map_.Block;
    if (this->NumComps_ > 1 && declared != vp::layout::Kind::AoS)
      this->ConvertLayout(vp::layout::Kind::AoS);
    this->Buffer_.resize(n * static_cast<std::size_t>(this->NumComps_));
    this->Map_.Tuples = n;
    if (this->NumComps_ > 1 && declared != vp::layout::Kind::AoS)
      this->ConvertLayout(declared, block);
    else
      this->Map_.Layout = declared;
  }

  svtkDataArray *NewInstance() const override
  {
    auto *a = New(this->GetName());
    a->NumComps_ = this->NumComps_;
    a->Map_ = vp::layout::Mapping::Make(
      this->Map_.Layout, 0, static_cast<std::size_t>(this->NumComps_),
      this->Map_.Block);
    a->Buffer_ = hamr::buffer<T>(this->Buffer_.get_allocator());
    a->Buffer_.set_stream(this->Buffer_.get_stream());
    a->Buffer_.set_mode(this->Buffer_.mode());
    return a;
  }

  /// A deep copy with the same allocator, owner device, stream, and mode.
  /// Used by the asynchronous execution method, which must deep copy the
  /// relevant data before the simulation overwrites it. Caller owns the
  /// returned reference.
  svtkHAMRDataArray *NewDeepCopy() const
  {
    auto *a = New(this->GetName());
    a->NumComps_ = this->NumComps_;
    a->Map_ = this->Map_;
    a->Buffer_ = hamr::buffer<T>(this->Buffer_);
    return a;
  }

  // --- layout polymorphism ----------------------------------------------------

  /// The storage layout of this array.
  vp::layout::Kind GetLayout() const { return this->Map_.Layout; }

  /// The AoSoA block size (meaningful when GetLayout() == AoSoA).
  std::size_t GetLayoutBlock() const { return this->Map_.Block; }

  /// The mapping describing the current storage. For AoS (and all
  /// one-component arrays) the tuple count is derived from the buffer,
  /// so the mapping tracks direct GetBuffer() resizes too.
  vp::layout::Mapping GetMapping() const
  {
    if (this->NumComps_ > 1 && this->Map_.Layout != vp::layout::Kind::AoS)
      return this->Map_;
    vp::layout::Mapping m = this->Map_;
    m.Comps = static_cast<std::size_t>(this->NumComps_);
    m.Tuples = this->Buffer_.size() / m.Comps;
    return m;
  }

  /// Convert the storage to layout `k` in place (block: AoSoA block
  /// size, 0 = keep/configured default). Values are moved bit-exactly;
  /// outstanding pointers and views are invalidated. One-component
  /// arrays switch the label without touching memory.
  void ConvertLayout(vp::layout::Kind k, std::size_t block = 0)
  {
    const vp::layout::Mapping from = this->GetMapping();
    const vp::layout::Mapping to = vp::layout::Mapping::Make(
      k, from.Tuples, from.Comps,
      block ? block : (k == vp::layout::Kind::AoSoA &&
                           this->Map_.Layout == vp::layout::Kind::AoSoA
                         ? this->Map_.Block
                         : 0));
    if (this->NumComps_ > 1 && to != from)
      this->Buffer_.reorder(from, to);
    this->Map_ = to;
  }

  /// A zero-copy typed view for kernels: contiguous-run iteration over
  /// the active layout. Valid only where the data resides; invalidated
  /// by resize or conversion.
  vp::layout::View<T> GetView()
  {
    return vp::layout::View<T>(this->Buffer_.data(), this->GetMapping());
  }

  vp::layout::View<const T> GetView() const
  {
    return vp::layout::View<const T>(this->Buffer_.data(), this->GetMapping());
  }

  // --- heterogeneous extensions ---------------------------------------------

  /// A read-only view of the data valid on the host: direct when already
  /// host accessible, otherwise a self-cleaning temporary the data is
  /// moved into. In async mode, Synchronize() before dereferencing.
  std::shared_ptr<const T> GetHostAccessible() const
  {
    return this->Buffer_.get_host_accessible();
  }

  /// A read-only view valid on the CUDA PM's current device.
  std::shared_ptr<const T> GetCUDAAccessible() const
  {
    return this->Buffer_.get_cuda_accessible();
  }

  /// A read-only view valid on the HIP PM's current device.
  std::shared_ptr<const T> GetHIPAccessible() const
  {
    return this->Buffer_.get_hip_accessible();
  }

  /// A read-only view valid on the OpenMP PM's default device.
  std::shared_ptr<const T> GetOpenMPAccessible() const
  {
    return this->Buffer_.get_openmp_accessible();
  }

  /// A read-only view valid on the SYCL PM's default device (the paper's
  /// future-work PM, supported here).
  std::shared_ptr<const T> GetSYCLAccessible() const
  {
    return this->Buffer_.get_sycl_accessible();
  }

  /// A read-only view valid on the device a SYCL queue targets.
  std::shared_ptr<const T> GetSYCLAccessible(const vsycl::queue &q) const
  {
    return this->Buffer_.get_sycl_accessible(q);
  }

  /// A read-only view valid on an explicitly named device.
  std::shared_ptr<const T> GetDeviceAccessible(int device) const
  {
    return this->Buffer_.get_device_accessible(device);
  }

  /// Direct access to the storage — valid only where the data resides.
  T *GetData() { return this->Buffer_.data(); }
  const T *GetData() const { return this->Buffer_.data(); }

  /// Make sure data in flight, if it was moved, has arrived.
  void Synchronize() const { this->Buffer_.synchronize(); }

  /// Device id where the data resides (vp::HostDevice for host memory).
  int GetOwner() const { return this->Buffer_.owner(); }

  /// The allocator managing the storage.
  hamr::allocator GetAllocator() const { return this->Buffer_.get_allocator(); }

  /// True when the data is host accessible without movement.
  bool HostAccessible() const { return this->Buffer_.host_accessible(); }

  /// True when the data is accessible on `device` without movement.
  bool DeviceAccessible(int device) const
  {
    return this->Buffer_.device_accessible(device);
  }

  /// The ordering stream.
  const svtkStream &GetStream() const { return this->Buffer_.get_stream(); }

  /// The underlying HAMR buffer (advanced use, zero-copy hand-offs).
  hamr::buffer<T> &GetBuffer() { return this->Buffer_; }
  const hamr::buffer<T> &GetBuffer() const { return this->Buffer_; }

  /// Host std::vector copy of the contents (synchronizes; tests and IO).
  std::vector<T> ToVector() const { return this->Buffer_.to_vector(); }

protected:
  svtkHAMRDataArray() = default;
  ~svtkHAMRDataArray() override = default;

private:
  hamr::buffer<T> Buffer_;
  vp::layout::Mapping Map_;
  int NumComps_ = 1;
};

using svtkHAMRDoubleArray = svtkHAMRDataArray<double>;
using svtkHAMRFloatArray = svtkHAMRDataArray<float>;
using svtkHAMRIntArray = svtkHAMRDataArray<int>;
using svtkHAMRLongArray = svtkHAMRDataArray<long long>;

#endif
