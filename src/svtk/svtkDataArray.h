#ifndef svtkDataArray_h
#define svtkDataArray_h

/// @file svtkDataArray.h
/// Abstract base class defining the interfaces for managing and accessing
/// array based data in the SENSEI data model. Mesh geometry and node/cell
/// centered data are built on top of it. Concrete subclasses are the
/// host-only svtkAOSDataArray<T> (the legacy VTK behaviour) and the
/// heterogeneous svtkHAMRDataArray<T> introduced by the paper.

#include "svtkObjectBase.h"

#include <cstddef>
#include <string>

/// Scalar type of a data array's elements.
enum class svtkScalarType : int
{
  Float32 = 0,
  Float64,
  Int32,
  Int64,
  UInt8
};

/// Returns the size in bytes of one element of `t`.
std::size_t svtkScalarSize(svtkScalarType t);

/// Returns a short human readable name for `t`.
const char *svtkScalarName(svtkScalarType t);

/// Abstract interface to tuple-structured numeric data.
class svtkDataArray : public svtkObjectBase
{
public:
  const char *GetClassName() const override { return "svtkDataArray"; }

  /// The array's name (how analyses request it).
  const std::string &GetName() const { return this->Name_; }
  void SetName(const std::string &name) { this->Name_ = name; }

  /// Number of tuples (rows).
  virtual std::size_t GetNumberOfTuples() const = 0;

  /// Number of components per tuple (columns per row).
  virtual int GetNumberOfComponents() const = 0;

  /// Total number of scalar values (tuples * components).
  std::size_t GetNumberOfValues() const
  {
    return this->GetNumberOfTuples() *
           static_cast<std::size_t>(this->GetNumberOfComponents());
  }

  /// The element scalar type.
  virtual svtkScalarType GetScalarType() const = 0;

  /// Generic element access, converting through double. Valid only when
  /// the data is host accessible; heterogeneous arrays may move data.
  virtual double GetVariantValue(std::size_t tuple, int component) const = 0;

  /// Generic element mutation, converting through double.
  virtual void SetVariantValue(std::size_t tuple, int component, double v) = 0;

  /// Resize to n tuples, preserving leading data.
  virtual void SetNumberOfTuples(std::size_t n) = 0;

  /// Allocate a new, empty array of the same concrete type. The caller
  /// owns the returned reference.
  virtual svtkDataArray *NewInstance() const = 0;

  /// Replace this array's contents with a deep copy of `src` (converting
  /// scalar types through double when they differ).
  virtual void DeepCopy(const svtkDataArray *src);

protected:
  svtkDataArray() = default;
  ~svtkDataArray() override = default;

private:
  std::string Name_;
};

/// Compile-time map from C++ scalar type to svtkScalarType.
template <typename T>
struct svtkScalarTypeTraits;

template <>
struct svtkScalarTypeTraits<float>
{
  static constexpr svtkScalarType value = svtkScalarType::Float32;
};
template <>
struct svtkScalarTypeTraits<double>
{
  static constexpr svtkScalarType value = svtkScalarType::Float64;
};
template <>
struct svtkScalarTypeTraits<int>
{
  static constexpr svtkScalarType value = svtkScalarType::Int32;
};
template <>
struct svtkScalarTypeTraits<long long>
{
  static constexpr svtkScalarType value = svtkScalarType::Int64;
};
template <>
struct svtkScalarTypeTraits<unsigned char>
{
  static constexpr svtkScalarType value = svtkScalarType::UInt8;
};

#endif
