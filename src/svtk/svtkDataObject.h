#ifndef svtkDataObject_h
#define svtkDataObject_h

/// @file svtkDataObject.h
/// Containers of the SENSEI data model: svtkFieldData (a named collection
/// of data arrays), svtkDataObject (abstract dataset base), svtkTable
/// (tabular data — the structure the data binning analysis consumes), and
/// svtkImageData (a uniform Cartesian mesh — the structure data binning
/// produces).

#include "svtkDataArray.h"
#include "svtkObjectBase.h"

#include <cstddef>
#include <string>
#include <vector>

/// A named, ordered collection of svtkDataArray instances. Arrays are
/// shared by reference count.
class svtkFieldData : public svtkObjectBase
{
public:
  static svtkFieldData *New() { return new svtkFieldData; }

  const char *GetClassName() const override { return "svtkFieldData"; }

  /// Append an array, taking a reference. An existing array of the same
  /// name is replaced.
  void AddArray(svtkDataArray *array);

  /// Number of arrays held.
  int GetNumberOfArrays() const
  {
    return static_cast<int>(this->Arrays_.size());
  }

  /// Array by index, nullptr when out of range. No reference is taken.
  svtkDataArray *GetArray(int index) const;

  /// Array by name, nullptr when absent. No reference is taken.
  svtkDataArray *GetArray(const std::string &name) const;

  /// True when an array of this name is held.
  bool HasArray(const std::string &name) const
  {
    return this->GetArray(name) != nullptr;
  }

  /// Remove an array by name; no-op when absent.
  void RemoveArray(const std::string &name);

  /// Drop all arrays.
  void Clear();

protected:
  svtkFieldData() = default;
  ~svtkFieldData() override;

private:
  std::vector<svtkDataArray *> Arrays_;
};

/// Abstract base of datasets exchanged between simulations and analyses.
class svtkDataObject : public svtkObjectBase
{
public:
  const char *GetClassName() const override { return "svtkDataObject"; }

  /// Uncentered (global) data attached to the object.
  svtkFieldData *GetFieldData() const { return this->FieldData_; }

protected:
  svtkDataObject() : FieldData_(svtkFieldData::New()) {}
  ~svtkDataObject() override { this->FieldData_->UnRegister(); }

private:
  svtkFieldData *FieldData_;
};

/// Tabular data: columns are variables, rows are co-occurring
/// measurements or realizations of those variables (paper Section 4.2).
class svtkTable : public svtkDataObject
{
public:
  static svtkTable *New() { return new svtkTable; }

  const char *GetClassName() const override { return "svtkTable"; }

  /// Append a column, taking a reference.
  void AddColumn(svtkDataArray *column)
  {
    this->Columns_->AddArray(column);
  }

  int GetNumberOfColumns() const
  {
    return this->Columns_->GetNumberOfArrays();
  }

  /// Rows = tuples of the first column (all columns must agree).
  std::size_t GetNumberOfRows() const
  {
    const svtkDataArray *c = this->Columns_->GetArray(0);
    return c ? c->GetNumberOfTuples() : 0;
  }

  svtkDataArray *GetColumn(int index) const
  {
    return this->Columns_->GetArray(index);
  }

  svtkDataArray *GetColumnByName(const std::string &name) const
  {
    return this->Columns_->GetArray(name);
  }

  /// The column collection.
  svtkFieldData *GetColumns() const { return this->Columns_; }

protected:
  svtkTable() : Columns_(svtkFieldData::New()) {}
  ~svtkTable() override { this->Columns_->UnRegister(); }

private:
  svtkFieldData *Columns_;
};

/// A composite dataset: an indexed collection of blocks, each any
/// svtkDataObject (VTK's svtkMultiBlockDataSet). Simulations whose ranks
/// own several patches expose one block per patch; analyses iterate the
/// non-null blocks. Blocks are shared by reference count; slots may be
/// null.
class svtkMultiBlockDataSet : public svtkDataObject
{
public:
  static svtkMultiBlockDataSet *New() { return new svtkMultiBlockDataSet; }

  const char *GetClassName() const override
  {
    return "svtkMultiBlockDataSet";
  }

  /// Resize the block table (new slots are null; removed blocks are
  /// released).
  void SetNumberOfBlocks(int n);

  int GetNumberOfBlocks() const
  {
    return static_cast<int>(this->Blocks_.size());
  }

  /// Install a block (takes a reference; nullptr clears the slot). The
  /// table grows to fit the index.
  void SetBlock(int index, svtkDataObject *block);

  /// Borrowed block pointer; nullptr for empty slots or out of range.
  svtkDataObject *GetBlock(int index) const;

protected:
  svtkMultiBlockDataSet() = default;
  ~svtkMultiBlockDataSet() override;

private:
  std::vector<svtkDataObject *> Blocks_;
};

/// A uniform Cartesian mesh with node centered data.
class svtkImageData : public svtkDataObject
{
public:
  static svtkImageData *New() { return new svtkImageData; }

  const char *GetClassName() const override { return "svtkImageData"; }

  /// Set the number of points along each axis.
  void SetDimensions(int nx, int ny, int nz);
  void GetDimensions(int dims[3]) const;

  void SetOrigin(double x, double y, double z);
  void GetOrigin(double origin[3]) const;

  void SetSpacing(double dx, double dy, double dz);
  void GetSpacing(double spacing[3]) const;

  std::size_t GetNumberOfPoints() const;
  std::size_t GetNumberOfCells() const;

  /// Node centered data.
  svtkFieldData *GetPointData() const { return this->PointData_; }

protected:
  svtkImageData() : PointData_(svtkFieldData::New())
  {
    this->Dims_[0] = this->Dims_[1] = this->Dims_[2] = 1;
    this->Origin_[0] = this->Origin_[1] = this->Origin_[2] = 0.0;
    this->Spacing_[0] = this->Spacing_[1] = this->Spacing_[2] = 1.0;
  }
  ~svtkImageData() override { this->PointData_->UnRegister(); }

private:
  int Dims_[3];
  double Origin_[3];
  double Spacing_[3];
  svtkFieldData *PointData_;
};

#endif
