#ifndef svtkArrayUtils_h
#define svtkArrayUtils_h

/// @file svtkArrayUtils.h
/// Conversions between data-array flavours used at module boundaries:
/// analyses want typed device-capable arrays, writers want host doubles.

#include "svtkAOSDataArray.h"
#include "svtkDataArray.h"
#include "svtkHAMRDataArray.h"

#include <functional>
#include <vector>

/// Copy any data array's values to a host std::vector<double>, converting
/// element types. Fast paths exist for the common concrete types; other
/// arrays go through the variant interface.
std::vector<double> svtkToDoubleVector(const svtkDataArray *array);

/// Invoke `f(data, type, count)` with a host-accessible view of `array`'s
/// values in their native scalar type: zero-copy for host AOS arrays,
/// staged through GetHostAccessible (one D2H move at most, synchronized)
/// for HAMR arrays, and converted to Float64 for any other flavour.
/// `count` is tuples * components; the pointer is valid only for the
/// duration of the call.
void svtkWithHostValues(
  const svtkDataArray *array,
  const std::function<void(const void *, svtkScalarType, std::size_t)> &f);

/// A svtkHAMRDoubleArray view of `array`: when `array` already is one, it
/// is returned with an extra reference (zero-copy); otherwise a new
/// host-resident svtkHAMRDoubleArray is built by conversion. Either way the
/// caller owns one reference on the result.
svtkHAMRDoubleArray *svtkAsHAMRDouble(svtkDataArray *array);

#endif
