#ifndef svtkArrayUtils_h
#define svtkArrayUtils_h

/// @file svtkArrayUtils.h
/// Conversions between data-array flavours used at module boundaries:
/// analyses want typed device-capable arrays, writers want host doubles.

#include "svtkAOSDataArray.h"
#include "svtkDataArray.h"
#include "svtkHAMRDataArray.h"

#include <vector>

/// Copy any data array's values to a host std::vector<double>, converting
/// element types. Fast paths exist for the common concrete types; other
/// arrays go through the variant interface.
std::vector<double> svtkToDoubleVector(const svtkDataArray *array);

/// A svtkHAMRDoubleArray view of `array`: when `array` already is one, it
/// is returned with an extra reference (zero-copy); otherwise a new
/// host-resident svtkHAMRDoubleArray is built by conversion. Either way the
/// caller owns one reference on the result.
svtkHAMRDoubleArray *svtkAsHAMRDouble(svtkDataArray *array);

#endif
