#ifndef svtkEnums_h
#define svtkEnums_h

/// @file svtkEnums.h
/// Data-model-facing enumerations and the svtkStream abstraction. The
/// svtkAllocator value passed at svtkHAMRDataArray initialization selects
/// which PM, and which specific method within the PM, allocates and
/// subsequently manages the memory (paper Section 2, "Initialization").
/// svtkStream abstracts PM streams with automatic conversion to/from the
/// native handles; svtkStreamMode selects synchronous or asynchronous
/// semantics for data-model operations.

#include "hamrAllocator.h"
#include "hamrStream.h"

/// PM + allocation method for a svtkHAMRDataArray.
enum class svtkAllocator : int
{
  none = 0,
  malloc_,          ///< host memory via malloc
  cpp,              ///< host memory via operator new
  cuda_host_pinned, ///< page-locked host memory (CUDA PM)
  cuda,             ///< device memory, synchronous (CUDA PM)
  cuda_async,       ///< device memory, stream ordered (CUDA PM)
  cuda_uva,         ///< universally addressable managed memory (CUDA PM)
  hip,              ///< device memory, synchronous (HIP PM)
  hip_async,        ///< device memory, stream ordered (HIP PM)
  openmp,           ///< device memory via OpenMP target offload
  sycl,             ///< USM device memory (SYCL PM — the paper's future
                    ///< work, implemented in this reproduction)
  sycl_shared,      ///< USM shared memory (SYCL PM)
  pool_device,      ///< device memory from the caching memory pool
  pool_host_pinned  ///< page-locked host memory from the caching pool
};

/// Synchronization behaviour of data-model operations.
enum class svtkStreamMode : int
{
  sync = 0, ///< operations complete before the API call returns
  async     ///< operations are stream ordered; user synchronizes
};

/// PM-agnostic stream with conversions to and from native streams.
using svtkStream = hamr::stream;

/// Map a svtkAllocator to the underlying HAMR allocator. The HIP variants
/// share device semantics with CUDA in this reproduction.
constexpr hamr::allocator svtkToHamr(svtkAllocator a)
{
  switch (a)
  {
    case svtkAllocator::malloc_: return hamr::allocator::malloc_;
    case svtkAllocator::cpp: return hamr::allocator::cpp;
    case svtkAllocator::cuda_host_pinned: return hamr::allocator::host_pinned;
    case svtkAllocator::cuda: return hamr::allocator::device;
    case svtkAllocator::cuda_async: return hamr::allocator::device_async;
    case svtkAllocator::cuda_uva: return hamr::allocator::managed;
    case svtkAllocator::hip: return hamr::allocator::hip;
    case svtkAllocator::hip_async: return hamr::allocator::hip_async;
    case svtkAllocator::openmp: return hamr::allocator::openmp;
    case svtkAllocator::sycl: return hamr::allocator::sycl_device;
    case svtkAllocator::sycl_shared: return hamr::allocator::sycl_shared;
    case svtkAllocator::pool_device: return hamr::allocator::pool_device;
    case svtkAllocator::pool_host_pinned:
      return hamr::allocator::pool_host_pinned;
    default: return hamr::allocator::none;
  }
}

/// Map a svtkStreamMode to the underlying HAMR mode.
constexpr hamr::stream_mode svtkToHamr(svtkStreamMode m)
{
  return m == svtkStreamMode::sync ? hamr::stream_mode::sync
                                  : hamr::stream_mode::async;
}

/// Short human readable name.
const char *svtkAllocatorName(svtkAllocator a);

/// Parse an allocator name (as used in SENSEI XML configs); returns
/// svtkAllocator::none for unknown names.
svtkAllocator svtkAllocatorFromName(const char *name);

#endif
