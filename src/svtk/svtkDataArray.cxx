#include "svtkDataArray.h"

#include <stdexcept>

std::size_t svtkScalarSize(svtkScalarType t)
{
  switch (t)
  {
    case svtkScalarType::Float32: return sizeof(float);
    case svtkScalarType::Float64: return sizeof(double);
    case svtkScalarType::Int32: return sizeof(int);
    case svtkScalarType::Int64: return sizeof(long long);
    case svtkScalarType::UInt8: return sizeof(unsigned char);
  }
  return 0;
}

const char *svtkScalarName(svtkScalarType t)
{
  switch (t)
  {
    case svtkScalarType::Float32: return "float32";
    case svtkScalarType::Float64: return "float64";
    case svtkScalarType::Int32: return "int32";
    case svtkScalarType::Int64: return "int64";
    case svtkScalarType::UInt8: return "uint8";
  }
  return "unknown";
}

void svtkDataArray::DeepCopy(const svtkDataArray *src)
{
  if (!src)
    throw std::invalid_argument("svtkDataArray::DeepCopy: null source");

  this->SetName(src->GetName());
  this->SetNumberOfTuples(src->GetNumberOfTuples());

  const std::size_t n = src->GetNumberOfTuples();
  const int nc = src->GetNumberOfComponents();
  for (std::size_t i = 0; i < n; ++i)
    for (int j = 0; j < nc; ++j)
      this->SetVariantValue(i, j, src->GetVariantValue(i, j));
}
