#ifndef svtkAOSDataArray_h
#define svtkAOSDataArray_h

/// @file svtkAOSDataArray.h
/// Host-only array-of-structures data array — the behaviour of the
/// subclasses implementing the svtkDataArray APIs available in stock VTK,
/// which "are designed and implemented for host only memory management"
/// (paper Section 2). Included so tests and benchmarks can contrast the
/// legacy host-only path with the heterogeneous svtkHAMRDataArray.

#include "svtkDataArray.h"

#include <vector>

template <typename T>
class svtkAOSDataArray : public svtkDataArray
{
public:
  /// Create an empty array. Caller owns the reference.
  static svtkAOSDataArray *New(const std::string &name = std::string())
  {
    auto *a = new svtkAOSDataArray;
    a->SetName(name);
    return a;
  }

  /// Create with n tuples of nComp components, zero initialized.
  static svtkAOSDataArray *New(const std::string &name, std::size_t nTuples,
                              int nComps)
  {
    auto *a = New(name);
    a->NumComps_ = nComps;
    a->Data_.assign(nTuples * static_cast<std::size_t>(nComps), T{});
    return a;
  }

  const char *GetClassName() const override { return "svtkAOSDataArray"; }

  std::size_t GetNumberOfTuples() const override
  {
    return this->NumComps_ ? this->Data_.size() /
                               static_cast<std::size_t>(this->NumComps_)
                           : 0;
  }

  int GetNumberOfComponents() const override { return this->NumComps_; }

  void SetNumberOfComponents(int n)
  {
    this->NumComps_ = n > 0 ? n : 1;
  }

  svtkScalarType GetScalarType() const override
  {
    return svtkScalarTypeTraits<T>::value;
  }

  double GetVariantValue(std::size_t tuple, int component) const override
  {
    return static_cast<double>(
      this->Data_[tuple * static_cast<std::size_t>(this->NumComps_) +
                  static_cast<std::size_t>(component)]);
  }

  void SetVariantValue(std::size_t tuple, int component, double v) override
  {
    this->Data_[tuple * static_cast<std::size_t>(this->NumComps_) +
                static_cast<std::size_t>(component)] = static_cast<T>(v);
  }

  void SetNumberOfTuples(std::size_t n) override
  {
    this->Data_.resize(n * static_cast<std::size_t>(this->NumComps_), T{});
  }

  svtkDataArray *NewInstance() const override
  {
    auto *a = New(this->GetName());
    a->NumComps_ = this->NumComps_;
    return a;
  }

  /// Direct host access.
  T *GetData() { return this->Data_.data(); }
  const T *GetData() const { return this->Data_.data(); }

  /// The backing vector (host-side convenience).
  std::vector<T> &GetVector() { return this->Data_; }
  const std::vector<T> &GetVector() const { return this->Data_; }

protected:
  svtkAOSDataArray() = default;
  ~svtkAOSDataArray() override = default;

private:
  std::vector<T> Data_;
  int NumComps_ = 1;
};

using svtkAOSDoubleArray = svtkAOSDataArray<double>;
using svtkAOSFloatArray = svtkAOSDataArray<float>;
using svtkAOSIntArray = svtkAOSDataArray<int>;
using svtkAOSLongArray = svtkAOSDataArray<long long>;

#endif
