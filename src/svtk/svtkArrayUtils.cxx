#include "svtkArrayUtils.h"

#include <stdexcept>

namespace
{
template <typename T>
bool AppendHamr(const svtkDataArray *array, std::vector<double> &out)
{
  const auto *h = dynamic_cast<const svtkHAMRDataArray<T> *>(array);
  if (!h)
    return false;
  std::vector<T> v = h->ToVector();
  out.assign(v.begin(), v.end());
  return true;
}

template <typename T>
bool AppendAos(const svtkDataArray *array, std::vector<double> &out)
{
  const auto *a = dynamic_cast<const svtkAOSDataArray<T> *>(array);
  if (!a)
    return false;
  out.assign(a->GetVector().begin(), a->GetVector().end());
  return true;
}
} // namespace

std::vector<double> svtkToDoubleVector(const svtkDataArray *array)
{
  if (!array)
    throw std::invalid_argument("svtkToDoubleVector: null array");

  std::vector<double> out;
  if (AppendHamr<double>(array, out) || AppendHamr<float>(array, out) ||
      AppendHamr<int>(array, out) || AppendHamr<long long>(array, out) ||
      AppendAos<double>(array, out) || AppendAos<float>(array, out) ||
      AppendAos<int>(array, out) || AppendAos<long long>(array, out))
    return out;

  const std::size_t n = array->GetNumberOfTuples();
  const int nc = array->GetNumberOfComponents();
  out.resize(n * static_cast<std::size_t>(nc));
  for (std::size_t i = 0; i < n; ++i)
    for (int j = 0; j < nc; ++j)
      out[i * static_cast<std::size_t>(nc) + static_cast<std::size_t>(j)] =
        array->GetVariantValue(i, j);
  return out;
}

svtkHAMRDoubleArray *svtkAsHAMRDouble(svtkDataArray *array)
{
  if (!array)
    throw std::invalid_argument("svtkAsHAMRDouble: null array");

  if (auto *h = dynamic_cast<svtkHAMRDoubleArray *>(array))
  {
    h->Register();
    return h;
  }

  std::vector<double> values = svtkToDoubleVector(array);
  svtkHAMRDoubleArray *out = svtkHAMRDoubleArray::New(
    array->GetName(), array->GetNumberOfTuples(),
    array->GetNumberOfComponents(), svtkAllocator::malloc_);
  out->GetBuffer().assign(values.data(), values.size());
  return out;
}
