#include "svtkArrayUtils.h"

#include <stdexcept>

namespace
{
template <typename T>
bool AppendHamr(const svtkDataArray *array, std::vector<double> &out)
{
  const auto *h = dynamic_cast<const svtkHAMRDataArray<T> *>(array);
  if (!h)
    return false;
  std::vector<T> v = h->ToVector();
  out.assign(v.begin(), v.end());
  return true;
}

template <typename T>
bool AppendAos(const svtkDataArray *array, std::vector<double> &out)
{
  const auto *a = dynamic_cast<const svtkAOSDataArray<T> *>(array);
  if (!a)
    return false;
  out.assign(a->GetVector().begin(), a->GetVector().end());
  return true;
}
using HostValuesFn =
  std::function<void(const void *, svtkScalarType, std::size_t)>;

template <typename T>
bool VisitAos(const svtkDataArray *array, const HostValuesFn &f)
{
  const auto *a = dynamic_cast<const svtkAOSDataArray<T> *>(array);
  if (!a)
    return false;
  f(a->GetVector().data(), svtkScalarTypeTraits<T>::value,
    a->GetVector().size());
  return true;
}

template <typename T>
bool VisitHamr(const svtkDataArray *array, const HostValuesFn &f)
{
  const auto *h = dynamic_cast<const svtkHAMRDataArray<T> *>(array);
  if (!h)
    return false;
  std::shared_ptr<const T> view = h->GetHostAccessible();
  h->Synchronize();
  f(view.get(), svtkScalarTypeTraits<T>::value, h->GetNumberOfValues());
  return true;
}
} // namespace

std::vector<double> svtkToDoubleVector(const svtkDataArray *array)
{
  if (!array)
    throw std::invalid_argument("svtkToDoubleVector: null array");

  std::vector<double> out;
  if (AppendHamr<double>(array, out) || AppendHamr<float>(array, out) ||
      AppendHamr<int>(array, out) || AppendHamr<long long>(array, out) ||
      AppendAos<double>(array, out) || AppendAos<float>(array, out) ||
      AppendAos<int>(array, out) || AppendAos<long long>(array, out))
    return out;

  const std::size_t n = array->GetNumberOfTuples();
  const int nc = array->GetNumberOfComponents();
  out.resize(n * static_cast<std::size_t>(nc));
  for (std::size_t i = 0; i < n; ++i)
    for (int j = 0; j < nc; ++j)
      out[i * static_cast<std::size_t>(nc) + static_cast<std::size_t>(j)] =
        array->GetVariantValue(i, j);
  return out;
}

void svtkWithHostValues(const svtkDataArray *array, const HostValuesFn &f)
{
  if (!array)
    throw std::invalid_argument("svtkWithHostValues: null array");

  if (VisitAos<double>(array, f) || VisitAos<float>(array, f) ||
      VisitAos<int>(array, f) || VisitAos<long long>(array, f) ||
      VisitAos<unsigned char>(array, f) || VisitHamr<double>(array, f) ||
      VisitHamr<float>(array, f) || VisitHamr<int>(array, f) ||
      VisitHamr<long long>(array, f))
    return;

  const std::vector<double> values = svtkToDoubleVector(array);
  f(values.data(), svtkScalarType::Float64, values.size());
}

svtkHAMRDoubleArray *svtkAsHAMRDouble(svtkDataArray *array)
{
  if (!array)
    throw std::invalid_argument("svtkAsHAMRDouble: null array");

  if (auto *h = dynamic_cast<svtkHAMRDoubleArray *>(array))
  {
    h->Register();
    return h;
  }

  std::vector<double> values = svtkToDoubleVector(array);
  svtkHAMRDoubleArray *out = svtkHAMRDoubleArray::New(
    array->GetName(), array->GetNumberOfTuples(),
    array->GetNumberOfComponents(), svtkAllocator::malloc_);
  out->GetBuffer().assign(values.data(), values.size());
  return out;
}
