#include "svtkEnums.h"

#include <cstring>

const char *svtkAllocatorName(svtkAllocator a)
{
  switch (a)
  {
    case svtkAllocator::none: return "none";
    case svtkAllocator::malloc_: return "malloc";
    case svtkAllocator::cpp: return "cpp";
    case svtkAllocator::cuda_host_pinned: return "cuda_host_pinned";
    case svtkAllocator::cuda: return "cuda";
    case svtkAllocator::cuda_async: return "cuda_async";
    case svtkAllocator::cuda_uva: return "cuda_uva";
    case svtkAllocator::hip: return "hip";
    case svtkAllocator::hip_async: return "hip_async";
    case svtkAllocator::openmp: return "openmp";
    case svtkAllocator::sycl: return "sycl";
    case svtkAllocator::sycl_shared: return "sycl_shared";
    case svtkAllocator::pool_device: return "pool_device";
    case svtkAllocator::pool_host_pinned: return "pool_host_pinned";
  }
  return "unknown";
}

svtkAllocator svtkAllocatorFromName(const char *name)
{
  if (!name)
    return svtkAllocator::none;

  const struct
  {
    const char *Name;
    svtkAllocator Value;
  } table[] = {
    {"malloc", svtkAllocator::malloc_},
    {"cpp", svtkAllocator::cpp},
    {"cuda_host_pinned", svtkAllocator::cuda_host_pinned},
    {"cuda", svtkAllocator::cuda},
    {"cuda_async", svtkAllocator::cuda_async},
    {"cuda_uva", svtkAllocator::cuda_uva},
    {"hip", svtkAllocator::hip},
    {"hip_async", svtkAllocator::hip_async},
    {"openmp", svtkAllocator::openmp},
    {"sycl", svtkAllocator::sycl},
    {"sycl_shared", svtkAllocator::sycl_shared},
    {"pool_device", svtkAllocator::pool_device},
    {"pool_host_pinned", svtkAllocator::pool_host_pinned},
  };

  for (const auto &entry : table)
    if (std::strcmp(entry.Name, name) == 0)
      return entry.Value;
  return svtkAllocator::none;
}
