#include "sio.h"

#include "cmpCodec.h"
#include "svtkAOSDataArray.h"
#include "svtkArrayUtils.h"

#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace sio
{

namespace
{
std::ofstream OpenOut(const std::string &path)
{
  std::ofstream f(path);
  if (!f)
    throw std::runtime_error("sio: cannot write '" + path + "'");
  f << std::setprecision(17);
  return f;
}

std::ifstream OpenIn(const std::string &path)
{
  std::ifstream f(path);
  if (!f)
    throw std::runtime_error("sio: cannot read '" + path + "'");
  return f;
}

constexpr std::uint8_t kBlobMagic[4] = {'S', 'I', 'O', 'B'};
constexpr std::uint8_t kBlobVersion = 1;
constexpr std::size_t kBlobHeaderBytes = 24;

double ParseNumber(const std::string &tok, const std::string &path,
                   const char *what)
{
  try
  {
    std::size_t used = 0;
    const double v = std::stod(tok, &used);
    if (used != tok.size())
      throw std::invalid_argument(tok);
    return v;
  }
  catch (const std::exception &)
  {
    throw std::runtime_error(std::string("sio: non-numeric ") + what +
                             " '" + tok + "' in '" + path + "'");
  }
}
} // namespace

// ---------------------------------------------------------------------------
void WriteBlob(const std::string &path, const std::uint8_t *data,
               std::size_t bytes)
{
  if (!data && bytes)
    throw std::invalid_argument("sio::WriteBlob: null payload");

  std::ofstream f(path, std::ios::binary);
  if (!f)
    throw std::runtime_error("sio: cannot write '" + path + "'");

  std::uint8_t header[kBlobHeaderBytes] = {};
  std::memcpy(header, kBlobMagic, 4);
  header[4] = kBlobVersion;
  cmp::StoreLE64(header + 8, static_cast<std::uint64_t>(bytes));
  cmp::StoreLE64(header + 16, cmp::Fnv1a(data, bytes));

  f.write(reinterpret_cast<const char *>(header), sizeof(header));
  if (bytes)
    f.write(reinterpret_cast<const char *>(data),
            static_cast<std::streamsize>(bytes));
  f.flush();
  if (!f)
    throw std::runtime_error("sio::WriteBlob: short write to '" + path + "'");
}

std::vector<std::uint8_t> ReadBlob(const std::string &path)
{
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f)
    throw std::runtime_error("sio: cannot read '" + path + "'");

  const std::streamoff fileSize = f.tellg();
  f.seekg(0);
  if (fileSize < static_cast<std::streamoff>(kBlobHeaderBytes))
    throw std::runtime_error("sio::ReadBlob: '" + path +
                             "' is shorter than a blob header");

  std::uint8_t header[kBlobHeaderBytes];
  if (!f.read(reinterpret_cast<char *>(header), sizeof(header)))
    throw std::runtime_error("sio::ReadBlob: cannot read header of '" + path +
                             "'");
  if (std::memcmp(header, kBlobMagic, 4) != 0)
    throw std::runtime_error("sio::ReadBlob: '" + path +
                             "' is not a SIOB blob");
  if (header[4] != kBlobVersion)
    throw std::runtime_error("sio::ReadBlob: unsupported blob version in '" +
                             path + "'");

  const std::uint64_t payloadBytes = cmp::LoadLE64(header + 8);
  const std::uint64_t available =
    static_cast<std::uint64_t>(fileSize) - kBlobHeaderBytes;
  if (payloadBytes != available)
    throw std::runtime_error(
      "sio::ReadBlob: '" + path + "' declares " +
      std::to_string(payloadBytes) + " payload bytes but holds " +
      std::to_string(available) + " (truncated or trailing garbage)");

  std::vector<std::uint8_t> payload(static_cast<std::size_t>(payloadBytes));
  if (payloadBytes &&
      !f.read(reinterpret_cast<char *>(payload.data()),
              static_cast<std::streamsize>(payloadBytes)))
    throw std::runtime_error("sio::ReadBlob: short read from '" + path + "'");

  const std::uint64_t want = cmp::LoadLE64(header + 16);
  const std::uint64_t got = cmp::Fnv1a(payload.data(), payload.size());
  if (want != got)
    throw std::runtime_error("sio::ReadBlob: checksum mismatch in '" + path +
                             "' (corrupt payload)");
  return payload;
}

// ---------------------------------------------------------------------------
void WriteCSV(const std::string &path, const svtkTable *table)
{
  if (!table)
    throw std::invalid_argument("sio::WriteCSV: null table");

  std::ofstream f = OpenOut(path);

  const int nCols = table->GetNumberOfColumns();
  std::vector<std::vector<double>> data(static_cast<std::size_t>(nCols));
  std::vector<int> comps(static_cast<std::size_t>(nCols));

  bool first = true;
  for (int c = 0; c < nCols; ++c)
  {
    const svtkDataArray *col = table->GetColumn(c);
    data[static_cast<std::size_t>(c)] = svtkToDoubleVector(col);
    comps[static_cast<std::size_t>(c)] = col->GetNumberOfComponents();
    for (int j = 0; j < comps[static_cast<std::size_t>(c)]; ++j)
    {
      if (!first)
        f << ',';
      first = false;
      f << col->GetName();
      if (comps[static_cast<std::size_t>(c)] > 1)
        f << '_' << j;
    }
  }
  f << '\n';

  const std::size_t nRows = table->GetNumberOfRows();
  for (std::size_t i = 0; i < nRows; ++i)
  {
    first = true;
    for (int c = 0; c < nCols; ++c)
    {
      const int nc = comps[static_cast<std::size_t>(c)];
      for (int j = 0; j < nc; ++j)
      {
        if (!first)
          f << ',';
        first = false;
        f << data[static_cast<std::size_t>(c)]
              [i * static_cast<std::size_t>(nc) + static_cast<std::size_t>(j)];
      }
    }
    f << '\n';
  }
}

svtkTable *ReadCSV(const std::string &path)
{
  std::ifstream f = OpenIn(path);

  std::string header;
  if (!std::getline(f, header))
    throw std::runtime_error("sio::ReadCSV: empty file '" + path + "'");

  std::vector<std::string> names;
  {
    std::istringstream iss(header);
    std::string tok;
    while (std::getline(iss, tok, ','))
      names.push_back(tok);
  }

  std::vector<std::vector<double>> cols(names.size());
  std::string line;
  while (std::getline(f, line))
  {
    if (line.empty())
      continue;
    std::istringstream iss(line);
    std::string tok;
    std::size_t c = 0;
    while (std::getline(iss, tok, ',') && c < cols.size())
      cols[c++].push_back(ParseNumber(tok, path, "field"));
    if (c != cols.size())
      throw std::runtime_error("sio::ReadCSV: ragged row in '" + path + "'");
  }

  svtkTable *table = svtkTable::New();
  for (std::size_t c = 0; c < cols.size(); ++c)
  {
    svtkAOSDoubleArray *a = svtkAOSDoubleArray::New(names[c]);
    a->GetVector() = cols[c];
    table->AddColumn(a);
    a->Delete();
  }
  return table;
}

// ---------------------------------------------------------------------------
void WriteVTI(const std::string &path, const svtkImageData *image)
{
  if (!image)
    throw std::invalid_argument("sio::WriteVTI: null image");

  std::ofstream f = OpenOut(path);

  int dims[3];
  double origin[3];
  double spacing[3];
  image->GetDimensions(dims);
  image->GetOrigin(origin);
  image->GetSpacing(spacing);

  f << "<?xml version=\"1.0\"?>\n"
    << "<VTKFile type=\"ImageData\" version=\"0.1\" "
       "byte_order=\"LittleEndian\">\n"
    << "  <ImageData WholeExtent=\"0 " << dims[0] - 1 << " 0 " << dims[1] - 1
    << " 0 " << dims[2] - 1 << "\" Origin=\"" << origin[0] << ' ' << origin[1]
    << ' ' << origin[2] << "\" Spacing=\"" << spacing[0] << ' ' << spacing[1]
    << ' ' << spacing[2] << "\">\n"
    << "    <Piece Extent=\"0 " << dims[0] - 1 << " 0 " << dims[1] - 1
    << " 0 " << dims[2] - 1 << "\">\n"
    << "      <PointData>\n";

  const svtkFieldData *pd = image->GetPointData();
  for (int a = 0; a < pd->GetNumberOfArrays(); ++a)
  {
    const svtkDataArray *arr = pd->GetArray(a);
    std::vector<double> values = svtkToDoubleVector(arr);
    f << "        <DataArray type=\"Float64\" Name=\"" << arr->GetName()
      << "\" NumberOfComponents=\"" << arr->GetNumberOfComponents()
      << "\" format=\"ascii\">\n          ";
    for (std::size_t i = 0; i < values.size(); ++i)
      f << values[i] << (i + 1 == values.size() ? "" : " ");
    f << "\n        </DataArray>\n";
  }

  f << "      </PointData>\n"
    << "    </Piece>\n"
    << "  </ImageData>\n"
    << "</VTKFile>\n";
}

svtkImageData *ReadVTI(const std::string &path)
{
  std::ifstream f = OpenIn(path);
  std::ostringstream oss;
  oss << f.rdbuf();
  const std::string text = oss.str();

  // minimal, format-specific parse of the files WriteVTI produces
  auto attr = [&text](std::size_t from, const std::string &key) -> std::string
  {
    const std::string pat = key + "=\"";
    const std::size_t b = text.find(pat, from);
    if (b == std::string::npos)
      throw std::runtime_error("sio::ReadVTI: missing attribute " + key);
    const std::size_t e = text.find('"', b + pat.size());
    if (e == std::string::npos)
      throw std::runtime_error("sio::ReadVTI: unterminated attribute " + key +
                               " (truncated file?)");
    return text.substr(b + pat.size(), e - b - pat.size());
  };

  const std::size_t imgPos = text.find("<ImageData");
  if (imgPos == std::string::npos)
    throw std::runtime_error("sio::ReadVTI: not an ImageData file");

  int ext[6] = {0, 0, 0, 0, 0, 0};
  {
    std::istringstream iss(attr(imgPos, "WholeExtent"));
    for (int &v : ext)
      if (!(iss >> v))
        throw std::runtime_error("sio::ReadVTI: malformed WholeExtent in '" +
                                 path + "'");
  }
  if (ext[1] < ext[0] || ext[3] < ext[2] || ext[5] < ext[4])
    throw std::runtime_error("sio::ReadVTI: inverted WholeExtent in '" + path +
                             "'");
  double origin[3] = {0, 0, 0};
  {
    std::istringstream iss(attr(imgPos, "Origin"));
    iss >> origin[0] >> origin[1] >> origin[2];
  }
  double spacing[3] = {1, 1, 1};
  {
    std::istringstream iss(attr(imgPos, "Spacing"));
    iss >> spacing[0] >> spacing[1] >> spacing[2];
  }

  svtkImageData *image = svtkImageData::New();
  image->SetDimensions(ext[1] - ext[0] + 1, ext[3] - ext[2] + 1,
                       ext[5] - ext[4] + 1);
  image->SetOrigin(origin[0], origin[1], origin[2]);
  image->SetSpacing(spacing[0], spacing[1], spacing[2]);

  std::size_t pos = text.find("<DataArray", imgPos);
  while (pos != std::string::npos)
  {
    const std::string name = attr(pos, "Name");
    const std::string compStr = attr(pos, "NumberOfComponents");
    int nComp = 0;
    try
    {
      nComp = std::stoi(compStr);
    }
    catch (const std::exception &)
    {
      throw std::runtime_error(
        "sio::ReadVTI: bad NumberOfComponents '" + compStr + "' in '" + path +
        "'");
    }
    if (nComp < 1)
      throw std::runtime_error(
        "sio::ReadVTI: bad NumberOfComponents '" + compStr + "' in '" + path +
        "'");

    const std::size_t tagEnd = text.find('>', pos);
    if (tagEnd == std::string::npos)
      throw std::runtime_error("sio::ReadVTI: unterminated <DataArray> in '" +
                               path + "'");
    const std::size_t b = tagEnd + 1;
    const std::size_t e = text.find("</DataArray>", b);
    if (e == std::string::npos)
      throw std::runtime_error("sio::ReadVTI: missing </DataArray> in '" +
                               path + "' (truncated file?)");

    std::vector<double> values;
    {
      std::istringstream iss(text.substr(b, e - b));
      double v = 0;
      while (iss >> v)
        values.push_back(v);
    }
    if (values.size() % static_cast<std::size_t>(nComp))
      throw std::runtime_error("sio::ReadVTI: value count of array '" + name +
                               "' is not a multiple of its components in '" +
                               path + "'");

    svtkAOSDoubleArray *a = svtkAOSDoubleArray::New(name);
    a->SetNumberOfComponents(nComp);
    a->GetVector() = values;
    image->GetPointData()->AddArray(a);
    a->Delete();

    pos = text.find("<DataArray", e);
  }
  return image;
}

// ---------------------------------------------------------------------------
void WriteParticlesVTK(const std::string &path, const svtkTable *table,
                       const std::string &xCol, const std::string &yCol,
                       const std::string &zCol)
{
  if (!table)
    throw std::invalid_argument("sio::WriteParticlesVTK: null table");

  const svtkDataArray *xa = table->GetColumnByName(xCol);
  const svtkDataArray *ya = table->GetColumnByName(yCol);
  const svtkDataArray *za = table->GetColumnByName(zCol);
  if (!xa || !ya || !za)
    throw std::invalid_argument(
      "sio::WriteParticlesVTK: coordinate columns missing");

  const std::vector<double> x = svtkToDoubleVector(xa);
  const std::vector<double> y = svtkToDoubleVector(ya);
  const std::vector<double> z = svtkToDoubleVector(za);
  const std::size_t n = x.size();

  std::ofstream f = OpenOut(path);
  f << "# vtk DataFile Version 3.0\n"
    << "newton++ particles\nASCII\nDATASET POLYDATA\n"
    << "POINTS " << n << " double\n";
  for (std::size_t i = 0; i < n; ++i)
    f << x[i] << ' ' << y[i] << ' ' << z[i] << '\n';

  f << "VERTICES " << n << ' ' << 2 * n << '\n';
  for (std::size_t i = 0; i < n; ++i)
    f << "1 " << i << '\n';

  f << "POINT_DATA " << n << '\n';
  for (int c = 0; c < table->GetNumberOfColumns(); ++c)
  {
    const svtkDataArray *col = table->GetColumn(c);
    const std::string &name = col->GetName();
    if (name == xCol || name == yCol || name == zCol ||
        col->GetNumberOfComponents() != 1)
      continue;
    const std::vector<double> v = svtkToDoubleVector(col);
    f << "SCALARS " << name << " double 1\nLOOKUP_TABLE default\n";
    for (std::size_t i = 0; i < n; ++i)
      f << v[i] << '\n';
  }
}

void WriteSeries(const std::string &path,
                 const std::vector<std::string> &columns,
                 const std::vector<std::vector<double>> &rows)
{
  std::ofstream f = OpenOut(path);
  f << '#';
  for (const auto &c : columns)
    f << ' ' << c;
  f << '\n';
  for (const auto &row : rows)
  {
    for (std::size_t i = 0; i < row.size(); ++i)
      f << (i ? " " : "") << row[i];
    f << '\n';
  }
}

} // namespace sio
