#ifndef sio_h
#define sio_h

/// @file sio.h
/// Lightweight writers/readers for the data products of the reproduction:
/// CSV tables (analysis output, benchmark series), XML ImageData (.vti,
/// ASCII — the binning grids of Figure 1), and legacy-VTK particle files
/// (Newton++'s "VTK compatible output format for post processing and
/// visualization"). The readers exist to round-trip test the writers.

#include "svtkDataObject.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sio
{

/// Write an opaque binary payload with a self-describing 24-byte header:
/// u8[4] magic "SIOB", u8 version (1), u8[3] pad, u64 payload bytes,
/// u64 FNV-1a checksum of the payload (both little endian). Used by the
/// posthoc writer for compressed table snapshots; the payload format is
/// the caller's business. Throws std::runtime_error when the file cannot
/// be written.
void WriteBlob(const std::string &path, const std::uint8_t *data,
               std::size_t bytes);

/// Convenience overload.
inline void WriteBlob(const std::string &path,
                      const std::vector<std::uint8_t> &bytes)
{
  WriteBlob(path, bytes.data(), bytes.size());
}

/// Read a blob written by WriteBlob, validating the magic, the declared
/// payload length against the real file size, and the checksum. Throws
/// std::runtime_error on truncated or corrupt files.
std::vector<std::uint8_t> ReadBlob(const std::string &path);

/// Write a table to CSV: a header row of column names, then one row per
/// tuple; multi-component columns expand to name_0, name_1, ...
/// Heterogeneous arrays are accessed through the data model's host path.
/// Throws std::runtime_error when the file cannot be written.
void WriteCSV(const std::string &path, const svtkTable *table);

/// Read a CSV written by WriteCSV. Every column becomes a
/// svtkAOSDoubleArray. The caller owns the returned reference.
svtkTable *ReadCSV(const std::string &path);

/// Write a uniform mesh and its point data as an ASCII XML ImageData
/// (.vti) file loadable by ParaView/VisIt.
void WriteVTI(const std::string &path, const svtkImageData *image);

/// Read a .vti written by WriteVTI (ASCII, point data only). The caller
/// owns the returned reference.
svtkImageData *ReadVTI(const std::string &path);

/// Write particles in legacy VTK polydata format (ASCII): POINTS from the
/// x/y/z columns of `table`, every other column as point scalars.
void WriteParticlesVTK(const std::string &path, const svtkTable *table,
                       const std::string &xCol = "x",
                       const std::string &yCol = "y",
                       const std::string &zCol = "z");

/// Write a simple gnuplot-friendly whitespace table: one header line
/// starting with '#', then rows.
void WriteSeries(const std::string &path,
                 const std::vector<std::string> &columns,
                 const std::vector<std::vector<double>> &rows);

} // namespace sio

#endif
