#include "vpMemoryPool.h"

#include "vpChecker.h"
#include "vpClock.h"
#include "vpFaultInjector.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <vector>

namespace vp
{

PoolStats &PoolStats::operator+=(const PoolStats &o)
{
  this->Hits += o.Hits;
  this->Misses += o.Misses;
  this->Frees += o.Frees;
  this->Trims += o.Trims;
  this->AllocRetries += o.AllocRetries;
  this->BytesCached += o.BytesCached;
  this->BytesInUse += o.BytesInUse;
  this->PeakBytesCached += o.PeakBytesCached;
  this->PeakBytesInUse += o.PeakBytesInUse;
  this->RequestedBytes += o.RequestedBytes;
  this->RoundedBytes += o.RoundedBytes;
  return *this;
}

std::size_t PoolSizeClass(std::size_t bytes, std::size_t minBlock)
{
  std::size_t cls = 1;
  while (cls < minBlock)
    cls <<= 1;
  while (cls < bytes)
    cls <<= 1;
  return cls;
}

// ---------------------------------------------------------------------------
MemoryPool::MemoryPool(int node, DeviceId device, MemSpace space)
  : Node_(node), Device_(device), Space_(space)
{
}

void *MemoryPool::Allocate(std::size_t bytes, PmKind pm, const Stream &stream,
                           const PoolConfig &cfg)
{
  const std::size_t rounded = PoolSizeClass(bytes, cfg.MinBlockBytes);
  const CostModel &cost = Platform::Get().Config().Cost;

  {
    std::lock_guard<std::mutex> lock(this->Mutex_);
    auto lit = this->Free_.find(rounded);
    if (lit != this->Free_.end() && !lit->second.empty())
    {
      // the requester's position in virtual time: its thread clock, or —
      // for a stream-ordered request — wherever the stream's queued work
      // already reaches, whichever is later.
      double now = ThisClock().Now();
      if (stream)
        now = std::max(now, stream.Get()->Completion());

      // injected lifetime bug: skip the stream-ready check so the
      // checker's premature-reuse detection is testable against reality
      const bool premature = fault::PrematureReuseEnabled();

      auto &blocks = lit->second;
      for (auto it = blocks.begin(); it != blocks.end(); ++it)
      {
        const bool sameStream = stream && it->FreedOn == stream;
        if (!sameStream && !premature && it->ReadyAt > now)
          continue; // the freeing stream point has not been reached

        void *p = it->Ptr;
        blocks.erase(it);
        check::OnPoolReuse(p, stream ? stream.Get() : nullptr, now);
        this->Stats_.BytesCached -= rounded;
        this->Stats_.Hits++;
        this->Stats_.RequestedBytes += bytes;
        this->Stats_.RoundedBytes += rounded;
        this->InUse_[p] = LiveBlock{rounded};
        this->Stats_.BytesInUse += rounded;
        this->Stats_.PeakBytesInUse =
          std::max(this->Stats_.PeakBytesInUse, this->Stats_.BytesInUse);

        // a pool hit is a stream-ordered allocation: charge the cheap
        // async latency, never the full allocation bookkeeping
        if (stream)
          stream.Get()->Extend(ThisClock().Now() + cost.AsyncAllocLatency);
        ThisClock().Advance(cost.AsyncAllocLatency);

        // preserve the platform's zero-initialization invariant
        std::memset(p, 0, rounded);
        return p;
      }
    }
  }

  // miss: the platform allocates (and charges its usual latency). When
  // that fails — a device memory limit or an injected fault — degrade
  // gracefully: release this pool's cache back to the platform and retry
  // once (cudaMallocAsync-under-pressure semantics).
  void *p = nullptr;
  try
  {
    // fault injection targets pool-routed allocations only: this is the
    // one allocation site with a graceful-degradation contract, so an
    // injected failure is absorbed here instead of unwinding a rank
    if (fault::ShouldFailAllocation())
    {
      std::ostringstream oss;
      oss << "MemoryPool::Allocate: injected allocation failure (" << rounded
          << " bytes)";
      throw Error(oss.str());
    }
    p = Platform::Get().Allocate(this->Space_, this->Device_, rounded, pm,
                                 stream);
  }
  catch (const Error &)
  {
    this->ReleaseCached();
    {
      std::lock_guard<std::mutex> lock(this->Mutex_);
      this->Stats_.AllocRetries++;
    }
    p = Platform::Get().Allocate(this->Space_, this->Device_, rounded, pm,
                                 stream);
  }
  Platform::Get().TagPooled(p, true);

  std::lock_guard<std::mutex> lock(this->Mutex_);
  this->Stats_.Misses++;
  this->Stats_.RequestedBytes += bytes;
  this->Stats_.RoundedBytes += rounded;
  this->InUse_[p] = LiveBlock{rounded};
  this->Stats_.BytesInUse += rounded;
  this->Stats_.PeakBytesInUse =
    std::max(this->Stats_.PeakBytesInUse, this->Stats_.BytesInUse);
  return p;
}

bool MemoryPool::Deallocate(void *p, const Stream &stream,
                            const PoolConfig &cfg)
{
  const CostModel &cost = Platform::Get().Config().Cost;

  std::lock_guard<std::mutex> lock(this->Mutex_);
  auto it = this->InUse_.find(p);
  if (it == this->InUse_.end())
    return false;

  const std::size_t rounded = it->second.Rounded;
  this->InUse_.erase(it);
  this->Stats_.BytesInUse -= rounded;

  // the free is an operation on the freeing stream: the block becomes
  // reusable (elsewhere) once all work queued there so far completes
  FreeBlock blk;
  blk.Ptr = p;
  blk.Bytes = rounded;
  blk.ReadyAt = ThisClock().Now();
  blk.FreedOn = stream;
  if (stream)
  {
    blk.ReadyAt = std::max(blk.ReadyAt, stream.Get()->Completion());
    stream.Get()->Extend(ThisClock().Now() + cost.AsyncAllocLatency);
  }
  ThisClock().Advance(cost.AsyncAllocLatency);

  check::OnPoolFree(p, stream ? stream.Get() : nullptr, blk.ReadyAt);

  this->Free_[rounded].push_back(blk);
  this->Stats_.Frees++;
  this->Stats_.BytesCached += rounded;
  this->Stats_.PeakBytesCached =
    std::max(this->Stats_.PeakBytesCached, this->Stats_.BytesCached);

  if (cfg.MaxCachedBytes && this->Stats_.BytesCached > cfg.MaxCachedBytes)
  {
    const double frac = std::clamp(cfg.TrimThreshold, 0.0, 1.0);
    this->TrimLocked(static_cast<std::size_t>(
      frac * static_cast<double>(cfg.MaxCachedBytes)));
  }
  return true;
}

void MemoryPool::TrimLocked(std::size_t target)
{
  // release oldest free points first until the cache fits the target.
  // kernels execute eagerly at submit time, so a cached block has no
  // pending real writes — releasing early is always safe; ReadyAt only
  // matters for the reuse cost model.
  while (this->Stats_.BytesCached > target)
  {
    auto oldest = this->Free_.end();
    for (auto it = this->Free_.begin(); it != this->Free_.end(); ++it)
    {
      if (it->second.empty())
        continue;
      if (oldest == this->Free_.end() ||
          it->second.front().ReadyAt < oldest->second.front().ReadyAt)
        oldest = it;
    }
    if (oldest == this->Free_.end())
      break;

    FreeBlock blk = oldest->second.front();
    oldest->second.pop_front();
    this->Stats_.BytesCached -= blk.Bytes;
    this->Stats_.Trims++;
    // the release is legitimate: untag so Platform::Free accepts the
    // block, and tell the checker the next free of this pointer is clean
    check::OnPoolRelease(blk.Ptr);
    Platform::Get().TagPooled(blk.Ptr, false);
    Platform::Get().Free(blk.Ptr);
  }
}

void MemoryPool::ReleaseCached()
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  this->TrimLocked(0);
  this->Free_.clear();
}

std::size_t MemoryPool::LiveBlocks() const
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  return this->InUse_.size();
}

PoolStats MemoryPool::Stats() const
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  return this->Stats_;
}

void MemoryPool::ResetStats()
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  PoolStats fresh;
  for (const auto &kv : this->Free_)
    for (const FreeBlock &blk : kv.second)
      fresh.BytesCached += blk.Bytes;
  for (const auto &kv : this->InUse_)
    fresh.BytesInUse += kv.second.Rounded;
  fresh.PeakBytesCached = fresh.BytesCached;
  fresh.PeakBytesInUse = fresh.BytesInUse;
  this->Stats_ = fresh;
}

// ---------------------------------------------------------------------------
PoolManager::PoolManager()
{
  // release cached platform memory before the platform rebuilds, so
  // Platform::Initialize's live-allocation check sees a clean registry
  Platform::AtInitialize([]() { PoolManager::Get().ReleaseAll(); });
}

PoolManager &PoolManager::Get()
{
  static PoolManager instance;
  return instance;
}

void PoolManager::Configure(const PoolConfig &cfg)
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  this->Config_ = cfg;
}

PoolConfig PoolManager::Config() const
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  return this->Config_;
}

bool PoolManager::Enabled()
{
  return PoolManager::Get().Config().Enabled;
}

MemoryPool &PoolManager::Pool(MemSpace space, DeviceId device)
{
  const int node = Platform::GetThisNode();
  const DeviceId dev =
    space == MemSpace::Device || space == MemSpace::Managed ? device
                                                            : HostDevice;
  std::lock_guard<std::mutex> lock(this->Mutex_);
  auto key = std::make_tuple(node, dev, static_cast<std::uint8_t>(space));
  auto it = this->Pools_.find(key);
  if (it == this->Pools_.end())
    it = this->Pools_
           .emplace(key, std::make_unique<MemoryPool>(node, dev, space))
           .first;
  return *it->second;
}

void *PoolManager::Allocate(MemSpace space, DeviceId device,
                            std::size_t bytes, PmKind pm, const Stream &stream)
{
  MemoryPool &pool = this->Pool(space, device);
  void *p = pool.Allocate(bytes, pm, stream, this->Config());
  std::lock_guard<std::mutex> lock(this->Mutex_);
  this->Owner_[p] = &pool;
  return p;
}

void PoolManager::Deallocate(void *p, const Stream &stream)
{
  if (!p)
    return;

  MemoryPool *pool = nullptr;
  {
    std::lock_guard<std::mutex> lock(this->Mutex_);
    auto it = this->Owner_.find(p);
    if (it != this->Owner_.end())
    {
      pool = it->second;
      this->Owner_.erase(it);
    }
  }

  if (!pool || !pool->Deallocate(p, stream, this->Config()))
    Platform::Get().Free(p); // not pool managed (mixed alloc/free paths)
}

bool PoolManager::Owns(const void *p) const
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  return this->Owner_.count(p) > 0;
}

void PoolManager::ReleaseAll()
{
  std::vector<MemoryPool *> pools;
  {
    std::lock_guard<std::mutex> lock(this->Mutex_);
    pools.reserve(this->Pools_.size());
    for (auto &kv : this->Pools_)
      pools.push_back(kv.second.get());
  }
  for (MemoryPool *pool : pools)
    pool->ReleaseCached();
}

PoolStats PoolManager::AggregateStats() const
{
  std::vector<const MemoryPool *> pools;
  {
    std::lock_guard<std::mutex> lock(this->Mutex_);
    pools.reserve(this->Pools_.size());
    for (const auto &kv : this->Pools_)
      pools.push_back(kv.second.get());
  }
  PoolStats total;
  for (const MemoryPool *pool : pools)
    total += pool->Stats();
  return total;
}

void PoolManager::ResetStats()
{
  std::vector<MemoryPool *> pools;
  {
    std::lock_guard<std::mutex> lock(this->Mutex_);
    pools.reserve(this->Pools_.size());
    for (auto &kv : this->Pools_)
      pools.push_back(kv.second.get());
  }
  for (MemoryPool *pool : pools)
    pool->ResetStats();
}

} // namespace vp
