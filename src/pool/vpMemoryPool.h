#ifndef vpMemoryPool_h
#define vpMemoryPool_h

/// @file vpMemoryPool.h
/// Stream-ordered caching memory pool for the virtual platform — the same
/// shape as CUDA's async memory pools and the caching allocators used by
/// ML training/inference stacks. A vp::MemoryPool serves one (node,
/// device, memory-space) triple with size-class free lists; freed blocks
/// are recycled instead of returned to the platform, so the hot in situ
/// loops (per-step cross-PM temporaries, async deep copies, binning
/// scratch grids) pay CostModel::AsyncAllocLatency on a hit instead of
/// AllocLatency plus registry churn on every allocation.
///
/// Stream-ordered reuse rule: a deallocation records the freeing stream's
/// completion point (or the freeing thread's virtual time for a null
/// stream). A cached block becomes reusable
///  * immediately on the stream it was freed on (in-order streams make
///    the reuse safe, exactly like cudaMallocAsync), and
///  * on any other stream or thread only once the requester's virtual
///    clock has passed the recorded free point.
/// Blocks that are not yet reusable are skipped — such a request is a
/// miss and falls through to the platform allocator.
///
/// Trimming: when the bytes cached by one pool exceed
/// PoolConfig::MaxCachedBytes, ready blocks are released back to the
/// platform (oldest free point first) until the cache is below
/// TrimThreshold * MaxCachedBytes — high-water-mark trimming as in
/// cudaMemPoolTrimTo.
///
/// PoolStats counts hits, misses, frees, trims, cached/in-use bytes with
/// peaks, and internal fragmentation; sensei::ExportPoolStats publishes
/// the block through the profiler.

#include "vpMemory.h"
#include "vpPlatform.h"
#include "vpStream.h"
#include "vpTypes.h"

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace vp
{

/// Behaviour knobs, applied process wide through PoolManager::Configure.
struct PoolConfig
{
  /// Route implicit allocations (PM MallocAsync, data-model temporaries)
  /// through the pool. Explicit pool allocators always use the pool.
  bool Enabled = false;

  /// Cap on cached (free) bytes per pool; exceeding it triggers a trim.
  /// 0 means unlimited (never trim).
  std::size_t MaxCachedBytes = std::size_t(256) << 20;

  /// Trim target as a fraction of MaxCachedBytes in (0, 1].
  double TrimThreshold = 0.5;

  /// Smallest size class; requests are rounded up to a power of two of at
  /// least this many bytes.
  std::size_t MinBlockBytes = 256;
};

/// Counter block for one pool (or an aggregate over pools).
struct PoolStats
{
  std::uint64_t Hits = 0;    ///< allocations served from the free lists
  std::uint64_t Misses = 0;  ///< allocations that fell through to the platform
  std::uint64_t Frees = 0;   ///< deallocations returned to the free lists
  std::uint64_t Trims = 0;   ///< blocks released by high-water trimming
  std::uint64_t AllocRetries = 0; ///< platform allocation failures absorbed
                                  ///< by releasing the cache and retrying
  std::size_t BytesCached = 0;     ///< bytes currently in the free lists
  std::size_t BytesInUse = 0;      ///< pooled bytes currently handed out
  std::size_t PeakBytesCached = 0; ///< high-water mark of BytesCached
  std::size_t PeakBytesInUse = 0;  ///< high-water mark of BytesInUse
  std::uint64_t RequestedBytes = 0; ///< sum of requested sizes
  std::uint64_t RoundedBytes = 0;   ///< sum of size-class rounded sizes

  /// Fraction of allocations served from cache.
  double HitRate() const
  {
    const std::uint64_t n = this->Hits + this->Misses;
    return n ? static_cast<double>(this->Hits) / static_cast<double>(n) : 0.0;
  }

  /// Internal fragmentation from size-class rounding: wasted / rounded.
  double Fragmentation() const
  {
    return this->RoundedBytes
             ? 1.0 - static_cast<double>(this->RequestedBytes) /
                       static_cast<double>(this->RoundedBytes)
             : 0.0;
  }

  PoolStats &operator+=(const PoolStats &o);
};

/// Round `bytes` up to its size class: the next power of two that is at
/// least `minBlock` (itself rounded to a power of two).
std::size_t PoolSizeClass(std::size_t bytes, std::size_t minBlock);

/// One caching pool serving a single (node, device, memory space).
/// Thread safe. Obtain instances through PoolManager.
class MemoryPool
{
public:
  MemoryPool(int node, DeviceId device, MemSpace space);

  MemoryPool(const MemoryPool &) = delete;
  MemoryPool &operator=(const MemoryPool &) = delete;

  /// Allocate `bytes` (rounded to a size class) honouring the
  /// stream-ordered reuse rule. On a hit the block is recycled and
  /// AsyncAllocLatency is charged (to `stream` when given, else to the
  /// calling thread); on a miss the platform allocates and charges its
  /// usual latency. Returned memory is zeroed either way.
  void *Allocate(std::size_t bytes, PmKind pm, const Stream &stream,
                 const PoolConfig &cfg);

  /// Return a pooled block to the free lists. The block becomes reusable
  /// at the freeing stream's current completion point (the calling
  /// thread's virtual time for a null stream). May trim per `cfg`.
  /// Returns false when `p` was not handed out by this pool.
  bool Deallocate(void *p, const Stream &stream, const PoolConfig &cfg);

  /// Release every cached block back to the platform (in-use blocks are
  /// untouched). Counted as trims.
  void ReleaseCached();

  /// Number of blocks currently handed out.
  std::size_t LiveBlocks() const;

  /// Snapshot of the counters.
  PoolStats Stats() const;

  /// Zero the counters (cached/in-use gauges are recomputed, not reset).
  void ResetStats();

  int Node() const noexcept { return this->Node_; }
  DeviceId Device() const noexcept { return this->Device_; }
  MemSpace Space() const noexcept { return this->Space_; }

private:
  /// One cached block awaiting reuse.
  struct FreeBlock
  {
    void *Ptr = nullptr;
    std::size_t Bytes = 0;  ///< size-class rounded
    double ReadyAt = 0.0;   ///< virtual time the freeing stream point passes
    Stream FreedOn;         ///< stream the block was freed on (may be null)
  };

  /// Bookkeeping for a handed-out block.
  struct LiveBlock
  {
    std::size_t Rounded = 0;
  };

  void TrimLocked(std::size_t target); ///< requires Mutex_ held

  int Node_ = 0;
  DeviceId Device_ = HostDevice;
  MemSpace Space_ = MemSpace::Host;

  mutable std::mutex Mutex_;
  std::map<std::size_t, std::deque<FreeBlock>> Free_; ///< size class -> blocks
  std::unordered_map<void *, LiveBlock> InUse_;
  PoolStats Stats_;
};

/// Process-wide owner of every MemoryPool, keyed by (node, device, space).
/// Registers a Platform::AtInitialize hook on first use so cached blocks
/// are released before the platform rebuilds.
class PoolManager
{
public:
  /// The singleton, created on first use.
  static PoolManager &Get();

  /// Replace the process-wide configuration. Disabling does not release
  /// existing cache; call ReleaseAll for that.
  void Configure(const PoolConfig &cfg);

  /// The active configuration.
  PoolConfig Config() const;

  /// True when implicit routing through the pool is on (shorthand used by
  /// the PM front ends and the data model's temporary allocation).
  static bool Enabled();

  /// Allocate through the pool for (calling thread's node, device, space).
  void *Allocate(MemSpace space, DeviceId device, std::size_t bytes,
                 PmKind pm, const Stream &stream = Stream());

  /// Return a pool-managed block. Falls back to Platform::Free for
  /// pointers no pool knows (defensive: mixed alloc/free paths).
  void Deallocate(void *p, const Stream &stream = Stream());

  /// True when `p` was handed out by some pool and not yet returned.
  bool Owns(const void *p) const;

  /// The pool for (calling thread's node, device, space), created on
  /// first use.
  MemoryPool &Pool(MemSpace space, DeviceId device);

  /// Release all cached blocks in every pool.
  void ReleaseAll();

  /// Counters summed over every pool.
  PoolStats AggregateStats() const;

  /// Zero every pool's counters.
  void ResetStats();

private:
  PoolManager();

  mutable std::mutex Mutex_;
  PoolConfig Config_;
  std::map<std::tuple<int, DeviceId, std::uint8_t>,
           std::unique_ptr<MemoryPool>>
    Pools_;
  std::unordered_map<const void *, MemoryPool *> Owner_;
};

} // namespace vp

#endif
