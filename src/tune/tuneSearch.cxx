#include "tuneSearch.h"

#include "cmpCodec.h"
#include "schedPipeline.h"
#include "vpFaultInjector.h"
#include "senseiProfiler.h"
#include "sxml.h"
#include "vpClock.h"
#include "vpMemoryPool.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace tune
{

// -------------------------------------------------------------- evaluator

Evaluator::Evaluator(EvalConfig cfg) : Cfg_(std::move(cfg))
{
  this->Cases_ =
    this->Cfg_.Cases.empty() ? campaign::AllCases() : this->Cfg_.Cases;
}

EvalResult Evaluator::Run(const ConfigPoint &p)
{
  EvalResult out;

  campaign::CampaignConfig g = this->Cfg_.Campaign;
  g.Lockstep = true; // candidate scores must be bit-reproducible
  auto prev = g.ConfigMutator;
  g.ConfigMutator = [&p, prev](sxml::Element &root)
  {
    if (prev)
      prev(root);
    ApplyToDoc(p, root);
    // lockstep scoring requires the bit-exact serial engine: a threaded
    // exec region makes the token-holding rank block in a real join
    // whose completion can depend on another rank's future submissions,
    // which deadlocks cooperative scheduling. Virtual time does not
    // depend on the engine mode (only wall clock does), so neutralizing
    // the mode leaves every score unchanged.
    root.FindOrAddChild("exec")->SetAttribute("mode", "serial");
  };

  try
  {
    // RunCase resets sched/exec/graph per case but the pool, codec, and
    // fault-injector configurations are sticky process state: start them
    // from defaults so nothing a previous candidate (or an earlier
    // workload that armed the injector) can outlive its evaluation — the
    // candidate's XML then specifies every knob explicitly, and a
    // campaign that wants faults arms them through its own ConfigMutator
    vp::PoolManager::Get().Configure(vp::PoolConfig());
    cmp::Configure(cmp::Config());
    vp::fault::Reset();

    // score every case from virtual epoch 0: case durations are tiny
    // against an accumulated clock, so `end - start` picks up absolute-
    // offset-dependent rounding unless each case is rebased (ClockScope
    // restores the caller's clock afterwards)
    vp::ClockScope rebase(0.0);

    double total = 0.0;
    double peak = 0.0;
    for (const campaign::CaseConfig &c : this->Cases_)
    {
      // per-case footprint: drop cached blocks and zero the high-water
      // marks so PeakBytesCached describes this case alone
      vp::PoolManager::Get().ReleaseAll();
      vp::PoolManager::Get().ResetStats();
      cmp::ResetStats();

      vp::ThisClock().Set(0.0);
      const campaign::CaseResult r = campaign::RunCase(c, g);
      total += r.TotalSeconds;

      const sched::PipelineStats ss = sched::AggregateStats();
      const vp::PoolStats ps = vp::PoolManager::Get().AggregateStats();
      peak = std::max(peak, static_cast<double>(ss.PeakQueuedBytes) +
                              static_cast<double>(ps.PeakBytesCached));
    }

    out.TotalSeconds = total;
    out.PeakBytes = peak;
    // SET-style objective t^k · p; k = 0 degenerates to pure time, and
    // a configuration that queues/caches nothing scores p = 1 so the
    // product stays meaningful
    out.Cost = this->Cfg_.K == 0.0
                 ? total
                 : std::pow(total, this->Cfg_.K) * std::max(peak, 1.0);
    out.Valid = true;
  }
  catch (const std::exception &e)
  {
    out.Valid = false;
    out.Error = e.what();
    out.Cost = std::numeric_limits<double>::infinity();
  }
  return out;
}

EvalResult Evaluator::Evaluate(const ConfigPoint &p)
{
  const std::string key = EmitXml(p);
  auto it = this->Cache_.find(key);
  if (it != this->Cache_.end())
  {
    ++this->Hits_;
    return it->second;
  }
  EvalResult r = this->Run(p);
  ++this->Misses_;
  this->Cache_.emplace(key, r);
  return r;
}

EvalResult Evaluator::EvaluateXml(const std::string &configXml)
{
  ConfigPoint p;
  try
  {
    p = ParseXml(configXml);
  }
  catch (const std::exception &e)
  {
    EvalResult out;
    out.Valid = false;
    out.Error = e.what();
    out.Cost = std::numeric_limits<double>::infinity();
    return out;
  }
  return this->Evaluate(p);
}

// --------------------------------------------------------------- searches

namespace
{

// shared bookkeeping: seed the search at the default configuration, then
// fold in any warm-start candidates so a walk can begin from the best
// known point rather than from scratch
SearchResult Seed(Evaluator &ev, const char *name, long startMisses,
                  const SearchConfig &cfg)
{
  SearchResult r;
  r.Algorithm = name;
  ConfigPoint origin;
  EvalResult e = ev.Evaluate(origin);
  r.InitialCost = e.Cost;
  r.Best = origin;
  r.BestEval = e;
  r.Trace.push_back(TraceEntry{ev.Evaluations() - startMisses,
                               std::string(), e.Cost, e.Cost, true});
  for (const ConfigPoint &w : cfg.Warm)
  {
    const EvalResult we = ev.Evaluate(w);
    const bool better = we.Valid && we.Cost < r.BestEval.Cost;
    if (better)
    {
      r.Best = w;
      r.BestEval = we;
    }
    r.Trace.push_back(TraceEntry{ev.Evaluations() - startMisses,
                                 "warm start", we.Cost, r.BestEval.Cost,
                                 better});
  }
  return r;
}

} // namespace

SearchResult Anneal(Evaluator &ev, const KnobSpace &space,
                    const SearchConfig &cfg)
{
  std::mt19937_64 rng(cfg.Seed);
  const long start = ev.Evaluations();
  SearchResult r = Seed(ev, "anneal", start, cfg);

  ConfigPoint cur = r.Best;
  EvalResult curE = r.BestEval;
  double T = cfg.T0;

  // restart boundaries split the budget into Restarts+1 segments
  const long segment = cfg.Restarts > 0
                         ? std::max(1, cfg.Budget / (cfg.Restarts + 1))
                         : cfg.Budget + 1;
  long nextRestart = segment;

  // after convergence every neighbour may be memoized: bound the number
  // of proposals so the loop terminates even when no budget is consumed
  const long maxProposals = 50L * cfg.Budget + 100;
  for (long prop = 0; prop < maxProposals; ++prop)
  {
    const long used = ev.Evaluations() - start;
    if (used >= cfg.Budget)
      break;
    if (used >= nextRestart)
    {
      cur = r.Best; // restart from the incumbent, reheated
      curE = r.BestEval;
      T = std::max(cfg.T0 * 0.5, cfg.TMin);
      nextRestart += segment;
    }

    ConfigPoint cand = cur;
    const std::string move = space.Neighbor(cand, rng);
    if (move.empty())
      break;

    const EvalResult ce = ev.Evaluate(cand);
    const double denom = std::max(curE.Cost, 1e-12);
    const double rel = (ce.Cost - curE.Cost) / denom;
    bool accept = false;
    if (ce.Valid)
    {
      if (rel <= 0.0)
        accept = true;
      else
      {
        std::uniform_real_distribution<double> u(0.0, 1.0);
        accept = u(rng) < std::exp(-rel / std::max(T, cfg.TMin));
      }
    }
    if (accept)
    {
      cur = cand;
      curE = ce;
      ++r.Accepted;
    }
    if (ce.Valid && ce.Cost < r.BestEval.Cost)
    {
      r.Best = cand;
      r.BestEval = ce;
    }
    r.Trace.push_back(TraceEntry{ev.Evaluations() - start, move, ce.Cost,
                                 r.BestEval.Cost, accept});
    T = std::max(T * cfg.Cooling, cfg.TMin);
  }

  r.Evaluations = ev.Evaluations() - start;
  return r;
}

SearchResult RandomSearch(Evaluator &ev, const KnobSpace &space,
                          const SearchConfig &cfg)
{
  std::mt19937_64 rng(cfg.Seed);
  const long start = ev.Evaluations();
  SearchResult r = Seed(ev, "random", start, cfg);

  const long maxProposals = 50L * cfg.Budget + 100;
  for (long prop = 0; prop < maxProposals; ++prop)
  {
    if (ev.Evaluations() - start >= cfg.Budget)
      break;
    const ConfigPoint cand = space.Random(rng);
    const EvalResult ce = ev.Evaluate(cand);
    const bool better = ce.Valid && ce.Cost < r.BestEval.Cost;
    if (better)
    {
      r.Best = cand;
      r.BestEval = ce;
      ++r.Accepted;
    }
    r.Trace.push_back(TraceEntry{ev.Evaluations() - start, "random draw",
                                 ce.Cost, r.BestEval.Cost, better});
  }

  r.Evaluations = ev.Evaluations() - start;
  return r;
}

SearchResult GreedyClimb(Evaluator &ev, const KnobSpace &space,
                         const SearchConfig &cfg)
{
  std::mt19937_64 rng(cfg.Seed);
  const long start = ev.Evaluations();
  SearchResult r = Seed(ev, "greedy", start, cfg);

  ConfigPoint cur = r.Best;
  EvalResult curE = r.BestEval;
  const long patience =
    2L * static_cast<long>(std::max<std::size_t>(space.Knobs().size(), 1));
  long rejects = 0;

  const long maxProposals = 50L * cfg.Budget + 100;
  for (long prop = 0; prop < maxProposals; ++prop)
  {
    if (ev.Evaluations() - start >= cfg.Budget)
      break;
    if (rejects > patience)
    {
      // stuck in a local minimum: random restart
      cur = space.Random(rng);
      curE = ev.Evaluate(cur);
      rejects = 0;
      if (curE.Valid && curE.Cost < r.BestEval.Cost)
      {
        r.Best = cur;
        r.BestEval = curE;
      }
      r.Trace.push_back(TraceEntry{ev.Evaluations() - start, "restart",
                                   curE.Cost, r.BestEval.Cost, true});
      continue;
    }

    ConfigPoint cand = cur;
    const std::string move = space.Neighbor(cand, rng);
    if (move.empty())
      break;
    const EvalResult ce = ev.Evaluate(cand);
    const bool accept = ce.Valid && ce.Cost < curE.Cost;
    if (accept)
    {
      cur = cand;
      curE = ce;
      rejects = 0;
      ++r.Accepted;
      if (ce.Cost < r.BestEval.Cost)
      {
        r.Best = cand;
        r.BestEval = ce;
      }
    }
    else
      ++rejects;
    r.Trace.push_back(TraceEntry{ev.Evaluations() - start, move, ce.Cost,
                                 r.BestEval.Cost, accept});
  }

  r.Evaluations = ev.Evaluations() - start;
  return r;
}

void ExportTuneStats(sensei::Profiler &prof, const Evaluator &ev,
                     const SearchResult &r)
{
  prof.Event("tune::evaluations", static_cast<double>(ev.Evaluations()));
  prof.Event("tune::cache_hits", static_cast<double>(ev.CacheHits()));
  prof.Event("tune::accepted", static_cast<double>(r.Accepted));
  prof.Event("tune::initial_cost", r.InitialCost);
  prof.Event("tune::best_cost", r.BestEval.Cost);
  prof.Event("tune::best_total_seconds", r.BestEval.TotalSeconds);
  prof.Event("tune::best_peak_bytes", r.BestEval.PeakBytes);
  prof.Event("tune::improvement",
             r.BestEval.Cost > 0.0 ? r.InitialCost / r.BestEval.Cost : 0.0);
}

} // namespace tune
