#ifndef tuneOnline_h
#define tuneOnline_h

/// @file tuneOnline.h
/// Online knob adaptation from profiler counters. Offline search picks a
/// configuration for the workload it measured; a live run drifts — device
/// contention appears, payloads grow, another tenant lands on the in situ
/// GPU. The OnlineTuner closes the loop at run time: installed as the
/// driver's step hook, it snapshots the global profiler between
/// simulation steps, folds WindowSteps steps into one measurement window,
/// and hill-climbs the *bounded-risk* knobs — the `<sched>` queue depth,
/// backpressure mode and placement policy, and the `<exec>` worker-pool
/// width — by trial: apply one change, measure one window, keep it only
/// when the window's virtual time improves by at least the hysteresis
/// margin, revert (with a cooldown on that move) otherwise.
///
/// Two guards keep it from thrashing state that is expensive to rebuild:
/// the hysteresis margin means a kept change must earn its keep, and
/// placement-policy moves are frozen while captured step-graph sessions
/// are actively replaying (a policy flip would repin every armed graph).

#include "senseiProfiler.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace newton
{
class Driver;
}

namespace tune
{

/// Controller knobs.
struct OnlineConfig
{
  /// Simulation steps per measurement window.
  int WindowSteps = 2;

  /// Relative improvement a trial window must show over the baseline
  /// window for its change to be kept.
  double Hysteresis = 0.02;

  /// Queue-depth ceiling for deepening moves (0 = unbounded is reached
  /// by deepening past this ceiling).
  long MaxQueueDepth = 8;

  /// Propose placement-policy changes (still frozen while graph
  /// sessions replay).
  bool AdaptPolicy = true;

  /// Propose exec worker-pool width changes (only in threads mode).
  bool AdaptExecThreads = true;

  /// Windows a reverted move sits out before being proposed again.
  int CooldownWindows = 4;
};

/// Decision counters.
struct OnlineStats
{
  long Windows = 0;      ///< measurement windows completed
  long Trials = 0;       ///< changes applied on trial
  long Kept = 0;         ///< trials that beat the hysteresis margin
  long Reverted = 0;     ///< trials rolled back
  long PolicyFrozen = 0; ///< policy proposals skipped (graph replaying)
};

/// Between-steps hill climber over the live scheduler/executor
/// configuration. Single-rank: attach one instance to one driver (the
/// knobs it moves are process wide).
class OnlineTuner
{
public:
  explicit OnlineTuner(OnlineConfig cfg = OnlineConfig());

  /// Install this tuner as `driver`'s step hook.
  void Attach(newton::Driver &driver);

  /// The step hook body; may also be called directly by a custom loop
  /// with a monotonically increasing 0-based step index.
  void OnStep(long step);

  const OnlineStats &GetStats() const { return this->Stats_; }

  /// Human-readable decision log, one line per window action.
  const std::vector<std::string> &Decisions() const
  {
    return this->Decisions_;
  }

  /// Record the decision counters as profiler events
  /// (tune::online_windows, tune::online_kept, tune::online_reverted,
  /// tune::online_policy_frozen, tune::online_trials).
  void ExportStats(sensei::Profiler &prof) const;

private:
  struct Move;

  double CloseWindow();            ///< delta the window, return its metric
  bool ProposeNext(double metric); ///< apply the next eligible move
  void DecideTrial(double metric);

  OnlineConfig Cfg_;
  OnlineStats Stats_;
  std::vector<std::string> Decisions_;

  sensei::Profiler::CounterSnapshot LastSnap_;
  bool HaveSnap_ = false;
  std::uint64_t LastReplays_ = 0;
  bool GraphActive_ = false; ///< replays observed in the last window

  int StepsInWindow_ = 0;
  enum class Phase
  {
    Baseline,
    Trial
  };
  Phase Phase_ = Phase::Baseline;
  double Baseline_ = 0.0;
  bool HaveBaseline_ = false;

  // trial bookkeeping
  std::string TrialName_;
  std::function<void()> TrialRevert_;
  int TrialKind_ = -1;

  std::size_t NextKind_ = 0;       ///< round-robin cursor over move kinds
  std::vector<int> Cooldown_;      ///< per-kind windows to sit out
};

} // namespace tune

#endif
