#include "tuneOnline.h"

#include "execEngine.h"
#include "graphCapture.h"
#include "newtonDriver.h"
#include "schedPipeline.h"
#include "schedPolicy.h"

#include <algorithm>
#include <sstream>

namespace tune
{

/// One candidate adjustment: how to apply it and how to undo it.
struct OnlineTuner::Move
{
  std::string Name;
  std::function<void()> Apply;
  std::function<void()> Revert;
  bool IsPolicy = false;
};

namespace
{

// the depth ladder deepening moves walk: bounded depths then unbounded
long DeeperDepth(long d, long maxDepth)
{
  if (d == 0)
    return 0; // already unbounded
  const long next = d * 2;
  return next > maxDepth ? 0 : next;
}

long ShallowerDepth(long d, long maxDepth)
{
  if (d == 0)
    return maxDepth;
  return std::max(1L, d / 2);
}

} // namespace

OnlineTuner::OnlineTuner(OnlineConfig cfg) : Cfg_(std::move(cfg))
{
  // move kinds, round-robin order: 0 deepen queue, 1 shallow queue,
  // 2 next backpressure, 3 next policy, 4 widen exec, 5 narrow exec
  this->Cooldown_.assign(6, 0);
}

void OnlineTuner::Attach(newton::Driver &driver)
{
  driver.SetStepHook([this](long s) { this->OnStep(s); });
}

double OnlineTuner::CloseWindow()
{
  sensei::Profiler &prof = sensei::Profiler::Global();
  const sensei::Profiler::CounterSnapshot now = prof.Snapshot();
  double metric = 0.0;
  if (this->HaveSnap_)
  {
    const sensei::Profiler::CounterSnapshot d =
      sensei::Profiler::Delta(now, this->LastSnap_);
    auto total = [&d](const char *name)
    {
      auto it = d.find(name);
      return it == d.end() ? 0.0 : it->second.Total;
    };
    // what the simulation actually observed this window: solver time
    // plus the in situ submission/stall time on its critical path
    metric = total("driver::solver") + total("driver::insitu");
  }
  this->LastSnap_ = now;
  this->HaveSnap_ = true;

  // graph activity: replays observed in this window freeze policy moves
  const std::uint64_t replays = vp::graph::Stats().Replays;
  this->GraphActive_ = vp::graph::Enabled() && replays > this->LastReplays_;
  this->LastReplays_ = replays;
  return metric;
}

bool OnlineTuner::ProposeNext(double metric)
{
  const sched::SchedConfig sc = sched::GetConfig();
  const vp::exec::ExecConfig xc = vp::exec::GetConfig();

  auto makeMove = [&](std::size_t kind) -> Move
  {
    Move m;
    switch (kind)
    {
      case 0: // deepen the queue (more in-flight payloads)
      {
        const long next = DeeperDepth(sc.QueueDepth, this->Cfg_.MaxQueueDepth);
        if (next == sc.QueueDepth)
          break;
        m.Name = "sched.queue_depth " + std::to_string(sc.QueueDepth) +
                 " -> " + std::to_string(next);
        m.Apply = [sc, next]()
        {
          sched::SchedConfig c = sc;
          c.QueueDepth = next;
          sched::Configure(c);
        };
        m.Revert = [sc]() { sched::Configure(sc); };
        break;
      }
      case 1: // shallow the queue (less buffered memory, earlier pressure)
      {
        const long next =
          ShallowerDepth(sc.QueueDepth, this->Cfg_.MaxQueueDepth);
        if (next == sc.QueueDepth)
          break;
        m.Name = "sched.queue_depth " + std::to_string(sc.QueueDepth) +
                 " -> " + std::to_string(next);
        m.Apply = [sc, next]()
        {
          sched::SchedConfig c = sc;
          c.QueueDepth = next;
          sched::Configure(c);
        };
        m.Revert = [sc]() { sched::Configure(sc); };
        break;
      }
      case 2: // next backpressure mode: block -> drop-oldest -> coalesce
      {
        const auto next = static_cast<sched::Backpressure>(
          (static_cast<int>(sc.Pressure) + 1) % 3);
        m.Name = std::string("sched.backpressure ") +
                 sched::BackpressureName(sc.Pressure) + " -> " +
                 sched::BackpressureName(next);
        m.Apply = [sc, next]()
        {
          sched::SchedConfig c = sc;
          c.Pressure = next;
          sched::Configure(c);
        };
        m.Revert = [sc]() { sched::Configure(sc); };
        break;
      }
      case 3: // next placement policy (frozen while graphs replay)
      {
        if (!this->Cfg_.AdaptPolicy)
          break;
        if (this->GraphActive_)
        {
          ++this->Stats_.PolicyFrozen;
          break;
        }
        const auto next = static_cast<sched::PolicyKind>(
          (static_cast<int>(sc.Policy) + 1) % 3);
        m.Name = std::string("sched.policy ") +
                 sched::PolicyKindName(sc.Policy) + " -> " +
                 sched::PolicyKindName(next);
        m.Apply = [sc, next]()
        {
          sched::SchedConfig c = sc;
          c.Policy = next;
          sched::Configure(c);
        };
        m.Revert = [sc]() { sched::Configure(sc); };
        m.IsPolicy = true;
        break;
      }
      case 4: // widen the exec worker pool
      case 5: // narrow it
      {
        if (!this->Cfg_.AdaptExecThreads ||
            xc.ExecMode != vp::exec::Mode::Threads)
          break;
        const int cur = std::max(1, xc.Threads);
        const int next =
          kind == 4 ? std::min(8, cur * 2) : std::max(1, cur / 2);
        if (next == cur && !(kind == 5 && xc.Threads == 0))
          break;
        m.Name = "exec.threads " + std::to_string(xc.Threads) + " -> " +
                 std::to_string(next);
        m.Apply = [xc, next]()
        {
          vp::exec::ExecConfig c = xc;
          c.Threads = next;
          vp::exec::Configure(c);
        };
        m.Revert = [xc]() { vp::exec::Configure(xc); };
        break;
      }
      default:
        break;
    }
    return m;
  };

  for (std::size_t tried = 0; tried < this->Cooldown_.size(); ++tried)
  {
    const std::size_t kind = this->NextKind_;
    this->NextKind_ = (this->NextKind_ + 1) % this->Cooldown_.size();
    if (this->Cooldown_[kind] > 0)
      continue;
    Move m = makeMove(kind);
    if (!m.Apply)
      continue;

    m.Apply();
    this->TrialName_ = m.Name;
    this->TrialRevert_ = m.Revert;
    this->TrialKind_ = static_cast<int>(kind);
    this->Phase_ = Phase::Trial;
    ++this->Stats_.Trials;

    std::ostringstream os;
    os << "window " << this->Stats_.Windows << ": trial " << m.Name
       << " (baseline " << metric << "s)";
    this->Decisions_.push_back(os.str());
    return true;
  }
  return false;
}

void OnlineTuner::DecideTrial(double metric)
{
  const bool keep =
    this->HaveBaseline_ && this->Baseline_ > 0.0 &&
    metric <= this->Baseline_ * (1.0 - this->Cfg_.Hysteresis);

  std::ostringstream os;
  os << "window " << this->Stats_.Windows << ": " << this->TrialName_
     << " measured " << metric << "s vs baseline " << this->Baseline_
     << "s -> " << (keep ? "kept" : "reverted");
  this->Decisions_.push_back(os.str());

  if (keep)
  {
    ++this->Stats_.Kept;
    this->Baseline_ = metric; // the improved window is the new baseline
  }
  else
  {
    ++this->Stats_.Reverted;
    if (this->TrialRevert_)
      this->TrialRevert_();
    if (this->TrialKind_ >= 0)
      this->Cooldown_[static_cast<std::size_t>(this->TrialKind_)] =
        this->Cfg_.CooldownWindows;
  }
  this->TrialName_.clear();
  this->TrialRevert_ = nullptr;
  this->TrialKind_ = -1;
  this->Phase_ = Phase::Baseline;
}

void OnlineTuner::OnStep(long /*step*/)
{
  if (++this->StepsInWindow_ < this->Cfg_.WindowSteps)
    return;
  this->StepsInWindow_ = 0;

  const double metric = this->CloseWindow();
  const bool first = this->Stats_.Windows == 0;
  ++this->Stats_.Windows;
  for (int &c : this->Cooldown_)
    c = std::max(0, c - 1);
  if (first)
    return; // the first window only seeds the snapshot

  if (this->Phase_ == Phase::Trial)
  {
    this->DecideTrial(metric);
    return;
  }

  // baseline phase: refresh the reference (the workload may have
  // shifted under us), then put the next eligible change on trial
  this->Baseline_ = metric;
  this->HaveBaseline_ = true;
  this->ProposeNext(metric);
}

void OnlineTuner::ExportStats(sensei::Profiler &prof) const
{
  prof.Event("tune::online_windows", static_cast<double>(this->Stats_.Windows));
  prof.Event("tune::online_trials", static_cast<double>(this->Stats_.Trials));
  prof.Event("tune::online_kept", static_cast<double>(this->Stats_.Kept));
  prof.Event("tune::online_reverted",
             static_cast<double>(this->Stats_.Reverted));
  prof.Event("tune::online_policy_frozen",
             static_cast<double>(this->Stats_.PolicyFrozen));
}

} // namespace tune
