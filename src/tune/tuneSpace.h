#ifndef tuneSpace_h
#define tuneSpace_h

/// @file tuneSpace.h
/// The campaign auto-tuner's configuration-space model. PRs 1-7 grew the
/// run-time configuration surface to placement policy x queue depth x
/// backpressure x codec/level/error-bound x pool knobs x exec mode/threads
/// x graph capture — far beyond what hand-written `configs/*.xml` can
/// cover. This header makes that space a first-class object:
///
///  * `ConfigPoint` — one point in the space, a typed struct mirroring
///    the `<pool>`, `<sched>`, `<compress>`, `<exec>` and `<graph>` XML
///    elements plus optional per-analysis overrides (placement policy
///    and codec, the attributes ConfigurableAnalysis honours per
///    `<analysis>` element).
///  * `Knob` / `KnobSpace` — typed knob descriptors (bool, enum,
///    power-of-two, linear int, log-scale double) with bounds and
///    neighbourhood moves, so a search algorithm can mutate points
///    generically without knowing what each knob means.
///  * the XML emitter/parser — any point serializes to a loadable SENSEI
///    configuration (ApplyToDoc / EmitXml) and parses back field for
///    field (ParseDoc), which is what makes offline search results
///    shippable as `configs/tuned_campaign.xml`.

#include "cmpCodec.h"
#include "execEngine.h"
#include "layoutMapping.h"
#include "schedPipeline.h"

#include <cstddef>
#include <functional>
#include <random>
#include <string>
#include <vector>

namespace sxml
{
class Element;
}

namespace tune
{

/// Optional per-analysis overrides, index-aligned with the `<analysis>`
/// children of the document a point is applied to. -1 means "follow the
/// run-wide default" (no attribute emitted).
struct AnalysisOverride
{
  int Policy = -1; ///< sched::PolicyKind when >= 0
  int Codec = -1;  ///< cmp::CodecId when >= 0
  int Level = 1;   ///< codec level when Codec >= 0
  double ErrorBound = 0.0; ///< quantize bound when Codec >= 0

  bool IsDefault() const { return this->Policy < 0 && this->Codec < 0; }
  bool operator==(const AnalysisOverride &o) const;
  bool operator!=(const AnalysisOverride &o) const { return !(*this == o); }
};

/// One point in the scheduling space: every run-time knob the tuner may
/// set, with the subsystem defaults as the origin.
struct ConfigPoint
{
  // <pool>
  bool PoolEnabled = false;
  std::size_t PoolMaxCachedBytes = std::size_t(256) << 20;
  double PoolTrimThreshold = 0.5;
  std::size_t PoolMinBlockBytes = 256;

  // <sched>
  sched::PolicyKind Policy = sched::PolicyKind::Static;
  long QueueDepth = 1;
  sched::Backpressure Pressure = sched::Backpressure::Block;

  // <compress>
  bool CompressEnabled = false;
  cmp::CodecId Codec = cmp::CodecId::ShuffleRLE;
  int CompressLevel = 1;
  double CompressErrorBound = 1e-4; ///< kept > 0 so quantize always validates

  // <exec>
  vp::exec::Mode ExecMode = vp::exec::Mode::Serial;
  int ExecThreads = 0;
  std::size_t ExecShardGrain = 16384;

  // <graph>
  bool GraphEnabled = false;
  bool GraphFusion = true;
  std::size_t GraphMaxNodes = 4096;

  // <layout> — default array layout, AoSoA block size, and whether the
  // vectorized (reassociating) kernel variants may run
  vp::layout::Kind Layout = vp::layout::Kind::AoS;
  std::size_t LayoutBlock = 32;
  bool LayoutSimd = false;

  // <viz> — the steerable render endpoint: square framebuffer ladder,
  // colormap, and the image-frame codec (None = raw RGBA)
  std::size_t VizResolution = 256;
  int VizColormap = 1; ///< viz::Colormap index (1 = viridis)
  cmp::CodecId VizCodec = cmp::CodecId::None;

  /// Per-analysis overrides; entries beyond the vector (or default
  /// entries) mean "follow the run-wide configuration", so a missing
  /// vector and an all-default vector compare equal.
  std::vector<AnalysisOverride> Overrides;

  bool operator==(const ConfigPoint &o) const;
  bool operator!=(const ConfigPoint &o) const { return !(*this == o); }
};

/// How a knob's value moves through its domain.
enum class KnobKind : int
{
  Bool = 0,   ///< flip
  Enum,       ///< adjacent choice (wrapping)
  PowerOfTwo, ///< x2 / /2 within [Min, Max]
  Int,        ///< +-1 within [Min, Max]
  LogDouble   ///< x/÷ a step factor within [Min, Max]
};

/// One typed knob descriptor: bounds, choices, and accessors into a
/// ConfigPoint. Values travel as double (enums/bools as their index).
struct Knob
{
  std::string Name; ///< "sched.queue_depth", "analysis3.policy", ...
  KnobKind Kind = KnobKind::Int;
  double Min = 0.0;
  double Max = 0.0;
  double Step = 2.0; ///< LogDouble neighbour factor
  std::vector<std::string> Choices; ///< Enum labels (diagnostics)
  std::function<double(const ConfigPoint &)> Get;
  std::function<void(ConfigPoint &, double)> Set;

  /// Number of distinct values this knob can take.
  std::size_t Cardinality() const;
};

/// The tunable space: an ordered set of knobs over ConfigPoint.
class KnobSpace
{
public:
  /// The campaign space: every `<pool>`, `<sched>`, `<compress>`,
  /// `<exec>`, `<graph>` and `<viz>` knob, plus a per-analysis placement-policy
  /// override knob for each of `nAnalyses` analyses (0 = no per-analysis
  /// knobs). `includeExec` drops the `<exec>`/shard knobs for searches
  /// that only score virtual time (exec mode cannot change it).
  static KnobSpace Campaign(int nAnalyses = 0, bool includeExec = true);

  const std::vector<Knob> &Knobs() const { return this->Knobs_; }

  /// Product of knob cardinalities (size of the discrete space; may
  /// saturate for log-double knobs, diagnostics only).
  double Size() const;

  /// A uniformly random point (each knob independently uniform over its
  /// domain).
  ConfigPoint Random(std::mt19937_64 &rng) const;

  /// Move one uniformly chosen knob of `p` to a neighbouring value
  /// (guaranteed to change it). Returns "knob-name: old -> new".
  std::string Neighbor(ConfigPoint &p, std::mt19937_64 &rng) const;

  /// Clamp every knob of `p` into its domain.
  void Clamp(ConfigPoint &p) const;

private:
  std::vector<Knob> Knobs_;
};

/// Overlay `p` onto a parsed `<sensei>` document: the six subsystem
/// elements are created (or taken over) with every knob explicitly set,
/// and per-analysis override attributes are written onto the i-th
/// `<analysis>` child. Fully explicit emission is what makes evaluations
/// order-independent: no knob of a previous candidate can leak through
/// process-wide state.
void ApplyToDoc(const ConfigPoint &p, sxml::Element &root);

/// A standalone `<sensei>` document holding only the subsystem elements
/// of `p` (no analyses): the exchange format for search traces and the
/// cache key for the evaluator.
std::string EmitXml(const ConfigPoint &p);

/// Read a point back from a parsed `<sensei>` document. Attributes or
/// elements that are absent keep the ConfigPoint defaults; elements the
/// tuner does not model (`<check>`, `<fault>`, `<service>`, analyses)
/// are ignored. Throws std::runtime_error on out-of-domain values.
ConfigPoint ParseDoc(const sxml::Element &root);

/// ParseDoc over parsed text / a file on disk.
ConfigPoint ParseXml(const std::string &xml);
ConfigPoint ParseFile(const std::string &path);

/// One-line human-readable description of a point (diagnostics, traces).
std::string Describe(const ConfigPoint &p);

} // namespace tune

#endif
