#ifndef tuneSearch_h
#define tuneSearch_h

/// @file tuneSearch.h
/// Offline search over the campaign scheduling space. The evaluator runs
/// a (usually down-scaled) campaign on the virtual platform for each
/// candidate configuration and scores it with the SET-style objective
/// `cost = t^k · p` — virtual time raised to a configurable exponent
/// times the peak payload footprint — so a single scalar trades run time
/// against memory pressure the way SET's `e^k · d` trades energy against
/// delay. `k = 0` reduces the objective to pure virtual time.
///
/// Search algorithms: a seeded simulated annealer (Metropolis accepts
/// over knob-neighbourhood moves, geometric cooling, restarts from the
/// incumbent) plus random-search and greedy hill-climb baselines run at
/// the same evaluation budget, which is how `bench/um_tune` shows the
/// annealer earns its keep. Evaluations are memoized on the emitted XML
/// (identical candidates re-score for free) and fully deterministic: a
/// fixed seed reproduces the identical trace, winner, and winning XML.

#include "campaign.h"
#include "tuneSpace.h"

#include <map>
#include <string>
#include <vector>

namespace sensei
{
class Profiler;
}

namespace tune
{

/// Score of one candidate.
struct EvalResult
{
  double TotalSeconds = 0.0; ///< campaign virtual seconds (sum of cases)
  double PeakBytes = 0.0;    ///< max over cases: queued + pooled high water
  double Cost = 0.0;         ///< t^k · p (t when k = 0)
  bool Valid = false;        ///< config loaded and the campaign completed
  std::string Error;         ///< why Valid is false
};

/// What the evaluator runs and how it scores.
struct EvalConfig
{
  /// The campaign each candidate is scored on. Defaults are the full
  /// evaluation campaign; searches shrink this (fewer nodes/steps) to a
  /// cheap proxy and re-score only the winner at full scale.
  campaign::CampaignConfig Campaign;

  /// The placement/execution cases, campaign::AllCases() when empty.
  std::vector<campaign::CaseConfig> Cases;

  /// Cost exponent k in `t^k · p`; 0 scores pure virtual time.
  double K = 0.0;
};

/// Runs candidates on the virtual platform and memoizes their scores.
/// Not thread safe (the virtual platform is process wide).
class Evaluator
{
public:
  explicit Evaluator(EvalConfig cfg);

  /// Score one point (memoized on its canonical XML).
  EvalResult Evaluate(const ConfigPoint &p);

  /// Score a hand-written `<sensei>` document: its subsystem elements are
  /// parsed into a ConfigPoint (unknown elements ignored) and evaluated
  /// on the same campaign, so tuned and hand-written configurations
  /// compare on identical workloads.
  EvalResult EvaluateXml(const std::string &configXml);

  /// Campaign runs actually performed (cache misses) / avoided (hits).
  long Evaluations() const { return this->Misses_; }
  long CacheHits() const { return this->Hits_; }

  const EvalConfig &Config() const { return this->Cfg_; }

private:
  EvalResult Run(const ConfigPoint &p);

  EvalConfig Cfg_;
  std::vector<campaign::CaseConfig> Cases_;
  std::map<std::string, EvalResult> Cache_;
  long Misses_ = 0;
  long Hits_ = 0;
};

/// Search knobs shared by the annealer and the baselines.
struct SearchConfig
{
  std::uint64_t Seed = 42;  ///< reproducibility: same seed, same trace
  int Budget = 48;          ///< evaluation budget (campaign runs)
  double T0 = 0.25;         ///< initial temperature (relative cost units)
  double Cooling = 0.92;    ///< geometric cooling per evaluated move
  double TMin = 1e-3;       ///< temperature floor
  int Restarts = 2;         ///< returns to the incumbent, budget split

  /// Warm-start candidates (e.g. the best hand-written configuration, or
  /// a previously tuned point) evaluated before the walk begins; the best
  /// of these and the default configuration becomes the initial
  /// incumbent. Their evaluations count against Budget.
  std::vector<ConfigPoint> Warm;
};

/// One evaluated proposal in the search trace.
struct TraceEntry
{
  long Eval = 0;        ///< evaluation count when proposed
  std::string Move;     ///< "knob: old -> new" ("" for seeds/restarts)
  double Cost = 0.0;    ///< candidate cost
  double Best = 0.0;    ///< incumbent cost after the decision
  bool Accepted = false;
};

/// Outcome of one search run.
struct SearchResult
{
  std::string Algorithm;  ///< "anneal" | "random" | "greedy"
  ConfigPoint Best;
  EvalResult BestEval;
  double InitialCost = 0.0; ///< cost of the default configuration
  long Evaluations = 0;     ///< campaign runs this search consumed
  long Accepted = 0;        ///< proposals accepted (anneal/greedy)
  std::vector<TraceEntry> Trace;
};

/// Simulated annealing from the default configuration: one-knob
/// neighbourhood moves, Metropolis acceptance on relative cost,
/// geometric cooling, periodic restarts from the incumbent.
SearchResult Anneal(Evaluator &ev, const KnobSpace &space,
                    const SearchConfig &cfg);

/// Uniform random sampling of the space at the same budget.
SearchResult RandomSearch(Evaluator &ev, const KnobSpace &space,
                          const SearchConfig &cfg);

/// First-improvement hill climb: accept only strictly better neighbours.
SearchResult GreedyClimb(Evaluator &ev, const KnobSpace &space,
                         const SearchConfig &cfg);

/// Record a search outcome as profiler counters: tune::evaluations,
/// tune::cache_hits, tune::accepted, tune::initial_cost, tune::best_cost,
/// tune::improvement (initial/best), following the `<subsystem>::` key
/// contract so the trace rides along in Profiler::ToJson exports.
void ExportTuneStats(sensei::Profiler &prof, const Evaluator &ev,
                     const SearchResult &r);

} // namespace tune

#endif
