#include "tuneSpace.h"

#include "schedPolicy.h"
#include "sxml.h"
#include "vizTransfer.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace tune
{

// --------------------------------------------------------------- equality

bool AnalysisOverride::operator==(const AnalysisOverride &o) const
{
  if (this->Policy != o.Policy || this->Codec != o.Codec)
    return false;
  // Level/ErrorBound only carry meaning when a codec override is set
  if (this->Codec >= 0 &&
      (this->Level != o.Level || this->ErrorBound != o.ErrorBound))
    return false;
  return true;
}

bool ConfigPoint::operator==(const ConfigPoint &o) const
{
  if (this->PoolEnabled != o.PoolEnabled ||
      this->PoolMaxCachedBytes != o.PoolMaxCachedBytes ||
      this->PoolTrimThreshold != o.PoolTrimThreshold ||
      this->PoolMinBlockBytes != o.PoolMinBlockBytes ||
      this->Policy != o.Policy || this->QueueDepth != o.QueueDepth ||
      this->Pressure != o.Pressure ||
      this->CompressEnabled != o.CompressEnabled ||
      this->Codec != o.Codec || this->CompressLevel != o.CompressLevel ||
      this->CompressErrorBound != o.CompressErrorBound ||
      this->ExecMode != o.ExecMode || this->ExecThreads != o.ExecThreads ||
      this->ExecShardGrain != o.ExecShardGrain ||
      this->GraphEnabled != o.GraphEnabled ||
      this->GraphFusion != o.GraphFusion ||
      this->GraphMaxNodes != o.GraphMaxNodes ||
      this->Layout != o.Layout || this->LayoutBlock != o.LayoutBlock ||
      this->LayoutSimd != o.LayoutSimd ||
      this->VizResolution != o.VizResolution ||
      this->VizColormap != o.VizColormap || this->VizCodec != o.VizCodec)
    return false;

  // overrides compare padded with defaults: a short (or missing) vector is
  // the same point as one extended with default entries
  const std::size_t n = std::max(this->Overrides.size(), o.Overrides.size());
  static const AnalysisOverride def;
  for (std::size_t i = 0; i < n; ++i)
  {
    const AnalysisOverride &a = i < this->Overrides.size()
                                  ? this->Overrides[i] : def;
    const AnalysisOverride &b = i < o.Overrides.size() ? o.Overrides[i] : def;
    if (a != b)
      return false;
  }
  return true;
}

// ------------------------------------------------------------------ knobs

std::size_t Knob::Cardinality() const
{
  switch (this->Kind)
  {
    case KnobKind::Bool:
      return 2;
    case KnobKind::Enum:
      return this->Choices.size();
    case KnobKind::PowerOfTwo:
      return static_cast<std::size_t>(
               std::lround(std::log2(this->Max / this->Min))) + 1;
    case KnobKind::Int:
      return static_cast<std::size_t>(this->Max - this->Min) + 1;
    case KnobKind::LogDouble:
      return static_cast<std::size_t>(std::lround(
               std::log(this->Max / this->Min) / std::log(this->Step))) + 1;
  }
  return 1;
}

namespace
{

// the i-th value of a knob's domain, i in [0, Cardinality())
double ValueAt(const Knob &k, std::size_t i)
{
  switch (k.Kind)
  {
    case KnobKind::Bool:
    case KnobKind::Enum:
      return static_cast<double>(i);
    case KnobKind::PowerOfTwo:
      return k.Min * std::pow(2.0, static_cast<double>(i));
    case KnobKind::Int:
      return k.Min + static_cast<double>(i);
    case KnobKind::LogDouble:
      return std::min(k.Max,
                      k.Min * std::pow(k.Step, static_cast<double>(i)));
  }
  return k.Min;
}

// index of the domain value closest to v
std::size_t IndexOf(const Knob &k, double v)
{
  switch (k.Kind)
  {
    case KnobKind::Bool:
    case KnobKind::Enum:
    case KnobKind::Int:
      break;
    case KnobKind::PowerOfTwo:
      return static_cast<std::size_t>(std::max(
        0L, std::lround(std::log2(std::max(v, k.Min) / k.Min))));
    case KnobKind::LogDouble:
      return static_cast<std::size_t>(std::max(
        0L, std::lround(std::log(std::max(v, k.Min) / k.Min) /
                        std::log(k.Step))));
  }
  return static_cast<std::size_t>(std::max(0.0, v - k.Min));
}

std::string FormatValue(const Knob &k, double v)
{
  if ((k.Kind == KnobKind::Bool || k.Kind == KnobKind::Enum) &&
      static_cast<std::size_t>(v) < k.Choices.size())
    return k.Choices[static_cast<std::size_t>(v)];
  std::ostringstream os;
  os << v;
  return os.str();
}

AnalysisOverride &OverrideAt(ConfigPoint &p, std::size_t i)
{
  if (p.Overrides.size() <= i)
    p.Overrides.resize(i + 1);
  return p.Overrides[i];
}

int OverridePolicy(const ConfigPoint &p, std::size_t i)
{
  return i < p.Overrides.size() ? p.Overrides[i].Policy : -1;
}

} // namespace

KnobSpace KnobSpace::Campaign(int nAnalyses, bool includeExec)
{
  KnobSpace s;
  auto add = [&s](Knob k) { s.Knobs_.push_back(std::move(k)); };

  // ---- <pool> ----
  {
    Knob k;
    k.Name = "pool.enabled";
    k.Kind = KnobKind::Bool;
    k.Min = 0; k.Max = 1;
    k.Choices = {"0", "1"};
    k.Get = [](const ConfigPoint &p) { return p.PoolEnabled ? 1.0 : 0.0; };
    k.Set = [](ConfigPoint &p, double v) { p.PoolEnabled = v >= 0.5; };
    add(std::move(k));
  }
  {
    Knob k;
    k.Name = "pool.max_cached_bytes";
    k.Kind = KnobKind::PowerOfTwo;
    k.Min = double(std::size_t(1) << 20);  // 1 MiB
    k.Max = double(std::size_t(1) << 30);  // 1 GiB
    k.Get = [](const ConfigPoint &p) { return double(p.PoolMaxCachedBytes); };
    k.Set = [](ConfigPoint &p, double v)
    { p.PoolMaxCachedBytes = static_cast<std::size_t>(v); };
    add(std::move(k));
  }
  {
    Knob k;
    k.Name = "pool.trim_threshold";
    k.Kind = KnobKind::LogDouble;
    k.Min = 0.125; k.Max = 1.0; k.Step = 2.0;
    k.Get = [](const ConfigPoint &p) { return p.PoolTrimThreshold; };
    k.Set = [](ConfigPoint &p, double v) { p.PoolTrimThreshold = v; };
    add(std::move(k));
  }
  {
    Knob k;
    k.Name = "pool.min_block_bytes";
    k.Kind = KnobKind::PowerOfTwo;
    k.Min = 64; k.Max = 65536;
    k.Get = [](const ConfigPoint &p) { return double(p.PoolMinBlockBytes); };
    k.Set = [](ConfigPoint &p, double v)
    { p.PoolMinBlockBytes = static_cast<std::size_t>(v); };
    add(std::move(k));
  }

  // ---- <sched> ----
  {
    Knob k;
    k.Name = "sched.policy";
    k.Kind = KnobKind::Enum;
    k.Min = 0; k.Max = 2;
    k.Choices = {"static", "least-loaded", "cost-model"};
    k.Get = [](const ConfigPoint &p) { return double(int(p.Policy)); };
    k.Set = [](ConfigPoint &p, double v)
    { p.Policy = static_cast<sched::PolicyKind>(int(v)); };
    add(std::move(k));
  }
  {
    Knob k;
    k.Name = "sched.queue_depth"; // 0 = unbounded
    k.Kind = KnobKind::Int;
    k.Min = 0; k.Max = 8;
    k.Get = [](const ConfigPoint &p) { return double(p.QueueDepth); };
    k.Set = [](ConfigPoint &p, double v) { p.QueueDepth = long(v); };
    add(std::move(k));
  }
  {
    Knob k;
    k.Name = "sched.backpressure";
    k.Kind = KnobKind::Enum;
    k.Min = 0; k.Max = 2;
    k.Choices = {"block", "drop-oldest", "coalesce"};
    k.Get = [](const ConfigPoint &p) { return double(int(p.Pressure)); };
    k.Set = [](ConfigPoint &p, double v)
    { p.Pressure = static_cast<sched::Backpressure>(int(v)); };
    add(std::move(k));
  }

  // ---- <compress> ----
  {
    Knob k;
    k.Name = "compress.enabled";
    k.Kind = KnobKind::Bool;
    k.Choices = {"0", "1"};
    k.Get = [](const ConfigPoint &p) { return p.CompressEnabled ? 1.0 : 0.0; };
    k.Set = [](ConfigPoint &p, double v) { p.CompressEnabled = v >= 0.5; };
    add(std::move(k));
  }
  {
    Knob k;
    k.Name = "compress.codec";
    k.Kind = KnobKind::Enum;
    k.Min = 0; k.Max = 3;
    k.Choices = {"none", "shuffle-rle", "delta-varint", "quantize"};
    k.Get = [](const ConfigPoint &p) { return double(int(p.Codec)); };
    k.Set = [](ConfigPoint &p, double v)
    { p.Codec = static_cast<cmp::CodecId>(int(v)); };
    add(std::move(k));
  }
  {
    Knob k;
    k.Name = "compress.level";
    k.Kind = KnobKind::Int;
    k.Min = 0; k.Max = 3;
    k.Get = [](const ConfigPoint &p) { return double(p.CompressLevel); };
    k.Set = [](ConfigPoint &p, double v) { p.CompressLevel = int(v); };
    add(std::move(k));
  }
  {
    Knob k;
    k.Name = "compress.error_bound";
    k.Kind = KnobKind::LogDouble;
    k.Min = 1e-6; k.Max = 1e-2; k.Step = 10.0;
    k.Get = [](const ConfigPoint &p) { return p.CompressErrorBound; };
    k.Set = [](ConfigPoint &p, double v) { p.CompressErrorBound = v; };
    add(std::move(k));
  }

  // ---- <exec> ---- (virtual time is exec-mode independent: optional)
  if (includeExec)
  {
    {
      Knob k;
      k.Name = "exec.mode";
      k.Kind = KnobKind::Enum;
      k.Min = 0; k.Max = 1;
      k.Choices = {"serial", "threads"};
      k.Get = [](const ConfigPoint &p) { return double(int(p.ExecMode)); };
      k.Set = [](ConfigPoint &p, double v)
      { p.ExecMode = static_cast<vp::exec::Mode>(int(v)); };
      add(std::move(k));
    }
    {
      Knob k;
      k.Name = "exec.threads"; // 0 = auto
      k.Kind = KnobKind::Int;
      k.Min = 0; k.Max = 8;
      k.Get = [](const ConfigPoint &p) { return double(p.ExecThreads); };
      k.Set = [](ConfigPoint &p, double v) { p.ExecThreads = int(v); };
      add(std::move(k));
    }
    {
      Knob k;
      k.Name = "exec.shard_grain";
      k.Kind = KnobKind::PowerOfTwo;
      k.Min = 4096; k.Max = 65536;
      k.Get = [](const ConfigPoint &p) { return double(p.ExecShardGrain); };
      k.Set = [](ConfigPoint &p, double v)
      { p.ExecShardGrain = static_cast<std::size_t>(v); };
      add(std::move(k));
    }
  }

  // ---- <graph> ----
  {
    Knob k;
    k.Name = "graph.enabled";
    k.Kind = KnobKind::Bool;
    k.Choices = {"0", "1"};
    k.Get = [](const ConfigPoint &p) { return p.GraphEnabled ? 1.0 : 0.0; };
    k.Set = [](ConfigPoint &p, double v) { p.GraphEnabled = v >= 0.5; };
    add(std::move(k));
  }
  {
    Knob k;
    k.Name = "graph.fusion";
    k.Kind = KnobKind::Bool;
    k.Choices = {"0", "1"};
    k.Get = [](const ConfigPoint &p) { return p.GraphFusion ? 1.0 : 0.0; };
    k.Set = [](ConfigPoint &p, double v) { p.GraphFusion = v >= 0.5; };
    add(std::move(k));
  }
  {
    Knob k;
    k.Name = "graph.max_nodes";
    k.Kind = KnobKind::PowerOfTwo;
    k.Min = 1024; k.Max = 8192;
    k.Get = [](const ConfigPoint &p) { return double(p.GraphMaxNodes); };
    k.Set = [](ConfigPoint &p, double v)
    { p.GraphMaxNodes = static_cast<std::size_t>(v); };
    add(std::move(k));
  }

  // ---- <layout> ----
  {
    Knob k;
    k.Name = "layout.default";
    k.Kind = KnobKind::Enum;
    k.Min = 0; k.Max = 2;
    k.Choices = {"aos", "soa", "aosoa"};
    k.Get = [](const ConfigPoint &p) { return double(int(p.Layout)); };
    k.Set = [](ConfigPoint &p, double v)
    { p.Layout = static_cast<vp::layout::Kind>(int(v)); };
    add(std::move(k));
  }
  {
    Knob k;
    k.Name = "layout.block";
    k.Kind = KnobKind::PowerOfTwo;
    k.Min = 8; k.Max = 128;
    k.Get = [](const ConfigPoint &p) { return double(p.LayoutBlock); };
    k.Set = [](ConfigPoint &p, double v)
    { p.LayoutBlock = static_cast<std::size_t>(v); };
    add(std::move(k));
  }
  {
    Knob k;
    k.Name = "layout.simd";
    k.Kind = KnobKind::Bool;
    k.Choices = {"0", "1"};
    k.Get = [](const ConfigPoint &p) { return p.LayoutSimd ? 1.0 : 0.0; };
    k.Set = [](ConfigPoint &p, double v) { p.LayoutSimd = v >= 0.5; };
    add(std::move(k));
  }

  // ---- <viz> ----
  {
    Knob k;
    k.Name = "viz.resolution";
    k.Kind = KnobKind::PowerOfTwo;
    k.Min = 64; k.Max = 1024;
    k.Get = [](const ConfigPoint &p) { return double(p.VizResolution); };
    k.Set = [](ConfigPoint &p, double v)
    { p.VizResolution = static_cast<std::size_t>(v); };
    add(std::move(k));
  }
  {
    Knob k;
    k.Name = "viz.colormap";
    k.Kind = KnobKind::Enum;
    k.Min = 0; k.Max = 2;
    k.Choices = {"gray", "viridis", "heat"};
    k.Get = [](const ConfigPoint &p) { return double(p.VizColormap); };
    k.Set = [](ConfigPoint &p, double v) { p.VizColormap = int(v); };
    add(std::move(k));
  }
  {
    // image frames are RGBA bytes: only none / shuffle-rle apply (u8
    // negotiation folds everything else onto shuffle-rle anyway)
    Knob k;
    k.Name = "viz.codec";
    k.Kind = KnobKind::Enum;
    k.Min = 0; k.Max = 1;
    k.Choices = {"none", "shuffle-rle"};
    k.Get = [](const ConfigPoint &p)
    { return p.VizCodec == cmp::CodecId::None ? 0.0 : 1.0; };
    k.Set = [](ConfigPoint &p, double v)
    {
      p.VizCodec = v >= 0.5 ? cmp::CodecId::ShuffleRLE : cmp::CodecId::None;
    };
    add(std::move(k));
  }

  // ---- per-analysis placement-policy overrides ----
  for (int i = 0; i < nAnalyses; ++i)
  {
    Knob k;
    k.Name = "analysis" + std::to_string(i) + ".policy";
    k.Kind = KnobKind::Enum;
    k.Min = 0; k.Max = 3;
    k.Choices = {"default", "static", "least-loaded", "cost-model"};
    const std::size_t idx = static_cast<std::size_t>(i);
    k.Get = [idx](const ConfigPoint &p)
    { return double(OverridePolicy(p, idx) + 1); };
    k.Set = [idx](ConfigPoint &p, double v)
    { OverrideAt(p, idx).Policy = int(v) - 1; };
    add(std::move(k));
  }

  return s;
}

double KnobSpace::Size() const
{
  double n = 1.0;
  for (const Knob &k : this->Knobs_)
    n *= double(k.Cardinality());
  return n;
}

ConfigPoint KnobSpace::Random(std::mt19937_64 &rng) const
{
  ConfigPoint p;
  for (const Knob &k : this->Knobs_)
  {
    std::uniform_int_distribution<std::size_t> pick(0, k.Cardinality() - 1);
    k.Set(p, ValueAt(k, pick(rng)));
  }
  return p;
}

std::string KnobSpace::Neighbor(ConfigPoint &p, std::mt19937_64 &rng) const
{
  if (this->Knobs_.empty())
    return std::string();

  std::uniform_int_distribution<std::size_t> pickKnob(
    0, this->Knobs_.size() - 1);
  for (int attempt = 0; attempt < 64; ++attempt)
  {
    const Knob &k = this->Knobs_[pickKnob(rng)];
    const std::size_t n = k.Cardinality();
    if (n < 2)
      continue;

    const std::size_t cur = IndexOf(k, k.Get(p));
    std::size_t next = cur;
    if (k.Kind == KnobKind::Enum || k.Kind == KnobKind::Bool)
    {
      // adjacent choice, wrapping
      const bool up = std::uniform_int_distribution<int>(0, 1)(rng) != 0;
      next = up ? (cur + 1) % n : (cur + n - 1) % n;
    }
    else
    {
      // one step along the scale, reflecting at the bounds
      bool up = std::uniform_int_distribution<int>(0, 1)(rng) != 0;
      if (cur == 0)
        up = true;
      else if (cur >= n - 1)
        up = false;
      next = up ? cur + 1 : cur - 1;
    }
    if (next == cur)
      continue;

    const double oldV = k.Get(p);
    k.Set(p, ValueAt(k, next));
    return k.Name + ": " + FormatValue(k, oldV) + " -> " +
           FormatValue(k, k.Get(p));
  }
  return std::string();
}

void KnobSpace::Clamp(ConfigPoint &p) const
{
  for (const Knob &k : this->Knobs_)
  {
    const std::size_t n = k.Cardinality();
    std::size_t i = IndexOf(k, k.Get(p));
    if (i >= n)
      i = n - 1;
    k.Set(p, ValueAt(k, i));
  }
}

// ------------------------------------------------------------ XML emitter

void ApplyToDoc(const ConfigPoint &p, sxml::Element &root)
{
  // every element is (re)written with every knob explicit, so loading the
  // document fully determines the subsystem configurations regardless of
  // what a previous candidate (or a hand-written config) left behind
  sxml::Element *pe = root.FindOrAddChild("pool");
  pe->ClearAttributes();
  pe->SetAttributeBool("enabled", p.PoolEnabled);
  pe->SetAttributeInt("max_cached_bytes",
                      static_cast<long long>(p.PoolMaxCachedBytes));
  pe->SetAttributeDouble("trim_threshold", p.PoolTrimThreshold);
  pe->SetAttributeInt("min_block_bytes",
                      static_cast<long long>(p.PoolMinBlockBytes));

  sxml::Element *se = root.FindOrAddChild("sched");
  se->ClearAttributes();
  se->SetAttribute("policy", sched::PolicyKindName(p.Policy));
  se->SetAttributeInt("queue_depth", p.QueueDepth);
  se->SetAttribute("backpressure", sched::BackpressureName(p.Pressure));
  se->SetAttributeBool("real_threads", false); // determinism: virtual ranks

  sxml::Element *ke = root.FindOrAddChild("compress");
  ke->ClearAttributes();
  ke->SetAttributeBool("enabled", p.CompressEnabled);
  ke->SetAttribute("codec", cmp::CodecName(p.Codec));
  ke->SetAttributeInt("level", p.CompressLevel);
  ke->SetAttributeDouble("error_bound", p.CompressErrorBound);

  sxml::Element *xe = root.FindOrAddChild("exec");
  xe->ClearAttributes();
  xe->SetAttribute("mode", vp::exec::ModeName(p.ExecMode));
  xe->SetAttributeInt("threads", p.ExecThreads);
  xe->SetAttributeInt("shard_grain",
                      static_cast<long long>(p.ExecShardGrain));

  sxml::Element *ge = root.FindOrAddChild("graph");
  ge->ClearAttributes();
  ge->SetAttributeBool("enabled", p.GraphEnabled);
  ge->SetAttributeBool("fusion", p.GraphFusion);
  ge->SetAttributeInt("max_nodes", static_cast<long long>(p.GraphMaxNodes));

  sxml::Element *le = root.FindOrAddChild("layout");
  le->ClearAttributes();
  le->SetAttribute("default", vp::layout::KindName(p.Layout));
  le->SetAttributeInt("block", static_cast<long long>(p.LayoutBlock));
  le->SetAttributeBool("simd", p.LayoutSimd);

  sxml::Element *ze = root.FindOrAddChild("viz");
  ze->ClearAttributes();
  ze->SetAttributeInt("width", static_cast<long long>(p.VizResolution));
  ze->SetAttributeInt("height", static_cast<long long>(p.VizResolution));
  ze->SetAttribute("colormap",
                   viz::ColormapName(viz::Colormap(p.VizColormap)));
  ze->SetAttribute("codec", cmp::CodecName(p.VizCodec));

  // per-analysis overrides onto the i-th <analysis> element
  std::size_t i = 0;
  for (const auto &child : root.Children())
  {
    if (child->Name() != "analysis")
      continue;
    if (i >= p.Overrides.size())
      break;
    const AnalysisOverride &ov = p.Overrides[i++];
    if (ov.Policy >= 0)
      child->SetAttribute(
        "policy", sched::PolicyKindName(sched::PolicyKind(ov.Policy)));
    if (ov.Codec >= 0)
    {
      child->SetAttribute("compress",
                          cmp::CodecName(cmp::CodecId(ov.Codec)));
      child->SetAttributeInt("compress_level", ov.Level);
      child->SetAttributeDouble("compress_error_bound", ov.ErrorBound);
    }
  }
}

std::string EmitXml(const ConfigPoint &p)
{
  sxml::Element root;
  root.SetName("sensei");
  ApplyToDoc(p, root);

  // a standalone document has no <analysis> children to carry override
  // attributes: record them in a <tune> element ConfigurableAnalysis
  // ignores, so the document stays loadable and the point round-trips
  bool any = false;
  for (const AnalysisOverride &ov : p.Overrides)
    if (!ov.IsDefault())
      any = true;
  if (any)
  {
    sxml::Element *te = root.FindOrAddChild("tune");
    for (std::size_t i = 0; i < p.Overrides.size(); ++i)
    {
      const AnalysisOverride &ov = p.Overrides[i];
      if (ov.IsDefault())
        continue;
      sxml::Element *oe = te->AddChild("override");
      oe->SetAttributeInt("analysis", static_cast<long long>(i));
      if (ov.Policy >= 0)
        oe->SetAttribute(
          "policy", sched::PolicyKindName(sched::PolicyKind(ov.Policy)));
      if (ov.Codec >= 0)
      {
        oe->SetAttribute("compress",
                         cmp::CodecName(cmp::CodecId(ov.Codec)));
        oe->SetAttributeInt("compress_level", ov.Level);
        oe->SetAttributeDouble("compress_error_bound", ov.ErrorBound);
      }
    }
  }

  return sxml::Serialize(root);
}

// ------------------------------------------------------------- XML parser

namespace
{

void ParseOverrideAttrs(const sxml::Element &el, AnalysisOverride &ov)
{
  if (el.HasAttribute("policy"))
    ov.Policy = int(sched::PolicyKindFromName(el.Attribute("policy")));
  if (el.HasAttribute("compress"))
  {
    ov.Codec = int(cmp::CodecIdFromName(el.Attribute("compress")));
    ov.Level = int(el.AttributeInt("compress_level", ov.Level));
    ov.ErrorBound = el.AttributeDouble("compress_error_bound", ov.ErrorBound);
  }
}

} // namespace

ConfigPoint ParseDoc(const sxml::Element &root)
{
  if (root.Name() != "sensei")
    throw std::runtime_error("tune::ParseDoc: document element must be "
                             "<sensei>, got <" + root.Name() + ">");

  ConfigPoint p;
  try
  {
    if (const sxml::Element *pe = root.FirstChild("pool"))
    {
      p.PoolEnabled = pe->AttributeBool("enabled", p.PoolEnabled);
      p.PoolMaxCachedBytes = static_cast<std::size_t>(pe->AttributeInt(
        "max_cached_bytes", static_cast<long long>(p.PoolMaxCachedBytes)));
      p.PoolTrimThreshold =
        pe->AttributeDouble("trim_threshold", p.PoolTrimThreshold);
      p.PoolMinBlockBytes = static_cast<std::size_t>(pe->AttributeInt(
        "min_block_bytes", static_cast<long long>(p.PoolMinBlockBytes)));
    }
    if (const sxml::Element *se = root.FirstChild("sched"))
    {
      p.Policy = sched::PolicyKindFromName(
        se->Attribute("policy", sched::PolicyKindName(p.Policy)));
      p.QueueDepth = static_cast<long>(se->AttributeInt(
        "queue_depth", static_cast<long long>(p.QueueDepth)));
      p.Pressure = sched::BackpressureFromName(
        se->Attribute("backpressure", sched::BackpressureName(p.Pressure)));
    }
    if (const sxml::Element *ke = root.FirstChild("compress"))
    {
      // mirror ConfigurableAnalysis: the element's presence means enabled
      // unless it says otherwise
      p.CompressEnabled = ke->AttributeBool("enabled", true);
      p.Codec =
        cmp::CodecIdFromName(ke->Attribute("codec", cmp::CodecName(p.Codec)));
      p.CompressLevel =
        static_cast<int>(ke->AttributeInt("level", p.CompressLevel));
      p.CompressErrorBound =
        ke->AttributeDouble("error_bound", p.CompressErrorBound);
    }
    if (const sxml::Element *xe = root.FirstChild("exec"))
    {
      p.ExecMode = vp::exec::ModeFromName(
        xe->Attribute("mode", vp::exec::ModeName(p.ExecMode)));
      p.ExecThreads =
        static_cast<int>(xe->AttributeInt("threads", p.ExecThreads));
      p.ExecShardGrain = static_cast<std::size_t>(xe->AttributeInt(
        "shard_grain", static_cast<long long>(p.ExecShardGrain)));
    }
    if (const sxml::Element *ge = root.FirstChild("graph"))
    {
      p.GraphEnabled = ge->AttributeBool("enabled", true);
      p.GraphFusion = ge->AttributeBool("fusion", p.GraphFusion);
      p.GraphMaxNodes = static_cast<std::size_t>(ge->AttributeInt(
        "max_nodes", static_cast<long long>(p.GraphMaxNodes)));
    }
    if (const sxml::Element *le = root.FirstChild("layout"))
    {
      p.Layout = vp::layout::KindFromName(
        le->Attribute("default", vp::layout::KindName(p.Layout)));
      p.LayoutBlock = static_cast<std::size_t>(le->AttributeInt(
        "block", static_cast<long long>(p.LayoutBlock)));
      if (p.LayoutBlock < 2 || p.LayoutBlock > 65536)
        throw std::runtime_error(
          "tune::ParseDoc: <layout> block must be in [2, 65536]");
      p.LayoutSimd = le->AttributeBool("simd", p.LayoutSimd);
    }
    if (const sxml::Element *ze = root.FirstChild("viz"))
    {
      p.VizResolution = static_cast<std::size_t>(ze->AttributeInt(
        "width", static_cast<long long>(p.VizResolution)));
      p.VizColormap = int(viz::ColormapFromName(ze->Attribute(
        "colormap", viz::ColormapName(viz::Colormap(p.VizColormap)))));
      p.VizCodec = cmp::CodecIdFromName(
        ze->Attribute("codec", cmp::CodecName(p.VizCodec)));
    }

    // per-analysis overrides: from <analysis> elements when the document
    // has them (a campaign config), from <tune><override> records when it
    // does not (a standalone EmitXml document)
    std::size_t i = 0;
    for (const auto &child : root.Children())
    {
      if (child->Name() != "analysis")
        continue;
      AnalysisOverride ov;
      ParseOverrideAttrs(*child, ov);
      if (!ov.IsDefault())
      {
        if (p.Overrides.size() <= i)
          p.Overrides.resize(i + 1);
        p.Overrides[i] = ov;
      }
      ++i;
    }
    if (const sxml::Element *te = root.FirstChild("tune"))
    {
      for (const sxml::Element *oe : te->ChildrenNamed("override"))
      {
        const long long idx = oe->AttributeInt("analysis", -1);
        if (idx < 0)
          throw std::runtime_error(
            "tune::ParseDoc: <override> needs an analysis=\"i\" index");
        AnalysisOverride ov;
        ParseOverrideAttrs(*oe, ov);
        if (p.Overrides.size() <= static_cast<std::size_t>(idx))
          p.Overrides.resize(static_cast<std::size_t>(idx) + 1);
        p.Overrides[static_cast<std::size_t>(idx)] = ov;
      }
    }
  }
  catch (const std::invalid_argument &e)
  {
    throw std::runtime_error(std::string("tune::ParseDoc: ") + e.what());
  }
  return p;
}

ConfigPoint ParseXml(const std::string &xml)
{
  return ParseDoc(*sxml::Parse(xml));
}

ConfigPoint ParseFile(const std::string &path)
{
  return ParseDoc(*sxml::ParseFile(path));
}

std::string Describe(const ConfigPoint &p)
{
  std::ostringstream os;
  os << "sched=" << sched::PolicyKindName(p.Policy) << "/d"
     << p.QueueDepth << "/" << sched::BackpressureName(p.Pressure)
     << " pool=" << (p.PoolEnabled ? "on" : "off");
  if (p.PoolEnabled)
    os << "(" << (p.PoolMaxCachedBytes >> 20) << "MiB,t"
       << p.PoolTrimThreshold << ",b" << p.PoolMinBlockBytes << ")";
  os << " cmp=" << (p.CompressEnabled ? cmp::CodecName(p.Codec) : "off");
  if (p.CompressEnabled)
    os << "/L" << p.CompressLevel;
  os << " exec=" << vp::exec::ModeName(p.ExecMode);
  if (p.ExecMode == vp::exec::Mode::Threads)
    os << "/" << p.ExecThreads << "t/g" << p.ExecShardGrain;
  os << " graph=" << (p.GraphEnabled ? (p.GraphFusion ? "fused" : "on")
                                     : "off");
  os << " layout=" << vp::layout::KindName(p.Layout, p.LayoutBlock);
  if (p.LayoutSimd)
    os << "+simd";
  os << " viz=" << p.VizResolution << "px/"
     << viz::ColormapName(viz::Colormap(p.VizColormap));
  if (p.VizCodec != cmp::CodecId::None)
    os << "/" << cmp::CodecName(p.VizCodec);
  int n = 0;
  for (const AnalysisOverride &ov : p.Overrides)
    if (!ov.IsDefault())
      ++n;
  if (n)
    os << " overrides=" << n;
  return os.str();
}

} // namespace tune
