#ifndef vpTypes_h
#define vpTypes_h

/// @file vpTypes.h
/// Fundamental identifiers and enumerations for the virtual heterogeneous
/// platform (vp). The platform simulates one or more compute nodes, each
/// hosting a CPU core pool and a set of accelerator devices with private
/// memory spaces, in-order streams, and copy engines. Timing is tracked in
/// *virtual* seconds by a discrete-event clock (see vpClock.h) while kernels
/// still execute their real computation eagerly so that numerical results
/// are genuine.

#include <cstddef>
#include <cstdint>

namespace vp
{

/// Identifies a memory space in which an allocation lives.
enum class MemSpace : std::uint8_t
{
  Host = 0,    ///< pageable host memory (malloc / operator new)
  HostPinned,  ///< page-locked host memory, faster virtual transfer rates
  Device,      ///< private memory of one simulated accelerator
  Managed      ///< unified memory addressable from host and all devices
};

/// Identifies which programming-model front end allocated a block. The data
/// model records this so that cross-PM accesses can be recognized (and, in a
/// real system, bridged). In the simulation all PMs share the registry so
/// interop is zero-copy, mirroring CUDA/OpenMP pointer interop on one GPU.
enum class PmKind : std::uint8_t
{
  None = 0,  ///< not PM managed (plain host allocation)
  Cuda,      ///< allocated through the vcuda front end
  OpenMP,    ///< allocated through the vomp front end
  Hip,       ///< allocated through the vhip front end
  Sycl       ///< allocated through the vsycl front end (the paper's
             ///< future-work PM, implemented here)
};

/// Classification of a memory transfer, used by the cost model.
enum class CopyKind : std::uint8_t
{
  HostToHost = 0,
  HostToDevice,
  DeviceToHost,
  DeviceToDevice,  ///< peer transfer between two devices on one node
  OnDevice         ///< source and destination on the same device
};

/// A device index is node-local: 0 .. numDevices-1. The host is addressed by
/// the sentinel below (mirroring omp_get_initial_device semantics).
using DeviceId = int;

/// Sentinel device id naming the host CPU.
inline constexpr DeviceId HostDevice = -1;

/// Returns a short human readable name for a memory space.
const char *ToString(MemSpace s);

/// Returns a short human readable name for a PM kind.
const char *ToString(PmKind p);

/// Returns a short human readable name for a copy kind.
const char *ToString(CopyKind k);

} // namespace vp

#endif
