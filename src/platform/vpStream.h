#ifndef vpStream_h
#define vpStream_h

/// @file vpStream.h
/// In-order command streams. A stream belongs to one device on one node.
/// Operations submitted to a stream are ordered: each starts no earlier
/// than the completion of its predecessor on the stream, and no earlier
/// than the availability of the hardware resource it uses. Streams are
/// cheap shared handles; copying a Stream aliases the same queue, exactly
/// like cudaStream_t.

#include "vpTypes.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <vector>

namespace vp
{

namespace exec
{
class Fence;
}

/// Shared state of one stream.
struct StreamState
{
  int Node = 0;
  DeviceId Device = 0;
  double Last = 0.0; ///< virtual completion time of the newest operation
  std::mutex Mutex;

  /// Real-execution ordering frontier (VP_EXEC=threads): the completion
  /// fences the next operation enqueued on this stream must wait out.
  /// Normally the fence of the previous operation; StreamWaitEvent adds
  /// the recorded event's fences. Guarded by Mutex; empty in serial
  /// mode, where bodies run inline and order is trivial.
  std::vector<std::shared_ptr<exec::Fence>> RealFrontier;

  /// Record that an operation completed at time t.
  void Extend(double t)
  {
    std::lock_guard<std::mutex> lock(this->Mutex);
    this->Last = std::max(this->Last, t);
  }

  /// Virtual completion time of all work submitted so far.
  double Completion()
  {
    std::lock_guard<std::mutex> lock(this->Mutex);
    return this->Last;
  }
};

/// Value-semantic handle to a stream. A default-constructed Stream is a
/// null handle; operations on a null stream use the device's default
/// stream, which the Platform owns.
class Stream
{
public:
  Stream() = default;

  /// Create a new stream on device `device` of node `node`.
  static Stream New(int node, DeviceId device)
  {
    Stream s;
    s.State_ = std::make_shared<StreamState>();
    s.State_->Node = node;
    s.State_->Device = device;
    return s;
  }

  /// True when this handle refers to a live stream.
  explicit operator bool() const noexcept { return static_cast<bool>(this->State_); }

  /// Two handles compare equal when they alias the same queue.
  bool operator==(const Stream &o) const noexcept { return this->State_ == o.State_; }

  /// Access to the shared queue state (null for a null handle).
  StreamState *Get() const noexcept { return this->State_.get(); }

private:
  std::shared_ptr<StreamState> State_;
};

} // namespace vp

#endif
