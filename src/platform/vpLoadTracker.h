#ifndef vpLoadTracker_h
#define vpLoadTracker_h

/// @file vpLoadTracker.h
/// Scheduler-visible per-device load accounting for the virtual platform.
/// The engine ResourceTimelines only learn about work when it is actually
/// submitted, but an adaptive placement decision happens *before* the
/// work exists — and several ranks decide in the same step. The tracker
/// closes that gap: placement policies record an assignment together with
/// a cost-model estimate of its duration, and later deciders see both the
/// engine backlog (outstanding submitted work from the virtual clock) and
/// the promised-but-not-yet-submitted work of their peers.
///
/// The tracker also counts placements per device (the host counts as
/// device -1), which sched::Stats exports through the profiler.

#include "vpTypes.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

namespace vp
{

/// Process-wide singleton; thread safe. Reset on Platform::Initialize.
class DeviceLoadTracker
{
public:
  /// The singleton, created on first use (registers a Platform
  /// AtInitialize hook so a platform rebuild starts from a clean slate).
  static DeviceLoadTracker &Get();

  /// Count a placement decision. `device` is a device id on `node`, or
  /// -1 for the host.
  void RecordPlacement(int node, int device);

  /// A placement policy assigned an analysis estimated to take
  /// `seconds` of device time to (node, device), deciding at virtual
  /// time `now`. Extends the device's promised-work horizon:
  /// PendingUntil = max(now, engine availability, previous horizon)
  /// + seconds.
  void RecordAssignment(int node, int device, double seconds, double now);

  /// Outstanding work on (node, device) as of virtual time `now`, in
  /// seconds: how far beyond `now` the engine availability or the
  /// promised-work horizon extends (0 when the device is idle).
  double Backlog(int node, int device, double now) const;

  /// Mark `device` as the one currently serving an interactive
  /// (latency-sensitive) workload on `node`. Throughput placements bias
  /// away from it on close calls so the interactive path stays short.
  void NoteInteractive(int node, int device);

  /// The device serving interactive work on `node`, or -1 when none
  /// was noted since the last Reset.
  int InteractiveDevice(int node) const;

  /// Placement count for (node, device); device -1 queries the host.
  std::uint64_t Placements(int node, int device) const;

  /// Placement counts summed over nodes: index 0 is the host, index
  /// 1 + d is device d. The vector has `1 + maxDevice` entries covering
  /// every device that received a placement.
  std::vector<std::uint64_t> PlacementTotals() const;

  /// Forget all counts and horizons.
  void Reset();

private:
  DeviceLoadTracker();

  mutable std::mutex Mutex_;
  std::map<std::pair<int, int>, std::uint64_t> Placements_;
  std::map<std::pair<int, int>, double> PendingUntil_;
  std::map<int, int> Interactive_; ///< node -> interactive device
};

} // namespace vp

#endif
