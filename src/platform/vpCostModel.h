#ifndef vpCostModel_h
#define vpCostModel_h

/// @file vpCostModel.h
/// Analytic timing model for the virtual platform. All rates are calibrated
/// loosely to a Perlmutter-like node (AMD EPYC host + A100-class devices) so
/// that the *shape* of the paper's results is reproduced: devices are much
/// faster than the host core pool for streaming FLOP work, host<->device
/// transfers are bandwidth limited, kernel launches carry a fixed latency,
/// and atomic-heavy device kernels pay a contention penalty (the paper notes
/// data binning "is not an ideal algorithm for GPUs since it requires the
/// use of atomic memory updates").

#include <cstddef>

namespace vp
{

/// Per-operation virtual-time costs. Durations in seconds, rates in
/// operations (or bytes) per second.
struct CostModel
{
  // --- kernel execution -------------------------------------------------
  double KernelLaunchLatency = 5.0e-6;  ///< fixed cost per device launch
  double KernelSubmitOverhead = 1.5e-6; ///< host-side cost of an async submit
  double DeviceOpRate = 4.0e11;         ///< device elementary ops / second
  double HostOpRate = 2.0e10;           ///< host core-pool ops / second
  double DeviceAtomicPenalty = 12.0;    ///< slowdown for atomic-bound kernels
  double HostAtomicPenalty = 1.5;       ///< host pays far less for atomics

  // --- memory movement ---------------------------------------------------
  double H2DBandwidth = 2.4e10;       ///< pageable host -> device, bytes/s
  double D2HBandwidth = 2.4e10;       ///< device -> pageable host, bytes/s
  double PinnedBandwidthScale = 2.0;  ///< pinned transfers are this much faster
  double D2DBandwidth = 8.0e10;       ///< peer device -> device, bytes/s
  double H2HBandwidth = 5.0e10;       ///< host memcpy, bytes/s
  double CopyLatency = 8.0e-6;        ///< fixed latency per transfer
  double AllocLatency = 2.0e-6;       ///< device allocation bookkeeping
  double AsyncAllocLatency = 0.4e-6;  ///< stream-ordered allocation

  // --- captured step-graph replay ----------------------------------------
  /// One amortized host-side charge per replay flush of a captured step
  /// graph (src/graph), replacing the per-call KernelSubmitOverhead of
  /// every absorbed operation — the cudaGraphLaunch analogue.
  double GraphReplayLatency = 2.0e-6;

  // --- threading and messaging -------------------------------------------
  double ThreadSpawnCost = 2.0e-5;  ///< std::thread launch for async in situ
  double MessageLatency = 2.0e-6;   ///< per message fixed cost (on-node MPI)
  double MessageBandwidth = 1.2e10; ///< bytes/s between ranks

  /// Virtual duration of a kernel over n elements at opsPerElement cost.
  /// atomicFraction in [0,1] scales between streaming and atomic-bound rate.
  double KernelSeconds(std::size_t n, double opsPerElement, bool onDevice,
                       double atomicFraction = 0.0) const
  {
    const double rate = onDevice ? this->DeviceOpRate : this->HostOpRate;
    const double penalty =
      onDevice ? this->DeviceAtomicPenalty : this->HostAtomicPenalty;
    const double eff =
      rate / (1.0 + atomicFraction * (penalty - 1.0));
    const double work = static_cast<double>(n) * opsPerElement;
    return (onDevice ? this->KernelLaunchLatency : 0.0) + work / eff;
  }

  /// Virtual duration of a transfer of nBytes classified by kind; pinned
  /// host endpoints raise the effective bandwidth.
  double CopySeconds(std::size_t nBytes, double bandwidth) const
  {
    return this->CopyLatency + static_cast<double>(nBytes) / bandwidth;
  }
};

} // namespace vp

#endif
