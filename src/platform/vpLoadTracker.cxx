#include "vpLoadTracker.h"

#include "vpClock.h"
#include "vpPlatform.h"

#include <algorithm>

namespace vp
{

DeviceLoadTracker &DeviceLoadTracker::Get()
{
  static DeviceLoadTracker instance;
  return instance;
}

DeviceLoadTracker::DeviceLoadTracker()
{
  Platform::AtInitialize([]() { DeviceLoadTracker::Get().Reset(); });
}

void DeviceLoadTracker::RecordPlacement(int node, int device)
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  ++this->Placements_[{node, device}];
}

void DeviceLoadTracker::RecordAssignment(int node, int device, double seconds,
                                         double now)
{
  if (device < 0 || seconds <= 0.0)
    return;

  double engineAvail = now;
  Platform &plat = Platform::Get();
  if (node >= 0 && node < plat.NumNodes() && device < plat.NumDevices())
    engineAvail = plat.GetDevice(node, device).Engine.Available();

  std::lock_guard<std::mutex> lock(this->Mutex_);
  double &until = this->PendingUntil_[{node, device}];
  until = std::max({now, engineAvail, until}) + seconds;
}

double DeviceLoadTracker::Backlog(int node, int device, double now) const
{
  double horizon = now;
  if (device >= 0)
  {
    Platform &plat = Platform::Get();
    if (node >= 0 && node < plat.NumNodes() && device < plat.NumDevices())
      horizon = plat.GetDevice(node, device).Engine.Available();
  }

  std::lock_guard<std::mutex> lock(this->Mutex_);
  auto it = this->PendingUntil_.find({node, device});
  if (it != this->PendingUntil_.end())
    horizon = std::max(horizon, it->second);
  return std::max(0.0, horizon - now);
}

void DeviceLoadTracker::NoteInteractive(int node, int device)
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  if (device < 0)
    this->Interactive_.erase(node);
  else
    this->Interactive_[node] = device;
}

int DeviceLoadTracker::InteractiveDevice(int node) const
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  auto it = this->Interactive_.find(node);
  return it == this->Interactive_.end() ? -1 : it->second;
}

std::uint64_t DeviceLoadTracker::Placements(int node, int device) const
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  auto it = this->Placements_.find({node, device});
  return it == this->Placements_.end() ? 0 : it->second;
}

std::vector<std::uint64_t> DeviceLoadTracker::PlacementTotals() const
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  int maxDev = -1;
  for (const auto &kv : this->Placements_)
    maxDev = std::max(maxDev, kv.first.second);
  std::vector<std::uint64_t> out(static_cast<std::size_t>(2 + maxDev), 0);
  for (const auto &kv : this->Placements_)
    out[static_cast<std::size_t>(1 + kv.first.second)] += kv.second;
  return out;
}

void DeviceLoadTracker::Reset()
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  this->Placements_.clear();
  this->PendingUntil_.clear();
  this->Interactive_.clear();
}

} // namespace vp
