#ifndef vpPlatform_h
#define vpPlatform_h

/// @file vpPlatform.h
/// The virtual heterogeneous platform: a configurable set of compute nodes,
/// each with a host core pool and several accelerator devices. This is the
/// substrate standing in for the CUDA / OpenMP-offload runtimes and the
/// Perlmutter GPU nodes used in the paper. Kernel durations are charged
/// to a discrete-event virtual timeline that models launch latency,
/// bandwidths, device/host throughput, contention between streams
/// sharing an engine, and the atomic-update penalty. The real kernel
/// bodies (results are genuine) run under the vp::exec engine: inline on
/// the calling thread by default (VP_EXEC=serial, bit-exact), or
/// genuinely concurrently on per-device worker queues with sharded
/// bodies when VP_EXEC=threads. Virtual time is identical in both modes.

#include "vpClock.h"
#include "vpCostModel.h"
#include "vpMemory.h"
#include "vpStream.h"
#include "vpTypes.h"

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace vp
{

/// Error type thrown by platform front ends on invalid use (bad device id,
/// freeing an unknown pointer, exceeding a device memory limit, ...).
class Error : public std::runtime_error
{
public:
  explicit Error(const std::string &what) : std::runtime_error(what) {}
};

/// Static description of the simulated machine.
struct PlatformConfig
{
  int NumNodes = 1;          ///< independent nodes (each with its own devices)
  int DevicesPerNode = 4;    ///< accelerators per node (Perlmutter: 4 A100)
  int HostCoresPerNode = 64; ///< host CPU cores per node (Perlmutter: 64)
  CostModel Cost;            ///< timing model
  bool ExecuteKernels = true; ///< false = timing-only mode for paper-scale runs
  std::size_t DeviceMemoryLimit = 0; ///< bytes per device; 0 = unlimited
};

/// Work description used by the cost model for one kernel launch.
struct KernelDesc
{
  std::size_t N = 0;            ///< number of elements / iterations
  double OpsPerElement = 1.0;   ///< elementary operations per element
  double AtomicFraction = 0.0;  ///< fraction of work that is atomic-bound
  const char *Name = "kernel";  ///< label for diagnostics
  bool Shardable = false;       ///< body may run as concurrent [b,e) chunks

  /// Fusion opt-in for captured step-graph replay (src/graph): consecutive
  /// same-stream launches carrying the same non-null key, the same N, and
  /// the same Shardable flag assert that their outputs are disjoint and
  /// may be merged into one multi-output launch. Null (the default) never
  /// fuses.
  const void *FuseKey = nullptr;
};

/// A range kernel body: invoked as fn(begin, end) over [0, N).
using KernelFn = std::function<void(std::size_t, std::size_t)>;

/// One simulated accelerator: a compute engine and a copy engine, each an
/// exclusive resource with its own availability timeline.
struct Device
{
  ResourceTimeline Engine;     ///< kernel execution
  ResourceTimeline CopyEngine; ///< DMA transfers
  std::atomic<std::size_t> BytesAllocated{0};
  Stream DefaultStream;        ///< the device's null-stream
};

/// One simulated node: devices plus a host core pool.
struct Node
{
  std::vector<std::unique_ptr<Device>> Devices;
  std::unique_ptr<PoolTimeline> HostPool;
};

/// Aggregate operation counters, useful for asserting zero-copy behaviour.
struct PlatformStats
{
  std::atomic<std::uint64_t> KernelsLaunched{0};
  std::atomic<std::uint64_t> HostRegions{0};
  std::atomic<std::uint64_t> CopyCount[5] = {};  ///< indexed by CopyKind
  std::atomic<std::uint64_t> CopyBytes[5] = {};  ///< indexed by CopyKind

  std::uint64_t Copies(CopyKind k) const
  {
    return this->CopyCount[static_cast<int>(k)].load();
  }
  std::uint64_t Bytes(CopyKind k) const
  {
    return this->CopyBytes[static_cast<int>(k)].load();
  }
  void Reset()
  {
    this->KernelsLaunched = 0;
    this->HostRegions = 0;
    for (auto &c : this->CopyCount) c = 0;
    for (auto &b : this->CopyBytes) b = 0;
  }
};

/// The machine. A process-wide singleton that tests and benchmarks may
/// re-Initialize between scenarios (all tracked allocations must be freed
/// first; Initialize verifies this).
class Platform
{
public:
  /// Access the singleton, creating it with a default config on first use.
  static Platform &Get();

  /// Recreate the machine with a new configuration. Registered
  /// AtInitialize hooks run first (so caching layers such as the memory
  /// pool can release platform memory they hold); then throws vp::Error
  /// if tracked allocations are still live.
  static void Initialize(const PlatformConfig &config);

  /// Register a hook invoked at the start of every Initialize, before the
  /// live-allocation check. Subsystems that cache platform allocations
  /// (e.g. vp::PoolManager) release them here. Hooks persist for the
  /// process lifetime.
  static void AtInitialize(std::function<void()> hook);

  /// The active configuration.
  const PlatformConfig &Config() const noexcept { return this->Config_; }

  /// Devices per node.
  int NumDevices() const noexcept { return this->Config_.DevicesPerNode; }

  /// Number of nodes.
  int NumNodes() const noexcept { return this->Config_.NumNodes; }

  /// Node accessor; throws on out-of-range ids.
  Node &GetNode(int node);

  /// Device accessor; throws on out-of-range ids.
  Device &GetDevice(int node, DeviceId dev);

  /// Bind the calling thread to a node (ranks call this at startup).
  static void SetThisNode(int node);

  /// Node the calling thread is bound to (default 0).
  static int GetThisNode();

  // --- memory -------------------------------------------------------------

  /// Allocate `bytes` in `space`. For MemSpace::Device, `device` names the
  /// owning accelerator on the calling thread's node. Charges allocation
  /// latency to the calling thread (or the stream for async allocations).
  /// Memory is zero initialized. Throws vp::Error when a device memory
  /// limit is configured and would be exceeded.
  void *Allocate(MemSpace space, DeviceId device, std::size_t bytes,
                 PmKind pm, const Stream &stream = Stream());

  /// Free memory obtained from Allocate. Throws vp::Error on unknown
  /// pointers; freeing nullptr is a no-op.
  void Free(void *p);

  /// Look up allocation metadata; false for untracked (raw host) pointers.
  bool Query(const void *p, AllocInfo &info) const
  {
    return this->Registry_.Query(p, info);
  }

  /// The allocation registry (read-mostly introspection).
  const MemoryRegistry &Registry() const noexcept { return this->Registry_; }

  /// Mark/unmark a tracked allocation as managed by a vp::MemoryPool so
  /// that copy classification and frees can recognize pooled blocks.
  bool TagPooled(void *p, bool pooled)
  {
    return this->Registry_.SetPooled(p, pooled);
  }

  // --- execution ----------------------------------------------------------

  /// The default stream of a device on the calling thread's node.
  Stream DefaultStream(DeviceId device);

  /// Launch a kernel on a device stream. The virtual duration is charged
  /// to the stream and the device's compute engine at submission. The
  /// body runs eagerly in serial exec mode, or is deferred to the
  /// device's compute queue (stream-ordered; sharded when
  /// desc.Shardable) under VP_EXEC=threads; timing-only mode skips it.
  /// When `synchronous` the calling thread's clock advances to the
  /// completion time (and, in threads mode, the body is really waited
  /// out), otherwise only by the submit overhead.
  void LaunchKernel(const Stream &stream, const KernelDesc &desc,
                    const KernelFn &fn, bool synchronous = false);

  /// Run a parallel region on the calling thread's node host core pool,
  /// occupying `width` cores (0 = all); the virtual cost is priced
  /// against the lanes actually claimed. Synchronous: the thread clock
  /// advances to completion. The body runs on the calling thread, or —
  /// when desc.Shardable and VP_EXEC=threads — split into per-lane
  /// [begin, end) chunks across the node's worker pool (honouring
  /// `width` as the concurrency bound).
  void HostParallelFor(const KernelDesc &desc, const KernelFn &fn,
                       int width = 0);

  /// Charge `seconds` of serial host work to the calling thread.
  void HostCompute(double seconds) { ThisClock().Advance(seconds); }

  /// Asynchronous copy ordered by `stream`. Classification (H2D, ...) is
  /// inferred from the registry. The bytes move immediately (real memcpy);
  /// virtual time is charged to the stream and the owning copy engine.
  void CopyAsync(const Stream &stream, void *dst, const void *src,
                 std::size_t bytes);

  /// Synchronous copy: as CopyAsync on the device default stream, then the
  /// calling thread waits for completion.
  void Copy(void *dst, const void *src, std::size_t bytes);

  /// Advance the calling thread's clock to the stream's completion time.
  void StreamSynchronize(const Stream &stream);

  /// Advance the calling thread's clock past all work submitted to a
  /// device on the calling thread's node.
  void DeviceSynchronize(DeviceId device);

  // --- introspection -------------------------------------------------------

  /// Operation counters.
  PlatformStats &Stats() noexcept { return this->Stats_; }

  /// Validate a device id for the calling thread's node; throws vp::Error.
  void CheckDevice(DeviceId device) const;

private:
  Platform() = default;
  void Build(const PlatformConfig &config);

  /// Resolve a possibly-null stream handle to a real stream.
  Stream Resolve(const Stream &stream, DeviceId fallbackDevice);

  double CopyBandwidth(CopyKind kind, const AllocInfo &dst,
                       const AllocInfo &src) const;

  PlatformConfig Config_;
  std::vector<Node> Nodes_;
  MemoryRegistry Registry_;
  PlatformStats Stats_;
};

/// RAII helper that runs a function on a new thread whose virtual clock is
/// seeded from the parent at spawn and merged back at Join. This is the
/// platform-aware replacement for raw std::thread used by the asynchronous
/// in situ execution method.
class ScopedThread
{
public:
  ScopedThread() = default;

  /// Launch `fn` on a new thread. The child's clock starts at the parent's
  /// current time plus the configured thread-spawn cost.
  explicit ScopedThread(std::function<void()> fn);

  ScopedThread(ScopedThread &&) noexcept;
  ScopedThread &operator=(ScopedThread &&) noexcept;
  ScopedThread(const ScopedThread &) = delete;
  ScopedThread &operator=(const ScopedThread &) = delete;

  /// Joins (and merges clocks) if still running.
  ~ScopedThread();

  /// Wait for the child and advance the parent clock to
  /// max(parent, child completion).
  void Join();

  /// True when a thread is joinable.
  bool Joinable() const noexcept;

private:
  struct Impl;
  std::unique_ptr<Impl> Impl_;
};

} // namespace vp

#endif
