#ifndef vpClock_h
#define vpClock_h

/// @file vpClock.h
/// Discrete-event virtual time. Every executing thread owns a ThreadClock
/// (thread local, created on first use). Shared hardware — each device's
/// compute engine and copy engine, the host core pool — owns a
/// ResourceTimeline. An operation of duration d submitted by a thread at
/// virtual time t on resource R through stream S starts at
/// max(t, S.last, R.avail) and completes at start + d. Asynchronous submits
/// advance the submitting thread only by a small overhead; synchronization
/// advances it to the completion time. Thread fork/join propagates clocks,
/// so concurrency and contention appear in the virtual timeline exactly as
/// they would on real hardware.

#include <algorithm>
#include <mutex>

namespace vp
{

/// Virtual clock of one executing thread (virtual seconds since epoch 0).
class ThreadClock
{
public:
  /// Current virtual time of this thread.
  double Now() const noexcept { return this->Now_; }

  /// Advance this thread's clock by dt >= 0 seconds of local work.
  void Advance(double dt) noexcept { this->Now_ += dt; }

  /// Move the clock forward to time t if t is in the future.
  void AdvanceTo(double t) noexcept { this->Now_ = std::max(this->Now_, t); }

  /// Set the clock (used when seeding a child thread from its parent).
  void Set(double t) noexcept { this->Now_ = t; }

private:
  double Now_ = 0.0;
};

/// Returns the calling thread's clock, creating it at time 0 on first use.
ThreadClock &ThisClock();

/// Runs a region of code under a detached virtual clock: on construction
/// the calling thread's clock is saved and reset to `start`; on
/// destruction it is restored. Used to account a logically-concurrent
/// task (e.g. an asynchronous in situ analysis) on the submitting thread
/// deterministically: the task's resource claims are made as of its
/// virtual start time while the submitter's own clock is untouched.
class ClockScope
{
public:
  explicit ClockScope(double start) : Saved_(ThisClock().Now())
  {
    ThisClock().Set(start);
  }

  ~ClockScope() { ThisClock().Set(this->Saved_); }

  ClockScope(const ClockScope &) = delete;
  ClockScope &operator=(const ClockScope &) = delete;

  /// The detached clock's current value (read before destruction).
  double Now() const { return ThisClock().Now(); }

private:
  double Saved_;
};

/// Availability timeline of one exclusive hardware resource. Thread safe.
class ResourceTimeline
{
public:
  /// Claim the resource for an operation of duration d that cannot start
  /// before `earliest`. Returns the completion time. The resource is busy
  /// until that time.
  double Claim(double earliest, double d)
  {
    std::lock_guard<std::mutex> lock(this->Mutex_);
    const double start = std::max(earliest, this->Avail_);
    this->Avail_ = start + d;
    return this->Avail_;
  }

  /// Time at which the resource next becomes free.
  double Available() const
  {
    std::lock_guard<std::mutex> lock(this->Mutex_);
    return this->Avail_;
  }

  /// Reset the timeline to epoch 0 (test support).
  void Reset()
  {
    std::lock_guard<std::mutex> lock(this->Mutex_);
    this->Avail_ = 0.0;
  }

private:
  mutable std::mutex Mutex_;
  double Avail_ = 0.0;
};

/// A shared pool of identical lanes (e.g. host CPU cores). Work items claim
/// the least-loaded lane; a parallel region of aggregate duration d spread
/// over the whole pool claims every lane. This captures the paper's host
/// placement scenario where in situ work steals otherwise idle host cores.
class PoolTimeline
{
public:
  explicit PoolTimeline(int lanes = 1);
  ~PoolTimeline();

  PoolTimeline(const PoolTimeline &) = delete;
  PoolTimeline &operator=(const PoolTimeline &) = delete;

  /// Claim one lane for duration d starting no earlier than `earliest`.
  double ClaimOne(double earliest, double d);

  /// Claim `width` lanes (clamped to the pool size) for a region whose
  /// total serial work is `serialSeconds`; the region's duration is
  /// serialSeconds / width. Returns the completion time.
  double ClaimMany(double earliest, double serialSeconds, int width);

  /// Number of lanes in the pool.
  int Lanes() const noexcept { return this->NumLanes_; }

  /// Reset all lanes to epoch 0 (test support).
  void Reset();

private:
  int NumLanes_ = 1;
  double *LaneAvail_ = nullptr;
  mutable std::mutex Mutex_;
};

} // namespace vp

#endif
