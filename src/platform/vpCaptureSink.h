#ifndef vpCaptureSink_h
#define vpCaptureSink_h

/// @file vpCaptureSink.h
/// Interception interface for captured step-graph execution (src/graph).
/// A sink installed on the calling thread sees every stream-ordered
/// operation before the platform's eager path runs it. Each async hook
/// returns true when the sink absorbed the operation (graph replay:
/// nothing else happens at the call site) or false when the platform
/// should execute it eagerly as usual (no capture, or capture mode,
/// where the op is recorded *and* executed so the checker can validate
/// the DAG once).
///
/// Synchronization points are never absorbed: the Before* hooks let the
/// sink flush its pending replayed prefix (running the recorded bodies
/// and charging the amortized virtual costs) before the platform's
/// normal synchronize logic runs.
///
/// The sink is thread-local so an asynchronous in situ thread captures
/// its own analysis pipeline without seeing the simulation's launches.

#include "vpStream.h"
#include "vpTypes.h"

#include <cstddef>
#include <cstdint>
#include <functional>

namespace vp
{

struct KernelDesc;
using KernelFn = std::function<void(std::size_t, std::size_t)>;

class CaptureSink
{
public:
  virtual ~CaptureSink() = default;

  /// A kernel launch on `stream`. True = absorbed (replay).
  virtual bool OnKernel(const Stream &stream, const KernelDesc &desc,
                        const KernelFn &fn, bool synchronous) = 0;

  /// An async copy on `stream` (bytes > 0). True = absorbed.
  virtual bool OnCopy(const Stream &stream, void *dst, const void *src,
                      std::size_t bytes) = 0;

  /// An event record on `stream`; `captureId` is the event's process-wide
  /// identity (never 0). True = absorbed (the caller's event_t carries
  /// only the id; ordering is realized when the sink flushes).
  virtual bool OnEventRecord(const Stream &stream, std::uint64_t captureId) = 0;

  /// `stream` waits on the event recorded under `captureId`.
  virtual bool OnStreamWaitEvent(const Stream &stream,
                                 std::uint64_t captureId) = 0;

  /// The calling thread is about to synchronize `stream` / the device /
  /// the event. Never absorbs; the platform's synchronize runs after.
  virtual void BeforeStreamSync(const Stream &stream) = 0;
  virtual void BeforeDeviceSync(int node, DeviceId device) = 0;
  virtual void BeforeEventSync(std::uint64_t captureId) = 0;
};

/// The calling thread's sink (null when none is installed).
CaptureSink *GetCaptureSink() noexcept;

/// Install `sink` on the calling thread; returns the previous sink.
CaptureSink *SetCaptureSink(CaptureSink *sink) noexcept;

/// Process-wide unique event identity for capture (never returns 0).
std::uint64_t NextCaptureEventId() noexcept;

/// RAII: install a sink for a scope, restoring the previous one.
class CaptureSinkScope
{
public:
  explicit CaptureSinkScope(CaptureSink *sink)
    : Prev_(SetCaptureSink(sink))
  {
  }
  ~CaptureSinkScope() { SetCaptureSink(this->Prev_); }
  CaptureSinkScope(const CaptureSinkScope &) = delete;
  CaptureSinkScope &operator=(const CaptureSinkScope &) = delete;

private:
  CaptureSink *Prev_ = nullptr;
};

} // namespace vp

#endif
