#include "vpCaptureSink.h"

#include <atomic>

namespace vp
{

namespace
{
CaptureSink *&ThisSink() noexcept
{
  thread_local CaptureSink *sink = nullptr;
  return sink;
}
} // namespace

CaptureSink *GetCaptureSink() noexcept
{
  return ThisSink();
}

CaptureSink *SetCaptureSink(CaptureSink *sink) noexcept
{
  CaptureSink *prev = ThisSink();
  ThisSink() = sink;
  return prev;
}

std::uint64_t NextCaptureEventId() noexcept
{
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

} // namespace vp
