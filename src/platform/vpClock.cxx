#include "vpClock.h"

#include <vector>

namespace vp
{

ThreadClock &ThisClock()
{
  thread_local ThreadClock clock;
  return clock;
}

PoolTimeline::PoolTimeline(int lanes)
  : NumLanes_(lanes > 0 ? lanes : 1), LaneAvail_(new double[this->NumLanes_])
{
  for (int i = 0; i < this->NumLanes_; ++i)
    this->LaneAvail_[i] = 0.0;
}

PoolTimeline::~PoolTimeline()
{
  delete[] this->LaneAvail_;
}

double PoolTimeline::ClaimOne(double earliest, double d)
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  // pick the lane that frees up first
  int best = 0;
  for (int i = 1; i < this->NumLanes_; ++i)
    if (this->LaneAvail_[i] < this->LaneAvail_[best])
      best = i;
  const double start = std::max(earliest, this->LaneAvail_[best]);
  this->LaneAvail_[best] = start + d;
  return this->LaneAvail_[best];
}

double PoolTimeline::ClaimMany(double earliest, double serialSeconds, int width)
{
  if (width < 1)
    width = 1;
  if (width > this->NumLanes_)
    width = this->NumLanes_;

  std::lock_guard<std::mutex> lock(this->Mutex_);
  // the region starts when `width` lanes are simultaneously free. sort lane
  // availability and take the width-th smallest as the gating time.
  std::vector<double> avail(this->LaneAvail_, this->LaneAvail_ + this->NumLanes_);
  std::sort(avail.begin(), avail.end());
  const double gate = avail[static_cast<std::size_t>(width) - 1];
  const double start = std::max(earliest, gate);
  const double finish = start + serialSeconds / static_cast<double>(width);

  // occupy the `width` earliest-free lanes until the region completes
  int claimed = 0;
  for (int i = 0; i < this->NumLanes_ && claimed < width; ++i)
  {
    if (this->LaneAvail_[i] <= gate)
    {
      this->LaneAvail_[i] = finish;
      ++claimed;
    }
  }
  return finish;
}

void PoolTimeline::Reset()
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  for (int i = 0; i < this->NumLanes_; ++i)
    this->LaneAvail_[i] = 0.0;
}

} // namespace vp
