#include "vpPlatform.h"

#include "execEngine.h"
#include "vpCaptureSink.h"
#include "vpChecker.h"
#include "vpFaultInjector.h"

#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>

namespace vp
{

namespace
{
/// Thread-local node binding.
int &ThisNodeRef()
{
  thread_local int node = 0;
  return node;
}

Platform *GlobalPlatform = nullptr;
std::mutex GlobalMutex;

/// Hooks run at the start of every Initialize (guarded by its own mutex so
/// hook bodies may call back into the platform).
std::vector<std::function<void()>> &InitializeHooks()
{
  static std::vector<std::function<void()>> hooks;
  return hooks;
}
std::mutex HookMutex;
} // namespace

const char *ToString(MemSpace s)
{
  switch (s)
  {
    case MemSpace::Host: return "host";
    case MemSpace::HostPinned: return "host_pinned";
    case MemSpace::Device: return "device";
    case MemSpace::Managed: return "managed";
  }
  return "unknown";
}

const char *ToString(PmKind p)
{
  switch (p)
  {
    case PmKind::None: return "none";
    case PmKind::Cuda: return "cuda";
    case PmKind::OpenMP: return "openmp";
    case PmKind::Hip: return "hip";
    case PmKind::Sycl: return "sycl";
  }
  return "unknown";
}

const char *ToString(CopyKind k)
{
  switch (k)
  {
    case CopyKind::HostToHost: return "H2H";
    case CopyKind::HostToDevice: return "H2D";
    case CopyKind::DeviceToHost: return "D2H";
    case CopyKind::DeviceToDevice: return "D2D";
    case CopyKind::OnDevice: return "OnDevice";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
Platform &Platform::Get()
{
  std::lock_guard<std::mutex> lock(GlobalMutex);
  if (!GlobalPlatform)
  {
    GlobalPlatform = new Platform;
    GlobalPlatform->Build(PlatformConfig{});
  }
  return *GlobalPlatform;
}

void Platform::AtInitialize(std::function<void()> hook)
{
  std::lock_guard<std::mutex> lock(HookMutex);
  InitializeHooks().push_back(std::move(hook));
}

void Platform::Initialize(const PlatformConfig &config)
{
  Platform &inst = Platform::Get();
  // drain any real in-flight work before the caching layers release
  // platform memory and before the live-allocation check below
  exec::Engine::Get().Quiesce();
  {
    std::vector<std::function<void()>> hooks;
    {
      std::lock_guard<std::mutex> lock(HookMutex);
      hooks = InitializeHooks();
    }
    for (const auto &hook : hooks)
      hook();
  }
  if (inst.Registry_.Size() != 0)
  {
    std::ostringstream oss;
    oss << "Platform::Initialize: " << inst.Registry_.Size()
        << " tracked allocations are still live";
    throw Error(oss.str());
  }
  inst.Build(config);
}

void Platform::Build(const PlatformConfig &config)
{
  if (config.NumNodes < 1 || config.DevicesPerNode < 0 ||
      config.HostCoresPerNode < 1)
    throw Error("Platform::Build: invalid configuration");

  this->Config_ = config;
  this->Nodes_.clear();
  this->Nodes_.resize(static_cast<std::size_t>(config.NumNodes));
  for (int n = 0; n < config.NumNodes; ++n)
  {
    Node &node = this->Nodes_[static_cast<std::size_t>(n)];
    node.HostPool = std::make_unique<PoolTimeline>(config.HostCoresPerNode);
    node.Devices.reserve(static_cast<std::size_t>(config.DevicesPerNode));
    for (int d = 0; d < config.DevicesPerNode; ++d)
    {
      auto dev = std::make_unique<Device>();
      dev->DefaultStream = Stream::New(n, d);
      node.Devices.emplace_back(std::move(dev));
    }
  }
  this->Stats_.Reset();
  exec::Engine::Get().ResetTopology(config.NumNodes, config.DevicesPerNode);
}

Node &Platform::GetNode(int node)
{
  if (node < 0 || node >= static_cast<int>(this->Nodes_.size()))
  {
    std::ostringstream oss;
    oss << "Platform::GetNode: invalid node id " << node;
    throw Error(oss.str());
  }
  return this->Nodes_[static_cast<std::size_t>(node)];
}

Device &Platform::GetDevice(int node, DeviceId dev)
{
  Node &n = this->GetNode(node);
  if (dev < 0 || dev >= static_cast<int>(n.Devices.size()))
  {
    std::ostringstream oss;
    oss << "Platform::GetDevice: invalid device id " << dev << " on node "
        << node << " (" << n.Devices.size() << " devices)";
    throw Error(oss.str());
  }
  return *n.Devices[static_cast<std::size_t>(dev)];
}

void Platform::SetThisNode(int node)
{
  Platform &inst = Platform::Get();
  if (node < 0 || node >= inst.NumNodes())
    throw Error("Platform::SetThisNode: invalid node id");
  ThisNodeRef() = node;
}

int Platform::GetThisNode()
{
  return ThisNodeRef();
}

void Platform::CheckDevice(DeviceId device) const
{
  if (device < 0 || device >= this->Config_.DevicesPerNode)
  {
    std::ostringstream oss;
    oss << "invalid device id " << device << " ("
        << this->Config_.DevicesPerNode << " devices per node)";
    throw Error(oss.str());
  }
}

// ---------------------------------------------------------------------------
void *Platform::Allocate(MemSpace space, DeviceId device, std::size_t bytes,
                         PmKind pm, const Stream &stream)
{
  const int node = GetThisNode();

  if (space == MemSpace::Device || space == MemSpace::Managed)
    this->CheckDevice(device);

  if (space == MemSpace::Device && this->Config_.DeviceMemoryLimit)
  {
    Device &dev = this->GetDevice(node, device);
    if (dev.BytesAllocated.load() + bytes > this->Config_.DeviceMemoryLimit)
    {
      std::ostringstream oss;
      oss << "device " << device << " out of memory: "
          << dev.BytesAllocated.load() << " + " << bytes << " > "
          << this->Config_.DeviceMemoryLimit;
      throw Error(oss.str());
    }
  }

  // device memory is backed by host heap storage, zero initialized so that
  // timing-only mode reads defined values. Blocks are 64-byte aligned —
  // the vector-register / cache-line alignment the layout engine's
  // contiguous-run kernels assume — and the pool's power-of-two size
  // classes (>= 256) keep sub-allocations on that boundary too.
  // posix_memalign storage is std::free compatible, which Free relies on.
  void *p = nullptr;
  if (posix_memalign(&p, 64, bytes ? bytes : 1) != 0 || !p)
    throw Error("Platform::Allocate: host heap exhausted");
  std::memset(p, 0, bytes ? bytes : 1);

  AllocInfo info;
  info.Space = space;
  info.Device = (space == MemSpace::Device || space == MemSpace::Managed)
                  ? device
                  : HostDevice;
  info.Node = node;
  info.Bytes = bytes;
  info.Pm = pm;
  this->Registry_.Insert(p, info);

  if (space == MemSpace::Device)
    this->GetDevice(node, device).BytesAllocated += bytes;

  // charge allocation latency; stream-ordered allocations charge the stream
  const CostModel &cost = this->Config_.Cost;
  if (stream)
  {
    stream.Get()->Extend(ThisClock().Now() + cost.AsyncAllocLatency);
    ThisClock().Advance(cost.AsyncAllocLatency);
  }
  else
  {
    ThisClock().Advance(cost.AllocLatency);
  }

  check::OnAlloc(p, info, stream ? stream.Get() : nullptr);
  return p;
}

void Platform::Free(void *p)
{
  if (!p)
    return;

  // an erroneous free (double free / free of a pool-cached block) is
  // recorded and swallowed so the run can continue and be diagnosed
  if (check::InterceptFree(p))
    return;

  AllocInfo info;
  if (!this->Registry_.Query(p, info))
    throw Error("Platform::Free: pointer was not allocated by the platform");

  if (info.Pooled)
    throw Error("Platform::Free: pointer is owned by a vp::MemoryPool "
                "(cached block freed twice?)");

  // deferred bodies may still be touching device-resident storage; drain
  // the owning device's queues before the backing memory goes away
  if (exec::ThreadsEnabled() &&
      (info.Space == MemSpace::Device || info.Space == MemSpace::Managed))
    exec::Engine::Get().WaitDeviceTails(info.Node, info.Device);

  check::OnFree(p);

  if (info.Space == MemSpace::Device)
    this->GetDevice(info.Node, info.Device).BytesAllocated -= info.Bytes;

  this->Registry_.Erase(p);
  // the checker quarantines the storage behind its tombstone so the
  // address cannot be recycled while late accesses are still diagnosable
  if (!check::QuarantineFree(p))
    std::free(p);
  ThisClock().Advance(this->Config_.Cost.AllocLatency);
}

// ---------------------------------------------------------------------------
Stream Platform::DefaultStream(DeviceId device)
{
  this->CheckDevice(device);
  return this->GetDevice(GetThisNode(), device).DefaultStream;
}

Stream Platform::Resolve(const Stream &stream, DeviceId fallbackDevice)
{
  if (stream)
    return stream;
  return this->DefaultStream(fallbackDevice);
}

void Platform::LaunchKernel(const Stream &stream, const KernelDesc &desc,
                            const KernelFn &fn, bool synchronous)
{
  if (!stream)
    throw Error("Platform::LaunchKernel: null stream (resolve a default "
                "stream first)");

  if (CaptureSink *sink = GetCaptureSink())
    if (sink->OnKernel(stream, desc, fn, synchronous))
      return;

  StreamState *s = stream.Get();
  Device &dev = this->GetDevice(s->Node, s->Device);
  const CostModel &cost = this->Config_.Cost;

  check::OnSubmit(s);

  // a zero-N launch short-circuits below (the body never runs), and on
  // real hardware most runtimes elide the dispatch too — charging the
  // full launch latency to the device engine skewed eager baselines, so
  // only the host-side submit cost applies
  if (!desc.N)
  {
    this->Stats_.KernelsLaunched++;
    ThisClock().Advance(cost.KernelSubmitOverhead);
    return;
  }

  const double dur = cost.KernelSeconds(desc.N, desc.OpsPerElement,
                                        /*onDevice=*/true,
                                        desc.AtomicFraction) +
                     fault::StreamDelay(s->Node, s->Device);

  // ordering: after prior stream work, no earlier than submission
  const double submit = ThisClock().Now() + cost.KernelSubmitOverhead;
  double earliest = submit;
  {
    std::lock_guard<std::mutex> lock(s->Mutex);
    earliest = std::max(earliest, s->Last);
  }
  const double complete = dev.Engine.Claim(earliest, dur);
  s->Extend(complete);

  this->Stats_.KernelsLaunched++;

  // real execution. Virtual time is fully charged above, at submission,
  // in both modes — VP_EXEC only decides where the body's wall-clock is
  // spent. Serial mode runs it inline (the bit-exact legacy path);
  // threads mode defers it to the device's compute queue, ordered after
  // the stream's real frontier, and shards opted-in bodies across the
  // node's worker pool.
  if (this->Config_.ExecuteKernels && fn && desc.N)
  {
    if (exec::ThreadsEnabled())
    {
      exec::Engine &eng = exec::Engine::Get();
      const std::size_t n = desc.N;
      const int nodeId = s->Node;
      const int shards = desc.Shardable ? eng.PlanShards(n, 0) : 1;
      exec::FencePtr fence;
      {
        // frontier snapshot and replacement are one critical section so
        // a concurrent submitter on the same stream cannot lose a fence
        std::lock_guard<std::mutex> lock(s->Mutex);
        std::vector<exec::FencePtr> deps = s->RealFrontier;
        fence = eng.Enqueue(nodeId, s->Device, exec::Engine::ComputeQueue,
                            std::move(deps), [fn, n, nodeId, shards]()
                            {
                              exec::Engine::Get().RunSharded(nodeId, n,
                                                             shards, fn);
                            });
        s->RealFrontier.assign(1, fence);
      }
      if (synchronous)
        fence->Wait();
    }
    else
    {
      exec::NoteInlineTask();
      fn(0, desc.N);
    }
  }

  if (synchronous)
    ThisClock().AdvanceTo(complete);
  else
    ThisClock().Advance(cost.KernelSubmitOverhead);
}

void Platform::HostParallelFor(const KernelDesc &desc, const KernelFn &fn,
                               int width)
{
  Node &node = this->GetNode(GetThisNode());
  const CostModel &cost = this->Config_.Cost;

  // charge by the lanes actually claimed: the per-lane rate is a fixed
  // hardware property (HostOpRate spread over the whole pool), and a
  // width-limited region only ever occupies min(width, pool) of those
  // lanes — pricing it as `width` lanes when the pool is smaller made
  // virtual time run ahead of any real execution
  const int poolLanes = node.HostPool->Lanes();
  const int lanes = width > 0 ? std::min(width, poolLanes) : poolLanes;
  const double serial =
    static_cast<double>(desc.N) * desc.OpsPerElement /
    (cost.HostOpRate / static_cast<double>(poolLanes)) /
    (1.0 + desc.AtomicFraction * (cost.HostAtomicPenalty - 1.0));

  const double complete =
    node.HostPool->ClaimMany(ThisClock().Now(), serial, lanes);

  this->Stats_.HostRegions++;

  if (this->Config_.ExecuteKernels && fn && desc.N)
  {
    exec::Engine &eng = exec::Engine::Get();
    const int shards =
      desc.Shardable ? eng.PlanShards(desc.N, lanes) : 1;
    if (shards > 1)
    {
      eng.RunSharded(GetThisNode(), desc.N, shards, fn);
    }
    else
    {
      exec::NoteInlineTask();
      fn(0, desc.N);
    }
  }

  ThisClock().AdvanceTo(complete);
}

// ---------------------------------------------------------------------------
double Platform::CopyBandwidth(CopyKind kind, const AllocInfo &dst,
                               const AllocInfo &src) const
{
  const CostModel &cost = this->Config_.Cost;
  double bw = cost.H2HBandwidth;
  switch (kind)
  {
    case CopyKind::HostToDevice: bw = cost.H2DBandwidth; break;
    case CopyKind::DeviceToHost: bw = cost.D2HBandwidth; break;
    case CopyKind::DeviceToDevice: bw = cost.D2DBandwidth; break;
    case CopyKind::OnDevice: bw = cost.D2DBandwidth; break;
    case CopyKind::HostToHost: bw = cost.H2HBandwidth; break;
  }
  // pinned host endpoints transfer faster
  const bool pinned = dst.Space == MemSpace::HostPinned ||
                      src.Space == MemSpace::HostPinned;
  if (pinned &&
      (kind == CopyKind::HostToDevice || kind == CopyKind::DeviceToHost))
    bw *= cost.PinnedBandwidthScale;
  return bw;
}

void Platform::CopyAsync(const Stream &stream, void *dst, const void *src,
                         std::size_t bytes)
{
  if (!stream)
    throw Error("Platform::CopyAsync: null stream");
  if (!bytes)
    return;

  if (CaptureSink *sink = GetCaptureSink())
    if (sink->OnCopy(stream, dst, src, bytes))
      return;

  AllocInfo di, si;
  if (!this->Registry_.Query(dst, di))
    di = AllocInfo{}; // untracked: pageable host
  if (!this->Registry_.Query(src, si))
    si = AllocInfo{};

  const CopyKind kind = ClassifyCopy(di, si);
  const CostModel &cost = this->Config_.Cost;

  StreamState *s = stream.Get();
  Device &dev = this->GetDevice(s->Node, s->Device);

  check::OnCopy(s, dst, src, bytes);

  const double dur =
    cost.CopySeconds(bytes, this->CopyBandwidth(kind, di, si)) +
    fault::StreamDelay(s->Node, s->Device);

  const double submit = ThisClock().Now() + cost.KernelSubmitOverhead;
  double earliest = submit;
  {
    std::lock_guard<std::mutex> lock(s->Mutex);
    earliest = std::max(earliest, s->Last);
  }
  const double complete = dev.CopyEngine.Claim(earliest, dur);
  s->Extend(complete);

  this->Stats_.CopyCount[static_cast<int>(kind)]++;
  this->Stats_.CopyBytes[static_cast<int>(kind)] += bytes;

  // serial: the bytes move now; virtual time says later. callers that
  // reuse the source before synchronizing have a bug on real hardware
  // too. threads: the move is deferred to the device's copy engine
  // queue, ordered after the stream's frontier, so it genuinely overlaps
  // other queues. in timing-only mode data contents are meaningless, so
  // the movement is skipped along with kernel bodies.
  if (this->Config_.ExecuteKernels)
  {
    if (exec::ThreadsEnabled())
    {
      std::lock_guard<std::mutex> lock(s->Mutex);
      std::vector<exec::FencePtr> deps = s->RealFrontier;
      exec::FencePtr fence = exec::Engine::Get().Enqueue(
        s->Node, s->Device, exec::Engine::CopyQueue, std::move(deps),
        [dst, src, bytes]() { std::memmove(dst, src, bytes); });
      s->RealFrontier.assign(1, fence);
    }
    else
    {
      std::memmove(dst, src, bytes);
    }
  }

  ThisClock().Advance(cost.KernelSubmitOverhead);
}

void Platform::Copy(void *dst, const void *src, std::size_t bytes)
{
  if (!bytes)
    return;

  AllocInfo di, si;
  if (!this->Registry_.Query(dst, di))
    di = AllocInfo{};
  if (!this->Registry_.Query(src, si))
    si = AllocInfo{};

  const CopyKind kind = ClassifyCopy(di, si);

  if (kind == CopyKind::HostToHost)
  {
    // plain memcpy on the host, charged to the calling thread
    check::OnHostCopy(dst, src, bytes);
    if (this->Config_.ExecuteKernels)
      std::memmove(dst, src, bytes);
    this->Stats_.CopyCount[static_cast<int>(kind)]++;
    this->Stats_.CopyBytes[static_cast<int>(kind)] += bytes;
    ThisClock().Advance(
      this->Config_.Cost.CopySeconds(bytes, this->Config_.Cost.H2HBandwidth));
    return;
  }

  // device-involved synchronous copies flow through the device default
  // stream of whichever endpoint is a device.
  const DeviceId dev = di.Space == MemSpace::Device ? di.Device : si.Device;
  Stream s = this->DefaultStream(dev);
  this->CopyAsync(s, dst, src, bytes);
  this->StreamSynchronize(s);
}

void Platform::StreamSynchronize(const Stream &stream)
{
  if (!stream)
    return;
  // a replay sink runs its pending recorded prefix here (inline, on this
  // thread) so the eager join below sees a settled stream
  if (CaptureSink *sink = GetCaptureSink())
    sink->BeforeStreamSync(stream);
  StreamState *s = stream.Get();
  // real join first: wait out the stream's deferred bodies (empty in
  // serial mode). Fence::Wait also closes the checker's happens-before
  // edge from the last deferred task into the calling thread.
  std::vector<exec::FencePtr> frontier;
  {
    std::lock_guard<std::mutex> lock(s->Mutex);
    frontier = s->RealFrontier;
  }
  for (const exec::FencePtr &f : frontier)
    if (f)
      f->Wait();
  ThisClock().AdvanceTo(s->Completion());
  check::OnStreamSync(s);
}

void Platform::DeviceSynchronize(DeviceId device)
{
  this->CheckDevice(device);
  if (CaptureSink *sink = GetCaptureSink())
    sink->BeforeDeviceSync(GetThisNode(), device);
  Device &dev = this->GetDevice(GetThisNode(), device);
  if (exec::ThreadsEnabled())
    exec::Engine::Get().WaitDeviceTails(GetThisNode(), device);
  ThisClock().AdvanceTo(dev.Engine.Available());
  ThisClock().AdvanceTo(dev.CopyEngine.Available());
  check::OnDeviceSync(GetThisNode(), device);
}

// ---------------------------------------------------------------------------
struct ScopedThread::Impl
{
  std::thread Thread;
  double ChildFinal = 0.0;
  std::uint64_t EndToken = 0; ///< checker join edge from the child
  std::mutex Mutex;
};

ScopedThread::ScopedThread(std::function<void()> fn)
  : Impl_(std::make_unique<Impl>())
{
  Platform &plat = Platform::Get();
  const double spawnCost = plat.Config().Cost.ThreadSpawnCost;
  ThisClock().Advance(spawnCost);

  const double start = ThisClock().Now();
  const int node = Platform::GetThisNode();
  const std::uint64_t spawnToken = check::OnThreadSpawn();
  Impl *impl = this->Impl_.get();

  impl->Thread = std::thread(
    [fn = std::move(fn), start, node, spawnToken, impl]()
    {
      ThisClock().Set(start);
      Platform::SetThisNode(node);
      check::OnThreadStart(spawnToken);
      fn();
      std::lock_guard<std::mutex> lock(impl->Mutex);
      impl->ChildFinal = ThisClock().Now();
      impl->EndToken = check::OnThreadEnd();
    });
}

ScopedThread::ScopedThread(ScopedThread &&) noexcept = default;
ScopedThread &ScopedThread::operator=(ScopedThread &&) noexcept = default;

ScopedThread::~ScopedThread()
{
  if (this->Impl_ && this->Impl_->Thread.joinable())
    this->Join();
}

void ScopedThread::Join()
{
  if (!this->Impl_ || !this->Impl_->Thread.joinable())
    return;
  this->Impl_->Thread.join();
  std::lock_guard<std::mutex> lock(this->Impl_->Mutex);
  ThisClock().AdvanceTo(this->Impl_->ChildFinal);
  check::OnThreadJoin(this->Impl_->EndToken);
}

bool ScopedThread::Joinable() const noexcept
{
  return this->Impl_ && this->Impl_->Thread.joinable();
}

} // namespace vp
