#ifndef vpMemory_h
#define vpMemory_h

/// @file vpMemory.h
/// Allocation registry for the virtual platform. Device memory is backed by
/// ordinary host heap storage, but every allocation made through a platform
/// front end is tagged with its memory space, owning device, size, and the
/// programming model that created it. Copy operations consult the registry
/// to classify transfers (H2D, D2H, D2D, ...) for the cost model, and the
/// data model consults it to decide whether an access is zero-copy or
/// requires movement. Pointers not found in the registry are treated as
/// plain pageable host memory — exactly what happens when a simulation hands
/// SENSEI a raw pointer it allocated itself.

#include "vpTypes.h"

#include <cstddef>
#include <map>
#include <mutex>

namespace vp
{

/// Metadata describing one tracked allocation.
struct AllocInfo
{
  MemSpace Space = MemSpace::Host;
  DeviceId Device = HostDevice; ///< owning device for MemSpace::Device
  int Node = 0;                 ///< node the owning device belongs to
  std::size_t Bytes = 0;
  PmKind Pm = PmKind::None;
  bool Pooled = false; ///< block is managed by a vp::MemoryPool; frees must
                       ///< return it to the pool, and reuse hits charge
                       ///< AsyncAllocLatency instead of AllocLatency
};

/// Thread-safe map from base pointer to allocation metadata. Interior
/// pointers resolve to the containing allocation.
class MemoryRegistry
{
public:
  /// Record a new allocation. `p` must be a base pointer.
  void Insert(void *p, const AllocInfo &info);

  /// Remove an allocation. Returns false if `p` was not registered.
  bool Erase(void *p);

  /// Look up the allocation containing `p` (base or interior pointer).
  /// Returns true and fills `info` when found.
  bool Query(const void *p, AllocInfo &info) const;

  /// Mark/unmark the allocation based at `p` as pool managed. Returns
  /// false when `p` is not a registered base pointer.
  bool SetPooled(const void *p, bool pooled);

  /// Number of live tracked allocations.
  std::size_t Size() const;

  /// Total tracked bytes in a given space on a given device (pass
  /// HostDevice for host spaces).
  std::size_t BytesIn(MemSpace space, DeviceId device) const;

  /// Drop all entries (test support; leaks are the caller's problem).
  void Clear();

private:
  mutable std::mutex Mutex_;
  std::map<const void *, AllocInfo> Map_;
};

/// Classify a transfer between the memory spaces of src and dst.
CopyKind ClassifyCopy(const AllocInfo &dst, const AllocInfo &src);

} // namespace vp

#endif
