#include "vpMemory.h"

namespace vp
{

void MemoryRegistry::Insert(void *p, const AllocInfo &info)
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  this->Map_[p] = info;
}

bool MemoryRegistry::Erase(void *p)
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  return this->Map_.erase(p) > 0;
}

bool MemoryRegistry::Query(const void *p, AllocInfo &info) const
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  if (this->Map_.empty())
    return false;

  // find the first allocation whose base is > p, step back one, and check
  // that p lies inside it.
  auto it = this->Map_.upper_bound(p);
  if (it == this->Map_.begin())
    return false;
  --it;

  const char *base = static_cast<const char *>(it->first);
  const char *q = static_cast<const char *>(p);
  if (q >= base + it->second.Bytes)
    return false;

  info = it->second;
  return true;
}

bool MemoryRegistry::SetPooled(const void *p, bool pooled)
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  auto it = this->Map_.find(p);
  if (it == this->Map_.end())
    return false;
  it->second.Pooled = pooled;
  return true;
}

std::size_t MemoryRegistry::Size() const
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  return this->Map_.size();
}

std::size_t MemoryRegistry::BytesIn(MemSpace space, DeviceId device) const
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  std::size_t total = 0;
  for (const auto &kv : this->Map_)
    if (kv.second.Space == space &&
        (space != MemSpace::Device || kv.second.Device == device))
      total += kv.second.Bytes;
  return total;
}

void MemoryRegistry::Clear()
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  this->Map_.clear();
}

CopyKind ClassifyCopy(const AllocInfo &dst, const AllocInfo &src)
{
  const bool srcDev = src.Space == MemSpace::Device;
  const bool dstDev = dst.Space == MemSpace::Device;

  if (srcDev && dstDev)
    return src.Device == dst.Device && src.Node == dst.Node
             ? CopyKind::OnDevice
             : CopyKind::DeviceToDevice;
  if (srcDev)
    return CopyKind::DeviceToHost;
  if (dstDev)
    return CopyKind::HostToDevice;
  return CopyKind::HostToHost;
}

} // namespace vp
