#include "vizStreamer.h"

#include <algorithm>
#include <chrono>

namespace viz
{

namespace
{
double RealNow()
{
  return std::chrono::duration<double>(
           std::chrono::steady_clock::now().time_since_epoch())
    .count();
}
} // namespace

Streamer::Streamer(svc::ServiceConfig cfg)
{
  // viewers are pure consumers: a data frame from one is ignored, not
  // an error (the session layer already rejects what it must)
  this->Server_ = std::make_unique<svc::Server>(
    [](int, const svc::FrameHeader &, std::vector<std::uint8_t> &&) {},
    std::move(cfg));

  this->Server_->SetSessionCallbacks(
    [this](std::uint32_t session, const svc::HelloInfo &hello)
    { this->OnOpen(session, hello); },
    [this](std::uint32_t session, svc::SessionEnd why)
    { this->OnClose(session, why); });

  this->Server_->SetSteerHandler(
    [this](std::uint32_t session, const svc::FrameHeader &header,
           std::vector<std::uint8_t> &&payload)
    { this->OnSteer(session, header, std::move(payload)); });
}

Streamer::~Streamer()
{
  this->Stop();
}

void Streamer::Start()
{
  this->Server_->Start();
}

void Streamer::Stop()
{
  this->Server_->Stop();
}

std::shared_ptr<svc::Port> Streamer::Connect()
{
  return this->Server_->Connect();
}

int Streamer::ActiveViewers() const
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  return static_cast<int>(this->Viewers_.size());
}

void Streamer::OnOpen(std::uint32_t session, const svc::HelloInfo &hello)
{
  (void)hello;
  const VizConfig cfg = GetConfig();

  Viewer v;
  v.Id = session;
  v.Codec = cfg.Codec;

  std::lock_guard<std::mutex> lock(this->Mutex_);
  const std::uint64_t ix = this->Admitted_++;
  if (ix < cfg.Viewers.size())
  {
    const ViewerOverride &ov = cfg.Viewers[ix];
    v.Width = ov.Width;
    v.Height = ov.Height;
    if (ov.HaveCodec)
      v.Codec = ov.Codec;
  }
  // RGBA bytes: negotiate the image codec against u8 up front so every
  // publish uses what this viewer can actually decode
  v.Codec = cmp::Negotiate(v.Codec, cmp::DType::U8);
  this->Viewers_.push_back(v);
}

void Streamer::OnClose(std::uint32_t session, svc::SessionEnd why)
{
  (void)why;
  std::lock_guard<std::mutex> lock(this->Mutex_);
  this->Viewers_.erase(
    std::remove_if(this->Viewers_.begin(), this->Viewers_.end(),
                   [session](const Viewer &v) { return v.Id == session; }),
    this->Viewers_.end());
}

void Streamer::OnSteer(std::uint32_t session, const svc::FrameHeader &header,
                       std::vector<std::uint8_t> &&payload)
{
  (void)session;
  (void)header;
  SteerCommand cmd;
  try
  {
    cmd = DecodeSteer(payload.data(), payload.size());
  }
  catch (const std::exception &)
  {
    UpdateStats([](VizStats &s) { ++s.SteersStale; });
    return;
  }

  std::lock_guard<std::mutex> lock(this->Mutex_);
  const std::uint64_t floor =
    this->HavePending_ ? std::max(this->Applied_, this->Pending_.Version)
                       : this->Applied_;
  if (cmd.Version <= floor)
  {
    // stale: an already-applied or already-superseded version can never
    // roll parameters backward
    UpdateStats([](VizStats &s) { ++s.SteersStale; });
    return;
  }
  this->Pending_ = std::move(cmd);
  this->HavePending_ = true;
}

bool Streamer::TakeSteer(SteerCommand &out)
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  if (!this->HavePending_)
    return false;
  out = std::move(this->Pending_);
  this->HavePending_ = false;
  this->Applied_ = std::max(this->Applied_, out.Version);
  return true;
}

std::uint64_t Streamer::AppliedVersion() const
{
  std::lock_guard<std::mutex> lock(this->Mutex_);
  return this->Applied_;
}

int Streamer::Publish(const FrameInfo &info, const std::uint8_t *rgba)
{
  std::vector<Viewer> viewers;
  {
    std::lock_guard<std::mutex> lock(this->Mutex_);
    viewers = this->Viewers_;
  }
  if (viewers.empty())
    return 0;

  int queued = 0;
  std::vector<std::uint8_t> scratch; // downsampled pixels, when needed
  for (const Viewer &v : viewers)
  {
    // per-viewer fidelity: a smaller override resolution ships fewer
    // pixels (nearest-neighbor shrink); enlargement is never done
    FrameInfo fi = info;
    const std::uint8_t *px = rgba;
    if (v.Width && v.Height && v.Width < info.Width && v.Height < info.Height)
    {
      fi.Width = v.Width;
      fi.Height = v.Height;
      scratch.resize(static_cast<std::size_t>(4) * v.Width * v.Height);
      Downsample(rgba, info.Width, info.Height, scratch.data(), v.Width,
                 v.Height);
      px = scratch.data();
    }

    const std::size_t pixelBytes =
      static_cast<std::size_t>(4) * fi.Width * fi.Height;
    const std::size_t rawBytes = pixelBytes + 64 + fi.Variable.size();

    std::vector<std::uint8_t> payload;
    bool compressed = false;
    if (v.Codec.Codec != cmp::CodecId::None && pixelBytes)
    {
      // the pixel range becomes one self-describing codec chunk; the
      // FrameInfo prefix stays raw so a viewer can triage without
      // decoding
      payload = EncodeFramePayload(fi, nullptr, 0);
      cmp::EncodeChunk(px, cmp::DType::U8, pixelBytes, v.Codec, payload);
      compressed = true;
    }
    else
    {
      payload = EncodeFramePayload(fi, px, pixelBytes);
    }

    if (this->Server_->Publish(v.Id, fi.Step, payload.data(), payload.size(),
                               rawBytes, compressed))
    {
      ++queued;
      RecordFrameAge(RealNow() - fi.RenderTime);
    }
  }
  if (queued)
    UpdateStats([queued](VizStats &s)
                { s.FramesPublished += static_cast<std::uint64_t>(queued); });
  return queued;
}

} // namespace viz
