#include "vizTransfer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace viz
{

namespace
{

/// A piecewise-linear colormap: `n` control points, equally spaced over
/// [0, 1], each an (r, g, b) triple in [0, 255].
struct Lut
{
  const std::uint8_t (*Pts)[3];
  int N;
};

constexpr std::uint8_t kGray[][3] = {{0, 0, 0}, {255, 255, 255}};

// viridis control points (matplotlib's endpoints + interior samples)
constexpr std::uint8_t kViridis[][3] = {
  {68, 1, 84},   {71, 44, 122},  {59, 81, 139},  {44, 113, 142},
  {33, 144, 141}, {39, 173, 129}, {92, 200, 99},  {170, 220, 50},
  {253, 231, 37}};

constexpr std::uint8_t kHeat[][3] = {
  {0, 0, 0}, {128, 0, 0}, {255, 0, 0}, {255, 128, 0}, {255, 255, 0},
  {255, 255, 255}};

Lut GetLut(Colormap m)
{
  switch (m)
  {
    case Colormap::Gray: return {kGray, 2};
    case Colormap::Viridis: return {kViridis, 9};
    case Colormap::Heat: return {kHeat, 6};
  }
  return {kGray, 2};
}

} // namespace

Colormap ColormapFromName(const std::string &name)
{
  if (name == "gray" || name == "grey")
    return Colormap::Gray;
  if (name == "viridis" || name.empty())
    return Colormap::Viridis;
  if (name == "heat")
    return Colormap::Heat;
  throw std::invalid_argument("viz: unknown colormap '" + name + "'");
}

const char *ColormapName(Colormap m)
{
  switch (m)
  {
    case Colormap::Gray: return "gray";
    case Colormap::Viridis: return "viridis";
    case Colormap::Heat: return "heat";
  }
  return "unknown";
}

double Normalize(double v, const TransferFunction &tf)
{
  if (std::isnan(v))
    return -1.0;
  double lo = tf.Lo, hi = tf.Hi, x = v;
  if (tf.Log)
  {
    // log scaling: the range ends are assumed positive by construction
    // (a non-positive end falls back to a tiny epsilon); values <= 0
    // clamp to the bottom of the range
    const double eps = 1e-300;
    lo = std::log10(std::max(lo, eps));
    hi = std::log10(std::max(hi, eps));
    x = v > 0.0 ? std::log10(v) : lo;
  }
  if (!(hi > lo))
    return 0.0;
  const double t = (x - lo) / (hi - lo);
  return std::min(1.0, std::max(0.0, t));
}

void Shade(double v, const TransferFunction &tf, std::uint8_t *px)
{
  const double t = Normalize(v, tf);
  if (t < 0.0)
  {
    px[0] = px[1] = px[2] = px[3] = 0; // NaN / empty bin: transparent
    return;
  }
  const Lut lut = GetLut(tf.Map);
  const double pos = t * static_cast<double>(lut.N - 1);
  const int i0 = std::min(lut.N - 2, static_cast<int>(pos));
  const double f = pos - static_cast<double>(i0);
  for (int c = 0; c < 3; ++c)
  {
    const double a = static_cast<double>(lut.Pts[i0][c]);
    const double b = static_cast<double>(lut.Pts[i0 + 1][c]);
    px[static_cast<std::size_t>(c)] =
      static_cast<std::uint8_t>(a + (b - a) * f + 0.5);
  }
  px[3] = 255;
}

bool GridRange(const double *grid, std::size_t n, double &lo, double &hi)
{
  lo = 0.0;
  hi = 1.0;
  bool any = false;
  double mn = 0.0, mx = 0.0;
  for (std::size_t i = 0; i < n; ++i)
  {
    const double v = grid[i];
    if (std::isnan(v))
      continue;
    if (!any)
    {
      mn = mx = v;
      any = true;
    }
    else
    {
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
  }
  if (!any)
    return false;
  if (!(mx > mn))
    mx = mn + 1.0; // flat grid: widen so Normalize stays defined
  lo = mn;
  hi = mx;
  return true;
}

void FillPixels(std::uint8_t *rgba, std::size_t pb, std::size_t pe,
                std::uint32_t width, std::uint32_t height, const double *grid,
                std::uint32_t gw, std::uint32_t gh, const TransferFunction &tf)
{
  if (!width || !height || !gw || !gh)
    return;
  for (std::size_t p = pb; p < pe; ++p)
  {
    const std::uint32_t x = static_cast<std::uint32_t>(p % width);
    const std::uint32_t y = static_cast<std::uint32_t>(p / width);
    if (y >= height)
      break;
    // nearest-neighbor: pixel centers sample the grid uniformly
    const std::uint32_t gx =
      std::min(gw - 1, static_cast<std::uint32_t>(
                         (static_cast<std::uint64_t>(x) * gw) / width));
    const std::uint32_t gy =
      std::min(gh - 1, static_cast<std::uint32_t>(
                         (static_cast<std::uint64_t>(y) * gh) / height));
    const double v = grid[static_cast<std::size_t>(gy) * gw + gx];
    Shade(v, tf, rgba + 4 * p);
  }
}

void Downsample(const std::uint8_t *src, std::uint32_t sw, std::uint32_t sh,
                std::uint8_t *dst, std::uint32_t dw, std::uint32_t dh)
{
  if (!sw || !sh || !dw || !dh)
    return;
  for (std::uint32_t y = 0; y < dh; ++y)
  {
    const std::uint32_t sy = static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(y) * sh) / dh);
    for (std::uint32_t x = 0; x < dw; ++x)
    {
      const std::uint32_t sx = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(x) * sw) / dw);
      const std::uint8_t *s =
        src + 4 * (static_cast<std::size_t>(sy) * sw + sx);
      std::uint8_t *d = dst + 4 * (static_cast<std::size_t>(y) * dw + x);
      d[0] = s[0];
      d[1] = s[1];
      d[2] = s[2];
      d[3] = s[3];
    }
  }
}

} // namespace viz
