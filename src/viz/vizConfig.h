#ifndef vizConfig_h
#define vizConfig_h

/// @file vizConfig.h
/// Process-wide configuration of the visualization endpoint (the `<viz>`
/// XML element with VP_VIZ_* environment overrides) and the viz::*
/// counters exported through the profiler, including the frame-age p99
/// computed from a bounded sample reservoir.

#include "cmpCodec.h"
#include "vizTransfer.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace viz
{

/// Per-viewer fidelity override, matched to viewer sessions by
/// admission order (`<viewer>` children of `<viz>`). A zero size keeps
/// the full framebuffer; a smaller one downsamples before shipping —
/// trading image fidelity against frame age for that viewer.
struct ViewerOverride
{
  std::uint32_t Width = 0, Height = 0;
  bool HaveCodec = false;
  cmp::Params Codec; ///< image-frame codec for this viewer
};

/// Process-wide render/stream plan.
struct VizConfig
{
  std::uint32_t Width = 256, Height = 256; ///< framebuffer resolution
  Colormap Map = Colormap::Viridis;
  bool Log = false;
  bool AutoRange = true;
  double Lo = 0.0, Hi = 1.0;
  /// Default image-frame codec; raw pixels unless a codec is asked for
  /// (cmp::Params defaults to ShuffleRLE, which is wrong for frames).
  cmp::Params Codec{cmp::CodecId::None, 1, 0.0};
  std::vector<ViewerOverride> Viewers;
};

/// Replace the process-wide configuration (validated; throws
/// std::invalid_argument on nonsense).
void Configure(const VizConfig &cfg);

/// The active configuration.
VizConfig GetConfig();

/// Counters of everything the viz endpoint did (exported as profiler
/// events under viz::*).
struct VizStats
{
  std::uint64_t FramesRendered = 0;  ///< render kernel completions
  std::uint64_t FramesPublished = 0; ///< per-viewer frames handed to svc
  std::uint64_t SteersApplied = 0;   ///< commands applied at a step boundary
  std::uint64_t SteersStale = 0;     ///< commands discarded (stale version)
  std::uint64_t Recaptures = 0;      ///< render graph invalidations forced
  std::uint64_t FrameAgeCount = 0;   ///< frame-age samples recorded
  std::uint64_t FrameAgeP99Us = 0;   ///< p99 of the sample reservoir, µs
  std::uint64_t FrameAgeMaxUs = 0;   ///< max observed frame age, µs
};

/// Counters since the last ResetStats(); FrameAgeP99Us is computed from
/// the reservoir at call time.
VizStats Stats();

/// Zero the counters and the age reservoir (configuration untouched).
void ResetStats();

/// Mutate the counter block under its lock.
void UpdateStats(const std::function<void(VizStats &)> &fn);

/// Record one frame age (seconds from render begin to delivery hand-off)
/// into the bounded reservoir the p99 is computed from.
void RecordFrameAge(double seconds);

} // namespace viz

#endif
