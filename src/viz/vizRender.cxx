#include "vizRender.h"

#include "graphCapture.h"
#include "senseiProfiler.h"
#include "svtkAOSDataArray.h"
#include "vcuda.h"
#include "vizConfig.h"
#include "vizStreamer.h"
#include "vpClock.h"
#include "vpLoadTracker.h"
#include "vpPlatform.h"

#include <chrono>
#include <iostream>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace viz
{

namespace
{

double RealNow()
{
  return std::chrono::duration<double>(
           std::chrono::steady_clock::now().time_since_epoch())
    .count();
}

/// Per-pixel cost of the fill: normalize (a few flops, or a log) plus
/// the LUT lerp. No atomics — pixels are disjoint.
constexpr double kRenderOpsPerPixel = 12.0;

std::vector<std::string> SplitAxes(const std::string &csv)
{
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string tok;
  while (std::getline(ss, tok, ','))
    if (!tok.empty())
      out.push_back(tok);
  return out;
}

} // namespace

RenderAnalysis::RenderAnalysis()
{
  this->Binning_ = sensei::DataBinning::New();
}

RenderAnalysis::~RenderAnalysis()
{
  this->Binning_->UnRegister();
}

void RenderAnalysis::SetMeshName(const std::string &name)
{
  this->Binning_->SetMeshName(name);
}

void RenderAnalysis::SetAxes(const std::vector<std::string> &axes)
{
  this->Binning_->SetAxes(axes);
  // SetAxes resets the binning's resolution; keep the configured ladder
  if (this->BinRes_ > 0)
    this->Binning_->SetResolution({this->BinRes_});
}

void RenderAnalysis::SetBinResolution(long res)
{
  this->Binning_->SetResolution({res});
  this->BinRes_ = res;
}

void RenderAnalysis::SetBinRange(int axis, double lo, double hi)
{
  this->Binning_->SetRange(axis, lo, hi);
}

void RenderAnalysis::SetVariable(const std::string &column,
                                 const std::string &op)
{
  this->Variable_ = column;
  this->Op_ = column.empty() ? sensei::BinningOp::Count
                             : sensei::BinningOpFromName(op);
  this->Binning_->ClearOperations();
  if (!column.empty())
    this->Binning_->AddOperation(column, this->Op_);
}

void RenderAnalysis::SetImageSize(std::uint32_t width, std::uint32_t height)
{
  if (!width || !height)
    throw std::invalid_argument("viz: framebuffer size must be positive");
  this->Width_ = width;
  this->Height_ = height;
}

void RenderAnalysis::ApplySteer(const SteerCommand &cmd)
{
  bool reshape = false;
  try
  {
    if (cmd.Have & kSteerImageSize)
    {
      this->SetImageSize(cmd.Width, cmd.Height);
      reshape = true;
    }
    if (cmd.Have & kSteerAxes)
    {
      this->SetAxes(SplitAxes(cmd.Axes));
      reshape = true;
    }
    if (cmd.Have & kSteerBinRes)
    {
      this->SetBinResolution(static_cast<long>(cmd.BinResolution));
      reshape = true;
    }
    if (cmd.Have & kSteerVariable)
      this->SetVariable(cmd.Variable, cmd.Op.empty() ? "sum" : cmd.Op);
    if (cmd.Have & kSteerColormap)
      this->Tf_.Map = cmd.Map;
    if (cmd.Have & kSteerLog)
      this->Tf_.Log = cmd.Log;
    if (cmd.Have & kSteerRange)
    {
      this->Tf_.Lo = cmd.Lo;
      this->Tf_.Hi = cmd.Hi;
      this->Tf_.AutoRange = false;
    }
    if (cmd.Have & kSteerAutoRange)
      this->Tf_.AutoRange = true;
    if (cmd.Have & kSteerDevice)
    {
      this->SetDeviceId(cmd.Device);
      this->Binning_->SetDeviceId(cmd.Device);
      reshape = true; // placement moves: the pinned graph is stale
    }
  }
  catch (const std::exception &e)
  {
    // a bad command must never kill the session or the simulation:
    // whatever applied before the throw stands, the rest is skipped
    std::cerr << "viz: steer v" << cmd.Version << " partially applied: "
              << e.what() << std::endl;
  }

  this->ParamVersion_ = cmd.Version;
  UpdateStats([](VizStats &s) { ++s.SteersApplied; });

  if (reshape && this->GraphSession_ && this->GraphSession_->Armed())
  {
    // the armed render graph recorded the old shape; drop it so the
    // next step recaptures instead of dying on a replay mismatch
    this->GraphSession_->Drop();
    this->GraphDevice_ = DEVICE_AUTO;
    UpdateStats([](VizStats &s) { ++s.Recaptures; });
  }
}

int RenderAnalysis::PlaceRender(sensei::DataAdaptor *data,
                                std::size_t gridBytes)
{
  sched::WorkHint hint;
  hint.Elements = static_cast<std::size_t>(this->Width_) * this->Height_;
  hint.OpsPerElement = kRenderOpsPerPixel;
  hint.AtomicFraction = 0.0;
  hint.MoveBytes = gridBytes + 4 * hint.Elements;
  hint.Latency = sched::LatencyClass::Interactive;

  // an armed graph pins the capture-time device: moving the render
  // would invalidate it anyway
  const bool armed = this->GraphSession_ && this->GraphSession_->Armed();
  if (armed && this->GraphDevice_ >= 0 &&
      this->GetDeviceId() == DEVICE_AUTO)
  {
    vp::DeviceLoadTracker::Get().RecordPlacement(vp::Platform::GetThisNode(),
                                                 this->GraphDevice_);
    return this->GraphDevice_;
  }
  return this->GraphDevice_ = this->GetPlacementDevice(data, hint);
}

void RenderAnalysis::Render(const double *grid, std::uint32_t gw,
                            std::uint32_t gh, int device)
{
  const std::size_t n =
    static_cast<std::size_t>(this->Width_) * this->Height_;
  this->Fb_.resize(4 * n);

  // resolve auto-range outside the kernel so every shard shades against
  // the same bounds (and the same ones a serial run would use)
  TransferFunction tf = this->Tf_;
  if (tf.AutoRange)
  {
    double lo = 0.0, hi = 1.0;
    GridRange(grid, static_cast<std::size_t>(gw) * gh, lo, hi);
    tf.Lo = lo;
    tf.Hi = hi;
  }

  const std::uint32_t w = this->Width_, h = this->Height_;

  if (device < 0)
  {
    std::uint8_t *fb = this->Fb_.data();
    vp::Platform::Get().HostParallelFor(
      vp::KernelDesc{n, kRenderOpsPerPixel, 0.0, "viz::render", true},
      [fb, w, h, grid, gw, gh, tf](std::size_t b, std::size_t e)
      { FillPixels(fb, b, e, w, h, grid, gw, gh, tf); });
    return;
  }

  vcuda::SetDevice(device);
  vcuda::stream_t strm = vcuda::StreamCreate();

  // captured step-graph session: upload, fill, readback is the whole
  // recurring step shape; capture once, replay on later steps
  std::optional<vp::graph::StepScope> graphScope;
  if (vp::graph::Enabled())
  {
    if (!this->GraphSession_)
      this->GraphSession_ = std::make_unique<vp::graph::Session>();
    graphScope.emplace(*this->GraphSession_);
  }

  const std::size_t gridBytes =
    static_cast<std::size_t>(gw) * gh * sizeof(double);
  auto *dGrid = static_cast<double *>(vcuda::MallocAsync(gridBytes, strm));
  auto *dFb = static_cast<std::uint8_t *>(vcuda::MallocAsync(4 * n, strm));

  vcuda::MemcpyAsync(dGrid, grid, gridBytes, strm);
  vcuda::LaunchN(strm, n,
                 [dFb, w, h, dGrid, gw, gh, tf](std::size_t b, std::size_t e)
                 { FillPixels(dFb, b, e, w, h, dGrid, gw, gh, tf); },
                 {kRenderOpsPerPixel, 0.0, "viz::render", true});
  vcuda::MemcpyAsync(this->Fb_.data(), dFb, 4 * n, strm);
  // settle the step before releasing the device buffers: FreeAsync frees
  // immediately, which would yank them out from under deferred shards or
  // a capturing graph
  vcuda::StreamSynchronize(strm);
  vcuda::Free(dGrid);
  vcuda::Free(dFb);
}

bool RenderAnalysis::Execute(sensei::DataAdaptor *data)
{
  sensei::ScopedEvent ev("viz::execute");

  // steering applies atomically at the step boundary, never mid-render
  if (this->Streamer_)
  {
    SteerCommand cmd;
    while (this->Streamer_->TakeSteer(cmd))
      this->ApplySteer(cmd);
  }

  const double renderBegin = RealNow();

  if (!this->Binning_->Execute(data))
    return false;

  svtkImageData *img = this->Binning_->GetLastResult();
  if (!img)
    return true; // asynchronous binning: nothing completed yet

  int dims[3] = {1, 1, 1};
  img->GetDimensions(dims);
  const std::uint32_t gw = static_cast<std::uint32_t>(std::max(1, dims[0]));
  const std::uint32_t gh = static_cast<std::uint32_t>(std::max(1, dims[1]));

  // the rendered array: the configured reduction, or the histogram;
  // fall back to the histogram when a steered variable does not exist
  std::string name = "count";
  if (!this->Variable_.empty())
    name = this->Variable_ + "_" + sensei::BinningOpName(this->Op_);
  const svtkDataArray *arr = img->GetPointData()->GetArray(name);
  if (!arr && name != "count")
  {
    arr = img->GetPointData()->GetArray("count");
    name = "count";
  }
  if (!arr)
  {
    img->UnRegister();
    return false;
  }

  // a 3-axis grid renders its z = 0 slice (the first gw x gh values)
  std::vector<double> grid(static_cast<std::size_t>(gw) * gh, 0.0);
  const std::size_t have =
    std::min(grid.size(), static_cast<std::size_t>(arr->GetNumberOfTuples()));
  if (const auto *aos = dynamic_cast<const svtkAOSDoubleArray *>(arr))
  {
    const double *p = aos->GetData();
    std::copy(p, p + have, grid.begin());
  }
  else
  {
    for (std::size_t i = 0; i < have; ++i)
      grid[i] = arr->GetVariantValue(i, 0);
  }
  img->UnRegister();

  const int device = this->PlaceRender(data, grid.size() * sizeof(double));
  this->Render(grid.data(), gw, gh, device);
  ++this->Renders_;
  UpdateStats([](VizStats &s) { ++s.FramesRendered; });

  if (this->Streamer_)
  {
    FrameInfo info;
    info.Width = this->Width_;
    info.Height = this->Height_;
    info.Step = static_cast<std::uint64_t>(data->GetDataTimeStep());
    info.Version = this->ParamVersion_;
    info.Map = this->Tf_.Map;
    info.Variable = name;
    info.RenderTime = renderBegin;
    this->Streamer_->Publish(info, this->Fb_.data());
  }
  return true;
}

int RenderAnalysis::Finalize()
{
  return this->Binning_->Finalize();
}

} // namespace viz
