#ifndef vizStreamer_h
#define vizStreamer_h

/// @file vizStreamer.h
/// The fan-out side of the visualization endpoint. A Streamer wraps a
/// svc::Server whose tenants are viewers, not simulations: viewers
/// connect with a "viz:"-prefixed mesh name (which buys them dispatch
/// priority and Interactive placement inside the service), never send
/// data frames, and receive rendered framebuffers as Push frames
/// through the server's bounded per-session outbox — drop-oldest, so a
/// slow viewer loses stale frames instead of stalling the publisher
/// (and therefore the simulation).
///
/// Per-viewer fidelity comes from VizConfig::Viewers, matched by
/// admission order: a smaller override resolution downsamples the
/// framebuffer before shipping, and a codec override re-negotiates the
/// image codec for that viewer alone. Image compression is negotiated
/// viz-side against DType::U8 (RGBA bytes), independent of the svc
/// data-plane grant.
///
/// The Streamer is also the steering sink: Steer frames arriving from
/// any viewer land in a single pending slot where the highest version
/// wins; the render analysis drains the slot at each step boundary via
/// TakeSteer, and anything at or below the last applied (or currently
/// pending) version is discarded as stale.

#include "cmpCodec.h"
#include "svcServer.h"
#include "vizConfig.h"
#include "vizWire.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace viz
{

class Streamer
{
public:
  /// The underlying service runs with `cfg`; PushDepth bounds each
  /// viewer's frame outbox.
  explicit Streamer(svc::ServiceConfig cfg = svc::GetConfig());
  ~Streamer();

  Streamer(const Streamer &) = delete;
  Streamer &operator=(const Streamer &) = delete;

  void Start();
  void Stop();

  /// A new viewer connection's client-side port (hand to svc::Client
  /// with a "viz:"-prefixed mesh name).
  std::shared_ptr<svc::Port> Connect();

  /// Viewers currently admitted.
  int ActiveViewers() const;

  /// Publish one rendered frame to every admitted viewer, applying each
  /// viewer's resolution/codec override. `rgba` holds
  /// info.Width * info.Height RGBA pixels. Thread-safe, never blocks on
  /// a slow viewer. Returns the number of viewers the frame was queued
  /// for.
  int Publish(const FrameInfo &info, const std::uint8_t *rgba);

  /// Drain the pending steering command, if any (highest version seen
  /// since the last take). Marks its version applied so older commands
  /// arriving later are discarded.
  bool TakeSteer(SteerCommand &out);

  /// The version TakeSteer most recently returned (0 = none yet).
  std::uint64_t AppliedVersion() const;

  /// The wrapped service (stats, RTTs, session counts).
  svc::Server &Service() { return *this->Server_; }

private:
  struct Viewer
  {
    std::uint32_t Id = 0;
    std::uint32_t Width = 0, Height = 0; ///< 0 = full resolution
    cmp::Params Codec; ///< negotiated image codec (None = raw)
  };

  void OnOpen(std::uint32_t session, const svc::HelloInfo &hello);
  void OnClose(std::uint32_t session, svc::SessionEnd why);
  void OnSteer(std::uint32_t session, const svc::FrameHeader &header,
               std::vector<std::uint8_t> &&payload);

  std::unique_ptr<svc::Server> Server_;

  mutable std::mutex Mutex_;
  std::vector<Viewer> Viewers_;
  std::uint64_t Admitted_ = 0; ///< admission order, indexes the overrides

  bool HavePending_ = false;
  SteerCommand Pending_;
  std::uint64_t Applied_ = 0;
};

} // namespace viz

#endif
