#include "vizConfig.h"

#include <algorithm>
#include <mutex>
#include <stdexcept>

namespace viz
{

namespace
{

/// Bound on the frame-age reservoir: enough samples for a stable p99,
/// small enough to never matter for memory. Once full, new samples
/// overwrite round-robin so the estimate tracks the recent window.
constexpr std::size_t kAgeReservoir = 4096;

struct Global
{
  std::mutex Mutex;
  VizConfig Config;
  VizStats Counts;
  std::vector<double> Ages;
  std::size_t AgeNext = 0;
};

Global &Self()
{
  static Global g;
  return g;
}

} // namespace

void Configure(const VizConfig &cfg)
{
  if (!cfg.Width || !cfg.Height)
    throw std::invalid_argument("viz: framebuffer size must be positive");
  if (!cfg.AutoRange && !(cfg.Lo < cfg.Hi))
    throw std::invalid_argument("viz: fixed range needs lo < hi");
  if (cfg.Codec.Codec == cmp::CodecId::Quantize)
    throw std::invalid_argument(
      "viz: quantize is lossy on floats, not defined for RGBA bytes");
  Global &g = Self();
  std::lock_guard<std::mutex> lock(g.Mutex);
  g.Config = cfg;
}

VizConfig GetConfig()
{
  Global &g = Self();
  std::lock_guard<std::mutex> lock(g.Mutex);
  return g.Config;
}

VizStats Stats()
{
  Global &g = Self();
  std::lock_guard<std::mutex> lock(g.Mutex);
  VizStats out = g.Counts;
  if (!g.Ages.empty())
  {
    std::vector<double> sorted = g.Ages;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t ix = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(0.99 * static_cast<double>(sorted.size())));
    out.FrameAgeP99Us = static_cast<std::uint64_t>(sorted[ix] * 1e6);
  }
  return out;
}

void ResetStats()
{
  Global &g = Self();
  std::lock_guard<std::mutex> lock(g.Mutex);
  g.Counts = VizStats{};
  g.Ages.clear();
  g.AgeNext = 0;
}

void UpdateStats(const std::function<void(VizStats &)> &fn)
{
  Global &g = Self();
  std::lock_guard<std::mutex> lock(g.Mutex);
  fn(g.Counts);
}

void RecordFrameAge(double seconds)
{
  const double s = std::max(0.0, seconds);
  Global &g = Self();
  std::lock_guard<std::mutex> lock(g.Mutex);
  ++g.Counts.FrameAgeCount;
  g.Counts.FrameAgeMaxUs = std::max(
    g.Counts.FrameAgeMaxUs, static_cast<std::uint64_t>(s * 1e6));
  if (g.Ages.size() < kAgeReservoir)
  {
    g.Ages.push_back(s);
  }
  else
  {
    g.Ages[g.AgeNext] = s;
    g.AgeNext = (g.AgeNext + 1) % kAgeReservoir;
  }
}

} // namespace viz
