#include "vizWire.h"

#include "cmpCodec.h"

#include <cstring>
#include <stdexcept>

namespace viz
{

namespace
{

void PutU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t GetU32(const std::uint8_t *&p, const std::uint8_t *end)
{
  if (end - p < 4)
    throw std::runtime_error("viz: truncated payload");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  p += 4;
  return v;
}

void PutU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
  cmp::PutLE64(out, v);
}

std::uint64_t GetU64(const std::uint8_t *&p, const std::uint8_t *end)
{
  if (end - p < 8)
    throw std::runtime_error("viz: truncated payload");
  const std::uint64_t v = cmp::LoadLE64(p);
  p += 8;
  return v;
}

void PutF64(std::vector<std::uint8_t> &out, double v)
{
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  cmp::PutLE64(out, bits);
}

double GetF64(const std::uint8_t *&p, const std::uint8_t *end)
{
  const std::uint64_t bits = GetU64(p, end);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void PutString(std::vector<std::uint8_t> &out, const std::string &s)
{
  PutU32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

std::string GetString(const std::uint8_t *&p, const std::uint8_t *end)
{
  const std::uint32_t n = GetU32(p, end);
  if (static_cast<std::size_t>(end - p) < n)
    throw std::runtime_error("viz: truncated payload");
  std::string s(reinterpret_cast<const char *>(p), n);
  p += n;
  return s;
}

} // namespace

std::vector<std::uint8_t> EncodeSteer(const SteerCommand &c)
{
  std::vector<std::uint8_t> out;
  PutU64(out, c.Version);
  PutU32(out, c.Have);
  PutU32(out, c.Width);
  PutU32(out, c.Height);
  PutU64(out, static_cast<std::uint64_t>(c.BinResolution));
  PutU32(out, static_cast<std::uint32_t>(c.Map));
  out.push_back(c.Log ? 1 : 0);
  out.push_back(0);
  out.push_back(0);
  out.push_back(0);
  PutF64(out, c.Lo);
  PutF64(out, c.Hi);
  PutU32(out, static_cast<std::uint32_t>(c.Device));
  PutString(out, c.Variable);
  PutString(out, c.Op);
  PutString(out, c.Axes);
  return out;
}

SteerCommand DecodeSteer(const std::uint8_t *bytes, std::size_t size)
{
  const std::uint8_t *p = bytes;
  const std::uint8_t *end = bytes + size;
  SteerCommand c;
  c.Version = GetU64(p, end);
  c.Have = GetU32(p, end);
  c.Width = GetU32(p, end);
  c.Height = GetU32(p, end);
  c.BinResolution = static_cast<std::int64_t>(GetU64(p, end));
  c.Map = static_cast<Colormap>(GetU32(p, end));
  if (end - p < 4)
    throw std::runtime_error("viz: truncated steer command");
  c.Log = p[0] != 0;
  p += 4;
  c.Lo = GetF64(p, end);
  c.Hi = GetF64(p, end);
  c.Device = static_cast<std::int32_t>(GetU32(p, end));
  c.Variable = GetString(p, end);
  c.Op = GetString(p, end);
  c.Axes = GetString(p, end);
  return c;
}

std::vector<std::uint8_t> EncodeFramePayload(const FrameInfo &info,
                                             const std::uint8_t *pixels,
                                             std::size_t pixelBytes)
{
  std::vector<std::uint8_t> out;
  out.reserve(48 + info.Variable.size() + pixelBytes);
  PutU32(out, info.Width);
  PutU32(out, info.Height);
  PutU64(out, info.Step);
  PutU64(out, info.Version);
  PutU32(out, static_cast<std::uint32_t>(info.Map));
  PutF64(out, info.RenderTime);
  PutString(out, info.Variable);
  if (pixelBytes)
    out.insert(out.end(), pixels, pixels + pixelBytes);
  return out;
}

FrameInfo DecodeFrameInfo(const std::uint8_t *bytes, std::size_t size,
                          std::size_t &pixelOffset)
{
  const std::uint8_t *p = bytes;
  const std::uint8_t *end = bytes + size;
  FrameInfo info;
  info.Width = GetU32(p, end);
  info.Height = GetU32(p, end);
  info.Step = GetU64(p, end);
  info.Version = GetU64(p, end);
  info.Map = static_cast<Colormap>(GetU32(p, end));
  info.RenderTime = GetF64(p, end);
  info.Variable = GetString(p, end);
  pixelOffset = static_cast<std::size_t>(p - bytes);
  return info;
}

} // namespace viz
