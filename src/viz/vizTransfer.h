#ifndef vizTransfer_h
#define vizTransfer_h

/// @file vizTransfer.h
/// The transfer function of the steerable visualization endpoint: maps a
/// scalar binning grid through a colormap into RGBA pixels. Every pixel
/// is a pure function of (value, parameters) — no accumulation, no
/// shared state — so the per-pixel fill loop is trivially Shardable and
/// bit-identical across serial/threaded execution and eager/graph-replay
/// modes.
///
/// Conventions:
///  * NaN values and empty bins (when the caller passes an occupancy
///    mask) shade fully transparent black (0,0,0,0), the ISAAC-style
///    "nothing here" pixel.
///  * Out-of-range values clamp to the range ends.
///  * Log scaling maps values <= 0 to the bottom of the range.

#include <cstddef>
#include <cstdint>
#include <string>

namespace viz
{

/// Built-in colormaps (piecewise-linear lookup tables).
enum class Colormap : int
{
  Gray = 0, ///< black -> white
  Viridis,  ///< perceptually uniform dark-blue -> yellow
  Heat      ///< black -> red -> yellow -> white
};

/// Parse a colormap name ("gray"/"grey", "viridis", "heat"). Throws
/// std::invalid_argument on unknown names.
Colormap ColormapFromName(const std::string &name);

/// Stable lower-case name.
const char *ColormapName(Colormap m);

/// A complete transfer-function parameterization.
struct TransferFunction
{
  Colormap Map = Colormap::Viridis;
  double Lo = 0.0;      ///< value mapped to the colormap's bottom
  double Hi = 1.0;      ///< value mapped to the colormap's top
  bool Log = false;     ///< log10 value scaling (<= 0 clamps to bottom)
  bool AutoRange = true;///< derive Lo/Hi from the grid every frame
};

/// Normalize `v` into [0, 1] under the range/scaling; NaN returns a
/// negative sentinel the shader turns into the transparent pixel.
double Normalize(double v, const TransferFunction &tf);

/// Shade one value into the 4-byte RGBA pixel at `px`.
void Shade(double v, const TransferFunction &tf, std::uint8_t *px);

/// Min/max of `grid` ignoring NaNs (deterministic left-to-right scan).
/// Degenerate ranges widen so Normalize never divides by zero. Returns
/// false (leaving lo/hi at 0/1) when no finite value exists.
bool GridRange(const double *grid, std::size_t n, double &lo, double &hi);

/// Fill the pixel range [pb, pe) of a `width` x `height` RGBA image by
/// nearest-neighbor sampling of the `gw` x `gh` scalar grid (row-major,
/// like the binning result). The building block of the Shardable render
/// kernel: disjoint pixel ranges touch disjoint framebuffer bytes.
void FillPixels(std::uint8_t *rgba, std::size_t pb, std::size_t pe,
                std::uint32_t width, std::uint32_t height, const double *grid,
                std::uint32_t gw, std::uint32_t gh,
                const TransferFunction &tf);

/// Nearest-neighbor downsample of a `sw` x `sh` RGBA image into `dst`
/// (`dw` x `dh`); used for per-viewer fidelity overrides. Only shrinking
/// is supported (dw <= sw, dh <= sh).
void Downsample(const std::uint8_t *src, std::uint32_t sw, std::uint32_t sh,
                std::uint8_t *dst, std::uint32_t dw, std::uint32_t dh);

} // namespace viz

#endif
