#ifndef vizWire_h
#define vizWire_h

/// @file vizWire.h
/// Payload formats of the visualization endpoint, carried inside the
/// service wire frames (svcWire.h):
///
///  * a SteerCommand rides a FrameKind::Steer frame viewer -> server.
///    Commands are versioned: the consumer applies at most the
///    highest-versioned pending command at a step boundary and discards
///    anything at or below the last applied version, so a stale or
///    reordered command can never roll parameters backward.
///  * a FrameInfo prefixes every rendered image on a FrameKind::Push
///    frame server -> viewer, followed by the RGBA bytes (raw, or one
///    cmp codec chunk when the session negotiated compression — the
///    svc header's compressed flag says which).
///
/// Both encodings are little-endian and self-describing enough to
/// round-trip exactly; decoders throw std::runtime_error on truncation.

#include "vizTransfer.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace viz
{

/// Optional-field presence bits of a SteerCommand.
enum : std::uint32_t
{
  kSteerImageSize = 1u << 0,  ///< Width/Height
  kSteerBinRes = 1u << 1,     ///< BinResolution
  kSteerVariable = 1u << 2,   ///< Variable/Op
  kSteerColormap = 1u << 3,   ///< Map
  kSteerLog = 1u << 4,        ///< Log
  kSteerRange = 1u << 5,      ///< Lo/Hi (clears auto-range)
  kSteerAutoRange = 1u << 6,  ///< re-enable auto-range
  kSteerAxes = 1u << 7,       ///< Axes (coordinate system)
  kSteerDevice = 1u << 8      ///< Device placement
};

/// A mid-run parameter change. Unset fields keep their current value.
struct SteerCommand
{
  std::uint64_t Version = 0; ///< monotonic; stale commands are discarded
  std::uint32_t Have = 0;    ///< kSteer* presence bits

  std::uint32_t Width = 0, Height = 0; ///< framebuffer resolution
  std::int64_t BinResolution = 0;      ///< bins per axis
  std::string Variable;                ///< rendered column ("" = count)
  std::string Op;                      ///< reduction name ("sum", ...)
  Colormap Map = Colormap::Viridis;
  bool Log = false;
  double Lo = 0.0, Hi = 1.0;
  std::string Axes;   ///< comma-separated axis columns
  std::int32_t Device = -2; ///< DEVICE_AUTO/-1 host/explicit id
};

std::vector<std::uint8_t> EncodeSteer(const SteerCommand &c);
SteerCommand DecodeSteer(const std::uint8_t *bytes, std::size_t size);

/// Metadata prefix of a rendered frame.
struct FrameInfo
{
  std::uint32_t Width = 0, Height = 0;
  std::uint64_t Step = 0;    ///< simulation step the frame renders
  std::uint64_t Version = 0; ///< parameter version in effect
  Colormap Map = Colormap::Viridis;
  std::string Variable;      ///< rendered array name
  double RenderTime = 0.0;   ///< real-clock seconds when the render began
};

/// Build a complete Push payload: encoded FrameInfo + `pixels` verbatim.
std::vector<std::uint8_t> EncodeFramePayload(const FrameInfo &info,
                                             const std::uint8_t *pixels,
                                             std::size_t pixelBytes);

/// Split a Push payload back into FrameInfo + the pixel byte range
/// (offset into `bytes` where pixels start).
FrameInfo DecodeFrameInfo(const std::uint8_t *bytes, std::size_t size,
                          std::size_t &pixelOffset);

} // namespace viz

#endif
