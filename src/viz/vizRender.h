#ifndef vizRender_h
#define vizRender_h

/// @file vizRender.h
/// The steerable in situ rendering analysis. RenderAnalysis owns a
/// sensei::DataBinning and, every step, maps its binned grid through a
/// transfer function (colormap, value range, log/linear) into an RGBA
/// framebuffer at a steerable resolution. The per-pixel fill is a
/// Shardable kernel: under VP_EXEC=threads it shards across host lanes,
/// on a device it launches through vcuda on a private stream inside a
/// captured step-graph session (VP_GRAPH=1), and because each pixel is
/// a pure function of the grid the framebuffer is bit-identical across
/// serial/threads and eager/graph-replay execution.
///
/// When a Streamer is attached the framebuffer fans out to every
/// admitted viewer after each render, and pending steering commands are
/// drained at the next step boundary — parameters never change
/// mid-render. A steer that changes the framebuffer or binning
/// resolution drops the armed render graph (counted as a recapture);
/// the next step captures the new shape instead of dying on a replay
/// mismatch.

#include "senseiAnalysisAdaptor.h"
#include "senseiDataBinning.h"
#include "vizTransfer.h"
#include "vizWire.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace vp
{
namespace graph
{
class Session;
}
}

namespace viz
{

class Streamer;

class RenderAnalysis : public sensei::AnalysisAdaptor
{
public:
  static RenderAnalysis *New() { return new RenderAnalysis; }

  const char *GetClassName() const override { return "viz::RenderAnalysis"; }

  // --- binning configuration (forwarded) -------------------------------------

  void SetMeshName(const std::string &name);
  void SetAxes(const std::vector<std::string> &axes);

  /// Bins per axis (broadcast; the steerable "bin resolution").
  void SetBinResolution(long res);
  long GetBinResolution() const { return this->BinRes_; }

  /// Fix a coordinate axis' bounds instead of scanning the data.
  void SetBinRange(int axis, double lo, double hi);

  /// The rendered variable: a reduction "<column>_<op>" of the binning,
  /// or the implicit histogram when `column` is empty ("count").
  void SetVariable(const std::string &column, const std::string &op = "sum");
  const std::string &GetVariable() const { return this->Variable_; }

  /// The binning this analysis drives (owned; for tests/diagnostics).
  sensei::DataBinning *GetBinning() { return this->Binning_; }

  // --- render configuration --------------------------------------------------

  /// Framebuffer resolution (steerable).
  void SetImageSize(std::uint32_t width, std::uint32_t height);
  std::uint32_t GetWidth() const { return this->Width_; }
  std::uint32_t GetHeight() const { return this->Height_; }

  void SetTransfer(const TransferFunction &tf) { this->Tf_ = tf; }
  const TransferFunction &GetTransfer() const { return this->Tf_; }

  /// Attach the fan-out/steering endpoint (not owned; may be null for a
  /// render-only analysis). The streamer must outlive this analysis.
  void SetStreamer(Streamer *s) { this->Streamer_ = s; }

  // --- framework interface ---------------------------------------------------

  bool Execute(sensei::DataAdaptor *data) override;
  int Finalize() override;

  /// The last rendered framebuffer (Width * Height RGBA bytes; empty
  /// before the first render).
  const std::vector<std::uint8_t> &GetFramebuffer() const
  {
    return this->Fb_;
  }

  /// Completed renders.
  std::uint64_t GetRenderCount() const { return this->Renders_; }

  /// Parameter version currently in effect (last applied steer).
  std::uint64_t GetParamVersion() const { return this->ParamVersion_; }

protected:
  RenderAnalysis();
  ~RenderAnalysis() override;

private:
  /// Apply one steering command at a step boundary. Invalid fields are
  /// reported and skipped; the session survives.
  void ApplySteer(const SteerCommand &cmd);

  /// Rasterize `grid` (gw x gh doubles) into Fb_ on `device`
  /// (DEVICE_HOST or a device id).
  void Render(const double *grid, std::uint32_t gw, std::uint32_t gh,
              int device);

  /// Placement for the render kernel, pinned while the render graph is
  /// armed.
  int PlaceRender(sensei::DataAdaptor *data, std::size_t gridBytes);

  sensei::DataBinning *Binning_;
  Streamer *Streamer_ = nullptr;

  std::string Variable_;                              ///< "" = count
  sensei::BinningOp Op_ = sensei::BinningOp::Sum;
  long BinRes_ = 0; ///< last explicit bin resolution (0 = binning default)

  std::uint32_t Width_ = 256, Height_ = 256;
  TransferFunction Tf_;
  std::vector<std::uint8_t> Fb_;

  std::unique_ptr<vp::graph::Session> GraphSession_;
  int GraphDevice_ = DEVICE_AUTO; ///< device pinned at capture

  std::uint64_t Renders_ = 0;
  std::uint64_t ParamVersion_ = 0;
};

} // namespace viz

#endif
