# gnuplot script regenerating the paper's Figure 2 (total run time,
# grouped bars by placement, lockstep red vs asynchronous blue) and
# Figure 3 (stacked solver + in situ time per iteration) from the .dat
# series written by bench/fig2_fig3_placement.
#
# Run from the directory containing fig2_total_runtime.dat and
# fig3_per_iteration.dat:   gnuplot scripts/plot_fig2_fig3.gp

set terminal pngcairo size 900,500 font ",11"

set style data histograms
set style fill solid 0.9 border -1
set boxwidth 0.8
set grid ytics

placements = "host same-device 1-dedicated 2-dedicated"

# ---- Figure 2: total run time -------------------------------------------------
set output "fig2.png"
set title "Total run time by in situ placement (virtual seconds)"
set ylabel "total run time (s)"
set xtics ("host" 0, "same device" 1, "1 dedicated" 2, "2 dedicated" 3)
plot "fig2_total_runtime.dat" using 2 title "lockstep" lc rgb "#c03020", \
     ""                       using 3 title "asynchronous" lc rgb "#2050c0"

# ---- Figure 3: per-iteration stack ---------------------------------------------
set output "fig3.png"
set style histogram rowstacked
set title "Average time per iteration: solver + in situ (virtual seconds)"
set ylabel "seconds / iteration"
set xtics rotate by -30
plot "fig3_per_iteration.dat" \
       using 3:xtic(sprintf("%s %s", word(placements, int($1)+1), $2 ? "async" : "lock")) \
       title "solver" lc rgb "#30a0a0", \
     "" using 4 title "in situ" lc rgb "#c03020"
