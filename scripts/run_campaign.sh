#!/usr/bin/env sh
# Regenerate every table and figure of the paper from a clean tree.
# Results land in ./results; see EXPERIMENTS.md for the expected shapes.
set -eu

cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p results
cd results

echo "== Figure 1 =="
../build/bench/fig1_binning | tee fig1.txt

echo "== Table 1 =="
../build/bench/table1_runs | tee table1.txt

echo "== Figures 2 and 3 (scaled default) =="
../build/bench/fig2_fig3_placement | tee fig2_fig3.txt

echo "== Figures 2 and 3 (paper-shape workload) =="
SENSEI_PAPER_SCALE=1 ../build/bench/fig2_fig3_placement | tee fig2_fig3_paper_scale.txt

echo "== microbenches / ablations =="
for b in ../build/bench/um_*; do
  name=$(basename "$b")
  echo "-- $name"
  "$b" --benchmark_min_time=0.05 | tee "$name.txt"
done

# um_pool_reuse additionally writes the pooled-vs-unpooled campaign
# (per-iteration virtual timings + pool hit rate) as machine-readable JSON
if [ -f BENCH_pool.json ]; then
  echo "wrote results/BENCH_pool.json"
fi
# um_sched writes the skewed-load placement campaign (static Eq. 1 vs
# least-loaded vs cost-model) and the backpressure memory experiment
if [ -f BENCH_sched.json ]; then
  echo "wrote results/BENCH_sched.json"
fi
# um_compress writes the per-codec ratios, the in transit payload
# reduction (the binary exits nonzero below the 2x target), and the
# eight-case campaign with compression on vs off
if [ -f BENCH_compress.json ]; then
  echo "wrote results/BENCH_compress.json"
fi
# um_exec writes real wall-clock for the sharded binning region and the
# eight-case campaign under VP_EXEC=serial vs threads; on machines with
# >= 4 hardware threads the binary exits nonzero unless the threaded
# region is at least 2x faster than serial
if [ -f BENCH_exec.json ]; then
  echo "wrote results/BENCH_exec.json"
fi
# um_service writes the multi-tenant service campaign: aggregate frames/s
# and p99 latency for 1/2/4/8 streaming clients plus the kill experiment;
# on machines with >= 4 hardware threads the binary exits nonzero unless
# 4 clients reach 2x the aggregate throughput of 1 and killing 1 of 4
# tenants costs the survivors < 10% throughput
if [ -f BENCH_service.json ]; then
  echo "wrote results/BENCH_service.json"
fi
# um_graph writes the captured step-graph campaign: the eight cases under
# VP_GRAPH=0 vs VP_GRAPH=1 plus the serial bit-exactness probe; the binary
# exits nonzero unless replay stays bit-exact with the eager timeline and
# exec::tasks_enqueued drops >= 5x with fusion+replay (wall-clock must also
# hold steady on machines with >= 4 hardware threads)
if [ -f BENCH_graph.json ]; then
  echo "wrote results/BENCH_graph.json"
fi
# um_layout writes the layout-engine campaign: real wall-clock for the
# SoA+SIMD nbody force kernel vs the seed's scalar AoS loop and for the
# codec's blocked byte-plane transpose vs the strided per-plane gather,
# plus the binning bit-exactness matrix across serial/threads x
# eager/graph-replay x aos/soa/aosoa; the binary exits nonzero when the
# matrix diverges, and on machines with >= 4 hardware threads it also
# gates on the 1.5x force and 1.2x shuffle speedups
if [ -f BENCH_layout.json ]; then
  echo "wrote results/BENCH_layout.json"
fi
# um_tune writes the auto-tuner campaign: every hand-written config scored
# on the comparison campaign, the tuned configuration's winning margin,
# annealer-vs-random search quality, and the online controller's
# shifting-workload adaptation; the binary exits nonzero unless the tuned
# config strictly beats the best hand-written one, the annealer beats
# random at equal budget, the online controller improves the shifted
# workload, and the fixed-seed search is bit-reproducible
if [ -f BENCH_tune.json ]; then
  echo "wrote results/BENCH_tune.json"
fi
# um_viz writes the steerable visualization campaign: 4-viewer streaming
# with one comatose viewer (drop-oldest must fire while the responsive
# viewers' p99 frame age stays bounded and no publish stalls the step
# loop), a mid-run resolution+variable steer (applied within <= 2 step
# boundaries without killing the viewer session), and the bit-exactness
# probe (framebuffers identical across serial/threads x eager/graph);
# the binary exits nonzero when a gate fails (the timing gate needs
# >= 4 hardware threads, the steer and bit-exact gates always apply)
if [ -f BENCH_viz.json ]; then
  echo "wrote results/BENCH_viz.json"
fi

echo "== checked pooled campaign (VP_CHECK=1) =="
# the race/lifetime checker instruments the whole pooled campaign; any
# violation (use-after-free, unsynced access, cross-stream race, double
# free, leak) makes um_pool_reuse exit nonzero and aborts the script
VP_CHECK=1 ../build/bench/um_pool_reuse --benchmark_min_time=0.05 \
  | tee um_pool_reuse_checked.txt
echo "== scheduler campaign (VP_CHECK=1) =="
# the adaptive-scheduler campaign under the checker: placement policies,
# the bounded pipeline (including real-thread mode in the labelled
# tests), and the backpressure matrix must all be race/lifetime clean
VP_CHECK=1 ../build/bench/um_sched --benchmark_min_time=0.05 \
  | tee um_sched_checked.txt
echo "== compression campaign (VP_CHECK=1) =="
# the codec sweep, the compressed in transit pipeline, and the on/off
# campaign under the checker; the binary also gates on the 2x in transit
# payload reduction, so a ratio regression aborts the script here
VP_CHECK=1 ../build/bench/um_compress --benchmark_min_time=0.05 \
  | tee um_compress_checked.txt
echo "== execution-engine campaign (VP_CHECK=1 VP_EXEC=threads) =="
# the threaded execution engine under the checker: deferred kernel
# bodies, sharded host regions, and real copy queues must be
# race/lifetime clean; the binary also gates on the 2x wall-clock
# speedup where the hardware has >= 4 threads
VP_CHECK=1 VP_EXEC=threads ../build/bench/um_exec --benchmark_min_time=0.05 \
  | tee um_exec_checked.txt
echo "== multi-tenant service campaign (VP_CHECK=1) =="
# the service's dispatcher, worker pool, and heartbeat threads under the
# checker: the scaling sweep and the mid-run tenant kill must be
# race/lifetime clean; the binary also gates on the 2x client-scaling
# and <10% survivor-loss targets where the hardware has >= 4 threads
VP_CHECK=1 ../build/bench/um_service --benchmark_min_time=0.05 \
  | tee um_service_checked.txt
echo "== auto-tuner smoke gate (VP_CHECK=1) =="
# the tuner's campaigns under the checker: hand-config scoring, a
# short warm-started comparison search (the committed tuned config keeps
# the margin gate honest at the reduced budget), the annealer-vs-random
# proxy searches, and both shifting-workload runs must be race/lifetime
# clean; every acceptance gate still applies
VP_CHECK=1 VP_TUNE_BUDGET=6 ../build/bench/um_tune \
  --benchmark_min_time=0.05 | tee um_tune_checked.txt
echo "== steerable visualization campaign (VP_CHECK=1) =="
# the streamer's fan-out, the viewer threads, the steer control path,
# and the render kernels (host shards and the captured device graph)
# under the checker; the steer and bit-exact gates still apply
VP_CHECK=1 ../build/bench/um_viz --benchmark_min_time=0.05 \
  | tee um_viz_checked.txt
echo "== step-graph campaign (VP_CHECK=1) =="
# capture, fusion, and replay under the checker: the validate-once capture
# step plus every replayed step's summary edges must be race/lifetime
# clean; the binary also gates on bit-exact replay and the 5x
# tasks_enqueued drop, so a regression in either aborts the script here
VP_CHECK=1 ../build/bench/um_graph --benchmark_min_time=0.05 \
  | tee um_graph_checked.txt
echo "== layout-engine campaign (VP_CHECK=1) =="
# layout conversions (the deferred reorder kernels), the lane-vectorized
# force and tiled binning variants, and the blocked plane transpose
# under the checker; the bit-exactness matrix still applies, so a layout
# that perturbs the binning grids aborts the script here
VP_CHECK=1 ../build/bench/um_layout --benchmark_min_time=0.05 \
  | tee um_layout_checked.txt
echo "== scheduler-labelled tests =="
ctest --test-dir ../build -L sched --output-on-failure

echo "== checker-labelled tests =="
ctest --test-dir ../build -L check --output-on-failure

echo "== compression-labelled tests =="
ctest --test-dir ../build -L compress --output-on-failure

echo "== execution-engine tests =="
ctest --test-dir ../build -L exec --output-on-failure

echo "== service tests =="
ctest --test-dir ../build -L svc --output-on-failure

echo "== step-graph tests =="
ctest --test-dir ../build -L graph --output-on-failure

echo "== auto-tuner tests =="
ctest --test-dir ../build -L tune --output-on-failure

echo "== layout-engine tests =="
ctest --test-dir ../build -L layout --output-on-failure

echo "== visualization tests =="
ctest --test-dir ../build -L viz --output-on-failure

echo "== sanitized scheduler + compression runs (-DVP_SANITIZE=ON) =="
# a separate ASan+UBSan build configuration; the real-thread pipeline,
# the drop/coalesce task destruction paths, and the codec byte-twiddling
# (shuffle, varint, quantize) run under the sanitizers
cmake -B ../build-sanitize -S .. -G Ninja -DVP_SANITIZE=ON
cmake --build ../build-sanitize --target um_sched testSched um_compress testCompress testService testGraph um_graph testTune testViz testLayout um_layout
../build-sanitize/bench/um_sched --benchmark_min_time=0.05 \
  | tee um_sched_sanitized.txt
../build-sanitize/tests/testSched
VP_CHECK=1 ../build-sanitize/bench/um_compress --benchmark_min_time=0.05 \
  | tee um_compress_sanitized.txt
../build-sanitize/tests/testCompress
# the service's ring transfers, frame reassembly, and session teardown
# paths under ASan+UBSan
../build-sanitize/tests/testService
# capture-node lifetimes, fused-launch trampolines, and the replay
# rebinding paths under ASan+UBSan; um_graph keeps its bit-exact and 5x
# gates in the sanitized build too
ctest --test-dir ../build-sanitize -L graph --output-on-failure
VP_CHECK=1 ../build-sanitize/bench/um_graph --benchmark_min_time=0.05 \
  | tee um_graph_sanitized.txt
# the tuner's knob-space serialization, evaluator state resets, and the
# online controller's apply/revert closures under ASan+UBSan
../build-sanitize/tests/testTune
# framebuffer fills, per-viewer downsample/codec paths, the steer wire
# encodings, and the streamer's session teardown under ASan+UBSan
../build-sanitize/tests/testViz
# the layout engine's reorder kernels (padded AoSoA tails, the 1000-seed
# round-trip sweep), the blocked plane transpose, and the lane-vectorized
# kernel variants under ASan+UBSan; um_layout keeps its bit-exactness
# matrix gate in the sanitized build too
../build-sanitize/tests/testLayout
VP_CHECK=1 ../build-sanitize/bench/um_layout --benchmark_min_time=0.05 \
  | tee um_layout_sanitized.txt

echo "== ThreadSanitizer execution-engine run (-DVP_TSAN=ON) =="
# a separate TSan build configuration (mutually exclusive with ASan):
# the worker queues, sharded regions, fences and event edges of the
# threaded engine run under the race detector
cmake -B ../build-tsan -S .. -G Ninja -DVP_TSAN=ON
cmake --build ../build-tsan --target testExec um_exec testService testGraph um_graph testTune testViz testLayout
../build-tsan/tests/testExec
VP_EXEC=threads ../build-tsan/bench/um_exec --benchmark_min_time=0.05 \
  | tee um_exec_tsan.txt
# the service's dispatcher/worker/heartbeat thread interplay under the
# race detector
../build-tsan/tests/testService
# graph flush vs worker threads: the armed session's inline replay bodies
# and the threaded engine's queues share streams; both must be race clean
ctest --test-dir ../build-tsan -L graph --output-on-failure
VP_EXEC=threads ../build-tsan/bench/um_graph --benchmark_min_time=0.05 \
  | tee um_graph_tsan.txt
# lockstep evaluator campaigns (rank threads under the cooperative
# scheduler) and the online controller under the race detector
../build-tsan/tests/testTune
# the publisher step loop vs viewer poll threads vs the steer control
# path: the streamer's pending-slot and fan-out locking under the race
# detector
../build-tsan/tests/testViz
# layout reorders and the lane-vectorized kernels under the threaded
# engine: deferred reorder bodies retain the old storage while worker
# queues drain; the serial-vs-threads equality tests must be race clean
../build-tsan/tests/testLayout

if command -v gnuplot >/dev/null 2>&1; then
  gnuplot ../scripts/plot_fig2_fig3.gp
  echo "wrote results/fig2.png, results/fig3.png"
fi

echo "done; outputs in ./results"
