// Benchmark for the steerable visualization endpoint (src/viz): a
// render analysis bins a moving particle set, shades the grid through
// the transfer function, and streams the framebuffers to concurrent
// viewer sessions over the service transport. Like um_service this
// bench measures *real* seconds — the streamer's fan-out, the ring
// transport, and the viewers are real threads doing real concurrency.
//
// Beyond the google-benchmark output, main() runs three experiments
// and writes BENCH_viz.json into the working directory
// (scripts/run_campaign.sh collects it under results/):
//
//   streaming  4 viewers (one deliberately comatose) receive every
//              rendered step under drop-oldest backpressure; gates:
//              the slow viewer forced drops (PushDrops > 0), the
//              responsive viewers' p99 frame age stays bounded, and
//              no publish ever stalled the simulation step loop.
//   steering   a viewer swaps bin resolution + rendered variable
//              mid-run with a Steer frame; gates: applied within
//              <= 2 step boundaries, the viewer session survives,
//              and every step keeps executing.
//   bitexact   the same 3-step campaign rendered under serial/threads
//              x eager/graph-replay; gate: all four framebuffer
//              sequences are byte-identical.
//
// Exit codes: 2 when VP_CHECK found violations, 3 when a gate failed.
// The timing gate (p99 frame age / stall bound) is enforced only when
// the machine has >= 4 hardware threads; the steering and bitexact
// gates are deterministic and always enforced.

#include "cmpCodec.h"
#include "execEngine.h"
#include "graphCapture.h"
#include "senseiDataAdaptor.h"
#include "senseiProfiler.h"
#include "svcClient.h"
#include "svcSession.h"
#include "svtkAOSDataArray.h"
#include "vizConfig.h"
#include "vizRender.h"
#include "vizStreamer.h"
#include "vizWire.h"
#include "vpChecker.h"
#include "vpFaultInjector.h"
#include "vpPlatform.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

namespace
{

constexpr int kViewers = 4;
constexpr int kStreamSteps = 60;
constexpr std::size_t kBodies = 20000;
constexpr std::uint32_t kFbSize = 64; // framebuffer edge, pixels
constexpr long kBinRes = 32;

void Reset()
{
  vp::PlatformConfig pcfg;
  pcfg.DevicesPerNode = 4;
  pcfg.HostCoresPerNode = 8;
  vp::Platform::Initialize(pcfg);
  vp::check::Reset();
  vp::fault::Reset();

  svc::ServiceConfig cfg;
  cfg.HeartbeatMs = 25;
  cfg.PushDepth = 2; // drop-oldest kicks in after two buffered frames
  svc::Configure(cfg);
  svc::ResetStats();
  viz::Configure(viz::VizConfig{});
  viz::ResetStats();
  vp::exec::Configure(vp::exec::ExecConfig());
  vp::graph::Configure(vp::graph::GraphConfig{});
}

double Now()
{
  return std::chrono::duration<double>(
           std::chrono::steady_clock::now().time_since_epoch())
    .count();
}

/// p-th percentile of `v` (the service bench's convention).
double Percentile(std::vector<double> v, double p)
{
  if (v.empty())
    return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t i = std::min(
    v.size() - 1,
    static_cast<std::size_t>(p * static_cast<double>(v.size() - 1) + 0.5));
  return v[i];
}

/// Rows with integer-valued v so per-bin sums are exact in any
/// accumulation order — framebuffer equality between execution modes
/// can be asserted bitwise.
svtkTable *MakeTable(std::size_t n, unsigned seed)
{
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> u(-1.0, 1.0);

  std::vector<double> xs(n), ys(n), vs(n);
  for (std::size_t i = 0; i < n; ++i)
  {
    xs[i] = u(gen);
    ys[i] = u(gen);
    vs[i] = std::floor(8.0 * (xs[i] + 2.0 * ys[i]));
  }

  svtkTable *t = svtkTable::New();
  auto add = [t](const char *name, const std::vector<double> &v)
  {
    svtkAOSDoubleArray *c = svtkAOSDoubleArray::New(name, v.size(), 1);
    c->GetVector() = v;
    t->AddColumn(c);
    c->Delete();
  };
  add("x", xs);
  add("y", ys);
  add("v", vs);
  return t;
}

viz::RenderAnalysis *MakeRender(long binRes, std::uint32_t w,
                                std::uint32_t h)
{
  viz::RenderAnalysis *r = viz::RenderAnalysis::New();
  r->SetMeshName("bodies");
  r->SetAxes({"x", "y"});
  r->SetBinResolution(binRes);
  r->SetBinRange(0, -1.0, 1.0);
  r->SetBinRange(1, -1.0, 1.0);
  r->SetVariable("v", "sum");
  r->SetImageSize(w, h);
  viz::TransferFunction tf;
  tf.Map = viz::Colormap::Viridis;
  tf.AutoRange = true;
  r->SetTransfer(tf);
  return r;
}

/// Wait (bounded real time) for `pred` to become true.
template <typename Pred>
bool Eventually(Pred pred, double seconds = 10.0)
{
  const double deadline = Now() + seconds;
  while (Now() < deadline)
  {
    if (pred())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

// --- streaming: fan-out under a comatose viewer -----------------------------

struct StreamResult
{
  int Viewers = 0;
  double WallSeconds = 0.0;
  double MaxStepSeconds = 0.0;     ///< slowest render+publish step
  double P99FrameAgeSeconds = 0.0; ///< viewer-observed, responsive viewers
  std::uint64_t FramesDelivered = 0;
  std::uint64_t PushDrops = 0;
  std::uint64_t FramesPublished = 0;
};

/// `viewers` concurrent viewer sessions receive kStreamSteps rendered
/// frames; the viewer at `slowIndex` never polls, forcing drop-oldest
/// on its outbox while the others' frame age stays bounded.
StreamResult StreamViewers(int viewers, int slowIndex)
{
  Reset();
  viz::Streamer st;
  st.Start();

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> delivered{0};
  std::vector<std::vector<double>> ages(
    static_cast<std::size_t>(viewers));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(viewers));
  for (int c = 0; c < viewers; ++c)
    threads.emplace_back(
      [c, slowIndex, &st, &done, &delivered, &ages]
      {
        svc::Client viewer(st.Connect(), "viz:bench");
        if (!viewer.Connect(cmp::Params{}, false))
          return;
        viewer.StartHeartbeats();
        if (c == slowIndex)
        {
          // comatose: admitted and heartbeating, but never draining —
          // the server's drop-oldest outbox absorbs every frame
          while (!done.load())
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
          viewer.Close();
          return;
        }
        svc::Frame f;
        while (true)
        {
          if (!viewer.Poll(f, 0.01))
          {
            if (done.load())
              break;
            continue;
          }
          const double now = Now();
          std::size_t off = 0;
          const viz::FrameInfo fi =
            viz::DecodeFrameInfo(f.Payload.data(), f.Payload.size(), off);
          ages[static_cast<std::size_t>(c)].push_back(now - fi.RenderTime);
          delivered.fetch_add(1);
        }
        viewer.Close();
      });

  if (!Eventually([&] { return st.ActiveViewers() == viewers; }))
    std::fprintf(stderr, "um_viz: only %d of %d viewers admitted\n",
                 st.ActiveViewers(), viewers);

  sensei::TableAdaptor *da = sensei::TableAdaptor::New("bodies");
  viz::RenderAnalysis *r = MakeRender(kBinRes, kFbSize, kFbSize);
  r->SetDeviceId(sensei::AnalysisAdaptor::DEVICE_HOST);
  r->SetStreamer(&st);

  const double t0 = Now();
  double maxStep = 0.0;
  for (int s = 0; s < kStreamSteps; ++s)
  {
    svtkTable *t = MakeTable(kBodies, 1000u + static_cast<unsigned>(s));
    da->SetTable(t);
    t->Delete();
    da->SetDataTimeStep(s);
    const double stepBegin = Now();
    r->Execute(da);
    maxStep = std::max(maxStep, Now() - stepBegin);
  }
  const double wall = Now() - t0;

  // let the responsive viewers drain their last buffered frames
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  done.store(true);
  for (std::thread &t : threads)
    t.join();

  r->Finalize();
  r->Delete();
  da->ReleaseData();
  da->Delete();
  st.Stop();

  std::vector<double> all;
  for (const auto &a : ages)
    all.insert(all.end(), a.begin(), a.end());

  StreamResult res;
  res.Viewers = viewers;
  res.WallSeconds = wall;
  res.MaxStepSeconds = maxStep;
  res.P99FrameAgeSeconds = Percentile(all, 0.99);
  res.FramesDelivered = delivered.load();
  res.PushDrops = svc::Stats().PushDrops;
  res.FramesPublished = viz::Stats().FramesPublished;
  return res;
}

// --- steering: resolution + variable swap mid-run ---------------------------

struct SteerResult
{
  int StepsToApply = -1; ///< step boundaries until the swap landed
  bool ViewerAlive = false;
  bool AllStepsExecuted = true;
  bool ViewerSawSwap = false; ///< a frame with the new shape arrived
};

SteerResult SteerRun()
{
  Reset();
  viz::Streamer st;
  st.Start();

  svc::Client viewer(st.Connect(), "viz:pilot");
  if (!viewer.Connect(cmp::Params{}, false))
    return SteerResult{};
  viewer.StartHeartbeats();
  Eventually([&] { return st.ActiveViewers() == 1; });

  sensei::TableAdaptor *da = sensei::TableAdaptor::New("bodies");
  viz::RenderAnalysis *r = MakeRender(kBinRes, kFbSize, kFbSize);
  r->SetDeviceId(sensei::AnalysisAdaptor::DEVICE_HOST);
  r->SetStreamer(&st);

  SteerResult res;
  auto step = [&](int s)
  {
    svtkTable *t = MakeTable(kBodies, 2000u + static_cast<unsigned>(s));
    da->SetTable(t);
    t->Delete();
    da->SetDataTimeStep(s);
    if (!r->Execute(da))
      res.AllStepsExecuted = false;
  };

  for (int s = 0; s < 3; ++s)
    step(s);

  // the swap: coarser binning and the histogram instead of the sum
  viz::SteerCommand c;
  c.Version = 1;
  c.Have = viz::kSteerBinRes | viz::kSteerVariable;
  c.BinResolution = kBinRes / 2;
  c.Variable = ""; // count
  const std::vector<std::uint8_t> buf = viz::EncodeSteer(c);
  viewer.SendSteer(buf.data(), buf.size(), c.Version);
  Eventually([&] { return svc::Stats().Steers >= 1; });

  for (int s = 3; s < 8 && res.StepsToApply < 0; ++s)
  {
    step(s);
    if (r->GetParamVersion() == 1)
      res.StepsToApply = s - 2; // boundaries since the command was sent
  }

  // the viewer must see the steered shape without losing its session
  Eventually(
    [&]
    {
      svc::Frame f;
      while (viewer.Poll(f, 0.01))
      {
        std::size_t off = 0;
        const viz::FrameInfo fi =
          viz::DecodeFrameInfo(f.Payload.data(), f.Payload.size(), off);
        if (fi.Version == 1 && fi.Variable == "count")
          res.ViewerSawSwap = true;
      }
      if (!res.ViewerSawSwap)
        step(99);
      return res.ViewerSawSwap;
    });
  res.ViewerAlive = st.ActiveViewers() == 1;

  r->Finalize();
  r->Delete();
  da->ReleaseData();
  da->Delete();
  viewer.Close();
  st.Stop();
  return res;
}

// --- bitexact: serial/threads x eager/graph ---------------------------------

/// Drive a fresh render analysis for 3 steps under the given execution
/// mode and return each step's framebuffer.
std::vector<std::vector<std::uint8_t>> RenderSteps(bool graphOn,
                                                   bool threadsOn)
{
  Reset();
  if (threadsOn)
  {
    vp::exec::ExecConfig ecfg;
    ecfg.ExecMode = vp::exec::Mode::Threads;
    ecfg.Threads = 3;
    ecfg.ShardGrain = 256;
    vp::exec::Configure(ecfg);
  }
  vp::graph::GraphConfig gcfg;
  gcfg.Enabled = graphOn;
  vp::graph::Configure(gcfg);

  sensei::TableAdaptor *da = sensei::TableAdaptor::New("bodies");
  viz::RenderAnalysis *r = MakeRender(kBinRes, kFbSize, kFbSize);
  r->SetDeviceId(0); // device path so the graph session arms

  std::vector<std::vector<std::uint8_t>> out;
  for (int s = 0; s < 3; ++s)
  {
    svtkTable *t = MakeTable(4000, 3000u + static_cast<unsigned>(s));
    da->SetTable(t);
    t->Delete();
    da->SetDataTimeStep(s);
    r->Execute(da);
    out.push_back(r->GetFramebuffer());
  }
  r->Finalize();
  r->Delete();
  da->ReleaseData();
  da->Delete();
  return out;
}

bool BitExactRun()
{
  const auto ref = RenderSteps(false, false); // serial eager
  for (const bool graphOn : {false, true})
    for (const bool threadsOn : {false, true})
    {
      if (!graphOn && !threadsOn)
        continue;
      if (RenderSteps(graphOn, threadsOn) != ref)
        return false;
    }
  return true;
}

void WriteJson(unsigned hw, bool timingGates, const StreamResult &stream,
               const SteerResult &steer, bool bitexact,
               const std::string &path)
{
  const bool streamPass = stream.PushDrops > 0 &&
                          stream.P99FrameAgeSeconds < 0.5 &&
                          stream.MaxStepSeconds < 1.0;
  const bool steerPass = steer.StepsToApply >= 1 && steer.StepsToApply <= 2 &&
                         steer.ViewerAlive && steer.AllStepsExecuted &&
                         steer.ViewerSawSwap;
  std::ofstream os(path);
  os.precision(12);
  os << "{\n"
     << "  \"bench\": \"um_viz\",\n"
     << "  \"viewers\": " << kViewers << ",\n"
     << "  \"steps\": " << kStreamSteps << ",\n"
     << "  \"framebuffer\": \"" << kFbSize << "x" << kFbSize << "\",\n"
     << "  \"hardware_threads\": " << hw << ",\n"
     << "  \"streaming_gate\": {\n"
     << "    \"wall_seconds\": " << stream.WallSeconds << ",\n"
     << "    \"max_step_seconds\": " << stream.MaxStepSeconds << ",\n"
     << "    \"p99_frame_age_seconds\": " << stream.P99FrameAgeSeconds
     << ",\n"
     << "    \"frames_published\": " << stream.FramesPublished << ",\n"
     << "    \"frames_delivered\": " << stream.FramesDelivered << ",\n"
     << "    \"push_drops\": " << stream.PushDrops << ",\n"
     << "    \"gate\": \""
     << (timingGates ? (streamPass ? "pass" : "fail")
                     : "skipped (insufficient cores)")
     << "\"\n  },\n"
     << "  \"steering_gate\": {\n"
     << "    \"steps_to_apply\": " << steer.StepsToApply << ",\n"
     << "    \"viewer_alive\": " << (steer.ViewerAlive ? "true" : "false")
     << ",\n"
     << "    \"all_steps_executed\": "
     << (steer.AllStepsExecuted ? "true" : "false") << ",\n"
     << "    \"viewer_saw_swap\": "
     << (steer.ViewerSawSwap ? "true" : "false") << ",\n"
     << "    \"gate\": \"" << (steerPass ? "pass" : "fail") << "\"\n  },\n"
     << "  \"bitexact_gate\": {\n"
     << "    \"identical\": " << (bitexact ? "true" : "false") << ",\n"
     << "    \"gate\": \"" << (bitexact ? "pass" : "fail") << "\"\n  },\n"
     << "  \"profiler\": " << sensei::Profiler::Global().ToJson() << "\n"
     << "}\n";
}

} // namespace

static void BM_VizRenderFrame(benchmark::State &state)
{
  Reset();
  sensei::TableAdaptor *da = sensei::TableAdaptor::New("bodies");
  svtkTable *t = MakeTable(kBodies, 7u);
  da->SetTable(t);
  t->Delete();
  viz::RenderAnalysis *r = MakeRender(kBinRes, kFbSize, kFbSize);
  r->SetDeviceId(sensei::AnalysisAdaptor::DEVICE_HOST);

  std::uint64_t step = 0;
  for (auto _ : state)
  {
    da->SetDataTimeStep(static_cast<long>(step++));
    r->Execute(da);
  }
  r->Finalize();
  r->Delete();
  da->ReleaseData();
  da->Delete();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(4 * kFbSize * kFbSize));
}
BENCHMARK(BM_VizRenderFrame)->UseRealTime();

int main(int argc, char **argv)
{
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  sensei::Profiler::Global().Clear();

  const unsigned hw = std::thread::hardware_concurrency();
  const bool timingGates = hw >= 4;

  const StreamResult stream = StreamViewers(kViewers, /*slowIndex=*/0);
  std::printf("streaming: %d viewers, %.3f s wall, max step %.1f ms, "
              "p99 frame age %.1f ms, %llu delivered, %llu drops\n",
              stream.Viewers, stream.WallSeconds,
              1e3 * stream.MaxStepSeconds, 1e3 * stream.P99FrameAgeSeconds,
              static_cast<unsigned long long>(stream.FramesDelivered),
              static_cast<unsigned long long>(stream.PushDrops));

  const SteerResult steer = SteerRun();
  std::printf("steering: applied after %d step%s, viewer %s, swap %s\n",
              steer.StepsToApply, steer.StepsToApply == 1 ? "" : "s",
              steer.ViewerAlive ? "alive" : "DEAD",
              steer.ViewerSawSwap ? "seen" : "NOT seen");

  const bool bitexact = BitExactRun();
  std::printf("bitexact: serial/threads x eager/graph framebuffers %s\n",
              bitexact ? "identical" : "DIVERGED");

  sensei::ExportServiceStats(sensei::Profiler::Global());
  sensei::ExportVizStats(sensei::Profiler::Global());

  // under VP_CHECK the streaming runs double as a race/lifetime gate
  // over the streamer fan-out, viewer threads, and render kernels
  if (vp::check::Enabled())
  {
    const vp::check::Report report = vp::check::Finalize();
    sensei::ExportCheckReport(sensei::Profiler::Global(), report);
    if (report.Total())
    {
      std::fprintf(stderr, "um_viz: VP_CHECK failed\n%s",
                   report.Summary().c_str());
      return 2;
    }
    std::printf("VP_CHECK: 0 violations across the viz runs\n");
  }

  WriteJson(hw, timingGates, stream, steer, bitexact, "BENCH_viz.json");

  if (!bitexact)
  {
    std::fprintf(stderr, "um_viz: framebuffers diverged across execution "
                         "modes\n");
    return 3;
  }
  if (steer.StepsToApply < 1 || steer.StepsToApply > 2 ||
      !steer.ViewerAlive || !steer.AllStepsExecuted || !steer.ViewerSawSwap)
  {
    std::fprintf(stderr,
                 "um_viz: steer applied after %d steps (want 1..2), viewer "
                 "%s, swap %s, steps %s\n",
                 steer.StepsToApply, steer.ViewerAlive ? "alive" : "dead",
                 steer.ViewerSawSwap ? "seen" : "missed",
                 steer.AllStepsExecuted ? "executed" : "stalled");
    return 3;
  }
  if (!timingGates)
  {
    std::printf("BENCH_viz.json: timing gate skipped (insufficient cores: "
                "%u hardware threads)\n",
                hw);
    return 0;
  }
  if (stream.PushDrops == 0)
  {
    std::fprintf(stderr, "um_viz: the comatose viewer never forced a "
                         "drop-oldest discard\n");
    return 3;
  }
  if (stream.P99FrameAgeSeconds >= 0.5 || stream.MaxStepSeconds >= 1.0)
  {
    std::fprintf(stderr,
                 "um_viz: p99 frame age %.1f ms / max step %.1f ms exceeds "
                 "the 500 ms / 1000 ms budgets\n",
                 1e3 * stream.P99FrameAgeSeconds,
                 1e3 * stream.MaxStepSeconds);
    return 3;
  }
  std::printf("BENCH_viz.json: p99 frame age %.1f ms with %llu drops, "
              "steer in %d step%s (gates passed)\n",
              1e3 * stream.P99FrameAgeSeconds,
              static_cast<unsigned long long>(stream.PushDrops),
              steer.StepsToApply, steer.StepsToApply == 1 ? "" : "s");
  return 0;
}
