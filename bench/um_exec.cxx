// Microbenchmark for the real parallel execution engine (src/exec):
// real wall-clock of the sharded binning-shaped host region under
// VP_EXEC=serial vs VP_EXEC=threads, plus the eight-case Table 1
// campaign timed the same way. Unlike the um_* siblings this bench
// measures *real* seconds (std::chrono::steady_clock), because the
// engine's whole point is that virtual time is identical in both modes
// while wall-clock is not.
//
// Beyond the google-benchmark output, main() runs the comparisons and
// writes BENCH_exec.json into the working directory
// (scripts/run_campaign.sh collects it under results/). Exits nonzero
// unless the threaded binning region is at least 2x faster than serial
// — enforced only when the machine has >= 4 hardware threads; smaller
// boxes record the measurement and mark the gate skipped (a 1-core
// container cannot physically speed anything up).

#include "campaign.h"
#include "execEngine.h"
#include "senseiProfiler.h"
#include "vpChecker.h"
#include "vpClock.h"
#include "vpPlatform.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

namespace
{

constexpr std::size_t kRows = 1 << 20; // rows per binning region
constexpr long kBins = 128 * 128;
constexpr int kRepeats = 8;

void Reset()
{
  vp::PlatformConfig cfg;
  cfg.DevicesPerNode = 4;
  cfg.HostCoresPerNode = 8;
  vp::Platform::Initialize(cfg);
  vp::check::Reset();
  vp::ThisClock().Set(0.0);
}

void ConfigureMode(bool threads)
{
  vp::exec::ExecConfig cfg;
  cfg.ExecMode = threads ? vp::exec::Mode::Threads : vp::exec::Mode::Serial;
  cfg.Threads = 0; // auto: hardware_concurrency - 1 pool threads
  cfg.ShardGrain = 16384;
  vp::exec::Configure(cfg);
}

double Now()
{
  return std::chrono::duration<double>(
           std::chrono::steady_clock::now().time_since_epoch())
    .count();
}

// ---- the binning-shaped sharded host region ------------------------------

/// The privatized accumulation kernel of senseiDataBinning, reduced to
/// its computational shape: bin 2D coordinates, fold a value into a
/// per-lane histogram slab (exec::ShardIndex picks the slab), with a
/// little transcendental work per row so the region is compute bound.
struct BinningRegion
{
  std::vector<double> X, Y, V;
  std::vector<double> Slabs; ///< lanes x kBins privatized histograms
  int MaxLanes = 1;

  explicit BinningRegion(unsigned seed)
  {
    std::mt19937_64 gen(seed);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    X.resize(kRows);
    Y.resize(kRows);
    V.resize(kRows);
    for (std::size_t i = 0; i < kRows; ++i)
    {
      X[i] = u(gen);
      Y[i] = u(gen);
      V[i] = u(gen);
    }
    MaxLanes = vp::exec::Engine::Get().Lanes();
    Slabs.assign(static_cast<std::size_t>(MaxLanes) *
                   static_cast<std::size_t>(kBins),
                 0.0);
  }

  /// One pass over the rows; safe in both modes (serial reads slab 0).
  void Accumulate()
  {
    const long res = 128;
    double *slabs = Slabs.data();
    const double *x = X.data();
    const double *y = Y.data();
    const double *v = V.data();
    const int maxLanes = MaxLanes;
    vp::KernelDesc desc{kRows, 24.0, 0.0, "um_exec_binning", true};
    vp::Platform::Get().HostParallelFor(
      desc,
      [slabs, x, y, v, maxLanes, res](std::size_t b, std::size_t e)
      {
        const int lane = std::min(vp::exec::ShardIndex(), maxLanes - 1);
        double *slab = slabs + static_cast<std::size_t>(lane) *
                                 static_cast<std::size_t>(kBins);
        for (std::size_t i = b; i < e; ++i)
        {
          const double r = std::sqrt(x[i] * x[i] + y[i] * y[i]);
          const double w = v[i] * std::exp(-r);
          long bx = static_cast<long>((x[i] + 1.0) * 0.5 * res);
          long by = static_cast<long>((y[i] + 1.0) * 0.5 * res);
          bx = bx < 0 ? 0 : (bx >= res ? res - 1 : bx);
          by = by < 0 ? 0 : (by >= res ? res - 1 : by);
          slab[bx + res * by] += w;
        }
      });
  }
};

/// Wall-clock seconds for kRepeats accumulation passes in one mode.
double TimeBinningRegion(bool threads)
{
  Reset();
  ConfigureMode(threads);
  BinningRegion region(17);
  const double t0 = Now();
  for (int r = 0; r < kRepeats; ++r)
    region.Accumulate();
  const double dt = Now() - t0;
  benchmark::DoNotOptimize(region.Slabs.data());
  ConfigureMode(false);
  return dt;
}

// ---- the eight-case campaign, serial vs threads --------------------------

struct CampaignPair
{
  std::string Label;
  double SerialWall = 0.0; ///< real seconds
  double ThreadedWall = 0.0;
  // virtual completion times. These may differ slightly: under threads
  // the binning analysis submits privatized kernels + a tree merge
  // instead of shared-atomic accumulation, so it prices different work
  double SerialVirtual = 0.0;
  double ThreadedVirtual = 0.0;
};

std::vector<CampaignPair> RunCampaignModes()
{
  campaign::CampaignConfig g = campaign::RealExecutionConfig();
  g.BodiesPerNode = 2000;
  g.Steps = 3;

  std::vector<CampaignPair> out;
  for (const campaign::CaseConfig &c : campaign::AllCases())
  {
    CampaignPair p;
    p.Label = std::string(campaign::PlacementName(c.Place)) +
              (c.Asynchronous ? "/async" : "/lockstep");

    Reset();
    g.ExecMode = "serial";
    double t0 = Now();
    const campaign::CaseResult serial = campaign::RunCase(c, g);
    p.SerialWall = Now() - t0;

    Reset();
    g.ExecMode = "threads";
    t0 = Now();
    const campaign::CaseResult threaded = campaign::RunCase(c, g);
    p.ThreadedWall = Now() - t0;

    p.SerialVirtual = serial.TotalSeconds;
    p.ThreadedVirtual = threaded.TotalSeconds;
    out.push_back(p);
  }
  return out;
}

// ---- reporting -----------------------------------------------------------

void WriteJson(unsigned hw, int lanes, bool gateEnforced, double serialSec,
               double threadedSec, double speedup,
               const std::vector<CampaignPair> &pairs,
               const std::string &path)
{
  std::ofstream os(path);
  os.precision(12);
  os << "{\n"
     << "  \"bench\": \"um_exec\",\n"
     << "  \"rows\": " << kRows << ",\n"
     << "  \"repeats\": " << kRepeats << ",\n"
     << "  \"hardware_threads\": " << hw << ",\n"
     << "  \"lanes\": " << lanes << ",\n"
     << "  \"binning\": {\n"
     << "    \"serial_wall_seconds\": " << serialSec << ",\n"
     << "    \"threaded_wall_seconds\": " << threadedSec << ",\n"
     << "    \"speedup\": " << speedup << ",\n"
     << "    \"gate\": \""
     << (gateEnforced ? (speedup >= 2.0 ? "pass" : "fail")
                      : "skipped (insufficient cores)")
     << "\"\n  },\n"
     << "  \"campaign\": {\n";
  for (std::size_t i = 0; i < pairs.size(); ++i)
  {
    const CampaignPair &p = pairs[i];
    os << "    \"" << p.Label << "\": {\n"
       << "      \"serial_wall_seconds\": " << p.SerialWall << ",\n"
       << "      \"threaded_wall_seconds\": " << p.ThreadedWall << ",\n"
       << "      \"serial_virtual_seconds\": " << p.SerialVirtual << ",\n"
       << "      \"threaded_virtual_seconds\": " << p.ThreadedVirtual
       << "\n    }" << (i + 1 < pairs.size() ? ",\n" : "\n");
  }
  os << "  },\n"
     << "  \"profiler\": " << sensei::Profiler::Global().ToJson() << "\n"
     << "}\n";
}

} // namespace

static void BM_ShardedBinningRegion(benchmark::State &state)
{
  const bool threads = state.range(0) != 0;
  Reset();
  ConfigureMode(threads);
  BinningRegion region(23);
  for (auto _ : state)
    region.Accumulate();
  state.SetLabel(threads ? "threads" : "serial");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kRows));
  ConfigureMode(false);
}
BENCHMARK(BM_ShardedBinningRegion)->Arg(0)->Arg(1)->UseRealTime();

int main(int argc, char **argv)
{
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  sensei::Profiler::Global().Clear();

  const double serialSec = TimeBinningRegion(false);
  vp::exec::ResetStats();
  const double threadedSec = TimeBinningRegion(true);
  const double speedup = threadedSec > 0.0 ? serialSec / threadedSec : 0.0;

  // lanes the threaded run actually had (pool threads + caller)
  ConfigureMode(true);
  const int lanes = vp::exec::Engine::Get().Lanes();
  ConfigureMode(false);
  const unsigned hw = std::thread::hardware_concurrency();
  const bool gateEnforced = hw >= 4;

  const std::vector<CampaignPair> pairs = RunCampaignModes();

  sensei::ExportExecStats(sensei::Profiler::Global());

  // under VP_CHECK the threaded campaigns double as a race/lifetime gate
  if (vp::check::Enabled())
  {
    const vp::check::Report report = vp::check::Finalize();
    sensei::ExportCheckReport(sensei::Profiler::Global(), report);
    if (report.Total())
    {
      std::fprintf(stderr, "um_exec: VP_CHECK failed\n%s",
                   report.Summary().c_str());
      return 2;
    }
    std::printf("VP_CHECK: 0 violations across the execution campaigns\n");
  }

  WriteJson(hw, lanes, gateEnforced, serialSec, threadedSec, speedup, pairs,
            "BENCH_exec.json");

  std::printf("binning region: serial %.3f s, threads %.3f s (%.2fx, "
              "%d lanes, %u hw threads)\n",
              serialSec, threadedSec, speedup, lanes, hw);
  for (const CampaignPair &p : pairs)
    std::printf("%-28s serial %.3f s, threads %.3f s (virtual %.3e s)\n",
                p.Label.c_str(), p.SerialWall, p.ThreadedWall,
                p.SerialVirtual);

  if (!gateEnforced)
  {
    std::printf("BENCH_exec.json: 2x gate skipped (insufficient cores: "
                "%u hardware threads)\n",
                hw);
    return 0;
  }
  if (speedup < 2.0)
  {
    std::fprintf(stderr,
                 "um_exec: threaded binning speedup %.2fx is below the 2x "
                 "target on %d lanes\n",
                 speedup, lanes);
    return 3;
  }
  std::printf("BENCH_exec.json: threaded binning %.2fx faster than serial "
              "(gate passed)\n",
              speedup);
  return 0;
}
