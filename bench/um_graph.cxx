// Microbenchmark for captured step-graph execution (src/graph): the
// eight-case Table 1 campaign run eagerly vs with VP_GRAPH=1
// (capture once, replay with kernel fusion), gated on the submission
// work the replay path absorbs. Writes BENCH_graph.json into the
// working directory (scripts/run_campaign.sh collects it under
// results/).
//
// Exit-code gates:
//   - exec::tasks_enqueued must drop >= 5x across the campaign with
//     capture/replay + fusion on (always enforced; exit 3). Replayed
//     kernel bodies run inline at the flush, so the threaded engine's
//     dispatch counter is a direct measure of absorbed submissions.
//   - campaign wall-clock must not regress by more than 15% (enforced
//     only with >= 4 hardware threads; exit 5).
//   - a serial direct-binning pipeline must be bit-exact between the
//     eager and replayed timelines (always enforced; exit 4).
//   - under VP_CHECK=1 any checker violation exits 2.

#include "campaign.h"
#include "execEngine.h"
#include "graphCapture.h"
#include "senseiDataAdaptor.h"
#include "senseiDataBinning.h"
#include "senseiProfiler.h"
#include "svtkAOSDataArray.h"
#include "vcuda.h"
#include "vomp.h"
#include "vpChecker.h"
#include "vpClock.h"
#include "vpPlatform.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

namespace
{

void Reset()
{
  vp::PlatformConfig cfg;
  cfg.DevicesPerNode = 4;
  cfg.HostCoresPerNode = 8;
  vp::Platform::Initialize(cfg);
  vcuda::SetDevice(0);
  vomp::SetDefaultDevice(0);
  vp::check::Reset();
  vp::ThisClock().Set(0.0);
}

double Now()
{
  return std::chrono::duration<double>(
           std::chrono::steady_clock::now().time_since_epoch())
    .count();
}

// ---- the eight-case campaign, eager vs captured/replayed ------------------

campaign::CampaignConfig GraphCampaignConfig()
{
  campaign::CampaignConfig g = campaign::RealExecutionConfig();
  g.BodiesPerNode = 2000;
  g.Steps = 16; // 1 capture step amortized over 15 replays
  g.CoordSystems = 9;
  // all ten variables: the binning DAG (the capturable part of a step)
  // must dominate the solver+host work replay cannot absorb
  g.VariablesPerSystem = 10;
  g.ExecMode = "threads";
  return g;
}

struct ModeTotals
{
  double Wall = 0.0;    ///< real seconds across the 8 cases
  double Virtual = 0.0; ///< summed virtual completion times
  std::uint64_t Tasks = 0;
  std::uint64_t Copies = 0;
  vp::graph::GraphStats Graph; ///< summed across cases
};

/// Run the eight cases in one mode. RunCase re-reads VP_GRAPH per case
/// (campaign reset), so the environment toggles capture/replay.
ModeTotals RunCampaign(bool graphOn)
{
  if (graphOn)
    setenv("VP_GRAPH", "1", 1);
  else
    unsetenv("VP_GRAPH");

  const campaign::CampaignConfig g = GraphCampaignConfig();
  ModeTotals t;
  for (const campaign::CaseConfig &c : campaign::AllCases())
  {
    Reset();
    const double t0 = Now();
    const campaign::CaseResult res = campaign::RunCase(c, g);
    t.Wall += Now() - t0;
    t.Virtual += res.TotalSeconds;

    const vp::exec::EngineStats e = vp::exec::Stats();
    t.Tasks += e.TasksEnqueued;
    t.Copies += e.CopiesEnqueued;

    const vp::graph::GraphStats s = vp::graph::Stats();
    t.Graph.Captures += s.Captures;
    t.Graph.CaptureAborts += s.CaptureAborts;
    t.Graph.Replays += s.Replays;
    t.Graph.Invalidations += s.Invalidations;
    t.Graph.NodesCaptured += s.NodesCaptured;
    t.Graph.LaunchesFused += s.LaunchesFused;
    t.Graph.Flushes += s.Flushes;
    t.Graph.OpsAbsorbed += s.OpsAbsorbed;
  }
  unsetenv("VP_GRAPH");
  return t;
}

// ---- serial bit-exactness ---------------------------------------------------

svtkTable *MakeTable(std::size_t n, unsigned seed)
{
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::vector<double> xs(n), ys(n), vs(n);
  for (std::size_t i = 0; i < n; ++i)
  {
    xs[i] = u(gen);
    ys[i] = u(gen);
    vs[i] = std::floor(8.0 * (xs[i] + 2.0 * ys[i]));
  }
  svtkTable *t = svtkTable::New();
  auto add = [t](const char *name, const std::vector<double> &v)
  {
    svtkAOSDoubleArray *c = svtkAOSDoubleArray::New(name, v.size(), 1);
    c->GetVector() = v;
    t->AddColumn(c);
    c->Delete();
  };
  add("x", xs);
  add("y", ys);
  add("v", vs);
  return t;
}

std::vector<double> GridValues(svtkImageData *img, const char *name)
{
  const svtkDataArray *a = img->GetPointData()->GetArray(name);
  std::vector<double> out(a ? a->GetNumberOfTuples() : 0);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = a->GetVariantValue(i, 0);
  return out;
}

/// Four direct DataBinning steps on device 0 (fresh table per step);
/// returns every step's grids concatenated.
std::vector<std::vector<double>> RunSerialBinning(bool graphOn)
{
  Reset();
  vp::exec::Configure(vp::exec::ExecConfig()); // serial
  vp::graph::GraphConfig gc;
  gc.Enabled = graphOn;
  vp::graph::Configure(gc);
  vp::graph::ResetStats();

  sensei::TableAdaptor *da = sensei::TableAdaptor::New("bodies");
  sensei::DataBinning *b = sensei::DataBinning::New();
  b->SetMeshName("bodies");
  b->SetAxes({"x", "y"});
  b->SetResolution({32});
  b->SetRange(0, -1.0, 1.0);
  b->SetRange(1, -1.0, 1.0);
  b->AddOperation("v", sensei::BinningOp::Sum);
  b->AddOperation("v", sensei::BinningOp::Min);
  b->AddOperation("v", sensei::BinningOp::Max);
  b->SetDeviceId(0);

  std::vector<std::vector<double>> out;
  for (int s = 0; s < 4; ++s)
  {
    svtkTable *t = MakeTable(5000, 90u + static_cast<unsigned>(s));
    da->SetTable(t);
    t->Delete();
    da->SetDataTimeStep(s);
    b->Execute(da);
    svtkImageData *img = b->GetLastResult();
    if (img)
    {
      out.push_back(GridValues(img, "count"));
      out.push_back(GridValues(img, "v_sum"));
      out.push_back(GridValues(img, "v_min"));
      out.push_back(GridValues(img, "v_max"));
      img->UnRegister();
    }
  }
  b->Finalize();
  b->Delete();
  da->ReleaseData();
  da->Delete();
  vp::graph::Configure(vp::graph::GraphConfig());
  return out;
}

// ---- reporting -----------------------------------------------------------

const char *GateName(bool pass) { return pass ? "pass" : "fail"; }

void WriteJson(unsigned hw, const ModeTotals &eager, const ModeTotals &graph,
               double ratio, bool wallEnforced, bool wallOk, bool exact,
               const std::string &path)
{
  std::ofstream os(path);
  os.precision(12);
  os << "{\n"
     << "  \"bench\": \"um_graph\",\n"
     << "  \"hardware_threads\": " << hw << ",\n"
     << "  \"campaign\": {\n"
     << "    \"eager\": {\n"
     << "      \"tasks_enqueued\": " << eager.Tasks << ",\n"
     << "      \"copies_enqueued\": " << eager.Copies << ",\n"
     << "      \"wall_seconds\": " << eager.Wall << ",\n"
     << "      \"virtual_seconds\": " << eager.Virtual << "\n    },\n"
     << "    \"graph\": {\n"
     << "      \"tasks_enqueued\": " << graph.Tasks << ",\n"
     << "      \"copies_enqueued\": " << graph.Copies << ",\n"
     << "      \"wall_seconds\": " << graph.Wall << ",\n"
     << "      \"virtual_seconds\": " << graph.Virtual << ",\n"
     << "      \"captures\": " << graph.Graph.Captures << ",\n"
     << "      \"capture_aborts\": " << graph.Graph.CaptureAborts << ",\n"
     << "      \"replays\": " << graph.Graph.Replays << ",\n"
     << "      \"invalidations\": " << graph.Graph.Invalidations << ",\n"
     << "      \"nodes_captured\": " << graph.Graph.NodesCaptured << ",\n"
     << "      \"launches_fused\": " << graph.Graph.LaunchesFused << ",\n"
     << "      \"flushes\": " << graph.Graph.Flushes << ",\n"
     << "      \"ops_absorbed\": " << graph.Graph.OpsAbsorbed << "\n    },\n"
     << "    \"tasks_ratio\": " << ratio << ",\n"
     << "    \"gates\": {\n"
     << "      \"tasks_ratio_5x\": \"" << GateName(ratio >= 5.0) << "\",\n"
     << "      \"wall_clock\": \""
     << (wallEnforced ? GateName(wallOk) : "skipped (insufficient cores)")
     << "\",\n"
     << "      \"serial_bit_exact\": \"" << GateName(exact) << "\"\n"
     << "    }\n  },\n"
     << "  \"profiler\": " << sensei::Profiler::Global().ToJson() << "\n"
     << "}\n";
}

} // namespace

// One synthetic binning-shaped step per iteration: the per-step
// submission cost is what capture/replay amortizes away.
static void BM_BinningStep(benchmark::State &state)
{
  const bool graphOn = state.range(0) != 0;
  Reset();
  vp::exec::Configure(vp::exec::ExecConfig());
  vp::graph::GraphConfig gc;
  gc.Enabled = graphOn;
  vp::graph::Configure(gc);

  sensei::TableAdaptor *da = sensei::TableAdaptor::New("bodies");
  sensei::DataBinning *b = sensei::DataBinning::New();
  b->SetMeshName("bodies");
  b->SetAxes({"x", "y"});
  b->SetResolution({32});
  b->SetRange(0, -1.0, 1.0);
  b->SetRange(1, -1.0, 1.0);
  b->AddOperation("v", sensei::BinningOp::Sum);
  b->SetDeviceId(0);

  svtkTable *t = MakeTable(20000, 7);
  da->SetTable(t);
  t->Delete();

  long step = 0;
  for (auto _ : state)
  {
    da->SetDataTimeStep(step++);
    b->Execute(da);
  }
  state.SetLabel(graphOn ? "graph" : "eager");

  b->Finalize();
  b->Delete();
  da->ReleaseData();
  da->Delete();
  vp::graph::Configure(vp::graph::GraphConfig());
}
BENCHMARK(BM_BinningStep)->Arg(0)->Arg(1)->UseRealTime();

int main(int argc, char **argv)
{
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  sensei::Profiler::Global().Clear();

  // serial bit-exactness first: replay must reproduce the eager timeline
  const std::vector<std::vector<double>> eagerGrids = RunSerialBinning(false);
  const std::vector<std::vector<double>> replayGrids = RunSerialBinning(true);
  const bool exact =
    !eagerGrids.empty() && eagerGrids == replayGrids;

  const ModeTotals eager = RunCampaign(false);
  const ModeTotals graph = RunCampaign(true);

  const double ratio =
    graph.Tasks ? static_cast<double>(eager.Tasks) /
                    static_cast<double>(graph.Tasks)
                : 0.0;
  const unsigned hw = std::thread::hardware_concurrency();
  const bool wallEnforced = hw >= 4;
  const bool wallOk = graph.Wall <= 1.15 * eager.Wall;

  sensei::ExportExecStats(sensei::Profiler::Global());
  sensei::ExportGraphStats(sensei::Profiler::Global());

  // under VP_CHECK the campaigns double as a race/lifetime gate
  if (vp::check::Enabled())
  {
    const vp::check::Report report = vp::check::Finalize();
    sensei::ExportCheckReport(sensei::Profiler::Global(), report);
    if (report.Total())
    {
      std::fprintf(stderr, "um_graph: VP_CHECK failed\n%s",
                   report.Summary().c_str());
      return 2;
    }
    std::printf("VP_CHECK: 0 violations across the graph campaigns\n");
  }

  WriteJson(hw, eager, graph, ratio, wallEnforced, wallOk, exact,
            "BENCH_graph.json");

  std::printf("campaign tasks_enqueued: eager %llu, graph %llu (%.2fx); "
              "wall eager %.3f s, graph %.3f s\n",
              static_cast<unsigned long long>(eager.Tasks),
              static_cast<unsigned long long>(graph.Tasks), ratio,
              eager.Wall, graph.Wall);
  std::printf("graph: %llu captures, %llu replays, %llu fused launches, "
              "%llu ops absorbed, %llu invalidations\n",
              static_cast<unsigned long long>(graph.Graph.Captures),
              static_cast<unsigned long long>(graph.Graph.Replays),
              static_cast<unsigned long long>(graph.Graph.LaunchesFused),
              static_cast<unsigned long long>(graph.Graph.OpsAbsorbed),
              static_cast<unsigned long long>(graph.Graph.Invalidations));

  if (!exact)
  {
    std::fprintf(stderr, "um_graph: serial replay diverged from the eager "
                         "binning grids\n");
    return 4;
  }
  std::printf("serial replay bit-exact with the eager timeline\n");

  if (ratio < 5.0)
  {
    std::fprintf(stderr,
                 "um_graph: tasks_enqueued dropped only %.2fx with "
                 "capture/replay (target 5x)\n",
                 ratio);
    return 3;
  }
  std::printf("BENCH_graph.json: tasks_enqueued dropped %.2fx (gate "
              "passed)\n",
              ratio);

  if (!wallEnforced)
  {
    std::printf("wall-clock gate skipped (insufficient cores: %u hardware "
                "threads)\n",
                hw);
    return 0;
  }
  if (!wallOk)
  {
    std::fprintf(stderr,
                 "um_graph: campaign wall-clock regressed with replay "
                 "(eager %.3f s -> graph %.3f s)\n",
                 eager.Wall, graph.Wall);
    return 5;
  }
  std::printf("wall-clock did not regress (eager %.3f s, graph %.3f s)\n",
              eager.Wall, graph.Wall);
  return 0;
}
